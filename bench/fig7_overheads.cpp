/**
 * @file
 * Regenerates Figure 7 and the Section 9.2 headline numbers:
 * execution time of every Table-2 design variant, normalized to
 * UnsafeBaseline, per workload, under both the Futuristic and the
 * Spectre attack models — plus the paper's summary statistics
 * (average SPT overhead, SPT-vs-SecureBaseline reduction factor,
 * the constant-time-kernel subset, and SPT-vs-STT deltas).
 *
 * The whole (model x workload x config) grid runs on the parallel
 * experiment runner; stdout and the JSON artifact are byte-identical
 * for any --jobs value.
 *
 * Usage: fig7_overheads [--jobs N] [--out BENCH_fig7.json]
 * Set SPT_BENCH_QUICK=1 to run a 5-workload subset (CI smoke).
 */

#include <cstdlib>
#include <cstring>
#include <deque>

#include "analysis/cfg.h"
#include "analysis/knowledge_analysis.h"
#include "analysis/knowledge_map.h"
#include "bench/bench_util.h"

using namespace spt;
using namespace spt::bench;

namespace {

struct ModelSummary {
    double spt_overhead = 0.0;
    double secure_overhead = 0.0;
    double stt_overhead = 0.0;
    double ct_secure_mean = 0.0;
    double ct_spt_mean = 0.0;
    bool has_ct = false;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const BenchOptions opt =
        parseBenchArgs(argc, argv, "BENCH_fig7.json");
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    const std::vector<std::string> names = figureWorkloads(quick);
    const auto configs = table2Configs();
    const AttackModel models[] = {AttackModel::kFuturistic,
                                  AttackModel::kSpectre};

    // One flat grid over (model, workload, config); slot index is
    // grid order, so rendering below just walks the same loops.
    std::vector<RunJob> grid;
    for (const AttackModel model : models) {
        for (const std::string &name : names) {
            const Workload &w = workloadByName(name);
            for (const auto &nc : configs) {
                RunJob job;
                job.program = &w.program;
                job.engine = nc.engine;
                job.attack_model = model;
                grid.push_back(job);
            }
        }
    }

    ExpRunner runner(opt.jobs);
    const std::vector<RunOutcome> outcomes = runner.run(grid);
    reportSweep(runner);
    auto at = [&](size_t mi, size_t wi, size_t ci) -> const RunOutcome & {
        return outcomes[(mi * names.size() + wi) * configs.size() +
                        ci];
    };

    auto config_index = [&](const char *n) {
        for (size_t c = 0; c < configs.size(); ++c)
            if (configs[c].name == n)
                return c;
        return size_t{0};
    };
    const size_t i_secure = config_index("SecureBaseline");
    const size_t i_spt = config_index("SPT{Bwd,ShadowL1}");
    const size_t i_stt = config_index("STT");

    JsonWriter json;
    json.beginObject();
    json.field("bench", "fig7_overheads");
    json.field("quick", quick);
    json.key("configs").beginArray();
    for (const auto &nc : configs)
        json.value(nc.name);
    json.endArray();
    json.key("models").beginArray();

    printf("=== Figure 7: execution time normalized to "
           "UnsafeBaseline ===\n");
    for (size_t mi = 0; mi < 2; ++mi) {
        const AttackModel model = models[mi];
        printf("\n--- %s attack model ---\n", modelName(model));
        printf("%-16s", "workload");
        for (const auto &nc : configs)
            printf(" %21s", nc.name.c_str());
        printf("\n");

        // Per-config normalized execution times across workloads.
        std::vector<std::vector<double>> norm(configs.size());
        std::vector<std::vector<double>> norm_ct(configs.size());

        json.beginObject();
        json.field("model", modelName(model));
        json.key("workloads").beginArray();

        for (size_t wi = 0; wi < names.size(); ++wi) {
            const Workload &w = workloadByName(names[wi]);
            printf("%-16s", names[wi].c_str());
            json.beginObject();
            json.field("name", names[wi]);
            json.field("category", w.category);
            const double base =
                static_cast<double>(at(mi, wi, 0).result.cycles);
            json.key("cycles").beginArray();
            for (size_t c = 0; c < configs.size(); ++c)
                json.value(at(mi, wi, c).result.cycles);
            json.endArray();
            json.key("host_seconds").beginArray();
            for (size_t c = 0; c < configs.size(); ++c)
                json.value(at(mi, wi, c).host_seconds, 6);
            json.endArray();
            json.key("normalized").beginArray();
            for (size_t c = 0; c < configs.size(); ++c) {
                const auto cycles = static_cast<double>(
                    at(mi, wi, c).result.cycles);
                const double rel = cycles / base;
                norm[c].push_back(rel);
                if (w.category == "constant-time")
                    norm_ct[c].push_back(rel);
                printf(" %21.3f", rel);
                json.value(rel);
            }
            json.endArray();
            json.endObject();
            printf("\n");
        }
        json.endArray();

        printf("%-16s", "geomean");
        json.key("geomean").beginArray();
        for (size_t c = 0; c < configs.size(); ++c) {
            printf(" %21.3f", geomean(norm[c]));
            json.value(geomean(norm[c]));
        }
        json.endArray();
        printf("\n%-16s", "mean");
        json.key("mean").beginArray();
        for (size_t c = 0; c < configs.size(); ++c) {
            printf(" %21.3f", mean(norm[c]));
            json.value(mean(norm[c]));
        }
        json.endArray();
        printf("\n");

        // Section 9.2 summary statistics.
        ModelSummary s;
        s.spt_overhead = mean(norm[i_spt]) - 1.0;
        s.secure_overhead = mean(norm[i_secure]) - 1.0;
        s.stt_overhead = mean(norm[i_stt]) - 1.0;
        printf("\n[%s] SPT overhead vs UnsafeBaseline: %.1f%%\n",
               modelName(model), 100.0 * s.spt_overhead);
        printf("[%s] SecureBaseline overhead: %.1f%%  "
               "(SPT reduces overhead by %.2fx)\n",
               modelName(model), 100.0 * s.secure_overhead,
               s.spt_overhead > 0
                   ? s.secure_overhead / s.spt_overhead
                   : 0.0);
        printf("[%s] SPT overhead above STT: %.1f percentage "
               "points\n",
               modelName(model),
               100.0 * (s.spt_overhead - s.stt_overhead));
        if (!norm_ct[i_spt].empty()) {
            s.has_ct = true;
            s.ct_secure_mean = mean(norm_ct[i_secure]);
            s.ct_spt_mean = mean(norm_ct[i_spt]);
            printf("[%s] constant-time kernels: SecureBaseline "
                   "%.2fx, SPT %.2fx (%.1fx overhead reduction)\n",
                   modelName(model), s.ct_secure_mean, s.ct_spt_mean,
                   (s.ct_spt_mean > 1.0)
                       ? (s.ct_secure_mean - 1.0) /
                             (s.ct_spt_mean - 1.0)
                       : 0.0);
        }

        json.key("summary").beginObject();
        json.field("spt_overhead_pct", 100.0 * s.spt_overhead);
        json.field("secure_overhead_pct",
                   100.0 * s.secure_overhead);
        json.field("overhead_reduction_x",
                   s.spt_overhead > 0
                       ? s.secure_overhead / s.spt_overhead
                       : 0.0);
        json.field("spt_minus_stt_pp",
                   100.0 * (s.spt_overhead - s.stt_overhead));
        if (s.has_ct) {
            json.field("ct_secure_mean", s.ct_secure_mean);
            json.field("ct_spt_mean", s.ct_spt_mean);
            json.field("ct_overhead_reduction_x",
                       (s.ct_spt_mean > 1.0)
                           ? (s.ct_secure_mean - 1.0) /
                                 (s.ct_spt_mean - 1.0)
                           : 0.0);
        }
        json.endObject();
        json.endObject();
    }
    json.endArray();

    // --- Knowledge-map relaxation (DESIGN.md §13) -------------------
    // Per-workload maps are compiled in-process from the same
    // fixpoint `spt_lint --emit-knowledge-map` serializes; the deque
    // keeps their addresses stable for the whole sweep.
    std::deque<KnowledgeMap> maps;
    std::vector<const KnowledgeMap *> map_of(names.size());
    for (size_t wi = 0; wi < names.size(); ++wi) {
        const Workload &w = workloadByName(names[wi]);
        const Cfg cfg(w.program);
        const KnowledgeAnalysis analysis(cfg);
        maps.push_back(emitKnowledgeMap(analysis));
        map_of[wi] = &maps.back();
    }
    struct RelaxedCfg {
        const char *name;
        unsigned width;
        bool with_map;
    };
    const RelaxedCfg rconfigs[] = {
        {"w3", 3, false},
        {"w3+KMap", 3, true},
        {"w1", 1, false},
        {"w1+KMap", 1, true},
    };
    const size_t rn = std::size(rconfigs);
    std::vector<RunJob> rgrid;
    for (const AttackModel model : models) {
        for (size_t wi = 0; wi < names.size(); ++wi) {
            const Workload &w = workloadByName(names[wi]);
            for (const RelaxedCfg &rc : rconfigs) {
                RunJob job;
                job.program = &w.program;
                job.engine.scheme = ProtectionScheme::kSpt;
                job.engine.spt.method = UntaintMethod::kBackward;
                job.engine.spt.shadow = ShadowKind::kShadowL1;
                job.engine.spt.broadcast_width = rc.width;
                job.engine.spt.knowledge_map =
                    rc.with_map ? map_of[wi] : nullptr;
                job.attack_model = model;
                rgrid.push_back(job);
            }
        }
    }
    const std::vector<RunOutcome> routs = runner.run(rgrid);
    reportSweep(runner);
    auto rat = [&](size_t mi, size_t wi, size_t ci)
        -> const RunOutcome & {
        return routs[(mi * names.size() + wi) * rn + ci];
    };

    printf("\n=== SPT{Bwd,ShadowL1} + knowledge map: normalized "
           "execution time ===\n");
    json.key("relaxed").beginObject();
    json.key("configs").beginArray();
    for (const RelaxedCfg &rc : rconfigs)
        json.value(rc.name);
    json.endArray();
    json.key("models").beginArray();
    for (size_t mi = 0; mi < 2; ++mi) {
        const AttackModel model = models[mi];
        printf("\n--- %s attack model ---\n", modelName(model));
        printf("%-16s", "workload");
        for (const RelaxedCfg &rc : rconfigs)
            printf(" %12s", rc.name);
        printf(" %12s %12s\n", "preclears", "map_hits");

        std::vector<std::vector<double>> rnorm(rn);
        json.beginObject();
        json.field("model", modelName(model));
        json.key("workloads").beginArray();
        for (size_t wi = 0; wi < names.size(); ++wi) {
            // Normalize to the same UnsafeBaseline column the main
            // grid used (config 0 is UnsafeBaseline); memoization
            // makes the duplicate SPT w3 job free.
            const double base =
                static_cast<double>(at(mi, wi, 0).result.cycles);
            printf("%-16s", names[wi].c_str());
            json.beginObject();
            json.field("name", names[wi]);
            json.key("cycles").beginArray();
            for (size_t c = 0; c < rn; ++c)
                json.value(rat(mi, wi, c).result.cycles);
            json.endArray();
            json.key("host_seconds").beginArray();
            for (size_t c = 0; c < rn; ++c)
                json.value(rat(mi, wi, c).host_seconds, 6);
            json.endArray();
            json.key("normalized").beginArray();
            for (size_t c = 0; c < rn; ++c) {
                const double rel =
                    static_cast<double>(
                        rat(mi, wi, c).result.cycles) /
                    base;
                rnorm[c].push_back(rel);
                printf(" %12.4f", rel);
                json.value(rel);
            }
            json.endArray();
            // Knowledge counters of the width-3 mapped run.
            const RunOutcome &mapped = rat(mi, wi, 1);
            json.field("precleared_ops",
                       mapped.counter("knowledge.precleared_ops"));
            json.field("map_lookups",
                       mapped.counter("knowledge.map_lookups"));
            printf(" %12llu %12llu\n",
                   static_cast<unsigned long long>(
                       mapped.counter("knowledge.precleared_ops")),
                   static_cast<unsigned long long>(
                       mapped.counter("knowledge.map_lookups")));
            json.endObject();
        }
        json.endArray();

        printf("%-16s", "mean");
        json.key("mean").beginArray();
        for (size_t c = 0; c < rn; ++c) {
            printf(" %12.4f", mean(rnorm[c]));
            json.value(mean(rnorm[c]));
        }
        json.endArray();
        printf("\n");
        // Overhead reduction in percentage points at each width
        // (positive = the map lowered mean overhead).
        const double red3 =
            100.0 * (mean(rnorm[0]) - mean(rnorm[1]));
        const double red1 =
            100.0 * (mean(rnorm[2]) - mean(rnorm[3]));
        printf("[%s] map overhead reduction: %.3f pp at w3, "
               "%.3f pp at w1\n",
               modelName(model), red3, red1);
        json.key("summary").beginObject();
        json.field("map_reduction_pp_w3", red3);
        json.field("map_reduction_pp_w1", red1);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();

    json.endObject();
    writeReportFile(opt.out_path, json.str());
    fprintf(stderr, "wrote %s\n", opt.out_path.c_str());
    return 0;
}
