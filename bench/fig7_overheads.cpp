/**
 * @file
 * Regenerates Figure 7 and the Section 9.2 headline numbers:
 * execution time of every Table-2 design variant, normalized to
 * UnsafeBaseline, per workload, under both the Futuristic and the
 * Spectre attack models — plus the paper's summary statistics
 * (average SPT overhead, SPT-vs-SecureBaseline reduction factor,
 * the constant-time-kernel subset, and SPT-vs-STT deltas).
 *
 * Set SPT_BENCH_QUICK=1 to run a 5-workload subset (CI smoke).
 */

#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"

using namespace spt;
using namespace spt::bench;

int
main()
{
    setVerbose(false);
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    if (quick)
        names = {"pchase", "hashtab", "stream", "interp",
                 "ct-chacha20"};

    const auto configs = table2Configs();

    printf("=== Figure 7: execution time normalized to "
           "UnsafeBaseline ===\n");
    for (AttackModel model :
         {AttackModel::kFuturistic, AttackModel::kSpectre}) {
        printf("\n--- %s attack model ---\n", modelName(model));
        printf("%-16s", "workload");
        for (const auto &nc : configs)
            printf(" %21s", nc.name.c_str());
        printf("\n");

        // Per-config normalized execution times across workloads.
        std::vector<std::vector<double>> norm(configs.size());
        std::vector<std::vector<double>> norm_ct(configs.size());

        for (const std::string &name : names) {
            const Workload &w = workloadByName(name);
            printf("%-16s", name.c_str());
            fflush(stdout);
            double base = 0.0;
            for (size_t c = 0; c < configs.size(); ++c) {
                const RunOutcome out =
                    runOne(w.program, configs[c].engine, model);
                const auto cycles =
                    static_cast<double>(out.result.cycles);
                if (c == 0)
                    base = cycles;
                const double rel = cycles / base;
                norm[c].push_back(rel);
                if (w.category == "constant-time")
                    norm_ct[c].push_back(rel);
                printf(" %21.3f", rel);
                fflush(stdout);
            }
            printf("\n");
        }

        printf("%-16s", "geomean");
        for (size_t c = 0; c < configs.size(); ++c)
            printf(" %21.3f", geomean(norm[c]));
        printf("\n%-16s", "mean");
        for (size_t c = 0; c < configs.size(); ++c)
            printf(" %21.3f", mean(norm[c]));
        printf("\n");

        // Section 9.2 summary statistics.
        auto config_index = [&](const char *n) {
            for (size_t c = 0; c < configs.size(); ++c)
                if (configs[c].name == n)
                    return c;
            return size_t{0};
        };
        const size_t i_secure = config_index("SecureBaseline");
        const size_t i_spt = config_index("SPT{Bwd,ShadowL1}");
        const size_t i_stt = config_index("STT");
        const double spt_over = mean(norm[i_spt]) - 1.0;
        const double secure_over = mean(norm[i_secure]) - 1.0;
        const double stt_over = mean(norm[i_stt]) - 1.0;
        printf("\n[%s] SPT overhead vs UnsafeBaseline: %.1f%%\n",
               modelName(model), 100.0 * spt_over);
        printf("[%s] SecureBaseline overhead: %.1f%%  "
               "(SPT reduces overhead by %.2fx)\n",
               modelName(model), 100.0 * secure_over,
               spt_over > 0 ? secure_over / spt_over : 0.0);
        printf("[%s] SPT overhead above STT: %.1f percentage "
               "points\n",
               modelName(model),
               100.0 * (spt_over - stt_over));
        if (!norm_ct[i_spt].empty()) {
            const double ct_secure = mean(norm_ct[i_secure]);
            const double ct_spt = mean(norm_ct[i_spt]);
            printf("[%s] constant-time kernels: SecureBaseline "
                   "%.2fx, SPT %.2fx (%.1fx overhead reduction)\n",
                   modelName(model), ct_secure, ct_spt,
                   (ct_spt > 1.0)
                       ? (ct_secure - 1.0) / (ct_spt - 1.0)
                       : 0.0);
        }
    }
    return 0;
}
