/**
 * @file
 * Regenerates Figure 9 and the Section 9.4 analysis:
 *
 *  Part 1 — with SPT {Ideal, ShadowMem} (unbounded untaint
 *  bandwidth), the distribution of how many registers untaint per
 *  untainting cycle: the CDF at N = 1..10+ per workload, justifying
 *  a hardware broadcast width of 3.
 *
 *  Part 2 — the ablation the choice implies: execution time of the
 *  real SPT {Bwd, ShadowL1} design as the untaint broadcast width
 *  sweeps over {1, 2, 3, 4, 8, 16}.
 *
 * Set SPT_BENCH_QUICK=1 to run a 5-workload subset.
 */

#include <cstdlib>

#include "bench/bench_util.h"

using namespace spt;
using namespace spt::bench;

int
main()
{
    setVerbose(false);
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.category == "spec-like")
            names.push_back(w.name);
    if (quick)
        names = {"pchase", "hashtab", "stream", "interp"};

    // --- Part 1: registers untainted per untainting cycle ---------
    printf("=== Figure 9: CDF of registers untainted per "
           "untainting cycle, SPT{Ideal,ShadowMem} ===\n\n");
    printf("%-16s", "workload");
    for (int n = 1; n <= 9; ++n)
        printf("  <=%-4d", n);
    printf("  %6s\n", "mean");

    std::vector<double> cdf3;
    for (const std::string &name : names) {
        const Workload &w = workloadByName(name);
        SimConfig cfg;
        cfg.engine.scheme = ProtectionScheme::kSpt;
        cfg.engine.spt.method = UntaintMethod::kIdeal;
        cfg.engine.spt.shadow = ShadowKind::kShadowMem;
        cfg.core.attack_model = AttackModel::kFuturistic;
        Simulator sim(w.program, cfg);
        sim.run();
        Histogram &h = sim.core().engine().stats().histogram(
            "untaint.regs_per_untaint_cycle", 12);
        printf("%-16s", name.c_str());
        for (int n = 1; n <= 9; ++n)
            printf(" %5.1f%%",
                   100.0 * h.cdfAt(static_cast<uint64_t>(n)));
        printf("  %6.2f\n", h.mean());
        cdf3.push_back(100.0 * h.cdfAt(3));
        fflush(stdout);
    }
    printf("\nAverage fraction of untainting cycles with <= 3 "
           "registers untainted: %.1f%%\n",
           mean(cdf3));
    printf("(the paper picks untaint broadcast width 3 on this "
           "basis)\n");

    // --- Part 2: broadcast-width ablation on the real design ------
    printf("\n=== Section 9.4 ablation: SPT{Bwd,ShadowL1} "
           "execution time vs broadcast width ===\n\n");
    const unsigned widths[] = {1, 2, 3, 4, 8, 16};
    printf("%-16s", "workload");
    for (unsigned wd : widths)
        printf("   w=%-5u", wd);
    printf("\n");
    for (const std::string &name : names) {
        const Workload &w = workloadByName(name);
        printf("%-16s", name.c_str());
        double base = 0.0;
        for (unsigned wd : widths) {
            SimConfig cfg;
            cfg.engine.scheme = ProtectionScheme::kSpt;
            cfg.engine.spt.method = UntaintMethod::kBackward;
            cfg.engine.spt.shadow = ShadowKind::kShadowL1;
            cfg.engine.spt.broadcast_width = wd;
            cfg.core.attack_model = AttackModel::kFuturistic;
            Simulator sim(w.program, cfg);
            const SimResult r = sim.run();
            if (base == 0.0)
                base = static_cast<double>(r.cycles);
            printf(" %8.3f", static_cast<double>(r.cycles) / base);
            fflush(stdout);
        }
        printf("   (normalized to w=1)\n");
    }
    return 0;
}
