/**
 * @file
 * Regenerates Figure 9 and the Section 9.4 analysis:
 *
 *  Part 1 — with SPT {Ideal, ShadowMem} (unbounded untaint
 *  bandwidth), the distribution of how many registers untaint per
 *  untainting cycle: the CDF at N = 1..10+ per workload, justifying
 *  a hardware broadcast width of 3.
 *
 *  Part 2 — the ablation the choice implies: execution time of the
 *  real SPT {Bwd, ShadowL1} design as the untaint broadcast width
 *  sweeps over {1, 2, 3, 4, 8, 16}.
 *
 * Both parts run as one grid on the parallel experiment runner;
 * stdout and the JSON artifact are byte-identical for any --jobs
 * value.
 *
 * Usage: fig9_untaint_width [--jobs N] [--out BENCH_fig9.json]
 * Set SPT_BENCH_QUICK=1 to run a 4-workload subset.
 */

#include <cstdlib>
#include <iterator>

#include "bench/bench_util.h"

using namespace spt;
using namespace spt::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const BenchOptions opt =
        parseBenchArgs(argc, argv, "BENCH_fig9.json");
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    const std::vector<std::string> names =
        figureWorkloads(quick, "spec-like");
    const unsigned widths[] = {1, 2, 3, 4, 8, 16};
    const size_t num_widths = std::size(widths);

    // One grid holding both parts: per workload, one
    // SPT{Ideal,ShadowMem} run (part 1) followed by the
    // broadcast-width sweep of SPT{Bwd,ShadowL1} (part 2).
    EngineConfig ideal;
    ideal.scheme = ProtectionScheme::kSpt;
    ideal.spt.method = UntaintMethod::kIdeal;
    ideal.spt.shadow = ShadowKind::kShadowMem;

    std::vector<RunJob> grid;
    for (const std::string &name : names) {
        const Workload &w = workloadByName(name);
        RunJob part1;
        part1.program = &w.program;
        part1.engine = ideal;
        part1.attack_model = AttackModel::kFuturistic;
        grid.push_back(part1);
        for (const unsigned wd : widths) {
            RunJob job;
            job.program = &w.program;
            job.engine.scheme = ProtectionScheme::kSpt;
            job.engine.spt.method = UntaintMethod::kBackward;
            job.engine.spt.shadow = ShadowKind::kShadowL1;
            job.engine.spt.broadcast_width = wd;
            job.attack_model = AttackModel::kFuturistic;
            grid.push_back(job);
        }
    }

    ExpRunner runner(opt.jobs);
    const std::vector<RunOutcome> outcomes = runner.run(grid);
    reportSweep(runner);
    const size_t stride = 1 + num_widths;

    JsonWriter json;
    json.beginObject();
    json.field("bench", "fig9_untaint_width");
    json.field("quick", quick);

    // --- Part 1: registers untainted per untainting cycle ---------
    printf("=== Figure 9: CDF of registers untainted per "
           "untainting cycle, SPT{Ideal,ShadowMem} ===\n\n");
    printf("%-16s", "workload");
    for (int n = 1; n <= 9; ++n)
        printf("  <=%-4d", n);
    printf("  %6s\n", "mean");

    json.key("regs_per_untaint_cycle").beginArray();
    std::vector<double> cdf3;
    for (size_t wi = 0; wi < names.size(); ++wi) {
        const RunOutcome &out = outcomes[wi * stride];
        // Absent histogram (no untainting cycles) reads as empty.
        const auto it = out.engine_histograms.find(
            "untaint.regs_per_untaint_cycle");
        const Histogram h = it == out.engine_histograms.end()
                                ? Histogram(12)
                                : it->second;
        printf("%-16s", names[wi].c_str());
        json.beginObject();
        json.field("workload", names[wi]);
        json.key("cdf_pct").beginArray();
        for (int n = 1; n <= 9; ++n) {
            const double pct =
                100.0 * h.cdfAt(static_cast<uint64_t>(n));
            printf(" %5.1f%%", pct);
            json.value(pct, 1);
        }
        json.endArray();
        printf("  %6.2f\n", h.mean());
        json.field("mean", h.mean(), 2);
        json.field("untaint_cycles", h.samples());
        hostSecondsField(json, out.host_seconds);
        json.endObject();
        cdf3.push_back(100.0 * h.cdfAt(3));
    }
    json.endArray();
    printf("\nAverage fraction of untainting cycles with <= 3 "
           "registers untainted: %.1f%%\n",
           mean(cdf3));
    printf("(the paper picks untaint broadcast width 3 on this "
           "basis)\n");
    json.field("avg_cdf_at_3_pct", mean(cdf3), 1);

    // --- Part 2: broadcast-width ablation on the real design ------
    printf("\n=== Section 9.4 ablation: SPT{Bwd,ShadowL1} "
           "execution time vs broadcast width ===\n\n");
    printf("%-16s", "workload");
    for (unsigned wd : widths)
        printf("   w=%-5u", wd);
    printf("\n");
    json.key("widths").beginArray();
    for (unsigned wd : widths)
        json.value(static_cast<uint64_t>(wd));
    json.endArray();
    json.key("width_ablation").beginArray();
    for (size_t wi = 0; wi < names.size(); ++wi) {
        printf("%-16s", names[wi].c_str());
        json.beginObject();
        json.field("workload", names[wi]);
        json.key("normalized").beginArray();
        double base = 0.0;
        for (size_t di = 0; di < num_widths; ++di) {
            const RunOutcome &out = outcomes[wi * stride + 1 + di];
            const auto cycles =
                static_cast<double>(out.result.cycles);
            if (base == 0.0)
                base = cycles;
            printf(" %8.3f", cycles / base);
            json.value(cycles / base, 3);
        }
        json.endArray();
        json.key("host_seconds").beginArray();
        for (size_t di = 0; di < num_widths; ++di)
            json.value(outcomes[wi * stride + 1 + di].host_seconds,
                       6);
        json.endArray();
        json.endObject();
        printf("   (normalized to w=1)\n");
    }
    json.endArray();
    json.endObject();
    writeReportFile(opt.out_path, json.str());
    fprintf(stderr, "wrote %s\n", opt.out_path.c_str());
    return 0;
}
