/**
 * @file
 * Shared helpers for the figure-regeneration harnesses: grid
 * construction over the workload registry, common CLI handling
 * (--jobs / --out), and the paper's summary statistics. The
 * sweeps themselves run on the parallel experiment runner
 * (sim/exp_runner.h); drivers build their whole grid up front and
 * render tables/JSON from the index-addressed outcomes, so stdout
 * and the JSON artifact are byte-identical for any --jobs value.
 * Scheduling-dependent metadata (worker count, wall-clock) goes to
 * stderr only.
 */

#ifndef SPT_BENCH_BENCH_UTIL_H
#define SPT_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/event_log.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "sim/exp_runner.h"
#include "sim/report.h"
#include "workloads/workloads.h"

namespace spt {
namespace bench {

/** Common bench CLI: "--jobs N" (or SPT_JOBS), "--out PATH" for the
 *  JSON artifact, "--cache DIR" / "--cache-mode MODE" for the
 *  on-disk result cache, "--service SOCK" to route the sweep to a
 *  running spt_sweepd, "--poll-ms MS" for a fixed service
 *  status-poll cadence (default: adaptive 2->100 ms doubling), and
 *  "--event-log FILE" for the structured JSONL telemetry stream
 *  (DESIGN.md §15). Unknown arguments are fatal. */
struct BenchOptions {
    unsigned jobs = 1;
    std::string out_path;
};

inline BenchOptions
parseBenchArgs(int argc, char **argv, const char *default_out)
{
    BenchOptions opt;
    opt.jobs = jobsFromArgs(argc, argv);
    opt.out_path = default_out;
    // The cache/service flags resolve through the environment: the
    // runner reads SPT_CACHE_DIR / SPT_CACHE_MODE / SPT_SWEEP_SOCKET
    // itself, so every driver (and every ExpRunner a driver
    // constructs) picks them up with no per-driver plumbing.
    const auto set_env = [](const char *name,
                            const std::string &value) {
        setenv(name, value.c_str(), /*overwrite=*/1);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value_of = [&](const char *flag) {
            if (i + 1 >= argc)
                SPT_FATAL(flag << " requires a value");
            return std::string(argv[++i]);
        };
        if (arg == "--jobs") {
            ++i; // value consumed by jobsFromArgs
        } else if (arg.rfind("--jobs=", 0) == 0) {
            // consumed by jobsFromArgs
        } else if (arg == "--out") {
            opt.out_path = value_of("--out");
        } else if (arg.rfind("--out=", 0) == 0) {
            opt.out_path = arg.substr(6);
        } else if (arg == "--cache") {
            set_env("SPT_CACHE_DIR", value_of("--cache"));
        } else if (arg.rfind("--cache=", 0) == 0) {
            set_env("SPT_CACHE_DIR", arg.substr(8));
        } else if (arg == "--cache-mode") {
            set_env("SPT_CACHE_MODE", value_of("--cache-mode"));
        } else if (arg.rfind("--cache-mode=", 0) == 0) {
            set_env("SPT_CACHE_MODE", arg.substr(13));
        } else if (arg == "--service") {
            set_env("SPT_SWEEP_SOCKET", value_of("--service"));
        } else if (arg.rfind("--service=", 0) == 0) {
            set_env("SPT_SWEEP_SOCKET", arg.substr(10));
        } else if (arg == "--poll-ms") {
            set_env("SPT_SWEEP_POLL_MS", value_of("--poll-ms"));
        } else if (arg.rfind("--poll-ms=", 0) == 0) {
            set_env("SPT_SWEEP_POLL_MS", arg.substr(10));
        } else if (arg == "--event-log") {
            EventLog::global().openFile(value_of("--event-log"));
        } else if (arg.rfind("--event-log=", 0) == 0) {
            EventLog::global().openFile(arg.substr(12));
        } else {
            SPT_FATAL("unknown argument " << arg
                      << " (expected --jobs N / --out PATH / "
                         "--cache DIR / --cache-mode MODE / "
                         "--service SOCK / --poll-ms MS / "
                         "--event-log FILE)");
        }
    }
    return opt;
}

/** Reports sweep scheduling metadata on stderr (stdout must stay
 *  byte-identical across --jobs values). Routed through
 *  spt::report() — the unconditional operator channel — so the
 *  `[sweep]`/`[cache]` lines CI greps out of stderr survive any
 *  SPT_LOG_LEVEL and the benches' setVerbose(false). */
inline void
reportSweep(const ExpRunner &runner)
{
    const SweepStats &s = runner.lastSweep();
    char line[256];
    if (s.via_service) {
        // The service-specific tail answers "where did the wall
        // time go": cumulative client-side poll wait vs the
        // daemon's execution wall. Stderr only — host timing.
        snprintf(line, sizeof line,
                 "[sweep] %u worker(s), %llu unique job(s), "
                 "%llu memo hit(s), %.2fs wall (via sweep "
                 "service, %.2fs polling in %llu poll(s))",
                 s.workers,
                 static_cast<unsigned long long>(s.unique_jobs),
                 static_cast<unsigned long long>(s.memo_hits),
                 s.wall_seconds, s.poll_wait_seconds,
                 static_cast<unsigned long long>(s.polls));
    } else {
        snprintf(line, sizeof line,
                 "[sweep] %u worker(s), %llu unique job(s), "
                 "%llu memo hit(s), %.2fs wall",
                 s.workers,
                 static_cast<unsigned long long>(s.unique_jobs),
                 static_cast<unsigned long long>(s.memo_hits),
                 s.wall_seconds);
    }
    report(line);
    if (s.cache_mode != "off") {
        snprintf(line, sizeof line,
                 "[cache] mode=%s dir=%s hits=%llu misses=%llu "
                 "verify_mismatches=%llu bytes_written=%llu "
                 "saved=%.2fs",
                 s.cache_mode.c_str(), s.cache_dir.c_str(),
                 static_cast<unsigned long long>(s.cache.hits),
                 static_cast<unsigned long long>(s.cache.misses),
                 static_cast<unsigned long long>(
                     s.cache.verify_mismatches),
                 static_cast<unsigned long long>(
                     s.cache.bytes_written),
                 s.cache.host_seconds_saved);
        report(line);
    }
}

/** The workload-name lists the figure drivers sweep, honoring
 *  SPT_BENCH_QUICK. */
inline std::vector<std::string>
figureWorkloads(bool quick, const char *category = nullptr)
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (!category || w.category == category)
            names.push_back(w.name);
    if (quick) {
        names = {"pchase", "hashtab", "stream", "interp",
                 "ct-chacha20"};
        if (category && std::string(category) == "spec-like")
            names.pop_back(); // drop the constant-time kernel
    }
    return names;
}

inline const char *
modelName(AttackModel m)
{
    return m == AttackModel::kSpectre ? "Spectre" : "Futuristic";
}

/** Emits the `host_seconds` field (host wall-clock of one
 *  simulation, RunOutcome::host_seconds). This is the ONLY
 *  schedule-dependent value in any BENCH_ artifact — everything
 *  else is a pure function of the job grid. CI strips
 *  `host_seconds` before byte-comparing --jobs variants
 *  (.github/workflows/ci.yml); keep any new timing field under
 *  this same key so the filter keeps working. */
inline JsonWriter &
hostSecondsField(JsonWriter &jw, double seconds)
{
    return jw.field("host_seconds", seconds, 6);
}

/** Host seconds actually spent simulating outcomes
 *  [first, first+count): each unique run billed exactly once.
 *  Memoized slots are skipped explicitly — they carry
 *  host_seconds == 0 by contract (RunOutcome::memoized), but the
 *  skip keeps the aggregation correct even if that contract ever
 *  loosens, and documents that duplicates cost no host time. */
inline double
uniqueHostSeconds(const std::vector<RunOutcome> &outcomes,
                  std::size_t first, std::size_t count)
{
    double total = 0.0;
    for (std::size_t i = first; i < first + count; ++i)
        if (!outcomes[i].memoized)
            total += outcomes[i].host_seconds;
    return total;
}

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace bench
} // namespace spt

#endif // SPT_BENCH_BENCH_UTIL_H
