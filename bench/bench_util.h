/**
 * @file
 * Shared helpers for the figure-regeneration harnesses: run a
 * workload under a configuration, cache nothing, print aligned
 * tables, and compute the paper's summary statistics.
 */

#ifndef SPT_BENCH_BENCH_UTIL_H
#define SPT_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "sim/simulator.h"
#include "workloads/workloads.h"

namespace spt {
namespace bench {

/** Runs one workload under one configuration, returning a live
 *  Simulator (caller reads stats) result bundle. */
struct RunOutcome {
    SimResult result;
    std::map<std::string, uint64_t> engine_counters;
};

inline RunOutcome
runOne(const Program &program, const EngineConfig &engine,
       AttackModel model)
{
    SimConfig cfg;
    cfg.engine = engine;
    cfg.core.attack_model = model;
    Simulator sim(program, cfg);
    RunOutcome out;
    out.result = sim.run();
    out.engine_counters = sim.core().engine().stats().counters();
    return out;
}

inline const char *
modelName(AttackModel m)
{
    return m == AttackModel::kSpectre ? "Spectre" : "Futuristic";
}

inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace bench
} // namespace spt

#endif // SPT_BENCH_BENCH_UTIL_H
