/**
 * @file
 * Host-side simulator-throughput harness (not a paper figure).
 *
 * Runs a fixed workload set under each engine configuration and
 * reports how fast the *simulator itself* executes on the host, in
 * millions of simulated instructions per host second (Minstr/s).
 * Results are written to BENCH_throughput.json (or the path given as
 * argv[1]) so successive PRs can track the host-performance
 * trajectory of the per-cycle SPT machinery.
 *
 * Set SPT_BENCH_QUICK=1 to run a reduced workload subset (CI).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine_factory.h"

using namespace spt;
using namespace spt::bench;

namespace {

struct ConfigSpec {
    std::string name;
    EngineConfig engine;
};

std::vector<ConfigSpec>
benchConfigs()
{
    std::vector<ConfigSpec> configs;

    EngineConfig unsafe;
    unsafe.scheme = ProtectionScheme::kUnsafeBaseline;
    configs.push_back({"Unsafe", unsafe});

    // Delay-of-memory style baseline: every load/store waits for the
    // visibility point.
    EngineConfig dom;
    dom.scheme = ProtectionScheme::kSecureBaseline;
    configs.push_back({"SecureBaseline", dom});

    for (UntaintMethod m : {UntaintMethod::kNone, UntaintMethod::kForward,
                            UntaintMethod::kBackward}) {
        EngineConfig spt;
        spt.scheme = ProtectionScheme::kSpt;
        spt.spt.method = m;
        spt.spt.shadow = ShadowKind::kShadowL1;
        configs.push_back({engineConfigName(spt), spt});
    }
    return configs;
}

struct WorkloadResult {
    std::string workload;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    double host_seconds = 0.0;
};

double
minstrPerSec(uint64_t instructions, double seconds)
{
    return seconds <= 0.0
               ? 0.0
               : static_cast<double>(instructions) / seconds / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_throughput.json";
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    std::vector<std::string> names = {"pchase",  "interp", "hashtab",
                                      "stream",  "spmv",   "ct-chacha20"};
    if (quick)
        names = {"pchase", "hashtab", "ct-chacha20"};

    const std::vector<ConfigSpec> configs = benchConfigs();

    printf("=== Simulator host throughput (Minstr/s = simulated "
           "Minstr per host second) ===\n\n");
    printf("%-20s %-12s %12s %12s %10s\n", "config", "workload",
           "sim-instrs", "host-ms", "Minstr/s");

    FILE *json = fopen(out_path.c_str(), "w");
    if (!json) {
        fprintf(stderr, "cannot open %s for writing\n",
                out_path.c_str());
        return 1;
    }
    fprintf(json, "{\n  \"unit\": \"Minstr/s\",\n  \"configs\": [\n");

    for (size_t ci = 0; ci < configs.size(); ++ci) {
        const ConfigSpec &spec = configs[ci];
        std::vector<WorkloadResult> results;
        uint64_t total_instrs = 0;
        double total_seconds = 0.0;

        for (const std::string &name : names) {
            const Workload &w = workloadByName(name);
            SimConfig cfg;
            cfg.engine = spec.engine;
            cfg.core.attack_model = AttackModel::kFuturistic;
            Simulator sim(w.program, cfg);
            const auto t0 = std::chrono::steady_clock::now();
            const SimResult res = sim.run();
            const auto t1 = std::chrono::steady_clock::now();
            if (!res.halted)
                SPT_FATAL("workload " << name
                                      << " did not halt under "
                                      << spec.name);

            WorkloadResult wr;
            wr.workload = name;
            wr.instructions = res.instructions;
            wr.cycles = res.cycles;
            wr.host_seconds =
                std::chrono::duration<double>(t1 - t0).count();
            total_instrs += wr.instructions;
            total_seconds += wr.host_seconds;
            results.push_back(wr);

            printf("%-20s %-12s %12llu %12.1f %10.3f\n",
                   spec.name.c_str(), name.c_str(),
                   static_cast<unsigned long long>(wr.instructions),
                   wr.host_seconds * 1e3,
                   minstrPerSec(wr.instructions, wr.host_seconds));
            fflush(stdout);
        }

        const double agg = minstrPerSec(total_instrs, total_seconds);
        printf("%-20s %-12s %12llu %12.1f %10.3f\n\n",
               spec.name.c_str(), "TOTAL",
               static_cast<unsigned long long>(total_instrs),
               total_seconds * 1e3, agg);

        fprintf(json, "    {\n      \"name\": \"%s\",\n",
                spec.name.c_str());
        fprintf(json, "      \"minstr_per_sec\": %.4f,\n", agg);
        fprintf(json, "      \"workloads\": [\n");
        for (size_t wi = 0; wi < results.size(); ++wi) {
            const WorkloadResult &wr = results[wi];
            fprintf(json,
                    "        {\"name\": \"%s\", \"instructions\": "
                    "%llu, \"cycles\": %llu, \"host_seconds\": %.6f, "
                    "\"minstr_per_sec\": %.4f}%s\n",
                    wr.workload.c_str(),
                    static_cast<unsigned long long>(wr.instructions),
                    static_cast<unsigned long long>(wr.cycles),
                    wr.host_seconds,
                    minstrPerSec(wr.instructions, wr.host_seconds),
                    wi + 1 < results.size() ? "," : "");
        }
        fprintf(json, "      ]\n    }%s\n",
                ci + 1 < configs.size() ? "," : "");
    }
    fprintf(json, "  ]\n}\n");
    fclose(json);
    printf("wrote %s\n", out_path.c_str());
    return 0;
}
