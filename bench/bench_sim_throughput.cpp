/**
 * @file
 * Host-side simulator-throughput harness (not a paper figure).
 *
 * Runs a fixed workload set under each engine configuration and
 * reports how fast the *simulator itself* executes on the host, in
 * millions of simulated instructions per host second (Minstr/s).
 * Results are written to BENCH_throughput.json (or --out PATH) so
 * successive PRs can track the host-performance trajectory of the
 * per-cycle SPT machinery.
 *
 * Every configuration is measured twice: ticking every cycle, and
 * with fast-forward (CoreParams::fast_forward) skipping provably
 * quiescent periods. The ff runs appear as separate "<config>+ff"
 * entries in the artifact so the regression gate tracks both, and
 * the table prints the per-config speedup (the PR-6 acceptance
 * lever: >= 3x on at least one SPT config).
 *
 * The grid runs on the parallel experiment runner. Simulated
 * results (instructions, cycles) are --jobs-independent; the host
 * timings are per-job wall-clock, so with --jobs > 1 on a busy or
 * oversubscribed host the Minstr/s figures degrade from
 * contention — use --jobs 1 for comparable trajectory numbers.
 *
 * Usage: bench_sim_throughput [--jobs N] [--out PATH] (a bare
 * first argument is also accepted as the output path, as before).
 * Set SPT_BENCH_QUICK=1 to run a reduced workload subset (CI).
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine_factory.h"

using namespace spt;
using namespace spt::bench;

namespace {

std::vector<NamedConfig>
benchConfigs()
{
    std::vector<NamedConfig> configs;

    EngineConfig unsafe;
    unsafe.scheme = ProtectionScheme::kUnsafeBaseline;
    configs.push_back({"Unsafe", unsafe});

    // Delay-of-memory style baseline: every load/store waits for the
    // visibility point.
    EngineConfig dom;
    dom.scheme = ProtectionScheme::kSecureBaseline;
    configs.push_back({"SecureBaseline", dom});

    for (UntaintMethod m : {UntaintMethod::kNone, UntaintMethod::kForward,
                            UntaintMethod::kBackward}) {
        EngineConfig spt;
        spt.scheme = ProtectionScheme::kSpt;
        spt.spt.method = m;
        spt.spt.shadow = ShadowKind::kShadowL1;
        configs.push_back({engineConfigName(spt), spt});
    }

    // The PR-6 reference point: the pre-repack byte/map taint
    // containers. The headline lever product (bitplane storage x
    // fast-forward) is reported against this row ticking every
    // cycle.
    EngineConfig legacy;
    legacy.scheme = ProtectionScheme::kSpt;
    legacy.spt.method = UntaintMethod::kBackward;
    legacy.spt.shadow = ShadowKind::kShadowL1;
    legacy.spt.storage = SptConfig::Storage::kLegacy;
    configs.push_back({"SPT{Bwd,ShadowL1}:legacy", legacy});
    return configs;
}

double
minstrPerSec(uint64_t instructions, double seconds)
{
    return seconds <= 0.0
               ? 0.0
               : static_cast<double>(instructions) / seconds / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    // Back-compat: a bare first argument is the output path.
    BenchOptions opt;
    if (argc > 1 && argv[1][0] != '-') {
        opt.jobs = jobsFromArgs(argc - 1, argv + 1);
        opt.out_path = argv[1];
    } else {
        opt = parseBenchArgs(argc, argv, "BENCH_throughput.json");
    }
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    std::vector<std::string> names = {"pchase",  "interp", "hashtab",
                                      "stream",  "spmv",   "ct-chacha20"};
    if (quick)
        names = {"pchase", "hashtab", "ct-chacha20"};

    const std::vector<NamedConfig> configs = benchConfigs();

    // Per config: one block ticking every cycle, one fast-forwarding
    // quiescent periods (distinct memo keys, so both really run).
    std::vector<RunJob> grid;
    for (const NamedConfig &spec : configs) {
        for (bool ff : {false, true}) {
            for (const std::string &name : names) {
                RunJob job;
                job.program = &workloadByName(name).program;
                job.engine = spec.engine;
                job.attack_model = AttackModel::kFuturistic;
                job.fast_forward = ff;
                grid.push_back(job);
            }
        }
    }

    ExpRunner runner(opt.jobs);
    const std::vector<RunOutcome> outcomes = runner.run(grid);
    reportSweep(runner);

    printf("=== Simulator host throughput (Minstr/s = simulated "
           "Minstr per host second) ===\n\n");
    printf("%-20s %-12s %12s %12s %10s\n", "config", "workload",
           "sim-instrs", "host-ms", "Minstr/s");

    JsonWriter json;
    json.beginObject();
    json.field("unit", "Minstr/s");
    json.field("sweep_jobs", static_cast<uint64_t>(runner.workers()));
    json.key("configs").beginArray();

    size_t slot = 0;
    std::map<std::string, double> agg_rates;
    for (const NamedConfig &spec : configs) {
        double agg_by_mode[2] = {0.0, 0.0};
        for (int mode = 0; mode < 2; ++mode) {
            const bool ff = mode == 1;
            const std::string label =
                ff ? spec.name + "+ff" : spec.name;
            uint64_t total_instrs = 0;
            json.beginObject();
            json.field("name", label);
            const size_t first = slot;
            for (const std::string &name : names) {
                const RunOutcome &out = outcomes[slot++];
                if (!out.result.halted)
                    SPT_FATAL("workload " << name
                                          << " did not halt under "
                                          << label);
                total_instrs += out.result.instructions;
                printf("%-24s %-12s %12llu %12.1f %10.3f\n",
                       label.c_str(), name.c_str(),
                       static_cast<unsigned long long>(
                           out.result.instructions),
                       out.host_seconds * 1e3,
                       minstrPerSec(out.result.instructions,
                                    out.host_seconds));
            }
            const double total_seconds =
                uniqueHostSeconds(outcomes, first, names.size());
            const double agg =
                minstrPerSec(total_instrs, total_seconds);
            agg_by_mode[mode] = agg;
            agg_rates[label] = agg;
            printf("%-24s %-12s %12llu %12.1f %10.3f\n",
                   label.c_str(), "TOTAL",
                   static_cast<unsigned long long>(total_instrs),
                   total_seconds * 1e3, agg);

            json.field("minstr_per_sec", agg);
            hostSecondsField(json, total_seconds);
            if (ff && agg_by_mode[0] > 0.0)
                json.field("ff_speedup", agg / agg_by_mode[0], 3);
            json.key("workloads").beginArray();
            for (size_t wi = 0; wi < names.size(); ++wi) {
                const RunOutcome &out = outcomes[first + wi];
                json.beginObject();
                json.field("name", names[wi]);
                json.field("instructions", out.result.instructions);
                json.field("cycles", out.result.cycles);
                hostSecondsField(json, out.host_seconds);
                json.field("minstr_per_sec",
                           minstrPerSec(out.result.instructions,
                                        out.host_seconds));
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
        if (agg_by_mode[0] > 0.0)
            printf("%-24s fast-forward speedup: %.2fx\n\n",
                   spec.name.c_str(),
                   agg_by_mode[1] / agg_by_mode[0]);
        else
            printf("\n");
    }
    json.endArray();

    // The PR-6 acceptance number: both levers against the legacy
    // containers ticking every cycle.
    double combined = 0.0;
    const auto legacy_it = agg_rates.find("SPT{Bwd,ShadowL1}:legacy");
    const auto fast_it = agg_rates.find("SPT{Bwd,ShadowL1}+ff");
    if (legacy_it != agg_rates.end() && fast_it != agg_rates.end() &&
        legacy_it->second > 0.0) {
        combined = fast_it->second / legacy_it->second;
        printf("combined speedup, bitplane+ff vs legacy "
               "tick-every-cycle (SPT{Bwd,ShadowL1}): %.2fx\n\n",
               combined);
    }
    json.field("combined_speedup_bitplane_ff_vs_legacy", combined, 3);
    json.endObject();
    writeReportFile(opt.out_path, json.str());
    printf("wrote %s\n", opt.out_path.c_str());
    return 0;
}
