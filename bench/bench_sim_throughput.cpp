/**
 * @file
 * Host-side simulator-throughput harness (not a paper figure).
 *
 * Runs a fixed workload set under each engine configuration and
 * reports how fast the *simulator itself* executes on the host, in
 * millions of simulated instructions per host second (Minstr/s).
 * Results are written to BENCH_throughput.json (or --out PATH) so
 * successive PRs can track the host-performance trajectory of the
 * per-cycle SPT machinery.
 *
 * The grid runs on the parallel experiment runner. Simulated
 * results (instructions, cycles) are --jobs-independent; the host
 * timings are per-job wall-clock, so with --jobs > 1 on a busy or
 * oversubscribed host the Minstr/s figures degrade from
 * contention — use --jobs 1 for comparable trajectory numbers.
 *
 * Usage: bench_sim_throughput [--jobs N] [--out PATH] (a bare
 * first argument is also accepted as the output path, as before).
 * Set SPT_BENCH_QUICK=1 to run a reduced workload subset (CI).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine_factory.h"

using namespace spt;
using namespace spt::bench;

namespace {

std::vector<NamedConfig>
benchConfigs()
{
    std::vector<NamedConfig> configs;

    EngineConfig unsafe;
    unsafe.scheme = ProtectionScheme::kUnsafeBaseline;
    configs.push_back({"Unsafe", unsafe});

    // Delay-of-memory style baseline: every load/store waits for the
    // visibility point.
    EngineConfig dom;
    dom.scheme = ProtectionScheme::kSecureBaseline;
    configs.push_back({"SecureBaseline", dom});

    for (UntaintMethod m : {UntaintMethod::kNone, UntaintMethod::kForward,
                            UntaintMethod::kBackward}) {
        EngineConfig spt;
        spt.scheme = ProtectionScheme::kSpt;
        spt.spt.method = m;
        spt.spt.shadow = ShadowKind::kShadowL1;
        configs.push_back({engineConfigName(spt), spt});
    }
    return configs;
}

double
minstrPerSec(uint64_t instructions, double seconds)
{
    return seconds <= 0.0
               ? 0.0
               : static_cast<double>(instructions) / seconds / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    // Back-compat: a bare first argument is the output path.
    BenchOptions opt;
    if (argc > 1 && argv[1][0] != '-') {
        opt.jobs = jobsFromArgs(argc - 1, argv + 1);
        opt.out_path = argv[1];
    } else {
        opt = parseBenchArgs(argc, argv, "BENCH_throughput.json");
    }
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    std::vector<std::string> names = {"pchase",  "interp", "hashtab",
                                      "stream",  "spmv",   "ct-chacha20"};
    if (quick)
        names = {"pchase", "hashtab", "ct-chacha20"};

    const std::vector<NamedConfig> configs = benchConfigs();

    std::vector<RunJob> grid;
    for (const NamedConfig &spec : configs) {
        for (const std::string &name : names) {
            RunJob job;
            job.program = &workloadByName(name).program;
            job.engine = spec.engine;
            job.attack_model = AttackModel::kFuturistic;
            grid.push_back(job);
        }
    }

    ExpRunner runner(opt.jobs);
    const std::vector<RunOutcome> outcomes = runner.run(grid);
    reportSweep(runner);

    printf("=== Simulator host throughput (Minstr/s = simulated "
           "Minstr per host second) ===\n\n");
    printf("%-20s %-12s %12s %12s %10s\n", "config", "workload",
           "sim-instrs", "host-ms", "Minstr/s");

    JsonWriter json;
    json.beginObject();
    json.field("unit", "Minstr/s");
    json.field("sweep_jobs", static_cast<uint64_t>(runner.workers()));
    json.key("configs").beginArray();

    size_t slot = 0;
    for (const NamedConfig &spec : configs) {
        uint64_t total_instrs = 0;
        double total_seconds = 0.0;
        json.beginObject();
        json.field("name", spec.name);
        const size_t first = slot;
        for (const std::string &name : names) {
            const RunOutcome &out = outcomes[slot++];
            if (!out.result.halted)
                SPT_FATAL("workload " << name
                                      << " did not halt under "
                                      << spec.name);
            total_instrs += out.result.instructions;
            total_seconds += out.host_seconds;
            printf("%-20s %-12s %12llu %12.1f %10.3f\n",
                   spec.name.c_str(), name.c_str(),
                   static_cast<unsigned long long>(
                       out.result.instructions),
                   out.host_seconds * 1e3,
                   minstrPerSec(out.result.instructions,
                                out.host_seconds));
        }
        const double agg = minstrPerSec(total_instrs, total_seconds);
        printf("%-20s %-12s %12llu %12.1f %10.3f\n\n",
               spec.name.c_str(), "TOTAL",
               static_cast<unsigned long long>(total_instrs),
               total_seconds * 1e3, agg);

        json.field("minstr_per_sec", agg);
        hostSecondsField(json, total_seconds);
        json.key("workloads").beginArray();
        for (size_t wi = 0; wi < names.size(); ++wi) {
            const RunOutcome &out = outcomes[first + wi];
            json.beginObject();
            json.field("name", names[wi]);
            json.field("instructions", out.result.instructions);
            json.field("cycles", out.result.cycles);
            hostSecondsField(json, out.host_seconds);
            json.field("minstr_per_sec",
                       minstrPerSec(out.result.instructions,
                                    out.host_seconds));
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    writeReportFile(opt.out_path, json.str());
    printf("wrote %s\n", opt.out_path.c_str());
    return 0;
}
