/**
 * @file
 * google-benchmark microbenchmarks of the simulator's components:
 * the cost of the untaint algebra, taint-mask operations, branch
 * predictors, cache accesses, the functional CPU, and full
 * cycle-level simulation throughput per protection scheme. These
 * quantify the engineering cost of the SPT machinery inside the
 * simulator itself.
 */

#include <benchmark/benchmark.h>

#include "bp/ltage.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/untaint_algebra.h"
#include "core/untaint_rules.h"
#include "isa/functional_cpu.h"
#include "mem/memory_system.h"
#include "sim/simulator.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

void
BM_TaintMaskPropagate(benchmark::State &state)
{
    Rng rng(1);
    TaintMask a = TaintMask::fromByteMask(0x0f);
    TaintMask b = TaintMask::fromByteMask(0xf0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            propagateForward(Opcode::kXor, a, b));
        benchmark::DoNotOptimize(
            propagateBackward(Opcode::kAdd, a, b,
                              TaintMask::none()));
    }
}
BENCHMARK(BM_TaintMaskPropagate);

void
BM_GateGraphPropagate(benchmark::State &state)
{
    const auto gates = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        GateGraph g;
        Rng rng(7);
        std::vector<int> wires;
        for (int i = 0; i < 8; ++i)
            wires.push_back(
                g.addInput(rng.nextBool(), true));
        for (int i = 0; i < gates; ++i) {
            const auto op = static_cast<GateOp>(rng.nextBelow(3));
            const int a = wires[rng.nextBelow(wires.size())];
            const int b = wires[rng.nextBelow(wires.size())];
            wires.push_back(g.addGate(op, a, b));
        }
        g.declassify(wires.back());
        state.ResumeTiming();
        benchmark::DoNotOptimize(g.propagate());
    }
}
BENCHMARK(BM_GateGraphPropagate)->Arg(16)->Arg(64)->Arg(256);

void
BM_LtagePredict(benchmark::State &state)
{
    LtagePredictor ltage;
    Rng rng(3);
    uint64_t pc = 0;
    for (auto _ : state) {
        pc = (pc + 7) & 0xffff;
        const bool taken = (pc & 3) != 0;
        benchmark::DoNotOptimize(ltage.predict(pc));
        ltage.update(pc, taken);
    }
}
BENCHMARK(BM_LtagePredict);

void
BM_CacheAccess(benchmark::State &state)
{
    MemorySystem mem;
    Rng rng(4);
    uint64_t now = 0;
    for (auto _ : state) {
        const uint64_t addr = rng.nextBelow(1 << 22);
        benchmark::DoNotOptimize(
            mem.access(addr, AccessKind::kLoad, ++now));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_FunctionalCpu(benchmark::State &state)
{
    const Workload &w = workloadByName("stream");
    for (auto _ : state) {
        FunctionalCpu cpu(w.program);
        const auto r = cpu.run(50'000);
        benchmark::DoNotOptimize(r.instructions);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 50'000);
}
BENCHMARK(BM_FunctionalCpu)->Unit(benchmark::kMillisecond);

void
BM_CoreSimulation(benchmark::State &state)
{
    setVerbose(false);
    const auto configs = table2Configs();
    const auto &nc = configs[static_cast<size_t>(state.range(0))];
    const Workload &w = workloadByName("interp");
    uint64_t cycles = 0;
    for (auto _ : state) {
        SimConfig cfg;
        cfg.engine = nc.engine;
        cfg.max_cycles = 30'000;
        Simulator sim(w.program, cfg);
        const SimResult r = sim.run();
        cycles += r.cycles;
    }
    state.SetItemsProcessed(static_cast<int64_t>(cycles));
    state.SetLabel(nc.name);
}
BENCHMARK(BM_CoreSimulation)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace spt

BENCHMARK_MAIN();
