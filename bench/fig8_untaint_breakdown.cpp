/**
 * @file
 * Regenerates Figure 8: a per-benchmark breakdown of untaint events
 * by type (VP declassification, forward, backward, shadow-L1 data,
 * store-to-load forwarding) for the full SPT design
 * (SPT {Bwd, ShadowL1}), under both attack models.
 *
 * The (workload x model) grid runs on the parallel experiment
 * runner; stdout and the JSON artifact are byte-identical for any
 * --jobs value.
 *
 * Usage: fig8_untaint_breakdown [--jobs N] [--out BENCH_fig8.json]
 * Set SPT_BENCH_QUICK=1 to run a 5-workload subset.
 */

#include <cstdlib>

#include "bench/bench_util.h"

using namespace spt;
using namespace spt::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const BenchOptions opt =
        parseBenchArgs(argc, argv, "BENCH_fig8.json");
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    const std::vector<std::string> names = figureWorkloads(quick);
    const AttackModel models[] = {AttackModel::kFuturistic,
                                  AttackModel::kSpectre};

    EngineConfig engine;
    engine.scheme = ProtectionScheme::kSpt;
    engine.spt.method = UntaintMethod::kBackward;
    engine.spt.shadow = ShadowKind::kShadowL1;

    const char *columns[] = {
        "untaint.vp_declassify", "untaint.forward",
        "untaint.backward",      "untaint.shadow_data",
        "untaint.stl_forward",
    };
    const char *headers[] = {"vp_declass", "forward", "backward",
                             "shadow_l1", "stl_fwd"};

    std::vector<RunJob> grid;
    for (const std::string &name : names) {
        const Workload &w = workloadByName(name);
        for (const AttackModel model : models) {
            RunJob job;
            job.program = &w.program;
            job.engine = engine;
            job.attack_model = model;
            grid.push_back(job);
        }
    }

    ExpRunner runner(opt.jobs);
    const std::vector<RunOutcome> outcomes = runner.run(grid);
    reportSweep(runner);

    printf("=== Figure 8: untaint-event breakdown, "
           "SPT{Bwd,ShadowL1} ===\n");
    printf("(percent of all untaint events; F = Futuristic, "
           "S = Spectre)\n\n");
    printf("%-18s %-3s", "workload", "M");
    for (const char *h : headers)
        printf(" %11s", h);
    printf(" %12s\n", "total_events");

    JsonWriter json;
    json.beginObject();
    json.field("bench", "fig8_untaint_breakdown");
    json.field("quick", quick);
    json.key("columns").beginArray();
    for (const char *c : columns)
        json.value(c);
    json.endArray();
    json.key("rows").beginArray();

    size_t slot = 0;
    for (const std::string &name : names) {
        for (const AttackModel model : models) {
            const RunOutcome &out = outcomes[slot++];
            uint64_t total = 0;
            for (const char *c : columns)
                total += out.counter(c);
            printf("%-18s %-3s", name.c_str(),
                   model == AttackModel::kFuturistic ? "F" : "S");
            json.beginObject();
            json.field("workload", name);
            json.field("model", modelName(model));
            json.key("events").beginArray();
            for (const char *c : columns)
                json.value(out.counter(c));
            json.endArray();
            json.key("percent").beginArray();
            for (const char *c : columns) {
                const uint64_t v = out.counter(c);
                const double pct =
                    total ? 100.0 * static_cast<double>(v) /
                                static_cast<double>(total)
                          : 0.0;
                printf(" %10.1f%%", pct);
                json.value(pct, 1);
            }
            json.endArray();
            json.field("total_events", total);
            hostSecondsField(json, out.host_seconds);
            json.endObject();
            printf(" %12llu\n",
                   static_cast<unsigned long long>(total));
        }
    }
    json.endArray();
    json.endObject();
    writeReportFile(opt.out_path, json.str());
    fprintf(stderr, "wrote %s\n", opt.out_path.c_str());
    return 0;
}
