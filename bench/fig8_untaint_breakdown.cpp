/**
 * @file
 * Regenerates Figure 8: a per-benchmark breakdown of untaint events
 * by type (VP declassification, forward, backward, shadow-L1 data,
 * store-to-load forwarding) for the full SPT design
 * (SPT {Bwd, ShadowL1}), under both attack models.
 *
 * Set SPT_BENCH_QUICK=1 to run a 5-workload subset.
 */

#include <cstdlib>

#include "bench/bench_util.h"

using namespace spt;
using namespace spt::bench;

int
main()
{
    setVerbose(false);
    const bool quick = std::getenv("SPT_BENCH_QUICK") != nullptr;

    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    if (quick)
        names = {"pchase", "hashtab", "stream", "interp",
                 "ct-chacha20"};

    EngineConfig engine;
    engine.scheme = ProtectionScheme::kSpt;
    engine.spt.method = UntaintMethod::kBackward;
    engine.spt.shadow = ShadowKind::kShadowL1;

    const char *columns[] = {
        "untaint.vp_declassify", "untaint.forward",
        "untaint.backward",      "untaint.shadow_data",
        "untaint.stl_forward",
    };
    const char *headers[] = {"vp_declass", "forward", "backward",
                             "shadow_l1", "stl_fwd"};

    printf("=== Figure 8: untaint-event breakdown, "
           "SPT{Bwd,ShadowL1} ===\n");
    printf("(percent of all untaint events; F = Futuristic, "
           "S = Spectre)\n\n");
    printf("%-18s %-3s", "workload", "M");
    for (const char *h : headers)
        printf(" %11s", h);
    printf(" %12s\n", "total_events");

    for (const std::string &name : names) {
        const Workload &w = workloadByName(name);
        for (AttackModel model :
             {AttackModel::kFuturistic, AttackModel::kSpectre}) {
            const RunOutcome out =
                runOne(w.program, engine, model);
            uint64_t total = 0;
            for (const char *c : columns) {
                auto it = out.engine_counters.find(c);
                if (it != out.engine_counters.end())
                    total += it->second;
            }
            printf("%-18s %-3s", name.c_str(),
                   model == AttackModel::kFuturistic ? "F" : "S");
            for (const char *c : columns) {
                auto it = out.engine_counters.find(c);
                const uint64_t v =
                    it == out.engine_counters.end() ? 0
                                                    : it->second;
                printf(" %10.1f%%",
                       total ? 100.0 * static_cast<double>(v) /
                                   static_cast<double>(total)
                             : 0.0);
            }
            printf(" %12llu\n",
                   static_cast<unsigned long long>(total));
            fflush(stdout);
        }
    }
    return 0;
}
