/**
 * @file
 * Semantic soundness of the forward taint rule's lane precision
 * (Sections 6.6 / 7.2): for every opcode and every combination of
 * input taint masks, any two input values that agree on the
 * untainted access-mode groups must produce outputs that agree on
 * the untainted output groups — i.e., tainted data can never
 * influence bits the rule marks public.
 *
 * Checked by randomized simulation: flip only tainted-group bits of
 * the inputs and verify the untainted output groups are invariant.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/untaint_rules.h"
#include "isa/semantics.h"

namespace spt {
namespace {

/** Byte mask (8 bits) covered by a group mask. */
uint64_t
groupBytesMask(TaintMask m)
{
    uint64_t out = 0;
    const uint8_t bytes = m.toByteMask();
    for (unsigned b = 0; b < 8; ++b)
        if ((bytes >> b) & 1)
            out |= 0xffull << (8 * b);
    return out;
}

std::vector<Opcode>
dataOpcodes()
{
    std::vector<Opcode> ops;
    for (size_t i = 0; i < static_cast<size_t>(Opcode::kNumOpcodes);
         ++i) {
        const auto op = static_cast<Opcode>(i);
        const OpTraits &t = opTraits(op);
        if (t.has_dest && !t.is_load && !isControlFlow(op))
            ops.push_back(op);
    }
    return ops;
}

class LaneSoundness : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(LaneSoundness, TaintedLanesCannotReachPublicOutputLanes)
{
    const Opcode op = GetParam();
    const OpTraits &traits = opTraits(op);
    Rng rng(0x1a9e + static_cast<uint64_t>(op));

    for (unsigned m1 = 0; m1 < 16; ++m1) {
        for (unsigned m2 = 0; m2 < 16; ++m2) {
            // Build group masks from the 4-bit loop variables
            // (group g covers the byte ranges of Section 7.2).
            auto group_mask = [](unsigned bits) {
                uint8_t byte_mask = 0;
                if (bits & 1)
                    byte_mask |= 0x01;
                if (bits & 2)
                    byte_mask |= 0x02;
                if (bits & 4)
                    byte_mask |= 0x0c;
                if (bits & 8)
                    byte_mask |= 0xf0;
                return TaintMask::fromByteMask(byte_mask);
            };
            const TaintMask a = group_mask(m1);
            const TaintMask b = group_mask(m2);
            const TaintMask out = propagateForward(op, a, b);
            const uint64_t public_out = ~groupBytesMask(out);
            const uint64_t taint_a = groupBytesMask(a);
            const uint64_t taint_b =
                traits.num_srcs >= 2 ? groupBytesMask(b) : 0;

            Instruction inst{op, 1, 2, 3,
                             static_cast<int64_t>(
                                 rng.nextRange(-64, 64))};
            for (int trial = 0; trial < 16; ++trial) {
                const uint64_t base_a = rng.next();
                const uint64_t base_b = rng.next();
                const uint64_t ref =
                    evaluateOp(inst, 0, base_a, base_b).value;
                // Perturb only tainted lanes.
                const uint64_t alt_a =
                    (base_a & ~taint_a) | (rng.next() & taint_a);
                const uint64_t alt_b =
                    (base_b & ~taint_b) | (rng.next() & taint_b);
                const uint64_t got =
                    evaluateOp(inst, 0, alt_a, alt_b).value;
                ASSERT_EQ(ref & public_out, got & public_out)
                    << mnemonic(op) << " leaked tainted input lanes "
                    << "into a public output lane (a mask "
                    << unsigned{a.raw()} << ", b mask "
                    << unsigned{b.raw()} << ")";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllDataOps, LaneSoundness,
                         ::testing::ValuesIn(dataOpcodes()),
                         [](const auto &info) {
                             return std::string(
                                 mnemonic(info.param));
                         });

} // namespace
} // namespace spt
