/**
 * @file
 * Differential fuzzing: constrained random programs run on the
 * out-of-order core under every protection scheme and both attack
 * models, with the architectural results (and, for a subset,
 * every single commit) checked against the functional reference
 * CPU. Catches squash/forwarding/taint-policy bugs that targeted
 * tests miss.
 */

#include <gtest/gtest.h>

#include "isa/functional_cpu.h"
#include "isa/program_fuzzer.h"
#include "sim/simulator.h"

namespace spt {
namespace {

void
checkArchitecturalMatch(const Program &p, const EngineConfig &ec,
                        AttackModel model, bool lockstep)
{
    SimConfig cfg;
    cfg.engine = ec;
    cfg.core.attack_model = model;
    cfg.core.perfect_icache = true; // fuzzing targets the backend
    cfg.lockstep_check = lockstep;
    cfg.max_cycles = 3'000'000;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    ASSERT_TRUE(r.halted) << "fuzz program did not halt";

    FunctionalCpu cpu(p);
    const auto fr = cpu.run(5'000'000);
    ASSERT_TRUE(fr.halted);
    for (unsigned reg = 1; reg < kNumArchRegs; ++reg)
        ASSERT_EQ(sim.core().archReg(reg), cpu.reg(reg))
            << "x" << reg << " mismatch";
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzSeeds, AllSchemesMatchReference)
{
    const Program p = fuzzProgram(GetParam());
    ASSERT_GT(p.size(), 50u);
    for (const NamedConfig &nc : table2Configs()) {
        for (AttackModel model :
             {AttackModel::kSpectre, AttackModel::kFuturistic}) {
            SCOPED_TRACE(nc.name);
            // Full lockstep on the two most intricate schemes.
            const bool lockstep =
                nc.name == "SPT{Bwd,ShadowL1}" || nc.name == "STT";
            checkArchitecturalMatch(p, nc.engine, model, lockstep);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8,
                                           0xdead, 0xbeef));

TEST(Fuzz, MemoryHeavyPrograms)
{
    FuzzConfig cfg;
    cfg.mem_fraction = 0.7;
    cfg.num_blocks = 10;
    for (uint64_t seed : {100, 101, 102}) {
        const Program p = fuzzProgram(seed, cfg);
        EngineConfig ec;
        ec.scheme = ProtectionScheme::kSpt;
        checkArchitecturalMatch(p, ec, AttackModel::kFuturistic,
                                true);
    }
}

TEST(Fuzz, BranchHeavyPrograms)
{
    FuzzConfig cfg;
    cfg.branch_fraction = 1.0;
    cfg.loop_iterations = 8;
    cfg.num_blocks = 16;
    for (uint64_t seed : {200, 201, 202}) {
        const Program p = fuzzProgram(seed, cfg);
        EngineConfig ec;
        ec.scheme = ProtectionScheme::kSpt;
        checkArchitecturalMatch(p, ec, AttackModel::kSpectre, true);
    }
}

TEST(Fuzz, TinyPipelineStressesResourceLimits)
{
    // A deliberately starved machine (tiny ROB/RS/LSQ) must still be
    // architecturally correct.
    const Program p = fuzzProgram(77);
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.core.rob_size = 8;
    cfg.core.rs_size = 4;
    cfg.core.lq_size = 2;
    cfg.core.sq_size = 2;
    cfg.core.num_phys_regs = 64;
    cfg.core.perfect_icache = true;
    cfg.lockstep_check = true;
    cfg.max_cycles = 5'000'000;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    ASSERT_TRUE(r.halted);
    FunctionalCpu cpu(p);
    cpu.run(5'000'000);
    EXPECT_EQ(sim.core().archReg(17), cpu.reg(17));
}

TEST(Fuzz, DeterministicGeneration)
{
    const Program a = fuzzProgram(42);
    const Program b = fuzzProgram(42);
    ASSERT_EQ(a.size(), b.size());
    for (uint64_t pc = 0; pc < a.size(); ++pc)
        EXPECT_EQ(a.at(pc), b.at(pc));
    const Program c = fuzzProgram(43);
    bool differs = a.size() != c.size();
    for (uint64_t pc = 0; !differs && pc < a.size(); ++pc)
        differs = !(a.at(pc) == c.at(pc));
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace spt
