/**
 * @file
 * Parallel experiment runner (sim/exp_runner.h + common/parallel.h):
 * determinism across worker counts, memoization accounting,
 * exception-in-job propagation, and the memo-key sensitivity that
 * keeps distinct design points from merging.
 */

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/knowledge_map.h"
#include "sim/exp_runner.h"
#include "sim/report.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

// Reduced-size programs so the whole file stays in the test tier.
struct TestPrograms {
    Program pchase = makePointerChase(256, 1);
    Program hashtab = makeHashTable(300, 300);
    Program chacha = makeChaCha20(2);
};

std::vector<RunJob>
mixedGrid(const TestPrograms &p)
{
    std::vector<EngineConfig> engines(3);
    engines[0].scheme = ProtectionScheme::kUnsafeBaseline;
    engines[1].scheme = ProtectionScheme::kSecureBaseline;
    engines[2].scheme = ProtectionScheme::kSpt;
    engines[2].spt.method = UntaintMethod::kBackward;
    engines[2].spt.shadow = ShadowKind::kShadowL1;

    std::vector<RunJob> grid;
    for (const Program *prog :
         {&p.pchase, &p.hashtab, &p.chacha}) {
        for (const EngineConfig &e : engines) {
            for (AttackModel m : {AttackModel::kFuturistic,
                                  AttackModel::kSpectre}) {
                RunJob job;
                job.program = prog;
                job.engine = e;
                job.attack_model = m;
                grid.push_back(job);
            }
        }
    }
    return grid;
}

void
expectSameOutcome(const RunOutcome &a, const RunOutcome &b,
                  size_t slot)
{
    EXPECT_EQ(a.result.cycles, b.result.cycles) << "slot " << slot;
    EXPECT_EQ(a.result.instructions, b.result.instructions)
        << "slot " << slot;
    EXPECT_EQ(a.result.halted, b.result.halted) << "slot " << slot;
    // Full engine counter maps must be identical, untaint.* included.
    EXPECT_EQ(a.engine_counters, b.engine_counters)
        << "slot " << slot;
    ASSERT_EQ(a.engine_histograms.size(), b.engine_histograms.size())
        << "slot " << slot;
    auto ita = a.engine_histograms.begin();
    auto itb = b.engine_histograms.begin();
    for (; ita != a.engine_histograms.end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first);
        ASSERT_EQ(ita->second.numBuckets(),
                  itb->second.numBuckets());
        EXPECT_EQ(ita->second.samples(), itb->second.samples());
        EXPECT_EQ(ita->second.maxSample(), itb->second.maxSample());
        for (size_t i = 0; i < ita->second.numBuckets(); ++i)
            EXPECT_EQ(ita->second.bucket(i), itb->second.bucket(i))
                << ita->first << " bucket " << i;
    }
}

TEST(ExpRunner, DeterministicAcrossWorkerCounts)
{
    const TestPrograms programs;
    const std::vector<RunJob> grid = mixedGrid(programs);

    ExpRunner serial(1);
    ExpRunner pooled(4);
    const std::vector<RunOutcome> a = serial.run(grid);
    const std::vector<RunOutcome> b = pooled.run(grid);
    EXPECT_EQ(serial.lastSweep().workers, 1u);
    EXPECT_EQ(pooled.lastSweep().workers, 4u);

    ASSERT_EQ(a.size(), grid.size());
    ASSERT_EQ(b.size(), grid.size());
    uint64_t untaint_events = 0;
    for (size_t i = 0; i < grid.size(); ++i) {
        expectSameOutcome(a[i], b[i], i);
        EXPECT_TRUE(a[i].result.halted) << "slot " << i;
        untaint_events += a[i].counter("untaint.forward") +
                          a[i].counter("untaint.backward");
    }
    // The SPT columns must actually exercise the untaint machinery,
    // or counter equality would be vacuous.
    EXPECT_GT(untaint_events, 0u);
}

TEST(ExpRunner, MemoizesDuplicateJobs)
{
    const TestPrograms programs;
    RunJob base;
    base.program = &programs.pchase;
    base.engine.scheme = ProtectionScheme::kSpt;

    RunJob other = base;
    other.attack_model = AttackModel::kSpectre;

    // 5 slots, 2 unique design points.
    const std::vector<RunJob> grid = {base, other, base, base,
                                      other};
    ExpRunner runner(2);
    const std::vector<RunOutcome> out = runner.run(grid);
    EXPECT_EQ(runner.lastSweep().unique_jobs, 2u);
    EXPECT_EQ(runner.lastSweep().memo_hits, 3u);
    expectSameOutcome(out[0], out[2], 2);
    expectSameOutcome(out[0], out[3], 3);
    expectSameOutcome(out[1], out[4], 4);
    // The two design points genuinely differ.
    EXPECT_NE(out[0].result.cycles, out[1].result.cycles);
}

TEST(ExpRunner, MemoHitsCarryNoHostTime)
{
    const TestPrograms programs;
    RunJob base;
    base.program = &programs.pchase;
    base.engine.scheme = ProtectionScheme::kSpt;

    // 4 slots, 1 unique design point: summing host_seconds across
    // the sweep must bill the single simulation once, not 4x —
    // the former memo behavior copied the unique run's timing into
    // every duplicate slot and inflated per-config totals.
    const std::vector<RunJob> grid = {base, base, base, base};
    const std::vector<RunOutcome> out = ExpRunner(2).run(grid);
    EXPECT_FALSE(out[0].memoized);
    EXPECT_GT(out[0].host_seconds, 0.0);
    double total = 0.0;
    unsigned memo_hits = 0;
    for (const RunOutcome &o : out) {
        total += o.host_seconds;
        if (o.memoized) {
            ++memo_hits;
            EXPECT_EQ(o.host_seconds, 0.0);
        }
    }
    EXPECT_EQ(memo_hits, 3u);
    EXPECT_EQ(total, out[0].host_seconds);
}

TEST(ExpRunner, JobKeyCoversEveryDescriptorField)
{
    const TestPrograms programs;
    RunJob job;
    job.program = &programs.pchase;
    job.engine.scheme = ProtectionScheme::kSpt;

    EXPECT_EQ(jobKey(job), jobKey(job));

    std::set<std::string> keys;
    keys.insert(jobKey(job));
    auto expect_fresh = [&](const RunJob &j, const char *what) {
        EXPECT_TRUE(keys.insert(jobKey(j)).second)
            << what << " not reflected in jobKey";
    };

    RunJob j = job;
    j.program = &programs.hashtab;
    expect_fresh(j, "program");
    j = job;
    j.engine.scheme = ProtectionScheme::kStt;
    expect_fresh(j, "scheme");
    j = job;
    j.engine.spt.method = UntaintMethod::kIdeal;
    expect_fresh(j, "untaint method");
    j = job;
    j.engine.spt.shadow = ShadowKind::kShadowMem;
    expect_fresh(j, "shadow kind");
    j = job;
    j.engine.spt.broadcast_width = 7;
    expect_fresh(j, "broadcast width");
    j = job;
    j.attack_model = AttackModel::kSpectre;
    expect_fresh(j, "attack model");
    j = job;
    j.seed = 1;
    expect_fresh(j, "seed");
    j = job;
    j.max_cycles = 12345;
    expect_fresh(j, "max_cycles");
    j = job;
    j.trace = true;
    expect_fresh(j, "trace");
    j = job;
    j.profile = true;
    expect_fresh(j, "profile");
    j = job;
    j.interval_stats = 1000;
    expect_fresh(j, "interval_stats");
    j = job;
    j.engine.spt.storage = SptConfig::Storage::kLegacy;
    expect_fresh(j, "taint storage");
    j = job;
    j.fast_forward = true;
    expect_fresh(j, "fast_forward");
    j = job;
    j.checkpoint_at = 1000;
    expect_fresh(j, "checkpoint_at");
    j = job;
    j.checkpoint = "/tmp/somewhere.bin";
    expect_fresh(j, "checkpoint path");
    j = job;
    static const KnowledgeMap kMap;
    j.engine.spt.knowledge_map = &kMap;
    expect_fresh(j, "knowledge map");
}

TEST(ExpRunner, NullProgramFailsTheSweep)
{
    RunJob job; // program left null
    ExpRunner runner(2);
    EXPECT_THROW(runner.run({job}), FatalError);
}

TEST(ExpRunner, ThrowingJobFailsSweepCleanly)
{
    const TestPrograms programs;
    std::vector<RunJob> grid;
    for (int i = 0; i < 6; ++i) {
        RunJob job;
        job.program = &programs.pchase;
        job.engine.scheme = ProtectionScheme::kUnsafeBaseline;
        job.seed = static_cast<uint64_t>(i); // distinct: no memo
        grid.push_back(job);
    }
    // An out-of-range scheme makes the engine factory panic inside
    // the worker; the sweep must rethrow after the pool has joined
    // (no deadlock, no crash), for any worker count.
    grid[3].engine.scheme = static_cast<ProtectionScheme>(0xee);
    EXPECT_THROW(ExpRunner(1).run(grid), PanicError);
    EXPECT_THROW(ExpRunner(4).run(grid), PanicError);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr size_t kN = 257;
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(kN);
        parallelFor(kN, jobs,
                    [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    // Degenerate sizes.
    parallelFor(0, 4, [](size_t) { FAIL() << "fn called for n=0"; });
    std::atomic<int> once{0};
    parallelFor(1, 8, [&](size_t) { once.fetch_add(1); });
    EXPECT_EQ(once.load(), 1);
}

TEST(ParallelFor, PropagatesFirstExceptionAndStops)
{
    std::atomic<size_t> ran{0};
    try {
        parallelFor(1000, 4, [&](size_t i) {
            if (i == 10)
                throw std::runtime_error("job 10 failed");
            ran.fetch_add(1);
        });
        FAIL() << "exception did not propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 10 failed");
    }
    // Workers stop claiming new indices once a job has thrown; with
    // 4 workers at most a handful of in-flight jobs finish after
    // the failure.
    EXPECT_LT(ran.load(), 1000u);
}

// --------------------------------------------------------------------
// On-disk result cache (sim/result_cache.h)
// --------------------------------------------------------------------

std::string
freshCacheDir(const char *name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ResultCache, ColdThenWarmOutcomesAreByteIdentical)
{
    const TestPrograms programs;
    const std::vector<RunJob> grid = mixedGrid(programs);
    RunnerPolicy policy;
    policy.cache_dir = freshCacheDir("spt_cache_coldwarm");

    ExpRunner cold(1);
    const std::vector<RunOutcome> a = cold.run(grid, policy);
    EXPECT_EQ(cold.lastSweep().cache_mode, "read_write");
    EXPECT_EQ(cold.lastSweep().cache.hits, 0u);
    EXPECT_EQ(cold.lastSweep().cache.misses, grid.size());
    EXPECT_GT(cold.lastSweep().cache.bytes_written, 0u);

    // Different process would behave identically; here a different
    // runner at a different worker count stands in for it.
    ExpRunner warm(4);
    const std::vector<RunOutcome> b = warm.run(grid, policy);
    EXPECT_EQ(warm.lastSweep().cache.hits, grid.size());
    EXPECT_EQ(warm.lastSweep().cache.misses, 0u);
    EXPECT_EQ(warm.lastSweep().cache.bytes_written, 0u);
    EXPECT_GT(warm.lastSweep().cache.host_seconds_saved, 0.0);

    ASSERT_EQ(b.size(), a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        expectSameOutcome(a[i], b[i], i);
        // The full wire encoding — untaint counters, histograms,
        // and the *replayed* host_seconds — must match, which is
        // what makes warm JSON artifacts cmp-identical to cold.
        EXPECT_EQ(ResultCache::encodeOutcome(a[i]),
                  ResultCache::encodeOutcome(b[i]))
            << "slot " << i;
        EXPECT_EQ(a[i].job_desc, b[i].job_desc) << "slot " << i;
    }
}

TEST(ResultCache, CorruptedEntryFallsBackToSimulation)
{
    const TestPrograms programs;
    RunJob job;
    job.program = &programs.pchase;
    job.engine.scheme = ProtectionScheme::kSpt;
    const std::vector<RunJob> grid = {job};
    RunnerPolicy policy;
    policy.cache_dir = freshCacheDir("spt_cache_corrupt");

    ExpRunner runner(1);
    const std::vector<RunOutcome> a = runner.run(grid, policy);

    ResultCache cache(policy.cache_dir, CacheMode::kReadWrite);
    const std::string key = ResultCache::canonicalKey(grid[0]);
    ASSERT_FALSE(key.empty());
    const std::string path = cache.entryPath(key);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Truncation: decode must degrade to a miss, the job
    // re-simulates to the same outcome, and read_write repairs the
    // entry.
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);
    const std::vector<RunOutcome> b = runner.run(grid, policy);
    EXPECT_EQ(runner.lastSweep().cache.hits, 0u);
    EXPECT_EQ(runner.lastSweep().cache.misses, 1u);
    EXPECT_GT(runner.lastSweep().cache.bytes_written, 0u);
    // The re-simulation pays fresh host time; everything
    // deterministic is identical.
    EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(a[0]),
              ResultCache::encodeOutcomeDeterministic(b[0]));

    // Bit rot: flip one byte mid-record; the content-hash trailer
    // must reject it.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            std::filesystem::file_size(path) / 2));
        f.put('\xa5');
    }
    const std::vector<RunOutcome> c = runner.run(grid, policy);
    EXPECT_EQ(runner.lastSweep().cache.hits, 0u);
    EXPECT_EQ(runner.lastSweep().cache.misses, 1u);
    EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(a[0]),
              ResultCache::encodeOutcomeDeterministic(c[0]));

    // And after the repair, a clean hit again — byte-identical to
    // the run that repaired the entry, recorded timing included.
    const std::vector<RunOutcome> d = runner.run(grid, policy);
    EXPECT_EQ(runner.lastSweep().cache.hits, 1u);
    EXPECT_EQ(ResultCache::encodeOutcome(c[0]),
              ResultCache::encodeOutcome(d[0]));
}

TEST(ResultCache, VerifyModeDetectsPoisonedEntry)
{
    const TestPrograms programs;
    RunJob job;
    job.program = &programs.pchase;
    job.engine.scheme = ProtectionScheme::kSpt;
    const std::vector<RunJob> grid = {job};
    RunnerPolicy policy;
    policy.cache_dir = freshCacheDir("spt_cache_poison");

    ExpRunner runner(1);
    const std::vector<RunOutcome> a = runner.run(grid, policy);

    // Poison the entry with a *well-formed* record whose payload
    // lies about the outcome — only verify mode can catch this.
    RunOutcome tampered = a[0];
    tampered.result.cycles += 1;
    {
        ResultCache cache(policy.cache_dir, CacheMode::kReadWrite);
        cache.store(ResultCache::canonicalKey(grid[0]), tampered);
    }

    // A plain warm run trusts the poisoned record...
    const std::vector<RunOutcome> p = runner.run(grid, policy);
    EXPECT_EQ(p[0].result.cycles, a[0].result.cycles + 1);

    // ...verify mode re-simulates, counts the mismatch, and the
    // fresh outcome wins.
    RunnerPolicy verify = policy;
    verify.cache_mode = CacheMode::kVerify;
    const std::vector<RunOutcome> v = runner.run(grid, verify);
    EXPECT_EQ(runner.lastSweep().cache_mode, "verify");
    EXPECT_EQ(runner.lastSweep().cache.hits, 1u);
    EXPECT_EQ(runner.lastSweep().cache.verify_mismatches, 1u);
    EXPECT_EQ(runner.lastSweep().cache.bytes_written, 0u);
    EXPECT_EQ(v[0].result.cycles, a[0].result.cycles);

    // A clean cache verifies silently.
    {
        ResultCache cache(policy.cache_dir, CacheMode::kReadWrite);
        cache.store(ResultCache::canonicalKey(grid[0]), a[0]);
    }
    runner.run(grid, verify);
    EXPECT_EQ(runner.lastSweep().cache.verify_mismatches, 0u);
}

TEST(ResultCache, CanonicalKeyIsContentAddressed)
{
    // Two content-identical programs at distinct addresses: the
    // pointer-based memo key must separate them, the
    // content-addressed key must merge them.
    const Program a = makePointerChase(256, 1);
    const Program b = makePointerChase(256, 1);
    const Program c = makePointerChase(300, 1);
    RunJob ja, jb, jc;
    ja.program = &a;
    jb.program = &b;
    jc.program = &c;
    EXPECT_NE(jobKey(ja), jobKey(jb));
    EXPECT_EQ(ResultCache::canonicalKey(ja),
              ResultCache::canonicalKey(jb));
    EXPECT_NE(ResultCache::canonicalKey(ja),
              ResultCache::canonicalKey(jc));

    // Uncacheable descriptors produce no key: wall-clock-capped
    // jobs (schedule-dependent outcome) and unreadable checkpoints.
    RunJob capped = ja;
    capped.wall_timeout_seconds = 5.0;
    EXPECT_EQ(ResultCache::canonicalKey(capped), "");
    RunJob missing = ja;
    missing.checkpoint = "/nonexistent/spt-no-such-snapshot.bin";
    EXPECT_EQ(ResultCache::canonicalKey(missing), "");
}

TEST(ResultCache, CanonicalKeyCoversEveryDescriptorField)
{
    const TestPrograms programs;
    RunJob job;
    job.program = &programs.pchase;
    job.engine.scheme = ProtectionScheme::kSpt;

    EXPECT_EQ(ResultCache::canonicalKey(job),
              ResultCache::canonicalKey(job));

    std::set<std::string> keys;
    keys.insert(ResultCache::canonicalKey(job));
    auto expect_fresh = [&](const RunJob &j, const char *what) {
        const std::string key = ResultCache::canonicalKey(j);
        ASSERT_FALSE(key.empty()) << what;
        EXPECT_TRUE(keys.insert(key).second)
            << what << " not reflected in canonicalKey";
    };

    RunJob j = job;
    j.program = &programs.hashtab;
    expect_fresh(j, "program content");
    j = job;
    j.engine.scheme = ProtectionScheme::kStt;
    expect_fresh(j, "scheme");
    j = job;
    j.engine.spt.method = UntaintMethod::kIdeal;
    expect_fresh(j, "untaint method");
    j = job;
    j.engine.spt.shadow = ShadowKind::kShadowMem;
    expect_fresh(j, "shadow kind");
    j = job;
    j.engine.spt.broadcast_width = 7;
    expect_fresh(j, "broadcast width");
    j = job;
    j.engine.spt.storage = SptConfig::Storage::kLegacy;
    expect_fresh(j, "taint storage");
    j = job;
    j.engine.spt.mutation = SptConfig::Mutation::kLeakyMemGate;
    expect_fresh(j, "mutation");
    j = job;
    static const KnowledgeMap kMap;
    j.engine.spt.knowledge_map = &kMap;
    expect_fresh(j, "knowledge map");
    j = job;
    j.attack_model = AttackModel::kSpectre;
    expect_fresh(j, "attack model");
    j = job;
    j.seed = 1;
    expect_fresh(j, "seed");
    j = job;
    j.max_cycles = 12345;
    expect_fresh(j, "max_cycles");
    j = job;
    j.trace = true;
    expect_fresh(j, "trace");
    j = job;
    j.profile = true;
    expect_fresh(j, "profile");
    j = job;
    j.interval_stats = 1000;
    expect_fresh(j, "interval_stats");
    j = job;
    j.faults.seed = 7;
    expect_fresh(j, "fault seed");
    j = job;
    j.faults.rate_ppm[0] = 100;
    expect_fresh(j, "fault rate");
    j = job;
    j.invariants = true;
    expect_fresh(j, "invariants");
    j = job;
    j.watchdog_cycles = 4096;
    expect_fresh(j, "watchdog");
    j = job;
    j.fast_forward = true;
    expect_fresh(j, "fast_forward");
    j = job;
    j.checkpoint_at = 1000;
    expect_fresh(j, "checkpoint_at");
    // label is documentation, not identity — same key.
    j = job;
    j.label = "a pretty name";
    EXPECT_EQ(ResultCache::canonicalKey(j),
              ResultCache::canonicalKey(job));
}

TEST(ResultCache, FailedOutcomesAreNotStored)
{
    const TestPrograms programs;
    RunJob job;
    job.program = &programs.pchase;
    job.engine.scheme = static_cast<ProtectionScheme>(0xee);
    const std::vector<RunJob> grid = {job};
    RunnerPolicy policy;
    policy.cache_dir = freshCacheDir("spt_cache_failed");
    policy.keep_going = true;

    ExpRunner runner(1);
    const std::vector<RunOutcome> a = runner.run(grid, policy);
    EXPECT_EQ(a[0].status, RunStatus::kCrash);
    EXPECT_EQ(runner.lastSweep().cache.bytes_written, 0u);

    // The rerun must re-simulate (and still rethrow under the
    // default fail-fast policy): a failure is never frozen into
    // the cache.
    const std::vector<RunOutcome> b = runner.run(grid, policy);
    EXPECT_EQ(runner.lastSweep().cache.hits, 0u);
    EXPECT_EQ(runner.lastSweep().cache.misses, 1u);
    EXPECT_EQ(b[0].status, RunStatus::kCrash);
    RunnerPolicy fail_fast = policy;
    fail_fast.keep_going = false;
    EXPECT_THROW(runner.run(grid, fail_fast), PanicError);
}

TEST(JsonWriter, StableFormattingAndEscaping)
{
    JsonWriter json;
    json.beginObject();
    json.field("name", "a\"b\\c\nd");
    json.field("count", uint64_t{42});
    json.field("ratio", 1.0 / 3.0, 3);
    json.field("flag", true);
    json.key("list").beginArray();
    json.value(uint64_t{1}).value(uint64_t{2});
    json.endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\n"
              "  \"name\": \"a\\\"b\\\\c\\nd\",\n"
              "  \"count\": 42,\n"
              "  \"ratio\": 0.333,\n"
              "  \"flag\": true,\n"
              "  \"list\": [\n"
              "    1,\n"
              "    2\n"
              "  ]\n"
              "}");
}

} // namespace
} // namespace spt
