/**
 * @file
 * Parallel experiment runner (sim/exp_runner.h + common/parallel.h):
 * determinism across worker counts, memoization accounting,
 * exception-in-job propagation, and the memo-key sensitivity that
 * keeps distinct design points from merging.
 */

#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/knowledge_map.h"
#include "sim/exp_runner.h"
#include "sim/report.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

// Reduced-size programs so the whole file stays in the test tier.
struct TestPrograms {
    Program pchase = makePointerChase(256, 1);
    Program hashtab = makeHashTable(300, 300);
    Program chacha = makeChaCha20(2);
};

std::vector<RunJob>
mixedGrid(const TestPrograms &p)
{
    std::vector<EngineConfig> engines(3);
    engines[0].scheme = ProtectionScheme::kUnsafeBaseline;
    engines[1].scheme = ProtectionScheme::kSecureBaseline;
    engines[2].scheme = ProtectionScheme::kSpt;
    engines[2].spt.method = UntaintMethod::kBackward;
    engines[2].spt.shadow = ShadowKind::kShadowL1;

    std::vector<RunJob> grid;
    for (const Program *prog :
         {&p.pchase, &p.hashtab, &p.chacha}) {
        for (const EngineConfig &e : engines) {
            for (AttackModel m : {AttackModel::kFuturistic,
                                  AttackModel::kSpectre}) {
                RunJob job;
                job.program = prog;
                job.engine = e;
                job.attack_model = m;
                grid.push_back(job);
            }
        }
    }
    return grid;
}

void
expectSameOutcome(const RunOutcome &a, const RunOutcome &b,
                  size_t slot)
{
    EXPECT_EQ(a.result.cycles, b.result.cycles) << "slot " << slot;
    EXPECT_EQ(a.result.instructions, b.result.instructions)
        << "slot " << slot;
    EXPECT_EQ(a.result.halted, b.result.halted) << "slot " << slot;
    // Full engine counter maps must be identical, untaint.* included.
    EXPECT_EQ(a.engine_counters, b.engine_counters)
        << "slot " << slot;
    ASSERT_EQ(a.engine_histograms.size(), b.engine_histograms.size())
        << "slot " << slot;
    auto ita = a.engine_histograms.begin();
    auto itb = b.engine_histograms.begin();
    for (; ita != a.engine_histograms.end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first);
        ASSERT_EQ(ita->second.numBuckets(),
                  itb->second.numBuckets());
        EXPECT_EQ(ita->second.samples(), itb->second.samples());
        EXPECT_EQ(ita->second.maxSample(), itb->second.maxSample());
        for (size_t i = 0; i < ita->second.numBuckets(); ++i)
            EXPECT_EQ(ita->second.bucket(i), itb->second.bucket(i))
                << ita->first << " bucket " << i;
    }
}

TEST(ExpRunner, DeterministicAcrossWorkerCounts)
{
    const TestPrograms programs;
    const std::vector<RunJob> grid = mixedGrid(programs);

    ExpRunner serial(1);
    ExpRunner pooled(4);
    const std::vector<RunOutcome> a = serial.run(grid);
    const std::vector<RunOutcome> b = pooled.run(grid);
    EXPECT_EQ(serial.lastSweep().workers, 1u);
    EXPECT_EQ(pooled.lastSweep().workers, 4u);

    ASSERT_EQ(a.size(), grid.size());
    ASSERT_EQ(b.size(), grid.size());
    uint64_t untaint_events = 0;
    for (size_t i = 0; i < grid.size(); ++i) {
        expectSameOutcome(a[i], b[i], i);
        EXPECT_TRUE(a[i].result.halted) << "slot " << i;
        untaint_events += a[i].counter("untaint.forward") +
                          a[i].counter("untaint.backward");
    }
    // The SPT columns must actually exercise the untaint machinery,
    // or counter equality would be vacuous.
    EXPECT_GT(untaint_events, 0u);
}

TEST(ExpRunner, MemoizesDuplicateJobs)
{
    const TestPrograms programs;
    RunJob base;
    base.program = &programs.pchase;
    base.engine.scheme = ProtectionScheme::kSpt;

    RunJob other = base;
    other.attack_model = AttackModel::kSpectre;

    // 5 slots, 2 unique design points.
    const std::vector<RunJob> grid = {base, other, base, base,
                                      other};
    ExpRunner runner(2);
    const std::vector<RunOutcome> out = runner.run(grid);
    EXPECT_EQ(runner.lastSweep().unique_jobs, 2u);
    EXPECT_EQ(runner.lastSweep().memo_hits, 3u);
    expectSameOutcome(out[0], out[2], 2);
    expectSameOutcome(out[0], out[3], 3);
    expectSameOutcome(out[1], out[4], 4);
    // The two design points genuinely differ.
    EXPECT_NE(out[0].result.cycles, out[1].result.cycles);
}

TEST(ExpRunner, MemoHitsCarryNoHostTime)
{
    const TestPrograms programs;
    RunJob base;
    base.program = &programs.pchase;
    base.engine.scheme = ProtectionScheme::kSpt;

    // 4 slots, 1 unique design point: summing host_seconds across
    // the sweep must bill the single simulation once, not 4x —
    // the former memo behavior copied the unique run's timing into
    // every duplicate slot and inflated per-config totals.
    const std::vector<RunJob> grid = {base, base, base, base};
    const std::vector<RunOutcome> out = ExpRunner(2).run(grid);
    EXPECT_FALSE(out[0].memoized);
    EXPECT_GT(out[0].host_seconds, 0.0);
    double total = 0.0;
    unsigned memo_hits = 0;
    for (const RunOutcome &o : out) {
        total += o.host_seconds;
        if (o.memoized) {
            ++memo_hits;
            EXPECT_EQ(o.host_seconds, 0.0);
        }
    }
    EXPECT_EQ(memo_hits, 3u);
    EXPECT_EQ(total, out[0].host_seconds);
}

TEST(ExpRunner, JobKeyCoversEveryDescriptorField)
{
    const TestPrograms programs;
    RunJob job;
    job.program = &programs.pchase;
    job.engine.scheme = ProtectionScheme::kSpt;

    EXPECT_EQ(jobKey(job), jobKey(job));

    std::set<std::string> keys;
    keys.insert(jobKey(job));
    auto expect_fresh = [&](const RunJob &j, const char *what) {
        EXPECT_TRUE(keys.insert(jobKey(j)).second)
            << what << " not reflected in jobKey";
    };

    RunJob j = job;
    j.program = &programs.hashtab;
    expect_fresh(j, "program");
    j = job;
    j.engine.scheme = ProtectionScheme::kStt;
    expect_fresh(j, "scheme");
    j = job;
    j.engine.spt.method = UntaintMethod::kIdeal;
    expect_fresh(j, "untaint method");
    j = job;
    j.engine.spt.shadow = ShadowKind::kShadowMem;
    expect_fresh(j, "shadow kind");
    j = job;
    j.engine.spt.broadcast_width = 7;
    expect_fresh(j, "broadcast width");
    j = job;
    j.attack_model = AttackModel::kSpectre;
    expect_fresh(j, "attack model");
    j = job;
    j.seed = 1;
    expect_fresh(j, "seed");
    j = job;
    j.max_cycles = 12345;
    expect_fresh(j, "max_cycles");
    j = job;
    j.trace = true;
    expect_fresh(j, "trace");
    j = job;
    j.profile = true;
    expect_fresh(j, "profile");
    j = job;
    j.interval_stats = 1000;
    expect_fresh(j, "interval_stats");
    j = job;
    j.engine.spt.storage = SptConfig::Storage::kLegacy;
    expect_fresh(j, "taint storage");
    j = job;
    j.fast_forward = true;
    expect_fresh(j, "fast_forward");
    j = job;
    j.checkpoint_at = 1000;
    expect_fresh(j, "checkpoint_at");
    j = job;
    j.checkpoint = "/tmp/somewhere.bin";
    expect_fresh(j, "checkpoint path");
    j = job;
    static const KnowledgeMap kMap;
    j.engine.spt.knowledge_map = &kMap;
    expect_fresh(j, "knowledge map");
}

TEST(ExpRunner, NullProgramFailsTheSweep)
{
    RunJob job; // program left null
    ExpRunner runner(2);
    EXPECT_THROW(runner.run({job}), FatalError);
}

TEST(ExpRunner, ThrowingJobFailsSweepCleanly)
{
    const TestPrograms programs;
    std::vector<RunJob> grid;
    for (int i = 0; i < 6; ++i) {
        RunJob job;
        job.program = &programs.pchase;
        job.engine.scheme = ProtectionScheme::kUnsafeBaseline;
        job.seed = static_cast<uint64_t>(i); // distinct: no memo
        grid.push_back(job);
    }
    // An out-of-range scheme makes the engine factory panic inside
    // the worker; the sweep must rethrow after the pool has joined
    // (no deadlock, no crash), for any worker count.
    grid[3].engine.scheme = static_cast<ProtectionScheme>(0xee);
    EXPECT_THROW(ExpRunner(1).run(grid), PanicError);
    EXPECT_THROW(ExpRunner(4).run(grid), PanicError);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr size_t kN = 257;
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(kN);
        parallelFor(kN, jobs,
                    [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    // Degenerate sizes.
    parallelFor(0, 4, [](size_t) { FAIL() << "fn called for n=0"; });
    std::atomic<int> once{0};
    parallelFor(1, 8, [&](size_t) { once.fetch_add(1); });
    EXPECT_EQ(once.load(), 1);
}

TEST(ParallelFor, PropagatesFirstExceptionAndStops)
{
    std::atomic<size_t> ran{0};
    try {
        parallelFor(1000, 4, [&](size_t i) {
            if (i == 10)
                throw std::runtime_error("job 10 failed");
            ran.fetch_add(1);
        });
        FAIL() << "exception did not propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 10 failed");
    }
    // Workers stop claiming new indices once a job has thrown; with
    // 4 workers at most a handful of in-flight jobs finish after
    // the failure.
    EXPECT_LT(ran.load(), 1000u);
}

TEST(JsonWriter, StableFormattingAndEscaping)
{
    JsonWriter json;
    json.beginObject();
    json.field("name", "a\"b\\c\nd");
    json.field("count", uint64_t{42});
    json.field("ratio", 1.0 / 3.0, 3);
    json.field("flag", true);
    json.key("list").beginArray();
    json.value(uint64_t{1}).value(uint64_t{2});
    json.endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\n"
              "  \"name\": \"a\\\"b\\\\c\\nd\",\n"
              "  \"count\": 42,\n"
              "  \"ratio\": 0.333,\n"
              "  \"flag\": true,\n"
              "  \"list\": [\n"
              "    1,\n"
              "    2\n"
              "  ]\n"
              "}");
}

} // namespace
} // namespace spt
