/**
 * @file
 * Online security-invariant auditing over real workload runs
 * (DESIGN.md Section 6): every cycle, for every protected
 * configuration,
 *
 *  1. no load/store has performed its memory access while its
 *     address operand is tainted unless the instruction had reached
 *     the visibility point (delayed-execution policy; taint
 *     monotonicity makes the post-hoc check sound),
 *  2. no mispredicted branch's squash has been applied while its
 *     predicate was tainted pre-VP (checked via the pending flag),
 *  3. the VP flags form a prefix of the ROB.
 */

#include <gtest/gtest.h>

#include "core/engine_factory.h"
#include "core/spt_engine.h"
#include "isa/assembler.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

/** Runs @p program under SPT and audits every cycle. */
void
auditRun(const Program &program, SptConfig cfg, AttackModel model,
         uint64_t max_cycles = 2'000'000)
{
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSpt;
    ec.spt = cfg;
    CoreParams cp;
    cp.attack_model = model;
    Core core(program, cp, MemorySystemParams{}, makeEngine(ec));
    auto &engine = dynamic_cast<SptEngine &>(core.engine());

    // Records whether an instruction was at the VP when first seen
    // with access_done (at_vp is sticky, so >= is the right check).
    std::map<SeqNum, bool> access_seen;
    uint64_t audited_accesses = 0;

    while (!core.halted() && core.cycle() < max_cycles) {
        core.tick();
        bool non_vp_seen = false;
        for (const DynInstPtr &d : core.rob()) {
            // (3) VP prefix property.
            if (!d->at_vp) {
                non_vp_seen = true;
            } else {
                ASSERT_FALSE(non_vp_seen) << "VP not prefix-ordered";
            }

            if (!d->isMem() || !d->access_done || d->squashed)
                continue;
            if (access_seen.count(d->seq))
                continue;
            access_seen[d->seq] = true;
            ++audited_accesses;
            // (1) The access was only legal if the address operand
            // is untainted or the instruction reached the VP. Taint
            // is monotone (tainted -> untainted only), so checking
            // one cycle after the access is conservative in the
            // right direction: if it is STILL tainted now, it was
            // tainted at access time.
            const auto *t = engine.instTaint(d->seq);
            if (t && !d->at_vp) {
                EXPECT_TRUE(t->src[0].nothing())
                    << "transmitter executed with tainted address "
                    << "operand at pc " << d->pc << " seq "
                    << d->seq;
            }
        }
        // (2) Squash-pending branches with tainted predicates must
        // remain pending.
        for (const DynInstPtr &d : core.rob()) {
            if (!d->is_ctrl || !d->mispredicted || d->squashed)
                continue;
            const auto *t = engine.instTaint(d->seq);
            if (!t || d->at_vp)
                continue;
            const bool predicate_tainted =
                (d->num_srcs >= 1 && t->src[0].any()) ||
                (d->num_srcs >= 2 && t->src[1].any());
            if (predicate_tainted) {
                EXPECT_TRUE(d->squash_pending)
                    << "squash applied with tainted predicate at pc "
                    << d->pc;
            }
        }
    }
    ASSERT_TRUE(core.halted());
    EXPECT_GT(audited_accesses, 0u);
}

class InvariantTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, AttackModel>>
{
};

TEST_P(InvariantTest, SptHoldsInvariants)
{
    const auto &[name, model] = GetParam();
    const Workload &w = workloadByName(name);
    SptConfig cfg;
    cfg.method = UntaintMethod::kBackward;
    cfg.shadow = ShadowKind::kShadowL1;
    auditRun(w.program, cfg, model);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, InvariantTest,
    ::testing::Combine(::testing::Values("eventheap", "hashtab",
                                         "ct-djbsort",
                                         "treesearch"),
                       ::testing::Values(AttackModel::kSpectre,
                                         AttackModel::kFuturistic)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param);
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n + (std::get<1>(info.param) == AttackModel::kSpectre
                        ? "_Spectre"
                        : "_Futuristic");
    });

TEST(InvariantTest, IdealConfigAlsoHolds)
{
    const Workload &w = workloadByName("eventheap");
    SptConfig cfg;
    cfg.method = UntaintMethod::kIdeal;
    cfg.shadow = ShadowKind::kShadowMem;
    auditRun(w.program, cfg, AttackModel::kFuturistic);
}

TEST(InvariantTest, NoneConfigAlsoHolds)
{
    const Workload &w = workloadByName("treesearch");
    SptConfig cfg;
    cfg.method = UntaintMethod::kNone;
    cfg.shadow = ShadowKind::kNone;
    auditRun(w.program, cfg, AttackModel::kSpectre);
}

} // namespace
} // namespace spt
