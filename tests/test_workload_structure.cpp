/**
 * @file
 * Structural tests of the workload generators: registry integrity,
 * deterministic regeneration, constant-time discipline (the CT
 * kernels' memory addresses and branch outcomes must not depend on
 * the secret inputs), and size-parameter plumbing.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "isa/functional_cpu.h"
#include "workloads/attack_programs.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

TEST(WorkloadRegistry, HasFifteenWorkloads)
{
    EXPECT_EQ(allWorkloads().size(), 15u);
    EXPECT_EQ(specWorkloadNames().size(), 12u);
    EXPECT_EQ(ctWorkloadNames().size(), 3u);
}

TEST(WorkloadRegistry, EverySpecWorkloadNamesItsSubstitute)
{
    for (const Workload &w : allWorkloads()) {
        if (w.category == "spec-like")
            EXPECT_FALSE(w.substitutes.empty()) << w.name;
        else
            EXPECT_EQ(w.category, "constant-time") << w.name;
        EXPECT_GT(w.program.size(), 10u) << w.name;
    }
}

TEST(WorkloadRegistry, LookupFailsLoudly)
{
    EXPECT_THROW(workloadByName("no-such-kernel"), FatalError);
}

TEST(WorkloadGenerators, DeterministicRegeneration)
{
    const Program a = makePointerChase(256, 2);
    const Program b = makePointerChase(256, 2);
    ASSERT_EQ(a.size(), b.size());
    for (uint64_t pc = 0; pc < a.size(); ++pc)
        EXPECT_EQ(a.at(pc), b.at(pc));
}

TEST(WorkloadGenerators, SizeParametersScaleDynamicWork)
{
    FunctionalCpu small(makeStreamTriad(256, 1));
    FunctionalCpu large(makeStreamTriad(1024, 2));
    const auto rs = small.run();
    const auto rl = large.run();
    ASSERT_TRUE(rs.halted);
    ASSERT_TRUE(rl.halted);
    EXPECT_GT(rl.instructions, 4 * rs.instructions);
}

TEST(WorkloadGenerators, PointerChaseVisitsEveryNode)
{
    // The permutation must form a single cycle: with N nodes and one
    // pass, the checksum is the sum over every node's value.
    const unsigned nodes = 512;
    FunctionalCpu one(makePointerChase(nodes, 1));
    FunctionalCpu two(makePointerChase(nodes, 2));
    one.run();
    two.run();
    EXPECT_EQ(two.reg(kChecksumReg), 2 * one.reg(kChecksumReg));
}

TEST(WorkloadGenerators, DjbsortActuallySorts)
{
    const unsigned n = 128;
    const Program p = makeDjbsort(n);
    FunctionalCpu cpu(p);
    ASSERT_TRUE(cpu.run().halted);
    uint64_t prev = 0;
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t v = cpu.memory().read(0x100000 + 8 * i, 8);
        EXPECT_GE(v, prev) << "not sorted at index " << i;
        prev = v;
    }
}

/**
 * Constant-time discipline check: runs a CT kernel twice with
 * different secret inputs and asserts the *trace of memory
 * addresses and branch outcomes* is identical — data-obliviousness
 * at the architectural level, the property SPT extends to
 * speculative execution.
 */
void
expectObliviousTrace(const Program &a, const Program &b,
                     uint64_t max_steps = 2'000'000)
{
    FunctionalCpu ca(a), cb(b);
    uint64_t steps = 0;
    while (!ca.halted() && steps++ < max_steps) {
        const auto sa = ca.step();
        const auto sb = cb.step();
        ASSERT_EQ(sa.pc, sb.pc) << "control flow diverged";
        if (sa.is_mem) {
            ASSERT_EQ(sa.mem_addr, sb.mem_addr)
                << "address trace diverged at pc " << sa.pc;
        }
        ASSERT_EQ(sa.halted, sb.halted);
    }
    EXPECT_TRUE(ca.halted());
}

TEST(ConstantTime, ChaCha20TraceIsKeyIndependent)
{
    // Same program text, different key material: swap the key words
    // in the init-state data block.
    Program a = makeChaCha20(4);
    Program b = makeChaCha20(4);
    std::vector<uint64_t> other_key;
    for (int i = 0; i < 8; ++i)
        other_key.push_back(0xdeadbeef00 + i);
    b.addData64(0x100000 + 4 * 8, other_key); // overwrite key words
    expectObliviousTrace(a, b);
}

TEST(ConstantTime, DjbsortTraceIsValueIndependent)
{
    Program a = makeDjbsort(64);
    Program b = makeDjbsort(64);
    std::vector<uint64_t> other(64);
    for (unsigned i = 0; i < 64; ++i)
        other[i] = 63 - i;
    b.addData64(0x100000, other); // overwrite the values
    expectObliviousTrace(a, b);
}

TEST(ConstantTime, BitsliceAesTraceIsStateIndependent)
{
    Program a = makeBitsliceAes(4, 4);
    Program b = makeBitsliceAes(4, 4);
    std::vector<uint64_t> other(8, 0x5555555555555555ull);
    b.addData64(0x100000, other);
    expectObliviousTrace(a, b);
}

TEST(AttackPrograms, WellFormed)
{
    for (const AttackProgram &ap :
         {makeSpectreV1(), makeCtVictim()}) {
        EXPECT_GT(ap.program.size(), 10u);
        EXPECT_EQ(ap.probe_stride, 64u);
        EXPECT_NE(ap.secret, ap.trained_value);
        FunctionalCpu cpu(ap.program);
        const auto r = cpu.run();
        EXPECT_TRUE(r.halted);
        // Architecturally, the probe line indexed by the secret is
        // never touched: check it still reads zero... (reads don't
        // mutate memory; instead assert the functional run halts,
        // which means the victim's bounds check did its job).
    }
}

} // namespace
} // namespace spt
