/**
 * @file
 * Property tests for the gate-level untaint algebra of paper
 * Section 5, exhaustive over every value/taint combination:
 *
 *  - Forward soundness: whenever the GLIFT-style forward rule marks
 *    a gate output untainted, the output value is fully determined
 *    by the untainted inputs alone (no tainted bit can influence
 *    it).
 *  - Backward soundness: whenever the backward rule declares an
 *    input inferable from a declassified output, that input's value
 *    is the unique value consistent with the output and the
 *    untainted inputs.
 *  - The paper's worked examples (Figure 2 truth table, Figure 3
 *    composition).
 */

#include <gtest/gtest.h>

#include "core/untaint_algebra.h"

namespace spt {
namespace {

const GateOp kBinaryOps[] = {GateOp::kAnd, GateOp::kOr, GateOp::kXor};

struct Combo {
    GateOp op;
    Wire a, b;
};

std::vector<Combo>
allBinaryCombos()
{
    std::vector<Combo> combos;
    for (GateOp op : kBinaryOps)
        for (int av = 0; av < 2; ++av)
            for (int at = 0; at < 2; ++at)
                for (int bv = 0; bv < 2; ++bv)
                    for (int bt = 0; bt < 2; ++bt)
                        combos.push_back(
                            {op,
                             {av != 0, at != 0},
                             {bv != 0, bt != 0}});
    return combos;
}

class GateProperty : public ::testing::TestWithParam<Combo>
{
};

TEST_P(GateProperty, ForwardSoundness)
{
    const Combo c = GetParam();
    const Wire out = gateForward(c.op, c.a, c.b);
    EXPECT_EQ(out.value, gateEval(c.op, c.a.value, c.b.value));
    if (out.tainted)
        return;
    // Untainted output must be invariant under every possible value
    // of the tainted inputs.
    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            const bool a_val = c.a.tainted ? (av != 0) : c.a.value;
            const bool b_val = c.b.tainted ? (bv != 0) : c.b.value;
            EXPECT_EQ(gateEval(c.op, a_val, b_val), out.value)
                << "tainted input influenced an untainted output";
        }
    }
}

TEST_P(GateProperty, BackwardSoundness)
{
    const Combo c = GetParam();
    const bool out_value = gateEval(c.op, c.a.value, c.b.value);
    const BackwardResult r =
        gateBackward(c.op, c.a, c.b, out_value);
    // The rule may only untaint inputs that were tainted.
    EXPECT_LE(r.untaint_a, c.a.tainted);
    EXPECT_LE(r.untaint_b, c.b.tainted);

    // If input a is declared inferable, its value must be uniquely
    // determined by (out_value, untainted inputs) across every
    // consistent assignment of the tainted inputs.
    auto check_unique = [&](bool check_a) {
        int seen[2] = {0, 0};
        for (int av = 0; av < 2; ++av) {
            for (int bv = 0; bv < 2; ++bv) {
                const bool a_val =
                    c.a.tainted ? (av != 0) : c.a.value;
                const bool b_val =
                    c.b.tainted ? (bv != 0) : c.b.value;
                if (gateEval(c.op, a_val, b_val) != out_value)
                    continue; // inconsistent with observation
                ++seen[(check_a ? a_val : b_val) ? 1 : 0];
            }
        }
        // Exactly one value of the inferred input is consistent.
        EXPECT_TRUE(seen[0] == 0 || seen[1] == 0)
            << "backward rule untainted a non-inferable input";
    };
    if (r.untaint_a)
        check_unique(true);
    if (r.untaint_b)
        check_unique(false);
}

INSTANTIATE_TEST_SUITE_P(Exhaustive, GateProperty,
                         ::testing::ValuesIn(allBinaryCombos()));

// --------------------------------------------------------------------
// The paper's worked examples
// --------------------------------------------------------------------

TEST(GateForward, Figure2AndGateRules)
{
    // Untainted 0 forces AND output untainted even with a tainted
    // other input.
    Wire zero{false, false}, one{true, false}, secret{true, true};
    EXPECT_FALSE(gateForward(GateOp::kAnd, zero, secret).tainted);
    EXPECT_TRUE(gateForward(GateOp::kAnd, one, secret).tainted);
    EXPECT_TRUE(gateForward(GateOp::kAnd, secret, secret).tainted);
    EXPECT_FALSE(gateForward(GateOp::kAnd, zero, one).tainted);
}

TEST(GateBackward, Figure2TruthTable)
{
    // out = 1 => both inputs were 1.
    Wire s1{true, true}, s2{true, true};
    auto r = gateBackward(GateOp::kAnd, s1, s2, true);
    EXPECT_TRUE(r.untaint_a);
    EXPECT_TRUE(r.untaint_b);
    // out = 0 with both tainted: cannot deduce which input was 0.
    Wire z1{false, true}, z2{true, true};
    r = gateBackward(GateOp::kAnd, z1, z2, false);
    EXPECT_FALSE(r.untaint_a);
    EXPECT_FALSE(r.untaint_b);
    // out = 0 and in2 = 1 untainted => in1 must be 0.
    Wire pub_one{true, false};
    r = gateBackward(GateOp::kAnd, z1, pub_one, false);
    EXPECT_TRUE(r.untaint_a);
}

TEST(GateBackward, XorAlwaysInvertsWithOneKnownInput)
{
    Wire pub{true, false}, secret{false, true};
    auto r = gateBackward(GateOp::kXor, pub, secret, true);
    EXPECT_TRUE(r.untaint_b);
    r = gateBackward(GateOp::kXor, secret, pub, false);
    EXPECT_TRUE(r.untaint_a);
    // Both tainted: XOR output reveals only the parity.
    Wire s2{true, true};
    r = gateBackward(GateOp::kXor, secret, s2, true);
    EXPECT_FALSE(r.untaint_a);
    EXPECT_FALSE(r.untaint_b);
}

TEST(GateGraph, Figure3Composition)
{
    // t0 = or_a | or_b (all tainted zeros), out = t0 & in2 with
    // in2 = 1 public. Declassifying out=0 implies t0=0, which
    // implies or_a = or_b = 0.
    GateGraph g;
    const int or_a = g.addInput(false, true);
    const int or_b = g.addInput(false, true);
    const int in2 = g.addInput(true, false);
    const int t0 = g.addGate(GateOp::kOr, or_a, or_b);
    const int out = g.addGate(GateOp::kAnd, t0, in2);
    EXPECT_TRUE(g.tainted(t0));
    EXPECT_TRUE(g.tainted(out));
    g.declassify(out);
    EXPECT_EQ(g.propagate(), 3u);
    EXPECT_FALSE(g.tainted(t0));
    EXPECT_FALSE(g.tainted(or_a));
    EXPECT_FALSE(g.tainted(or_b));
}

TEST(GateGraph, NoDeclassificationNoRipple)
{
    GateGraph g;
    const int a = g.addInput(true, true);
    const int b = g.addInput(true, false);
    const int out = g.addGate(GateOp::kAnd, a, b);
    EXPECT_EQ(g.propagate(), 0u);
    EXPECT_TRUE(g.tainted(a));
    EXPECT_TRUE(g.tainted(out));
}

TEST(GateGraph, ForwardReevaluationAfterInputDeclassify)
{
    // Section 5.1: declassifying an input with a forcing value
    // untaints the output dynamically.
    GateGraph g;
    const int a = g.addInput(false, true); // secret 0
    const int b = g.addInput(true, true);  // secret 1
    const int out = g.addGate(GateOp::kAnd, a, b);
    EXPECT_TRUE(g.tainted(out));
    g.declassify(a); // now a public 0 forces out = 0
    EXPECT_GE(g.propagate(), 1u);
    EXPECT_FALSE(g.tainted(out));
    EXPECT_TRUE(g.tainted(b)); // b remains secret
}

TEST(GateGraph, UnaryGates)
{
    GateGraph g;
    const int a = g.addInput(true, true);
    const int n = g.addGate(GateOp::kNot, a);
    const int buf = g.addGate(GateOp::kBuf, n);
    EXPECT_FALSE(g.value(n));
    EXPECT_TRUE(g.tainted(buf));
    g.declassify(buf);
    g.propagate();
    EXPECT_FALSE(g.tainted(a)); // rippled back through NOT and BUF
}

TEST(GateGraph, TaintMonotonicity)
{
    // propagate() may only move wires from tainted to untainted.
    GateGraph g;
    std::vector<int> wires;
    for (int i = 0; i < 6; ++i)
        wires.push_back(g.addInput(i % 2 == 0, true));
    for (int i = 0; i + 1 < 6; i += 2)
        wires.push_back(
            g.addGate(GateOp::kXor, wires[i], wires[i + 1]));
    std::vector<bool> before;
    for (size_t i = 0; i < g.numWires(); ++i)
        before.push_back(g.tainted(static_cast<int>(i)));
    g.declassify(static_cast<int>(g.numWires() - 1));
    g.propagate();
    for (size_t i = 0; i < g.numWires(); ++i)
        EXPECT_LE(g.tainted(static_cast<int>(i)), before[i]);
}

} // namespace
} // namespace spt
