/**
 * @file
 * Unit tests for src/common: bit utilities, deterministic RNG,
 * statistics, and the sparse byte memory.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/bit_util.h"
#include "common/byte_memory.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"

namespace spt {
namespace {

// --------------------------------------------------------------------
// bit_util
// --------------------------------------------------------------------

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(6));
}

TEST(BitUtil, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(1ull << 50), 50u);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(~uint64_t{0}, 63, 0), ~uint64_t{0});
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0x1234, 16), 0x1234);
    EXPECT_EQ(signExtend(0xffffffff, 32), -1);
}

TEST(BitUtil, Align)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(alignDown(128, 64), 128u);
}

TEST(BitUtil, PopCountAndRotl)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xf0f0), 8u);
    EXPECT_EQ(rotl32(0x80000001, 1), 0x00000003u);
    EXPECT_EQ(rotl32(0x12345678, 0), 0x12345678u);
    EXPECT_EQ(rotl32(0x12345678, 32), 0x12345678u);
}

// --------------------------------------------------------------------
// rng
// --------------------------------------------------------------------

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(9);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[r.nextBelow(8)];
    for (int count : seen)
        EXPECT_GT(count, 300); // roughly uniform
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

// --------------------------------------------------------------------
// stats
// --------------------------------------------------------------------

TEST(Stats, CountersBasics)
{
    StatSet s;
    EXPECT_EQ(s.get("missing"), 0u);
    s.inc("a");
    s.inc("a", 4);
    s.set("b", 10);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_EQ(s.get("b"), 10u);
    s.reset();
    EXPECT_EQ(s.get("a"), 0u);
}

TEST(Stats, HistogramMeanAndCdf)
{
    Histogram h(8);
    h.record(1);
    h.record(1);
    h.record(3);
    h.record(100); // overflow bucket
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (1 + 1 + 3 + 100) / 4.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(1), 0.5);
    EXPECT_DOUBLE_EQ(h.cdfAt(3), 0.75);
    EXPECT_DOUBLE_EQ(h.cdfAt(200), 1.0);
}

TEST(Stats, HistogramOverflowBucketBoundary)
{
    // An 8-bucket histogram: buckets 0-6 are exact, bucket 7 holds
    // everything >= 7.
    Histogram h(8);
    h.record(6);   // last exact bucket
    h.record(7);   // smallest overflow value
    h.record(100); // deep overflow
    EXPECT_EQ(h.bucket(6), 1u);
    EXPECT_EQ(h.bucket(7), 2u);
    EXPECT_EQ(h.maxSample(), 100u);

    // Exact below the overflow bucket.
    EXPECT_DOUBLE_EQ(h.cdfAt(5), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(6), 1.0 / 3.0);
    // v = 7 does not cover the sample at 100, so the overflow bucket
    // must not be counted (the off-by-one reported cdfAt(7) == 1.0).
    EXPECT_DOUBLE_EQ(h.cdfAt(7), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(99), 1.0 / 3.0);
    // From the largest recorded sample on, the cdf is exact again.
    EXPECT_DOUBLE_EQ(h.cdfAt(100), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(101), 1.0);
}

TEST(Stats, HistogramOverflowExactWhenNoDeepOverflow)
{
    // When every overflow sample sits exactly at N-1, cdfAt(N-1)
    // covers them all and must be 1.0.
    Histogram h(8);
    h.record(2);
    h.record(7);
    h.record(7);
    EXPECT_EQ(h.maxSample(), 7u);
    EXPECT_DOUBLE_EQ(h.cdfAt(6), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(7), 1.0);

    h.reset();
    EXPECT_EQ(h.maxSample(), 0u);
    EXPECT_DOUBLE_EQ(h.cdfAt(7), 0.0);
}

TEST(Stats, EmptyHistogramContract)
{
    // The text/JSON dump paths derive mean/p50/p95 for histograms
    // that may never record a sample (e.g. untaint.* in a run with
    // zero untaint events). Contract: with zero samples nothing
    // divides by the sample count — mean and cdf are 0.0 and every
    // percentile is 0, for any p.
    Histogram h(8);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.maxSample(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(7), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(UINT64_MAX), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(0.95), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
    EXPECT_EQ(h.percentile(2.0), 0u);

    // The dump paths themselves stay well-defined on the empty
    // histogram (their p50/p95 lines ride on percentile).
    StatSet s;
    s.histogram("empty", 8);
    std::ostringstream text;
    s.dump(text);
    EXPECT_NE(text.str().find("empty.samples 0"),
              std::string::npos);
    EXPECT_NE(text.str().find("empty.p95 0"), std::string::npos);
    JsonWriter jw;
    s.dumpJson(jw);
    EXPECT_NE(jw.str().find("\"samples\": 0"), std::string::npos);
}

TEST(Stats, HistogramPercentileBoundaries)
{
    Histogram h(8);
    EXPECT_EQ(h.percentile(0.5), 0u); // no samples

    // 10 samples, all in exact buckets: 4x value 1, 5x value 3,
    // 1x value 6.
    h.record(1, 4);
    h.record(3, 5);
    h.record(6);
    // Rank math: p50 -> rank 5 -> value 3 (first 4 samples are 1s);
    // the p = 0.4 boundary lands exactly on the last 1.
    EXPECT_EQ(h.percentile(0.40), 1u);
    EXPECT_EQ(h.percentile(0.41), 3u);
    EXPECT_EQ(h.percentile(0.50), 3u);
    EXPECT_EQ(h.percentile(0.90), 3u);
    EXPECT_EQ(h.percentile(0.91), 6u);
    EXPECT_EQ(h.percentile(1.0), 6u);
    // Degenerate p clamps to the smallest/largest rank.
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_EQ(h.percentile(2.0), 6u);
    // Consistency with cdfAt: the p-th percentile covers at least
    // fraction p of the samples.
    for (double p : {0.25, 0.5, 0.75, 0.95})
        EXPECT_GE(h.cdfAt(h.percentile(p)), p) << p;
}

TEST(Stats, HistogramPercentileOverflowClampsToMax)
{
    Histogram h(8);
    h.record(1, 6);
    h.record(100, 4); // overflow bucket; per-value counts are lost
    // Ranks landing in the overflow range clamp to maxSample, the
    // only value there whose cdf is known (mirrors cdfAt).
    EXPECT_EQ(h.percentile(0.60), 1u);
    EXPECT_EQ(h.percentile(0.61), 100u);
    EXPECT_EQ(h.percentile(0.95), 100u);

    // All samples exactly at the overflow boundary N-1: the clamp
    // target is N-1 itself, so percentiles stay exact.
    Histogram b(8);
    b.record(7, 3);
    EXPECT_EQ(b.percentile(0.5), 7u);
}

TEST(Stats, DumpFormat)
{
    StatSet s;
    s.inc("zeta");
    s.inc("alpha", 2);
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "alpha 2\nzeta 1\n");

    // Histograms append derived lines (mean/percentiles) after the
    // counters.
    s.histogram("lat", 8).record(2, 3);
    std::ostringstream os2;
    s.dump(os2);
    EXPECT_EQ(os2.str(), "alpha 2\nzeta 1\n"
                         "lat.samples 3\nlat.mean 2\n"
                         "lat.p50 2\nlat.p95 2\n");
}

TEST(Stats, DumpJsonMatchesTextDump)
{
    StatSet s;
    s.inc("alpha", 2);
    s.set("zeta", 7);
    Histogram &h = s.histogram("lat", 8);
    h.record(1, 2);
    h.record(3, 2);

    JsonWriter jw;
    s.dumpJson(jw);
    EXPECT_EQ(jw.str(),
              "{\n"
              "  \"alpha\": 2,\n"
              "  \"zeta\": 7,\n"
              "  \"lat\": {\n"
              "    \"samples\": 4,\n"
              "    \"mean\": 2.000000,\n"
              "    \"p50\": 1,\n"
              "    \"p95\": 3,\n"
              "    \"max\": 3\n"
              "  }\n"
              "}");
}

// --------------------------------------------------------------------
// byte memory
// --------------------------------------------------------------------

TEST(ByteMemory, UninitializedReadsZero)
{
    ByteMemory m;
    EXPECT_EQ(m.read(0x123456, 8), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(ByteMemory, LittleEndianRoundTrip)
{
    ByteMemory m;
    m.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.read(0x1000, 2), 0x7788u);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.readByte(0x1007), 0x11u);
}

TEST(ByteMemory, PartialWriteMasksValue)
{
    ByteMemory m;
    m.write(0x2000, 0xffffffffffffffffull, 8);
    m.write(0x2000, 0xaabb, 2);
    EXPECT_EQ(m.read(0x2000, 8), 0xffffffffffffaabbull);
}

TEST(ByteMemory, CrossPageAccess)
{
    ByteMemory m;
    const uint64_t addr = ByteMemory::kPageBytes - 4;
    m.write(addr, 0x0123456789abcdefull, 8);
    EXPECT_EQ(m.read(addr, 8), 0x0123456789abcdefull);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(ByteMemory, BlockOps)
{
    ByteMemory m;
    const uint8_t data[5] = {1, 2, 3, 4, 5};
    m.writeBlock(0x3000, data, 5);
    uint8_t out[5] = {};
    m.readBlock(0x3000, out, 5);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[i], data[i]);
}

// --------------------------------------------------------------------
// logging
// --------------------------------------------------------------------

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(SPT_FATAL("boom"), FatalError);
    EXPECT_THROW(SPT_PANIC("bug"), PanicError);
    EXPECT_THROW(SPT_ASSERT(1 == 2, "nope"), PanicError);
    EXPECT_NO_THROW(SPT_ASSERT(1 == 1, "fine"));
}

} // namespace
} // namespace spt
