/**
 * @file
 * Crash-safe batch journal (sim/batch_journal.h): replay
 * reconstructs unreleased batches byte-for-byte, released batches
 * vanish at compaction without ever rewinding the id space, and a
 * torn or bit-rotten tail is dropped cleanly — never replayed
 * wrong, never fatal.
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/batch_journal.h"

namespace spt {
namespace {

std::string
freshDir(const char *name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

SweepStats
someStats()
{
    SweepStats s;
    s.workers = 3;
    s.unique_jobs = 7;
    s.memo_hits = 2;
    s.failed_jobs = 1;
    s.cache_mode = "read_write";
    s.cache_dir = "/tmp/somewhere";
    s.cache.hits = 4;
    s.cache.misses = 3;
    return s;
}

/** Truncates @p path by @p bytes (must be smaller than the
 *  file). */
void
truncateTail(const std::string &path, uint64_t bytes)
{
    const auto size = std::filesystem::file_size(path);
    ASSERT_GT(size, bytes);
    std::filesystem::resize_file(path, size - bytes);
}

/** XORs 0x40 into the byte @p offset_from_end before the file's
 *  last byte. */
void
flipByte(const std::string &path, uint64_t offset_from_end)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(static_cast<uint64_t>(size), offset_from_end);
    const long pos = size - 1 - static_cast<long>(offset_from_end);
    std::fseek(f, pos, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, pos, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
}

TEST(BatchJournal, ReplayReconstructsUnreleasedBatches)
{
    const std::string dir = freshDir("bj_replay");
    {
        BatchJournal j(dir);
        EXPECT_EQ(j.recovery().batches.size(), 0u);
        j.submit(1, "tok-a", "{\"op\":\"submit\",\"jobs\":[1]}");
        j.slotDone(1, 0, "payload-zero", false);
        j.slotDone(1, 2, "payload-two", true);
        j.submit(2, "tok-b", "{\"op\":\"submit\",\"jobs\":[2]}");
        j.slotDone(2, 0, "payload-b", false);
        j.batchDone(2, someStats(), "");
        j.submit(3, "", "{\"op\":\"submit\",\"jobs\":[3]}");
        j.batchDone(3, SweepStats(), "engine exploded");
        EXPECT_EQ(j.liveBatches(), 3u);
        EXPECT_EQ(j.incompleteBatches(), 1u);
        EXPECT_EQ(j.writeFailures(), 0u);
    }

    BatchJournal j(dir);
    const BatchJournal::Recovery &r = j.recovery();
    ASSERT_EQ(r.batches.size(), 3u);
    EXPECT_EQ(r.next_batch, 4u);
    EXPECT_EQ(r.dropped_bytes, 0u);
    EXPECT_GT(r.records, 0u);

    const BatchJournal::BatchRecord &a = r.batches[0];
    EXPECT_EQ(a.id, 1u);
    EXPECT_EQ(a.token, "tok-a");
    EXPECT_EQ(a.request_json, "{\"op\":\"submit\",\"jobs\":[1]}");
    EXPECT_FALSE(a.done);
    ASSERT_EQ(a.slot_payloads.size(), 2u);
    EXPECT_EQ(a.slot_payloads.at(0), "payload-zero");
    EXPECT_EQ(a.slot_payloads.at(2), "payload-two");
    EXPECT_FALSE(a.slot_memoized.at(0));
    EXPECT_TRUE(a.slot_memoized.at(2));

    const BatchJournal::BatchRecord &b = r.batches[1];
    EXPECT_TRUE(b.done);
    EXPECT_TRUE(b.error.empty());
    EXPECT_EQ(b.stats.workers, 3u);
    EXPECT_EQ(b.stats.unique_jobs, 7u);
    EXPECT_EQ(b.stats.memo_hits, 2u);
    EXPECT_EQ(b.stats.cache_mode, "read_write");
    EXPECT_EQ(b.stats.cache.hits, 4u);

    const BatchJournal::BatchRecord &c = r.batches[2];
    EXPECT_TRUE(c.done);
    EXPECT_EQ(c.error, "engine exploded");
}

TEST(BatchJournal, ReleaseDropsBatchesButNeverRewindsIds)
{
    const std::string dir = freshDir("bj_release");
    {
        BatchJournal j(dir);
        j.submit(1, "t1", "{\"jobs\":[]}");
        j.batchDone(1, someStats(), "");
        j.released(1);
        j.submit(2, "t2", "{\"jobs\":[]}");
        j.batchDone(2, someStats(), "");
        j.released(2);
        EXPECT_EQ(j.liveBatches(), 0u);
    }
    // Every batch was released, so compaction can drop every
    // SUBMIT record — yet the next id must not rewind to 1, or a
    // client polling released batch 2 could be answered with a
    // different batch 2 after a restart.
    BatchJournal j(dir);
    EXPECT_EQ(j.recovery().batches.size(), 0u);
    EXPECT_EQ(j.recovery().next_batch, 3u);
}

TEST(BatchJournal, CompactionDropsReleasedBatchRecords)
{
    const std::string dir = freshDir("bj_compact");
    BatchJournal j(dir);
    const std::string big_payload(4096, 'x');
    // Enough released weight to cross the dead-bytes threshold and
    // trigger rotation (released bytes > 64 KiB and > half the
    // segment).
    for (uint64_t id = 1; id <= 40; ++id) {
        j.submit(id, "t" + std::to_string(id), "{\"jobs\":[]}");
        j.slotDone(id, 0, big_payload, false);
        j.batchDone(id, someStats(), "");
        j.released(id);
    }
    j.submit(41, "keep", "{\"jobs\":[1]}");
    EXPECT_EQ(j.liveBatches(), 1u);
    // Automatic compaction fired along the way: the segment is far
    // smaller than 40 * 4 KiB of dead payloads.
    EXPECT_LT(j.bytes(), 80u * 1024);
    // An explicit rotation leaves only the live batch + markers.
    j.rotate();
    EXPECT_LT(j.bytes(), 4096u);
}

TEST(BatchJournal, TruncatedTailIsDroppedNotFatal)
{
    const std::string dir = freshDir("bj_trunc");
    std::string seg;
    {
        BatchJournal j(dir);
        seg = j.segmentPath();
        j.submit(1, "tok", "{\"jobs\":[1]}");
        j.slotDone(1, 0, "slot-zero-payload", false);
        j.slotDone(1, 1, "slot-one-payload", false);
    }
    // Tear the last record mid-write.
    truncateTail(seg, 5);

    BatchJournal j(dir);
    const BatchJournal::Recovery &r = j.recovery();
    EXPECT_GT(r.dropped_bytes, 0u);
    ASSERT_EQ(r.batches.size(), 1u);
    // The torn SLOTDONE for slot 1 is gone; slot 0 survived.
    ASSERT_EQ(r.batches[0].slot_payloads.size(), 1u);
    EXPECT_EQ(r.batches[0].slot_payloads.at(0),
              "slot-zero-payload");
    // The journal is live again after recovery: appends land.
    j.slotDone(1, 1, "slot-one-payload", false);
    j.batchDone(1, someStats(), "");
}

TEST(BatchJournal, BitRotDropsFromTheCorruptRecordOn)
{
    const std::string dir = freshDir("bj_rot");
    std::string seg;
    {
        BatchJournal j(dir);
        seg = j.segmentPath();
        j.submit(1, "tok", "{\"jobs\":[1]}");
        j.slotDone(1, 0, "good-payload", false);
        j.slotDone(1, 1, "rotten-payload", false);
    }
    // Flip a bit inside the last record's payload: its FNV trailer
    // no longer matches, so replay must stop there.
    flipByte(seg, 12);

    BatchJournal j(dir);
    const BatchJournal::Recovery &r = j.recovery();
    EXPECT_GT(r.dropped_bytes, 0u);
    ASSERT_EQ(r.batches.size(), 1u);
    ASSERT_EQ(r.batches[0].slot_payloads.size(), 1u);
    EXPECT_EQ(r.batches[0].slot_payloads.at(0), "good-payload");
}

TEST(BatchJournal, ForeignFileIsRejectedWholesale)
{
    const std::string dir = freshDir("bj_foreign");
    std::filesystem::create_directories(dir);
    std::string seg;
    {
        BatchJournal probe(dir);
        seg = probe.segmentPath();
    }
    std::FILE *f = std::fopen(seg.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a journal segment at all........", f);
    std::fclose(f);

    BatchJournal j(dir);
    EXPECT_EQ(j.recovery().batches.size(), 0u);
    EXPECT_GT(j.recovery().dropped_bytes, 0u);
    // And the bad bytes were compacted away: the journal appends
    // from a clean segment.
    j.submit(1, "t", "{}");
    EXPECT_EQ(j.liveBatches(), 1u);
}

TEST(BatchJournal, CutRecordSurvivesReplay)
{
    const std::string dir = freshDir("bj_cut");
    {
        BatchJournal j(dir);
        j.submit(1, "t1", "{\"jobs\":[1]}");
        j.submit(2, "t2", "{\"jobs\":[2]}");
        // SIGTERM drain: batch 1 was in flight, batch 2 queued.
        j.cut(1, {2});
    }
    BatchJournal j(dir);
    // Both batches are incomplete and must come back for the next
    // executor to run.
    ASSERT_EQ(j.recovery().batches.size(), 2u);
    EXPECT_FALSE(j.recovery().batches[0].done);
    EXPECT_FALSE(j.recovery().batches[1].done);
    EXPECT_EQ(j.recovery().next_batch, 3u);
}

} // namespace
} // namespace spt
