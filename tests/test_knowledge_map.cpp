/**
 * @file
 * Knowledge-map artifact (core/knowledge_map.h + the
 * analysis-side emitter): lowering the KnowledgeAnalysis fixpoint
 * into the serialized per-PC robust-register map the SPT engine
 * consumes at rename (DESIGN.md §13). Pinned here:
 *
 *  - the emitted map matches the analysis fact-for-fact,
 *  - binary round-trip (stream and file) is identity,
 *  - corrupted / truncated / foreign artifacts are rejected,
 *  - validateFor refuses stale fingerprints and mismatched VP
 *    models (the Simulator runs it at construction),
 *  - the relaxed engine pre-declassifies without ever diverging
 *    from vanilla SPT's architectural results, and the map-claimed
 *    operands retire untainted under the unrelaxed ideal engine,
 *  - the invariant watchdog stays clean with a map installed,
 *  - snapshots record the map identity: restore under a different
 *    map configuration is refused, restore under the same one is
 *    byte-identical.
 */

#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/differential.h"
#include "analysis/knowledge_analysis.h"
#include "analysis/knowledge_map.h"
#include "common/json.h"
#include "common/logging.h"
#include "sim/exp_runner.h"
#include "sim/simulator.h"
#include "workloads/attack_programs.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

KnowledgeMap
mapFor(const Program &p,
       KnowledgeVpModel model = KnowledgeVpModel::kAny)
{
    const Cfg cfg(p);
    const KnowledgeAnalysis analysis(cfg);
    return emitKnowledgeMap(analysis, model);
}

// ---------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------

TEST(KnowledgeMap, EmitterMatchesTheAnalysisFixpoint)
{
    const Program p = makePointerChase(256, 1);
    const Cfg cfg(p);
    const KnowledgeAnalysis analysis(cfg);
    const KnowledgeMap map = emitKnowledgeMap(analysis);

    ASSERT_EQ(map.size(), p.size());
    EXPECT_EQ(map.programFingerprint(),
              KnowledgeMap::fingerprintOf(p));
    uint64_t facts = 0;
    for (uint64_t pc = 0; pc < p.size(); ++pc) {
        const KnowledgeState *st = analysis.inState(pc);
        const uint32_t mask = map.robustRegsAt(pc);
        for (unsigned r = 0; r < kNumArchRegs; ++r) {
            const bool robust =
                st && st->of(r) == Knowledge::kRobust;
            EXPECT_EQ((mask >> r & 1) != 0, robust)
                << "pc " << pc << " x" << r;
            facts += robust;
        }
    }
    EXPECT_EQ(map.totalFacts(), facts);
    EXPECT_GT(facts, 0u) << "emitter test is vacuous";
    // Out-of-range lookups must be the empty set, not UB.
    EXPECT_EQ(map.robustRegsAt(p.size() + 1000), 0u);
}

// ---------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------

TEST(KnowledgeMap, BinaryRoundTripIsIdentity)
{
    const KnowledgeMap map = mapFor(makePointerChase(256, 1),
                                    KnowledgeVpModel::kSpectre);
    std::ostringstream os;
    map.save(os);
    std::istringstream is(os.str());
    const KnowledgeMap loaded = KnowledgeMap::load(is);
    EXPECT_EQ(map, loaded);
    EXPECT_EQ(map.contentHash(), loaded.contentHash());
    EXPECT_EQ(loaded.vpModel(), KnowledgeVpModel::kSpectre);
}

TEST(KnowledgeMap, FileRoundTripIsIdentity)
{
    const KnowledgeMap map = mapFor(makeHashTable(300, 300));
    const std::string path =
        testing::TempDir() + "spt_test_km.bin";
    map.saveToFile(path);
    const KnowledgeMap loaded = KnowledgeMap::loadFromFile(path);
    EXPECT_EQ(map, loaded);
    std::remove(path.c_str());
}

TEST(KnowledgeMap, RejectsBadMagic)
{
    std::istringstream is(std::string(64, '\0'));
    EXPECT_THROW(KnowledgeMap::load(is), FatalError);
}

TEST(KnowledgeMap, RejectsTruncation)
{
    const KnowledgeMap map = mapFor(makePointerChase(256, 1));
    std::ostringstream os;
    map.save(os);
    const std::string bytes = os.str();
    // Every proper prefix must be refused, never misparsed. Step 7
    // keeps the loop fast while still crossing every field boundary.
    for (size_t len = 0; len < bytes.size(); len += 7) {
        std::istringstream is(bytes.substr(0, len));
        EXPECT_THROW(KnowledgeMap::load(is), FatalError)
            << "prefix length " << len;
    }
}

TEST(KnowledgeMap, RejectsBitrot)
{
    const KnowledgeMap map = mapFor(makePointerChase(256, 1));
    std::ostringstream os;
    map.save(os);
    std::string bytes = os.str();
    // Flip one payload bit (inside the robust-regs table, past the
    // fixed header): the content-hash trailer must catch it.
    bytes[bytes.size() / 2] ^= 0x10;
    std::istringstream is(bytes);
    EXPECT_THROW(KnowledgeMap::load(is), FatalError);
}

// ---------------------------------------------------------------
// Validation against a run
// ---------------------------------------------------------------

TEST(KnowledgeMap, ValidateForRejectsAForeignProgram)
{
    const Program pchase = makePointerChase(256, 1);
    const Program hashtab = makeHashTable(300, 300);
    const KnowledgeMap map = mapFor(pchase);
    EXPECT_NO_THROW(
        map.validateFor(pchase, AttackModel::kSpectre));
    EXPECT_THROW(map.validateFor(hashtab, AttackModel::kSpectre),
                 FatalError);
}

TEST(KnowledgeMap, ValidateForChecksTheVpModel)
{
    const Program p = makePointerChase(256, 1);
    const KnowledgeMap spectre_map =
        mapFor(p, KnowledgeVpModel::kSpectre);
    EXPECT_NO_THROW(
        spectre_map.validateFor(p, AttackModel::kSpectre));
    EXPECT_THROW(
        spectre_map.validateFor(p, AttackModel::kFuturistic),
        FatalError);
    const KnowledgeMap any_map = mapFor(p, KnowledgeVpModel::kAny);
    EXPECT_NO_THROW(any_map.validateFor(p, AttackModel::kSpectre));
    EXPECT_NO_THROW(
        any_map.validateFor(p, AttackModel::kFuturistic));
}

TEST(KnowledgeMap, SimulatorRefusesAStaleMapAtConstruction)
{
    const Program pchase = makePointerChase(256, 1);
    const KnowledgeMap foreign = mapFor(makeHashTable(300, 300));
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.engine.spt.method = UntaintMethod::kBackward;
    cfg.engine.spt.knowledge_map = &foreign;
    EXPECT_THROW(Simulator(pchase, cfg), FatalError);
}

TEST(KnowledgeMap, JsonDumpCarriesTheMapIdentity)
{
    const Program p = makePointerChase(256, 1);
    const KnowledgeMap map = mapFor(p);
    const std::string json = map.toJson(&p);
    EXPECT_NE(json.find("\"artifact\": \"knowledge_map\""),
              std::string::npos);
    EXPECT_NE(json.find("\"vp_model\": \"any\""),
              std::string::npos);
    EXPECT_NE(json.find("\"robust_facts\": " +
                        std::to_string(map.totalFacts())),
              std::string::npos);
    // Deterministic: same map, same bytes.
    EXPECT_EQ(json, map.toJson(&p));
}

TEST(KnowledgeMap, EngineConfigNameMarksTheMap)
{
    EngineConfig cfg;
    cfg.scheme = ProtectionScheme::kSpt;
    cfg.spt.method = UntaintMethod::kBackward;
    cfg.spt.shadow = ShadowKind::kShadowL1;
    EXPECT_EQ(engineConfigName(cfg), "SPT{Bwd,ShadowL1}");
    const KnowledgeMap map;
    cfg.spt.knowledge_map = &map;
    EXPECT_EQ(engineConfigName(cfg), "SPT{Bwd,ShadowL1}+KMap");
}

// ---------------------------------------------------------------
// Engine consumption: relaxation fires and stays sound
// ---------------------------------------------------------------

TEST(KnowledgeMap, PreclearsFireWithoutArchDivergence)
{
    const Program p = workloadByName("pchase").program;
    const KnowledgeMap map = mapFor(p);
    MapDifferentialConfig config;
    config.attack_model = AttackModel::kSpectre;
    const MapDifferentialResult res =
        runMapDifferential(p, map, config);
    EXPECT_TRUE(res.halted);
    EXPECT_GT(res.map_facts, 0u);
    EXPECT_GT(res.robust_checked, 0u);
    EXPECT_EQ(res.robust_denied, 0u) << [&] {
        std::string joined;
        for (const std::string &line : res.log)
            joined += line + "\n";
        return joined;
    }();
    EXPECT_FALSE(res.arch_divergence);
    // Non-vacuity: the map actually relaxed something on this
    // workload (pointer-chase keeps tainted loads in flight).
    EXPECT_GT(res.precleared_ops, 0u);
    EXPECT_GT(res.map_lookups, 0u);
}

TEST(KnowledgeMap, InvariantWatchdogStaysCleanWithMap)
{
    const Program program = makeSpectreV1().program;
    const KnowledgeMap map = mapFor(program);
    RunJob job;
    job.program = &program;
    job.engine.scheme = ProtectionScheme::kSpt;
    job.engine.spt.method = UntaintMethod::kBackward;
    job.engine.spt.shadow = ShadowKind::kShadowL1;
    job.engine.spt.knowledge_map = &map;
    job.attack_model = AttackModel::kSpectre;
    job.invariants = true;
    const std::vector<RunOutcome> out = ExpRunner(1).run({job});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].status, RunStatus::kOk) << out[0].error;
    EXPECT_EQ(out[0].diagnostics_json, "[]");
    EXPECT_TRUE(out[0].result.halted);
}

// ---------------------------------------------------------------
// Snapshot integration
// ---------------------------------------------------------------

TEST(KnowledgeMap, SnapshotRecordsTheMapIdentity)
{
    const Program program = makeHashTable(300, 300);
    const KnowledgeMap map = mapFor(program);
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.engine.spt.method = UntaintMethod::kBackward;
    cfg.engine.spt.shadow = ShadowKind::kShadowL1;
    cfg.engine.spt.knowledge_map = &map;
    cfg.core.attack_model = AttackModel::kFuturistic;
    cfg.checkpoint_at_retires = 600;

    std::ostringstream snap;
    Simulator saver(program, cfg);
    saver.writeSnapshotTo(&snap);
    const SimResult saved = saver.run();
    ASSERT_TRUE(saved.halted);
    ASSERT_FALSE(snap.str().empty());

    // Same config restores and finishes identically.
    {
        Simulator resumed(program, cfg);
        std::istringstream in(snap.str());
        resumed.restoreSnapshot(in);
        const SimResult r = resumed.run();
        EXPECT_EQ(r.cycles, saved.cycles);
        EXPECT_EQ(r.instructions, saved.instructions);
    }
    // Dropping the map from the config is a different machine: the
    // restore must refuse rather than silently diverge.
    {
        SimConfig no_map = cfg;
        no_map.engine.spt.knowledge_map = nullptr;
        Simulator resumed(program, no_map);
        std::istringstream in(snap.str());
        EXPECT_THROW(resumed.restoreSnapshot(in), FatalError);
    }
}

} // namespace
} // namespace spt
