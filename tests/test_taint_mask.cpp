/**
 * @file
 * Tests for the partial-access-mode TaintMask (Section 7.2) and the
 * instruction-level untaint rules (Sections 6.5-6.6), including an
 * exhaustive byte-mask round-trip property.
 */

#include <gtest/gtest.h>

#include "core/taint_mask.h"
#include "core/untaint_rules.h"

namespace spt {
namespace {

TEST(TaintMask, Basics)
{
    EXPECT_TRUE(TaintMask::none().nothing());
    EXPECT_TRUE(TaintMask::all().full());
    EXPECT_TRUE(TaintMask::all().any());
    EXPECT_FALSE(TaintMask::none().any());
    EXPECT_TRUE(TaintMask::none().subsetOf(TaintMask::all()));
    EXPECT_FALSE(TaintMask::all().subsetOf(TaintMask::none()));
}

TEST(TaintMask, GroupOfByteMapping)
{
    EXPECT_EQ(TaintMask::groupOfByte(0), 0u);
    EXPECT_EQ(TaintMask::groupOfByte(1), 1u);
    EXPECT_EQ(TaintMask::groupOfByte(2), 2u);
    EXPECT_EQ(TaintMask::groupOfByte(3), 2u);
    for (unsigned b = 4; b < 8; ++b)
        EXPECT_EQ(TaintMask::groupOfByte(b), 3u);
}

TEST(TaintMask, ByteMaskRoundTripExhaustive)
{
    // fromByteMask is the conservative OR; toByteMask re-expands.
    // Round-tripping through the group domain must be monotone
    // (never lose taint) and idempotent.
    for (unsigned bm = 0; bm < 256; ++bm) {
        const TaintMask m =
            TaintMask::fromByteMask(static_cast<uint8_t>(bm));
        const uint8_t expanded = m.toByteMask();
        // Expansion covers the original bytes.
        EXPECT_EQ(expanded & bm, bm);
        // Idempotence.
        EXPECT_EQ(TaintMask::fromByteMask(expanded), m);
    }
}

TEST(TaintMask, ForLoadZeroExtension)
{
    // A fully tainted single loaded byte taints only group 0; the
    // zero-extended upper bytes are public.
    const TaintMask m = TaintMask::forLoad(1, false, 0x01);
    EXPECT_TRUE(m.group(0));
    EXPECT_FALSE(m.group(1));
    EXPECT_FALSE(m.group(2));
    EXPECT_FALSE(m.group(3));
}

TEST(TaintMask, ForLoadSignExtensionSpreadsTopByte)
{
    // Signed byte load with a tainted byte: the sign bit replicates
    // upward, tainting every group.
    EXPECT_TRUE(TaintMask::forLoad(1, true, 0x01).full());
    // Signed halfword whose low byte is tainted but top byte is
    // public: sign is public, so only group 0 taints.
    const TaintMask m = TaintMask::forLoad(2, true, 0x01);
    EXPECT_TRUE(m.group(0));
    EXPECT_FALSE(m.group(1));
    EXPECT_FALSE(m.group(3));
}

TEST(TaintMask, ForLoadUntaintedData)
{
    EXPECT_TRUE(TaintMask::forLoad(8, false, 0x00).nothing());
    EXPECT_TRUE(TaintMask::forLoad(4, true, 0x00).nothing());
}

TEST(TaintMask, ForLoadFullWidth)
{
    EXPECT_TRUE(TaintMask::forLoad(8, false, 0xff).full());
    const TaintMask m = TaintMask::forLoad(8, false, 0xf0);
    EXPECT_FALSE(m.group(0));
    EXPECT_FALSE(m.group(1));
    EXPECT_FALSE(m.group(2));
    EXPECT_TRUE(m.group(3));
}

TEST(TaintMask, ForLoadRejectsZeroWidth)
{
    // bytes == 0 used to shift by (unsigned)-1 (undefined behavior)
    // on the sign-extension path; it must trap instead.
    EXPECT_THROW(TaintMask::forLoad(0, true, 0x01), PanicError);
    EXPECT_THROW(TaintMask::forLoad(0, false, 0x00), PanicError);
    EXPECT_THROW(TaintMask::forLoad(9, false, 0x00), PanicError);
}

// --------------------------------------------------------------------
// Instruction-level rules
// --------------------------------------------------------------------

TEST(UntaintRules, ForwardBasics)
{
    const TaintMask t = TaintMask::all();
    const TaintMask n = TaintMask::none();
    // Both public => public.
    EXPECT_TRUE(propagateForward(Opcode::kAdd, n, n).nothing());
    // Any tainted input taints a non-lane op fully.
    EXPECT_TRUE(propagateForward(Opcode::kAdd, t, n).full());
    EXPECT_TRUE(propagateForward(Opcode::kMul, n, t).full());
    // Single-source ops ignore the second operand.
    EXPECT_TRUE(propagateForward(Opcode::kAddi, n, t).nothing());
    EXPECT_TRUE(propagateForward(Opcode::kMov, t, n).full());
}

TEST(UntaintRules, ImmediateClassAlwaysPublic)
{
    const TaintMask t = TaintMask::all();
    EXPECT_TRUE(propagateForward(Opcode::kLi, t, t).nothing());
    EXPECT_TRUE(propagateForward(Opcode::kJal, t, t).nothing());
    EXPECT_TRUE(propagateForward(Opcode::kJalr, t, t).nothing());
}

TEST(UntaintRules, LaneOpsKeepGroupPrecision)
{
    const TaintMask low = TaintMask::fromByteMask(0x01); // group 0
    const TaintMask high = TaintMask::fromByteMask(0xf0); // group 3
    const TaintMask x =
        propagateForward(Opcode::kXor, low, high);
    EXPECT_TRUE(x.group(0));
    EXPECT_FALSE(x.group(1));
    EXPECT_FALSE(x.group(2));
    EXPECT_TRUE(x.group(3));
    // Non-lane op mixes everything.
    EXPECT_TRUE(propagateForward(Opcode::kAdd, low, high).full());
}

TEST(UntaintRules, BackwardCopyClass)
{
    const TaintMask t = TaintMask::all();
    const TaintMask n = TaintMask::none();
    auto r = propagateBackward(Opcode::kMov, t, n, n);
    EXPECT_TRUE(r.untaint_src0);
    r = propagateBackward(Opcode::kNot, t, n, n);
    EXPECT_TRUE(r.untaint_src0);
    // Tainted output: nothing can be inferred.
    r = propagateBackward(Opcode::kMov, t, n, t);
    EXPECT_FALSE(r.untaint_src0);
}

TEST(UntaintRules, BackwardInvertibleTwoSource)
{
    const TaintMask t = TaintMask::all();
    const TaintMask n = TaintMask::none();
    // out = src0 + src1, out and src0 public => src1 inferable.
    auto r = propagateBackward(Opcode::kAdd, n, t, n);
    EXPECT_FALSE(r.untaint_src0);
    EXPECT_TRUE(r.untaint_src1);
    r = propagateBackward(Opcode::kSub, t, n, n);
    EXPECT_TRUE(r.untaint_src0);
    EXPECT_FALSE(r.untaint_src1);
    r = propagateBackward(Opcode::kXor, t, n, n);
    EXPECT_TRUE(r.untaint_src0);
    // Both inputs tainted: x = a + b has many preimages.
    r = propagateBackward(Opcode::kAdd, t, t, n);
    EXPECT_FALSE(r.untaint_src0);
    EXPECT_FALSE(r.untaint_src1);
}

TEST(UntaintRules, BackwardImmediateForms)
{
    const TaintMask t = TaintMask::all();
    const TaintMask n = TaintMask::none();
    // addi/xori: the immediate is public program text.
    EXPECT_TRUE(propagateBackward(Opcode::kAddi, t, n, n)
                    .untaint_src0);
    EXPECT_TRUE(propagateBackward(Opcode::kXori, t, n, n)
                    .untaint_src0);
}

TEST(UntaintRules, OpaqueOpsNeverBackward)
{
    const TaintMask t = TaintMask::all();
    const TaintMask n = TaintMask::none();
    for (Opcode op : {Opcode::kAnd, Opcode::kOr, Opcode::kSll,
                      Opcode::kSrl, Opcode::kMul, Opcode::kDiv,
                      Opcode::kSlt, Opcode::kMin, Opcode::kAndi,
                      Opcode::kSlli}) {
        const auto r = propagateBackward(op, t, n, n);
        EXPECT_FALSE(r.untaint_src0) << mnemonic(op);
        EXPECT_FALSE(r.untaint_src1) << mnemonic(op);
    }
}

TEST(UntaintRules, PartialDestBlocksBackward)
{
    // Backward rules act at full-register granularity: a partially
    // tainted output must not release inputs.
    const TaintMask t = TaintMask::all();
    const TaintMask n = TaintMask::none();
    const TaintMask partial = TaintMask::fromByteMask(0x01);
    const auto r = propagateBackward(Opcode::kAdd, n, t, partial);
    EXPECT_FALSE(r.untaint_src1);
}

} // namespace
} // namespace spt
