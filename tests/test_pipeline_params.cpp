/**
 * @file
 * Pipeline parameter sweeps: the core must stay architecturally
 * correct (lockstep vs the functional CPU) across widths, window
 * sizes, port counts, and feature toggles — and narrower machines
 * must never be faster.
 */

#include <gtest/gtest.h>

#include "isa/functional_cpu.h"
#include "isa/program_fuzzer.h"
#include "sim/simulator.h"

namespace spt {
namespace {

uint64_t
runWithParams(const Program &p, const CoreParams &cp,
              ProtectionScheme scheme = ProtectionScheme::kSpt)
{
    SimConfig cfg;
    cfg.core = cp;
    cfg.core.perfect_icache = true;
    cfg.engine.scheme = scheme;
    cfg.lockstep_check = true;
    cfg.max_cycles = 10'000'000;
    Simulator sim(p, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.halted);

    FunctionalCpu cpu(p);
    cpu.run(10'000'000);
    EXPECT_EQ(sim.core().archReg(17), cpu.reg(17));
    return r.cycles;
}

TEST(PipelineParams, WidthSweepCorrectAndMonotone)
{
    const Program p = fuzzProgram(0x51de);
    uint64_t prev = ~uint64_t{0};
    for (unsigned width : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(width);
        CoreParams cp;
        cp.fetch_width = width;
        cp.rename_width = width;
        cp.issue_width = width;
        cp.commit_width = width;
        const uint64_t cycles = runWithParams(p, cp);
        // Wider machines never lose (small tolerance for predictor
        // history interactions).
        EXPECT_LE(cycles, prev + prev / 20);
        prev = cycles;
    }
}

TEST(PipelineParams, RobSweep)
{
    const Program p = fuzzProgram(0x90b);
    for (unsigned rob : {16u, 48u, 192u}) {
        SCOPED_TRACE(rob);
        CoreParams cp;
        cp.rob_size = rob;
        cp.rs_size = rob / 2;
        runWithParams(p, cp);
    }
}

TEST(PipelineParams, SingleLoadPort)
{
    const Program p = fuzzProgram(0xab);
    CoreParams one;
    one.load_ports = 1;
    one.store_ports = 1;
    CoreParams four;
    four.load_ports = 4;
    four.store_ports = 2;
    const uint64_t c1 = runWithParams(p, one);
    const uint64_t c4 = runWithParams(p, four);
    EXPECT_LE(c4, c1);
}

TEST(PipelineParams, MemDepSpeculationToggle)
{
    // Conservative mode (loads wait for all older store addresses)
    // must be correct and must produce zero violations.
    FuzzConfig fc;
    fc.mem_fraction = 0.6;
    const Program p = fuzzProgram(909, fc);
    SimConfig cfg;
    cfg.core.mem_dep_speculation = false;
    cfg.core.perfect_icache = true;
    cfg.engine.scheme = ProtectionScheme::kUnsafeBaseline;
    cfg.lockstep_check = true;
    Simulator sim(p, cfg);
    EXPECT_TRUE(sim.run().halted);
    EXPECT_EQ(sim.stat("core.lsu.violations_detected"), 0u);
}

TEST(PipelineParams, BroadcastWidthSweepUnderSpt)
{
    const Program p = fuzzProgram(515);
    uint64_t prev = ~uint64_t{0};
    for (unsigned w : {1u, 3u, 16u}) {
        SCOPED_TRACE(w);
        SimConfig cfg;
        cfg.core.perfect_icache = true;
        cfg.engine.scheme = ProtectionScheme::kSpt;
        cfg.engine.spt.broadcast_width = w;
        cfg.lockstep_check = true;
        Simulator sim(p, cfg);
        const SimResult r = sim.run();
        EXPECT_TRUE(r.halted);
        EXPECT_LE(r.cycles, prev);
        prev = r.cycles;
    }
}

TEST(PipelineParams, FrontendDepthAffectsMispredictCost)
{
    // A branchy program pays more per mispredict on a deeper
    // frontend.
    FuzzConfig fc;
    fc.branch_fraction = 1.0;
    const Program p = fuzzProgram(303, fc);
    CoreParams shallow;
    shallow.frontend_extra_delay = 1;
    CoreParams deep;
    deep.frontend_extra_delay = 12;
    const uint64_t c_shallow = runWithParams(
        p, shallow, ProtectionScheme::kUnsafeBaseline);
    const uint64_t c_deep = runWithParams(
        p, deep, ProtectionScheme::kUnsafeBaseline);
    EXPECT_LT(c_shallow, c_deep);
}

} // namespace
} // namespace spt
