/**
 * @file
 * Section 6.7 white-box tests: store-to-load forwarding under SPT.
 *
 *  - When the forwarding pair is public (all addresses untainted),
 *    the ordinary fast path runs (no hiding cache access).
 *  - When an intervening store has a tainted address, the forwarding
 *    decision is hidden: the load performs a cache access anyway and
 *    no untaint propagates across the pair until STLPublic holds.
 *  - Once STLPublic holds, untaint flows forward (store data ->
 *    load output) and backward (load output -> store data).
 */

#include <gtest/gtest.h>

#include "core/engine_factory.h"
#include "core/spt_engine.h"
#include "isa/assembler.h"
#include "uarch/core.h"

namespace spt {
namespace {

struct Rig {
    std::unique_ptr<Core> core;
    SptEngine *engine = nullptr;
};

Rig
makeRig(const Program &p, AttackModel model)
{
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSpt;
    ec.spt.method = UntaintMethod::kBackward;
    ec.spt.shadow = ShadowKind::kShadowL1;
    CoreParams cp;
    cp.attack_model = model;
    cp.perfect_icache = true;
    Rig rig;
    rig.core = std::make_unique<Core>(p, cp, MemorySystemParams{},
                                      makeEngine(ec));
    rig.engine = &dynamic_cast<SptEngine &>(rig.core->engine());
    return rig;
}

TEST(StlForwarding, PublicPairUsesFastPath)
{
    // All addresses are public constants: forwarding is public, the
    // load needs no hiding access.
    const Program p = assemble(R"(
    li   t0, 0x200000
    li   t1, 4242
    sd   t1, 0(t0)
    ld   t2, 0(t0)
    mv   a7, t2
    halt
)");
    Rig rig = makeRig(p, AttackModel::kFuturistic);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    EXPECT_TRUE(rig.core->halted());
    EXPECT_EQ(rig.core->archReg(17), 4242u);
    EXPECT_GT(rig.core->stats().get("lsu.forwards_public"), 0u);
    EXPECT_EQ(rig.core->stats().get("lsu.forwards_hidden"), 0u);
}

TEST(StlForwarding, TaintedInterveningStoreHidesForwarding)
{
    // A store whose address comes from loaded (tainted) data sits
    // between the forwarding source and the load. Until it resolves
    // and declassifies, STLPublic is false, so if the load forwards
    // while that store's address is still tainted the decision is
    // hidden with a cache access.
    const Program p = assemble(R"(
    .data
slot:
    .quad 0x100040
    .text
    li   t0, 0x200000
    li   t1, 7777
    li   s5, 0x100000
    sd   t1, 0(t0)       # forwarding source (public addr)
    ld   s6, 0(s5)       # tainted pointer
    sd   x0, 0(s6)       # intervening store, tainted address
    ld   t2, 0(t0)       # forwards from the first store
    mv   a7, t2
    halt
)");
    Rig rig = makeRig(p, AttackModel::kFuturistic);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    EXPECT_TRUE(rig.core->halted());
    // Architectural value correct regardless of hiding.
    EXPECT_EQ(rig.core->archReg(17), 7777u);
}

TEST(StlForwarding, UntaintPropagatesForwardWhenPublic)
{
    // The store's data is public; once STLPublic holds the load's
    // output is untainted via the STL rule — here it is the ONLY
    // rule that can untaint it (the value feeds no transmitter).
    // The cold blocker load is OLDEST, so in-order commit keeps the
    // store in the SQ while the forwarding pair forms and resolves.
    const Program p = assemble(R"(
    li   s5, 0x900000
    ld   s6, 0(s5)       # slow independent blocker (stalls commit)
    li   t0, 0x200000
    li   t1, 64
    sd   t1, 0(t0)
    ld   t2, 0(t0)       # forwarded, data public
    mul  a7, t2, t2      # non-transmitting use: no competing
    halt                 # declassification path exists
)");
    Rig rig = makeRig(p, AttackModel::kSpectre);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    EXPECT_TRUE(rig.core->halted());
    EXPECT_GT(rig.core->engine().stats().get("untaint.stl_forward"),
              0u);
}

TEST(StlForwarding, BackwardPropagatesToStoreData)
{
    // The store's data is tainted (loaded); the forwarded load's
    // output is used as a transmitter address and declassified at
    // the VP — the STL backward rule must then untaint the store's
    // data operand.
    // Under the Spectre model the VP (no unresolved branches) runs
    // ahead of in-order commit, which the cold blocker load stalls:
    // the consumer declassifies while the store is still in the SQ.
    const Program p = assemble(R"(
    .data
v:
    .quad 64
    .text
    li   s8, 0x900000
    ld   s9, 0(s8)       # slow independent blocker (stalls commit)
    li   s10, 3
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    div  s9, s9, s10
    li   s5, 0x100000
    ld   s6, 0(s5)       # tainted data (value 64)
    li   t0, 0x200000
    sd   s6, 0(t0)       # store with tainted data, public addr
    ld   t2, 0(t0)       # forwarded: output tainted
    add  t3, t2, t0
    ld   a7, 0(t3)       # transmitter: declassifies t3 at its VP
    halt
)");
    Rig rig = makeRig(p, AttackModel::kSpectre);
    bool store_data_untainted = false;
    while (!rig.core->halted() && rig.core->cycle() < 100'000) {
        rig.core->tick();
        for (const DynInstPtr &d : rig.core->rob()) {
            if (d->si.op != Opcode::kSd || d->squashed)
                continue;
            const auto *t = rig.engine->instTaint(d->seq);
            if (t && t->src[1].nothing())
                store_data_untainted = true;
        }
    }
    EXPECT_TRUE(rig.core->halted());
    EXPECT_TRUE(store_data_untainted)
        << "backward STL untaint never reached the store's data";
}

TEST(StlForwarding, SubWordForwardingKeepsTaintConservative)
{
    // A byte load forwarded from a store with tainted data must stay
    // tainted until the STL rule clears it (never silently public).
    const Program p = assemble(R"(
    .data
v:
    .quad 0x1234
    .text
    li   s5, 0x100000
    ld   s6, 0(s5)
    li   t0, 0x200000
    sd   s6, 0(t0)
    lbu  t2, 1(t0)       # sub-word forward of tainted data
    andi a7, t2, 0xff
    halt
)");
    Rig rig = makeRig(p, AttackModel::kFuturistic);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    EXPECT_TRUE(rig.core->halted());
    EXPECT_EQ(rig.core->archReg(17), 0x12u);
}

} // namespace
} // namespace spt
