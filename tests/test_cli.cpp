/**
 * @file
 * CLI hardening tests (common/cli.h, common/parallel.h): the strict
 * number parser behind every tool flag, the --jobs/SPT_JOBS
 * resolution shared by spt_run/spt_lint/spt_chaos and the bench
 * drivers, and the toolMain exit-code mapping (0 success, 1 check
 * failed, 2 usage, 70 internal). The binary-level companions live
 * in tests/CMakeLists.txt (cli.* ctest entries running the real
 * tools through tests/check_exit_code.cmake).
 */

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/logging.h"
#include "common/parallel.h"

namespace spt {
namespace {

TEST(ParseUnsigned, AcceptsPlainDecimals)
{
    EXPECT_EQ(parseUnsigned("0", "x"), 0u);
    EXPECT_EQ(parseUnsigned("4", "x"), 4u);
    EXPECT_EQ(parseUnsigned("007", "x"), 7u); // decimal, not octal
    EXPECT_EQ(parseUnsigned("18446744073709551615", "x"),
              UINT64_MAX);
}

TEST(ParseUnsigned, RejectsTrailingJunk)
{
    // stoul would have accepted all of these prefixes silently.
    EXPECT_THROW(parseUnsigned("4x", "--jobs"), FatalError);
    EXPECT_THROW(parseUnsigned("4 ", "--jobs"), FatalError);
    EXPECT_THROW(parseUnsigned(" 4", "--jobs"), FatalError);
    EXPECT_THROW(parseUnsigned("4.5", "--jobs"), FatalError);
    EXPECT_THROW(parseUnsigned("0x10", "--jobs"), FatalError);
}

TEST(ParseUnsigned, RejectsSignsAndEmpty)
{
    // "-1" under stoul wraps to a huge unsigned; here it is a
    // usage error like any other non-digit.
    EXPECT_THROW(parseUnsigned("-1", "--jobs"), FatalError);
    EXPECT_THROW(parseUnsigned("+1", "--jobs"), FatalError);
    EXPECT_THROW(parseUnsigned("", "--jobs"), FatalError);
}

TEST(ParseUnsigned, RejectsOutOfRange)
{
    EXPECT_THROW(parseUnsigned("18446744073709551616", "x"),
                 FatalError); // 2^64
    EXPECT_THROW(parseUnsigned("99999999999999999999999", "x"),
                 FatalError);
    EXPECT_EQ(parseUnsigned("64", "x", 64), 64u);
    EXPECT_THROW(parseUnsigned("65", "x", 64), FatalError);
}

/** argv builder: jobsFromArgs takes char**, literals are const. */
struct Argv {
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (std::string &s : strings)
            ptrs.push_back(s.data());
    }
    int argc() const { return static_cast<int>(ptrs.size()); }
    char **argv() { return ptrs.data(); }
    std::vector<std::string> strings;
    std::vector<char *> ptrs;
};

TEST(Jobs, JobsFromArgsRejectsMalformedValues)
{
    for (const char *bad : {"4x", "0", "-2", "+4", "5000", "1e3",
                            "", " 2"}) {
        Argv split({"tool", "--jobs", bad});
        EXPECT_THROW(jobsFromArgs(split.argc(), split.argv()),
                     FatalError)
            << "--jobs " << bad;
        Argv joined({"tool", std::string("--jobs=") + bad});
        EXPECT_THROW(jobsFromArgs(joined.argc(), joined.argv()),
                     FatalError)
            << "--jobs=" << bad;
    }
    Argv missing({"tool", "--jobs"});
    EXPECT_THROW(jobsFromArgs(missing.argc(), missing.argv()),
                 FatalError);
    Argv good({"tool", "--jobs", "3"});
    EXPECT_EQ(jobsFromArgs(good.argc(), good.argv()), 3u);
}

TEST(Jobs, ResolveJobsRejectsMalformedEnv)
{
    const char *saved = std::getenv("SPT_JOBS");
    const std::string restore = saved ? saved : "";
    for (const char *bad : {"4x", "0", "-1", "8192"}) {
        ASSERT_EQ(setenv("SPT_JOBS", bad, 1), 0);
        EXPECT_THROW(resolveJobs(0), FatalError)
            << "SPT_JOBS=" << bad;
        // An explicit request bypasses the env entirely.
        EXPECT_EQ(resolveJobs(2), 2u);
    }
    ASSERT_EQ(setenv("SPT_JOBS", "7", 1), 0);
    EXPECT_EQ(resolveJobs(0), 7u);
    if (saved)
        setenv("SPT_JOBS", restore.c_str(), 1);
    else
        unsetenv("SPT_JOBS");
}

TEST(ToolMain, MapsExceptionsToExitCodes)
{
    EXPECT_EQ(toolMain("t", [] { return 0; }), 0);
    EXPECT_EQ(toolMain("t", [] { return 1; }), 1);
    EXPECT_EQ(toolMain("t", []() -> int { SPT_FATAL("bad flag"); }),
              2);
    EXPECT_EQ(toolMain("t",
                       []() -> int {
                           throw std::runtime_error("boom");
                       }),
              70);
}

} // namespace
} // namespace spt
