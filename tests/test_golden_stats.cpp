/**
 * @file
 * Golden-stats invariance: the untaint.* counters of the golden
 * workload suite under SPT{Backward,ShadowL1} must match the
 * recorded baseline exactly. The SPT untaint machinery is specified
 * cycle-accurately (Section 7.3's phase ordering and arbitration),
 * so any implementation or performance change that shifts these
 * counters changed observable behavior — either a bug or a semantic
 * change that must be justified and re-recorded
 * (tools/record_golden_stats, see golden_untaint_stats.inc).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "workloads/golden_suite.h"

namespace spt {
namespace {

using CounterMap = std::map<std::string, uint64_t>;

const std::vector<std::pair<std::string, CounterMap>> &
goldenCounters()
{
    static const std::vector<std::pair<std::string, CounterMap>> g = {
#include "golden_untaint_stats.inc"
    };
    return g;
}

CounterMap
runCase(const GoldenCase &c)
{
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.engine.spt.method = UntaintMethod::kBackward;
    cfg.engine.spt.shadow = ShadowKind::kShadowL1;
    cfg.core.attack_model = c.model;
    Simulator sim(c.program, cfg);
    const SimResult res = sim.run();
    EXPECT_TRUE(res.halted) << c.name;
    CounterMap out;
    for (const auto &[name, value] :
         sim.core().engine().stats().counters()) {
        if (name.rfind("untaint.", 0) == 0)
            out[name] = value;
    }
    return out;
}

class GoldenStatsTest : public testing::TestWithParam<size_t>
{
};

TEST_P(GoldenStatsTest, UntaintCountersMatchBaseline)
{
    const GoldenCase &c = goldenSuite().at(GetParam());
    const auto &expected = goldenCounters().at(GetParam());
    ASSERT_EQ(expected.first, c.name)
        << "golden_untaint_stats.inc is out of sync with the suite; "
           "regenerate with tools/record_golden_stats";
    const CounterMap actual = runCase(c);
    // Compare complete maps: a counter appearing or disappearing is
    // as much a divergence as a changed value.
    EXPECT_EQ(actual, expected.second) << c.name;
}

std::string
caseName(const testing::TestParamInfo<size_t> &info)
{
    std::string n = goldenSuite().at(info.param).name;
    for (char &ch : n)
        if (ch == '/' || ch == '-')
            ch = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    All, GoldenStatsTest,
    testing::Range<size_t>(0, goldenSuite().size()), caseName);

TEST(GoldenStats, BaselineCoversWholeSuite)
{
    ASSERT_EQ(goldenCounters().size(), goldenSuite().size());
}

} // namespace
} // namespace spt
