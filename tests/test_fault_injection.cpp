/**
 * @file
 * Robustness subsystem tests (PR 5): the seeded fault injector
 * (sim/fault_injector.h), the runtime invariant checker
 * (uarch/invariant_checker.h), graceful sweep degradation
 * (sim/exp_runner.h RunnerPolicy), and the chaos campaign driver
 * (sim/chaos.h).
 *
 * The two properties everything here hangs on:
 *  - metamorphic architectural equivalence: faults perturb timing
 *    only, so faulted runs retire the same instructions to the same
 *    architectural state as fault-free runs;
 *  - checker honesty: zero false positives on the golden suite (and
 *    zero perturbation of its untaint counters), plus guaranteed
 *    detection of a seeded taint bug (the mutation control).
 */

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "sim/chaos.h"
#include "sim/exp_runner.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "uarch/invariant_checker.h"
#include "workloads/attack_programs.h"
#include "workloads/golden_suite.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

// --------------------------------------------------------------------
// FaultInjector unit behavior
// --------------------------------------------------------------------

std::vector<bool>
fireSequence(FaultInjector &inj, FaultSite site, std::size_t n)
{
    std::vector<bool> seq;
    seq.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        seq.push_back(inj.fire(site));
    return seq;
}

TEST(FaultInjector, SameSeedSameSequence)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.set(FaultSite::kCacheEvict, 100'000); // 10%
    FaultInjector a(plan);
    FaultInjector b(plan);
    const auto sa = fireSequence(a, FaultSite::kCacheEvict, 2000);
    const auto sb = fireSequence(b, FaultSite::kCacheEvict, 2000);
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(a.draws(FaultSite::kCacheEvict), 2000u);
    EXPECT_GT(a.fired(FaultSite::kCacheEvict), 0u);
    EXPECT_LT(a.fired(FaultSite::kCacheEvict), 2000u);

    FaultPlan other = plan;
    other.seed = 43;
    FaultInjector c(other);
    EXPECT_NE(sa, fireSequence(c, FaultSite::kCacheEvict, 2000));
}

TEST(FaultInjector, SitesDrawFromIndependentStreams)
{
    // Enabling (and consulting) another site must not shift the
    // Bernoulli sequence a site sees — each has its own stream.
    FaultPlan lone;
    lone.seed = 7;
    lone.set(FaultSite::kMshrStall, 50'000);
    FaultInjector a(lone);
    const auto sa = fireSequence(a, FaultSite::kMshrStall, 1000);

    FaultPlan both = lone;
    both.set(FaultSite::kIssueJitter, 200'000);
    FaultInjector b(both);
    std::vector<bool> sb;
    for (std::size_t i = 0; i < 1000; ++i) {
        b.fire(FaultSite::kIssueJitter); // interleaved consultation
        sb.push_back(b.fire(FaultSite::kMshrStall));
    }
    EXPECT_EQ(sa, sb);
}

TEST(FaultInjector, ZeroRateConsumesNoDrawsAndNeverFires)
{
    FaultPlan plan;
    plan.seed = 9;
    plan.set(FaultSite::kExtraSquash, 0);
    FaultInjector inj(plan);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(inj.fire(FaultSite::kExtraSquash));
    EXPECT_EQ(inj.draws(FaultSite::kExtraSquash), 0u);
    EXPECT_EQ(inj.totalFired(), 0u);
    // Disabled sites stay out of the campaign counters.
    EXPECT_TRUE(inj.counters().empty());
}

// --------------------------------------------------------------------
// Memo-key coverage of the new descriptor fields
// --------------------------------------------------------------------

TEST(FaultInjection, JobKeyCoversRobustnessFields)
{
    const Program pchase = makePointerChase(128, 1);
    RunJob job;
    job.program = &pchase;
    job.engine.scheme = ProtectionScheme::kSpt;

    std::set<std::string> keys;
    keys.insert(jobKey(job));
    auto expect_fresh = [&](const RunJob &j, const char *what) {
        EXPECT_TRUE(keys.insert(jobKey(j)).second)
            << what << " not reflected in jobKey";
    };

    RunJob j = job;
    j.faults.seed = 5;
    expect_fresh(j, "fault seed");
    j = job;
    j.faults.set(FaultSite::kCacheEvict, 1000);
    expect_fresh(j, "cache-evict rate");
    j = job;
    j.faults.set(FaultSite::kIssueJitter, 1000);
    expect_fresh(j, "issue-jitter rate");
    j = job;
    j.invariants = true;
    expect_fresh(j, "invariants");
    j = job;
    j.watchdog_cycles = 500;
    expect_fresh(j, "watchdog_cycles");
    j = job;
    j.wall_timeout_seconds = 1.5;
    expect_fresh(j, "wall_timeout_seconds");
    j = job;
    j.engine.spt.mutation = SptConfig::Mutation::kLeakyMemGate;
    expect_fresh(j, "mutation");

    // The label is presentation, not a design point: equal keys.
    j = job;
    j.label = "pretty name";
    EXPECT_FALSE(keys.insert(jobKey(j)).second);
}

// --------------------------------------------------------------------
// Invariant checker: zero false positives, zero perturbation
// --------------------------------------------------------------------

TEST(InvariantChecker, GoldenSuiteCleanAndCountersUnperturbed)
{
    // Every golden case under SPT{Bwd,ShadowL1}: the checker must
    // stay silent, and — because it is observer-only — attaching it
    // must leave every engine counter (untaint.* included)
    // bit-identical to the unobserved run.
    EngineConfig engine;
    engine.scheme = ProtectionScheme::kSpt;
    engine.spt.method = UntaintMethod::kBackward;
    engine.spt.shadow = ShadowKind::kShadowL1;

    std::vector<RunJob> grid;
    for (const GoldenCase &c : goldenSuite()) {
        RunJob plain;
        plain.program = &c.program;
        plain.engine = engine;
        plain.attack_model = c.model;
        plain.label = c.name;
        RunJob checked = plain;
        checked.invariants = true;
        grid.push_back(plain);
        grid.push_back(checked);
    }
    ExpRunner runner(2);
    const std::vector<RunOutcome> out = runner.run(grid);
    for (std::size_t i = 0; i < out.size(); i += 2) {
        const RunOutcome &plain = out[i];
        const RunOutcome &checked = out[i + 1];
        EXPECT_EQ(checked.status, RunStatus::kOk)
            << grid[i].label << ": " << checked.diagnostics_json;
        EXPECT_EQ(checked.diagnostics_json, "[]") << grid[i].label;
        EXPECT_EQ(plain.engine_counters, checked.engine_counters)
            << grid[i].label;
        EXPECT_EQ(plain.result.cycles, checked.result.cycles)
            << grid[i].label;
        EXPECT_EQ(plain.arch_regs, checked.arch_regs)
            << grid[i].label;
    }
}

// --------------------------------------------------------------------
// Mutation control: the checker must catch a seeded taint bug
// --------------------------------------------------------------------

TEST(InvariantChecker, DetectsSeededLeakyMemGate)
{
    const Program pchase = makePointerChase(256, 1);
    RunJob job;
    job.program = &pchase;
    job.engine.scheme = ProtectionScheme::kSpt;
    job.engine.spt.method = UntaintMethod::kBackward;
    job.engine.spt.shadow = ShadowKind::kShadowL1;
    job.engine.spt.mutation = SptConfig::Mutation::kLeakyMemGate;
    job.invariants = true;

    ExpRunner runner(1);
    RunnerPolicy policy;
    policy.keep_going = true;
    policy.capture_evidence = true;
    const std::vector<RunOutcome> out = runner.run({job}, policy);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].status, RunStatus::kViolation);
    EXPECT_NE(out[0].diagnostics_json.find("tainted-transmitter"),
              std::string::npos)
        << out[0].diagnostics_json;
    // The leaky gate actually opened (the bug manifested, the
    // checker did not fire vacuously) ...
    EXPECT_GT(out[0].counter("mutation.leaky_gate_opens"), 0u);
    // ... and the evidence re-run reproduced it with a trace.
    EXPECT_TRUE(out[0].reproduced);
    EXPECT_FALSE(out[0].evidence_trace.empty());
    // Timing bug only: the run still computes the right answer.
    EXPECT_TRUE(out[0].result.halted);
}

// --------------------------------------------------------------------
// Watchdogs
// --------------------------------------------------------------------

TEST(Watchdog, TinyRetireWatchdogReportsLivelock)
{
    // A 10-cycle commit-progress watchdog trips on the first cold
    // DRAM miss; the run must end cleanly as kLivelock (no panic)
    // with a synthesized diagnostic even without the checker.
    const Program pchase = makePointerChase(256, 1);
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.core.watchdog_cycles = 10;
    Simulator sim(pchase, cfg);
    const SimResult r = sim.run();
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.termination, Termination::kLivelock);
    EXPECT_NE(sim.diagnosticsJson(), "[]");
    EXPECT_NE(sim.diagnosticsJson().find("livelock"),
              std::string::npos);
}

TEST(Watchdog, CheckerLivelockAndRunnerClassification)
{
    const Program pchase = makePointerChase(256, 1);
    RunJob job;
    job.program = &pchase;
    job.engine.scheme = ProtectionScheme::kSpt;
    job.watchdog_cycles = 10;
    job.invariants = true;
    RunnerPolicy policy;
    policy.keep_going = true;
    const std::vector<RunOutcome> out =
        ExpRunner(1).run({job}, policy);
    EXPECT_EQ(out[0].status, RunStatus::kLivelock);
    EXPECT_EQ(out[0].result.termination, Termination::kLivelock);
    EXPECT_NE(out[0].diagnostics_json.find("livelock"),
              std::string::npos);
}

TEST(Watchdog, CycleBudgetClassifiesAsTimeout)
{
    const Program pchase = makePointerChase(256, 1);
    RunJob job;
    job.program = &pchase;
    job.engine.scheme = ProtectionScheme::kUnsafeBaseline;
    job.max_cycles = 200; // far too small to finish
    RunnerPolicy policy;
    policy.keep_going = true;
    const std::vector<RunOutcome> out =
        ExpRunner(1).run({job}, policy);
    EXPECT_EQ(out[0].status, RunStatus::kTimeout);
    EXPECT_EQ(out[0].result.termination, Termination::kMaxCycles);
}

// --------------------------------------------------------------------
// Graceful sweep degradation
// --------------------------------------------------------------------

TEST(KeepGoing, CrashIsolatedToItsSlot)
{
    const Program pchase = makePointerChase(256, 1);
    std::vector<RunJob> grid;
    for (int i = 0; i < 4; ++i) {
        RunJob job;
        job.program = &pchase;
        job.engine.scheme = ProtectionScheme::kUnsafeBaseline;
        job.seed = static_cast<uint64_t>(i);
        grid.push_back(job);
    }
    grid[2].engine.scheme = static_cast<ProtectionScheme>(0xee);
    grid[2].label = "the broken one";

    ExpRunner runner(2);
    RunnerPolicy policy;
    policy.keep_going = true;
    const std::vector<RunOutcome> out = runner.run(grid, policy);
    ASSERT_EQ(out.size(), 4u);
    for (const std::size_t ok : {0u, 1u, 3u}) {
        EXPECT_EQ(out[ok].status, RunStatus::kOk) << "slot " << ok;
        EXPECT_TRUE(out[ok].result.halted) << "slot " << ok;
    }
    EXPECT_EQ(out[2].status, RunStatus::kCrash);
    EXPECT_NE(out[2].error.find("unknown protection scheme"),
              std::string::npos)
        << out[2].error;
    EXPECT_EQ(out[2].job_desc, "the broken one");
    EXPECT_EQ(runner.lastSweep().failed_jobs, 1u);
    EXPECT_EQ(runner.lastSweep().first_failure, "the broken one");

    // The partial-results report renders and is deterministic.
    JsonWriter jw;
    sweepReportJson(jw, grid, out, runner.lastSweep());
    const std::string report = jw.str();
    EXPECT_NE(report.find("\"failed_jobs\": 1"), std::string::npos);
    EXPECT_NE(report.find("the broken one"), std::string::npos);
    EXPECT_NE(report.find("unknown protection scheme"),
              std::string::npos);
}

TEST(KeepGoing, DefaultPolicyStillThrowsDeterministically)
{
    // The historic contract (pinned also by test_exp_runner.cpp):
    // without keep_going the sweep rethrows — and now always the
    // lowest-indexed failing slot, for any worker count.
    const Program pchase = makePointerChase(256, 1);
    std::vector<RunJob> grid;
    for (int i = 0; i < 6; ++i) {
        RunJob job;
        job.program = &pchase;
        job.engine.scheme = ProtectionScheme::kUnsafeBaseline;
        job.seed = static_cast<uint64_t>(i);
        grid.push_back(job);
    }
    grid[1].engine.scheme = static_cast<ProtectionScheme>(0xee);
    grid[4].engine.scheme = static_cast<ProtectionScheme>(0xef);
    for (const unsigned workers : {1u, 4u}) {
        try {
            ExpRunner(workers).run(grid);
            FAIL() << "sweep did not throw";
        } catch (const PanicError &e) {
            EXPECT_NE(std::string(e.what())
                          .find("unknown protection scheme"),
                      std::string::npos);
        }
    }
}

// --------------------------------------------------------------------
// Chaos campaigns
// --------------------------------------------------------------------

ChaosConfig
smallCampaign(const Program &pchase, const Program &chacha,
              const Program &spectre)
{
    ChaosConfig cfg;
    cfg.seed = 1234;
    cfg.rate_ppm = 20'000;
    cfg.workloads = {{"pchase", &pchase},
                     {"chacha20", &chacha},
                     {"spectre-v1", &spectre}};
    cfg.engines = chaosEngines();
    return cfg;
}

TEST(ChaosCampaign, MetamorphicEquivalenceAcrossAllFaultKinds)
{
    // Every fault site x three engines x three behavior classes:
    // the campaign must be clean (no violations, no architectural
    // divergence, no failed runs) while actually injecting faults.
    const Program pchase = makePointerChase(256, 1);
    const Program chacha = makeChaCha20(2);
    const Program spectre = makeSpectreV1().program;
    ChaosConfig cfg = smallCampaign(pchase, chacha, spectre);
    const ChaosResult result = runChaosCampaign(cfg);
    EXPECT_TRUE(result.summary.clean())
        << result.json.substr(0, 4000);
    EXPECT_GT(result.summary.faults_injected, 0u);
    // 3 workloads x 3 engines x (1 baseline + 6 fault sites).
    EXPECT_EQ(result.summary.runs, 3u * 3u * 7u);
    EXPECT_TRUE(result.diagnostics.empty());
}

TEST(ChaosCampaign, ByteIdenticalAcrossWorkerCounts)
{
    const Program pchase = makePointerChase(256, 1);
    const Program chacha = makeChaCha20(2);
    const Program spectre = makeSpectreV1().program;
    ChaosConfig cfg = smallCampaign(pchase, chacha, spectre);
    cfg.mutate = true;
    cfg.jobs = 1;
    const ChaosResult serial = runChaosCampaign(cfg);
    cfg.jobs = 4;
    const ChaosResult pooled = runChaosCampaign(cfg);
    EXPECT_EQ(serial.json, pooled.json);
    EXPECT_TRUE(serial.summary.mutation_detected);
}

TEST(ChaosCampaign, MutationControlDetectsSeededBug)
{
    const Program pchase = makePointerChase(256, 1);
    const Program chacha = makeChaCha20(2);
    const Program spectre = makeSpectreV1().program;
    ChaosConfig cfg = smallCampaign(pchase, chacha, spectre);
    cfg.mutate = true;
    const ChaosResult result = runChaosCampaign(cfg);
    EXPECT_TRUE(result.summary.mutation_ran);
    EXPECT_TRUE(result.summary.mutation_detected);
    // The campaign proper stays clean; only mutation cells fire.
    EXPECT_TRUE(result.summary.clean());
    EXPECT_FALSE(result.diagnostics.empty());
}

} // namespace
} // namespace spt
