/**
 * @file
 * Assembler tests: labels, directives, pseudo-instructions, data
 * fixups, and error reporting.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "isa/assembler.h"
#include "isa/functional_cpu.h"

namespace spt {
namespace {

TEST(Assembler, BasicInstructionsAndLabels)
{
    const Program p = assemble(R"(
start:
    li   a0, 5
    addi a0, a0, -1
    bnez a0, start
    halt
)");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(0).op, Opcode::kLi);
    EXPECT_EQ(p.at(2).op, Opcode::kBne);
    EXPECT_EQ(p.at(2).imm, -2); // pc-relative back to start
    EXPECT_EQ(p.symbol("start"), 0u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble(R"(
    # full-line comment
    li a0, 1   # trailing comment
    ; semicolon comment
    li a1, 2   // c++ style
    halt
)");
    EXPECT_EQ(p.size(), 3u);
}

TEST(Assembler, DataDirectives)
{
    const Program p = assemble(R"(
    .data
words:
    .quad 0x1122334455667788, 2
half_word:
    .half 0xabcd
bytes:
    .byte 1, 2, 3
    .align 8
aligned:
    .zero 16
    .text
    halt
)");
    ByteMemory mem;
    p.loadInto(mem);
    const uint64_t base = p.symbol("words");
    EXPECT_EQ(base, kDefaultDataBase);
    EXPECT_EQ(mem.read(base, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(base + 8, 8), 2u);
    EXPECT_EQ(mem.read(p.symbol("half_word"), 2), 0xabcdu);
    EXPECT_EQ(mem.readByte(p.symbol("bytes") + 2), 3u);
    EXPECT_EQ(p.symbol("aligned") % 8, 0u);
}

TEST(Assembler, DataBaseAddress)
{
    const Program p = assemble(R"(
    .data 0x400000
buf:
    .quad 7
    .text
    halt
)");
    EXPECT_EQ(p.symbol("buf"), 0x400000u);
}

TEST(Assembler, SymbolInDataIsFixedUp)
{
    const Program p = assemble(R"(
    .data
table:
    .quad handler_a, handler_b
    .text
handler_a:
    nop
handler_b:
    halt
)");
    ByteMemory mem;
    p.loadInto(mem);
    EXPECT_EQ(mem.read(p.symbol("table"), 8), p.symbol("handler_a"));
    EXPECT_EQ(mem.read(p.symbol("table") + 8, 8),
              p.symbol("handler_b"));
}

TEST(Assembler, PseudoInstructions)
{
    const Program p = assemble(R"(
    mv   a0, a1
    j    skip
    nop
skip:
    jr   ra
    call skip
    ret
    la   t0, skip
    beqz a0, skip
    bnez a0, skip
    seqz a1, a2
    snez a1, a2
    halt
)");
    EXPECT_EQ(p.at(0).op, Opcode::kMov);
    EXPECT_EQ(p.at(1).op, Opcode::kJal);
    EXPECT_EQ(p.at(1).rd, kRegZero);
    EXPECT_EQ(p.at(1).imm, 2);
    EXPECT_EQ(p.at(3).op, Opcode::kJalr);
    EXPECT_EQ(p.at(4).rd, kRegRa); // call writes ra
    EXPECT_EQ(p.at(5).op, Opcode::kJalr);
    EXPECT_EQ(p.at(5).rs1, kRegRa);
    EXPECT_EQ(p.at(6).op, Opcode::kLi);
    EXPECT_EQ(p.at(6).imm, 3); // address of skip
    EXPECT_EQ(p.at(7).op, Opcode::kBeq);
    EXPECT_EQ(p.at(8).op, Opcode::kBne);
    EXPECT_EQ(p.at(9).op, Opcode::kSltiu);
    EXPECT_EQ(p.at(10).op, Opcode::kSltu);
}

TEST(Assembler, EntryDirective)
{
    const Program p = assemble(R"(
    .entry main
    nop
main:
    halt
)");
    EXPECT_EQ(p.entry(), 1u);
}

TEST(Assembler, MultipleLabelsSameLine)
{
    const Program p = assemble(R"(
a: b:   halt
)");
    EXPECT_EQ(p.symbol("a"), 0u);
    EXPECT_EQ(p.symbol("b"), 0u);
}

TEST(Assembler, NegativeAndHexImmediates)
{
    const Program p = assemble(R"(
    li   a0, -42
    li   a1, 0xdeadBEEF
    addi a2, a2, -0x10
    halt
)");
    EXPECT_EQ(p.at(0).imm, -42);
    EXPECT_EQ(p.at(1).imm, 0xdeadbeef);
    EXPECT_EQ(p.at(2).imm, -16);
}

TEST(Assembler, MemOperandForms)
{
    const Program p = assemble(R"(
    ld  a0, 8(sp)
    ld  a1, (sp)
    sb  a2, -1(t0)
    halt
)");
    EXPECT_EQ(p.at(0).imm, 8);
    EXPECT_EQ(p.at(1).imm, 0);
    EXPECT_EQ(p.at(2).imm, -1);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus a0, a1\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("add a0, a1\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("j nowhere\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("dup:\ndup:\nhalt\n"), FatalError);
    EXPECT_THROW(assemble(".quad 1\nhalt\n"), FatalError); // not .data
    EXPECT_THROW(assemble(".data\n.align 3\n.text\nhalt\n"),
                 FatalError); // non power of two
    EXPECT_THROW(assemble(""), FatalError); // empty program
    EXPECT_THROW(assemble("ld a0, a1\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("li a0\nhalt\n"), FatalError);
}

TEST(Assembler, ErrorsIncludeLineNumbers)
{
    try {
        assemble("nop\nnop\nbogus\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Assembler, AssembledProgramRuns)
{
    // End-to-end: fibonacci via the functional CPU.
    const Program p = assemble(R"(
    li   a0, 10
    li   t0, 0
    li   t1, 1
fib:
    add  t2, t0, t1
    mv   t0, t1
    mv   t1, t2
    addi a0, a0, -1
    bnez a0, fib
    mv   a7, t0
    halt
)");
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.reg(17), 55u); // fib(10)
}

} // namespace
} // namespace spt
