# Runs CMD (a ;-separated command line) and fails unless it exits
# with exactly EXPECT. CTest's WILL_FAIL only checks "nonzero", but
# the tools' exit convention distinguishes 1 (the check failed) from
# 2 (usage error) from 70 (internal bug) — see src/common/cli.h —
# and the negative-path CLI gates must pin the exact code.
#
# Usage: cmake -DCMD=<bin;arg;...> -DEXPECT=<code> -P check_exit_code.cmake

if(NOT DEFINED CMD OR NOT DEFINED EXPECT)
    message(FATAL_ERROR
        "usage: cmake -DCMD=<bin;arg;...> -DEXPECT=<code> "
        "-P check_exit_code.cmake")
endif()

execute_process(COMMAND ${CMD}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

if(NOT rc EQUAL EXPECT)
    message(FATAL_ERROR
        "expected exit ${EXPECT}, got '${rc}'\n"
        "command: ${CMD}\nstdout:\n${out}\nstderr:\n${err}")
endif()
