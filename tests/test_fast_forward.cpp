/**
 * @file
 * Fast-forward and bitplane-storage equivalence (the PR-6 throughput
 * levers must be invisible in every simulated number):
 *
 *  - CoreParams::fast_forward on vs. off over the whole golden
 *    workload suite: identical SimResult and identical counters and
 *    histograms across every StatSet (core, engine, memory, bpu) —
 *    the only permitted difference is the ff.* skip telemetry
 *    itself.
 *  - SptConfig::Storage kBitplane vs. kLegacy over the same suite:
 *    fully identical, untaint.* included.
 *  - The skip machinery genuinely fires somewhere in the suite
 *    (otherwise the equivalence above would be vacuous).
 *  - Fast-forward equivalence for the non-SPT engines (unsafe /
 *    secure baseline / STT), whose blocked-transmit accruals take a
 *    different path.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "workloads/golden_suite.h"

namespace spt {
namespace {

using CounterMap = std::map<std::string, uint64_t>;

struct MachineNumbers {
    SimResult result;
    CounterMap core;   ///< ff.* stripped (see stripFf)
    CounterMap engine;
    CounterMap mem;
    CounterMap bpu;
    std::map<std::string, Histogram> engine_histograms;
    uint64_t ff_skipped = 0;
    uint64_t ff_windows = 0;
};

/** The ff.* counters are telemetry about the *skipping itself* and
 *  by construction exist only in fast-forwarding runs; every other
 *  number must be bit-identical. */
CounterMap
stripFf(const StatSet &s, uint64_t *skipped = nullptr,
        uint64_t *windows = nullptr)
{
    CounterMap out;
    for (const auto &[name, value] : s.counters()) {
        if (name.rfind("ff.", 0) == 0) {
            if (skipped && name == "ff.skipped_cycles")
                *skipped = value;
            if (windows && name == "ff.windows")
                *windows = value;
            continue;
        }
        out[name] = value;
    }
    return out;
}

MachineNumbers
runMachine(const Program &program, const SimConfig &cfg)
{
    Simulator sim(program, cfg);
    MachineNumbers n;
    n.result = sim.run();
    Core &core = sim.core();
    n.core = stripFf(core.stats(), &n.ff_skipped, &n.ff_windows);
    n.engine = core.engine().stats().counters();
    n.engine_histograms = core.engine().stats().histograms();
    n.mem = core.memorySystem().stats().counters();
    n.bpu = core.bpu().stats().counters();
    return n;
}

void
expectIdentical(const MachineNumbers &a, const MachineNumbers &b,
                const std::string &what)
{
    EXPECT_EQ(a.result.cycles, b.result.cycles) << what;
    EXPECT_EQ(a.result.instructions, b.result.instructions) << what;
    EXPECT_EQ(a.result.halted, b.result.halted) << what;
    EXPECT_EQ(a.result.termination, b.result.termination) << what;
    EXPECT_EQ(a.core, b.core) << what;
    EXPECT_EQ(a.engine, b.engine) << what;
    EXPECT_EQ(a.mem, b.mem) << what;
    EXPECT_EQ(a.bpu, b.bpu) << what;
    ASSERT_EQ(a.engine_histograms.size(), b.engine_histograms.size())
        << what;
    auto ita = a.engine_histograms.begin();
    auto itb = b.engine_histograms.begin();
    for (; ita != a.engine_histograms.end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first) << what;
        ASSERT_EQ(ita->second.numBuckets(), itb->second.numBuckets())
            << what << " " << ita->first;
        EXPECT_EQ(ita->second.samples(), itb->second.samples())
            << what << " " << ita->first;
        for (size_t i = 0; i < ita->second.numBuckets(); ++i)
            EXPECT_EQ(ita->second.bucket(i), itb->second.bucket(i))
                << what << " " << ita->first << " bucket " << i;
    }
}

SimConfig
sptConfig(const GoldenCase &c)
{
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.engine.spt.method = UntaintMethod::kBackward;
    cfg.engine.spt.shadow = ShadowKind::kShadowL1;
    cfg.core.attack_model = c.model;
    return cfg;
}

class FastForwardGoldenTest : public testing::TestWithParam<size_t>
{
};

TEST_P(FastForwardGoldenTest, SkippingAndStorageAreInvisible)
{
    const GoldenCase &c = goldenSuite().at(GetParam());

    SimConfig base_cfg = sptConfig(c);
    const MachineNumbers base = runMachine(c.program, base_cfg);
    EXPECT_TRUE(base.result.halted) << c.name;
    EXPECT_EQ(base.ff_skipped, 0u) << c.name;

    // Lever 1: fast-forward on — identical numbers, only ff.*
    // telemetry may (and should, somewhere in the suite) appear.
    SimConfig ff_cfg = base_cfg;
    ff_cfg.core.fast_forward = true;
    const MachineNumbers ff = runMachine(c.program, ff_cfg);
    expectIdentical(base, ff, c.name + "/fast-forward");

    // Lever 2: legacy byte-vector taint storage — fully identical,
    // untaint.* and shadow behavior included.
    SimConfig legacy_cfg = base_cfg;
    legacy_cfg.engine.spt.storage = SptConfig::Storage::kLegacy;
    const MachineNumbers legacy = runMachine(c.program, legacy_cfg);
    expectIdentical(base, legacy, c.name + "/legacy-storage");
}

std::string
caseName(const testing::TestParamInfo<size_t> &info)
{
    std::string n = goldenSuite().at(info.param).name;
    for (char &ch : n)
        if (ch == '/' || ch == '-')
            ch = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    All, FastForwardGoldenTest,
    testing::Range<size_t>(0, goldenSuite().size()), caseName);

TEST(FastForward, ActuallySkipsCyclesSomewhere)
{
    uint64_t skipped = 0, windows = 0;
    for (const GoldenCase &c : goldenSuite()) {
        SimConfig cfg = sptConfig(c);
        cfg.core.fast_forward = true;
        const MachineNumbers n = runMachine(c.program, cfg);
        skipped += n.ff_skipped;
        windows += n.ff_windows;
        if (skipped > 0)
            break; // evidence found; no need to run the rest
    }
    EXPECT_GT(skipped, 0u)
        << "fast-forward never skipped a cycle across the golden "
           "suite — the equivalence tests are vacuous";
    EXPECT_GT(windows, 0u);
}

TEST(FastForward, EquivalentForNonSptEngines)
{
    const GoldenCase &c = goldenSuite().at(0);
    for (ProtectionScheme scheme :
         {ProtectionScheme::kUnsafeBaseline,
          ProtectionScheme::kSecureBaseline, ProtectionScheme::kStt}) {
        SimConfig cfg;
        cfg.engine.scheme = scheme;
        cfg.core.attack_model = c.model;
        const MachineNumbers base = runMachine(c.program, cfg);
        SimConfig ff_cfg = cfg;
        ff_cfg.core.fast_forward = true;
        const MachineNumbers ff = runMachine(c.program, ff_cfg);
        expectIdentical(base, ff,
                        std::string("scheme ") +
                            std::to_string(static_cast<int>(scheme)));
    }
}

// Fast-forward models only the unmutated policy: the chaos-mode gate
// mutations must disable it (pinned here so a future mutation does
// not silently fast-forward into wrong numbers).
TEST(FastForward, RefusedUnderPolicyMutations)
{
    const GoldenCase &c = goldenSuite().at(0);
    SimConfig cfg = sptConfig(c);
    cfg.core.fast_forward = true;
    cfg.engine.spt.mutation = SptConfig::Mutation::kLeakyMemGate;
    const MachineNumbers n = runMachine(c.program, cfg);
    EXPECT_EQ(n.ff_skipped, 0u);
    EXPECT_EQ(n.ff_windows, 0u);
}

} // namespace
} // namespace spt
