/**
 * @file
 * Differential soundness harness (static vs dynamic): fuzzes
 * programs, runs the static knowledge-propagation pass, then
 * executes each program on the out-of-order core under an
 * ideal-untaint `SptEngine` and checks every static claim at commit.
 * A kRobust claim the dynamic engine denies is a soundness bug in
 * one of the two sides and fails the test; kWindowed denials are
 * only a precision/timing metric and are reported, not asserted.
 */

#include <iostream>

#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/differential.h"
#include "analysis/knowledge_analysis.h"
#include "isa/program_fuzzer.h"

namespace spt {
namespace {

struct Totals {
    uint64_t programs = 0;
    uint64_t robust_checked = 0;
    uint64_t windowed_checked = 0;
    uint64_t windowed_denied = 0;
};

void
runSeeds(uint64_t first_seed, unsigned count,
         const FuzzConfig &fuzz, AttackModel model, Totals &totals)
{
    // The whole campaign runs on the parallel sweep runner
    // (config.jobs = 0: SPT_JOBS env, then hardware concurrency);
    // per-program results are slot-indexed by seed, so the
    // assertions below see identical data for any worker count.
    DifferentialConfig config;
    config.attack_model = model;
    const DifferentialSweepResult sweep =
        runDifferentialSweep(first_seed, count, fuzz, config);

    ASSERT_EQ(sweep.per_program.size(), count);
    for (unsigned i = 0; i < count; ++i) {
        const DifferentialResult &res = sweep.per_program[i];
        const uint64_t seed = first_seed + i;
        EXPECT_TRUE(res.halted) << "seed " << seed;
        EXPECT_EQ(res.robust_denied, 0u)
            << "seed " << seed << " model "
            << (model == AttackModel::kSpectre ? "spectre"
                                               : "futuristic")
            << "\n"
            << [&] {
                   std::string joined;
                   for (const std::string &line : res.log)
                       joined += line + "\n";
                   return joined;
               }();
    }

    totals.programs += sweep.programs;
    totals.robust_checked += sweep.robust_checked;
    totals.windowed_checked += sweep.windowed_checked;
    totals.windowed_denied += sweep.windowed_denied;
}

void
report(const char *name, const Totals &totals)
{
    // The static pass must actually claim something, or the
    // "0 denials" result would be vacuous.
    EXPECT_GT(totals.robust_checked, 0u);
    const double rate =
        totals.windowed_checked == 0
            ? 0.0
            : static_cast<double>(totals.windowed_denied) /
                  static_cast<double>(totals.windowed_checked);
    std::cout << "[differential] " << name << ": "
              << totals.programs << " programs, "
              << totals.robust_checked
              << " robust claims (0 denied), "
              << totals.windowed_checked
              << " windowed claims, denial rate " << rate << "\n";
}

// 120 seeds x 2 attack models = 240 fuzzed programs, exceeding the
// 200-program acceptance floor, with a compact FuzzConfig so the
// whole sweep stays inside tier-1 time budgets.
constexpr FuzzConfig kSmall{
    /*num_blocks=*/8,
    /*block_len=*/6,
    /*loop_iterations=*/8,
};

TEST(StaticDifferential, SpectreModelRobustClaimsNeverDenied)
{
    Totals totals;
    runSeeds(1, 120, kSmall, AttackModel::kSpectre, totals);
    report("spectre", totals);
}

TEST(StaticDifferential, FuturisticModelRobustClaimsNeverDenied)
{
    Totals totals;
    runSeeds(1, 120, kSmall, AttackModel::kFuturistic, totals);
    report("futuristic", totals);
}

// ---------------------------------------------------------------
// Knowledge-map soundness gate (DESIGN.md §13): every map-driven
// pre-declassification is checked three ways per fuzzed program —
// map facts against the unrelaxed ideal engine at commit (hard
// denial), relaxed-vs-vanilla architectural equality, and the
// relaxed engine's own security gates (which run inside SptEngine
// regardless). 128 seeds x 2 models = 256 programs.
// ---------------------------------------------------------------

void
runMapSeeds(uint64_t first_seed, unsigned count, AttackModel model,
            MapDifferentialSweepResult &out)
{
    MapDifferentialConfig config;
    config.attack_model = model;
    const MapDifferentialSweepResult sweep =
        runMapDifferentialSweep(first_seed, count, kSmall, config);
    ASSERT_EQ(sweep.per_program.size(), count);
    for (unsigned i = 0; i < count; ++i) {
        const MapDifferentialResult &res = sweep.per_program[i];
        const uint64_t seed = first_seed + i;
        EXPECT_TRUE(res.halted) << "seed " << seed;
        EXPECT_EQ(res.robust_denied, 0u)
            << "seed " << seed << "\n"
            << [&] {
                   std::string joined;
                   for (const std::string &line : res.log)
                       joined += line + "\n";
                   return joined;
               }();
        EXPECT_FALSE(res.arch_divergence) << "seed " << seed;
    }
    out = sweep;
}

TEST(StaticDifferential, MapPreclearNeverDeniedSpectre)
{
    MapDifferentialSweepResult sweep;
    runMapSeeds(1, 128, AttackModel::kSpectre, sweep);
    EXPECT_EQ(sweep.robust_denied, 0u);
    EXPECT_EQ(sweep.arch_divergences, 0u);
    EXPECT_EQ(sweep.unhalted, 0u);
    EXPECT_GT(sweep.robust_checked, 0u) << "gate is vacuous";
    EXPECT_GT(sweep.map_facts, 0u);
    EXPECT_GT(sweep.precleared_ops, 0u)
        << "relaxation never fired — gate is vacuous";
    std::cout << "[map-differential] spectre: " << sweep.programs
              << " programs, " << sweep.map_facts << " facts, "
              << sweep.robust_checked << " checked (0 denied), "
              << sweep.precleared_ops << " ops precleared\n";
}

TEST(StaticDifferential, MapPreclearNeverDeniedFuturistic)
{
    MapDifferentialSweepResult sweep;
    runMapSeeds(1, 128, AttackModel::kFuturistic, sweep);
    EXPECT_EQ(sweep.robust_denied, 0u);
    EXPECT_EQ(sweep.arch_divergences, 0u);
    EXPECT_EQ(sweep.unhalted, 0u);
    EXPECT_GT(sweep.robust_checked, 0u) << "gate is vacuous";
    EXPECT_GT(sweep.precleared_ops, 0u)
        << "relaxation never fired — gate is vacuous";
    std::cout << "[map-differential] futuristic: " << sweep.programs
              << " programs, " << sweep.map_facts << " facts, "
              << sweep.robust_checked << " checked (0 denied), "
              << sweep.precleared_ops << " ops precleared\n";
}

TEST(StaticDifferential, DefaultFuzzConfigSpotChecks)
{
    // A few full-size programs (more blocks, branchier, longer
    // loops) at both models to cover shapes the compact config
    // cannot generate.
    for (const AttackModel model :
         {AttackModel::kSpectre, AttackModel::kFuturistic}) {
        Totals totals;
        runSeeds(1000, 8, FuzzConfig{}, model, totals);
        report(model == AttackModel::kSpectre
                   ? "spectre/default"
                   : "futuristic/default",
               totals);
    }
}

} // namespace
} // namespace spt
