/**
 * @file
 * White-box tests of the SPT engine: rename-time taint rules, VP
 * declassification, forward/backward propagation through real
 * pipeline runs, broadcast-width limiting, shadow-L1 interaction,
 * store-commit taint writes, and the taint-monotonicity invariant.
 */

#include <gtest/gtest.h>

#include "core/engine_factory.h"
#include "core/spt_engine.h"
#include "isa/assembler.h"
#include "uarch/core.h"

namespace spt {
namespace {

struct Rig {
    std::unique_ptr<Core> core;
    SptEngine *engine;
};

Rig
makeRig(const Program &p, SptConfig cfg = SptConfig{},
        AttackModel model = AttackModel::kFuturistic)
{
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSpt;
    ec.spt = cfg;
    CoreParams cp;
    cp.attack_model = model;
    cp.perfect_icache = true;
    Rig rig;
    rig.core = std::make_unique<Core>(p, cp, MemorySystemParams{},
                                      makeEngine(ec));
    rig.engine = &dynamic_cast<SptEngine &>(rig.core->engine());
    return rig;
}

TEST(SptEngine, ArchitecturalRegistersStartTainted)
{
    const Program p = assemble("halt\n");
    Rig rig = makeRig(p);
    // x0's physical register is public, x1..x31 start tainted.
    EXPECT_TRUE(rig.engine->masterTaint(0).nothing());
    for (PhysReg r = 1; r < kNumArchRegs; ++r)
        EXPECT_TRUE(rig.engine->masterTaint(r).full()) << r;
}

TEST(SptEngine, RenameRules)
{
    // li produces a public value; an add of public values is
    // public; a load's output is tainted at rename; an op with a
    // tainted input is tainted.
    const Program p = assemble(R"(
    li   t0, 0x100000
    li   t1, 7
    add  t2, t0, t1
    ld   t3, 0(t0)
    add  t4, t3, t1
    halt
)");
    Rig rig = makeRig(p);
    // Tick until everything is renamed, before much retires: use a
    // long icache stall knowledge — simpler: tick and inspect once
    // the rob holds pc 4.
    DynInstPtr li0, add2, ld3, add4;
    for (int c = 0; c < 2000 && !add4; ++c) {
        rig.core->tick();
        for (const DynInstPtr &d : rig.core->rob()) {
            if (d->pc == 0) li0 = d;
            if (d->pc == 2) add2 = d;
            if (d->pc == 3) ld3 = d;
            if (d->pc == 4) add4 = d;
        }
    }
    ASSERT_TRUE(add4);
    // Inspect rename-time taint via the engine's side table (the
    // instructions may have progressed, but taint is monotone and
    // the loads' data is slow, so the interesting ones are stable).
    const auto *t_add2 = rig.engine->instTaint(add2->seq);
    const auto *t_ld3 = rig.engine->instTaint(ld3->seq);
    const auto *t_add4 = rig.engine->instTaint(add4->seq);
    if (t_add2) {
        EXPECT_TRUE(t_add2->dest.nothing());
    }
    if (t_ld3 && !t_ld3->load_data_seen) {
        EXPECT_TRUE(t_ld3->dest.full());
    }
    if (t_add4 && t_add4->src[0].any()) {
        EXPECT_TRUE(t_add4->dest.any());
    }
}

TEST(SptEngine, UntaintEventsAreCounted)
{
    // A tainted pointer chain forces declassification + backward +
    // forward events under the futuristic model.
    const Program p = assemble(R"(
    .data
boxes:
    .quad 0x100010
    .quad 0x100020
    .quad 7
    .text
    li   t0, 0x100000
    li   s5, 0x900000
    ld   s6, 0(s5)      # independent cold miss keeps the VP back
    li   s7, 3
    div  s6, s6, s7
    div  s6, s6, s7
    div  s6, s6, s7
    div  s6, s6, s7
    ld   t1, 0(t0)      # tainted pointer
    ld   t2, 0(t1)      # dependent load: operand ready before VP
    ld   t3, 0(t2)
    add  a7, t3, t3
    halt
)");
    Rig rig = makeRig(p);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    EXPECT_TRUE(rig.core->halted());
    const StatSet &stats = rig.core->engine().stats();
    EXPECT_GT(stats.get("untaint.vp_declassify"), 0u);
    EXPECT_GT(stats.get("untaint.events"), 0u);
    // The delayed pointer loads must actually have been delayed.
    EXPECT_GT(rig.core->stats().get("lsu.load_policy_delay_cycles"),
              0u);
}

TEST(SptEngine, BroadcastIntersectsPartialOverlap)
{
    // Regression: applyBroadcast used to drop any broadcast whose
    // mask was not a subset of the master copy. With the slot flag
    // already cleared by the broadcast phase, the overlapping part
    // of the untaint was lost forever. The correct merge is an
    // intersection (both masks are sound over-approximations).
    const Program p = assemble("halt\n");
    Rig rig = makeRig(p);
    const PhysReg reg = 5;
    ASSERT_TRUE(rig.engine->masterTaint(reg).full());
    // Bytes 0-1 public elsewhere: groups 2,3 clear -> master 0b0011.
    rig.engine->injectBroadcast(reg, TaintMask::fromByteMask(0x03));
    EXPECT_EQ(rig.engine->masterTaint(reg).raw(), 0b0011);
    // Second broadcast 0b0110 is NOT a subset of 0b0011; the old
    // code returned early and left the master at 0b0011.
    rig.engine->injectBroadcast(reg, TaintMask::fromByteMask(0x06));
    EXPECT_EQ(rig.engine->masterTaint(reg).raw(), 0b0010);
}

TEST(SptEngine, DuplicateSlotsMergeIntoOneBroadcast)
{
    // Two loads off the same tainted base register reach the VP in
    // the same cycle under the Spectre model, so two source slots
    // raise flags for one physical register. Regression: the second
    // slot must merge into the first slot's broadcast instead of
    // consuming another of the `broadcast_width` slots.
    const Program p = assemble(R"(
    ld   s1, 0(s0)
    ld   s2, 8(s0)
    halt
)");
    Rig rig = makeRig(p, SptConfig{}, AttackModel::kSpectre);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    ASSERT_TRUE(rig.core->halted());
    const StatSet &stats = rig.core->engine().stats();
    EXPECT_EQ(stats.get("untaint.vp_declassify"), 2u);
    EXPECT_EQ(stats.get("untaint.broadcasts"), 1u);
    // s0 = x8 maps to phys 8 initially and is never rewritten; the
    // merged broadcast must have cleared its master taint.
    EXPECT_TRUE(rig.engine->masterTaint(8).nothing());
}

TEST(SptEngine, ShadowL1RemembersDeclassifiedData)
{
    // Two passes over the same pointer cell. In pass 1 the loaded
    // pointer feeds a second load's address, so when that load
    // reaches the VP the pointer is declassified backward and the
    // retroactive shadow rule clears the cell's memory taint. Pass
    // 2 then reads untainted data.
    const Program p = assemble(R"(
    .data
cell:
    .quad 0x100010
    .quad 0
    .quad 42
    .text
    li   s0, 2
    li   t0, 0x100000
pass:
    ld   t1, 0(t0)      # tainted pointer
    ld   t2, 0(t1)      # transmitter: declassifies t1 at its VP
    add  a7, a7, t2
    addi s0, s0, -1
    bnez s0, pass
    halt
)");
    SptConfig cfg;
    cfg.shadow = ShadowKind::kShadowL1;
    Rig rig = makeRig(p, cfg);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    const StatSet &stats = rig.core->engine().stats();
    EXPECT_GT(stats.get("shadow.load_clears"), 0u);

    // The same program with no shadow must produce zero shadow
    // events.
    cfg.shadow = ShadowKind::kNone;
    Rig rig2 = makeRig(p, cfg);
    while (!rig2.core->halted() && rig2.core->cycle() < 100'000)
        rig2.core->tick();
    EXPECT_EQ(rig2.core->engine().stats().get("shadow.load_clears"),
              0u);
    EXPECT_EQ(rig2.core->engine().stats().get(
                  "untaint.shadow_data"),
              0u);
}

TEST(SptEngine, StoreCommitWritesDataTaint)
{
    // A public value stored to memory untaints those bytes; a later
    // load (after the store has drained to the L1D, so no
    // store-to-load forwarding) reads untainted bytes and produces a
    // shadow_data untaint event.
    const Program p = assemble(R"(
    li   t0, 0x200000
    li   t1, 1234       # public data
    sd   t1, 0(t0)
    li   s0, 40         # filler loop lets the store drain
spin:
    addi s0, s0, -1
    bnez s0, spin
    ld   t2, 0(t0)      # reads back untainted bytes from the L1D
    ld   t3, 8(t0)      # same line, never stored: stays tainted
    add  a7, t2, t3
    halt
)");
    SptConfig cfg;
    cfg.shadow = ShadowKind::kShadowL1;
    Rig rig = makeRig(p, cfg);
    while (!rig.core->halted() && rig.core->cycle() < 100'000)
        rig.core->tick();
    EXPECT_GT(rig.core->engine().stats().get("untaint.shadow_data"),
              0u);
}

TEST(SptEngine, BroadcastWidthLimitsEventsPerCycle)
{
    // With ideal propagation many registers untaint per cycle; the
    // width-1 configuration must trickle them out more slowly but
    // reach the same end state (same committed instruction count).
    const Program wide = assemble(R"(
    .data
v:
    .quad 1, 2, 3, 4, 5, 6, 7, 8
    .text
    li   s0, 0x100000
    li   s1, 30
loop:
    ld   t0, 0(s0)
    ld   t1, 8(s0)
    ld   t2, 16(s0)
    ld   t3, 24(s0)
    add  t4, t0, t1
    add  t5, t2, t3
    add  t6, t4, t5
    sd   t6, 32(s0)
    addi s1, s1, -1
    bnez s1, loop
    mv   a7, t6
    halt
)");
    SptConfig w1;
    w1.broadcast_width = 1;
    Rig rig1 = makeRig(wide, w1);
    while (!rig1.core->halted() && rig1.core->cycle() < 200'000)
        rig1.core->tick();
    SptConfig w8;
    w8.broadcast_width = 8;
    Rig rig8 = makeRig(wide, w8);
    while (!rig8.core->halted() && rig8.core->cycle() < 200'000)
        rig8.core->tick();
    EXPECT_TRUE(rig1.core->halted());
    EXPECT_TRUE(rig8.core->halted());
    EXPECT_EQ(rig1.core->instructionsRetired(),
              rig8.core->instructionsRetired());
    // Wider broadcast can never be slower.
    EXPECT_GE(rig1.core->cycle(), rig8.core->cycle());
    EXPECT_EQ(rig1.core->archReg(17), rig8.core->archReg(17));
}

TEST(SptEngine, TaintIsMonotonePerInstruction)
{
    // Within one instruction's lifetime, taint can only go from
    // tainted to untainted (the convergence property of Section
    // 6.6).
    const Program p = assemble(R"(
    li   s0, 50
    li   s1, 0x100000
loop:
    ld   t0, 0(s1)
    add  t1, t0, s0
    ld   t2, 0(s1)
    add  a7, a7, t1
    addi s0, s0, -1
    bnez s0, loop
    halt
)");
    Rig rig = makeRig(p);
    std::map<SeqNum, uint8_t> last_dest_bits;
    while (!rig.core->halted() && rig.core->cycle() < 100'000) {
        rig.core->tick();
        for (const DynInstPtr &d : rig.core->rob()) {
            const auto *t = rig.engine->instTaint(d->seq);
            if (!t)
                continue;
            auto it = last_dest_bits.find(d->seq);
            if (it != last_dest_bits.end()) {
                // New mask must be a subset of the previous mask.
                EXPECT_EQ(t->dest.raw() & ~it->second, 0)
                    << "taint grew for seq " << d->seq;
            }
            last_dest_bits[d->seq] = t->dest.raw();
        }
    }
    EXPECT_TRUE(rig.core->halted());
}

TEST(SptEngine, IdealModeProducesNoFewerUntaints)
{
    const Program p = assemble(R"(
    li   s0, 40
    li   s1, 0x100000
loop:
    ld   t0, 0(s1)
    add  t1, t0, s0
    add  t2, t1, s0
    sd   t2, 8(s1)
    addi s0, s0, -1
    bnez s0, loop
    mv   a7, t2
    halt
)");
    SptConfig real;
    real.method = UntaintMethod::kBackward;
    real.shadow = ShadowKind::kShadowMem;
    Rig r1 = makeRig(p, real);
    while (!r1.core->halted() && r1.core->cycle() < 200'000)
        r1.core->tick();
    SptConfig ideal;
    ideal.method = UntaintMethod::kIdeal;
    ideal.shadow = ShadowKind::kShadowMem;
    Rig r2 = makeRig(p, ideal);
    while (!r2.core->halted() && r2.core->cycle() < 200'000)
        r2.core->tick();
    EXPECT_LE(r2.core->cycle(), r1.core->cycle());
}

} // namespace
} // namespace spt
