/**
 * @file
 * Observability subsystem (sim/trace.h, sim/profile.h): golden-trace
 * byte stability, zero perturbation when observers are off,
 * delay-cause conservation against the engine's own counters, trace
 * checker diagnostics, and interval-metrics structure.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/exp_runner.h"
#include "sim/simulator.h"
#include "workloads/attack_programs.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

struct TracedRun {
    std::string text;
    std::string pipeview;
    SimResult result;
    std::map<std::string, uint64_t> engine_counters;
};

TracedRun
runTraced(const Program &program, const SimConfig &cfg)
{
    Simulator sim(program, cfg);
    std::ostringstream text, pipeview;
    sim.enableTrace(&text, &pipeview);
    TracedRun out;
    out.result = sim.run();
    out.text = text.str();
    out.pipeview = pipeview.str();
    out.engine_counters = sim.core().engine().stats().counters();
    return out;
}

SimConfig
sptConfig()
{
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.engine.spt.method = UntaintMethod::kBackward;
    cfg.engine.spt.shadow = ShadowKind::kShadowL1;
    cfg.core.attack_model = AttackModel::kFuturistic;
    return cfg;
}

TEST(Trace, GoldenByteStableAcrossRuns)
{
    // pchase: tainted pointer loads delay, reach the VP, declassify
    // and shadow-untaint — all taint-lifecycle event kinds appear
    // (ct-chacha20 would be vacuous here: constant-time kernels
    // produce no untaint events at all, see the golden baseline).
    const Program program = makePointerChase(256, 1);
    const SimConfig cfg = sptConfig();
    const TracedRun a = runTraced(program, cfg);
    const TracedRun b = runTraced(program, cfg);
    EXPECT_TRUE(a.result.halted);
    EXPECT_FALSE(a.text.empty());
    EXPECT_FALSE(a.pipeview.empty());
    // Byte-for-byte: the trace is a pure function of the simulated
    // machine (no host time, no pointer values).
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.pipeview, b.pipeview);

    // A real trace must contain the taint lifecycle, not just the
    // pipeline skeleton.
    EXPECT_NE(a.text.find(" taint "), std::string::npos);
    EXPECT_NE(a.text.find(" untaint "), std::string::npos);
    EXPECT_NE(a.text.find(" retire "), std::string::npos);
    EXPECT_NE(a.pipeview.find("O3PipeView:fetch:"),
              std::string::npos);
    EXPECT_NE(a.pipeview.find("O3PipeView:retire:"),
              std::string::npos);

    // And it must satisfy its own consistency checker.
    std::istringstream in(a.text);
    std::string error;
    EXPECT_TRUE(validateTraceText(in, &error)) << error;
}

TEST(Trace, ObserversDoNotPerturbTheMachine)
{
    const Program program = makeChaCha20(2);
    SimConfig plain = sptConfig();

    Simulator bare(program, plain);
    const SimResult bare_result = bare.run();
    const auto bare_counters =
        bare.core().engine().stats().counters();

    SimConfig observed = sptConfig();
    observed.profile = true;
    observed.interval_stats = 500;
    const TracedRun traced = runTraced(program, observed);

    // Every observer on at once must leave the simulated machine
    // bit-identical: same cycles, same instructions, same engine
    // counters (delay.* and untaint.* included).
    EXPECT_EQ(traced.result.cycles, bare_result.cycles);
    EXPECT_EQ(traced.result.instructions, bare_result.instructions);
    EXPECT_EQ(traced.engine_counters, bare_counters);
}

TEST(Profile, DelayAttributionConservesEngineCounter)
{
    // Every scheme that delays transmitters, over workloads with
    // and without actual delays: the profiler's attributed total
    // must equal the engine's delay.total_cycles exactly (both are
    // fed from the same single call site per gate).
    const Program pchase = makePointerChase(256, 1);
    const Program chacha = makeChaCha20(2);
    const AttackProgram spectre = makeSpectreV1();

    std::vector<std::pair<const char *, ProtectionScheme>> schemes =
        {{"spt", ProtectionScheme::kSpt},
         {"secure-baseline", ProtectionScheme::kSecureBaseline},
         {"stt", ProtectionScheme::kStt}};
    uint64_t delayed_total = 0;
    for (const auto &[label, scheme] : schemes) {
        for (const Program *program :
             {&pchase, &chacha, &spectre.program}) {
            SimConfig cfg = sptConfig();
            cfg.engine.scheme = scheme;
            cfg.profile = true;
            Simulator sim(*program, cfg);
            sim.run();
            ASSERT_NE(sim.profiler(), nullptr);
            const uint64_t engine_total =
                sim.stat("engine.delay.total_cycles");
            EXPECT_EQ(sim.profiler()->totalCycles(), engine_total)
                << label;
            // Per-cause cycles must re-sum to the same total: no
            // cycle charged twice or dropped.
            uint64_t by_cause = 0;
            for (size_t c = 0;
                 c < static_cast<size_t>(DelayCause::kNumCauses);
                 ++c)
                by_cause += sim.profiler()->causeCycles(
                    static_cast<DelayCause>(c));
            EXPECT_EQ(by_cause, engine_total) << label;
            // And the per-PC map as well.
            uint64_t by_pc = 0;
            for (const auto &[pc, pd] : sim.profiler()->byPc())
                by_pc += pd.total;
            EXPECT_EQ(by_pc, engine_total) << label;
            delayed_total += engine_total;
        }
    }
    // The grid must exercise real delays somewhere or the equalities
    // above are vacuous.
    EXPECT_GT(delayed_total, 0u);
}

TEST(Profile, JsonAndTableAreDeterministic)
{
    const Program program = makePointerChase(256, 1);
    SimConfig cfg = sptConfig();
    cfg.profile = true;

    auto run_once = [&] {
        Simulator sim(program, cfg);
        sim.run();
        std::ostringstream table;
        sim.profiler()->writeTable(table);
        return std::make_pair(sim.profiler()->toJson(),
                              table.str());
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_NE(a.first.find("\"total_delay_cycles\""),
              std::string::npos);
    EXPECT_NE(a.second.find("top delay sources"),
              std::string::npos);
}

TEST(ExpRunnerObservability, ArtifactsIdenticalAcrossWorkerCounts)
{
    const Program pchase = makePointerChase(256, 1);
    const Program hashtab = makeHashTable(300, 300);

    std::vector<RunJob> grid;
    for (const Program *program : {&pchase, &hashtab}) {
        RunJob job;
        job.program = program;
        job.engine.scheme = ProtectionScheme::kSpt;
        job.engine.spt.method = UntaintMethod::kBackward;
        job.engine.spt.shadow = ShadowKind::kShadowL1;
        job.trace = true;
        job.profile = true;
        job.interval_stats = 1000;
        grid.push_back(job);
    }

    const std::vector<RunOutcome> a = ExpRunner(1).run(grid);
    const std::vector<RunOutcome> b = ExpRunner(4).run(grid);
    ASSERT_EQ(a.size(), grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_FALSE(a[i].trace_text.empty()) << "slot " << i;
        EXPECT_FALSE(a[i].trace_pipeview.empty()) << "slot " << i;
        EXPECT_FALSE(a[i].profile_json.empty()) << "slot " << i;
        EXPECT_FALSE(a[i].intervals_json.empty()) << "slot " << i;
        EXPECT_EQ(a[i].trace_text, b[i].trace_text) << "slot " << i;
        EXPECT_EQ(a[i].trace_pipeview, b[i].trace_pipeview)
            << "slot " << i;
        EXPECT_EQ(a[i].profile_json, b[i].profile_json)
            << "slot " << i;
        EXPECT_EQ(a[i].intervals_json, b[i].intervals_json)
            << "slot " << i;
    }

    // Observability flags are part of the memo key: a traced and an
    // untraced run of the same design point may not share a slot.
    RunJob untraced = grid[0];
    untraced.trace = false;
    untraced.profile = false;
    untraced.interval_stats = 0;
    EXPECT_NE(jobKey(grid[0]), jobKey(untraced));
}

TEST(TraceChecker, AcceptsWellFormedAndRejectsMalformed)
{
    auto check = [](const char *trace, std::string *error) {
        std::istringstream in(trace);
        return validateTraceText(in, error);
    };
    std::string error;

    EXPECT_TRUE(check("1 fetch seq=1 pc=0 nop\n"
                      "2 rename seq=1 pc=0\n"
                      "3 retire seq=1 pc=0\n",
                      &error))
        << error;

    // First event must be fetch.
    EXPECT_FALSE(check("2 rename seq=1 pc=0\n", &error));
    EXPECT_NE(error.find("not fetch"), std::string::npos) << error;

    // Per-seq cycles may not go backwards.
    EXPECT_FALSE(check("5 fetch seq=1 pc=0 nop\n"
                       "9 fetch seq=2 pc=1 nop\n"
                       "7 rename seq=1 pc=0\n",
                       &error));

    // Nothing after retire.
    EXPECT_FALSE(check("1 fetch seq=1 pc=0 nop\n"
                       "2 retire seq=1 pc=0\n"
                       "3 vp seq=1 pc=0\n",
                       &error));
    EXPECT_NE(error.find("after retire"), std::string::npos)
        << error;

    // delay-start needs a matching closer before retire...
    EXPECT_FALSE(check("1 fetch seq=1 pc=0 nop\n"
                       "2 delay-start seq=1 pc=0 kind=mem\n"
                       "3 retire seq=1 pc=0\n",
                       &error));
    EXPECT_NE(error.find("open delay"), std::string::npos) << error;

    // ...or by end of trace.
    EXPECT_FALSE(check("1 fetch seq=1 pc=0 nop\n"
                       "2 delay-start seq=1 pc=0 kind=mem\n",
                       &error));

    // A squash closes the interval.
    EXPECT_TRUE(check("1 fetch seq=1 pc=0 nop\n"
                      "2 delay-start seq=1 pc=0 kind=mem\n"
                      "3 delay-squash seq=1 pc=0 kind=mem cycles=1\n"
                      "3 squash seq=1 pc=0\n",
                      &error))
        << error;

    // No nested intervals.
    EXPECT_FALSE(check("1 fetch seq=1 pc=0 nop\n"
                       "2 delay-start seq=1 pc=0 kind=mem\n"
                       "3 delay-start seq=1 pc=0 kind=mem\n",
                       &error));
    EXPECT_NE(error.find("nested"), std::string::npos) << error;
}

TEST(IntervalStats, SamplesCoverTheRunExactly)
{
    const Program program = makeChaCha20(2);
    SimConfig cfg = sptConfig();
    cfg.interval_stats = 500;
    Simulator sim(program, cfg);
    const SimResult r = sim.run();
    ASSERT_NE(sim.intervals(), nullptr);
    const auto &samples = sim.intervals()->samples();
    ASSERT_FALSE(samples.empty());

    uint64_t instructions = 0, prev_cycle = 0;
    for (const auto &s : samples) {
        EXPECT_EQ(s.cycles, s.cycle - prev_cycle);
        // Every interval except the final partial one spans at
        // least the period.
        if (&s != &samples.back())
            EXPECT_GE(s.cycles, 500u);
        prev_cycle = s.cycle;
        instructions += s.instructions;
    }
    // The series tiles the run: ends at the final cycle and sums
    // to the retired-instruction total.
    EXPECT_EQ(samples.back().cycle, r.cycles);
    EXPECT_EQ(instructions, r.instructions);

    const std::string json = sim.intervals()->toJson();
    EXPECT_NE(json.find("\"period\": 500"), std::string::npos);
    EXPECT_NE(json.find("\"tainted_regs\""), std::string::npos);
}

} // namespace
} // namespace spt
