/**
 * @file
 * Tests for the static-analysis subsystem: CFG construction
 * (blocks, edges, dominators, loops, `ret` return-site edges),
 * knowledge propagation (robust vs windowed facts, merges), and the
 * golden secret-flow lint results over the bundled constant-time
 * kernels and Section 9.1 attack programs.
 */

#include <algorithm>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/knowledge_analysis.h"
#include "analysis/secret_flow.h"
#include "isa/assembler.h"
#include "workloads/attack_programs.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

Program
prog(const std::string &text)
{
    return assemble(text);
}

bool
hasEdge(const Cfg &cfg, uint64_t from_pc, uint64_t to_pc)
{
    const uint32_t from = cfg.blockOf(from_pc);
    const uint32_t to = cfg.blockOf(to_pc);
    const auto &succs = cfg.blocks()[from].succs;
    return std::find(succs.begin(), succs.end(), to) != succs.end();
}

// ---------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock)
{
    const Program p = prog(R"(
        .text
        li   t0, 1
        addi t0, t0, 2
        halt
    )");
    const Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 1u);
    const BasicBlock &b = cfg.blocks()[0];
    EXPECT_EQ(b.first, 0u);
    EXPECT_EQ(b.last, 2u);
    EXPECT_TRUE(b.succs.empty()); // halt has no successors
    EXPECT_TRUE(b.reachable);
    EXPECT_TRUE(cfg.loops().empty());
}

TEST(Cfg, DiamondEdgesAndDominators)
{
    //   B0 [0,1]  li / beq
    //   B1 [2,3]  then: li / jal join
    //   B2 [4,4]  else: li
    //   B3 [5,6]  join: add / halt
    const Program p = prog(R"(
        .text
        li   t0, 1
        beq  t0, x0, else
        li   a0, 1
        jal  x0, join
    else:
        li   a0, 2
    join:
        add  a1, a0, t0
        halt
    )");
    const Cfg cfg(p);
    ASSERT_EQ(cfg.blocks().size(), 4u);
    EXPECT_TRUE(hasEdge(cfg, 1, 2)); // fall-through
    EXPECT_TRUE(hasEdge(cfg, 1, 4)); // taken
    EXPECT_TRUE(hasEdge(cfg, 3, 5)); // jal target
    EXPECT_TRUE(hasEdge(cfg, 4, 5)); // fall-through into join

    const uint32_t b0 = cfg.blockOf(0);
    const uint32_t b1 = cfg.blockOf(2);
    const uint32_t b2 = cfg.blockOf(4);
    const uint32_t b3 = cfg.blockOf(5);
    EXPECT_EQ(cfg.entryBlock(), b0);
    // Entry dominates everything; neither arm dominates the join.
    EXPECT_TRUE(cfg.dominates(b0, b3));
    EXPECT_FALSE(cfg.dominates(b1, b3));
    EXPECT_FALSE(cfg.dominates(b2, b3));
    EXPECT_EQ(cfg.blocks()[b3].idom, b0);
    EXPECT_TRUE(cfg.loops().empty());
}

TEST(Cfg, NaturalLoopDetection)
{
    const Program p = prog(R"(
        .text
        li   t0, 4
    loop:
        addi t0, t0, -1
        bne  t0, x0, loop
        halt
    )");
    const Cfg cfg(p);
    ASSERT_EQ(cfg.loops().size(), 1u);
    const NaturalLoop &l = cfg.loops()[0];
    EXPECT_EQ(l.header, cfg.blockOf(1));
    EXPECT_EQ(l.back_edge_src, cfg.blockOf(2));
    EXPECT_EQ(l.body, std::vector<uint32_t>{cfg.blockOf(1)});
    EXPECT_TRUE(
        cfg.dominates(cfg.blockOf(1), cfg.blockOf(2)));
}

TEST(Cfg, RetEdgesTargetReturnSites)
{
    const Program p = prog(R"(
        .text
        jal  ra, fn
        li   a0, 1
        halt
    fn:
        li   a1, 2
        ret
    )");
    const Cfg cfg(p);
    EXPECT_TRUE(cfg.raDisciplined());
    // The ret must return to the instruction after the call, and
    // only there (not to every block leader).
    const uint32_t fn_blk = cfg.blockOf(4);
    const std::vector<uint32_t> expected{cfg.blockOf(1)};
    EXPECT_EQ(cfg.blocks()[fn_blk].succs, expected);
    EXPECT_TRUE(hasEdge(cfg, 0, 3)); // call edge
}

TEST(Cfg, AttackProgramsFullyReachable)
{
    for (const Program &p : {makeSpectreV1().program,
                             makeCtVictim().program}) {
        const Cfg cfg(p);
        for (const BasicBlock &b : cfg.blocks())
            EXPECT_TRUE(b.reachable)
                << "block at pc " << b.first;
    }
}

// ---------------------------------------------------------------
// Knowledge propagation
// ---------------------------------------------------------------

Knowledge
claimLevel(const KnowledgeAnalysis &ka, uint64_t pc, uint8_t slot)
{
    for (const SlotClaim &c : ka.claimsAt(pc))
        if (c.slot == slot)
            return c.level;
    return Knowledge::kUnknown;
}

TEST(KnowledgeAnalysis, ImmediateOutputsAreRobust)
{
    const Program p = prog(R"(
        .text
        li   t0, 5
        add  t1, t0, t0
        halt
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    EXPECT_EQ(claimLevel(ka, 1, 0), Knowledge::kRobust);
    EXPECT_EQ(claimLevel(ka, 1, 1), Knowledge::kRobust);
}

TEST(KnowledgeAnalysis, TransmitterDeclassifiesItsAddress)
{
    const Program p = prog(R"(
        .text
        ld   t1, 0(s0)
        add  t2, s0, x0
        halt
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    // At the load itself s0 is still unknown (claims use the state
    // before the instruction's own visibility point)...
    EXPECT_EQ(claimLevel(ka, 0, 0), Knowledge::kUnknown);
    // ...but every younger reader sees it robustly: the justifying
    // declassifier (the load's VP) is program-order older.
    EXPECT_EQ(claimLevel(ka, 1, 0), Knowledge::kRobust);
    EXPECT_EQ(claimLevel(ka, 1, 1), Knowledge::kRobust); // x0
    // The load's destination stays unknown: memory contents are
    // not modeled.
    const KnowledgeState *st = ka.inState(1);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->of(parseRegister("t1")), Knowledge::kUnknown);
}

TEST(KnowledgeAnalysis, BackwardInferenceIsOnlyWindowed)
{
    // t2 = t1 + t3 with t1 public; the load's VP declassifies t2,
    // and the backward ADD rule then makes t3 inferable — but the
    // declassifier (pc 2) is younger than t3's producer, so the
    // fact is windowed, never robust.
    const Program p = prog(R"(
        .text
        li   t1, 5
        add  t2, t1, t3
        ld   t4, 0(t2)
        add  t5, t3, x0
        halt
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    EXPECT_EQ(claimLevel(ka, 1, 1), Knowledge::kUnknown); // t3 yet
    EXPECT_EQ(claimLevel(ka, 3, 0), Knowledge::kWindowed);
    const auto robust = ka.allClaims(Knowledge::kRobust);
    for (const SlotClaim &c : robust)
        EXPECT_FALSE(c.pc == 3 && c.slot == 0)
            << "backward-derived fact must not be robust";
}

TEST(KnowledgeAnalysis, MergeKeepsOnlyAllPathFacts)
{
    // s0 is declassified on the fall-through path only; after the
    // join the fact must be gone (min over incoming paths).
    const Program p = prog(R"(
        .text
        li   t0, 1
        beq  t0, x0, skip
        ld   t1, 0(s0)
    skip:
        add  t2, s0, x0
        halt
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    EXPECT_EQ(claimLevel(ka, 3, 0), Knowledge::kUnknown);
    // The branch itself declassified t0 on both paths.
    const KnowledgeState *st = ka.inState(3);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->of(parseRegister("t0")), Knowledge::kRobust);
}

TEST(KnowledgeAnalysis, UnreachableCodeHasNoState)
{
    const Program p = prog(R"(
        .text
        halt
        li   t0, 1
        halt
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    EXPECT_NE(ka.inState(0), nullptr);
    EXPECT_EQ(ka.inState(1), nullptr);
    EXPECT_TRUE(ka.claimsAt(1).empty());
}

// ---------------------------------------------------------------
// DefRecord kill semantics (transfer function, unit level)
// ---------------------------------------------------------------

TEST(KnowledgeAnalysis, SelfReferentialDefIsNeverRecorded)
{
    // `xor t0, t0, t1` relates the *new* t0 to the *old* t0; keeping
    // a def record would let a later inference relate stale values.
    const Program p = prog(R"(
        .text
        xor  t0, t0, t1
        halt
    )");
    KnowledgeState st;
    KnowledgeAnalysis::transfer(p.at(0), 0, st);
    EXPECT_FALSE(st.def[parseRegister("t0")].valid);
}

TEST(KnowledgeAnalysis, NonSelfDefIsRecordedAndPinsItsSources)
{
    const Program p = prog(R"(
        .text
        xor  t0, t1, t2
        addi t1, t1, 1
        halt
    )");
    KnowledgeState st;
    const unsigned t0 = parseRegister("t0");
    KnowledgeAnalysis::transfer(p.at(0), 0, st);
    ASSERT_TRUE(st.def[t0].valid);
    EXPECT_EQ(st.def[t0].pc, 0u);
    // Redefining a source register kills the dependent record: the
    // backward rule xor would justify now relates a t1 that no
    // longer exists.
    KnowledgeAnalysis::transfer(p.at(1), 1, st);
    EXPECT_FALSE(st.def[t0].valid);
}

TEST(KnowledgeAnalysis, RedefiningTheDestKillsItsOwnRecord)
{
    const Program p = prog(R"(
        .text
        xor  t0, t1, t2
        ld   t0, 0(t3)
        halt
    )");
    KnowledgeState st;
    const unsigned t0 = parseRegister("t0");
    KnowledgeAnalysis::transfer(p.at(0), 0, st);
    ASSERT_TRUE(st.def[t0].valid);
    // Loads are not recordable (memory contents unmodeled), so the
    // overwrite must clear the slot rather than keep the xor record.
    KnowledgeAnalysis::transfer(p.at(1), 1, st);
    EXPECT_FALSE(st.def[t0].valid);
}

// ---------------------------------------------------------------
// CFG edge policy under the knowledge fixpoint
// ---------------------------------------------------------------

TEST(KnowledgeAnalysis, IndirectJumpMeetsFactsToUnknown)
{
    // A non-ret JALR edges to every block (conservative indirect
    // target set), so `join` sees both the fall-through state
    // (t2 robust) and the jr-block state (t2 undefined) — the meet
    // must drop the fact.
    const Program p = prog(R"(
        .text
        li   t0, 7
        beq  t0, x0, skip
        jr   t1
    skip:
        li   t2, 3
    join:
        add  t3, t2, t2
        halt
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    const uint64_t join_pc = 4; // add t3, t2, t2
    ASSERT_NE(ka.inState(join_pc), nullptr);
    EXPECT_EQ(claimLevel(ka, join_pc, 0), Knowledge::kUnknown);
    EXPECT_EQ(claimLevel(ka, join_pc, 1), Knowledge::kUnknown);
}

TEST(KnowledgeAnalysis, DisciplinedRetKeepsCallerFacts)
{
    // With the ra-disciplined CFG, `ret` edges only to the actual
    // return site, so facts established before the call survive the
    // callee (unlike the all-blocks fallback above).
    const Program p = prog(R"(
        .text
        li   t0, 9
        call fn
        add  t1, t0, t0
        halt
    fn:
        ret
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    const uint64_t reader_pc = 2; // add t1, t0, t0
    ASSERT_NE(ka.inState(reader_pc), nullptr);
    EXPECT_EQ(claimLevel(ka, reader_pc, 0), Knowledge::kRobust);
}

TEST(KnowledgeAnalysis, SelfLoopReachesAFixpoint)
{
    // A single-block loop whose body feeds itself: the descending
    // worklist must terminate (finite lattice, monotone transfer)
    // and the loop-carried register must settle at the meet of the
    // entry state and the back edge.
    const Program p = prog(R"(
        .text
        li   t0, 0
        li   t1, 4
    loop:
        addi t0, t0, 1
        bne  t0, t1, loop
        add  t2, t0, t0
        halt
    )");
    const Cfg cfg(p);
    const KnowledgeAnalysis ka(cfg);
    const uint64_t body_pc = 2; // addi t0, t0, 1
    ASSERT_NE(ka.inState(body_pc), nullptr);
    // t0 is robust on entry (li) and robust around the back edge
    // (addi of a robust value), so the fixpoint keeps it robust.
    EXPECT_EQ(claimLevel(ka, body_pc, 0), Knowledge::kRobust);
    // The branch's own operands are declassified by its VP, so the
    // post-loop reader sees robust facts as well.
    EXPECT_EQ(claimLevel(ka, 4, 0), Knowledge::kRobust);
}

// ---------------------------------------------------------------
// Secret-flow lint goldens
// ---------------------------------------------------------------

TEST(SecretFlowLint, ConstantTimeKernelsAreClean)
{
    for (const std::string &name : ctWorkloadNames()) {
        const Workload w = workloadByName(name);
        ASSERT_FALSE(w.program.secretRanges().empty())
            << name << " must carry a .secret annotation";
        const Cfg cfg(w.program);
        const SecretFlowLint lint(cfg);
        EXPECT_TRUE(lint.findings().empty())
            << name << ": "
            << (lint.findings().empty()
                    ? ""
                    : lint.findings().front().detail);
    }
}

TEST(SecretFlowLint, SpectreV1HasTransientTransmitterFinding)
{
    const Program p = makeSpectreV1().program;
    const Cfg cfg(p);
    const SecretFlowLint lint(cfg);
    ASSERT_FALSE(lint.findings().empty());
    bool found = false;
    for (const LintFinding &f : lint.findings()) {
        if (f.kind == LintKind::kSecretAddress &&
            f.transient_only && isLoad(f.si.op))
            found = true;
        // The bounds check keeps the gadget architecturally safe:
        // nothing in Spectre v1 leaks non-transiently.
        EXPECT_TRUE(f.transient_only)
            << "pc " << f.pc << ": " << f.detail;
    }
    EXPECT_TRUE(found);
}

TEST(SecretFlowLint, CtVictimHasArchitecturalGadgetFinding)
{
    const Program p = makeCtVictim().program;
    const Cfg cfg(p);
    const SecretFlowLint lint(cfg);
    ASSERT_FALSE(lint.findings().empty());
    // The BTB-trained gadget dereferences a secret-derived address;
    // the over-approximate JALR edges make it CFG-reachable, so the
    // finding is architectural (not transient-only).
    bool found = false;
    for (const LintFinding &f : lint.findings())
        if (f.kind == LintKind::kSecretAddress &&
            !f.transient_only && isLoad(f.si.op))
            found = true;
    EXPECT_TRUE(found);
}

TEST(SecretFlowLint, NoSecretRangesMeansNoFindings)
{
    // Same shape as a leak gadget, but nothing is marked secret.
    Program p = prog(R"(
        .text
        li   s1, 1048576
        ld   t0, 0(s1)
        add  t1, t0, s1
        lbu  t2, 0(t1)
        halt
    )");
    p.addData(0x100000, std::vector<uint8_t>(16, 7));
    const Cfg cfg(p);
    const SecretFlowLint lint(cfg);
    EXPECT_TRUE(lint.findings().empty());
}

TEST(SecretFlowLint, SpeculationWindowBoundsTransientFindings)
{
    // A Spectre-v1-shaped gadget placed ~30 instructions past the
    // mispredictable branch: within the default window the transient
    // leak is found; with a 4-instruction budget it is not.
    std::ostringstream os;
    os << R"(
        .text
        li   s1, 1048576
        li   t0, 1
        beq  t0, x0, done
    )";
    for (int i = 0; i < 30; ++i)
        os << "        nop\n";
    os << R"(
        add  t2, s1, a0
        lbu  t3, 0(t2)
        slli t4, t3, 3
        add  t4, t4, s1
        lbu  t5, 0(t4)
    done:
        halt
    )";
    Program p = prog(os.str());
    p.addData(0x100000, std::vector<uint8_t>(16, 0));
    p.addData(0x100100, {42});
    p.markSecret(0x100100, 1);
    const Cfg cfg(p);

    const SecretFlowLint wide(cfg, {100});
    ASSERT_EQ(wide.findings().size(), 1u);
    EXPECT_EQ(wide.findings()[0].kind, LintKind::kSecretAddress);
    EXPECT_TRUE(wide.findings()[0].transient_only);
    EXPECT_EQ(wide.findings()[0].si.op, Opcode::kLbu);

    const SecretFlowLint narrow(cfg, {4});
    EXPECT_TRUE(narrow.findings().empty());
}

} // namespace
} // namespace spt
