/**
 * @file
 * Fleet telemetry (DESIGN.md §15): metrics registry units, event-log
 * JSONL schema + span nesting, flight-recorder bounds, live progress,
 * metrics conservation against SweepStats and engine counters, the
 * daemon's metrics/status/unknown-batch protocol surface, and the
 * zero-perturbation guardrail — telemetry on vs off, --jobs 1 vs 4,
 * byte-identical outcomes.
 */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/event_log.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "sim/exp_runner.h"
#include "sim/progress.h"
#include "sim/result_cache.h"
#include "sim/sweep_service.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

// ====================================================================
// Metrics primitives
// ====================================================================

TEST(Metrics, CounterGaugeHistogramUnits)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("t.counter");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Find-or-create returns the same series.
    EXPECT_EQ(&reg.counter("t.counter"), &c);

    Gauge &g = reg.gauge("t.gauge");
    g.set(7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3); // signed: transient underflow is fine

    BoundedHistogram &h = reg.histogram("t.hist", {10, 100});
    h.record(5);    // bucket 0 (<=10)
    h.record(10);   // bucket 0 (inclusive upper bound)
    h.record(50);   // bucket 1 (<=100)
    h.record(1000); // +Inf overflow bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u); // +Inf
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 5u + 10u + 50u + 1000u);
    // Same name, same series; mismatched bounds are a bug.
    EXPECT_EQ(&reg.histogram("t.hist", {10, 100}), &h);
    EXPECT_THROW(reg.histogram("t.hist", {1, 2, 3}), PanicError);
}

TEST(Metrics, SnapshotJsonIsValidAndDeterministic)
{
    MetricsRegistry reg;
    reg.counter("b.count").inc(3);
    reg.counter("a.count").inc(1);
    reg.gauge("q.depth").set(2);
    reg.histogram("lat.ms", {1, 10}).record(4);

    const std::string json = reg.snapshot().toJson();
    // Identical series values => identical bytes.
    EXPECT_EQ(json, reg.snapshot().toJson());

    const JsonValue v = parseJson(json);
    EXPECT_EQ(v.at("counters").getU64("a.count", 0), 1u);
    EXPECT_EQ(v.at("counters").getU64("b.count", 0), 3u);
    EXPECT_EQ(v.at("gauges").getU64("q.depth", 0), 2u);
    const JsonValue &h = v.at("histograms").at("lat.ms");
    EXPECT_EQ(h.at("count").asU64(), 1u);
    EXPECT_EQ(h.at("sum").asU64(), 4u);
    EXPECT_EQ(h.at("buckets").asArray().size(), 3u); // 2 bounds + Inf
}

TEST(Metrics, PrometheusExposition)
{
    MetricsRegistry reg;
    reg.counter("svc.jobs.executed").inc(5);
    reg.gauge("svc.queue-depth").set(1);
    BoundedHistogram &h = reg.histogram("job.host_ms", {10, 100});
    h.record(7);
    h.record(50);
    h.record(5000);

    const std::string text = reg.snapshot().toPrometheus();
    // Names are mangled ('.'/'-' -> '_') and prefixed.
    EXPECT_NE(text.find("spt_svc_jobs_executed 5"),
              std::string::npos);
    EXPECT_NE(text.find("spt_svc_queue_depth 1"), std::string::npos);
    // Histogram buckets are cumulative and end at +Inf == count.
    EXPECT_NE(text.find("spt_job_host_ms_bucket{le=\"10\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("spt_job_host_ms_bucket{le=\"100\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("spt_job_host_ms_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("spt_job_host_ms_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE spt_job_host_ms histogram"),
              std::string::npos);
}

// ====================================================================
// Event log + flight recorder
// ====================================================================

TEST(EventLogTest, JsonlSchemaAndLevelFiltering)
{
    const std::string path = testing::TempDir() + "telemetry_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::filesystem::remove(path);
    {
        EventLog log;
        log.openFile(path);
        EXPECT_TRUE(log.enabled());
        log.emit(EventLevel::kInfo, "test", "hello",
                 EventFields()
                     .str("name", "quote\"backslash\\")
                     .num("n", uint64_t{42})
                     .real("x", 1.5, 3)
                     .boolean("flag", true),
                 "s1-1", "s1-0");
        // Below the default kInfo floor: flight recorder only.
        log.emit(EventLevel::kDebug, "test", "dropped",
                 EventFields());
        log.close();
        EXPECT_FALSE(log.enabled());
        // Both records are in the recorder regardless of the sink.
        EXPECT_EQ(log.recorder().dump("test").size(), 2u);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u); // the debug record was filtered

    const JsonValue rec = parseJson(lines[0]);
    EXPECT_GE(rec.at("ts").asDouble(), 0.0);
    EXPECT_EQ(rec.getString("lvl", ""), "info");
    EXPECT_EQ(rec.getString("sys", ""), "test");
    EXPECT_EQ(rec.getString("ev", ""), "hello");
    EXPECT_EQ(rec.getString("span", ""), "s1-1");
    EXPECT_EQ(rec.getString("parent", ""), "s1-0");
    // jsonQuoted escaping round-trips through the parser.
    EXPECT_EQ(rec.getString("name", ""), "quote\"backslash\\");
    EXPECT_EQ(rec.getU64("n", 0), 42u);
    EXPECT_DOUBLE_EQ(rec.at("x").asDouble(), 1.5);
    EXPECT_TRUE(rec.getBool("flag", false));
    std::filesystem::remove(path);
}

TEST(EventLogTest, MinLevelAdjustsFileSink)
{
    const std::string path = testing::TempDir() + "telemetry_lvl_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::filesystem::remove(path);
    EventLog log;
    log.openFile(path);
    log.setMinLevel(EventLevel::kWarn);
    log.emit(EventLevel::kInfo, "t", "filtered", EventFields());
    log.emit(EventLevel::kWarn, "t", "kept", EventFields());
    log.close();

    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(parseJson(line).getString("ev", ""), "kept");
    EXPECT_FALSE(std::getline(in, line));
    std::filesystem::remove(path);
}

TEST(EventLogTest, SpanIdsAreProcessUnique)
{
    const std::string a = EventLog::newSpanId();
    const std::string b = EventLog::newSpanId();
    EXPECT_NE(a, b);
    EXPECT_EQ(a.rfind('s', 0), 0u); // "s<pid>-<seq>"
    EXPECT_NE(a.find('-'), std::string::npos);
}

TEST(EventLogTest, ParseEventLevel)
{
    EXPECT_EQ(parseEventLevel("debug"), EventLevel::kDebug);
    EXPECT_EQ(parseEventLevel("info"), EventLevel::kInfo);
    EXPECT_EQ(parseEventLevel("warn"), EventLevel::kWarn);
    EXPECT_THROW(parseEventLevel("loud"), FatalError);
}

TEST(FlightRecorderTest, BoundedPerSubsystem)
{
    FlightRecorder rec(4);
    for (int i = 0; i < 10; ++i) {
        std::string line = "a";
        line += std::to_string(i);
        rec.record("a", line);
    }
    rec.record("b", "b0");

    const std::vector<std::string> a = rec.dump("a");
    ASSERT_EQ(a.size(), 4u); // capacity, oldest dropped
    EXPECT_EQ(a.front(), "a6");
    EXPECT_EQ(a.back(), "a9");
    EXPECT_EQ(rec.dump("b").size(), 1u);
    EXPECT_TRUE(rec.dump("absent").empty());
    // dumpAll: subsystems sorted, each oldest first.
    const std::vector<std::string> all = rec.dumpAll();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all.front(), "a6");
    EXPECT_EQ(all.back(), "b0");
}

// ====================================================================
// Leveled logging (satellite: SPT_LOG_LEVEL / SPT_LOG_TS)
// ====================================================================

TEST(Logging, LevelsParseAndRoundTrip)
{
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::kDebug);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::kInfo);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::kWarn);
    EXPECT_THROW(parseLogLevel("verbose"), FatalError);

    const LogLevel before = logLevel();
    setLogLevel(LogLevel::kWarn);
    EXPECT_EQ(logLevel(), LogLevel::kWarn);
    setLogLevel(before);

    const bool ts = logTimestamps();
    setLogTimestamps(!ts);
    EXPECT_EQ(logTimestamps(), !ts);
    setLogTimestamps(ts);
}

TEST(Logging, MonotonicSecondsAdvances)
{
    const double a = logMonotonicSeconds();
    const double b = logMonotonicSeconds();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
}

// ====================================================================
// Progress board
// ====================================================================

TEST(Progress, LifecycleAndSnapshot)
{
    ProgressBoard board;
    board.reset(3);
    EXPECT_EQ(board.numSlots(), 3u);
    board.setLabel(0, "job-zero");
    board.setLabel(2, "job-two");

    board.start(0);
    board.heartbeat(0, 1'000'000, 400'000);
    board.start(2);
    board.finish(2, 99, 33);

    std::vector<ProgressBoard::SlotProgress> snap =
        board.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].state, ProgressBoard::SlotState::kRunning);
    EXPECT_EQ(snap[0].label, "job-zero");
    EXPECT_EQ(snap[0].cycles, 1'000'000u);
    EXPECT_EQ(snap[0].instructions, 400'000u);
    EXPECT_GE(snap[0].host_seconds, 0.0);
    EXPECT_EQ(snap[1].state, ProgressBoard::SlotState::kIdle);
    EXPECT_EQ(snap[2].state, ProgressBoard::SlotState::kDone);
    EXPECT_EQ(snap[2].cycles, 99u);
    EXPECT_EQ(
        board.countInState(ProgressBoard::SlotState::kRunning), 1u);
    EXPECT_EQ(board.countInState(ProgressBoard::SlotState::kDone),
              1u);

    // reset clears state and labels for the next sweep.
    board.reset(1);
    snap = board.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].state, ProgressBoard::SlotState::kIdle);
    EXPECT_TRUE(snap[0].label.empty());
}

// ====================================================================
// Runner integration: conservation, spans, progress, zero-perturbation
// ====================================================================

std::vector<RunJob>
telemetryGrid(const Program &prog)
{
    std::vector<RunJob> grid;
    for (ProtectionScheme scheme :
         {ProtectionScheme::kUnsafeBaseline, ProtectionScheme::kSpt})
        for (AttackModel model : {AttackModel::kFuturistic,
                                  AttackModel::kSpectre}) {
            RunJob job;
            job.program = &prog;
            job.engine.scheme = scheme;
            job.attack_model = model;
            grid.push_back(job);
        }
    grid.push_back(grid.front()); // memo duplicate
    return grid;
}

TEST(RunnerTelemetry, MetricsConserveAgainstSweepStats)
{
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = telemetryGrid(prog);

    MetricsRegistry reg;
    EventLog elog; // recorder-only, no file sink
    ProgressBoard board;
    RunnerPolicy policy;
    policy.service_socket = kNoSweepService;
    policy.metrics = &reg;
    policy.event_log = &elog;
    policy.progress = &board;
    policy.heartbeat_cycles = 1000; // force heartbeats on tiny runs

    ExpRunner runner(2);
    const std::vector<RunOutcome> out = runner.run(grid, policy);
    const SweepStats &s = runner.lastSweep();

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("runner.sweeps"), 1u);
    EXPECT_EQ(snap.counters.at("runner.jobs.submitted"),
              grid.size());
    EXPECT_EQ(snap.counters.at("runner.jobs.memoized"),
              s.memo_hits);
    EXPECT_EQ(snap.counters.at("runner.jobs.executed"),
              s.unique_jobs);
    EXPECT_EQ(snap.counters.at("runner.jobs.executed") +
                  snap.counters.at("runner.jobs.memoized"),
              grid.size());
    EXPECT_EQ(snap.counters.at("runner.jobs.failed"), 0u);
    EXPECT_EQ(snap.gauges.at("runner.jobs.running"), 0);
    EXPECT_EQ(snap.histograms.at("runner.job.host_ms").count,
              s.unique_jobs);

    // Simulated-work totals conserve against the outcomes (each
    // executed simulation billed exactly once), which in turn
    // conserve against the engine's delay attribution: the delay.*
    // parts sum to delay.total_cycles, which never exceeds the
    // cycles the registry accumulated for that job.
    uint64_t cycles = 0, instructions = 0;
    for (const RunOutcome &o : out)
        if (!o.memoized) {
            cycles += o.result.cycles;
            instructions += o.result.instructions;
            EXPECT_EQ(o.counter("delay.mem_cycles") +
                          o.counter("delay.branch_cycles") +
                          o.counter("delay.memorder_cycles"),
                      o.counter("delay.total_cycles"));
            EXPECT_LE(o.counter("delay.total_cycles"),
                      o.result.cycles);
        }
    EXPECT_EQ(snap.counters.at("runner.sim.cycles"), cycles);
    EXPECT_EQ(snap.counters.at("runner.sim.instructions"),
              instructions);

    // Every slot (memoized included) ends done on the board.
    EXPECT_EQ(board.countInState(ProgressBoard::SlotState::kDone),
              grid.size());
    // At least one heartbeat landed mid-run: with a 1000-cycle
    // period some slot published non-zero progress before finish,
    // and finished slots report their final totals.
    const std::vector<ProgressBoard::SlotProgress> prog_snap =
        board.snapshot();
    for (size_t i = 0; i < grid.size(); ++i) {
        if (!out[i].memoized) {
            EXPECT_EQ(prog_snap[i].cycles, out[i].result.cycles)
                << "slot " << i;
        }
    }
}

TEST(RunnerTelemetry, CacheCountersMirrorResultCache)
{
    const std::string cache_dir =
        testing::TempDir() + "telemetry_cache";
    std::filesystem::remove_all(cache_dir);
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = telemetryGrid(prog);

    MetricsRegistry reg;
    EventLog elog;
    ProgressBoard board;
    RunnerPolicy policy;
    policy.service_socket = kNoSweepService;
    policy.cache_dir = cache_dir;
    policy.metrics = &reg;
    policy.event_log = &elog;
    policy.progress = &board;

    ExpRunner runner(2);
    runner.run(grid, policy); // cold: all unique jobs miss
    runner.run(grid, policy); // warm: all unique jobs hit
    const SweepStats &warm = runner.lastSweep();

    const MetricsSnapshot snap = reg.snapshot();
    // Registry totals across both sweeps == the per-sweep
    // SweepStats added up (cold misses == warm hits == unique).
    EXPECT_EQ(snap.counters.at("runner.cache.misses"),
              warm.unique_jobs);
    EXPECT_EQ(snap.counters.at("runner.cache.hits"),
              warm.cache.hits);
    EXPECT_EQ(warm.cache.hits, warm.unique_jobs);
    EXPECT_EQ(snap.counters.at("runner.cache.verify_mismatches"),
              0u);
    EXPECT_GT(snap.counters.at("runner.cache.bytes_written"), 0u);
    // Warm sweep executed nothing.
    EXPECT_EQ(snap.counters.at("runner.jobs.executed"),
              warm.unique_jobs);
    std::filesystem::remove_all(cache_dir);
}

TEST(RunnerTelemetry, SpansNestClientToJob)
{
    const std::string path = testing::TempDir() + "spans_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::filesystem::remove(path);
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = telemetryGrid(prog);

    EventLog elog;
    elog.openFile(path);
    elog.setMinLevel(EventLevel::kDebug); // include job-start
    MetricsRegistry reg;
    ProgressBoard board;
    RunnerPolicy policy;
    policy.service_socket = kNoSweepService;
    policy.event_log = &elog;
    policy.metrics = &reg;
    policy.progress = &board;
    policy.parent_span = "s0-root";
    ExpRunner(2).run(grid, policy);
    elog.close();

    std::ifstream in(path);
    std::string sweep_span;
    size_t job_done = 0, lines = 0;
    for (std::string line; std::getline(in, line); ++lines) {
        const JsonValue rec = parseJson(line); // throws on bad JSON
        ASSERT_TRUE(rec.has("ts"));
        ASSERT_TRUE(rec.has("lvl"));
        ASSERT_TRUE(rec.has("sys"));
        ASSERT_TRUE(rec.has("ev"));
        const std::string ev = rec.getString("ev", "");
        if (ev == "sweep-start") {
            // The sweep nests under the caller-provided span.
            EXPECT_EQ(rec.getString("parent", ""), "s0-root");
            sweep_span = rec.getString("span", "");
            EXPECT_FALSE(sweep_span.empty());
        } else if (ev == "job-start" || ev == "job-done") {
            // Every job record nests under the sweep span.
            EXPECT_EQ(rec.getString("parent", ""), sweep_span);
            EXPECT_FALSE(rec.getString("span", "").empty());
            if (ev == "job-done")
                ++job_done;
        } else if (ev == "sweep-done") {
            EXPECT_EQ(rec.getString("span", ""), sweep_span);
            EXPECT_EQ(rec.getString("parent", ""), "s0-root");
            EXPECT_EQ(rec.getU64("jobs", 0), grid.size());
        }
    }
    EXPECT_GE(lines, 2u + grid.size() - 1); // start+done+per-job
    EXPECT_EQ(job_done, grid.size() - 1);   // memo slot emits none
    std::filesystem::remove(path);
}

TEST(RunnerTelemetry, ZeroPerturbationAndJobsInvariance)
{
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = telemetryGrid(prog);

    // Reference: telemetry fully off (no heartbeats, private idle
    // sinks) on one worker.
    MetricsRegistry reg_off;
    EventLog elog_off;
    ProgressBoard board_off;
    RunnerPolicy off;
    off.service_socket = kNoSweepService;
    off.metrics = &reg_off;
    off.event_log = &elog_off;
    off.progress = &board_off;
    off.heartbeat_cycles = 0;
    const std::vector<RunOutcome> ref =
        ExpRunner(1).run(grid, off);

    // Telemetry on, aggressive heartbeat, live file sink, 4 workers.
    const std::string path = testing::TempDir() + "perturb_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::filesystem::remove(path);
    MetricsRegistry reg_on;
    EventLog elog_on;
    elog_on.openFile(path);
    elog_on.setMinLevel(EventLevel::kDebug);
    ProgressBoard board_on;
    RunnerPolicy on;
    on.service_socket = kNoSweepService;
    on.metrics = &reg_on;
    on.event_log = &elog_on;
    on.progress = &board_on;
    on.heartbeat_cycles = 500;
    const std::vector<RunOutcome> loud =
        ExpRunner(4).run(grid, on);
    elog_on.close();
    std::filesystem::remove(path);

    // The guardrail: every simulated byte identical — counters,
    // histograms, registers, status — at any worker count, with
    // telemetry on or off.
    ASSERT_EQ(ref.size(), loud.size());
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(loud[i]),
                  ResultCache::encodeOutcomeDeterministic(ref[i]))
            << "slot " << i;
}

// ====================================================================
// Sweep service: metrics/status/unknown-batch protocol surface
// ====================================================================

/** Daemon on a fresh socket + cache dir (mirrors
 *  test_sweep_service.cpp). */
struct DaemonFixture {
    explicit DaemonFixture(const char *name)
    {
        socket_path = "/tmp/spt_" + std::string(name) + "_" +
                      std::to_string(::getpid()) + ".sock";
        cache_dir = testing::TempDir() + name + "_cache";
        std::filesystem::remove_all(cache_dir);
        SweepServiceOptions opt;
        opt.socket_path = socket_path;
        opt.jobs = 2;
        opt.cache_dir = cache_dir;
        service = std::make_unique<SweepService>(opt);
        service->start();
    }

    ~DaemonFixture()
    {
        service->stop();
        service->wait();
    }

    std::string socket_path;
    std::string cache_dir;
    std::unique_ptr<SweepService> service;
};

TEST(ServiceTelemetry, MetricsOpJsonAndPrometheus)
{
    DaemonFixture daemon("svc_metrics");
    const Program prog = makePointerChase(256, 1);
    std::vector<RunJob> grid;
    RunJob job;
    job.program = &prog;
    grid.push_back(job);

    RunnerPolicy policy;
    policy.service_socket = daemon.socket_path;
    ExpRunner(1).run(grid, policy);

    JsonValue resp = parseJson(serviceRequest(
        daemon.socket_path, "{\"op\": \"metrics\"}"));
    ASSERT_TRUE(resp.getBool("ok", false));
    // The daemon-side runner published into the global registry.
    const JsonValue &counters = resp.at("metrics").at("counters");
    EXPECT_GE(counters.getU64("runner.jobs.executed", 0), 1u);
    EXPECT_GE(counters.getU64("svc.batches.executed", 0), 1u);
    EXPECT_GE(counters.getU64("svc.jobs.executed", 0), 1u);
    const JsonValue &progress = resp.at("progress");
    EXPECT_TRUE(progress.has("slots"));
    EXPECT_TRUE(progress.has("running"));
    EXPECT_TRUE(progress.has("running_slots"));
    EXPECT_TRUE(resp.has("queue_depth"));
    EXPECT_TRUE(resp.has("inflight_batch"));

    resp = parseJson(serviceRequest(
        daemon.socket_path,
        "{\"op\": \"metrics\", \"format\": \"prometheus\"}"));
    ASSERT_TRUE(resp.getBool("ok", false));
    const std::string text = resp.getString("text", "");
    EXPECT_NE(text.find("spt_svc_batches_executed"),
              std::string::npos);
    EXPECT_NE(text.find("spt_runner_jobs_executed"),
              std::string::npos);
}

TEST(ServiceTelemetry, StatsCarryQueueDepthAndInflight)
{
    DaemonFixture daemon("svc_qdepth");
    const JsonValue resp = parseJson(
        serviceRequest(daemon.socket_path, "{\"op\": \"stats\"}"));
    ASSERT_TRUE(resp.getBool("ok", false));
    // Idle daemon: empty queue, no batch in flight (0 sentinel).
    EXPECT_EQ(resp.getU64("queue_depth", 99), 0u);
    EXPECT_EQ(resp.getU64("inflight_batch", 99), 0u);

    const ServiceStats s = daemon.service->stats();
    EXPECT_EQ(s.queue_depth, 0u);
    EXPECT_EQ(s.inflight_batch, 0u);
}

TEST(ServiceTelemetry, UnknownBatchIsStructured)
{
    DaemonFixture daemon("svc_unknown");
    for (const char *req :
         {"{\"op\": \"status\", \"batch\": 4242}",
          "{\"op\": \"result\", \"batch\": 4242}"}) {
        const JsonValue resp =
            parseJson(serviceRequest(daemon.socket_path, req));
        EXPECT_FALSE(resp.getBool("ok", true));
        EXPECT_EQ(resp.getString("code", ""), "unknown-batch");
        EXPECT_NE(resp.getString("error", "").find("4242"),
                  std::string::npos);
    }
    // The daemon survived and still executes work.
    const JsonValue ping = parseJson(
        serviceRequest(daemon.socket_path, "{\"op\": \"ping\"}"));
    EXPECT_TRUE(ping.getBool("ok", false));
}

TEST(ServiceTelemetry, SubmitReturnsBatchSpan)
{
    DaemonFixture daemon("svc_span");
    const std::string path = testing::TempDir() + "svc_span_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::filesystem::remove(path);

    const Program prog = makePointerChase(256, 1);
    std::vector<RunJob> grid;
    RunJob job;
    job.program = &prog;
    grid.push_back(job);

    // The client logs into a private file; the daemon (in-process
    // here) logs into the global sink, which stays closed.
    EventLog elog;
    elog.openFile(path);
    RunnerPolicy policy;
    policy.service_socket = daemon.socket_path;
    policy.event_log = &elog;
    ExpRunner(1).run(grid, policy);
    elog.close();

    std::ifstream in(path);
    bool saw_submit = false;
    for (std::string line; std::getline(in, line);) {
        const JsonValue rec = parseJson(line);
        if (rec.getString("ev", "") != "batch-submitted")
            continue;
        saw_submit = true;
        EXPECT_EQ(rec.getString("sys", ""), "client");
        // The daemon minted the batch span and returned it in the
        // submit response; the client records it for correlation.
        EXPECT_FALSE(rec.getString("batch_span", "").empty());
        EXPECT_FALSE(rec.getString("span", "").empty());
    }
    EXPECT_TRUE(saw_submit);
    std::filesystem::remove(path);
}

} // namespace
} // namespace spt
