/**
 * @file
 * Out-of-order core tests: recovery from control mispredictions,
 * store-to-load forwarding correctness, memory-order violations and
 * store-set learning, resource accounting (no physical-register
 * leaks), and architectural-state correctness after drain.
 */

#include <gtest/gtest.h>

#include "core/engine_factory.h"
#include "isa/assembler.h"
#include "isa/functional_cpu.h"
#include "uarch/core.h"
#include "uarch/store_set.h"

namespace spt {
namespace {

std::unique_ptr<Core>
makeUnsafeCore(const Program &p, CoreParams cp = CoreParams{})
{
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kUnsafeBaseline;
    // Micro-tests need deterministic backend timing windows; cold
    // I-cache misses would smear them out.
    cp.perfect_icache = true;
    return std::make_unique<Core>(p, cp, MemorySystemParams{},
                                  makeEngine(ec));
}

void
expectMatchesReference(Core &core, const Program &p)
{
    FunctionalCpu cpu(p);
    cpu.run(10'000'000);
    for (unsigned r = 1; r < kNumArchRegs; ++r)
        EXPECT_EQ(core.archReg(r), cpu.reg(r)) << "x" << r;
}

TEST(CoreUarch, DataDependentBranchesRecoverCorrectly)
{
    // Unpredictable branch directions driven by an LCG: exercises
    // squash/recovery heavily.
    const Program p = assemble(R"(
    li   s0, 12345
    li   s1, 6364136223846793005
    li   s2, 200
    li   a7, 0
loop:
    mul  s0, s0, s1
    addi s0, s0, 1442695040888963407
    srli t0, s0, 60
    andi t1, t0, 1
    beqz t1, even
    addi a7, a7, 3
    j    next
even:
    addi a7, a7, 5
next:
    addi s2, s2, -1
    bnez s2, loop
    halt
)");
    auto core = makeUnsafeCore(p);
    const auto r = core->run(1'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(core->stats().get("branch.mispredicts"), 10u);
    expectMatchesReference(*core, p);
}

TEST(CoreUarch, StoreToLoadForwardingValueCorrect)
{
    // A load immediately after an aliasing store must observe the
    // store's data (forwarded, since the store hasn't committed).
    const Program p = assemble(R"(
    li   t0, 0x200000
    li   t1, 0xabcdef
    sd   t1, 0(t0)
    ld   t2, 0(t0)
    addi a7, t2, 1
    halt
)");
    auto core = makeUnsafeCore(p);
    core->run(100'000);
    EXPECT_EQ(core->archReg(17), 0xabcdf0u);
    EXPECT_GT(core->stats().get("lsu.forwards_public"), 0u);
}

TEST(CoreUarch, SubWidthForwarding)
{
    // A byte load fully covered by a wider store forwards the right
    // slice, including a non-zero offset.
    const Program p = assemble(R"(
    li   t0, 0x200000
    li   t1, 0x1122334455667788
    sd   t1, 0(t0)
    lbu  t2, 2(t0)
    lhu  t3, 4(t0)
    slli t4, t3, 8
    add  a7, t2, t4
    halt
)");
    auto core = makeUnsafeCore(p);
    core->run(100'000);
    // byte 2 = 0x66, halfword at 4 = 0x3344.
    EXPECT_EQ(core->archReg(17), 0x66u + (0x3344u << 8));
}

TEST(CoreUarch, PartialOverlapStallsButStaysCorrect)
{
    // Store writes 4 bytes; a subsequent 8-byte load overlaps only
    // partially and must wait for the store to drain.
    const Program p = assemble(R"(
    li   t0, 0x200000
    li   t1, 0x99999999
    sd   x0, 0(t0)
    sw   t1, 4(t0)
    ld   a7, 0(t0)
    halt
)");
    auto core = makeUnsafeCore(p);
    core->run(100'000);
    EXPECT_EQ(core->archReg(17), 0x9999999900000000ull);
    expectMatchesReference(*core, p);
}

TEST(CoreUarch, MemoryDependenceViolationSquashesAndRecovers)
{
    // The store's address arrives late (div chain); the dependent
    // load speculates past it, reads stale data, and must be
    // squashed and re-executed when the alias is discovered.
    const Program p = assemble(R"(
    li   t0, 0x200000
    li   t1, 77
    sd   t1, 0(t0)
    li   t2, 0x400000
    li   t3, 2
    div  t4, t2, t3
    div  t4, t4, t3
    mul  t4, t4, t3
    mul  t4, t4, t3      # t4 = 0x400000 again
    li   t5, -2097152
    add  t4, t4, t5      # t4 = 0x200000, late-resolving alias
    li   t6, 123
    sd   t6, 0(t4)
    ld   a7, 0(t0)       # must see 123, not 77
    halt
)");
    auto core = makeUnsafeCore(p);
    core->run(100'000);
    EXPECT_EQ(core->archReg(17), 123u);
    EXPECT_GT(core->stats().get("lsu.violations_detected"), 0u);
    EXPECT_GT(core->stats().get("squash.mem_violation"), 0u);
}

TEST(CoreUarch, StoreSetPredictorLearnsDependence)
{
    StoreSetPredictor ssp;
    EXPECT_FALSE(ssp.loadRenamed(0x10).has_value());
    ssp.trainViolation(0x10, 0x20);
    ssp.storeRenamed(0x20, 99);
    const auto wait = ssp.loadRenamed(0x10);
    ASSERT_TRUE(wait.has_value());
    EXPECT_EQ(*wait, 99u);
    ssp.storeRemoved(0x20, 99);
    EXPECT_FALSE(ssp.loadRenamed(0x10).has_value());
}

TEST(CoreUarch, StoreSetMerging)
{
    StoreSetPredictor ssp;
    ssp.trainViolation(0x10, 0x20);
    ssp.trainViolation(0x30, 0x20); // store joins both loads' set
    ssp.storeRenamed(0x20, 7);
    EXPECT_TRUE(ssp.loadRenamed(0x10).has_value());
    EXPECT_TRUE(ssp.loadRenamed(0x30).has_value());
}

TEST(CoreUarch, PhysicalRegistersDoNotLeak)
{
    const Program p = assemble(R"(
    li   s0, 500
loop:
    addi t0, s0, 1
    addi t1, t0, 2
    mul  t2, t0, t1
    addi s0, s0, -1
    bnez s0, loop
    mv   a7, t2
    halt
)");
    CoreParams cp;
    auto core = makeUnsafeCore(p, cp);
    const size_t free_before = core->physRegs().freeCount();
    core->run(1'000'000);
    // After drain, every transient allocation must have been freed;
    // the delta equals the architectural registers renamed away from
    // their initial mapping.
    const size_t free_after = core->physRegs().freeCount();
    EXPECT_LE(free_before - free_after, kNumArchRegs);
    expectMatchesReference(*core, p);
}

TEST(CoreUarch, VpIsPrefixOrderedEveryCycle)
{
    const Program p = assemble(R"(
    li   s0, 300
    li   s1, 0x100000
loop:
    andi t0, s0, 63
    slli t0, t0, 3
    add  t0, t0, s1
    ld   t1, 0(t0)
    add  a7, a7, t1
    sd   a7, 64(t0)
    addi s0, s0, -1
    bnez s0, loop
    halt
)");
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSpt;
    CoreParams cp;
    cp.attack_model = AttackModel::kFuturistic;
    Core core(p, cp, MemorySystemParams{}, makeEngine(ec));
    while (!core.halted() && core.cycle() < 100'000) {
        core.tick();
        // at_vp must be a prefix of the ROB, and taint state must be
        // monotone (checked via the prefix property here).
        bool seen_non_vp = false;
        for (const DynInstPtr &d : core.rob()) {
            if (!d->at_vp)
                seen_non_vp = true;
            else
                EXPECT_FALSE(seen_non_vp)
                    << "VP flag set behind a non-VP instruction";
        }
    }
    EXPECT_TRUE(core.halted());
}

TEST(CoreUarch, RobNeverExceedsCapacity)
{
    const Program p = assemble(R"(
    li  s0, 2000
loop:
    addi s0, s0, -1
    bnez s0, loop
    halt
)");
    CoreParams cp;
    cp.rob_size = 16;
    cp.rs_size = 8;
    auto core = makeUnsafeCore(p, cp);
    while (!core->halted() && core->cycle() < 200'000) {
        core->tick();
        EXPECT_LE(core->rob().size(), 16u);
    }
    EXPECT_TRUE(core->halted());
}

TEST(CoreUarch, IndirectJumpThroughRegister)
{
    const Program p = assemble(R"(
    .data
table:
    .quad target_a, target_b
    .text
    la   t0, table
    ld   t1, 8(t0)
    jr   t1
target_a:
    li   a7, 1
    halt
target_b:
    li   a7, 2
    halt
)");
    auto core = makeUnsafeCore(p);
    core->run(100'000);
    EXPECT_EQ(core->archReg(17), 2u);
}

TEST(CoreUarch, DeepCallChainsUseRas)
{
    // Nested calls exercise RAS push/pop and recovery.
    const Program p = assemble(R"(
    li   a0, 12
    call f
    mv   a7, a0
    halt
f:
    li   t0, 2
    blt  a0, t0, base
    addi sp, sp, -16
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    addi a0, a0, -1
    call f
    ld   t1, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    add  a0, a0, t1
    ret
base:
    ret
)");
    auto core = makeUnsafeCore(p);
    const auto r = core->run(1'000'000);
    EXPECT_TRUE(r.halted);
    expectMatchesReference(*core, p);
    EXPECT_GT(core->bpu().stats().get("bpu.ras_predictions"), 5u);
}

} // namespace
} // namespace spt
