/**
 * @file
 * Functional reference CPU tests: step-level introspection, memory
 * access widths, control flow, halting semantics, and initial state.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "isa/assembler.h"
#include "isa/functional_cpu.h"

namespace spt {
namespace {

TEST(FunctionalCpu, InitialState)
{
    const Program p = assemble("halt\n");
    FunctionalCpu cpu(p);
    EXPECT_EQ(cpu.pc(), 0u);
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(kRegSp), kDefaultStackTop);
    EXPECT_FALSE(cpu.halted());
}

TEST(FunctionalCpu, StepInfoReportsWrites)
{
    const Program p = assemble(R"(
    li   t0, 7
    addi t1, t0, 3
    halt
)");
    FunctionalCpu cpu(p);
    auto s = cpu.step();
    EXPECT_EQ(s.pc, 0u);
    EXPECT_TRUE(s.wrote_reg);
    EXPECT_EQ(s.dest, 5); // t0
    EXPECT_EQ(s.dest_value, 7u);
    s = cpu.step();
    EXPECT_EQ(s.dest_value, 10u);
    s = cpu.step();
    EXPECT_TRUE(s.halted);
    EXPECT_TRUE(cpu.halted());
    // Steps after halt are no-ops.
    s = cpu.step();
    EXPECT_TRUE(s.halted);
    EXPECT_EQ(cpu.instructionsRetired(), 3u);
}

TEST(FunctionalCpu, ZeroRegisterIsImmutable)
{
    const Program p = assemble(R"(
    li   x0, 99
    addi x0, x0, 5
    mv   a7, x0
    halt
)");
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(17), 0u);
}

TEST(FunctionalCpu, MemoryWidthsAndSignExtension)
{
    const Program p = assemble(R"(
    li   t0, 0x200000
    li   t1, -1
    sd   t1, 0(t0)
    li   t2, 0x1234
    sh   t2, 8(t0)
    lb   a0, 0(t0)      # -1
    lbu  a1, 0(t0)      # 255
    lh   a2, 8(t0)      # 0x1234
    lw   a3, 0(t0)      # -1
    lwu  a4, 0(t0)      # 0xffffffff
    halt
)");
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.reg(10), static_cast<uint64_t>(-1));
    EXPECT_EQ(cpu.reg(11), 255u);
    EXPECT_EQ(cpu.reg(12), 0x1234u);
    EXPECT_EQ(cpu.reg(13), static_cast<uint64_t>(-1));
    EXPECT_EQ(cpu.reg(14), 0xffffffffu);
}

TEST(FunctionalCpu, StepInfoReportsMemoryAddresses)
{
    const Program p = assemble(R"(
    li   t0, 0x300000
    sd   t0, 16(t0)
    ld   t1, 16(t0)
    halt
)");
    FunctionalCpu cpu(p);
    cpu.step();
    auto s = cpu.step(); // store
    EXPECT_TRUE(s.is_mem);
    EXPECT_EQ(s.mem_addr, 0x300010u);
    s = cpu.step(); // load
    EXPECT_TRUE(s.is_mem);
    EXPECT_EQ(s.dest_value, 0x300000u);
}

TEST(FunctionalCpu, RunHonorsInstructionBudget)
{
    const Program p = assemble(R"(
forever:
    j forever
)");
    FunctionalCpu cpu(p);
    const auto r = cpu.run(1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instructions, 1000u);
}

TEST(FunctionalCpu, EntryPointRespected)
{
    const Program p = assemble(R"(
    .entry main
    li   a7, 1
    halt
main:
    li   a7, 2
    halt
)");
    FunctionalCpu cpu(p);
    cpu.run();
    EXPECT_EQ(cpu.reg(17), 2u);
}

TEST(FunctionalCpu, InvalidPcIsFatal)
{
    const Program p = assemble(R"(
    j past_end
past_end:
)"
                               "    nop\n");
    // Jump lands on the last instruction; then pc runs off the end.
    FunctionalCpu cpu(p);
    EXPECT_THROW(cpu.run(10), FatalError);
}

TEST(FunctionalCpu, SetRegForTestHarnesses)
{
    const Program p = assemble(R"(
    addi a0, a0, 1
    mv   a7, a0
    halt
)");
    FunctionalCpu cpu(p);
    cpu.setReg(10, 41);
    cpu.run();
    EXPECT_EQ(cpu.reg(17), 42u);
    cpu.setReg(0, 77); // must be ignored
    EXPECT_EQ(cpu.reg(0), 0u);
}

} // namespace
} // namespace spt
