/**
 * @file
 * Unit and property tests for the TRISC ISA: opcode traits
 * invariants, functional semantics, load finishing, binary encoding
 * round trips, and register-name parsing.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/semantics.h"

namespace spt {
namespace {

std::vector<Opcode>
everyOpcode()
{
    std::vector<Opcode> ops;
    for (size_t i = 0; i < static_cast<size_t>(Opcode::kNumOpcodes);
         ++i)
        ops.push_back(static_cast<Opcode>(i));
    return ops;
}

// --------------------------------------------------------------------
// Traits invariants (property-style over all opcodes)
// --------------------------------------------------------------------

class OpcodeTraits : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(OpcodeTraits, Consistent)
{
    const Opcode op = GetParam();
    const OpTraits &t = opTraits(op);
    EXPECT_FALSE(t.mnemonic.empty());
    // Memory size iff memory op.
    EXPECT_EQ(t.mem_bytes != 0, t.is_load || t.is_store);
    // Loads have a dest and one source; stores have two sources and
    // no dest.
    if (t.is_load) {
        EXPECT_TRUE(t.has_dest);
        EXPECT_EQ(t.num_srcs, 1);
    }
    if (t.is_store) {
        EXPECT_FALSE(t.has_dest);
        EXPECT_EQ(t.num_srcs, 2);
    }
    // Control flow never both conditional and jump.
    EXPECT_FALSE(t.is_cond_branch && t.is_jump);
    if (t.is_cond_branch) {
        EXPECT_EQ(t.num_srcs, 2);
    }
    // Transmitters are exactly the memory ops.
    EXPECT_EQ(isTransmitter(op), t.is_load || t.is_store);
    // Untaint classes constrain source counts.
    if (t.untaint_class == UntaintClass::kCopy) {
        EXPECT_EQ(t.num_srcs, 1);
    }
    if (t.untaint_class == UntaintClass::kInvertible) {
        EXPECT_GE(t.num_srcs, 1);
    }
    EXPECT_LE(t.num_srcs, 2);
}

INSTANTIATE_TEST_SUITE_P(All, OpcodeTraits,
                         ::testing::ValuesIn(everyOpcode()),
                         [](const auto &info) {
                             std::string n(mnemonic(info.param));
                             return n;
                         });

// --------------------------------------------------------------------
// Semantics
// --------------------------------------------------------------------

uint64_t
alu(Opcode op, uint64_t a, uint64_t b, int64_t imm = 0)
{
    Instruction inst{op, 1, 2, 3, imm};
    return evaluateOp(inst, 0, a, b).value;
}

TEST(Semantics, Arithmetic)
{
    EXPECT_EQ(alu(Opcode::kAdd, 3, 4), 7u);
    EXPECT_EQ(alu(Opcode::kSub, 3, 4), static_cast<uint64_t>(-1));
    EXPECT_EQ(alu(Opcode::kMul, 7, 6), 42u);
    EXPECT_EQ(alu(Opcode::kNeg, 5, 0), static_cast<uint64_t>(-5));
    EXPECT_EQ(alu(Opcode::kNot, 0, 0), ~uint64_t{0});
    EXPECT_EQ(alu(Opcode::kMov, 99, 0), 99u);
}

TEST(Semantics, MulHigh)
{
    // (2^32)^2 = 2^64 => high half 1.
    EXPECT_EQ(alu(Opcode::kMulh, 1ull << 32, 1ull << 32), 1u);
    // -1 * -1 = 1 => high half 0.
    EXPECT_EQ(alu(Opcode::kMulh, ~uint64_t{0}, ~uint64_t{0}), 0u);
}

TEST(Semantics, DivisionRiscvEdgeCases)
{
    EXPECT_EQ(alu(Opcode::kDiv, 7, 2), 3u);
    EXPECT_EQ(alu(Opcode::kDiv, static_cast<uint64_t>(-7), 2),
              static_cast<uint64_t>(-3));
    // Divide by zero: all ones / dividend.
    EXPECT_EQ(alu(Opcode::kDiv, 5, 0), ~uint64_t{0});
    EXPECT_EQ(alu(Opcode::kRem, 5, 0), 5u);
    // INT64_MIN / -1 overflow.
    const uint64_t min = uint64_t{1} << 63;
    EXPECT_EQ(alu(Opcode::kDiv, min, static_cast<uint64_t>(-1)),
              min);
    EXPECT_EQ(alu(Opcode::kRem, min, static_cast<uint64_t>(-1)), 0u);
}

TEST(Semantics, ShiftsMaskAmount)
{
    EXPECT_EQ(alu(Opcode::kSll, 1, 65), 2u); // 65 & 63 == 1
    EXPECT_EQ(alu(Opcode::kSrl, 0x8000000000000000ull, 63), 1u);
    EXPECT_EQ(alu(Opcode::kSra, 0x8000000000000000ull, 63),
              ~uint64_t{0});
    EXPECT_EQ(alu(Opcode::kSrai, 0xf0, 0, 4), 0xfu);
}

TEST(Semantics, Comparisons)
{
    EXPECT_EQ(alu(Opcode::kSlt, static_cast<uint64_t>(-1), 0), 1u);
    EXPECT_EQ(alu(Opcode::kSltu, static_cast<uint64_t>(-1), 0), 0u);
    EXPECT_EQ(alu(Opcode::kMin, static_cast<uint64_t>(-5), 3),
              static_cast<uint64_t>(-5));
    EXPECT_EQ(alu(Opcode::kMinu, static_cast<uint64_t>(-5), 3), 3u);
    EXPECT_EQ(alu(Opcode::kMax, static_cast<uint64_t>(-5), 3), 3u);
    EXPECT_EQ(alu(Opcode::kMaxu, static_cast<uint64_t>(-5), 3),
              static_cast<uint64_t>(-5));
}

TEST(Semantics, Branches)
{
    Instruction beq{Opcode::kBeq, 0, 1, 2, 10};
    auto r = evaluateOp(beq, 100, 5, 5);
    EXPECT_TRUE(r.is_taken);
    EXPECT_EQ(r.target, 110u);
    r = evaluateOp(beq, 100, 5, 6);
    EXPECT_FALSE(r.is_taken);

    Instruction blt{Opcode::kBlt, 0, 1, 2, -20};
    r = evaluateOp(blt, 100, static_cast<uint64_t>(-1), 0);
    EXPECT_TRUE(r.is_taken);
    EXPECT_EQ(r.target, 80u);
    Instruction bltu{Opcode::kBltu, 0, 1, 2, -20};
    r = evaluateOp(bltu, 100, static_cast<uint64_t>(-1), 0);
    EXPECT_FALSE(r.is_taken);
}

TEST(Semantics, Jumps)
{
    Instruction jal{Opcode::kJal, 1, 0, 0, 50};
    auto r = evaluateOp(jal, 10, 0, 0);
    EXPECT_TRUE(r.is_taken);
    EXPECT_EQ(r.target, 60u);
    EXPECT_EQ(r.value, 11u); // link

    Instruction jalr{Opcode::kJalr, 1, 2, 0, 3};
    r = evaluateOp(jalr, 10, 200, 0);
    EXPECT_EQ(r.target, 203u);
    EXPECT_EQ(r.value, 11u);
}

TEST(Semantics, MemAddressing)
{
    Instruction ld{Opcode::kLd, 1, 2, 0, -8};
    auto r = evaluateOp(ld, 0, 0x1000, 0);
    EXPECT_EQ(r.mem_addr, 0xff8u);

    Instruction sd{Opcode::kSd, 0, 2, 3, 16};
    r = evaluateOp(sd, 0, 0x1000, 0xabcd);
    EXPECT_EQ(r.mem_addr, 0x1010u);
    EXPECT_EQ(r.value, 0xabcdu); // store data
}

TEST(Semantics, FinishLoadSignAndZeroExtension)
{
    EXPECT_EQ(finishLoad(Opcode::kLb, 0x80), static_cast<uint64_t>(-128));
    EXPECT_EQ(finishLoad(Opcode::kLbu, 0x80), 0x80u);
    EXPECT_EQ(finishLoad(Opcode::kLh, 0x8000),
              static_cast<uint64_t>(-32768));
    EXPECT_EQ(finishLoad(Opcode::kLhu, 0x8000), 0x8000u);
    EXPECT_EQ(finishLoad(Opcode::kLw, 0x80000000ull),
              0xffffffff80000000ull);
    EXPECT_EQ(finishLoad(Opcode::kLwu, 0x80000000ull), 0x80000000ull);
    EXPECT_EQ(finishLoad(Opcode::kLd, 0x123456789abcdef0ull),
              0x123456789abcdef0ull);
}

// --------------------------------------------------------------------
// Encoding round trip (randomized property)
// --------------------------------------------------------------------

TEST(Encoding, RoundTripRandomInstructions)
{
    Rng rng(0xe4c0de);
    for (int i = 0; i < 2000; ++i) {
        Instruction inst;
        inst.op = static_cast<Opcode>(rng.nextBelow(
            static_cast<uint64_t>(Opcode::kNumOpcodes)));
        inst.rd = static_cast<uint8_t>(rng.nextBelow(kNumArchRegs));
        inst.rs1 = static_cast<uint8_t>(rng.nextBelow(kNumArchRegs));
        inst.rs2 = static_cast<uint8_t>(rng.nextBelow(kNumArchRegs));
        inst.imm = static_cast<int64_t>(rng.next());
        EXPECT_EQ(decode(encode(inst)), inst);
    }
}

TEST(Encoding, RejectsMalformed)
{
    EncodedInstruction enc;
    enc.bytes[0] = 0xff; // bad opcode
    EXPECT_THROW(decode(enc), FatalError);
    enc = encode({Opcode::kAdd, 1, 2, 3, 0});
    enc.bytes[1] = 200; // bad register
    EXPECT_THROW(decode(enc), FatalError);
    enc = encode({Opcode::kAdd, 1, 2, 3, 0});
    enc.bytes[15] = 1; // nonzero reserved byte
    EXPECT_THROW(decode(enc), FatalError);
}

// --------------------------------------------------------------------
// Register names
// --------------------------------------------------------------------

TEST(Registers, ParseNamesAndAliases)
{
    EXPECT_EQ(parseRegister("x0"), 0);
    EXPECT_EQ(parseRegister("x31"), 31);
    EXPECT_EQ(parseRegister("zero"), 0);
    EXPECT_EQ(parseRegister("ra"), 1);
    EXPECT_EQ(parseRegister("sp"), 2);
    EXPECT_EQ(parseRegister("s0"), 8);
    EXPECT_EQ(parseRegister("fp"), 8);
    EXPECT_EQ(parseRegister("a0"), 10);
    EXPECT_EQ(parseRegister("a7"), 17);
    EXPECT_EQ(parseRegister("s2"), 18);
    EXPECT_EQ(parseRegister("s11"), 27);
    EXPECT_EQ(parseRegister("t0"), 5);
    EXPECT_EQ(parseRegister("t3"), 28);
    EXPECT_EQ(parseRegister("t6"), 31);
    EXPECT_THROW(parseRegister("x32"), FatalError);
    EXPECT_THROW(parseRegister("bogus"), FatalError);
}

TEST(Registers, ToString)
{
    EXPECT_EQ(toString({Opcode::kAdd, 1, 2, 3, 0}),
              "add x1, x2, x3");
    EXPECT_EQ(toString({Opcode::kLd, 5, 6, 0, -8}),
              "ld x5, -8(x6)");
    EXPECT_EQ(toString({Opcode::kSd, 0, 6, 7, 16}),
              "sd x7, 16(x6)");
    EXPECT_EQ(toString({Opcode::kBeq, 0, 1, 2, 4}),
              "beq x1, x2, 4");
    EXPECT_EQ(toString({Opcode::kHalt, 0, 0, 0, 0}), "halt");
}

} // namespace
} // namespace spt
