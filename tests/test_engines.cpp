/**
 * @file
 * Tests for the baseline protection engines (SecureBaseline, STT),
 * the engine factory, and cross-scheme behavioral expectations
 * (e.g., SecureBaseline is never faster than Unsafe and never
 * slower than any SPT variant on the same program).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/baseline_engines.h"
#include "core/engine_factory.h"
#include "isa/assembler.h"
#include "sim/simulator.h"

namespace spt {
namespace {

TEST(EngineFactory, BuildsEveryScheme)
{
    for (const NamedConfig &nc : table2Configs()) {
        auto engine = makeEngine(nc.engine);
        ASSERT_NE(engine, nullptr) << nc.name;
        EXPECT_STRNE(engine->name(), "");
        EXPECT_EQ(engineConfigName(nc.engine), nc.name);
    }
}

TEST(EngineFactory, NamesMatchTable2)
{
    EngineConfig cfg;
    cfg.scheme = ProtectionScheme::kSpt;
    cfg.spt.method = UntaintMethod::kForward;
    cfg.spt.shadow = ShadowKind::kNone;
    EXPECT_EQ(engineConfigName(cfg), "SPT{Fwd,NoShadowL1}");
    cfg.spt.method = UntaintMethod::kIdeal;
    cfg.spt.shadow = ShadowKind::kShadowMem;
    EXPECT_EQ(engineConfigName(cfg), "SPT{Ideal,ShadowMem}");
    cfg.scheme = ProtectionScheme::kStt;
    EXPECT_EQ(engineConfigName(cfg), "STT");
}

const char *kMixedProgram = R"(
    .data
ptrs:
    .quad 0x100020
    .quad 0x100030
    .quad 5
    .quad 0
    .quad 11
    .quad 0
    .text
    li   s0, 60
    li   s1, 0x100000
loop:
    ld   t0, 0(s1)      # tainted pointer
    ld   t1, 0(t0)      # dependent (delayed) load
    add  a7, a7, t1
    sd   a7, 56(s1)
    addi s0, s0, -1
    bnez s0, loop
    halt
)";

uint64_t
cyclesUnder(ProtectionScheme scheme, AttackModel model)
{
    EngineConfig ec;
    ec.scheme = scheme;
    const Program p = assemble(kMixedProgram);
    const SimResult r = runProgram(p, ec, model);
    EXPECT_TRUE(r.halted);
    return r.cycles;
}

TEST(Engines, OverheadOrderingFuturistic)
{
    const uint64_t unsafe =
        cyclesUnder(ProtectionScheme::kUnsafeBaseline,
                    AttackModel::kFuturistic);
    const uint64_t secure =
        cyclesUnder(ProtectionScheme::kSecureBaseline,
                    AttackModel::kFuturistic);
    const uint64_t spt = cyclesUnder(ProtectionScheme::kSpt,
                                     AttackModel::kFuturistic);
    const uint64_t stt = cyclesUnder(ProtectionScheme::kStt,
                                     AttackModel::kFuturistic);
    // The paper's fundamental ordering.
    EXPECT_LE(unsafe, spt);
    EXPECT_LE(spt, secure);
    EXPECT_LE(unsafe, stt);
    EXPECT_LE(stt, secure);
}

TEST(Engines, FuturisticCostsAtLeastSpectre)
{
    for (ProtectionScheme s : {ProtectionScheme::kSecureBaseline,
                               ProtectionScheme::kSpt}) {
        const uint64_t fut =
            cyclesUnder(s, AttackModel::kFuturistic);
        const uint64_t spec =
            cyclesUnder(s, AttackModel::kSpectre);
        EXPECT_GE(fut + 5, spec); // allow tiny noise
    }
}

TEST(SttEngine, RootTrackingThroughDataflow)
{
    // White-box: run the core a few cycles and check that a load's
    // dependents are s-tainted until the load reaches the VP.
    const Program p = assemble(R"(
    li   t0, 0x100000
    li   t5, 9
    li   t6, 3
    div  t5, t5, t6     # slow filler (longer than the cold load)
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    div  t5, t5, t6
    ld   t1, 0(t0)
    add  t2, t1, t0
    add  t3, t2, t0
    ld   t4, 0(t3)
    halt
)");
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kStt;
    CoreParams cp;
    cp.attack_model = AttackModel::kFuturistic;
    cp.perfect_icache = true;
    Core core(p, cp, MemorySystemParams{}, makeEngine(ec));
    auto &stt = dynamic_cast<SttEngine &>(core.engine());
    bool saw_tainted_chain = false;
    while (!core.halted() && core.cycle() < 100'000) {
        core.tick();
        for (const DynInstPtr &d : core.rob()) {
            if (d->pc == 22 && !d->squashed && !d->at_vp) {
                // The dependent add chain: its source must be
                // s-tainted while the root load is speculative.
                DynInstPtr root = core.findInst(d->seq - 3);
                if (root && !root->at_vp && root->completed)
                    saw_tainted_chain =
                        saw_tainted_chain ||
                        stt.regTainted(d->prs1);
            }
        }
    }
    EXPECT_TRUE(core.halted());
    EXPECT_TRUE(saw_tainted_chain);
}

TEST(SecureBaseline, DelaysEveryMemoryAccess)
{
    const Program p = assemble(kMixedProgram);
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSecureBaseline;
    SimConfig cfg;
    cfg.engine = ec;
    cfg.core.attack_model = AttackModel::kFuturistic;
    Simulator sim(p, cfg);
    sim.run();
    EXPECT_GT(sim.stat("engine.policy.mem_blocked_checks"), 0u);
}

TEST(UnsafeEngine, NeverBlocks)
{
    const Program p = assemble(kMixedProgram);
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kUnsafeBaseline;
    SimConfig cfg;
    cfg.engine = ec;
    Simulator sim(p, cfg);
    sim.run();
    EXPECT_EQ(sim.stat("core.lsu.load_policy_delay_cycles"), 0u);
    EXPECT_EQ(sim.stat("core.lsu.store_policy_delays"), 0u);
}

TEST(Simulator, StatLookupAndDump)
{
    const Program p = assemble("li a0, 1\nhalt\n");
    SimConfig cfg;
    Simulator sim(p, cfg);
    sim.run();
    EXPECT_GT(sim.stat("core.commit.instructions"), 0u);
    EXPECT_THROW(sim.stat("nodot"), FatalError);
    EXPECT_THROW(sim.stat("bogus.counter"), FatalError);
    std::ostringstream os;
    sim.dumpStats(os);
    EXPECT_NE(os.str().find("commit.instructions"),
              std::string::npos);
}

} // namespace
} // namespace spt
