/**
 * @file
 * Workload validation: every kernel halts on the functional
 * reference CPU with a nonzero checksum, and the out-of-order core
 * commits the exact same architectural instruction stream (lockstep)
 * under the insecure and full-SPT configurations.
 */

#include <gtest/gtest.h>

#include "isa/functional_cpu.h"
#include "sim/simulator.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, FunctionalRunHaltsWithChecksum)
{
    const Workload &w = workloadByName(GetParam());
    FunctionalCpu cpu(w.program);
    const auto r = cpu.run(5'000'000);
    EXPECT_TRUE(r.halted) << w.name << " did not halt within 5M "
                          << "instructions";
    EXPECT_NE(cpu.reg(kChecksumReg), 0u)
        << w.name << " produced a zero checksum";
    // Keep the suite fast: each workload should be a few hundred
    // thousand dynamic instructions.
    EXPECT_LT(r.instructions, 1'500'000u) << w.name;
    EXPECT_GT(r.instructions, 50'000u) << w.name;
}

TEST_P(WorkloadTest, OooMatchesReferenceUnderUnsafe)
{
    const Workload &w = workloadByName(GetParam());
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kUnsafeBaseline;
    cfg.lockstep_check = true;
    Simulator sim(w.program, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.halted) << w.name;

    FunctionalCpu cpu(w.program);
    cpu.run(5'000'000);
    EXPECT_EQ(sim.core().archReg(kChecksumReg),
              cpu.reg(kChecksumReg))
        << w.name;
}

TEST_P(WorkloadTest, OooMatchesReferenceUnderSpt)
{
    const Workload &w = workloadByName(GetParam());
    SimConfig cfg;
    cfg.engine.scheme = ProtectionScheme::kSpt;
    cfg.core.attack_model = AttackModel::kFuturistic;
    cfg.lockstep_check = true;
    Simulator sim(w.program, cfg);
    const SimResult r = sim.run();
    EXPECT_TRUE(r.halted) << w.name;

    FunctionalCpu cpu(w.program);
    cpu.run(5'000'000);
    EXPECT_EQ(sim.core().archReg(kChecksumReg),
              cpu.reg(kChecksumReg))
        << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest, ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const Workload &w : allWorkloads())
            names.push_back(w.name);
        return names;
    }()),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

} // namespace
} // namespace spt
