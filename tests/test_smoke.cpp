/**
 * @file
 * End-to-end smoke tests: small assembled programs run on every
 * protection scheme and both attack models, with lockstep commit
 * checking against the functional reference CPU.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/simulator.h"

namespace spt {
namespace {

const char *kSumLoop = R"(
    .data
arr:
    .quad 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
    .text
    la   a1, arr
    li   a0, 10
    li   a2, 0
loop:
    ld   t0, 0(a1)
    add  a2, a2, t0
    addi a1, a1, 8
    addi a0, a0, -1
    bnez a0, loop
    halt
)";

const char *kStoreLoad = R"(
    .data 0x200000
buf:
    .zero 256
    .text
    la   a0, buf
    li   a1, 25
    li   a3, 0
outer:
    slli t0, a1, 3
    add  t1, a0, t0
    sd   a1, 0(t1)
    ld   t2, 0(t1)
    add  a3, a3, t2
    addi a1, a1, -1
    bnez a1, outer
    halt
)";

const char *kCallRet = R"(
    .text
    li   a0, 6
    call fact
    mv   s0, a0
    halt
fact:
    li   t0, 1
    ble_check:
    li   t1, 2
    blt  a0, t1, base
    addi sp, sp, -16
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    addi a0, a0, -1
    call fact
    ld   t2, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    mul  a0, a0, t2
    ret
base:
    li   a0, 1
    ret
)";

class SmokeTest
    : public ::testing::TestWithParam<std::tuple<int, AttackModel>>
{
  protected:
    SimConfig
    makeConfig()
    {
        SimConfig cfg;
        const auto configs = table2Configs();
        cfg.engine = configs[static_cast<size_t>(
                                 std::get<0>(GetParam()))]
                         .engine;
        cfg.core.attack_model = std::get<1>(GetParam());
        cfg.lockstep_check = true;
        cfg.max_cycles = 2'000'000;
        return cfg;
    }
};

TEST_P(SmokeTest, SumLoop)
{
    const Program p = assemble(kSumLoop);
    Simulator sim(p, makeConfig());
    const SimResult r = sim.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(sim.core().archReg(12), 55u); // a2
}

TEST_P(SmokeTest, StoreLoadForwarding)
{
    const Program p = assemble(kStoreLoad);
    Simulator sim(p, makeConfig());
    const SimResult r = sim.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(sim.core().archReg(13), 325u); // a3 = sum 1..25
}

TEST_P(SmokeTest, RecursiveCalls)
{
    const Program p = assemble(kCallRet);
    Simulator sim(p, makeConfig());
    const SimResult r = sim.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(sim.core().archReg(8), 720u); // s0 = 6!
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SmokeTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(AttackModel::kSpectre,
                                         AttackModel::kFuturistic)),
    [](const auto &info) {
        const auto configs = table2Configs();
        std::string name =
            configs[static_cast<size_t>(std::get<0>(info.param))]
                .name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + (std::get<1>(info.param) ==
                               AttackModel::kSpectre
                           ? "_Spectre"
                           : "_Futuristic");
    });

} // namespace
} // namespace spt
