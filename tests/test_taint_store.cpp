/**
 * @file
 * Tests for the memory data-taint stores (Sections 6.8 / 7.5):
 * the shadow L1 mirror (fill/evict semantics driven by the real
 * cache's observer hooks), the idealized shadow memory, and the
 * always-tainted null store.
 */

#include <gtest/gtest.h>

#include "core/taint_store.h"

namespace spt {
namespace {

TEST(NullTaintStore, AlwaysTainted)
{
    NullTaintStore s;
    EXPECT_EQ(s.readTaint(0x1000, 1), 0x01);
    EXPECT_EQ(s.readTaint(0x1000, 4), 0x0f);
    EXPECT_EQ(s.readTaint(0x1000, 8), 0xff);
    s.clearTaint(0x1000, 8);
    s.writeTaint(0x1000, 8, 0x00);
    EXPECT_EQ(s.readTaint(0x1000, 8), 0xff);
}

class ShadowL1Test : public ::testing::Test
{
  protected:
    SetAssocCache l1d_{CacheParams{"l1d", 32 * 1024, 64, 8, 2}};
    ShadowL1 shadow_{l1d_};
};

TEST_F(ShadowL1Test, NonResidentLinesAreTainted)
{
    EXPECT_EQ(shadow_.readTaint(0x4000, 8), 0xff);
}

TEST_F(ShadowL1Test, FreshFillIsFullyTainted)
{
    l1d_.fill(0x4000, MesiState::kExclusive);
    EXPECT_EQ(shadow_.readTaint(0x4000, 8), 0xff);
    EXPECT_EQ(shadow_.readTaint(0x4000 + 56, 8), 0xff);
}

TEST_F(ShadowL1Test, ClearAndWriteTaint)
{
    l1d_.fill(0x4000, MesiState::kExclusive);
    shadow_.clearTaint(0x4000, 8);
    EXPECT_EQ(shadow_.readTaint(0x4000, 8), 0x00);
    // Neighboring bytes in the line keep their taint.
    EXPECT_EQ(shadow_.readTaint(0x4008, 8), 0xff);
    // A store with a partially tainted value overwrites per byte.
    shadow_.writeTaint(0x4000, 4, 0x05);
    EXPECT_EQ(shadow_.readTaint(0x4000, 4), 0x05);
    EXPECT_EQ(shadow_.readTaint(0x4000, 8), 0x05);
}

TEST_F(ShadowL1Test, EvictionRestoresTaint)
{
    l1d_.fill(0x4000, MesiState::kExclusive);
    shadow_.clearTaint(0x4000, 64);
    EXPECT_EQ(shadow_.readTaint(0x4000, 8), 0x00);
    l1d_.invalidate(0x4000);
    EXPECT_EQ(shadow_.readTaint(0x4000, 8), 0xff);
    // Refill: tainted again (taint was lost with the line).
    l1d_.fill(0x4000, MesiState::kExclusive);
    EXPECT_EQ(shadow_.readTaint(0x4000, 8), 0xff);
}

TEST_F(ShadowL1Test, ConflictEvictionViaLru)
{
    // Fill one set beyond capacity; the shadow entry is recycled
    // and the evicted line's cleared taint must not leak into the
    // new occupant.
    const uint64_t set_stride = 64ull * l1d_.numSets();
    l1d_.fill(0x0, MesiState::kExclusive);
    shadow_.clearTaint(0x0, 64);
    for (unsigned w = 1; w <= 8; ++w)
        l1d_.fill(w * set_stride, MesiState::kExclusive);
    EXPECT_FALSE(l1d_.contains(0x0));
    EXPECT_EQ(shadow_.readTaint(0x0, 8), 0xff);
    EXPECT_EQ(shadow_.readTaint(8 * set_stride, 8), 0xff);
}

TEST_F(ShadowL1Test, LineStraddleIsConservative)
{
    l1d_.fill(0x4000, MesiState::kExclusive);
    shadow_.clearTaint(0x4038, 8); // last 8 bytes of the line
    // An 8-byte read starting 4 bytes before the line end straddles
    // into the next (non-resident) line: tail bytes stay tainted.
    const uint8_t t = shadow_.readTaint(0x403c, 8);
    EXPECT_EQ(t & 0x0f, 0x00); // first 4 bytes clean
    EXPECT_EQ(t & 0xf0, 0xf0); // straddled bytes tainted
}

TEST(ShadowMemory, DefaultsTaintedAndPersists)
{
    ShadowMemory s;
    EXPECT_EQ(s.readTaint(0x123456, 8), 0xff);
    s.clearTaint(0x123456, 4);
    EXPECT_EQ(s.readTaint(0x123456, 8), 0xf0);
    // Unlike the shadow L1, taint state survives any cache churn.
    EXPECT_EQ(s.residentPages(), 1u);
    s.writeTaint(0x123456, 4, 0x0a);
    EXPECT_EQ(s.readTaint(0x123456, 4), 0x0a);
}

TEST(ShadowMemory, CrossPageClear)
{
    ShadowMemory s;
    const uint64_t addr = ShadowMemory::kPageBytes - 4;
    s.clearTaint(addr, 8);
    EXPECT_EQ(s.readTaint(addr, 8), 0x00);
    EXPECT_EQ(s.residentPages(), 2u);
}

} // namespace
} // namespace spt
