/**
 * @file
 * Simulator checkpointing (sim/snapshot.h): the byte-identity
 * contract behind checkpoint-forked sweeps.
 *
 * A cold run with the drain barrier armed executes the *same*
 * trajectory as a snapshot-writing run, so a run restored from that
 * snapshot must finish with a byte-identical stats.json. Pinned
 * here:
 *
 *  - cold-with-barrier vs. save vs. restore: identical SimResult
 *    and identical stats.json text,
 *  - snapshot byte-determinism (two saves of the same run match),
 *  - header introspection (Snapshotter::info),
 *  - restore rejection on scheme/program mismatch and truncation,
 *  - ExpRunner sweeps forked from one snapshot file are identical
 *    to cold barrier runs, at any worker count.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/logging.h"
#include "sim/exp_runner.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

// Big enough to warm caches/predictors before the barrier, small
// enough that the workload retires well past it (asserted below).
constexpr uint64_t kBarrier = 600;

EngineConfig
sptEngine()
{
    EngineConfig e;
    e.scheme = ProtectionScheme::kSpt;
    e.spt.method = UntaintMethod::kBackward;
    e.spt.shadow = ShadowKind::kShadowL1;
    return e;
}

SimConfig
barrierConfig()
{
    SimConfig cfg;
    cfg.engine = sptEngine();
    cfg.core.attack_model = AttackModel::kFuturistic;
    cfg.checkpoint_at_retires = kBarrier;
    return cfg;
}

/** The exact stats.json text the tools emit (spt_run/spt_ckpt). */
std::string
statsJson(const Simulator &sim, const SimResult &r)
{
    JsonWriter jw;
    jw.beginObject();
    jw.field("numCycles", r.cycles);
    jw.key("stats");
    sim.dumpStatsJson(jw);
    jw.endObject();
    return jw.str();
}

void
expectSameResult(const SimResult &a, const SimResult &b,
                 const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.termination, b.termination) << what;
}

TEST(Checkpoint, RestoreMatchesColdBarrierRunByteForByte)
{
    const Program program = makeHashTable(300, 300);

    // A: cold run that passes through the (hook-less) barrier.
    Simulator cold(program, barrierConfig());
    const SimResult ra = cold.run();
    ASSERT_TRUE(ra.halted);
    ASSERT_GT(ra.instructions, kBarrier)
        << "barrier past end of workload — test is vacuous";
    const std::string json_a = statsJson(cold, ra);

    // B: identical run, but serializing a snapshot at the barrier.
    std::ostringstream snap;
    Simulator saver(program, barrierConfig());
    saver.writeSnapshotTo(&snap);
    const SimResult rb = saver.run();
    expectSameResult(ra, rb, "cold vs save");
    EXPECT_EQ(json_a, statsJson(saver, rb));
    ASSERT_FALSE(snap.str().empty());

    // C: fresh machine resumed from B's snapshot.
    Simulator resumed(program, barrierConfig());
    std::istringstream in(snap.str());
    resumed.restoreSnapshot(in);
    EXPECT_TRUE(resumed.restored());
    const SimResult rc = resumed.run();
    expectSameResult(ra, rc, "cold vs restore");
    EXPECT_EQ(json_a, statsJson(resumed, rc));
}

TEST(Checkpoint, SnapshotBytesAreDeterministic)
{
    const Program program = makeHashTable(300, 300);
    std::string bytes[2];
    for (std::string &b : bytes) {
        std::ostringstream snap;
        Simulator sim(program, barrierConfig());
        sim.writeSnapshotTo(&snap);
        ASSERT_TRUE(sim.run().halted);
        b = snap.str();
    }
    ASSERT_FALSE(bytes[0].empty());
    EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(Checkpoint, InfoReadsTheHeader)
{
    const Program program = makeHashTable(300, 300);
    std::ostringstream snap;
    Simulator sim(program, barrierConfig());
    sim.writeSnapshotTo(&snap);
    ASSERT_TRUE(sim.run().halted);

    std::istringstream in(snap.str());
    const SnapshotInfo info = Snapshotter::info(in);
    EXPECT_EQ(info.version, 2u);
    // Retirement continues while the pipeline drains, so the barrier
    // count is a floor, not the exact capture point.
    EXPECT_GE(info.retired, kBarrier);
    EXPECT_GT(info.cycle, 0u);
    EXPECT_FALSE(info.engine_name.empty());
    EXPECT_EQ(info.code_size, static_cast<uint64_t>(program.size()));
    EXPECT_EQ(info.entry, static_cast<uint64_t>(program.entry()));
}

TEST(Checkpoint, RestoreRejectsMismatchesAndTruncation)
{
    const Program program = makeHashTable(300, 300);
    std::ostringstream snap;
    Simulator sim(program, barrierConfig());
    sim.writeSnapshotTo(&snap);
    ASSERT_TRUE(sim.run().halted);
    const std::string bytes = snap.str();

    { // Different protection scheme.
        SimConfig cfg = barrierConfig();
        cfg.engine = EngineConfig{};
        cfg.engine.scheme = ProtectionScheme::kStt;
        Simulator other(program, cfg);
        std::istringstream in(bytes);
        EXPECT_THROW(other.restoreSnapshot(in), FatalError);
    }
    { // Different program (fingerprint mismatch).
        const Program other_prog = makePointerChase(256, 1);
        Simulator other(other_prog, barrierConfig());
        std::istringstream in(bytes);
        EXPECT_THROW(other.restoreSnapshot(in), FatalError);
    }
    { // Truncated stream.
        Simulator other(program, barrierConfig());
        std::istringstream in(bytes.substr(0, bytes.size() / 2));
        EXPECT_THROW(other.restoreSnapshot(in), FatalError);
    }
    { // Garbage magic.
        Simulator other(program, barrierConfig());
        std::istringstream in(std::string(64, '\xee'));
        EXPECT_THROW(other.restoreSnapshot(in), FatalError);
    }
}

// The sweep-level contract: grid cells forked from one snapshot file
// are indistinguishable from cold runs that pass through the same
// barrier — for every worker count, fast-forward on or off.
TEST(Checkpoint, ExpRunnerForksMatchColdRuns)
{
    const Program program = makeHashTable(300, 300);
    const std::string path =
        testing::TempDir() + "spt_test_fork_snapshot.bin";

    { // Produce the shared warmed-up snapshot.
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.is_open());
        Simulator sim(program, barrierConfig());
        sim.writeSnapshotTo(&out);
        ASSERT_TRUE(sim.run().halted);
        out.close();
        ASSERT_FALSE(out.fail());
    }

    // Grid: {fork, cold} x {ff off, ff on}.
    std::vector<RunJob> grid;
    for (bool ff : {false, true}) {
        RunJob fork;
        fork.program = &program;
        fork.engine = sptEngine();
        fork.fast_forward = ff;
        fork.checkpoint = path;
        grid.push_back(fork);

        RunJob cold = fork;
        cold.checkpoint.clear();
        cold.checkpoint_at = kBarrier;
        grid.push_back(cold);
    }

    const std::vector<RunOutcome> serial = ExpRunner(1).run(grid);
    const std::vector<RunOutcome> pooled = ExpRunner(4).run(grid);
    ASSERT_EQ(serial.size(), grid.size());
    ASSERT_EQ(pooled.size(), grid.size());

    auto expect_equal = [](const RunOutcome &a, const RunOutcome &b,
                           const std::string &what) {
        expectSameResult(a.result, b.result, what.c_str());
        EXPECT_EQ(a.status, b.status) << what;
        EXPECT_EQ(a.engine_counters, b.engine_counters) << what;
        EXPECT_EQ(a.arch_regs, b.arch_regs) << what;
        ASSERT_EQ(a.engine_histograms.size(),
                  b.engine_histograms.size())
            << what;
        auto ita = a.engine_histograms.begin();
        auto itb = b.engine_histograms.begin();
        for (; ita != a.engine_histograms.end(); ++ita, ++itb) {
            EXPECT_EQ(ita->first, itb->first) << what;
            ASSERT_EQ(ita->second.numBuckets(),
                      itb->second.numBuckets())
                << what << " " << ita->first;
            EXPECT_EQ(ita->second.samples(), itb->second.samples())
                << what << " " << ita->first;
            for (size_t i = 0; i < ita->second.numBuckets(); ++i)
                EXPECT_EQ(ita->second.bucket(i),
                          itb->second.bucket(i))
                    << what << " " << ita->first << " bucket " << i;
        }
    };

    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(serial[i].result.halted) << "slot " << i;
        expect_equal(serial[i], pooled[i],
                     "jobs=1 vs jobs=4, slot " + std::to_string(i));
    }
    // Forked slot == its cold sibling (pairs are adjacent).
    expect_equal(serial[0], serial[1], "fork vs cold (ff off)");
    expect_equal(serial[2], serial[3], "fork vs cold (ff on)");

    std::remove(path.c_str());
}

} // namespace
} // namespace spt
