/**
 * @file
 * Pins the shared untaint-rule table (`src/core/untaint_rules.h`)
 * against the opcode traits and against an explicit golden
 * classification, and checks that `propagateForward` /
 * `propagateBackward` are pure functions of the table across every
 * taint-mask combination. The dynamic `SptEngine` and the static
 * knowledge pass both consume this table, so these tests are the
 * drift barrier between the two semantics.
 */

#include <gtest/gtest.h>

#include "core/untaint_rules.h"
#include "isa/opcode.h"

namespace spt {
namespace {

constexpr size_t kNumOps = static_cast<size_t>(Opcode::kNumOpcodes);

/** Builds a TaintMask with exactly the group bits of @p groups
 *  (0..15) set, via the byte-mask constructor. */
TaintMask
maskFromGroups(unsigned groups)
{
    uint8_t byte_mask = 0;
    if (groups & 1)
        byte_mask |= 0x01; // byte 0 -> group 0
    if (groups & 2)
        byte_mask |= 0x02; // byte 1 -> group 1
    if (groups & 4)
        byte_mask |= 0x04; // byte 2 -> group 2
    if (groups & 8)
        byte_mask |= 0x10; // byte 4 -> group 3
    return TaintMask::fromByteMask(byte_mask);
}

/** The paper's classification (Sections 6.5-6.6), written out
 *  explicitly so neither the traits table nor the rule table can
 *  silently reclassify an opcode. */
UntaintClass
goldenClass(Opcode op)
{
    switch (op) {
      case Opcode::kMov:
      case Opcode::kNot:
      case Opcode::kNeg:
        return UntaintClass::kCopy;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kXor:
      case Opcode::kAddi:
      case Opcode::kXori:
        return UntaintClass::kInvertible;
      case Opcode::kLi:
      case Opcode::kJal:
      case Opcode::kJalr:
        return UntaintClass::kImmediate;
      default:
        return UntaintClass::kOpaque;
    }
}

/** Ops whose output bytes depend only on the same byte lanes of the
 *  inputs — the group-precise forward-propagation set. */
bool
goldenLaneOp(Opcode op)
{
    switch (op) {
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
      case Opcode::kMov:
      case Opcode::kNot:
        return true;
      default:
        return false;
    }
}

TEST(RuleTables, MatchesOpTraitsForEveryOpcode)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        const auto op = static_cast<Opcode>(i);
        const OpTraits &t = opTraits(op);
        const UntaintRule &r = untaintRule(op);
        EXPECT_EQ(r.cls, t.untaint_class) << mnemonic(op);
        EXPECT_EQ(r.num_srcs, t.num_srcs) << mnemonic(op);
    }
}

TEST(RuleTables, MatchesGoldenClassification)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_EQ(untaintRule(op).cls, goldenClass(op))
            << mnemonic(op);
        EXPECT_EQ(untaintRule(op).lane_op, goldenLaneOp(op))
            << mnemonic(op);
        EXPECT_EQ(isLaneOp(op), goldenLaneOp(op)) << mnemonic(op);
    }
}

TEST(RuleTables, DerivedFlagsAreConsistent)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        const auto op = static_cast<Opcode>(i);
        const UntaintRule &r = untaintRule(op);
        EXPECT_EQ(r.output_public,
                  r.cls == UntaintClass::kImmediate)
            << mnemonic(op);
        EXPECT_EQ(r.invert_single,
                  r.cls == UntaintClass::kCopy ||
                      (r.cls == UntaintClass::kInvertible &&
                       r.num_srcs == 1))
            << mnemonic(op);
        EXPECT_EQ(r.invert_pair,
                  r.cls == UntaintClass::kInvertible &&
                      r.num_srcs == 2)
            << mnemonic(op);
        // A backward rule needs at least one source to untaint, and
        // public-output ops have nothing to infer backwards from.
        if (r.invert_single || r.invert_pair) {
            EXPECT_GE(r.num_srcs, 1u) << mnemonic(op);
            EXPECT_FALSE(r.output_public) << mnemonic(op);
        }
    }
}

TEST(RuleTables, ForwardIsPureFunctionOfTable)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        const auto op = static_cast<Opcode>(i);
        const UntaintRule &r = untaintRule(op);
        for (unsigned a = 0; a < 16; ++a) {
            for (unsigned b = 0; b < 16; ++b) {
                const TaintMask ma = maskFromGroups(a);
                const TaintMask mb = maskFromGroups(b);
                // Re-derive the expected result from the rule fields
                // alone (Section 6.5 forward semantics).
                TaintMask expected = TaintMask::none();
                if (!r.output_public) {
                    TaintMask combined = TaintMask::none();
                    if (r.num_srcs >= 1)
                        combined |= ma;
                    if (r.num_srcs >= 2)
                        combined |= mb;
                    if (combined.any())
                        expected = r.lane_op ? combined
                                             : TaintMask::all();
                }
                EXPECT_EQ(propagateForward(op, ma, mb), expected)
                    << mnemonic(op) << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(RuleTables, BackwardIsPureFunctionOfTable)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        const auto op = static_cast<Opcode>(i);
        const UntaintRule &r = untaintRule(op);
        for (unsigned s0 = 0; s0 < 16; ++s0) {
            for (unsigned s1 = 0; s1 < 16; ++s1) {
                for (unsigned d = 0; d < 16; ++d) {
                    const TaintMask m0 = maskFromGroups(s0);
                    const TaintMask m1 = maskFromGroups(s1);
                    const TaintMask md = maskFromGroups(d);
                    const BackwardUntaint got =
                        propagateBackward(op, m0, m1, md);
                    // Section 6.6: fires only on a fully untainted
                    // destination, at full-register granularity.
                    BackwardUntaint expected;
                    if (md.nothing()) {
                        if (r.invert_single) {
                            expected.untaint_src0 = m0.any();
                        } else if (r.invert_pair) {
                            if (m0.nothing() && m1.any())
                                expected.untaint_src1 = true;
                            else if (m1.nothing() && m0.any())
                                expected.untaint_src0 = true;
                        }
                    }
                    EXPECT_EQ(got.untaint_src0,
                              expected.untaint_src0)
                        << mnemonic(op) << " s0=" << s0
                        << " s1=" << s1 << " d=" << d;
                    EXPECT_EQ(got.untaint_src1,
                              expected.untaint_src1)
                        << mnemonic(op) << " s0=" << s0
                        << " s1=" << s1 << " d=" << d;
                }
            }
        }
    }
}

TEST(RuleTables, BackwardNeverFiresOnTaintedDest)
{
    for (size_t i = 0; i < kNumOps; ++i) {
        const auto op = static_cast<Opcode>(i);
        for (unsigned d = 1; d < 16; ++d) {
            const BackwardUntaint got = propagateBackward(
                op, TaintMask::all(), TaintMask::all(),
                maskFromGroups(d));
            EXPECT_FALSE(got.untaint_src0) << mnemonic(op);
            EXPECT_FALSE(got.untaint_src1) << mnemonic(op);
        }
    }
}

} // namespace
} // namespace spt
