/**
 * @file
 * Runs the attacker-knowledge auditor (Lemma 2 validation) against
 * real workloads and fuzzed programs: every register SPT fully
 * untaints must carry a value the attacker can reconstruct from
 * declassified transmitter operands, program text, and instruction
 * semantics — with the exact value matching.
 */

#include <gtest/gtest.h>

#include "core/engine_factory.h"
#include "core/inferability_auditor.h"
#include "isa/assembler.h"
#include "isa/program_fuzzer.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

struct AuditOutcome {
    uint64_t violations;
    uint64_t mismatches;
    uint64_t audited;
    std::vector<std::string> log;
};

AuditOutcome
auditProgram(const Program &p, AttackModel model,
             ShadowKind shadow = ShadowKind::kShadowMem,
             uint64_t max_cycles = 1'000'000)
{
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSpt;
    ec.spt.method = UntaintMethod::kBackward;
    ec.spt.shadow = shadow;
    CoreParams cp;
    cp.attack_model = model;
    cp.perfect_icache = true;
    Core core(p, cp, MemorySystemParams{}, makeEngine(ec));
    auto &engine = dynamic_cast<SptEngine &>(core.engine());
    InferabilityAuditor auditor(core, engine);
    while (!core.halted() && core.cycle() < max_cycles) {
        core.tick();
        auditor.tick();
    }
    EXPECT_TRUE(core.halted());
    auditor.finalize();
    return {auditor.violations(), auditor.mismatches(),
            auditor.auditedUntaints(), auditor.violationLog()};
}

void
expectClean(const AuditOutcome &out, double tolerance = 0.025)
{
    // A value mismatch would mean an untaint rule inferred the
    // wrong value — an outright soundness bug. Must never happen.
    EXPECT_EQ(out.mismatches, 0u)
        << (out.log.empty() ? "" : out.log.front());
    // The auditor's knowledge base is all-or-nothing per register,
    // while SPT tracks partial-access-mode (byte-lane) taint; a
    // value public only lane-wise is beyond the auditor's reach.
    // Tolerate a small underived residue from that gap.
    EXPECT_LE(static_cast<double>(out.violations),
              tolerance * static_cast<double>(out.audited) + 0.5)
        << (out.log.empty() ? "" : out.log.front());
    EXPECT_GT(out.audited, 0u) << "auditor never engaged";
}

TEST(Inferability, BackwardChainValuesCheckOut)
{
    // The Figure 4 pattern with real values: the auditor must be
    // able to reconstruct r1 = r0 - r2 exactly.
    const Program p = assemble(R"(
    .data
cell:
    .quad 1234
    .text
    li   s0, 20
    li   t0, 0x100000
loop:
    ld   s1, 0(t0)
    li   s2, 8
    add  s3, s1, s2
    ld   s4, 0(s3)
    add  a7, a7, s4
    addi s0, s0, -1
    bnez s0, loop
    halt
)");
    for (AttackModel m :
         {AttackModel::kSpectre, AttackModel::kFuturistic})
        expectClean(auditProgram(p, m));
}

TEST(Inferability, WorkloadsAuditClean)
{
    for (const char *name : {"eventheap", "treesearch",
                             "ct-djbsort"}) {
        SCOPED_TRACE(name);
        const Workload &w = workloadByName(name);
        const AuditOutcome out = auditProgram(
            w.program, AttackModel::kFuturistic,
            ShadowKind::kShadowMem, 5'000'000);
        expectClean(out);
    }
}

TEST(Inferability, FuzzedProgramsAuditClean)
{
    for (uint64_t seed : {11, 12, 13, 14}) {
        SCOPED_TRACE(seed);
        const Program p = fuzzProgram(seed);
        for (AttackModel m :
             {AttackModel::kSpectre, AttackModel::kFuturistic}) {
            // Fuzzed programs are dense in sub-width loads/stores,
            // which exercise SPT's byte-lane taint precision; the
            // all-or-nothing auditor cannot follow lane-partial
            // knowledge, so allow a larger underived residue here.
            // Mismatches (the soundness check) must still be zero.
            expectClean(auditProgram(p, m), 0.10);
        }
    }
}

TEST(Inferability, StlSkipsAccountForEveryUntaint)
{
    // Forwarding-heavy victim: each iteration stores public data and
    // immediately reloads it, so the load's untaint arrives via
    // store-to-load forwarding (Section 6.7) — outside the auditor's
    // model and skipped, but it must still be *counted*.
    const Program p = assemble(R"(
    .text
    li   t0, 0x100000
    li   t1, 42
    li   s0, 50
loop:
    sd   t1, 0(t0)
    ld   t2, 0(t0)
    add  a7, a7, t2
    addi t1, t1, 3
    addi s0, s0, -1
    bnez s0, loop
    halt
)");
    EngineConfig ec;
    ec.scheme = ProtectionScheme::kSpt;
    ec.spt.method = UntaintMethod::kBackward;
    ec.spt.shadow = ShadowKind::kShadowMem;
    CoreParams cp;
    cp.attack_model = AttackModel::kFuturistic;
    cp.perfect_icache = true;
    Core core(p, cp, MemorySystemParams{}, makeEngine(ec));
    auto &engine = dynamic_cast<SptEngine &>(core.engine());
    InferabilityAuditor auditor(core, engine);
    while (!core.halted() && core.cycle() < 1'000'000) {
        core.tick();
        auditor.tick();
    }
    ASSERT_TRUE(core.halted());
    auditor.finalize();

    EXPECT_GT(auditor.stlSkipped(), 0u)
        << "store-to-load forwarding never engaged";
    // Conservation: every destination untaint the auditor observed
    // is either audited, expired unresolved, or an STL skip —
    // nothing silently falls through.
    EXPECT_EQ(auditor.observedUntaints(),
              auditor.auditedUntaints() + auditor.windowClosed() +
                  auditor.stlSkipped());
    EXPECT_EQ(engine.stats().get("audit.stl_skipped"),
              auditor.stlSkipped());
    EXPECT_EQ(auditor.mismatches(), 0u);
}

TEST(Inferability, AccountingHoldsOnWorkloads)
{
    for (const char *name : {"eventheap", "ct-djbsort"}) {
        SCOPED_TRACE(name);
        const Workload &w = workloadByName(name);
        EngineConfig ec;
        ec.scheme = ProtectionScheme::kSpt;
        ec.spt.method = UntaintMethod::kBackward;
        ec.spt.shadow = ShadowKind::kShadowMem;
        CoreParams cp;
        cp.attack_model = AttackModel::kFuturistic;
        cp.perfect_icache = true;
        Core core(w.program, cp, MemorySystemParams{},
                  makeEngine(ec));
        auto &engine = dynamic_cast<SptEngine &>(core.engine());
        InferabilityAuditor auditor(core, engine);
        while (!core.halted() && core.cycle() < 5'000'000) {
            core.tick();
            auditor.tick();
        }
        ASSERT_TRUE(core.halted());
        auditor.finalize();
        EXPECT_EQ(auditor.observedUntaints(),
                  auditor.auditedUntaints() +
                      auditor.windowClosed() +
                      auditor.stlSkipped());
    }
}

TEST(Inferability, ShadowL1VariantAuditsClean)
{
    const Workload &w = workloadByName("treesearch");
    const AuditOutcome out =
        auditProgram(w.program, AttackModel::kFuturistic,
                     ShadowKind::kShadowL1, 5'000'000);
    expectClean(out);
}

} // namespace
} // namespace spt
