/**
 * @file
 * Memory-hierarchy tests: set-associative cache behavior (LRU,
 * eviction, MESI upgrades, observers), MSHR limits and merging,
 * mesh NoC distances, the full MemorySystem timing model including
 * in-flight-fill semantics, the MESI directory, and the attacker
 * probe/flush interface.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.h"

namespace spt {
namespace {

CacheParams
tinyCache()
{
    // 4 sets x 2 ways x 64B = 512B.
    return {"tiny", 512, 64, 2, 2};
}

TEST(Cache, HitAfterFill)
{
    SetAssocCache c(tinyCache());
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.access(0x1000, false));
    c.fill(0x1000, MesiState::kExclusive);
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103f, false)); // same line
    EXPECT_FALSE(c.contains(0x1040));     // next line
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(tinyCache());
    // Three lines mapping to the same set (stride = 4 sets * 64B).
    const uint64_t a = 0x0000, b = 0x0100, d = 0x0200;
    c.fill(a, MesiState::kExclusive);
    c.fill(b, MesiState::kExclusive);
    c.access(a, false); // make b the LRU
    const auto ev = c.fill(d, MesiState::kExclusive);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.line_addr, b);
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
}

TEST(Cache, DirtyEvictionAndMesiUpgrade)
{
    SetAssocCache c(tinyCache());
    c.fill(0x0, MesiState::kExclusive);
    EXPECT_EQ(c.state(0x0), MesiState::kExclusive);
    c.access(0x0, true); // write: silent E->M upgrade
    EXPECT_EQ(c.state(0x0), MesiState::kModified);
    c.fill(0x100, MesiState::kShared);
    const auto ev = c.fill(0x200, MesiState::kShared); // evicts 0x0
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    SetAssocCache c(tinyCache());
    EXPECT_FALSE(c.invalidate(0x40).has_value());
    c.fill(0x40, MesiState::kModified);
    const auto dirty = c.invalidate(0x40);
    ASSERT_TRUE(dirty.has_value());
    EXPECT_TRUE(*dirty);
    EXPECT_FALSE(c.contains(0x40));
}

class RecordingObserver : public CacheObserver
{
  public:
    struct Event {
        bool fill;
        uint64_t line;
        unsigned set, way;
    };
    std::vector<Event> events;
    void onFill(uint64_t line, unsigned set, unsigned way) override
    {
        events.push_back({true, line, set, way});
    }
    void onEvict(uint64_t line, unsigned set, unsigned way) override
    {
        events.push_back({false, line, set, way});
    }
};

TEST(Cache, ObserverSeesFillsAndEvictions)
{
    SetAssocCache c(tinyCache());
    RecordingObserver obs;
    c.setObserver(&obs);
    c.fill(0x0, MesiState::kExclusive);
    c.fill(0x100, MesiState::kExclusive);
    c.fill(0x200, MesiState::kExclusive); // evicts 0x0
    ASSERT_EQ(obs.events.size(), 4u);
    EXPECT_TRUE(obs.events[0].fill);
    EXPECT_FALSE(obs.events[2].fill); // the eviction of 0x0
    EXPECT_EQ(obs.events[2].line, 0x0u);
    // Eviction way matches the subsequent fill way.
    EXPECT_EQ(obs.events[2].way, obs.events[3].way);
}

TEST(Mshr, MergeAndReject)
{
    MshrFile m(2);
    auto a = m.allocate(0x1000, 0, 100);
    EXPECT_TRUE(a.accepted);
    EXPECT_FALSE(a.merged);
    auto b = m.allocate(0x1000, 5, 200); // same line: merge
    EXPECT_TRUE(b.accepted);
    EXPECT_TRUE(b.merged);
    EXPECT_EQ(b.ready_cycle, 100u);
    m.allocate(0x2000, 5, 100);
    auto rej = m.allocate(0x3000, 6, 100); // full
    EXPECT_FALSE(rej.accepted);
    // After completion cycles pass, entries free up.
    auto ok = m.allocate(0x3000, 101, 300);
    EXPECT_TRUE(ok.accepted);
}

TEST(Mshr, RemainingLatency)
{
    MshrFile m(4);
    m.allocate(0x1000, 0, 50);
    EXPECT_EQ(m.remainingLatency(0x1000, 10), 40u);
    EXPECT_EQ(m.remainingLatency(0x1000, 50), 0u);
    EXPECT_EQ(m.remainingLatency(0x9999, 10), 0u);
}

TEST(Noc, ManhattanHops)
{
    MeshNoc noc(4, 2, 1, 0, 7, 64);
    EXPECT_EQ(noc.hops(0, 0), 0u);
    EXPECT_EQ(noc.hops(0, 3), 3u);   // same row
    EXPECT_EQ(noc.hops(0, 4), 1u);   // one row down
    EXPECT_EQ(noc.hops(0, 7), 4u);   // opposite corner
    EXPECT_EQ(noc.dramRoundTrip(), 8u);
    // Banks are spread by line address.
    EXPECT_NE(noc.bankOf(0), noc.bankOf(64));
}

TEST(MemorySystem, HitLevelsAndLatencies)
{
    MemorySystem m;
    // Cold: DRAM.
    auto r = m.access(0x5000, AccessKind::kLoad, 0);
    EXPECT_EQ(r.hit_level, 4u);
    EXPECT_GT(r.latency, 100u);
    // Everything filled inclusively: now an L1 hit.
    r = m.access(0x5000, AccessKind::kLoad, 1000);
    EXPECT_EQ(r.hit_level, 1u);
    EXPECT_EQ(r.latency, 2u);
    // Evict from L1 only: next access hits L2.
    m.l1d().invalidate(0x5000);
    r = m.access(0x5000, AccessKind::kLoad, 2000);
    EXPECT_EQ(r.hit_level, 2u);
    EXPECT_EQ(r.latency, 2u + 20u);
    // Evict from L1+L2: hits L3 and pays NoC hops.
    m.l1d().invalidate(0x5000);
    m.l2().invalidate(0x5000);
    r = m.access(0x5000, AccessKind::kLoad, 3000);
    EXPECT_EQ(r.hit_level, 3u);
    EXPECT_GE(r.latency, 2u + 20u + 40u);
}

TEST(MemorySystem, SameLineAccessWaitsForInFlightFill)
{
    MemorySystem m;
    const auto miss = m.access(0x8000, AccessKind::kLoad, 0);
    EXPECT_EQ(miss.hit_level, 4u);
    // A dependent access 10 cycles later must wait out the fill,
    // not observe an instant 2-cycle hit.
    const auto dep = m.access(0x8008, AccessKind::kLoad, 10);
    EXPECT_EQ(dep.hit_level, 1u);
    EXPECT_GE(dep.latency, miss.latency - 10);
    // Once the fill has landed, ordinary hit latency resumes.
    const auto hit =
        m.access(0x8008, AccessKind::kLoad, miss.latency + 1);
    EXPECT_EQ(hit.latency, 2u);
}

TEST(MemorySystem, MshrsRejectWhenFull)
{
    MemorySystemParams params;
    params.num_mshrs = 2;
    MemorySystem m(params);
    EXPECT_TRUE(m.access(0x10000, AccessKind::kLoad, 0).accepted);
    EXPECT_TRUE(m.access(0x20000, AccessKind::kLoad, 0).accepted);
    EXPECT_FALSE(m.access(0x30000, AccessKind::kLoad, 0).accepted);
    // Ifetches are not MSHR-limited.
    EXPECT_TRUE(m.access(0x40000, AccessKind::kIfetch, 0).accepted);
}

TEST(MemorySystem, AttackerProbeAndFlush)
{
    MemorySystem m;
    m.access(0x7000, AccessKind::kLoad, 0);
    EXPECT_TRUE(m.attackerProbeL3(0x7000));
    EXPECT_TRUE(m.inL1D(0x7000));
    m.attackerFlush(0x7000);
    EXPECT_FALSE(m.attackerProbeL3(0x7000));
    EXPECT_FALSE(m.inL1D(0x7000));
    EXPECT_FALSE(m.inL2(0x7000));
}

TEST(MesiDirectory, ExclusiveThenSharedThenModified)
{
    MesiDirectory dir(2);
    // First reader gets Exclusive.
    auto r = dir.getShared(0, 0x100);
    EXPECT_EQ(r.grant, MesiState::kExclusive);
    EXPECT_EQ(dir.agentState(0, 0x100), MesiState::kExclusive);
    // Second reader downgrades to Shared.
    r = dir.getShared(1, 0x100);
    EXPECT_EQ(r.grant, MesiState::kShared);
    EXPECT_TRUE(r.from_owner);
    EXPECT_EQ(dir.agentState(0, 0x100), MesiState::kShared);
    // Writer invalidates the other sharer.
    r = dir.getModified(0, 0x100);
    EXPECT_EQ(r.grant, MesiState::kModified);
    ASSERT_EQ(r.invalidated.size(), 1u);
    EXPECT_EQ(r.invalidated[0], 1u);
    EXPECT_EQ(dir.agentState(1, 0x100), MesiState::kInvalid);
    EXPECT_EQ(dir.agentState(0, 0x100), MesiState::kModified);
}

TEST(MesiDirectory, WritebackReleasesOwnership)
{
    MesiDirectory dir(2);
    dir.getModified(0, 0x200);
    dir.putLine(0, 0x200);
    EXPECT_EQ(dir.agentState(0, 0x200), MesiState::kInvalid);
    // A fresh reader gets Exclusive again.
    auto r = dir.getShared(1, 0x200);
    EXPECT_EQ(r.grant, MesiState::kExclusive);
    EXPECT_FALSE(r.from_owner);
}

TEST(MesiDirectory, ReRequestBySoleOwnerKeepsState)
{
    MesiDirectory dir(2);
    dir.getModified(0, 0x300);
    auto r = dir.getShared(0, 0x300);
    EXPECT_EQ(r.grant, MesiState::kModified);
}

} // namespace
} // namespace spt
