/**
 * @file
 * Branch-prediction tests: saturating counters, bimodal, gshare,
 * TAGE pattern learning, loop predictor trip counts, BTB, RAS, and
 * the combined BPU's checkpoint/restore/repair protocol.
 */

#include <gtest/gtest.h>

#include "bp/bpu.h"
#include "bp/simple_predictors.h"

namespace spt {
namespace {

TEST(SatCounter, SaturatesBothWays)
{
    SatCounter c(2, 0);
    EXPECT_TRUE(c.saturatedLow());
    c.increment();
    c.increment();
    c.increment();
    c.increment();
    EXPECT_TRUE(c.saturatedHigh());
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.taken());
    c.decrement();
    c.decrement();
    EXPECT_FALSE(c.taken());
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor bp(10);
    const uint64_t pc = 0x40;
    for (int i = 0; i < 4; ++i)
        bp.update(pc, true);
    EXPECT_TRUE(bp.predict(pc));
    for (int i = 0; i < 8; ++i)
        bp.update(pc, false);
    EXPECT_FALSE(bp.predict(pc));
}

TEST(Gshare, LearnsHistoryCorrelatedPattern)
{
    GsharePredictor gp(12, 8);
    const uint64_t pc = 0x80;
    // Alternating pattern: bimodal can't learn it, history can.
    // Core-style recovery: restore + replay actual outcome on a
    // misprediction so speculative history tracks reality.
    int correct = 0;
    bool taken = false;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        const auto cp = gp.checkpoint();
        const bool pred = gp.predict(pc);
        if (pred != taken) {
            gp.restore(cp);
            gp.restore({{(cp.words[0] << 1) |
                         (taken ? 1u : 0u)}}); // repair
        }
        if (i >= 200)
            correct += pred == taken;
        gp.update(pc, taken);
    }
    EXPECT_GT(correct, 180); // > 90% in the second half
}

TEST(Gshare, CheckpointRestoresHistory)
{
    GsharePredictor gp(12, 8);
    const uint64_t pc = 5;
    // Train the branch toward taken so predictions push 1-bits.
    for (int i = 0; i < 4; ++i)
        gp.update(pc, true);
    gp.predict(pc);
    const auto cp = gp.checkpoint();
    const uint64_t h = gp.history();
    gp.predict(pc);
    gp.predict(pc);
    EXPECT_NE(gp.history(), h);
    gp.restore(cp);
    EXPECT_EQ(gp.history(), h);
}

TEST(Tage, LearnsLongPattern)
{
    TagePredictor tage;
    const uint64_t pc = 0xbeef;
    // Period-7 pattern requires real history correlation. Use the
    // core's mispredict-recovery protocol (restore + replay the
    // actual outcome) to keep speculative history truthful.
    const bool pattern[7] = {true, true, false, true,
                             false, false, true};
    int correct = 0;
    for (int i = 0; i < 2100; ++i) {
        const bool taken = pattern[i % 7];
        const auto cp = tage.checkpoint();
        const bool pred = tage.predict(pc);
        if (pred != taken) {
            tage.restore(cp);
            tage.pushSpecBit(taken);
        }
        if (i >= 1400)
            correct += pred == taken;
        tage.update(pc, taken);
    }
    EXPECT_GT(correct, 630); // > 90% of the last 700
}

TEST(Tage, CheckpointRoundTrip)
{
    TagePredictor tage;
    for (int i = 0; i < 50; ++i) {
        tage.predict(i);
        tage.update(i, i % 3 == 0);
    }
    const BpCheckpoint cp = tage.checkpoint();
    // Wrong-path predictions...
    for (int i = 0; i < 20; ++i)
        tage.predict(1000 + i);
    tage.restore(cp);
    EXPECT_EQ(tage.checkpoint().words, cp.words);
}

TEST(LoopPredictor, LearnsTripCount)
{
    LoopPredictor lp;
    const uint64_t pc = 0x77;
    // A loop that runs exactly 5 taken iterations then exits.
    for (int trip = 0; trip < 6; ++trip) {
        for (int i = 0; i < 5; ++i)
            lp.update(pc, true);
        lp.update(pc, false);
    }
    EXPECT_TRUE(lp.confident(pc));
    EXPECT_EQ(lp.tripCount(pc), 5u);
    // Align the speculative iteration counter (as the core does
    // after a squash) and check the predicted pattern.
    lp.resyncSpeculative();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(lp.predict(pc), std::make_optional(true));
    EXPECT_EQ(lp.predict(pc), std::make_optional(false));
}

TEST(LoopPredictor, IrregularLoopLosesConfidence)
{
    LoopPredictor lp;
    const uint64_t pc = 0x99;
    unsigned trips[] = {5, 7, 5, 3, 6, 4};
    for (unsigned t : trips) {
        for (unsigned i = 0; i < t; ++i)
            lp.update(pc, true);
        lp.update(pc, false);
    }
    EXPECT_FALSE(lp.confident(pc));
}

TEST(Btb, StoresAndEvicts)
{
    Btb btb(16, 2);
    EXPECT_FALSE(btb.lookup(100).has_value());
    btb.update(100, 555);
    EXPECT_EQ(btb.lookup(100), std::make_optional<uint64_t>(555));
    btb.update(100, 777); // refresh target
    EXPECT_EQ(btb.lookup(100), std::make_optional<uint64_t>(777));
    // Fill the set (pcs aliasing set 100 % 16 == 4): 2 ways.
    btb.update(100 + 16, 1);
    btb.update(100 + 32, 2); // evicts LRU (pc 100)
    EXPECT_FALSE(btb.lookup(100).has_value());
    EXPECT_TRUE(btb.lookup(100 + 16).has_value());
}

TEST(Ras, PushPopAndCheckpoint)
{
    ReturnAddressStack ras;
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // empty pop is benign
    ras.push(10);
    ras.push(20);
    const auto cp = ras.checkpoint();
    ras.push(30);
    EXPECT_EQ(ras.pop(), 30u);
    EXPECT_EQ(ras.pop(), 20u);
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, WrapsAtCapacity)
{
    ReturnAddressStack ras;
    for (unsigned i = 0; i < ReturnAddressStack::kCapacity + 5; ++i)
        ras.push(i);
    EXPECT_EQ(ras.depth(), ReturnAddressStack::kCapacity);
    EXPECT_EQ(ras.pop(), ReturnAddressStack::kCapacity + 4);
}

TEST(Bpu, CallReturnPrediction)
{
    BranchPredictorUnit bpu;
    const Instruction call{Opcode::kJal, kRegRa, 0, 0, 100};
    const Instruction ret{Opcode::kJalr, kRegZero, kRegRa, 0, 0};
    EXPECT_TRUE(BranchPredictorUnit::isCall(call));
    EXPECT_TRUE(BranchPredictorUnit::isReturn(ret));

    auto p = bpu.predict(10, call);
    EXPECT_EQ(p.next_pc, 110u);
    p = bpu.predict(110, ret); // predicted return to call+1
    EXPECT_EQ(p.next_pc, 11u);
}

TEST(Bpu, IndirectUsesBtbAfterTraining)
{
    BranchPredictorUnit bpu;
    const Instruction ind{Opcode::kJalr, kRegZero, 5, 0, 0};
    // Untrained: falls through.
    auto p = bpu.predict(50, ind);
    EXPECT_EQ(p.next_pc, 51u);
    bpu.commitUpdate(50, ind, true, 400);
    p = bpu.predict(50, ind);
    EXPECT_EQ(p.next_pc, 400u);
}

TEST(Bpu, RestoreAndRepairAfterMispredict)
{
    BranchPredictorUnit bpu;
    const Instruction br{Opcode::kBeq, 0, 1, 2, 8};
    const auto cp = bpu.checkpoint();
    bpu.predict(30, br); // speculative history advanced
    // Mispredict: restore pre-prediction state, replay actual.
    bpu.restore(cp);
    bpu.repair(30, br, true);
    // A call on the wrong path must not survive the restore.
    const Instruction call{Opcode::kJal, kRegRa, 0, 0, 5};
    const auto cp2 = bpu.checkpoint();
    bpu.predict(40, call);
    bpu.restore(cp2);
    const Instruction ret{Opcode::kJalr, kRegZero, kRegRa, 0, 0};
    auto p = bpu.predict(99, ret);
    EXPECT_EQ(p.next_pc, 100u); // empty RAS: fall through
}

} // namespace
} // namespace spt
