/**
 * @file
 * Sweep-as-a-service (sim/sweep_service.h): daemon round-trips over
 * a temp Unix socket, byte-equality of service-executed outcomes
 * with in-process runs, concurrent-client determinism, structured
 * protocol errors that never kill the daemon, and clean shutdown.
 *
 * Fault tolerance (DESIGN.md §16): duplicate-token dedup, admission
 * control ("overloaded"), request stall deadlines, journal-backed
 * recovery after truncation, and kill -9 of a real spt_sweepd child
 * mid-batch with byte-identical resumed results at any worker
 * count.
 */

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "analysis/knowledge_analysis.h"
#include "analysis/knowledge_map.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "core/knowledge_map.h"
#include "isa/program.h"
#include "sim/exp_runner.h"
#include "sim/result_cache.h"
#include "sim/service_chaos.h"
#include "sim/sweep_service.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

/** Starts a daemon on a fresh socket in a fresh cache dir for one
 *  test; stops and joins it on destruction. */
struct DaemonFixture {
    explicit DaemonFixture(const char *name)
    {
        // Unix sockets cap sun_path around 108 bytes; keep the
        // path short and rooted in /tmp directly.
        socket_path = "/tmp/spt_" + std::string(name) + "_" +
                      std::to_string(::getpid()) + ".sock";
        cache_dir = testing::TempDir() + name + "_cache";
        std::filesystem::remove_all(cache_dir);
        SweepServiceOptions opt;
        opt.socket_path = socket_path;
        opt.jobs = 2;
        opt.cache_dir = cache_dir;
        service = std::make_unique<SweepService>(opt);
        service->start();
    }

    ~DaemonFixture()
    {
        service->stop();
        service->wait();
    }

    std::string socket_path;
    std::string cache_dir;
    std::unique_ptr<SweepService> service;
};

std::vector<RunJob>
smallGrid(const Program &prog)
{
    std::vector<RunJob> grid;
    for (ProtectionScheme scheme :
         {ProtectionScheme::kUnsafeBaseline, ProtectionScheme::kSpt})
        for (AttackModel model : {AttackModel::kFuturistic,
                                  AttackModel::kSpectre}) {
            RunJob job;
            job.program = &prog;
            job.engine.scheme = scheme;
            job.attack_model = model;
            grid.push_back(job);
        }
    return grid;
}

TEST(SweepService, RoundTripMatchesInProcessRun)
{
    DaemonFixture daemon("svc_roundtrip");
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = smallGrid(prog);

    // Route through the daemon explicitly via the policy (the env
    // path is covered by the fig drivers / CI gate).
    RunnerPolicy policy;
    policy.service_socket = daemon.socket_path;
    ExpRunner client(1);
    const std::vector<RunOutcome> via = client.run(grid, policy);
    EXPECT_TRUE(client.lastSweep().via_service);
    EXPECT_EQ(client.lastSweep().workers, 2u); // daemon's pool
    EXPECT_EQ(client.lastSweep().cache.misses, grid.size());

    RunnerPolicy local;
    local.service_socket = kNoSweepService;
    const std::vector<RunOutcome> ref =
        ExpRunner(1).run(grid, local);

    ASSERT_EQ(via.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        // Everything but host timing must be byte-identical to the
        // in-process run — counters, histograms, registers, status.
        EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(via[i]),
                  ResultCache::encodeOutcomeDeterministic(ref[i]))
            << "slot " << i;
        EXPECT_EQ(via[i].job_desc, ref[i].job_desc);
    }

    // Resubmitting the same grid is answered from the warm cache.
    const std::vector<RunOutcome> warm = client.run(grid, policy);
    EXPECT_EQ(client.lastSweep().cache.hits, grid.size());
    for (size_t i = 0; i < warm.size(); ++i)
        EXPECT_EQ(ResultCache::encodeOutcome(via[i]),
                  ResultCache::encodeOutcome(warm[i]))
            << "slot " << i;

    const ServiceStats totals = daemon.service->stats();
    EXPECT_EQ(totals.batches_executed, 2u);
    EXPECT_EQ(totals.jobs_executed, 2 * grid.size());
}

TEST(SweepService, ShipsArbitraryProgramsAndKnowledgeMaps)
{
    DaemonFixture daemon("svc_payload");
    // A locally built program + map: neither exists in any
    // registry, so this only works if content actually travels.
    const Program prog = makeHashTable(200, 200);
    const Cfg cfg(prog);
    const KnowledgeAnalysis analysis(cfg);
    const KnowledgeMap map = emitKnowledgeMap(analysis);

    RunJob job;
    job.program = &prog;
    job.engine.scheme = ProtectionScheme::kSpt;
    job.engine.spt.knowledge_map = &map;
    job.label = "shipped/km";
    const std::vector<RunJob> grid = {job, job}; // memo dup too

    RunnerPolicy policy;
    policy.service_socket = daemon.socket_path;
    ExpRunner client(1);
    const std::vector<RunOutcome> via = client.run(grid, policy);
    EXPECT_EQ(client.lastSweep().memo_hits, 1u);
    EXPECT_TRUE(via[1].memoized);
    EXPECT_EQ(via[0].job_desc, "shipped/km");

    RunnerPolicy local;
    local.service_socket = kNoSweepService;
    const std::vector<RunOutcome> ref =
        ExpRunner(1).run(grid, local);
    EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(via[0]),
              ResultCache::encodeOutcomeDeterministic(ref[0]));
    EXPECT_TRUE(via[0].result.halted);
}

TEST(SweepService, ConcurrentClientsGetDeterministicResults)
{
    DaemonFixture daemon("svc_concurrent");
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = smallGrid(prog);

    constexpr int kClients = 4;
    std::vector<std::vector<RunOutcome>> results(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            RunnerPolicy policy;
            policy.service_socket = daemon.socket_path;
            results[c] = ExpRunner(1).run(grid, policy);
        });
    for (std::thread &t : clients)
        t.join();

    for (int c = 1; c < kClients; ++c) {
        ASSERT_EQ(results[c].size(), grid.size());
        for (size_t i = 0; i < grid.size(); ++i)
            EXPECT_EQ(
                ResultCache::encodeOutcome(results[0][i]),
                ResultCache::encodeOutcome(results[c][i]))
                << "client " << c << " slot " << i;
    }
    // Batches executed strictly in submission order; after the
    // first, every identical batch is all cache hits.
    const ServiceStats totals = daemon.service->stats();
    EXPECT_EQ(totals.batches_executed,
              static_cast<uint64_t>(kClients));
    EXPECT_EQ(totals.cache.misses, grid.size());
    EXPECT_EQ(totals.cache.hits, (kClients - 1) * grid.size());
}

TEST(SweepService, FailuresSurfacePerSlotAndFailFast)
{
    DaemonFixture daemon("svc_failure");
    const Program prog = makePointerChase(256, 1);
    RunJob good;
    good.program = &prog;
    RunJob bad = good;
    bad.engine.scheme = static_cast<ProtectionScheme>(0xee);
    const std::vector<RunJob> grid = {good, bad};

    RunnerPolicy keep;
    keep.service_socket = daemon.socket_path;
    keep.keep_going = true;
    ExpRunner client(1);
    const std::vector<RunOutcome> out = client.run(grid, keep);
    EXPECT_EQ(out[0].status, RunStatus::kOk);
    EXPECT_EQ(out[1].status, RunStatus::kCrash);
    EXPECT_FALSE(out[1].error.empty());
    EXPECT_EQ(client.lastSweep().failed_jobs, 1u);

    // Fail-fast is re-imposed client-side; the daemon survives the
    // crashing job either way.
    RunnerPolicy fail_fast = keep;
    fail_fast.keep_going = false;
    EXPECT_THROW(client.run(grid, fail_fast), FatalError);
    const std::string ping =
        serviceRequest(daemon.socket_path, "{\"op\": \"ping\"}");
    EXPECT_TRUE(parseJson(ping).getBool("ok", false));
}

TEST(SweepService, MalformedRequestsGetStructuredErrors)
{
    DaemonFixture daemon("svc_malformed");

    // Not JSON at all.
    JsonValue resp = parseJson(
        serviceRequest(daemon.socket_path, "this is not json"));
    EXPECT_FALSE(resp.getBool("ok", true));
    EXPECT_FALSE(resp.getString("error", "").empty());

    // Valid JSON, unknown op.
    resp = parseJson(serviceRequest(daemon.socket_path,
                                    "{\"op\": \"frobnicate\"}"));
    EXPECT_FALSE(resp.getBool("ok", true));

    // Submit with a garbage program blob.
    resp = parseJson(serviceRequest(
        daemon.socket_path,
        "{\"op\": \"submit\", \"programs\": [\"deadbeef\"], "
        "\"jobs\": []}"));
    EXPECT_FALSE(resp.getBool("ok", true));

    // Status/result of a batch that never existed.
    resp = parseJson(serviceRequest(
        daemon.socket_path, "{\"op\": \"status\", \"batch\": 99}"));
    EXPECT_FALSE(resp.getBool("ok", true));

    // The daemon took four bad requests and still serves good ones.
    resp = parseJson(
        serviceRequest(daemon.socket_path, "{\"op\": \"ping\"}"));
    EXPECT_TRUE(resp.getBool("ok", false));
    resp = parseJson(
        serviceRequest(daemon.socket_path, "{\"op\": \"stats\"}"));
    EXPECT_TRUE(resp.getBool("ok", false));
    EXPECT_EQ(resp.at("batches_executed").asU64(), 0u);
}

// ------------------------------------------------------------------
// Fault tolerance (DESIGN.md §16)
// ------------------------------------------------------------------

std::string
toHex(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    for (const char c : bytes) {
        const uint8_t b = static_cast<uint8_t>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

/** Hand-built submit request mirroring the client codec (one
 *  program, jobs referencing it): lets a test speak raw protocol —
 *  submit without fetching, duplicate tokens, queue flooding —
 *  which runGridViaService's well-behaved loop never does. */
std::string
submitJson(const Program &prog, const std::vector<RunJob> &grid,
           const std::string &token)
{
    std::ostringstream os;
    programSave(prog, os);
    JsonWriter jw;
    jw.beginObject();
    jw.field("op", "submit");
    jw.field("capture_evidence", false);
    jw.field("token", token);
    jw.key("programs").beginArray();
    jw.value(toHex(os.str()));
    jw.endArray();
    jw.key("maps").beginArray().endArray();
    jw.key("jobs");
    jw.beginArray();
    for (const RunJob &job : grid) {
        jw.beginObject();
        jw.field("prog", static_cast<uint64_t>(0));
        jw.field("scheme",
                 static_cast<uint64_t>(job.engine.scheme));
        jw.field("method",
                 static_cast<uint64_t>(job.engine.spt.method));
        jw.field("shadow",
                 static_cast<uint64_t>(job.engine.spt.shadow));
        jw.field("bw", static_cast<uint64_t>(
                           job.engine.spt.broadcast_width));
        jw.field("storage",
                 static_cast<uint64_t>(job.engine.spt.storage));
        jw.field("mutation",
                 static_cast<uint64_t>(job.engine.spt.mutation));
        jw.field("attack",
                 static_cast<uint64_t>(job.attack_model));
        jw.field("seed", job.seed);
        jw.field("max_cycles", job.max_cycles);
        jw.field("trace", job.trace);
        jw.field("profile", job.profile);
        jw.field("interval_stats", job.interval_stats);
        jw.field("fault_seed", job.faults.seed);
        jw.key("fault_ppm").beginArray();
        for (const uint32_t ppm : job.faults.rate_ppm)
            jw.value(static_cast<uint64_t>(ppm));
        jw.endArray();
        jw.field("invariants", job.invariants);
        jw.field("watchdog", job.watchdog_cycles);
        jw.field("wall_timeout_bits",
                 std::bit_cast<uint64_t>(
                     job.wall_timeout_seconds));
        jw.field("fast_forward", job.fast_forward);
        jw.field("checkpoint_at", job.checkpoint_at);
        jw.field("checkpoint", job.checkpoint);
        jw.field("label", job.label);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    return jw.str();
}

/** Polls the status op until @p batch reports done. */
void
awaitBatch(const std::string &socket_path, uint64_t batch)
{
    for (int i = 0; i < 2000; ++i) {
        const JsonValue st = parseJson(serviceRequest(
            socket_path,
            "{\"op\": \"status\", \"batch\": " +
                std::to_string(batch) + "}"));
        ASSERT_TRUE(st.getBool("ok", false));
        if (st.getString("state", "") == "done")
            return;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }
    FAIL() << "batch " << batch << " never completed";
}

TEST(SweepServiceFault, DuplicateTokensAnswerTheSameBatch)
{
    DaemonFixture daemon("svc_dedup");
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = smallGrid(prog);
    const std::string submit =
        submitJson(prog, grid, "tok-dedup");

    const JsonValue first =
        parseJson(serviceRequest(daemon.socket_path, submit));
    ASSERT_TRUE(first.getBool("ok", false));
    EXPECT_FALSE(first.getBool("dup", true));
    const uint64_t id = first.at("batch").asU64();

    // Identical resubmission (a client retrying a lost response):
    // same batch, no second execution.
    const JsonValue dup =
        parseJson(serviceRequest(daemon.socket_path, submit));
    ASSERT_TRUE(dup.getBool("ok", false));
    EXPECT_TRUE(dup.getBool("dup", false));
    EXPECT_EQ(dup.at("batch").asU64(), id);
    EXPECT_EQ(daemon.service->stats().dedup_hits, 1u);

    awaitBatch(daemon.socket_path, id);
    const JsonValue result = parseJson(serviceRequest(
        daemon.socket_path,
        "{\"op\": \"result\", \"batch\": " + std::to_string(id) +
            "}"));
    ASSERT_TRUE(result.getBool("ok", false));
    EXPECT_EQ(result.at("outcomes").asArray().size(),
              grid.size());

    // Fetching released the batch and retired its token: the same
    // token now names a fresh submission.
    const JsonValue again =
        parseJson(serviceRequest(daemon.socket_path, submit));
    ASSERT_TRUE(again.getBool("ok", false));
    EXPECT_FALSE(again.getBool("dup", true));
    EXPECT_NE(again.at("batch").asU64(), id);
    awaitBatch(daemon.socket_path, again.at("batch").asU64());
}

TEST(SweepServiceFault, OverloadedSubmitsGetStructuredErrors)
{
    const std::string socket_path =
        "/tmp/spt_svc_overload_" + std::to_string(::getpid()) +
        ".sock";
    SweepServiceOptions opt;
    opt.socket_path = socket_path;
    opt.jobs = 1;
    opt.max_queue = 1;
    SweepService service(opt);
    service.start();

    // A batch heavy enough to pin the executor: unique seeds so
    // in-process memoization cannot collapse the work.
    const Program heavy = makePointerChase(8192, 4);
    std::vector<RunJob> grid;
    for (uint64_t s = 0; s < 6; ++s) {
        RunJob job;
        job.program = &heavy;
        job.seed = s;
        grid.push_back(job);
    }
    const JsonValue busy = parseJson(serviceRequest(
        socket_path, submitJson(heavy, grid, "tok-busy")));
    ASSERT_TRUE(busy.getBool("ok", false));
    const uint64_t busy_id = busy.at("batch").asU64();
    for (int i = 0; i < 500 && service.stats().inflight_batch == 0;
         ++i)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(5));
    ASSERT_NE(service.stats().inflight_batch, 0u);

    // One more fits the queue; the next is bounced with the
    // machine-actionable code, not a hang and not a dead daemon.
    const Program tiny = makePointerChase(64, 1);
    const std::vector<RunJob> tiny_grid(
        1, [&] {
            RunJob j;
            j.program = &tiny;
            return j;
        }());
    const JsonValue queued = parseJson(serviceRequest(
        socket_path, submitJson(tiny, tiny_grid, "tok-q1")));
    ASSERT_TRUE(queued.getBool("ok", false));
    const JsonValue bounced = parseJson(serviceRequest(
        socket_path, submitJson(tiny, tiny_grid, "tok-q2")));
    EXPECT_FALSE(bounced.getBool("ok", true));
    EXPECT_EQ(bounced.getString("code", ""), "overloaded");
    EXPECT_EQ(service.stats().overloaded_rejects, 1u);

    // The rejection was load shedding, not failure: the daemon
    // finishes everything it admitted.
    awaitBatch(socket_path, busy_id);
    awaitBatch(socket_path, queued.at("batch").asU64());
    service.stop();
    service.wait();
}

TEST(SweepServiceFault, WedgedRequestIsDroppedNotServed)
{
    const std::string socket_path =
        "/tmp/spt_svc_stall_" + std::to_string(::getpid()) +
        ".sock";
    SweepServiceOptions opt;
    opt.socket_path = socket_path;
    opt.jobs = 1;
    opt.request_timeout_ms = 200;
    SweepService service(opt);
    service.start();

    // Start a frame, promise 100 bytes, send 10, go silent: the
    // daemon must cut the connection once the stall deadline
    // passes instead of wedging the connection thread forever.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const uint32_t promised = 100;
    ASSERT_EQ(::send(fd, &promised, 4, 0), 4);
    ASSERT_EQ(::send(fd, "0123456789", 10, 0), 10);

    pollfd pfd{fd, POLLIN, 0};
    ASSERT_EQ(::poll(&pfd, 1, 5000), 1) << "daemon kept the "
                                           "wedged connection";
    char byte;
    EXPECT_EQ(::read(fd, &byte, 1), 0); // EOF: dropped, no reply
    ::close(fd);

    // Slow-client protection is per-connection: service continues.
    const JsonValue pong = parseJson(
        serviceRequest(socket_path, "{\"op\": \"ping\"}"));
    EXPECT_TRUE(pong.getBool("ok", false));
    service.stop();
    service.wait();
}

TEST(SweepServiceFault, JournalRecoveryReRunsOnlyLostSlots)
{
    const std::string socket_path =
        "/tmp/spt_svc_jrec_" + std::to_string(::getpid()) +
        ".sock";
    const std::string journal_dir =
        testing::TempDir() + "svc_jrec_journal";
    std::filesystem::remove_all(journal_dir);
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = smallGrid(prog);
    const std::string submit =
        submitJson(prog, grid, "tok-recover");

    uint64_t id = 0;
    {
        SweepServiceOptions opt;
        opt.socket_path = socket_path;
        opt.jobs = 2;
        opt.journal_dir = journal_dir;
        SweepService daemon_a(opt);
        daemon_a.start();
        const JsonValue resp = parseJson(
            serviceRequest(socket_path, submit));
        ASSERT_TRUE(resp.getBool("ok", false));
        id = resp.at("batch").asU64();
        awaitBatch(socket_path, id);
        // Crash before the client fetches: stop without draining
        // the result out.
        daemon_a.stop();
        daemon_a.wait();
    }

    // Tear the journal tail (the BATCHDONE record and the slots
    // recorded after the torn point are lost).
    const std::string seg = journal_dir + "/journal.seg";
    const auto size = std::filesystem::file_size(seg);
    std::filesystem::resize_file(seg, size - 40);

    SweepServiceOptions opt;
    opt.socket_path = socket_path;
    opt.jobs = 2;
    opt.journal_dir = journal_dir;
    SweepService daemon_b(opt);
    daemon_b.start();
    EXPECT_EQ(daemon_b.stats().recovered_batches, 1u);

    // Same batch id, completed by re-running only what was lost,
    // and byte-identical to an in-process run.
    awaitBatch(socket_path, id);
    const JsonValue result = parseJson(serviceRequest(
        socket_path,
        "{\"op\": \"result\", \"batch\": " + std::to_string(id) +
            "}"));
    ASSERT_TRUE(result.getBool("ok", false));

    RunnerPolicy local;
    local.service_socket = kNoSweepService;
    const std::vector<RunOutcome> ref =
        ExpRunner(1).run(grid, local);
    const auto &outcomes = result.at("outcomes").asArray();
    ASSERT_EQ(outcomes.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        std::string bytes;
        const std::string hex = outcomes[i].getString("o", "");
        for (size_t p = 0; p < hex.size(); p += 2)
            bytes.push_back(static_cast<char>(
                std::stoi(hex.substr(p, 2), nullptr, 16)));
        EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(
                      ResultCache::decodeOutcome(bytes)),
                  ResultCache::encodeOutcomeDeterministic(ref[i]))
            << "slot " << i;
    }
    daemon_b.stop();
    daemon_b.wait();
}

TEST(SweepServiceFault, Kill9MidBatchResumesByteIdentical)
{
    // The full crash-recovery contract, against the real binary:
    // SIGKILL mid-batch, restart on the same journal, and the
    // client's retry loop must come back with outcomes
    // byte-identical to an undisturbed in-process run — at one
    // daemon worker and at four (slot completion order must not
    // leak into results).
    const Program heavy = makePointerChase(8192, 4);
    std::vector<RunJob> grid;
    for (uint64_t s = 0; s < 6; ++s) {
        RunJob job;
        job.program = &heavy;
        job.seed = s;
        grid.push_back(job);
    }
    RunnerPolicy local;
    local.service_socket = kNoSweepService;
    const std::vector<RunOutcome> ref =
        ExpRunner(4).run(grid, local);

    for (const unsigned jobs : {1u, 4u}) {
        const std::string tag =
            "k9_" + std::to_string(jobs) + "_" +
            std::to_string(::getpid());
        const std::string journal_dir =
            testing::TempDir() + "svc_" + tag + "_journal";
        std::filesystem::remove_all(journal_dir);
        SweepdProcess::Options dopt;
        dopt.binary = resolveSweepdBinary("");
        dopt.socket_path = "/tmp/spt_" + tag + ".sock";
        dopt.journal_dir = journal_dir;
        dopt.jobs = jobs;
        dopt.log_path = testing::TempDir() + "svc_" + tag + ".log";
        SweepdProcess first(dopt);
        first.start();

        std::vector<RunOutcome> via;
        std::string client_error;
        std::thread client([&] {
            RunnerPolicy policy;
            policy.service_socket = dopt.socket_path;
            policy.client.max_retries = 20;
            policy.client.backoff_base_ms = 10;
            policy.client.backoff_max_ms = 200;
            policy.client.poll_ms = 5;
            policy.client.deadline_seconds = 120.0;
            try {
                via = ExpRunner(1).run(grid, policy);
            } catch (const FatalError &e) {
                client_error = e.what();
            }
        });
        std::this_thread::sleep_for(
            std::chrono::milliseconds(300));
        first.kill9();
        SweepdProcess second(dopt);
        second.start();
        client.join();
        ASSERT_TRUE(client_error.empty()) << client_error;
        EXPECT_FALSE(second.abortedAbnormally());

        ASSERT_EQ(via.size(), ref.size()) << "jobs=" << jobs;
        for (size_t i = 0; i < ref.size(); ++i)
            EXPECT_EQ(
                ResultCache::encodeOutcomeDeterministic(via[i]),
                ResultCache::encodeOutcomeDeterministic(ref[i]))
                << "jobs=" << jobs << " slot " << i;
        second.sigterm();
        second.wait();
    }
}

TEST(SweepService, CleanShutdownViaProtocol)
{
    const std::string socket_path =
        "/tmp/spt_svc_shutdown_" + std::to_string(::getpid()) +
        ".sock";
    SweepServiceOptions opt;
    opt.socket_path = socket_path;
    opt.jobs = 1;
    SweepService service(opt);
    service.start();
    ASSERT_TRUE(std::filesystem::exists(socket_path));

    const JsonValue resp = parseJson(
        serviceRequest(socket_path, "{\"op\": \"shutdown\"}"));
    EXPECT_TRUE(resp.getBool("ok", false));
    service.wait(); // must return: the daemon drained
    // The socket file is gone; new connections are refused.
    EXPECT_FALSE(std::filesystem::exists(socket_path));
    EXPECT_THROW(serviceRequest(socket_path, "{\"op\": \"ping\"}"),
                 FatalError);
}

} // namespace
} // namespace spt
