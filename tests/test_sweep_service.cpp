/**
 * @file
 * Sweep-as-a-service (sim/sweep_service.h): daemon round-trips over
 * a temp Unix socket, byte-equality of service-executed outcomes
 * with in-process runs, concurrent-client determinism, structured
 * protocol errors that never kill the daemon, and clean shutdown.
 */

#include <unistd.h>

#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "analysis/knowledge_analysis.h"
#include "analysis/knowledge_map.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "core/knowledge_map.h"
#include "sim/exp_runner.h"
#include "sim/result_cache.h"
#include "sim/sweep_service.h"
#include "workloads/workloads.h"

namespace spt {
namespace {

/** Starts a daemon on a fresh socket in a fresh cache dir for one
 *  test; stops and joins it on destruction. */
struct DaemonFixture {
    explicit DaemonFixture(const char *name)
    {
        // Unix sockets cap sun_path around 108 bytes; keep the
        // path short and rooted in /tmp directly.
        socket_path = "/tmp/spt_" + std::string(name) + "_" +
                      std::to_string(::getpid()) + ".sock";
        cache_dir = testing::TempDir() + name + "_cache";
        std::filesystem::remove_all(cache_dir);
        SweepServiceOptions opt;
        opt.socket_path = socket_path;
        opt.jobs = 2;
        opt.cache_dir = cache_dir;
        service = std::make_unique<SweepService>(opt);
        service->start();
    }

    ~DaemonFixture()
    {
        service->stop();
        service->wait();
    }

    std::string socket_path;
    std::string cache_dir;
    std::unique_ptr<SweepService> service;
};

std::vector<RunJob>
smallGrid(const Program &prog)
{
    std::vector<RunJob> grid;
    for (ProtectionScheme scheme :
         {ProtectionScheme::kUnsafeBaseline, ProtectionScheme::kSpt})
        for (AttackModel model : {AttackModel::kFuturistic,
                                  AttackModel::kSpectre}) {
            RunJob job;
            job.program = &prog;
            job.engine.scheme = scheme;
            job.attack_model = model;
            grid.push_back(job);
        }
    return grid;
}

TEST(SweepService, RoundTripMatchesInProcessRun)
{
    DaemonFixture daemon("svc_roundtrip");
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = smallGrid(prog);

    // Route through the daemon explicitly via the policy (the env
    // path is covered by the fig drivers / CI gate).
    RunnerPolicy policy;
    policy.service_socket = daemon.socket_path;
    ExpRunner client(1);
    const std::vector<RunOutcome> via = client.run(grid, policy);
    EXPECT_TRUE(client.lastSweep().via_service);
    EXPECT_EQ(client.lastSweep().workers, 2u); // daemon's pool
    EXPECT_EQ(client.lastSweep().cache.misses, grid.size());

    RunnerPolicy local;
    local.service_socket = kNoSweepService;
    const std::vector<RunOutcome> ref =
        ExpRunner(1).run(grid, local);

    ASSERT_EQ(via.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        // Everything but host timing must be byte-identical to the
        // in-process run — counters, histograms, registers, status.
        EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(via[i]),
                  ResultCache::encodeOutcomeDeterministic(ref[i]))
            << "slot " << i;
        EXPECT_EQ(via[i].job_desc, ref[i].job_desc);
    }

    // Resubmitting the same grid is answered from the warm cache.
    const std::vector<RunOutcome> warm = client.run(grid, policy);
    EXPECT_EQ(client.lastSweep().cache.hits, grid.size());
    for (size_t i = 0; i < warm.size(); ++i)
        EXPECT_EQ(ResultCache::encodeOutcome(via[i]),
                  ResultCache::encodeOutcome(warm[i]))
            << "slot " << i;

    const ServiceStats totals = daemon.service->stats();
    EXPECT_EQ(totals.batches_executed, 2u);
    EXPECT_EQ(totals.jobs_executed, 2 * grid.size());
}

TEST(SweepService, ShipsArbitraryProgramsAndKnowledgeMaps)
{
    DaemonFixture daemon("svc_payload");
    // A locally built program + map: neither exists in any
    // registry, so this only works if content actually travels.
    const Program prog = makeHashTable(200, 200);
    const Cfg cfg(prog);
    const KnowledgeAnalysis analysis(cfg);
    const KnowledgeMap map = emitKnowledgeMap(analysis);

    RunJob job;
    job.program = &prog;
    job.engine.scheme = ProtectionScheme::kSpt;
    job.engine.spt.knowledge_map = &map;
    job.label = "shipped/km";
    const std::vector<RunJob> grid = {job, job}; // memo dup too

    RunnerPolicy policy;
    policy.service_socket = daemon.socket_path;
    ExpRunner client(1);
    const std::vector<RunOutcome> via = client.run(grid, policy);
    EXPECT_EQ(client.lastSweep().memo_hits, 1u);
    EXPECT_TRUE(via[1].memoized);
    EXPECT_EQ(via[0].job_desc, "shipped/km");

    RunnerPolicy local;
    local.service_socket = kNoSweepService;
    const std::vector<RunOutcome> ref =
        ExpRunner(1).run(grid, local);
    EXPECT_EQ(ResultCache::encodeOutcomeDeterministic(via[0]),
              ResultCache::encodeOutcomeDeterministic(ref[0]));
    EXPECT_TRUE(via[0].result.halted);
}

TEST(SweepService, ConcurrentClientsGetDeterministicResults)
{
    DaemonFixture daemon("svc_concurrent");
    const Program prog = makePointerChase(256, 1);
    const std::vector<RunJob> grid = smallGrid(prog);

    constexpr int kClients = 4;
    std::vector<std::vector<RunOutcome>> results(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            RunnerPolicy policy;
            policy.service_socket = daemon.socket_path;
            results[c] = ExpRunner(1).run(grid, policy);
        });
    for (std::thread &t : clients)
        t.join();

    for (int c = 1; c < kClients; ++c) {
        ASSERT_EQ(results[c].size(), grid.size());
        for (size_t i = 0; i < grid.size(); ++i)
            EXPECT_EQ(
                ResultCache::encodeOutcome(results[0][i]),
                ResultCache::encodeOutcome(results[c][i]))
                << "client " << c << " slot " << i;
    }
    // Batches executed strictly in submission order; after the
    // first, every identical batch is all cache hits.
    const ServiceStats totals = daemon.service->stats();
    EXPECT_EQ(totals.batches_executed,
              static_cast<uint64_t>(kClients));
    EXPECT_EQ(totals.cache.misses, grid.size());
    EXPECT_EQ(totals.cache.hits, (kClients - 1) * grid.size());
}

TEST(SweepService, FailuresSurfacePerSlotAndFailFast)
{
    DaemonFixture daemon("svc_failure");
    const Program prog = makePointerChase(256, 1);
    RunJob good;
    good.program = &prog;
    RunJob bad = good;
    bad.engine.scheme = static_cast<ProtectionScheme>(0xee);
    const std::vector<RunJob> grid = {good, bad};

    RunnerPolicy keep;
    keep.service_socket = daemon.socket_path;
    keep.keep_going = true;
    ExpRunner client(1);
    const std::vector<RunOutcome> out = client.run(grid, keep);
    EXPECT_EQ(out[0].status, RunStatus::kOk);
    EXPECT_EQ(out[1].status, RunStatus::kCrash);
    EXPECT_FALSE(out[1].error.empty());
    EXPECT_EQ(client.lastSweep().failed_jobs, 1u);

    // Fail-fast is re-imposed client-side; the daemon survives the
    // crashing job either way.
    RunnerPolicy fail_fast = keep;
    fail_fast.keep_going = false;
    EXPECT_THROW(client.run(grid, fail_fast), FatalError);
    const std::string ping =
        serviceRequest(daemon.socket_path, "{\"op\": \"ping\"}");
    EXPECT_TRUE(parseJson(ping).getBool("ok", false));
}

TEST(SweepService, MalformedRequestsGetStructuredErrors)
{
    DaemonFixture daemon("svc_malformed");

    // Not JSON at all.
    JsonValue resp = parseJson(
        serviceRequest(daemon.socket_path, "this is not json"));
    EXPECT_FALSE(resp.getBool("ok", true));
    EXPECT_FALSE(resp.getString("error", "").empty());

    // Valid JSON, unknown op.
    resp = parseJson(serviceRequest(daemon.socket_path,
                                    "{\"op\": \"frobnicate\"}"));
    EXPECT_FALSE(resp.getBool("ok", true));

    // Submit with a garbage program blob.
    resp = parseJson(serviceRequest(
        daemon.socket_path,
        "{\"op\": \"submit\", \"programs\": [\"deadbeef\"], "
        "\"jobs\": []}"));
    EXPECT_FALSE(resp.getBool("ok", true));

    // Status/result of a batch that never existed.
    resp = parseJson(serviceRequest(
        daemon.socket_path, "{\"op\": \"status\", \"batch\": 99}"));
    EXPECT_FALSE(resp.getBool("ok", true));

    // The daemon took four bad requests and still serves good ones.
    resp = parseJson(
        serviceRequest(daemon.socket_path, "{\"op\": \"ping\"}"));
    EXPECT_TRUE(resp.getBool("ok", false));
    resp = parseJson(
        serviceRequest(daemon.socket_path, "{\"op\": \"stats\"}"));
    EXPECT_TRUE(resp.getBool("ok", false));
    EXPECT_EQ(resp.at("batches_executed").asU64(), 0u);
}

TEST(SweepService, CleanShutdownViaProtocol)
{
    const std::string socket_path =
        "/tmp/spt_svc_shutdown_" + std::to_string(::getpid()) +
        ".sock";
    SweepServiceOptions opt;
    opt.socket_path = socket_path;
    opt.jobs = 1;
    SweepService service(opt);
    service.start();
    ASSERT_TRUE(std::filesystem::exists(socket_path));

    const JsonValue resp = parseJson(
        serviceRequest(socket_path, "{\"op\": \"shutdown\"}"));
    EXPECT_TRUE(resp.getBool("ok", false));
    service.wait(); // must return: the daemon drained
    // The socket file is gone; new connections are refused.
    EXPECT_FALSE(std::filesystem::exists(socket_path));
    EXPECT_THROW(serviceRequest(socket_path, "{\"op\": \"ping\"}"),
                 FatalError);
}

} // namespace
} // namespace spt
