/**
 * @file
 * TRISC opcode definitions and static per-opcode traits.
 *
 * TRISC is the 64-bit RISC ISA used throughout this reproduction in
 * place of x86 (the paper's gem5 setup). The traits table captures
 * everything the microarchitecture and the SPT taint engine need to
 * know statically about an instruction: operand counts, whether it is
 * a transmitter (load/store), a control-flow instruction, and which
 * untaint-algebra class it belongs to (Section 6.6 of the paper).
 */

#ifndef SPT_ISA_OPCODE_H
#define SPT_ISA_OPCODE_H

#include <cstdint>
#include <string_view>

namespace spt {

enum class Opcode : uint8_t {
    // ALU register-register
    kAdd, kSub, kAnd, kOr, kXor,
    kSll, kSrl, kSra,
    kMul, kMulh, kDiv, kRem,
    kSlt, kSltu,
    kMin, kMax, kMinu, kMaxu,
    // ALU register-immediate
    kAddi, kAndi, kOri, kXori,
    kSlli, kSrli, kSrai,
    kSlti, kSltiu,
    // Register moves / unary
    kMov, kNot, kNeg,
    // Load immediate (output determined by ROB contents; Section 6.5)
    kLi,
    // Loads: rd = mem[rs1 + imm]
    kLb, kLbu, kLh, kLhu, kLw, kLwu, kLd,
    // Stores: mem[rs1 + imm] = rs2
    kSb, kSh, kSw, kSd,
    // Conditional branches: if cmp(rs1, rs2) goto pc + imm
    kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
    // Unconditional jumps
    kJal,   // rd = pc + 1; pc += imm
    kJalr,  // rd = pc + 1; pc = rs1 + imm
    // Misc
    kNop,
    kHalt,

    kNumOpcodes,
};

/** Instruction-format classes, used by the assembler and encoder. */
enum class OpFormat : uint8_t {
    kRType,   // op rd, rs1, rs2
    kIType,   // op rd, rs1, imm
    kUnary,   // op rd, rs1
    kLiType,  // op rd, imm
    kLoad,    // op rd, imm(rs1)
    kStore,   // op rs2, imm(rs1)
    kBranch,  // op rs1, rs2, label
    kJal,     // op rd, label
    kJalr,    // op rd, rs1, imm
    kNone,    // op
};

/** Untaint-algebra class of an opcode (paper Section 6.6 / 6.5).
 *
 * - kCopy: single-source value-preserving ops (MOV, NOT, NEG). If the
 *   output is declassified, the input is inferable.
 * - kInvertible: two-source ops where knowing the output and one
 *   input determines the other input (ADD, SUB, XOR), plus their
 *   immediate forms (the immediate is public program text).
 * - kImmediate: output determined entirely by ROB contents (LI);
 *   always untainted (Section 6.5).
 * - kOpaque: forward rule only.
 */
enum class UntaintClass : uint8_t {
    kOpaque,
    kCopy,
    kInvertible,
    kImmediate,
};

/** Static traits of one opcode. */
struct OpTraits {
    std::string_view mnemonic;
    OpFormat format;
    uint8_t num_srcs;     ///< register sources actually read (0-2)
    bool has_dest;        ///< writes a destination register
    bool is_load;
    bool is_store;
    bool is_cond_branch;  ///< conditional control flow
    bool is_jump;         ///< unconditional control flow (JAL/JALR)
    bool is_halt;
    uint8_t mem_bytes;    ///< access size for loads/stores, else 0
    bool load_signed;     ///< sign-extend loaded value
    UntaintClass untaint_class;
};

/** Traits lookup; aborts on out-of-range opcode. */
const OpTraits &opTraits(Opcode op);

/** Convenience predicates. */
inline bool isLoad(Opcode op) { return opTraits(op).is_load; }
inline bool isStore(Opcode op) { return opTraits(op).is_store; }
inline bool isMemOp(Opcode op) { return isLoad(op) || isStore(op); }
inline bool isCondBranch(Opcode op)
{
    return opTraits(op).is_cond_branch;
}
inline bool isJump(Opcode op) { return opTraits(op).is_jump; }
inline bool
isControlFlow(Opcode op)
{
    return isCondBranch(op) || isJump(op);
}

/** Transmit instructions: per the paper's evaluation (Section 9.1),
 *  loads and stores are the transmitters; their *address* operands
 *  leak when they execute. */
inline bool isTransmitter(Opcode op) { return isMemOp(op); }

/** Mnemonic for printing. */
std::string_view mnemonic(Opcode op);

} // namespace spt

#endif // SPT_ISA_OPCODE_H
