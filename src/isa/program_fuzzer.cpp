#include "isa/program_fuzzer.h"

#include "common/bit_util.h"
#include "common/logging.h"

namespace spt {

namespace {

// Register roles: x5..x27 are general fuzz registers; x28 holds the
// arena base, x29 is the loop counter, x30/x31 are address temps.
constexpr uint8_t kGenLo = 5;
constexpr uint8_t kGenHi = 27;
constexpr uint8_t kArenaReg = 28;
constexpr uint8_t kLoopReg = 29;
constexpr uint8_t kAddrReg = 30;

const Opcode kAluR[] = {
    Opcode::kAdd, Opcode::kSub, Opcode::kAnd, Opcode::kOr,
    Opcode::kXor, Opcode::kSll, Opcode::kSrl, Opcode::kSra,
    Opcode::kMul, Opcode::kMulh, Opcode::kDiv, Opcode::kRem,
    Opcode::kSlt, Opcode::kSltu, Opcode::kMin, Opcode::kMax,
};
const Opcode kAluI[] = {
    Opcode::kAddi, Opcode::kAndi, Opcode::kOri, Opcode::kXori,
    Opcode::kSlli, Opcode::kSrli, Opcode::kSrai,
};
const Opcode kUnary[] = {Opcode::kMov, Opcode::kNot, Opcode::kNeg};
const Opcode kLoads[] = {Opcode::kLb, Opcode::kLbu, Opcode::kLh,
                         Opcode::kLhu, Opcode::kLw, Opcode::kLwu,
                         Opcode::kLd};
const Opcode kStores[] = {Opcode::kSb, Opcode::kSh, Opcode::kSw,
                          Opcode::kSd};
const Opcode kBranches[] = {Opcode::kBeq, Opcode::kBne,
                            Opcode::kBlt, Opcode::kBge,
                            Opcode::kBltu, Opcode::kBgeu};

class Fuzzer
{
  public:
    Fuzzer(uint64_t seed, const FuzzConfig &cfg)
        : rng_(seed), cfg_(cfg)
    {
        SPT_ASSERT(isPowerOfTwo(cfg.arena_bytes),
                   "arena size must be a power of two");
    }

    Program
    generate()
    {
        // Seed the arena with deterministic data.
        std::vector<uint64_t> arena(cfg_.arena_bytes / 8);
        for (auto &w : arena)
            w = rng_.next();
        prog_.addData64(cfg_.arena_base, arena);

        emit({Opcode::kLi, kArenaReg, 0, 0,
              static_cast<int64_t>(cfg_.arena_base)});
        // Give the general registers varied initial values.
        for (uint8_t r = kGenLo; r <= kGenHi; ++r)
            emit({Opcode::kLi, r, 0, 0,
                  static_cast<int64_t>(rng_.next() >> 8)});

        for (unsigned b = 0; b < cfg_.num_blocks; ++b)
            emitBlock();

        // Fold every general register into the a7 checksum.
        emit({Opcode::kLi, 17, 0, 0, 0});
        for (uint8_t r = kGenLo; r <= kGenHi; ++r) {
            emit({Opcode::kXor, 17, 17, r, 0});
            emit({Opcode::kSlli, 31, 17, 0, 1});
            emit({Opcode::kAdd, 17, 17, 31, 0});
        }
        emit({Opcode::kHalt, 0, 0, 0, 0});
        return std::move(prog_);
    }

  private:
    Rng rng_;
    FuzzConfig cfg_;
    Program prog_;

    void emit(const Instruction &inst) { prog_.append(inst); }

    uint8_t
    genReg()
    {
        return static_cast<uint8_t>(
            kGenLo + rng_.nextBelow(kGenHi - kGenLo + 1));
    }

    template <size_t N>
    Opcode
    pick(const Opcode (&arr)[N])
    {
        return arr[rng_.nextBelow(N)];
    }

    /** Emits one data-processing or memory instruction. */
    void
    emitOne()
    {
        if (rng_.nextBool(cfg_.mem_fraction)) {
            emitMemOp();
            return;
        }
        const double kind = rng_.nextDouble();
        if (kind < 0.55) {
            emit({pick(kAluR), genReg(), genReg(), genReg(), 0});
        } else if (kind < 0.85) {
            const Opcode op = pick(kAluI);
            int64_t imm = rng_.nextRange(-2048, 2047);
            if (op == Opcode::kSlli || op == Opcode::kSrli ||
                op == Opcode::kSrai)
                imm = rng_.nextRange(0, 63);
            emit({op, genReg(), genReg(), 0, imm});
        } else {
            emit({pick(kUnary), genReg(), genReg(), 0, 0});
        }
    }

    /** Emits a masked, aligned access into the arena: the address
     *  is a data-dependent function of a fuzz register. */
    void
    emitMemOp()
    {
        const bool is_store = rng_.nextBool(0.45);
        const Opcode op =
            is_store ? pick(kStores) : pick(kLoads);
        const unsigned bytes = opTraits(op).mem_bytes;
        const int64_t mask = static_cast<int64_t>(
            (cfg_.arena_bytes - 1) & ~uint64_t{bytes - 1});
        emit({Opcode::kAndi, kAddrReg, genReg(), 0, mask});
        emit({Opcode::kAdd, kAddrReg, kAddrReg, kArenaReg, 0});
        if (is_store) {
            Instruction st{op, 0, kAddrReg, genReg(), 0};
            emit(st);
        } else {
            emit({op, genReg(), kAddrReg, 0, 0});
        }
    }

    void
    emitBlock()
    {
        const bool looped = rng_.nextBool(0.5);
        if (looped)
            emit({Opcode::kLi, kLoopReg, 0, 0,
                  static_cast<int64_t>(
                      1 + rng_.nextBelow(cfg_.loop_iterations))});
        const uint64_t body_start = prog_.size();

        for (unsigned i = 0; i < cfg_.block_len; ++i) {
            // Occasionally a data-dependent forward skip over the
            // next instruction (unpredictable branch).
            if (rng_.nextBool(cfg_.branch_fraction / 4)) {
                emit({pick(kBranches), 0, genReg(), genReg(), 2});
                emitOne();
            } else {
                emitOne();
            }
        }

        if (looped) {
            emit({Opcode::kAddi, kLoopReg, kLoopReg, 0, -1});
            const int64_t back =
                static_cast<int64_t>(body_start) -
                static_cast<int64_t>(prog_.size());
            emit({Opcode::kBne, 0, kLoopReg, 0, back});
        }
    }
};

} // namespace

Program
fuzzProgram(uint64_t seed, const FuzzConfig &config)
{
    Fuzzer fuzzer(seed, config);
    return fuzzer.generate();
}

} // namespace spt
