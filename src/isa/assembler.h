/**
 * @file
 * Two-pass text assembler for TRISC.
 *
 * Grammar (line oriented; '#', ';' and '//' start comments):
 *
 *   .text                     switch to text section (default)
 *   .data [base]              switch to data section, optional base
 *   label:                    define a symbol at the current location
 *   .quad v, v, ...           emit 8-byte values
 *   .word v, ...              emit 4-byte values
 *   .half v, ...              emit 2-byte values
 *   .byte v, ...              emit 1-byte values
 *   .zero n / .space n        emit n zero bytes
 *   .align n                  align data cursor to n bytes
 *   .entry label              set the program entry point
 *   mnemonic operands         one instruction
 *
 * Pseudo-instructions: mv, j, jr, call, ret, la, beqz, bnez, seqz,
 * snez. Branch/jal targets may be labels or numeric pc-relative
 * offsets; `la` resolves a data symbol to an absolute address.
 */

#ifndef SPT_ISA_ASSEMBLER_H
#define SPT_ISA_ASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace spt {

/** Assembles TRISC source text; throws FatalError with a line number
 *  on any syntax or symbol error. */
Program assemble(const std::string &source);

} // namespace spt

#endif // SPT_ISA_ASSEMBLER_H
