/**
 * @file
 * Constrained random TRISC program generator for differential
 * testing: every generated program terminates (loops are bounded by
 * dedicated counter registers), keeps its memory accesses inside a
 * private arena, and finishes with a checksum of the register file
 * in a7 — so an out-of-order run under any protection scheme can be
 * verified against the functional reference CPU.
 */

#ifndef SPT_ISA_PROGRAM_FUZZER_H
#define SPT_ISA_PROGRAM_FUZZER_H

#include <cstdint>

#include "common/rng.h"
#include "isa/program.h"

namespace spt {

struct FuzzConfig {
    unsigned num_blocks = 12;        ///< straight-line blocks
    unsigned block_len = 8;          ///< instructions per block
    unsigned loop_iterations = 20;   ///< bound for generated loops
    double mem_fraction = 0.3;       ///< loads+stores share
    double branch_fraction = 0.6;    ///< chance a block ends branchy
    uint64_t arena_base = 0x100000;  ///< data arena
    unsigned arena_bytes = 4096;     ///< power of two
};

/** Generates one deterministic random program for @p seed. */
Program fuzzProgram(uint64_t seed,
                    const FuzzConfig &config = FuzzConfig{});

} // namespace spt

#endif // SPT_ISA_PROGRAM_FUZZER_H
