#include "isa/functional_cpu.h"

#include "common/logging.h"

namespace spt {

FunctionalCpu::FunctionalCpu(Program program)
    : program_(std::move(program)), pc_(program_.entry())
{
    program_.loadInto(mem_);
    regs_[kRegSp] = kDefaultStackTop;
}

uint64_t
FunctionalCpu::reg(unsigned idx) const
{
    SPT_ASSERT(idx < kNumArchRegs, "register index out of range");
    return regs_[idx];
}

void
FunctionalCpu::setReg(unsigned idx, uint64_t value)
{
    SPT_ASSERT(idx < kNumArchRegs, "register index out of range");
    if (idx != kRegZero)
        regs_[idx] = value;
}

FunctionalCpu::StepInfo
FunctionalCpu::step()
{
    StepInfo info;
    if (halted_) {
        info.halted = true;
        return info;
    }
    if (!program_.validPc(pc_))
        SPT_FATAL("functional cpu: pc out of program bounds: " << pc_);

    const Instruction &inst = program_.at(pc_);
    const OpTraits &t = opTraits(inst.op);
    info.pc = pc_;
    info.inst = inst;

    const uint64_t rs1v = regs_[inst.rs1];
    const uint64_t rs2v = regs_[inst.rs2];
    ExecResult r = evaluateOp(inst, pc_, rs1v, rs2v);

    uint64_t next = nextPc(pc_);
    if (t.is_load) {
        info.is_mem = true;
        info.mem_addr = r.mem_addr;
        r.value = finishLoad(inst.op, mem_.read(r.mem_addr,
                                                t.mem_bytes));
    } else if (t.is_store) {
        info.is_mem = true;
        info.mem_addr = r.mem_addr;
        mem_.write(r.mem_addr, r.value, t.mem_bytes);
    } else if (t.is_cond_branch) {
        if (r.is_taken)
            next = r.target;
    } else if (t.is_jump) {
        next = r.target;
    } else if (t.is_halt) {
        halted_ = true;
        info.halted = true;
    }

    if (t.has_dest) {
        setReg(inst.rd, r.value);
        info.wrote_reg = inst.rd != kRegZero;
        info.dest = inst.rd;
        info.dest_value = regs_[inst.rd];
    }

    pc_ = next;
    ++retired_;
    return info;
}

FunctionalCpu::RunResult
FunctionalCpu::run(uint64_t max_instrs)
{
    RunResult result;
    while (!halted_ && result.instructions < max_instrs) {
        step();
        ++result.instructions;
    }
    result.halted = halted_;
    return result;
}

} // namespace spt
