/**
 * @file
 * Static introspection over decoded instructions: which architectural
 * registers an instruction reads and writes, whether it terminates a
 * basic block, and its direct control-flow target. These are the
 * operand-level facts the static analyses in `src/analysis` need,
 * factored out of the assembler/core so every consumer agrees on
 * operand roles (notably the store's rs1 = address, rs2 = data
 * convention that mirrors `DynInst`'s slot layout).
 */

#ifndef SPT_ISA_INTROSPECT_H
#define SPT_ISA_INTROSPECT_H

#include <optional>

#include "isa/instruction.h"
#include "isa/opcode.h"

namespace spt {

/** Architectural source registers of an instruction, in the same
 *  slot order as the dynamic engine (slot 0 = rs1, slot 1 = rs2). */
struct SrcRegs {
    uint8_t count = 0;
    uint8_t reg[2] = {0, 0};
};

inline SrcRegs
srcRegs(const Instruction &si)
{
    SrcRegs s;
    s.count = opTraits(si.op).num_srcs;
    if (s.count >= 1)
        s.reg[0] = si.rs1;
    if (s.count >= 2)
        s.reg[1] = si.rs2;
    return s;
}

/** Architectural destination register, or -1 if the instruction
 *  writes none. A destination of x0 is reported as written here
 *  (the write is architecturally discarded; callers that care —
 *  e.g. dataflow transfer functions — must treat x0 specially). */
inline int
destReg(const Instruction &si)
{
    return opTraits(si.op).has_dest ? si.rd : -1;
}

/** True iff the instruction writes a register with architectural
 *  effect (has a destination and it is not the zero register). */
inline bool
writesReg(const Instruction &si)
{
    return opTraits(si.op).has_dest && si.rd != kRegZero;
}

/** True iff control cannot simply fall through past this opcode:
 *  conditional branches, jumps (JAL/JALR), and HALT end a basic
 *  block. */
inline bool
isBlockTerminator(Opcode op)
{
    const OpTraits &t = opTraits(op);
    return t.is_cond_branch || t.is_jump || t.is_halt;
}

/** The statically known control-flow target of the instruction at
 *  @p pc: the taken target of a conditional branch or the target of
 *  a JAL. JALR targets are data-dependent (nullopt), as is
 *  everything that only falls through. */
inline std::optional<uint64_t>
directTarget(const Instruction &si, uint64_t pc)
{
    const OpTraits &t = opTraits(si.op);
    if (t.is_cond_branch || si.op == Opcode::kJal)
        return static_cast<uint64_t>(static_cast<int64_t>(pc) +
                                     si.imm);
    return std::nullopt;
}

/** True iff execution can continue at pc+1 after this instruction
 *  (not-taken branch path, or any non-control-flow op). */
inline bool
canFallThrough(Opcode op)
{
    const OpTraits &t = opTraits(op);
    return !t.is_jump && !t.is_halt;
}

} // namespace spt

#endif // SPT_ISA_INTROSPECT_H
