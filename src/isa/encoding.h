/**
 * @file
 * Fixed-width binary encoding of TRISC instructions.
 *
 * Each instruction occupies kInstrBytes (16) bytes:
 *   byte 0: opcode
 *   byte 1: rd
 *   byte 2: rs1
 *   byte 3: rs2
 *   bytes 4-11: imm (little-endian, signed)
 *   bytes 12-15: reserved, must be zero
 *
 * The fixed width keeps the I-cache model simple and makes the
 * round-trip encoder/decoder trivially verifiable.
 */

#ifndef SPT_ISA_ENCODING_H
#define SPT_ISA_ENCODING_H

#include <array>
#include <cstdint>

#include "isa/instruction.h"

namespace spt {

struct EncodedInstruction {
    std::array<uint8_t, kInstrBytes> bytes{};
};

EncodedInstruction encode(const Instruction &inst);

/** Decodes; throws FatalError on malformed bytes (bad opcode,
 *  register out of range, nonzero reserved bytes). */
Instruction decode(const EncodedInstruction &enc);

} // namespace spt

#endif // SPT_ISA_ENCODING_H
