/**
 * @file
 * In-order, one-instruction-per-step functional reference CPU.
 *
 * Serves three purposes: (1) the golden model that the out-of-order
 * timing core is checked against in tests (lockstep commit
 * comparison), (2) a fast way to compute expected workload results,
 * and (3) the oracle for the non-speculative execution in security
 * arguments (what *architecturally* executes).
 */

#ifndef SPT_ISA_FUNCTIONAL_CPU_H
#define SPT_ISA_FUNCTIONAL_CPU_H

#include <array>
#include <cstdint>

#include "common/byte_memory.h"
#include "isa/program.h"
#include "isa/semantics.h"

namespace spt {

class FunctionalCpu
{
  public:
    /** What one architectural step did (for lockstep checking). */
    struct StepInfo {
        uint64_t pc = 0;
        Instruction inst;
        bool wrote_reg = false;
        uint8_t dest = 0;
        uint64_t dest_value = 0;
        bool is_mem = false;
        uint64_t mem_addr = 0;
        bool halted = false;
    };

    struct RunResult {
        uint64_t instructions = 0;
        bool halted = false;
    };

    /** Loads @p program data into a fresh memory (the program is
     *  copied, so temporaries are safe). The stack pointer is
     *  initialized to kDefaultStackTop. */
    explicit FunctionalCpu(Program program);

    /** Executes one instruction; no-op (halted=true) after HALT. */
    StepInfo step();

    /** Runs until HALT or @p max_instrs, whichever first. */
    RunResult run(uint64_t max_instrs = 100'000'000);

    uint64_t reg(unsigned idx) const;
    void setReg(unsigned idx, uint64_t value);

    uint64_t pc() const { return pc_; }
    bool halted() const { return halted_; }
    uint64_t instructionsRetired() const { return retired_; }

    ByteMemory &memory() { return mem_; }
    const ByteMemory &memory() const { return mem_; }

    const Program &program() const { return program_; }

  private:
    Program program_;
    ByteMemory mem_;
    std::array<uint64_t, kNumArchRegs> regs_{};
    uint64_t pc_;
    bool halted_ = false;
    uint64_t retired_ = 0;
};

} // namespace spt

#endif // SPT_ISA_FUNCTIONAL_CPU_H
