#include "isa/opcode.h"

#include <array>

#include "common/logging.h"

namespace spt {

namespace {

using F = OpFormat;
using U = UntaintClass;

struct Row {
    Opcode op;
    OpTraits t;
};

// Column order:
// mnemonic, format, num_srcs, has_dest, is_load, is_store,
// is_cond_branch, is_jump, is_halt, mem_bytes, load_signed,
// untaint_class
constexpr Row kRows[] = {
    {Opcode::kAdd,  {"add",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kInvertible}},
    {Opcode::kSub,  {"sub",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kInvertible}},
    {Opcode::kAnd,  {"and",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kOr,   {"or",   F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kXor,  {"xor",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kInvertible}},
    {Opcode::kSll,  {"sll",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSrl,  {"srl",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSra,  {"sra",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kMul,  {"mul",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kMulh, {"mulh", F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kDiv,  {"div",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kRem,  {"rem",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSlt,  {"slt",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSltu, {"sltu", F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kMin,  {"min",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kMax,  {"max",  F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kMinu, {"minu", F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kMaxu, {"maxu", F::kRType, 2, true,  false, false, false, false, false, 0, false, U::kOpaque}},

    {Opcode::kAddi,  {"addi",  F::kIType, 1, true, false, false, false, false, false, 0, false, U::kInvertible}},
    {Opcode::kAndi,  {"andi",  F::kIType, 1, true, false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kOri,   {"ori",   F::kIType, 1, true, false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kXori,  {"xori",  F::kIType, 1, true, false, false, false, false, false, 0, false, U::kInvertible}},
    {Opcode::kSlli,  {"slli",  F::kIType, 1, true, false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSrli,  {"srli",  F::kIType, 1, true, false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSrai,  {"srai",  F::kIType, 1, true, false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSlti,  {"slti",  F::kIType, 1, true, false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kSltiu, {"sltiu", F::kIType, 1, true, false, false, false, false, false, 0, false, U::kOpaque}},

    {Opcode::kMov, {"mov", F::kUnary,  1, true, false, false, false, false, false, 0, false, U::kCopy}},
    {Opcode::kNot, {"not", F::kUnary,  1, true, false, false, false, false, false, 0, false, U::kCopy}},
    {Opcode::kNeg, {"neg", F::kUnary,  1, true, false, false, false, false, false, 0, false, U::kCopy}},
    {Opcode::kLi,  {"li",  F::kLiType, 0, true, false, false, false, false, false, 0, false, U::kImmediate}},

    {Opcode::kLb,  {"lb",  F::kLoad, 1, true, true, false, false, false, false, 1, true,  U::kOpaque}},
    {Opcode::kLbu, {"lbu", F::kLoad, 1, true, true, false, false, false, false, 1, false, U::kOpaque}},
    {Opcode::kLh,  {"lh",  F::kLoad, 1, true, true, false, false, false, false, 2, true,  U::kOpaque}},
    {Opcode::kLhu, {"lhu", F::kLoad, 1, true, true, false, false, false, false, 2, false, U::kOpaque}},
    {Opcode::kLw,  {"lw",  F::kLoad, 1, true, true, false, false, false, false, 4, true,  U::kOpaque}},
    {Opcode::kLwu, {"lwu", F::kLoad, 1, true, true, false, false, false, false, 4, false, U::kOpaque}},
    {Opcode::kLd,  {"ld",  F::kLoad, 1, true, true, false, false, false, false, 8, false, U::kOpaque}},

    {Opcode::kSb, {"sb", F::kStore, 2, false, false, true, false, false, false, 1, false, U::kOpaque}},
    {Opcode::kSh, {"sh", F::kStore, 2, false, false, true, false, false, false, 2, false, U::kOpaque}},
    {Opcode::kSw, {"sw", F::kStore, 2, false, false, true, false, false, false, 4, false, U::kOpaque}},
    {Opcode::kSd, {"sd", F::kStore, 2, false, false, true, false, false, false, 8, false, U::kOpaque}},

    {Opcode::kBeq,  {"beq",  F::kBranch, 2, false, false, false, true, false, false, 0, false, U::kOpaque}},
    {Opcode::kBne,  {"bne",  F::kBranch, 2, false, false, false, true, false, false, 0, false, U::kOpaque}},
    {Opcode::kBlt,  {"blt",  F::kBranch, 2, false, false, false, true, false, false, 0, false, U::kOpaque}},
    {Opcode::kBge,  {"bge",  F::kBranch, 2, false, false, false, true, false, false, 0, false, U::kOpaque}},
    {Opcode::kBltu, {"bltu", F::kBranch, 2, false, false, false, true, false, false, 0, false, U::kOpaque}},
    {Opcode::kBgeu, {"bgeu", F::kBranch, 2, false, false, false, true, false, false, 0, false, U::kOpaque}},

    {Opcode::kJal,  {"jal",  F::kJal,  0, true, false, false, false, true, false, 0, false, U::kImmediate}},
    {Opcode::kJalr, {"jalr", F::kJalr, 1, true, false, false, false, true, false, 0, false, U::kImmediate}},

    {Opcode::kNop,  {"nop",  F::kNone, 0, false, false, false, false, false, false, 0, false, U::kOpaque}},
    {Opcode::kHalt, {"halt", F::kNone, 0, false, false, false, false, false, true,  0, false, U::kOpaque}},
};

constexpr size_t kNumOps = static_cast<size_t>(Opcode::kNumOpcodes);

std::array<OpTraits, kNumOps>
buildTable()
{
    std::array<OpTraits, kNumOps> table{};
    static_assert(sizeof(kRows) / sizeof(kRows[0]) == kNumOps,
                  "traits table must cover every opcode");
    for (const Row &row : kRows)
        table[static_cast<size_t>(row.op)] = row.t;
    return table;
}

const std::array<OpTraits, kNumOps> kTable = buildTable();

} // namespace

const OpTraits &
opTraits(Opcode op)
{
    const auto idx = static_cast<size_t>(op);
    SPT_ASSERT(idx < kNumOps, "opcode out of range: " << idx);
    return kTable[idx];
}

std::string_view
mnemonic(Opcode op)
{
    return opTraits(op).mnemonic;
}

} // namespace spt
