#include "isa/program.h"

#include "common/logging.h"
#include "isa/encoding.h"

namespace spt {

uint64_t
Program::append(const Instruction &inst)
{
    code_.push_back(inst);
    return code_.size() - 1;
}

const Instruction &
Program::at(uint64_t pc) const
{
    SPT_ASSERT(validPc(pc), "pc out of range: " << pc);
    return code_[pc];
}

void
Program::addData(uint64_t addr, const std::vector<uint8_t> &bytes)
{
    auto &seg = data_[addr];
    seg.insert(seg.end(), bytes.begin(), bytes.end());
}

void
Program::addData64(uint64_t addr, const std::vector<uint64_t> &words)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(words.size() * 8);
    for (uint64_t w : words)
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    addData(addr, bytes);
}

void
Program::defineSymbol(const std::string &name, uint64_t value)
{
    if (symbols_.count(name))
        SPT_FATAL("duplicate symbol: " << name);
    symbols_[name] = value;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) > 0;
}

uint64_t
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        SPT_FATAL("undefined symbol: " << name);
    return it->second;
}

void
Program::patchData(uint64_t addr, uint64_t value, unsigned bytes)
{
    for (auto &[base, seg] : data_) {
        if (addr >= base && addr + bytes <= base + seg.size()) {
            for (unsigned i = 0; i < bytes; ++i)
                seg[addr - base + i] =
                    static_cast<uint8_t>(value >> (8 * i));
            return;
        }
    }
    SPT_FATAL("patchData: no data segment covers address " << addr);
}

void
Program::markSecret(uint64_t addr, uint64_t len)
{
    SPT_ASSERT(len > 0, "markSecret: empty range at " << addr);
    secrets_.push_back({addr, len});
}

void
Program::loadInto(ByteMemory &mem) const
{
    for (const auto &[addr, bytes] : data_)
        mem.writeBlock(addr, bytes.data(), bytes.size());
    for (size_t pc = 0; pc < code_.size(); ++pc) {
        const EncodedInstruction enc = encode(code_[pc]);
        mem.writeBlock(pc * kInstrBytes, enc.bytes.data(),
                       enc.bytes.size());
    }
}

} // namespace spt
