#include "isa/program.h"

#include <istream>
#include <ostream>

#include "common/logging.h"
#include "isa/encoding.h"

namespace spt {

uint64_t
Program::append(const Instruction &inst)
{
    code_.push_back(inst);
    return code_.size() - 1;
}

const Instruction &
Program::at(uint64_t pc) const
{
    SPT_ASSERT(validPc(pc), "pc out of range: " << pc);
    return code_[pc];
}

void
Program::addData(uint64_t addr, const std::vector<uint8_t> &bytes)
{
    auto &seg = data_[addr];
    seg.insert(seg.end(), bytes.begin(), bytes.end());
}

void
Program::addData64(uint64_t addr, const std::vector<uint64_t> &words)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(words.size() * 8);
    for (uint64_t w : words)
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<uint8_t>(w >> (8 * i)));
    addData(addr, bytes);
}

void
Program::defineSymbol(const std::string &name, uint64_t value)
{
    if (symbols_.count(name))
        SPT_FATAL("duplicate symbol: " << name);
    symbols_[name] = value;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) > 0;
}

uint64_t
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        SPT_FATAL("undefined symbol: " << name);
    return it->second;
}

void
Program::patchData(uint64_t addr, uint64_t value, unsigned bytes)
{
    for (auto &[base, seg] : data_) {
        if (addr >= base && addr + bytes <= base + seg.size()) {
            for (unsigned i = 0; i < bytes; ++i)
                seg[addr - base + i] =
                    static_cast<uint8_t>(value >> (8 * i));
            return;
        }
    }
    SPT_FATAL("patchData: no data segment covers address " << addr);
}

void
Program::markSecret(uint64_t addr, uint64_t len)
{
    SPT_ASSERT(len > 0, "markSecret: empty range at " << addr);
    secrets_.push_back({addr, len});
}

namespace {

constexpr uint64_t kProgMagic = 0x5350545052524731ull; // "SPTPRRG1"
constexpr uint32_t kProgVersion = 1;

void
putU64(std::ostream &os, uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 8);
}

uint64_t
getU64(std::istream &is)
{
    char b[8];
    is.read(b, 8);
    if (!is)
        SPT_FATAL("program stream truncated");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(b[i]))
             << (8 * i);
    return v;
}

void
putStr(std::ostream &os, const std::string &s)
{
    putU64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getStr(std::istream &is)
{
    const uint64_t n = getU64(is);
    if (n > (uint64_t{1} << 20))
        SPT_FATAL("program stream corrupt: implausible string "
                  "length "
                  << n);
    std::string s(n, '\0');
    is.read(s.data(), static_cast<std::streamsize>(n));
    if (static_cast<uint64_t>(is.gcount()) != n)
        SPT_FATAL("program stream truncated");
    return s;
}

} // namespace

void
programSave(const Program &program, std::ostream &os)
{
    putU64(os, kProgMagic);
    putU64(os, kProgVersion);
    putU64(os, program.entry());
    putU64(os, program.size());
    for (const Instruction &inst : program.code()) {
        putU64(os, static_cast<uint64_t>(inst.op));
        putU64(os, (uint64_t{inst.rd}) | (uint64_t{inst.rs1} << 8) |
                       (uint64_t{inst.rs2} << 16));
        putU64(os, static_cast<uint64_t>(inst.imm));
    }
    putU64(os, program.dataSegments().size());
    for (const auto &[addr, bytes] : program.dataSegments()) {
        putU64(os, addr);
        putU64(os, bytes.size());
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    putU64(os, program.symbols().size());
    for (const auto &[name, value] : program.symbols()) {
        putStr(os, name);
        putU64(os, value);
    }
    putU64(os, program.secretRanges().size());
    for (const SecretRange &r : program.secretRanges()) {
        putU64(os, r.base);
        putU64(os, r.len);
    }
    if (!os)
        SPT_FATAL("program serialization failed (stream error)");
}

Program
programLoad(std::istream &is)
{
    if (getU64(is) != kProgMagic)
        SPT_FATAL("not a serialized program (bad magic)");
    const uint64_t version = getU64(is);
    if (version != kProgVersion)
        SPT_FATAL("unsupported program format version " << version);
    Program program;
    const uint64_t entry = getU64(is);
    const uint64_t ninsts = getU64(is);
    if (ninsts > (uint64_t{1} << 24))
        SPT_FATAL("program stream corrupt: " << ninsts
                                             << " instructions");
    for (uint64_t i = 0; i < ninsts; ++i) {
        Instruction inst;
        const uint64_t op = getU64(is);
        if (op >= static_cast<uint64_t>(Opcode::kNumOpcodes))
            SPT_FATAL("program stream corrupt: opcode " << op);
        inst.op = static_cast<Opcode>(op);
        const uint64_t regs = getU64(is);
        inst.rd = static_cast<uint8_t>(regs & 0xff);
        inst.rs1 = static_cast<uint8_t>((regs >> 8) & 0xff);
        inst.rs2 = static_cast<uint8_t>((regs >> 16) & 0xff);
        inst.imm = static_cast<int64_t>(getU64(is));
        program.append(inst);
    }
    program.setEntry(entry);
    const uint64_t nsegs = getU64(is);
    if (nsegs > (uint64_t{1} << 16))
        SPT_FATAL("program stream corrupt: " << nsegs
                                             << " data segments");
    for (uint64_t s = 0; s < nsegs; ++s) {
        const uint64_t addr = getU64(is);
        const uint64_t len = getU64(is);
        if (len > (uint64_t{1} << 30))
            SPT_FATAL("program stream corrupt: segment of " << len
                                                            << " bytes");
        std::vector<uint8_t> bytes(len);
        is.read(reinterpret_cast<char *>(bytes.data()),
                static_cast<std::streamsize>(len));
        if (static_cast<uint64_t>(is.gcount()) != len)
            SPT_FATAL("program stream truncated");
        program.addData(addr, bytes);
    }
    const uint64_t nsyms = getU64(is);
    if (nsyms > (uint64_t{1} << 20))
        SPT_FATAL("program stream corrupt: " << nsyms << " symbols");
    for (uint64_t s = 0; s < nsyms; ++s) {
        const std::string name = getStr(is);
        const uint64_t value = getU64(is);
        program.defineSymbol(name, value);
    }
    const uint64_t nsecrets = getU64(is);
    if (nsecrets > (uint64_t{1} << 16))
        SPT_FATAL("program stream corrupt: " << nsecrets
                                             << " secret ranges");
    for (uint64_t s = 0; s < nsecrets; ++s) {
        const uint64_t base = getU64(is);
        const uint64_t len = getU64(is);
        program.markSecret(base, len);
    }
    return program;
}

void
Program::loadInto(ByteMemory &mem) const
{
    for (const auto &[addr, bytes] : data_)
        mem.writeBlock(addr, bytes.data(), bytes.size());
    for (size_t pc = 0; pc < code_.size(); ++pc) {
        const EncodedInstruction enc = encode(code_[pc]);
        mem.writeBlock(pc * kInstrBytes, enc.bytes.data(),
                       enc.bytes.size());
    }
}

} // namespace spt
