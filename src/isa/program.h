/**
 * @file
 * A loadable TRISC program: instruction text segment, initialized
 * data segments, symbol table, and entry point.
 */

#ifndef SPT_ISA_PROGRAM_H
#define SPT_ISA_PROGRAM_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/byte_memory.h"
#include "isa/instruction.h"

namespace spt {

/** Default base address of the first .data segment. */
constexpr uint64_t kDefaultDataBase = 0x100000;

/** Default initial stack pointer (stack grows down). */
constexpr uint64_t kDefaultStackTop = 0x7ff0000;

/** A byte range of simulated memory holding secret data, annotated
 *  on a program for the static constant-time lint (`src/analysis`).
 *  The dynamic engines ignore these: under SPT *all* memory starts
 *  tainted; the annotation marks which subset a lint finding about
 *  would be a real leak. */
struct SecretRange {
    uint64_t base = 0;
    uint64_t len = 0;

    bool contains(uint64_t addr) const
    {
        return addr >= base && addr - base < len;
    }
    bool overlaps(uint64_t lo, uint64_t hi) const // [lo, hi)
    {
        return lo < base + len && base < hi;
    }
};

class Program
{
  public:
    /** Appends an instruction; returns its pc (instruction index). */
    uint64_t append(const Instruction &inst);

    const std::vector<Instruction> &code() const { return code_; }
    size_t size() const { return code_.size(); }

    const Instruction &at(uint64_t pc) const;

    /** True iff @p pc addresses a valid instruction. */
    bool validPc(uint64_t pc) const { return pc < code_.size(); }

    uint64_t entry() const { return entry_; }
    void setEntry(uint64_t pc) { entry_ = pc; }

    /** Registers initialized data to be loaded at @p addr. */
    void addData(uint64_t addr, const std::vector<uint8_t> &bytes);
    void addData64(uint64_t addr, const std::vector<uint64_t> &words);

    /** Defines a symbol (label) with a value (pc or byte address). */
    void defineSymbol(const std::string &name, uint64_t value);
    bool hasSymbol(const std::string &name) const;

    /** Looks up a symbol; throws FatalError if missing. */
    uint64_t symbol(const std::string &name) const;

    /** Overwrites @p bytes bytes at @p addr inside an existing data
     *  segment (used for symbol fixups in data, e.g. jump tables). */
    void patchData(uint64_t addr, uint64_t value, unsigned bytes);

    /** Copies all initialized data segments into @p mem and writes
     *  the encoded text segment at pc*kInstrBytes addresses. */
    void loadInto(ByteMemory &mem) const;

    const std::map<uint64_t, std::vector<uint8_t>> &
    dataSegments() const
    {
        return data_;
    }

    /** Full symbol table (labels -> pc or byte address). */
    const std::map<std::string, uint64_t> &symbols() const
    {
        return symbols_;
    }

    /** Annotates @p len bytes at @p addr as secret input data (for
     *  the static constant-time lint; no dynamic effect). */
    void markSecret(uint64_t addr, uint64_t len);

    const std::vector<SecretRange> &secretRanges() const
    {
        return secrets_;
    }

  private:
    std::vector<Instruction> code_;
    std::map<uint64_t, std::vector<uint8_t>> data_;
    std::map<std::string, uint64_t> symbols_;
    std::vector<SecretRange> secrets_;
    uint64_t entry_ = 0;
};

/**
 * Program wire codec ("SPTPROG1": versioned, little-endian,
 * bounds-checked like every other artifact format in the repo).
 * Serializes the full loadable identity — instruction stream, entry
 * point, data segments, symbol table, secret ranges — so a program
 * shipped to the sweep daemon (sim/sweep_service.h) is
 * content-identical to the sender's: both sides derive the same
 * content fingerprint and therefore the same cache key. programLoad
 * rejects truncation, foreign magic, and version skew with
 * FatalError.
 */
void programSave(const Program &program, std::ostream &os);
Program programLoad(std::istream &is);

} // namespace spt

#endif // SPT_ISA_PROGRAM_H
