/**
 * @file
 * Functional semantics of TRISC instructions.
 *
 * Both the reference FunctionalCpu and the out-of-order core's
 * execution units evaluate instructions through this single
 * implementation, so timing simulation can never diverge
 * functionally from the reference.
 */

#ifndef SPT_ISA_SEMANTICS_H
#define SPT_ISA_SEMANTICS_H

#include <cstdint>

#include "isa/instruction.h"

namespace spt {

/** Outcome of evaluating one instruction (excluding memory data). */
struct ExecResult {
    uint64_t value = 0;     ///< dest value (ALU result / link address)
    bool is_taken = false;  ///< conditional branch outcome
    uint64_t target = 0;    ///< control-flow target pc (if taken/jump)
    uint64_t mem_addr = 0;  ///< effective address for loads/stores
};

/**
 * Evaluates @p inst given operand values. For loads, only mem_addr is
 * meaningful (the loaded value comes from the memory system and is
 * finalized with finishLoad()). For stores, mem_addr is the address
 * and rs2v the data. Division by zero follows RISC-V: quotient is all
 * ones, remainder is the dividend.
 */
ExecResult evaluateOp(const Instruction &inst, uint64_t pc,
                      uint64_t rs1v, uint64_t rs2v);

/** Applies load width/sign-extension to raw little-endian data. */
uint64_t finishLoad(Opcode op, uint64_t raw);

/** The fall-through pc of an instruction at @p pc. */
inline uint64_t nextPc(uint64_t pc) { return pc + 1; }

} // namespace spt

#endif // SPT_ISA_SEMANTICS_H
