#include "isa/assembler.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"

namespace spt {

namespace {

/** How a pending instruction's immediate must be patched in pass 2. */
enum class Fixup : uint8_t {
    kNone,      // immediate already final
    kPcRel,     // imm = symbol_value - pc (branches, jal)
    kAbsolute,  // imm = symbol_value (la)
};

struct PendingInst {
    Instruction inst;
    Fixup fixup = Fixup::kNone;
    std::string symbol;
    int line = 0;
};

/** A data word whose value is a symbol, patched in pass 2. */
struct DataFixup {
    uint64_t addr;
    unsigned bytes;
    std::string symbol;
    int line;
};

/** A `.secret symbol_or_addr, len` annotation, resolved in pass 2
 *  so it may name labels defined later in the file. */
struct SecretFixup {
    std::string symbol; ///< empty if `addr` already holds the base
    uint64_t addr = 0;
    uint64_t len = 0;
    int line = 0;
};

struct SourceError {
    int line;
    std::string message;
};

[[noreturn]] void
fail(int line, const std::string &msg)
{
    SPT_FATAL("assembler: line " << line << ": " << msg);
}

std::string
stripComment(const std::string &line)
{
    std::string out = line;
    for (const char *marker : {"#", ";", "//"}) {
        const size_t pos = out.find(marker);
        if (pos != std::string::npos)
            out = out.substr(0, pos);
    }
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty() || !out.empty())
        out.push_back(cur);
    return out;
}

std::optional<int64_t>
parseNumber(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    size_t i = 0;
    bool neg = false;
    if (s[0] == '-' || s[0] == '+') {
        neg = s[0] == '-';
        i = 1;
    }
    if (i >= s.size())
        return std::nullopt;
    uint64_t value = 0;
    if (s.size() > i + 2 && s[i] == '0' &&
        (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        for (size_t j = i + 2; j < s.size(); ++j) {
            const char c = s[j];
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else if (c >= 'A' && c <= 'F')
                digit = c - 'A' + 10;
            else
                return std::nullopt;
            value = value * 16 + static_cast<uint64_t>(digit);
        }
    } else {
        for (size_t j = i; j < s.size(); ++j) {
            if (!std::isdigit(static_cast<unsigned char>(s[j])))
                return std::nullopt;
            value = value * 10 + static_cast<uint64_t>(s[j] - '0');
        }
    }
    const int64_t sv = static_cast<int64_t>(value);
    return neg ? -sv : sv;
}

bool
isIdentifier(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_'
        && s[0] != '.')
        return false;
    for (char c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_'
            && c != '.')
            return false;
    return true;
}

/** Parses "imm(reg)" / "(reg)" memory operand syntax. */
void
parseMemOperand(int line, const std::string &s, int64_t &imm,
                uint8_t &base)
{
    const size_t open = s.find('(');
    const size_t close = s.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        fail(line, "expected imm(reg) memory operand, got '" + s + "'");
    const std::string imm_str = trim(s.substr(0, open));
    const std::string reg_str =
        trim(s.substr(open + 1, close - open - 1));
    if (imm_str.empty()) {
        imm = 0;
    } else {
        auto v = parseNumber(imm_str);
        if (!v)
            fail(line, "bad displacement '" + imm_str + "'");
        imm = *v;
    }
    base = parseRegister(reg_str);
}

const std::unordered_map<std::string, Opcode> &
mnemonicMap()
{
    static const std::unordered_map<std::string, Opcode> map = [] {
        std::unordered_map<std::string, Opcode> m;
        for (size_t i = 0;
             i < static_cast<size_t>(Opcode::kNumOpcodes); ++i) {
            const auto op = static_cast<Opcode>(i);
            m[std::string(mnemonic(op))] = op;
        }
        return m;
    }();
    return map;
}

class AssemblerImpl
{
  public:
    Program run(const std::string &source);

  private:
    Program prog_;
    std::vector<PendingInst> pending_;
    std::vector<DataFixup> data_fixups_;
    std::vector<SecretFixup> secret_fixups_;
    uint64_t data_cursor_ = kDefaultDataBase;
    bool in_data_ = false;
    std::string entry_symbol_;
    int entry_line_ = 0;

    void handleLine(int line, const std::string &raw);
    void handleDirective(int line, const std::string &mnem,
                         const std::vector<std::string> &ops);
    void handleInstruction(int line, const std::string &mnem,
                           const std::vector<std::string> &ops);
    void emitData(int line, unsigned bytes,
                  const std::vector<std::string> &ops);
    void definePendingLabel(int line, const std::string &label);
    void push(int line, const Instruction &inst,
              Fixup fixup = Fixup::kNone,
              const std::string &symbol = {});
    void setImmOrSymbol(int line, const std::string &operand,
                        Fixup fixup, PendingInst &pi);
    void resolve();
};

void
AssemblerImpl::definePendingLabel(int line, const std::string &label)
{
    if (!isIdentifier(label))
        fail(line, "bad label name '" + label + "'");
    const uint64_t value =
        in_data_ ? data_cursor_ : pending_.size();
    if (prog_.hasSymbol(label))
        fail(line, "duplicate label '" + label + "'");
    prog_.defineSymbol(label, value);
}

void
AssemblerImpl::push(int line, const Instruction &inst, Fixup fixup,
                    const std::string &symbol)
{
    PendingInst pi;
    pi.inst = inst;
    pi.fixup = fixup;
    pi.symbol = symbol;
    pi.line = line;
    pending_.push_back(pi);
}

void
AssemblerImpl::setImmOrSymbol(int line, const std::string &operand,
                              Fixup fixup, PendingInst &pi)
{
    auto v = parseNumber(operand);
    if (v) {
        pi.inst.imm = *v;
        pi.fixup = Fixup::kNone;
        return;
    }
    if (!isIdentifier(operand))
        fail(line, "expected number or symbol, got '" + operand + "'");
    pi.fixup = fixup;
    pi.symbol = operand;
}

void
AssemblerImpl::emitData(int line, unsigned bytes,
                        const std::vector<std::string> &ops)
{
    if (!in_data_)
        fail(line, "data directive outside .data section");
    std::vector<uint8_t> out;
    for (const std::string &op : ops) {
        auto v = parseNumber(op);
        if (!v) {
            if (!isIdentifier(op))
                fail(line, "bad data value '" + op + "'");
            // Symbol reference: emit zeros now, patch in pass 2.
            data_fixups_.push_back(
                {data_cursor_ + out.size(), bytes, op, line});
            v = 0;
        }
        const auto u = static_cast<uint64_t>(*v);
        for (unsigned i = 0; i < bytes; ++i)
            out.push_back(static_cast<uint8_t>(u >> (8 * i)));
    }
    prog_.addData(data_cursor_, out);
    data_cursor_ += out.size();
}

void
AssemblerImpl::handleDirective(int line, const std::string &mnem,
                               const std::vector<std::string> &ops)
{
    if (mnem == ".text") {
        in_data_ = false;
    } else if (mnem == ".data") {
        in_data_ = true;
        if (!ops.empty() && !ops[0].empty()) {
            auto v = parseNumber(ops[0]);
            if (!v || *v < 0)
                fail(line, "bad .data base address");
            data_cursor_ = static_cast<uint64_t>(*v);
        }
    } else if (mnem == ".quad") {
        emitData(line, 8, ops);
    } else if (mnem == ".word") {
        emitData(line, 4, ops);
    } else if (mnem == ".half") {
        emitData(line, 2, ops);
    } else if (mnem == ".byte") {
        emitData(line, 1, ops);
    } else if (mnem == ".zero" || mnem == ".space") {
        if (ops.size() != 1)
            fail(line, mnem + " needs one operand");
        auto v = parseNumber(ops[0]);
        if (!v || *v < 0)
            fail(line, "bad size for " + mnem);
        prog_.addData(
            data_cursor_,
            std::vector<uint8_t>(static_cast<size_t>(*v), 0));
        data_cursor_ += static_cast<uint64_t>(*v);
    } else if (mnem == ".align") {
        if (ops.size() != 1)
            fail(line, ".align needs one operand");
        auto v = parseNumber(ops[0]);
        if (!v || *v <= 0 ||
            !isPowerOfTwo(static_cast<uint64_t>(*v)))
            fail(line, ".align needs a power-of-two operand");
        const uint64_t aligned =
            alignUp(data_cursor_, static_cast<uint64_t>(*v));
        if (aligned > data_cursor_) {
            prog_.addData(data_cursor_,
                          std::vector<uint8_t>(
                              static_cast<size_t>(
                                  aligned - data_cursor_), 0));
            data_cursor_ = aligned;
        }
    } else if (mnem == ".entry") {
        if (ops.size() != 1 || !isIdentifier(ops[0]))
            fail(line, ".entry needs one label operand");
        entry_symbol_ = ops[0];
        entry_line_ = line;
    } else if (mnem == ".secret") {
        // `.secret base, len`: marks len bytes at base (a data label
        // or a byte address) as secret input for the static
        // constant-time lint.
        if (ops.size() != 2)
            fail(line, ".secret needs base and length operands");
        auto len = parseNumber(ops[1]);
        if (!len || *len <= 0)
            fail(line, "bad .secret length '" + ops[1] + "'");
        SecretFixup fx;
        fx.len = static_cast<uint64_t>(*len);
        fx.line = line;
        if (auto base = parseNumber(ops[0])) {
            if (*base < 0)
                fail(line, "bad .secret base '" + ops[0] + "'");
            fx.addr = static_cast<uint64_t>(*base);
        } else if (isIdentifier(ops[0])) {
            fx.symbol = ops[0];
        } else {
            fail(line, "bad .secret base '" + ops[0] + "'");
        }
        secret_fixups_.push_back(fx);
    } else {
        fail(line, "unknown directive '" + mnem + "'");
    }
}

void
AssemblerImpl::handleInstruction(int line, const std::string &mnem,
                                 const std::vector<std::string> &ops)
{
    // --- Pseudo-instructions -------------------------------------
    if (mnem == "mv") {
        if (ops.size() != 2)
            fail(line, "mv needs 2 operands");
        push(line, {Opcode::kMov, parseRegister(ops[0]),
                    parseRegister(ops[1]), 0, 0});
        return;
    }
    if (mnem == "j") {
        if (ops.size() != 1)
            fail(line, "j needs 1 operand");
        PendingInst pi;
        pi.inst = {Opcode::kJal, kRegZero, 0, 0, 0};
        pi.line = line;
        setImmOrSymbol(line, ops[0], Fixup::kPcRel, pi);
        pending_.push_back(pi);
        return;
    }
    if (mnem == "jr") {
        if (ops.size() != 1)
            fail(line, "jr needs 1 operand");
        push(line, {Opcode::kJalr, kRegZero, parseRegister(ops[0]),
                    0, 0});
        return;
    }
    if (mnem == "call") {
        if (ops.size() != 1)
            fail(line, "call needs 1 operand");
        PendingInst pi;
        pi.inst = {Opcode::kJal, kRegRa, 0, 0, 0};
        pi.line = line;
        setImmOrSymbol(line, ops[0], Fixup::kPcRel, pi);
        pending_.push_back(pi);
        return;
    }
    if (mnem == "ret") {
        if (!ops.empty())
            fail(line, "ret takes no operands");
        push(line, {Opcode::kJalr, kRegZero, kRegRa, 0, 0});
        return;
    }
    if (mnem == "la") {
        if (ops.size() != 2)
            fail(line, "la needs 2 operands");
        PendingInst pi;
        pi.inst = {Opcode::kLi, parseRegister(ops[0]), 0, 0, 0};
        pi.line = line;
        setImmOrSymbol(line, ops[1], Fixup::kAbsolute, pi);
        pending_.push_back(pi);
        return;
    }
    if (mnem == "beqz" || mnem == "bnez") {
        if (ops.size() != 2)
            fail(line, mnem + " needs 2 operands");
        PendingInst pi;
        pi.inst = {mnem == "beqz" ? Opcode::kBeq : Opcode::kBne, 0,
                   parseRegister(ops[0]), kRegZero, 0};
        pi.line = line;
        setImmOrSymbol(line, ops[1], Fixup::kPcRel, pi);
        pending_.push_back(pi);
        return;
    }
    if (mnem == "seqz") {
        if (ops.size() != 2)
            fail(line, "seqz needs 2 operands");
        push(line, {Opcode::kSltiu, parseRegister(ops[0]),
                    parseRegister(ops[1]), 0, 1});
        return;
    }
    if (mnem == "snez") {
        if (ops.size() != 2)
            fail(line, "snez needs 2 operands");
        push(line, {Opcode::kSltu, parseRegister(ops[0]), kRegZero,
                    parseRegister(ops[1]), 0});
        return;
    }

    // --- Real opcodes --------------------------------------------
    auto it = mnemonicMap().find(mnem);
    if (it == mnemonicMap().end())
        fail(line, "unknown mnemonic '" + mnem + "'");
    const Opcode op = it->second;
    const OpTraits &t = opTraits(op);

    Instruction inst;
    inst.op = op;
    switch (t.format) {
      case OpFormat::kRType:
        if (ops.size() != 3)
            fail(line, mnem + " needs 3 operands");
        inst.rd = parseRegister(ops[0]);
        inst.rs1 = parseRegister(ops[1]);
        inst.rs2 = parseRegister(ops[2]);
        push(line, inst);
        return;
      case OpFormat::kIType: {
        if (ops.size() != 3)
            fail(line, mnem + " needs 3 operands");
        inst.rd = parseRegister(ops[0]);
        inst.rs1 = parseRegister(ops[1]);
        auto v = parseNumber(ops[2]);
        if (!v)
            fail(line, "bad immediate '" + ops[2] + "'");
        inst.imm = *v;
        push(line, inst);
        return;
      }
      case OpFormat::kUnary:
        if (ops.size() != 2)
            fail(line, mnem + " needs 2 operands");
        inst.rd = parseRegister(ops[0]);
        inst.rs1 = parseRegister(ops[1]);
        push(line, inst);
        return;
      case OpFormat::kLiType: {
        if (ops.size() != 2)
            fail(line, mnem + " needs 2 operands");
        PendingInst pi;
        pi.inst = inst;
        pi.inst.rd = parseRegister(ops[0]);
        pi.line = line;
        // `li rd, symbol` behaves as `la`.
        setImmOrSymbol(line, ops[1], Fixup::kAbsolute, pi);
        pending_.push_back(pi);
        return;
      }
      case OpFormat::kLoad:
        if (ops.size() != 2)
            fail(line, mnem + " needs 2 operands");
        inst.rd = parseRegister(ops[0]);
        parseMemOperand(line, ops[1], inst.imm, inst.rs1);
        push(line, inst);
        return;
      case OpFormat::kStore:
        if (ops.size() != 2)
            fail(line, mnem + " needs 2 operands");
        inst.rs2 = parseRegister(ops[0]);
        parseMemOperand(line, ops[1], inst.imm, inst.rs1);
        push(line, inst);
        return;
      case OpFormat::kBranch: {
        if (ops.size() != 3)
            fail(line, mnem + " needs 3 operands");
        PendingInst pi;
        pi.inst = inst;
        pi.inst.rs1 = parseRegister(ops[0]);
        pi.inst.rs2 = parseRegister(ops[1]);
        pi.line = line;
        setImmOrSymbol(line, ops[2], Fixup::kPcRel, pi);
        pending_.push_back(pi);
        return;
      }
      case OpFormat::kJal: {
        if (ops.size() != 2)
            fail(line, mnem + " needs 2 operands");
        PendingInst pi;
        pi.inst = inst;
        pi.inst.rd = parseRegister(ops[0]);
        pi.line = line;
        setImmOrSymbol(line, ops[1], Fixup::kPcRel, pi);
        pending_.push_back(pi);
        return;
      }
      case OpFormat::kJalr: {
        if (ops.size() != 3)
            fail(line, mnem + " needs 3 operands");
        inst.rd = parseRegister(ops[0]);
        inst.rs1 = parseRegister(ops[1]);
        auto v = parseNumber(ops[2]);
        if (!v)
            fail(line, "bad immediate '" + ops[2] + "'");
        inst.imm = *v;
        push(line, inst);
        return;
      }
      case OpFormat::kNone:
        if (!ops.empty())
            fail(line, mnem + " takes no operands");
        push(line, inst);
        return;
    }
    fail(line, "unhandled instruction format");
}

void
AssemblerImpl::handleLine(int line, const std::string &raw)
{
    std::string text = trim(stripComment(raw));
    // Peel off any leading labels ("foo: bar: inst ...").
    while (true) {
        const size_t colon = text.find(':');
        if (colon == std::string::npos)
            break;
        const std::string head = trim(text.substr(0, colon));
        if (!isIdentifier(head))
            break;
        definePendingLabel(line, head);
        text = trim(text.substr(colon + 1));
    }
    if (text.empty())
        return;
    // Split mnemonic from operands.
    size_t sp = 0;
    while (sp < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[sp])))
        ++sp;
    const std::string mnem = text.substr(0, sp);
    const std::string rest = trim(text.substr(sp));
    std::vector<std::string> ops =
        rest.empty() ? std::vector<std::string>{}
                     : splitOperands(rest);
    for (const auto &o : ops)
        if (o.empty())
            fail(line, "empty operand");
    if (!mnem.empty() && mnem[0] == '.')
        handleDirective(line, mnem, ops);
    else
        handleInstruction(line, mnem, ops);
}

void
AssemblerImpl::resolve()
{
    for (size_t pc = 0; pc < pending_.size(); ++pc) {
        PendingInst &pi = pending_[pc];
        if (pi.fixup != Fixup::kNone) {
            if (!prog_.hasSymbol(pi.symbol))
                fail(pi.line, "undefined symbol '" + pi.symbol + "'");
            const uint64_t target = prog_.symbol(pi.symbol);
            if (pi.fixup == Fixup::kPcRel)
                pi.inst.imm = static_cast<int64_t>(target) -
                              static_cast<int64_t>(pc);
            else
                pi.inst.imm = static_cast<int64_t>(target);
        }
        prog_.append(pi.inst);
    }
    for (const DataFixup &fx : data_fixups_) {
        if (!prog_.hasSymbol(fx.symbol))
            fail(fx.line, "undefined symbol '" + fx.symbol + "'");
        prog_.patchData(fx.addr, prog_.symbol(fx.symbol), fx.bytes);
    }
    for (const SecretFixup &fx : secret_fixups_) {
        uint64_t base = fx.addr;
        if (!fx.symbol.empty()) {
            if (!prog_.hasSymbol(fx.symbol))
                fail(fx.line,
                     "undefined symbol '" + fx.symbol + "'");
            base = prog_.symbol(fx.symbol);
        }
        prog_.markSecret(base, fx.len);
    }
    if (!entry_symbol_.empty()) {
        if (!prog_.hasSymbol(entry_symbol_))
            fail(entry_line_,
                 "undefined entry symbol '" + entry_symbol_ + "'");
        prog_.setEntry(prog_.symbol(entry_symbol_));
    }
}

Program
AssemblerImpl::run(const std::string &source)
{
    std::istringstream in(source);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        handleLine(line_no, line);
    }
    resolve();
    if (prog_.size() == 0)
        SPT_FATAL("assembler: empty program");
    return std::move(prog_);
}

} // namespace

Program
assemble(const std::string &source)
{
    AssemblerImpl impl;
    return impl.run(source);
}

} // namespace spt
