#include "isa/semantics.h"

#include "common/bit_util.h"
#include "common/logging.h"

namespace spt {

namespace {

int64_t asS(uint64_t v) { return static_cast<int64_t>(v); }
uint64_t asU(int64_t v) { return static_cast<uint64_t>(v); }

uint64_t
divSigned(uint64_t a, uint64_t b)
{
    if (b == 0)
        return ~uint64_t{0};
    if (asS(a) == INT64_MIN && asS(b) == -1)
        return a; // overflow case, RISC-V semantics
    return asU(asS(a) / asS(b));
}

uint64_t
remSigned(uint64_t a, uint64_t b)
{
    if (b == 0)
        return a;
    if (asS(a) == INT64_MIN && asS(b) == -1)
        return 0;
    return asU(asS(a) % asS(b));
}

uint64_t
mulHigh(uint64_t a, uint64_t b)
{
    return asU(static_cast<int64_t>(
        (static_cast<__int128>(asS(a)) * static_cast<__int128>(asS(b)))
        >> 64));
}

} // namespace

ExecResult
evaluateOp(const Instruction &inst, uint64_t pc, uint64_t rs1v,
           uint64_t rs2v)
{
    ExecResult r;
    const uint64_t imm = static_cast<uint64_t>(inst.imm);
    switch (inst.op) {
      case Opcode::kAdd: r.value = rs1v + rs2v; break;
      case Opcode::kSub: r.value = rs1v - rs2v; break;
      case Opcode::kAnd: r.value = rs1v & rs2v; break;
      case Opcode::kOr:  r.value = rs1v | rs2v; break;
      case Opcode::kXor: r.value = rs1v ^ rs2v; break;
      case Opcode::kSll: r.value = rs1v << (rs2v & 63); break;
      case Opcode::kSrl: r.value = rs1v >> (rs2v & 63); break;
      case Opcode::kSra:
        r.value = asU(asS(rs1v) >> (rs2v & 63));
        break;
      case Opcode::kMul:  r.value = rs1v * rs2v; break;
      case Opcode::kMulh: r.value = mulHigh(rs1v, rs2v); break;
      case Opcode::kDiv:  r.value = divSigned(rs1v, rs2v); break;
      case Opcode::kRem:  r.value = remSigned(rs1v, rs2v); break;
      case Opcode::kSlt:
        r.value = asS(rs1v) < asS(rs2v) ? 1 : 0;
        break;
      case Opcode::kSltu: r.value = rs1v < rs2v ? 1 : 0; break;
      case Opcode::kMin:
        r.value = asS(rs1v) < asS(rs2v) ? rs1v : rs2v;
        break;
      case Opcode::kMax:
        r.value = asS(rs1v) > asS(rs2v) ? rs1v : rs2v;
        break;
      case Opcode::kMinu: r.value = rs1v < rs2v ? rs1v : rs2v; break;
      case Opcode::kMaxu: r.value = rs1v > rs2v ? rs1v : rs2v; break;

      case Opcode::kAddi:  r.value = rs1v + imm; break;
      case Opcode::kAndi:  r.value = rs1v & imm; break;
      case Opcode::kOri:   r.value = rs1v | imm; break;
      case Opcode::kXori:  r.value = rs1v ^ imm; break;
      case Opcode::kSlli:  r.value = rs1v << (imm & 63); break;
      case Opcode::kSrli:  r.value = rs1v >> (imm & 63); break;
      case Opcode::kSrai:
        r.value = asU(asS(rs1v) >> (imm & 63));
        break;
      case Opcode::kSlti:
        r.value = asS(rs1v) < inst.imm ? 1 : 0;
        break;
      case Opcode::kSltiu: r.value = rs1v < imm ? 1 : 0; break;

      case Opcode::kMov: r.value = rs1v; break;
      case Opcode::kNot: r.value = ~rs1v; break;
      case Opcode::kNeg: r.value = asU(-asS(rs1v)); break;
      case Opcode::kLi:  r.value = imm; break;

      case Opcode::kLb: case Opcode::kLbu:
      case Opcode::kLh: case Opcode::kLhu:
      case Opcode::kLw: case Opcode::kLwu:
      case Opcode::kLd:
        r.mem_addr = rs1v + imm;
        break;

      case Opcode::kSb: case Opcode::kSh:
      case Opcode::kSw: case Opcode::kSd:
        r.mem_addr = rs1v + imm;
        r.value = rs2v; // store data
        break;

      case Opcode::kBeq:
        r.is_taken = rs1v == rs2v;
        r.target = pc + imm;
        break;
      case Opcode::kBne:
        r.is_taken = rs1v != rs2v;
        r.target = pc + imm;
        break;
      case Opcode::kBlt:
        r.is_taken = asS(rs1v) < asS(rs2v);
        r.target = pc + imm;
        break;
      case Opcode::kBge:
        r.is_taken = asS(rs1v) >= asS(rs2v);
        r.target = pc + imm;
        break;
      case Opcode::kBltu:
        r.is_taken = rs1v < rs2v;
        r.target = pc + imm;
        break;
      case Opcode::kBgeu:
        r.is_taken = rs1v >= rs2v;
        r.target = pc + imm;
        break;

      case Opcode::kJal:
        r.is_taken = true;
        r.value = pc + 1;
        r.target = pc + imm;
        break;
      case Opcode::kJalr:
        r.is_taken = true;
        r.value = pc + 1;
        r.target = rs1v + imm;
        break;

      case Opcode::kNop:
      case Opcode::kHalt:
        break;

      default:
        SPT_PANIC("unhandled opcode in evaluateOp");
    }
    return r;
}

uint64_t
finishLoad(Opcode op, uint64_t raw)
{
    const OpTraits &t = opTraits(op);
    SPT_ASSERT(t.is_load, "finishLoad on non-load");
    const unsigned bits_width = t.mem_bytes * 8;
    if (bits_width >= 64)
        return raw;
    if (t.load_signed)
        return asU(signExtend(raw, bits_width));
    return raw & ((uint64_t{1} << bits_width) - 1);
}

} // namespace spt
