#include "isa/encoding.h"

#include "common/logging.h"

namespace spt {

EncodedInstruction
encode(const Instruction &inst)
{
    EncodedInstruction enc;
    enc.bytes[0] = static_cast<uint8_t>(inst.op);
    enc.bytes[1] = inst.rd;
    enc.bytes[2] = inst.rs1;
    enc.bytes[3] = inst.rs2;
    const auto imm = static_cast<uint64_t>(inst.imm);
    for (int i = 0; i < 8; ++i)
        enc.bytes[4 + i] = static_cast<uint8_t>(imm >> (8 * i));
    return enc;
}

Instruction
decode(const EncodedInstruction &enc)
{
    Instruction inst;
    const uint8_t op = enc.bytes[0];
    if (op >= static_cast<uint8_t>(Opcode::kNumOpcodes))
        SPT_FATAL("decode: invalid opcode byte " << int{op});
    inst.op = static_cast<Opcode>(op);
    inst.rd = enc.bytes[1];
    inst.rs1 = enc.bytes[2];
    inst.rs2 = enc.bytes[3];
    if (inst.rd >= kNumArchRegs || inst.rs1 >= kNumArchRegs ||
        inst.rs2 >= kNumArchRegs)
        SPT_FATAL("decode: register specifier out of range");
    uint64_t imm = 0;
    for (int i = 0; i < 8; ++i)
        imm |= static_cast<uint64_t>(enc.bytes[4 + i]) << (8 * i);
    inst.imm = static_cast<int64_t>(imm);
    for (int i = 12; i < 16; ++i)
        if (enc.bytes[i] != 0)
            SPT_FATAL("decode: nonzero reserved byte " << i);
    return inst;
}

} // namespace spt
