#include "isa/instruction.h"

#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace spt {

namespace {

const std::unordered_map<std::string, uint8_t> &
aliasMap()
{
    static const std::unordered_map<std::string, uint8_t> map = [] {
        std::unordered_map<std::string, uint8_t> m;
        m["zero"] = 0;
        m["ra"] = 1;
        m["sp"] = 2;
        m["gp"] = 3;
        m["tp"] = 4;
        m["t0"] = 5;
        m["t1"] = 6;
        m["t2"] = 7;
        m["s0"] = 8;
        m["fp"] = 8;
        m["s1"] = 9;
        for (int i = 0; i <= 7; ++i)
            m["a" + std::to_string(i)] = static_cast<uint8_t>(10 + i);
        for (int i = 2; i <= 11; ++i)
            m["s" + std::to_string(i)] = static_cast<uint8_t>(16 + i);
        for (int i = 3; i <= 6; ++i)
            m["t" + std::to_string(i)] = static_cast<uint8_t>(25 + i);
        return m;
    }();
    return map;
}

} // namespace

uint8_t
parseRegister(const std::string &name)
{
    if (name.size() >= 2 && name[0] == 'x') {
        bool numeric = true;
        for (size_t i = 1; i < name.size(); ++i)
            numeric = numeric && std::isdigit(name[i]);
        if (numeric) {
            const int n = std::stoi(name.substr(1));
            if (n >= 0 && n < static_cast<int>(kNumArchRegs))
                return static_cast<uint8_t>(n);
            SPT_FATAL("register out of range: " << name);
        }
    }
    auto it = aliasMap().find(name);
    if (it == aliasMap().end())
        SPT_FATAL("unknown register name: " << name);
    return it->second;
}

std::string
registerName(uint8_t reg)
{
    return "x" + std::to_string(reg);
}

std::string
toString(const Instruction &inst)
{
    const OpTraits &t = opTraits(inst.op);
    std::ostringstream os;
    os << t.mnemonic;
    switch (t.format) {
      case OpFormat::kRType:
        os << " " << registerName(inst.rd) << ", "
           << registerName(inst.rs1) << ", " << registerName(inst.rs2);
        break;
      case OpFormat::kIType:
        os << " " << registerName(inst.rd) << ", "
           << registerName(inst.rs1) << ", " << inst.imm;
        break;
      case OpFormat::kUnary:
        os << " " << registerName(inst.rd) << ", "
           << registerName(inst.rs1);
        break;
      case OpFormat::kLiType:
        os << " " << registerName(inst.rd) << ", " << inst.imm;
        break;
      case OpFormat::kLoad:
        os << " " << registerName(inst.rd) << ", " << inst.imm << "("
           << registerName(inst.rs1) << ")";
        break;
      case OpFormat::kStore:
        os << " " << registerName(inst.rs2) << ", " << inst.imm << "("
           << registerName(inst.rs1) << ")";
        break;
      case OpFormat::kBranch:
        os << " " << registerName(inst.rs1) << ", "
           << registerName(inst.rs2) << ", " << inst.imm;
        break;
      case OpFormat::kJal:
        os << " " << registerName(inst.rd) << ", " << inst.imm;
        break;
      case OpFormat::kJalr:
        os << " " << registerName(inst.rd) << ", "
           << registerName(inst.rs1) << ", " << inst.imm;
        break;
      case OpFormat::kNone:
        break;
    }
    return os.str();
}

} // namespace spt
