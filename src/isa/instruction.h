/**
 * @file
 * TRISC instruction record and register-name utilities.
 */

#ifndef SPT_ISA_INSTRUCTION_H
#define SPT_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "isa/opcode.h"

namespace spt {

/** Number of architectural integer registers; x0 is hardwired zero. */
constexpr unsigned kNumArchRegs = 32;

/** Well-known ABI register numbers. */
constexpr uint8_t kRegZero = 0;
constexpr uint8_t kRegRa = 1;   ///< return address
constexpr uint8_t kRegSp = 2;   ///< stack pointer

/**
 * A decoded TRISC instruction. PCs are instruction indices (each
 * instruction occupies one slot; in memory terms each instruction is
 * kInstrBytes wide and instruction address = pc * kInstrBytes).
 */
struct Instruction {
    Opcode op = Opcode::kNop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;

    bool operator==(const Instruction &) const = default;
};

/** Byte footprint of one instruction in simulated memory (for the
 *  I-cache model and the binary encoding). */
constexpr uint64_t kInstrBytes = 16;

/** Renders an instruction in assembler syntax. */
std::string toString(const Instruction &inst);

/** Maps "x7", "a0", "sp", ... to a register number; throws
 *  FatalError on unknown names. */
uint8_t parseRegister(const std::string &name);

/** Canonical name ("x7") for a register number. */
std::string registerName(uint8_t reg);

} // namespace spt

#endif // SPT_ISA_INSTRUCTION_H
