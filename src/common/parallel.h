/**
 * @file
 * Deterministic index-sharded parallel execution for experiment
 * sweeps.
 *
 * `parallelFor(n, jobs, fn)` executes `fn(i)` for every index in
 * [0, n) on a fixed-size pool of `jobs` worker threads. Indices are
 * claimed from a shared atomic cursor, so scheduling order is
 * nondeterministic — determinism is the *caller's* obligation and is
 * achieved structurally: each invocation writes only to its own
 * index-addressed result slot, so the assembled output is
 * bit-identical regardless of thread count or completion order.
 *
 * Threading contract (see also rng.h and sim/exp_runner.h): `fn`
 * must not touch shared mutable state. One Simulator (and one Rng)
 * per invocation, confined to the executing thread. The first
 * exception thrown by any invocation wins: remaining indices are
 * abandoned, all workers join, and the exception is rethrown on the
 * calling thread — the pool never deadlocks on a throwing job.
 */

#ifndef SPT_COMMON_PARALLEL_H
#define SPT_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>

namespace spt {

/** Number of hardware threads, never less than 1. */
unsigned hardwareJobs();

/** Worker-count resolution shared by every sweep entry point:
 *  an explicit nonzero @p requested wins; otherwise the SPT_JOBS
 *  environment variable (if set and a positive integer); otherwise
 *  hardwareJobs(). The result is always >= 1. */
unsigned resolveJobs(unsigned requested = 0);

/** Scans argv for "--jobs N" / "--jobs=N" and returns
 *  resolveJobs(N); returns resolveJobs(0) when the flag is absent.
 *  Throws FatalError on a malformed value. */
unsigned jobsFromArgs(int argc, char **argv);

/** Runs fn(0) .. fn(n-1) on min(jobs, n) worker threads (inline on
 *  the calling thread when that is 1). Rethrows the first exception
 *  any invocation raised, after all workers have joined. */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

} // namespace spt

#endif // SPT_COMMON_PARALLEL_H
