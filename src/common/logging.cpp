#include "common/logging.h"

#include <iostream>

namespace spt {

namespace {
bool g_verbose = true;
} // namespace

namespace detail {

std::string
formatLocation(const char *file, int line)
{
    std::ostringstream os;
    os << file << ":" << line << ": ";
    return os.str();
}

} // namespace detail

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (g_verbose)
        std::cerr << "info: " << msg << "\n";
}

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

} // namespace spt
