#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace spt {

namespace {

// Concurrent Simulators (common/parallel.h sweeps) log from worker
// threads: the verbose flag is atomic and every message is emitted
// as one fwrite under a mutex so lines never interleave.
std::atomic<bool> g_verbose{true};
std::mutex g_stderr_mutex;

// Level/timestamp settings resolve from the environment exactly
// once (std::call_once) so the first log line from any thread sees
// a consistent configuration; setLogLevel()/setLogTimestamps()
// override afterwards.
std::once_flag g_env_once;
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_timestamps{false};

const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

void emitLine(const char *prefix, const std::string &msg);

void
resolveEnv()
{
    std::call_once(g_env_once, [] {
        if (const char *lv = std::getenv("SPT_LOG_LEVEL")) {
            try {
                g_level.store(static_cast<int>(parseLogLevel(lv)),
                              std::memory_order_relaxed);
            } catch (const FatalError &) {
                // A typo in the environment should not abort a long
                // sweep: keep the default and say so. emitLine, not
                // warn(): warn() re-enters resolveEnv's call_once.
                emitLine(
                    "warn: ",
                    std::string("ignoring unrecognised SPT_LOG_LEVEL=") +
                        lv + " (want debug|info|warn)");
            }
        }
        if (const char *ts = std::getenv("SPT_LOG_TS")) {
            g_timestamps.store(ts[0] != '\0' &&
                                   std::string(ts) != "0",
                               std::memory_order_relaxed);
        }
    });
}

void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 24);
    if (g_timestamps.load(std::memory_order_relaxed)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "[%.6f] ",
                      logMonotonicSeconds());
        line += buf;
    }
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(g_stderr_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

namespace detail {

std::string
formatLocation(const char *file, int line)
{
    std::ostringstream os;
    os << file << ":" << line << ": ";
    return os.str();
}

} // namespace detail

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "debug")
        return LogLevel::kDebug;
    if (name == "info")
        return LogLevel::kInfo;
    if (name == "warn")
        return LogLevel::kWarn;
    SPT_FATAL("unknown log level '" << name
                                    << "' (want debug|info|warn)");
}

LogLevel
logLevel()
{
    resolveEnv();
    return static_cast<LogLevel>(
        g_level.load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    resolveEnv(); // pin env resolution so it can't overwrite this
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logTimestamps()
{
    resolveEnv();
    return g_timestamps.load(std::memory_order_relaxed);
}

void
setLogTimestamps(bool enabled)
{
    resolveEnv();
    g_timestamps.store(enabled, std::memory_order_relaxed);
}

double
logMonotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - g_start)
        .count();
}

void
warn(const std::string &msg)
{
    resolveEnv();
    emitLine("warn: ", msg);
}

void
inform(const std::string &msg)
{
    if (g_verbose.load(std::memory_order_relaxed) &&
        logLevel() <= LogLevel::kInfo)
        emitLine("info: ", msg);
}

void
debug(const std::string &msg)
{
    if (g_verbose.load(std::memory_order_relaxed) &&
        logLevel() == LogLevel::kDebug)
        emitLine("debug: ", msg);
}

void
report(const std::string &msg)
{
    resolveEnv();
    emitLine("", msg);
}

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

} // namespace spt
