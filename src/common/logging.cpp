#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace spt {

namespace {

// Concurrent Simulators (common/parallel.h sweeps) log from worker
// threads: the verbose flag is atomic and every message is emitted
// as one fwrite under a mutex so lines never interleave.
std::atomic<bool> g_verbose{true};
std::mutex g_stderr_mutex;

void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 8);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(g_stderr_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

namespace detail {

std::string
formatLocation(const char *file, int line)
{
    std::ostringstream os;
    os << file << ":" << line << ": ";
    return os.str();
}

} // namespace detail

void
warn(const std::string &msg)
{
    emitLine("warn: ", msg);
}

void
inform(const std::string &msg)
{
    if (g_verbose.load(std::memory_order_relaxed))
        emitLine("info: ", msg);
}

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

} // namespace spt
