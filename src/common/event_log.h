/**
 * @file
 * Structured event stream for the sweep fleet: every interesting
 * transition (submit, dequeue, job start/finish, cache hit, batch
 * done, crash) is one compact single-line JSON record, appended to
 * a JSONL file and mirrored into a bounded in-memory flight
 * recorder for post-mortems.
 *
 * Record schema (DESIGN.md §15):
 *
 *   {"ts":<host seconds since process start>,
 *    "lvl":"debug"|"info"|"warn",
 *    "sys":"<subsystem>", "ev":"<event name>",
 *    "span":"<span id>", "parent":"<parent span id>",
 *    ...caller fields in call order...}
 *
 * "ts" and any host-derived fields make this stream intentionally
 * non-deterministic — it is an observability channel, disjoint by
 * construction from stdout and the BENCH/report artifacts that the
 * byte-equality gates compare. Values are rendered with the same
 * escaping as common/json.h (jsonQuoted), so a JSONL consumer and
 * a report consumer see identical string semantics.
 *
 * Span ids ("s<pid>-<seq>") thread one batch's causality from the
 * client through the daemon into each ExpRunner job slot: the
 * daemon returns the batch span to the submitting client, and job
 * records carry it as "parent".
 */

#ifndef SPT_COMMON_EVENT_LOG_H
#define SPT_COMMON_EVENT_LOG_H

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace spt {

/** Severity of an event record (mirrors LogLevel, kept separate so
 *  the stderr log level and the event-log level can differ). */
enum class EventLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
};

/** Parses "debug"/"info"/"warn" (SPT_FATAL on anything else). */
EventLevel parseEventLevel(const std::string &name);

/** Ordered field list for one record; values are pre-rendered JSON
 *  fragments so emit() is a straight concatenation. */
class EventFields
{
  public:
    EventFields &str(const std::string &key, const std::string &v);
    EventFields &num(const std::string &key, uint64_t v);
    EventFields &num(const std::string &key, int64_t v);
    EventFields &real(const std::string &key, double v,
                      int precision = 6);
    EventFields &boolean(const std::string &key, bool v);
    /** Splices @p json (one valid JSON value) verbatim. */
    EventFields &raw(const std::string &key, const std::string &json);

    const std::vector<std::pair<std::string, std::string>> &
    fields() const
    {
        return kv_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> kv_;
};

/** Bounded per-subsystem ring of the most recent rendered records,
 *  kept even when no file sink is open so crash paths can dump the
 *  events leading up to a failure. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(size_t capacity_per_subsystem = 64)
        : capacity_(capacity_per_subsystem)
    {}

    void record(const std::string &subsystem,
                const std::string &line);

    /** Most recent records for one subsystem, oldest first. */
    std::vector<std::string> dump(const std::string &subsystem) const;
    /** All subsystems, each oldest first, subsystems sorted. */
    std::vector<std::string> dumpAll() const;

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::map<std::string, std::deque<std::string>> rings_;
};

/** Thread-safe JSONL event sink. Construction leaves it closed
 *  (flight recorder only); openFile() attaches the file sink. */
class EventLog
{
  public:
    EventLog() = default;
    ~EventLog();
    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /** Appends to @p path (created if missing); SPT_FATAL if it
     *  cannot be opened. */
    void openFile(const std::string &path);
    void close();
    /** True when a file sink is attached. The flight recorder runs
     *  regardless. */
    bool enabled() const;

    /** Records below @p level are dropped from the file sink (they
     *  still enter the flight recorder). Default kInfo. */
    void setMinLevel(EventLevel level);

    void emit(EventLevel level, const std::string &subsystem,
              const std::string &event, const EventFields &fields,
              const std::string &span = std::string(),
              const std::string &parent = std::string());

    FlightRecorder &recorder() { return recorder_; }

    /** Process-unique span id "s<pid>-<seq>". */
    static std::string newSpanId();

    /** Process-wide log. First access resolves SPT_EVENT_LOG (file
     *  path) and SPT_EVENT_LOG_LEVEL from the environment; tools
     *  with --event-log flags call openFile() explicitly. */
    static EventLog &global();

  private:
    mutable std::mutex mu_; ///< file handle + write serialization
    FILE *file_ = nullptr;
    int min_level_ = static_cast<int>(EventLevel::kInfo);
    FlightRecorder recorder_;
};

} // namespace spt

#endif // SPT_COMMON_EVENT_LOG_H
