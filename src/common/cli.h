/**
 * @file
 * Minimal shared command-line helpers for the tools/ binaries.
 *
 * Exit-code convention (mirrors common Unix practice and is pinned
 * by the CLI hardening tests): 0 success, 1 "the tool ran and the
 * check failed" (lint findings, trace inconsistencies, chaos
 * verdicts), 2 usage/environment errors (unknown flag, malformed
 * number, unreadable or unwritable file, unknown workload).
 *
 * toolMain() turns FatalError (user error, SPT_FATAL) into exit 2
 * with a one-line diagnostic and PanicError/std::exception
 * (simulator bugs) into exit 70 (EX_SOFTWARE) so scripts can tell
 * "you misused me" from "I am broken".
 */

#ifndef SPT_COMMON_CLI_H
#define SPT_COMMON_CLI_H

#include <cstdint>
#include <functional>
#include <string>

namespace spt {

/** Parses a non-negative decimal integer; SPT_FATAL (-> exit 2 via
 *  toolMain) on empty input, trailing garbage, or overflow of
 *  @p max. @p what names the flag in the diagnostic. */
uint64_t parseUnsigned(const std::string &text, const char *what,
                       uint64_t max = UINT64_MAX);

/** Parses a finite non-negative decimal real (e.g. "--deadline
 *  2.5"); SPT_FATAL on empty input, trailing garbage, negative or
 *  non-finite values. */
double parseDouble(const std::string &text, const char *what);

/** Runs @p body, mapping exceptions to the tool exit-code
 *  convention above. @p tool prefixes the diagnostic line. */
int toolMain(const char *tool, const std::function<int()> &body);

} // namespace spt

#endif // SPT_COMMON_CLI_H
