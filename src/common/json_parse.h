/**
 * @file
 * Minimal JSON reader, the inverse of common/json.h's JsonWriter.
 *
 * The sweep service (sim/sweep_service.h) speaks a small
 * length-prefixed JSON protocol; this parser turns one request or
 * response frame into a JsonValue tree. It accepts exactly the
 * JSON the JsonWriter emits (objects, arrays, strings with \"
 * escapes, integers, fixed-point doubles, booleans, null) plus
 * arbitrary whitespace, and rejects everything else with
 * FatalError — a malformed frame must become a structured protocol
 * error, never undefined behavior.
 *
 * Numbers keep their raw token alongside the double value so
 * 64-bit integers (seeds, cycle counts) round-trip exactly:
 * asU64() re-parses the token instead of going through the
 * double's 53-bit mantissa.
 */

#ifndef SPT_COMMON_JSON_PARSE_H
#define SPT_COMMON_JSON_PARSE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spt {

class JsonValue
{
  public:
    enum class Type : uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    /** Typed accessors; SPT_FATAL on a type mismatch. */
    bool asBool() const;
    double asDouble() const;
    /** Exact for any uint64 the writer emitted (re-parses the raw
     *  token); SPT_FATAL on sign/overflow/fraction. */
    uint64_t asU64() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** Object member lookup; SPT_FATAL if absent or not an object. */
    const JsonValue &at(const std::string &key) const;
    /** True iff this is an object with member @p key. */
    bool has(const std::string &key) const;

    /** Convenience lookups with defaults for optional members. */
    uint64_t getU64(const std::string &key, uint64_t dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

  private:
    friend JsonValue parseJson(const std::string &);
    friend class JsonParser;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::string token_; ///< raw number token (exact u64 round-trip)
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/** Parses one JSON document; SPT_FATAL on any syntax error or
 *  trailing garbage. */
JsonValue parseJson(const std::string &text);

} // namespace spt

#endif // SPT_COMMON_JSON_PARSE_H
