#include "common/byte_memory.h"

#include "common/logging.h"

namespace spt {

ByteMemory::Page &
ByteMemory::pageFor(uint64_t addr)
{
    const uint64_t page_id = addr / kPageBytes;
    auto it = pages_.find(page_id);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(page_id, std::move(page)).first;
    }
    return *it->second;
}

const ByteMemory::Page *
ByteMemory::pageForConst(uint64_t addr) const
{
    const uint64_t page_id = addr / kPageBytes;
    auto it = pages_.find(page_id);
    return it == pages_.end() ? nullptr : it->second.get();
}

uint8_t
ByteMemory::readByte(uint64_t addr) const
{
    const Page *page = pageForConst(addr);
    return page ? (*page)[addr % kPageBytes] : 0;
}

void
ByteMemory::writeByte(uint64_t addr, uint8_t value)
{
    pageFor(addr)[addr % kPageBytes] = value;
}

uint64_t
ByteMemory::read(uint64_t addr, unsigned bytes) const
{
    SPT_ASSERT(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
               "unsupported access size " << bytes);
    uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
ByteMemory::write(uint64_t addr, uint64_t value, unsigned bytes)
{
    SPT_ASSERT(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8,
               "unsupported access size " << bytes);
    for (unsigned i = 0; i < bytes; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
ByteMemory::writeBlock(uint64_t addr, const uint8_t *data, size_t len)
{
    for (size_t i = 0; i < len; ++i)
        writeByte(addr + i, data[i]);
}

void
ByteMemory::readBlock(uint64_t addr, uint8_t *out, size_t len) const
{
    for (size_t i = 0; i < len; ++i)
        out[i] = readByte(addr + i);
}

} // namespace spt
