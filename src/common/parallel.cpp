#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/logging.h"

namespace spt {

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace {

unsigned
parsePositive(const std::string &text, const char *what)
{
    // parseUnsigned is the strict digits-only parser (common/cli.h):
    // unlike the stoul this used to ride on, it rejects trailing
    // junk ("4x"), a leading sign ("-1" silently wrapped to a huge
    // unsigned under stoul), embedded whitespace, and overflow — all
    // with the FatalError -> exit-2 convention.
    const uint64_t value = parseUnsigned(text, what, 4096);
    if (value == 0)
        SPT_FATAL(what << " must be a positive integer, got \""
                       << text << "\"");
    return static_cast<unsigned>(value);
}

} // namespace

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    if (const char *env = std::getenv("SPT_JOBS"); env && *env)
        return parsePositive(env, "SPT_JOBS");
    return hardwareJobs();
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            if (i + 1 >= argc)
                SPT_FATAL("--jobs requires a value");
            return resolveJobs(parsePositive(argv[i + 1], "--jobs"));
        }
        if (arg.rfind("--jobs=", 0) == 0)
            return resolveJobs(
                parsePositive(arg.substr(7), "--jobs"));
    }
    return resolveJobs(0);
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(resolveJobs(jobs), n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_acquire))
                return;
            try {
                fn(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
                failed.store(true, std::memory_order_release);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace spt
