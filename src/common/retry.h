/**
 * @file
 * Deterministic exponential backoff with jitter, shared by the
 * sweep-service client (sim/sweep_service.cpp), the spt_sweep CLI
 * and the service-chaos harness (DESIGN.md §16).
 *
 * Retry delays must be jittered — a fleet of clients reconnecting
 * to a restarted daemon in lockstep is its own outage — but this
 * repo's reproducibility bar extends to its failure handling: a
 * chaos campaign that retries must do so on the same schedule every
 * run. The jitter therefore comes from the deterministic xoshiro
 * Rng (common/rng.h) seeded by the caller (clients seed from their
 * batch token hash, so two concurrent clients still decorrelate),
 * never from wall-clock entropy.
 *
 * Schedule: attempt k (0-based) sleeps uniformly in
 * [d/2, d] where d = min(base_ms << k, max_ms) — "equal jitter",
 * which keeps a floor under the delay (pure full-jitter can draw
 * ~0ms repeatedly and hammer a dying daemon) while still spreading
 * a thundering herd over half a window.
 */

#ifndef SPT_COMMON_RETRY_H
#define SPT_COMMON_RETRY_H

#include <cstdint>

#include "common/rng.h"

namespace spt {

/** Retry budget + backoff shape. The defaults ride out a daemon
 *  kill-and-restart gap of a few seconds (the service-recovery
 *  gate's window) without making a genuinely dead daemon hang a
 *  client for more than ~10s. */
struct RetryPolicy {
    /** Consecutive transport failures tolerated before giving up
     *  (a success resets the count). */
    unsigned max_attempts = 8;
    uint32_t base_ms = 25;
    uint32_t max_ms = 2000;
};

/** One retry sequence: owns the attempt counter and the jitter
 *  stream. Function-local use only (the Rng it holds is not
 *  thread-safe, rng.h contract). */
class RetryBackoff
{
  public:
    RetryBackoff(const RetryPolicy &policy, uint64_t jitter_seed)
        : policy_(policy), rng_(jitter_seed | 1)
    {
    }

    /** True while another attempt is allowed. */
    bool canRetry() const { return attempt_ < policy_.max_attempts; }

    unsigned attempt() const { return attempt_; }

    /** Consumes one attempt and returns the jittered delay to sleep
     *  before it. */
    uint32_t
    nextDelayMs()
    {
        uint64_t d = policy_.base_ms;
        // Saturating shift: attempt counts past 32 must not wrap.
        for (unsigned k = 0; k < attempt_ && d < policy_.max_ms; ++k)
            d <<= 1;
        if (d > policy_.max_ms)
            d = policy_.max_ms;
        ++attempt_;
        const uint64_t half = d / 2;
        return static_cast<uint32_t>(
            half + rng_.nextBelow(d - half + 1));
    }

    /** A successful round trip ends the failure streak. */
    void reset() { attempt_ = 0; }

  private:
    RetryPolicy policy_;
    Rng rng_;
    unsigned attempt_ = 0;
};

} // namespace spt

#endif // SPT_COMMON_RETRY_H
