/**
 * @file
 * Deterministic pseudo-random number generation for workload inputs.
 *
 * Workload data must be bit-identical across runs and platforms so
 * that experiment results are reproducible; we therefore use our own
 * xoshiro256** implementation rather than std::mt19937 (whose
 * distributions are implementation-defined).
 *
 * Threading contract (audited for the parallel sweep runner,
 * sim/exp_runner.h): there are no global Rng instances anywhere in
 * the tree — every user (program_fuzzer, spec_kernels, ct_kernels)
 * constructs a function-local Rng from a fixed seed, so each
 * instance is confined to the thread that created it. Keep it that
 * way: an Rng must never be shared across threads (next() mutates
 * s_[] unsynchronized), and any future cross-thread use needs one
 * independently-seeded instance per thread. The lazily-built
 * workload/golden-suite registries that consume these generators
 * are C++11 magic statics: initialization is thread-safe and the
 * vectors are immutable afterwards.
 */

#ifndef SPT_COMMON_RNG_H
#define SPT_COMMON_RNG_H

#include <cstdint>

namespace spt {

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) — bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p = 0.5);

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    uint64_t s_[4];

    static uint64_t splitMix64(uint64_t &x);
};

} // namespace spt

#endif // SPT_COMMON_RNG_H
