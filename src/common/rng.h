/**
 * @file
 * Deterministic pseudo-random number generation for workload inputs.
 *
 * Workload data must be bit-identical across runs and platforms so
 * that experiment results are reproducible; we therefore use our own
 * xoshiro256** implementation rather than std::mt19937 (whose
 * distributions are implementation-defined).
 */

#ifndef SPT_COMMON_RNG_H
#define SPT_COMMON_RNG_H

#include <cstdint>

namespace spt {

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) — bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p = 0.5);

  private:
    uint64_t s_[4];

    static uint64_t splitMix64(uint64_t &x);
};

} // namespace spt

#endif // SPT_COMMON_RNG_H
