/**
 * @file
 * Lightweight statistics registry: named scalar counters and
 * histograms, registered per simulated component and dumped at the
 * end of simulation (the software analogue of gem5's stats.txt).
 */

#ifndef SPT_COMMON_STATS_H
#define SPT_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace spt {

class JsonWriter;

/** A simple bucketed histogram of non-negative integer samples. */
class Histogram
{
  public:
    /** @param num_buckets bucket i < num_buckets-1 holds exactly the
     *  samples of value i; the last bucket is the overflow bucket,
     *  holding every sample of value >= num_buckets-1. */
    explicit Histogram(size_t num_buckets = 16);

    void record(uint64_t value, uint64_t count = 1);

    uint64_t samples() const { return samples_; }
    uint64_t bucket(size_t i) const { return buckets_.at(i); }
    size_t numBuckets() const { return buckets_.size(); }
    /** Largest value recorded so far (0 if no samples). */
    uint64_t maxSample() const { return max_; }
    /** Exact sum of all recorded values (the Prometheus exporter's
     *  `_sum` series; mean() is sum()/samples()). */
    uint64_t sum() const { return sum_; }
    /** Arithmetic mean (0.0 if no samples — the dump paths derive
     *  mean/p50/p95 for never-recorded histograms, so every derived
     *  statistic is defined on the empty histogram and never
     *  divides by the zero sample count; pinned in tests). */
    double mean() const;

    /** Fraction of samples with value <= v (cumulative). Exact for
     *  v < num_buckets-1. In the overflow range the per-value
     *  information is gone: the overflow bucket is included only
     *  once v covers every recorded sample (v >= maxSample()), so
     *  the result is exact at both ends and a lower bound in
     *  between — never an overcount. */
    double cdfAt(uint64_t v) const;

    /** Smallest value v with cdfAt(v) >= p (the inverse of cdfAt,
     *  so the two are consistent by construction): exact below the
     *  overflow bucket; any percentile landing in the overflow range
     *  clamps to maxSample(), the only value there with a known
     *  cdf. @p p is clamped to (0, 1]; returns 0 with no samples. */
    uint64_t percentile(double p) const;

    void reset();

  private:
    friend class Snapshotter;  // checkpoint wire format (sim/snapshot)
    friend class ResultCache;  // result-record wire format
                               // (sim/result_cache)

    std::vector<uint64_t> buckets_;
    uint64_t samples_ = 0;
    uint64_t sum_ = 0;
    uint64_t max_ = 0;
};

/** Flat registry of named counters and histograms. */
class StatSet
{
  public:
    /** Increment a named counter, creating it on first use. */
    void inc(const std::string &name, uint64_t by = 1);

    /** Set a named counter to an absolute value. */
    void set(const std::string &name, uint64_t value);

    /** Reads a counter (0 if never touched). */
    uint64_t get(const std::string &name) const;

    /** Access (and lazily create) a named histogram. */
    Histogram &histogram(const std::string &name,
                         size_t num_buckets = 16);

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    void reset();

    /** Dumps all counters in "name value" lines sorted by name;
     *  histograms add .samples/.mean/.p50/.p95 lines. */
    void dump(std::ostream &os) const;

    /** Emits the same content as dump() as one JSON object (counter
     *  fields, histograms as nested objects) at the writer's current
     *  position. */
    void dumpJson(JsonWriter &jw) const;

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace spt

#endif // SPT_COMMON_STATS_H
