/**
 * @file
 * Lightweight statistics registry: named scalar counters and
 * histograms, registered per simulated component and dumped at the
 * end of simulation (the software analogue of gem5's stats.txt).
 */

#ifndef SPT_COMMON_STATS_H
#define SPT_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace spt {

/** A simple bucketed histogram of non-negative integer samples. */
class Histogram
{
  public:
    /** @param num_buckets values >= num_buckets-1 land in the last
     *  ("overflow") bucket. */
    explicit Histogram(size_t num_buckets = 16);

    void record(uint64_t value, uint64_t count = 1);

    uint64_t samples() const { return samples_; }
    uint64_t bucket(size_t i) const { return buckets_.at(i); }
    size_t numBuckets() const { return buckets_.size(); }
    double mean() const;

    /** Fraction of samples with value <= v (cumulative). */
    double cdfAt(uint64_t v) const;

    void reset();

  private:
    std::vector<uint64_t> buckets_;
    uint64_t samples_ = 0;
    uint64_t sum_ = 0;
};

/** Flat registry of named counters and histograms. */
class StatSet
{
  public:
    /** Increment a named counter, creating it on first use. */
    void inc(const std::string &name, uint64_t by = 1);

    /** Set a named counter to an absolute value. */
    void set(const std::string &name, uint64_t value);

    /** Reads a counter (0 if never touched). */
    uint64_t get(const std::string &name) const;

    /** Access (and lazily create) a named histogram. */
    Histogram &histogram(const std::string &name,
                         size_t num_buckets = 16);

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    void reset();

    /** Dumps all counters in "name value" lines sorted by name. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace spt

#endif // SPT_COMMON_STATS_H
