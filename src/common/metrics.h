/**
 * @file
 * Fleet telemetry metrics: a thread-safe registry of named
 * monotonic counters, gauges, and bounded histograms, snapshotted
 * on demand and exported as deterministic JSON (common/json.h
 * formatting rules) or Prometheus-style text exposition.
 *
 * Design rules, in the spirit of the determinism guardrail that
 * governs every artifact channel (DESIGN.md §15):
 *
 *  - Updates are lock-free atomics; registration (first use of a
 *    name) takes the registry mutex. Returned references stay
 *    valid for the registry's lifetime, so hot paths resolve a
 *    series once and bump a pointer afterwards.
 *  - Metrics are an *observability* channel: host seconds, queue
 *    depths and rates live here, never in stdout or BENCH/report
 *    artifacts. Nothing in the simulation reads a metric back, so
 *    enabling telemetry cannot perturb simulated behaviour.
 *  - snapshot() is wait-free with respect to writers (it reads the
 *    atomics); values within one snapshot may be skewed by
 *    concurrent updates, which is fine for monitoring.
 */

#ifndef SPT_COMMON_METRICS_H
#define SPT_COMMON_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spt {

/** Monotonically increasing counter (events, bytes, jobs). */
class Counter
{
  public:
    void inc(uint64_t by = 1)
    {
        v_.fetch_add(by, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Settable instantaneous value (queue depth, slots busy). Signed
 *  so add(-1) style decrements cannot wrap a transient underflow
 *  into 2^64. */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> v_{0};
};

/** Histogram over a fixed set of upper bounds chosen at
 *  registration (classic Prometheus shape: bucket i counts samples
 *  <= bounds[i], plus an implicit +Inf overflow bucket). record()
 *  is a branchless scan over a handful of bounds plus three atomic
 *  adds — cheap enough for per-job paths, not meant for per-cycle
 *  use. */
class BoundedHistogram
{
  public:
    explicit BoundedHistogram(std::vector<uint64_t> bounds);

    void record(uint64_t value);

    const std::vector<uint64_t> &bounds() const { return bounds_; }
    /** Count in bucket @p i (i == bounds().size() is +Inf). */
    uint64_t bucket(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<uint64_t> bounds_; ///< strictly increasing
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_; ///< size+1
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** Point-in-time copy of every registered series, decoupled from
 *  the live atomics so exporters can format without holding any
 *  lock. */
struct MetricsSnapshot
{
    struct Hist
    {
        std::vector<uint64_t> bounds;
        std::vector<uint64_t> buckets; ///< bounds.size()+1 (+Inf last)
        uint64_t count = 0;
        uint64_t sum = 0;
    };

    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Hist> histograms;

    /** One JSON object {"counters":{...},"gauges":{...},
     *  "histograms":{...}} with sorted keys — deterministic given
     *  identical series values. */
    std::string toJson() const;

    /** Prometheus text exposition: series names are mangled
     *  ('.'/'-' become '_') and prefixed "spt_"; histograms emit
     *  cumulative _bucket{le="..."} series plus _sum/_count. */
    std::string toPrometheus() const;
};

/** Thread-safe named-series registry. */
class MetricsRegistry
{
  public:
    /** Find-or-create; the reference stays valid for the registry's
     *  lifetime. Names are dotted paths ("svc.jobs.executed"). */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p bounds applies on first registration only; later lookups
     *  of the same name return the existing series (a mismatched
     *  re-registration is a bug — SPT_PANIC). */
    BoundedHistogram &histogram(const std::string &name,
                                const std::vector<uint64_t> &bounds);

    MetricsSnapshot snapshot() const;

    /** Process-wide registry used by the runner/service telemetry
     *  (tests build private registries instead). */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mu_; ///< guards the maps, not the values
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<BoundedHistogram>>
        histograms_;
};

} // namespace spt

#endif // SPT_COMMON_METRICS_H
