#include "common/stats.h"

#include <cmath>

#include "common/json.h"
#include "common/logging.h"

namespace spt {

Histogram::Histogram(size_t num_buckets)
    : buckets_(num_buckets, 0)
{
    SPT_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::record(uint64_t value, uint64_t count)
{
    // Bucket i < N-1 holds exactly value i; the last bucket
    // overflows, holding every value >= N-1.
    const size_t idx =
        value >= buckets_.size() - 1 ? buckets_.size() - 1
                                     : static_cast<size_t>(value);
    buckets_[idx] += count;
    samples_ += count;
    sum_ += value * count;
    if (value > max_)
        max_ = value;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0
                         : static_cast<double>(sum_) /
                               static_cast<double>(samples_);
}

double
Histogram::cdfAt(uint64_t v) const
{
    if (samples_ == 0)
        return 0.0;
    uint64_t below = 0;
    if (v < buckets_.size() - 1) {
        // Exact: bucket i holds only samples of value i.
        for (size_t i = 0; i <= static_cast<size_t>(v); ++i)
            below += buckets_[i];
    } else {
        // The overflow bucket mixes values >= N-1; counting it for
        // any v it only partially covers would overcount (the old
        // off-by-one: cdfAt(N-1) returned 1.0 even with samples
        // beyond N-1). Include it only once v covers the largest
        // recorded sample.
        for (size_t i = 0; i < buckets_.size(); ++i)
            below += buckets_[i];
        if (v < max_)
            below -= buckets_.back();
    }
    return static_cast<double>(below) / static_cast<double>(samples_);
}

uint64_t
Histogram::percentile(double p) const
{
    if (samples_ == 0)
        return 0;
    if (p > 1.0)
        p = 1.0;
    // The target rank: the smallest count of samples whose fraction
    // reaches p. ceil() keeps percentile consistent with cdfAt
    // (cdfAt(percentile(p)) >= p) for any p in (0, 1].
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(samples_)));
    if (rank < 1)
        rank = 1;
    if (rank > samples_)
        rank = samples_;
    uint64_t below = 0;
    for (size_t i = 0; i + 1 < buckets_.size(); ++i) {
        below += buckets_[i];
        if (below >= rank)
            return i; // exact: bucket i holds only value i
    }
    // The rank lands in the overflow bucket, where per-value counts
    // are gone; maxSample() is the only value whose cdf is known
    // (1.0), so clamp there — mirroring cdfAt's overflow handling.
    return max_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    sum_ = 0;
    max_ = 0;
}

void
StatSet::inc(const std::string &name, uint64_t by)
{
    counters_[name] += by;
}

void
StatSet::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

Histogram &
StatSet::histogram(const std::string &name, size_t num_buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(num_buckets)).first;
    return it->second;
}

void
StatSet::reset()
{
    counters_.clear();
    histograms_.clear();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, value] : counters_)
        os << name << " " << value << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << ".samples " << h.samples() << "\n";
        os << name << ".mean " << h.mean() << "\n";
        os << name << ".p50 " << h.percentile(0.50) << "\n";
        os << name << ".p95 " << h.percentile(0.95) << "\n";
    }
}

void
StatSet::dumpJson(JsonWriter &jw) const
{
    jw.beginObject();
    for (const auto &[name, value] : counters_)
        jw.field(name, value);
    for (const auto &[name, h] : histograms_) {
        jw.key(name).beginObject();
        jw.field("samples", h.samples());
        jw.field("mean", h.mean(), 6);
        jw.field("p50", h.percentile(0.50));
        jw.field("p95", h.percentile(0.95));
        jw.field("max", h.maxSample());
        jw.endObject();
    }
    jw.endObject();
}

} // namespace spt
