#include "common/event_log.h"

#include <atomic>
#include <unistd.h>

#include "common/json.h"
#include "common/logging.h"

namespace spt {

EventLevel
parseEventLevel(const std::string &name)
{
    if (name == "debug")
        return EventLevel::kDebug;
    if (name == "info")
        return EventLevel::kInfo;
    if (name == "warn")
        return EventLevel::kWarn;
    SPT_FATAL("unknown event level '" << name
                                      << "' (want debug|info|warn)");
}

namespace {

const char *
levelName(EventLevel level)
{
    switch (level) {
    case EventLevel::kDebug: return "debug";
    case EventLevel::kInfo: return "info";
    case EventLevel::kWarn: return "warn";
    }
    return "info";
}

} // namespace

EventFields &
EventFields::str(const std::string &key, const std::string &v)
{
    kv_.emplace_back(key, jsonQuoted(v));
    return *this;
}

EventFields &
EventFields::num(const std::string &key, uint64_t v)
{
    kv_.emplace_back(key, std::to_string(v));
    return *this;
}

EventFields &
EventFields::num(const std::string &key, int64_t v)
{
    kv_.emplace_back(key, std::to_string(v));
    return *this;
}

EventFields &
EventFields::real(const std::string &key, double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    kv_.emplace_back(key, buf);
    return *this;
}

EventFields &
EventFields::boolean(const std::string &key, bool v)
{
    kv_.emplace_back(key, v ? "true" : "false");
    return *this;
}

EventFields &
EventFields::raw(const std::string &key, const std::string &json)
{
    kv_.emplace_back(key, json);
    return *this;
}

void
FlightRecorder::record(const std::string &subsystem,
                       const std::string &line)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<std::string> &ring = rings_[subsystem];
    ring.push_back(line);
    while (ring.size() > capacity_)
        ring.pop_front();
}

std::vector<std::string>
FlightRecorder::dump(const std::string &subsystem) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rings_.find(subsystem);
    if (it == rings_.end())
        return {};
    return std::vector<std::string>(it->second.begin(),
                                    it->second.end());
}

std::vector<std::string>
FlightRecorder::dumpAll() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (const auto &kv : rings_)
        out.insert(out.end(), kv.second.begin(), kv.second.end());
    return out;
}

EventLog::~EventLog()
{
    close();
}

void
EventLog::openFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_)
        std::fclose(file_);
    file_ = std::fopen(path.c_str(), "a");
    if (!file_)
        SPT_FATAL("cannot open event log " << path
                                           << " for appending");
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
EventLog::enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return file_ != nullptr;
}

void
EventLog::setMinLevel(EventLevel level)
{
    std::lock_guard<std::mutex> lock(mu_);
    min_level_ = static_cast<int>(level);
}

void
EventLog::emit(EventLevel level, const std::string &subsystem,
               const std::string &event, const EventFields &fields,
               const std::string &span, const std::string &parent)
{
    // Render outside the lock; only the write is serialized.
    std::string line;
    line.reserve(96);
    char ts[48];
    std::snprintf(ts, sizeof ts, "{\"ts\":%.6f,",
                  logMonotonicSeconds());
    line += ts;
    line += "\"lvl\":";
    line += jsonQuoted(levelName(level));
    line += ",\"sys\":";
    line += jsonQuoted(subsystem);
    line += ",\"ev\":";
    line += jsonQuoted(event);
    if (!span.empty()) {
        line += ",\"span\":";
        line += jsonQuoted(span);
    }
    if (!parent.empty()) {
        line += ",\"parent\":";
        line += jsonQuoted(parent);
    }
    for (const auto &kv : fields.fields()) {
        line += ',';
        line += jsonQuoted(kv.first);
        line += ':';
        line += kv.second;
    }
    line += "}\n";

    // The flight recorder keeps every record (minus the trailing
    // newline) so crash dumps see debug-level context even when the
    // file sink filters it out or is closed.
    recorder_.record(subsystem,
                     line.substr(0, line.size() - 1));

    std::lock_guard<std::mutex> lock(mu_);
    if (!file_ || static_cast<int>(level) < min_level_)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    // Line-buffered flush: tail -f / spt_top style consumers and
    // crash post-mortems should see records promptly.
    std::fflush(file_);
}

std::string
EventLog::newSpanId()
{
    static std::atomic<uint64_t> seq{0};
    const uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
    char buf[48];
    std::snprintf(buf, sizeof buf, "s%ld-%llu",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(n));
    return buf;
}

EventLog &
EventLog::global()
{
    static EventLog *log = [] {
        EventLog *l = new EventLog();
        if (const char *lv = std::getenv("SPT_EVENT_LOG_LEVEL")) {
            try {
                l->setMinLevel(parseEventLevel(lv));
            } catch (const FatalError &) {
                warn(std::string(
                         "ignoring unrecognised SPT_EVENT_LOG_LEVEL=") +
                     lv + " (want debug|info|warn)");
            }
        }
        if (const char *path = std::getenv("SPT_EVENT_LOG")) {
            if (path[0] != '\0')
                l->openFile(path);
        }
        return l;
    }();
    return *log;
}

} // namespace spt
