/**
 * @file
 * Sparse, paged, byte-addressable little-endian memory.
 *
 * Used both as the functional reference CPU's memory and as the
 * backing store behind the timing cache hierarchy. Uninitialized
 * bytes read as zero.
 */

#ifndef SPT_COMMON_BYTE_MEMORY_H
#define SPT_COMMON_BYTE_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace spt {

class ByteMemory
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    uint8_t readByte(uint64_t addr) const;
    void writeByte(uint64_t addr, uint8_t value);

    /** Little-endian read of @p bytes (1, 2, 4, or 8). */
    uint64_t read(uint64_t addr, unsigned bytes) const;

    /** Little-endian write of the low @p bytes of @p value. */
    void write(uint64_t addr, uint64_t value, unsigned bytes);

    /** Bulk initialization. */
    void writeBlock(uint64_t addr, const uint8_t *data, size_t len);
    void readBlock(uint64_t addr, uint8_t *out, size_t len) const;

    /** Number of resident pages (for tests/inspection). */
    size_t residentPages() const { return pages_.size(); }

    void clear() { pages_.clear(); }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    using Page = std::array<uint8_t, kPageBytes>;

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;

    Page &pageFor(uint64_t addr);
    const Page *pageForConst(uint64_t addr) const;
};

} // namespace spt

#endif // SPT_COMMON_BYTE_MEMORY_H
