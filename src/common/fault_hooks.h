/**
 * @file
 * Fault-injection hook interface between the timing model and the
 * campaign driver (sim/fault_injector.h implements it; uarch/mem
 * consult it). Lives in common/ because the hook *sites* sit in
 * layers (uarch, mem, core) that must not depend on sim.
 *
 * Contract: every fault is a pure *timing* perturbation. A firing
 * site may delay, deny, squash-and-replay, or evict — it may never
 * change an architectural value or weaken a security gate. The
 * metamorphic campaigns in tools/spt_chaos rest on this: under any
 * fault schedule the architectural results must match the
 * unperturbed run and the security invariants must keep holding.
 *
 * Determinism: implementations draw each site from its own PRNG
 * stream keyed by (campaign seed, site), so the decision sequence a
 * site sees depends only on how often *that* site is consulted —
 * which is itself a pure function of the (deterministic) simulated
 * machine. Campaign outputs are therefore byte-identical for any
 * worker count.
 */

#ifndef SPT_COMMON_FAULT_HOOKS_H
#define SPT_COMMON_FAULT_HOOKS_H

#include <cstddef>
#include <cstdint>

namespace spt {

/** Where a timing fault can be injected. Keep faultSiteName() and
 *  the per-site safety notes in DESIGN.md §10 in sync. */
enum class FaultSite : uint8_t {
    /** Squash a correctly predicted squash-source branch at
     *  completion, as if it had mispredicted (refetch down the same
     *  path). Exercises squash/recovery and taint-slot reclaim. */
    kExtraSquash,
    /** Starve the untaint broadcast bus for one cycle (effective
     *  width 0). Exercises pending-flag retention and arbitration. */
    kBroadcastStarve,
    /** Synthetic eviction storm: drop the accessed line from every
     *  cache level so the access misses to DRAM. Exercises shadow-L1
     *  conservative revert and fill/latency paths. */
    kCacheEvict,
    /** Reject a data-side L1 miss as if the MSHR file were full;
     *  the LSU retries. Exercises the retry path. */
    kMshrStall,
    /** Deny the store-to-load forwarding fast path and force the
     *  hidden cache-access path (Section 6.7) even when STLPublic
     *  holds. Data is still forwarded — timing only. */
    kStlDeny,
    /** Zero the issue width for one cycle (scheduler jitter). */
    kIssueJitter,
    kNumSites,
};

constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::kNumSites);

inline const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::kExtraSquash:     return "extra-squash";
      case FaultSite::kBroadcastStarve: return "broadcast-starve";
      case FaultSite::kCacheEvict:      return "cache-evict";
      case FaultSite::kMshrStall:       return "mshr-stall";
      case FaultSite::kStlDeny:         return "stl-deny";
      case FaultSite::kIssueJitter:     return "issue-jitter";
      case FaultSite::kNumSites:        break;
    }
    return "?";
}

/** Consulted by the hook sites; null (the default everywhere) means
 *  no injection and costs one pointer test. */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /** Should the fault at @p site fire at this opportunity? Each
     *  call consumes one draw from the site's stream (sites with a
     *  zero rate must not consume draws, so enabling one site never
     *  shifts another's sequence). */
    virtual bool fire(FaultSite site) = 0;
};

} // namespace spt

#endif // SPT_COMMON_FAULT_HOOKS_H
