#include "common/rng.h"

#include "common/logging.h"

namespace spt {

namespace {

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
Rng::splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitMix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    SPT_ASSERT(bound != 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    SPT_ASSERT(lo <= hi, "nextRange with lo > hi");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace spt
