#include "common/cli.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "common/logging.h"

namespace spt {

uint64_t
parseUnsigned(const std::string &text, const char *what,
              uint64_t max)
{
    if (text.empty())
        SPT_FATAL(what << ": empty number");
    uint64_t value = 0;
    for (const char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            SPT_FATAL(what << ": not a number: '" << text << "'");
        const uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            SPT_FATAL(what << ": out of range: '" << text << "'");
        value = value * 10 + digit;
    }
    if (value > max)
        SPT_FATAL(what << ": " << value << " exceeds maximum "
                       << max);
    return value;
}

double
parseDouble(const std::string &text, const char *what)
{
    if (text.empty())
        SPT_FATAL(what << ": empty number");
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0')
        SPT_FATAL(what << ": not a number: '" << text << "'");
    if (!std::isfinite(value) || value < 0.0)
        SPT_FATAL(what << ": out of range: '" << text << "'");
    return value;
}

int
toolMain(const char *tool, const std::function<int()> &body)
{
    try {
        return body();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", tool, e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: internal error: %s\n", tool,
                     e.what());
        return 70; // EX_SOFTWARE
    }
}

} // namespace spt
