/**
 * @file
 * Machine-readable experiment reports: a small streaming JSON
 * writer (stable key order, fixed float formatting, proper string
 * escaping) shared by every bench driver, stat dump, and the
 * trace/profile subsystem, so each artifact can be diffed
 * mechanically across PRs.
 *
 * The writer produces byte-identical output for identical inputs —
 * no timestamps, no locale-dependent formatting — which is what
 * lets the fig7 acceptance check compare `--jobs 1` and `--jobs 4`
 * artifacts with `cmp`.
 *
 * (Moved from sim/report.h so spt_common code — StatSet::dumpJson —
 * can emit JSON without depending on the sim layer; sim/report.h
 * remains as a forwarding include.)
 */

#ifndef SPT_COMMON_JSON_H
#define SPT_COMMON_JSON_H

#include <cstdint>
#include <string>

namespace spt {

/** Streaming JSON builder with explicit nesting. Keys/values are
 *  emitted in call order; commas and indentation are handled
 *  internally. Misnested calls trip an SPT_ASSERT. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Names the next value inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    /** Doubles print as fixed-point with @p precision digits (JSON
     *  has no NaN/Inf; those are emitted as null). */
    JsonWriter &value(double v, int precision = 4);

    /** Splices a pre-rendered JSON value verbatim in value position
     *  (e.g. a nested document built by another writer). The caller
     *  guarantees @p json is one valid JSON value; its internal
     *  indentation is preserved as-is. */
    JsonWriter &raw(const std::string &json);

    /** Shorthand for key(name).value(v). */
    template <typename T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        return key(name).value(v);
    }
    JsonWriter &
    field(const std::string &name, double v, int precision)
    {
        return key(name).value(v, precision);
    }

    /** The finished document; all scopes must be closed. */
    const std::string &str() const;

  private:
    void separate();
    void indent();

    std::string out_;
    std::string stack_;      ///< '{' or '[' per open scope
    bool need_comma_ = false;
    bool have_key_ = false;
};

/** @p s as a JSON string literal, quotes included, with the
 *  writer's escaping rules. Shared with the compact single-line
 *  renderers (common/event_log.h) so every JSON we emit escapes
 *  identically. */
std::string jsonQuoted(const std::string &s);

/** Writes @p content to @p path atomically enough for bench use
 *  (plain fopen/fwrite); throws FatalError if the file cannot be
 *  opened or fully written. */
void writeReportFile(const std::string &path,
                     const std::string &content);

} // namespace spt

#endif // SPT_COMMON_JSON_H
