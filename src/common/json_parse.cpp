#include "common/json_parse.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace spt {

bool
JsonValue::asBool() const
{
    if (type_ != Type::kBool)
        SPT_FATAL("json: expected bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (type_ != Type::kNumber)
        SPT_FATAL("json: expected number");
    return num_;
}

uint64_t
JsonValue::asU64() const
{
    if (type_ != Type::kNumber)
        SPT_FATAL("json: expected number");
    if (token_.empty() || token_[0] == '-' ||
        token_.find_first_of(".eE") != std::string::npos)
        SPT_FATAL("json: expected unsigned integer, got "
                  << token_);
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(token_.c_str(), &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0')
        SPT_FATAL("json: integer out of range: " << token_);
    return v;
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::kString)
        SPT_FATAL("json: expected string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (type_ != Type::kArray)
        SPT_FATAL("json: expected array");
    return arr_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (type_ != Type::kObject)
        SPT_FATAL("json: expected object");
    return obj_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const auto &obj = asObject();
    const auto it = obj.find(key);
    if (it == obj.end())
        SPT_FATAL("json: missing member \"" << key << "\"");
    return it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return type_ == Type::kObject && obj_.count(key) > 0;
}

uint64_t
JsonValue::getU64(const std::string &key, uint64_t dflt) const
{
    return has(key) ? at(key).asU64() : dflt;
}

bool
JsonValue::getBool(const std::string &key, bool dflt) const
{
    return has(key) ? at(key).asBool() : dflt;
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &dflt) const
{
    return has(key) ? at(key).asString() : dflt;
}

/** Recursive-descent parser over the full input string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what) const
    {
        SPT_FATAL("json parse error at byte " << pos_ << ": "
                                              << what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail("bad literal");
            ++pos_;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'n':  out.push_back('\n'); break;
              case 'r':  out.push_back('\r'); break;
              case 't':  out.push_back('\t'); break;
              case 'u': {
                // \uXXXX: decode the code point as raw bytes for
                // the BMP-latin subset the writer emits (control
                // characters); anything else keeps UTF-8 intact
                // only for < 0x80, which is all the protocol uses.
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (cp > 0xff)
                    fail("non-latin \\u escape unsupported");
                out.push_back(static_cast<char>(cp));
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        if (consumeIf('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        JsonValue v;
        v.type_ = JsonValue::Type::kNumber;
        v.token_ = text_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        v.num_ = std::strtod(v.token_.c_str(), &end);
        if (v.token_.empty() || end == nullptr || *end != '\0')
            fail("malformed number");
        return v;
    }

    JsonValue
    value(unsigned depth)
    {
        if (depth > 64)
            fail("nesting too deep");
        skipWs();
        const char c = peek();
        JsonValue v;
        switch (c) {
          case '{': {
            ++pos_;
            v.type_ = JsonValue::Type::kObject;
            skipWs();
            if (consumeIf('}'))
                return v;
            for (;;) {
                skipWs();
                std::string key = string();
                skipWs();
                expect(':');
                v.obj_[std::move(key)] = value(depth + 1);
                skipWs();
                if (consumeIf(','))
                    continue;
                expect('}');
                return v;
            }
          }
          case '[': {
            ++pos_;
            v.type_ = JsonValue::Type::kArray;
            skipWs();
            if (consumeIf(']'))
                return v;
            for (;;) {
                v.arr_.push_back(value(depth + 1));
                skipWs();
                if (consumeIf(','))
                    continue;
                expect(']');
                return v;
            }
          }
          case '"':
            v.type_ = JsonValue::Type::kString;
            v.str_ = string();
            return v;
          case 't':
            literal("true");
            v.type_ = JsonValue::Type::kBool;
            v.bool_ = true;
            return v;
          case 'f':
            literal("false");
            v.type_ = JsonValue::Type::kBool;
            v.bool_ = false;
            return v;
          case 'n':
            literal("null");
            v.type_ = JsonValue::Type::kNull;
            return v;
          default:
            return number();
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace spt
