/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef SPT_COMMON_BIT_UTIL_H
#define SPT_COMMON_BIT_UTIL_H

#include <cstdint>
#include <type_traits>

namespace spt {

/** Returns true iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2Floor(uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Extracts bits [hi:lo] (inclusive) of @p v, right-justified. */
constexpr uint64_t
bits(uint64_t v, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const uint64_t mask = width >= 64 ? ~uint64_t{0}
                                      : ((uint64_t{1} << width) - 1);
    return (v >> lo) & mask;
}

/** Sign-extends the low @p width bits of @p v to 64 bits. */
constexpr int64_t
signExtend(uint64_t v, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(v);
    const uint64_t sign_bit = uint64_t{1} << (width - 1);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    v &= mask;
    return static_cast<int64_t>((v ^ sign_bit) - sign_bit);
}

/** Rounds @p v down to a multiple of @p align (align must be pow2). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Rounds @p v up to a multiple of @p align (align must be pow2). */
constexpr uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Population count for small masks. */
constexpr unsigned
popCount(uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

/** Rotate-left on 32-bit values (used by ChaCha20 workload). */
constexpr uint32_t
rotl32(uint32_t v, unsigned n)
{
    n &= 31;
    if (n == 0)
        return v;
    return (v << n) | (v >> (32 - n));
}

} // namespace spt

#endif // SPT_COMMON_BIT_UTIL_H
