#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace spt {

void
JsonWriter::separate()
{
    if (have_key_) {
        // key() already emitted "name": — the value follows inline.
        have_key_ = false;
        return;
    }
    if (need_comma_)
        out_ += ',';
    if (!stack_.empty()) {
        out_ += '\n';
        indent();
    }
}

void
JsonWriter::indent()
{
    out_.append(2 * stack_.size(), ' ');
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    stack_ += '{';
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SPT_ASSERT(!stack_.empty() && stack_.back() == '{' && !have_key_,
               "JsonWriter::endObject outside an object");
    stack_.pop_back();
    out_ += '\n';
    indent();
    out_ += '}';
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    stack_ += '[';
    need_comma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SPT_ASSERT(!stack_.empty() && stack_.back() == '[' && !have_key_,
               "JsonWriter::endArray outside an array");
    stack_.pop_back();
    out_ += '\n';
    indent();
    out_ += ']';
    need_comma_ = true;
    return *this;
}

std::string
jsonQuoted(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    SPT_ASSERT(!stack_.empty() && stack_.back() == '{' && !have_key_,
               "JsonWriter::key needs an open object");
    separate();
    out_ += jsonQuoted(name);
    out_ += ": ";
    need_comma_ = true;
    have_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out_ += jsonQuoted(v);
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    out_ += std::to_string(v);
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    out_ += std::to_string(v);
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v, int precision)
{
    separate();
    if (std::isfinite(v)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*f", precision, v);
        out_ += buf;
    } else {
        out_ += "null";
    }
    need_comma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separate();
    out_ += json;
    need_comma_ = true;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    SPT_ASSERT(stack_.empty() && !have_key_,
               "JsonWriter::str with unclosed scopes");
    return out_;
}

void
writeReportFile(const std::string &path, const std::string &content)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        SPT_FATAL("cannot open " << path << " for writing");
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    const bool ok = n == content.size() && std::fputc('\n', f) != EOF;
    if (std::fclose(f) != 0 || !ok)
        SPT_FATAL("short write to " << path);
}

} // namespace spt
