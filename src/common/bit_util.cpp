#include "common/bit_util.h"

// All helpers are constexpr in the header; this TU anchors the library.
