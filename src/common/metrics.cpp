#include "common/metrics.h"

#include <cstdio>

#include "common/json.h"
#include "common/logging.h"

namespace spt {

BoundedHistogram::BoundedHistogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1])
{
    for (size_t i = 1; i < bounds_.size(); ++i)
        SPT_ASSERT(bounds_[i - 1] < bounds_[i],
                   "histogram bounds must be strictly increasing");
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
BoundedHistogram::record(uint64_t value)
{
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i])
        ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter());
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge());
    return *slot;
}

BoundedHistogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<uint64_t> &bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot.reset(new BoundedHistogram(bounds));
    else
        SPT_ASSERT(slot->bounds() == bounds,
                   "histogram '" << name
                                 << "' re-registered with different "
                                    "bounds");
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &kv : counters_)
        snap.counters[kv.first] = kv.second->value();
    for (const auto &kv : gauges_)
        snap.gauges[kv.first] = kv.second->value();
    for (const auto &kv : histograms_) {
        MetricsSnapshot::Hist h;
        h.bounds = kv.second->bounds();
        h.buckets.reserve(h.bounds.size() + 1);
        for (size_t i = 0; i <= h.bounds.size(); ++i)
            h.buckets.push_back(kv.second->bucket(i));
        h.count = kv.second->count();
        h.sum = kv.second->sum();
        snap.histograms[kv.first] = std::move(h);
    }
    return snap;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::string
MetricsSnapshot::toJson() const
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("counters").beginObject();
    for (const auto &kv : counters)
        jw.field(kv.first, kv.second);
    jw.endObject();
    jw.key("gauges").beginObject();
    for (const auto &kv : gauges) {
        // JsonWriter has no int64 overload; gauges we register are
        // small (queue depths, slot counts), print via int when it
        // fits and a raw literal otherwise.
        jw.key(kv.first).raw(std::to_string(kv.second));
    }
    jw.endObject();
    jw.key("histograms").beginObject();
    for (const auto &kv : histograms) {
        const Hist &h = kv.second;
        jw.key(kv.first).beginObject();
        jw.key("bounds").beginArray();
        for (uint64_t b : h.bounds)
            jw.value(b);
        jw.endArray();
        jw.key("buckets").beginArray();
        for (uint64_t b : h.buckets)
            jw.value(b);
        jw.endArray();
        jw.field("count", h.count);
        jw.field("sum", h.sum);
        jw.endObject();
    }
    jw.endObject();
    jw.endObject();
    return jw.str();
}

namespace {

/** "svc.jobs-executed" -> "spt_svc_jobs_executed". */
std::string
promName(const std::string &name)
{
    std::string out = "spt_";
    out.reserve(name.size() + 4);
    for (const char c : name)
        out += (c == '.' || c == '-') ? '_' : c;
    return out;
}

} // namespace

std::string
MetricsSnapshot::toPrometheus() const
{
    std::string out;
    char buf[64];
    for (const auto &kv : counters) {
        const std::string n = promName(kv.first);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + std::to_string(kv.second) + "\n";
    }
    for (const auto &kv : gauges) {
        const std::string n = promName(kv.first);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + std::to_string(kv.second) + "\n";
    }
    for (const auto &kv : histograms) {
        const Hist &h = kv.second;
        const std::string n = promName(kv.first);
        out += "# TYPE " + n + " histogram\n";
        uint64_t cum = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            cum += h.buckets[i];
            std::snprintf(buf, sizeof buf, "%llu",
                          static_cast<unsigned long long>(
                              h.bounds[i]));
            out += n + "_bucket{le=\"" + buf + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += n + "_bucket{le=\"+Inf\"} " +
               std::to_string(h.count) + "\n";
        out += n + "_sum " + std::to_string(h.sum) + "\n";
        out += n + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

} // namespace spt
