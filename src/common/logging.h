/**
 * @file
 * Simulation status and error reporting, in the spirit of gem5's
 * logging.hh: fatal() for user errors, panic() for simulator bugs,
 * warn()/inform() for status messages.
 */

#ifndef SPT_COMMON_LOGGING_H
#define SPT_COMMON_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace spt {

/** Thrown when the simulation cannot continue due to a user error
 *  (bad configuration, malformed assembly, invalid arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown on conditions that indicate a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

std::string formatLocation(const char *file, int line);

} // namespace detail

/** Emits a warning to stderr (does not stop the simulation).
 *  Thread-safe: the whole line is written in one call, so messages
 *  from concurrent Simulators never interleave mid-line. */
void warn(const std::string &msg);

/** Emits an informational message to stderr (thread-safe, see
 *  warn()). */
void inform(const std::string &msg);

/** Globally enables/disables inform() output (benches silence it).
 *  The flag is atomic and may be read from any thread, but callers
 *  should set it before spawning sweep workers. */
void setVerbose(bool verbose);
bool verbose();

} // namespace spt

/** User-error abort: throws spt::FatalError with location info. */
#define SPT_FATAL(msg)                                                      \
    do {                                                                    \
        std::ostringstream os_;                                             \
        os_ << ::spt::detail::formatLocation(__FILE__, __LINE__)            \
            << "fatal: " << msg;                                            \
        throw ::spt::FatalError(os_.str());                                 \
    } while (0)

/** Simulator-bug abort: throws spt::PanicError with location info. */
#define SPT_PANIC(msg)                                                      \
    do {                                                                    \
        std::ostringstream os_;                                             \
        os_ << ::spt::detail::formatLocation(__FILE__, __LINE__)            \
            << "panic: " << msg;                                            \
        throw ::spt::PanicError(os_.str());                                 \
    } while (0)

/** Invariant check that survives in release builds. */
#define SPT_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            SPT_PANIC("assertion failed: " #cond ": " << msg);              \
    } while (0)

#endif // SPT_COMMON_LOGGING_H
