/**
 * @file
 * Simulation status and error reporting, in the spirit of gem5's
 * logging.hh: fatal() for user errors, panic() for simulator bugs,
 * warn()/inform() for status messages.
 */

#ifndef SPT_COMMON_LOGGING_H
#define SPT_COMMON_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace spt {

/** Thrown when the simulation cannot continue due to a user error
 *  (bad configuration, malformed assembly, invalid arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown on conditions that indicate a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

namespace detail {

std::string formatLocation(const char *file, int line);

} // namespace detail

/** Severity ladder for stderr lines. Messages at or above the
 *  current level are shown; kDebug is the chattiest setting. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
};

/** Parses "debug"/"info"/"warn" (SPT_FATAL on anything else). */
LogLevel parseLogLevel(const std::string &name);

/** Current minimum severity. Initialised lazily from SPT_LOG_LEVEL
 *  (default kInfo; an unparseable env value warns once and keeps
 *  the default rather than aborting a long sweep over a typo). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Whether stderr lines carry a "[12.345678] " monotonic-seconds
 *  prefix (seconds since process start, steady clock). Initialised
 *  lazily from SPT_LOG_TS (any non-empty value other than "0"
 *  enables it). Timestamps never reach stdout or report artifacts,
 *  so determinism gates are unaffected. */
bool logTimestamps();
void setLogTimestamps(bool enabled);

/** Monotonic seconds since process start (the value the timestamp
 *  prefix prints; also used by the event log). */
double logMonotonicSeconds();

/** Emits a warning to stderr (does not stop the simulation).
 *  Thread-safe: the whole line is written in one call, so messages
 *  from concurrent Simulators never interleave mid-line. */
void warn(const std::string &msg);

/** Emits an informational message to stderr (thread-safe, see
 *  warn()). Shown only when verbose() and logLevel() <= kInfo. */
void inform(const std::string &msg);

/** Emits a debug message to stderr; shown only when verbose() and
 *  logLevel() == kDebug. */
void debug(const std::string &msg);

/** Emits an operator-facing status line to stderr unconditionally
 *  (no severity prefix, not gated by verbose()/logLevel()). The
 *  `[cache]` / `[sweep]` / `[spt_sweepd]` lines that CI greps out
 *  of stderr go through here, so quieting the log level can never
 *  break those gates. Same single-write thread-safety contract as
 *  warn(). */
void report(const std::string &msg);

/** Globally enables/disables inform() output (benches silence it).
 *  The flag is atomic and may be read from any thread, but callers
 *  should set it before spawning sweep workers. */
void setVerbose(bool verbose);
bool verbose();

} // namespace spt

/** User-error abort: throws spt::FatalError with location info. */
#define SPT_FATAL(msg)                                                      \
    do {                                                                    \
        std::ostringstream os_;                                             \
        os_ << ::spt::detail::formatLocation(__FILE__, __LINE__)            \
            << "fatal: " << msg;                                            \
        throw ::spt::FatalError(os_.str());                                 \
    } while (0)

/** Simulator-bug abort: throws spt::PanicError with location info. */
#define SPT_PANIC(msg)                                                      \
    do {                                                                    \
        std::ostringstream os_;                                             \
        os_ << ::spt::detail::formatLocation(__FILE__, __LINE__)            \
            << "panic: " << msg;                                            \
        throw ::spt::PanicError(os_.str());                                 \
    } while (0)

/** Invariant check that survives in release builds. */
#define SPT_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            SPT_PANIC("assertion failed: " #cond ": " << msg);              \
    } while (0)

#endif // SPT_COMMON_LOGGING_H
