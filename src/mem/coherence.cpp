#include "mem/coherence.h"

#include "common/logging.h"

namespace spt {

MesiDirectory::MesiDirectory(unsigned num_agents)
    : num_agents_(num_agents)
{
    SPT_ASSERT(num_agents_ <= 32, "directory supports up to 32 agents");
}

void
MesiDirectory::checkAgent(unsigned agent) const
{
    SPT_ASSERT(agent < num_agents_, "agent id out of range");
}

MesiDirectory::Response
MesiDirectory::getShared(unsigned agent, uint64_t line_addr)
{
    checkAgent(agent);
    stats_.inc("gets");
    DirEntry &e = dir_[line_addr];
    Response resp;
    const uint32_t bit = 1u << agent;
    if (e.sharers == 0) {
        // Unshared: grant Exclusive.
        e.sharers = bit;
        e.owner = static_cast<int>(agent);
        e.modified = false;
        resp.grant = MesiState::kExclusive;
        return resp;
    }
    if (e.owner >= 0 && e.owner != static_cast<int>(agent)) {
        // Downgrade the owner to Shared; it supplies the data.
        resp.from_owner = true;
        if (e.modified)
            stats_.inc("owner_writebacks");
        e.modified = false;
        e.owner = -1;
    }
    e.sharers |= bit;
    resp.grant = MesiState::kShared;
    if (e.sharers == bit && e.owner == static_cast<int>(agent)) {
        // Re-request by the sole owner keeps its state.
        resp.grant = e.modified ? MesiState::kModified
                                : MesiState::kExclusive;
    }
    return resp;
}

MesiDirectory::Response
MesiDirectory::getModified(unsigned agent, uint64_t line_addr)
{
    checkAgent(agent);
    stats_.inc("getm");
    DirEntry &e = dir_[line_addr];
    Response resp;
    const uint32_t bit = 1u << agent;
    if (e.owner >= 0 && e.owner != static_cast<int>(agent)) {
        resp.from_owner = true;
        if (e.modified)
            stats_.inc("owner_writebacks");
    }
    // Invalidate all other sharers.
    for (unsigned a = 0; a < num_agents_; ++a) {
        if (a != agent && (e.sharers & (1u << a))) {
            resp.invalidated.push_back(a);
            stats_.inc("invalidations_sent");
        }
    }
    e.sharers = bit;
    e.owner = static_cast<int>(agent);
    e.modified = true;
    resp.grant = MesiState::kModified;
    return resp;
}

void
MesiDirectory::putLine(unsigned agent, uint64_t line_addr)
{
    checkAgent(agent);
    auto it = dir_.find(line_addr);
    if (it == dir_.end())
        return;
    DirEntry &e = it->second;
    e.sharers &= ~(1u << agent);
    if (e.owner == static_cast<int>(agent)) {
        if (e.modified)
            stats_.inc("dirty_writebacks");
        e.owner = -1;
        e.modified = false;
    }
    if (e.sharers == 0)
        dir_.erase(it);
    stats_.inc("puts");
}

MesiState
MesiDirectory::agentState(unsigned agent, uint64_t line_addr) const
{
    auto it = dir_.find(line_addr);
    if (it == dir_.end())
        return MesiState::kInvalid;
    const DirEntry &e = it->second;
    if (!(e.sharers & (1u << agent)))
        return MesiState::kInvalid;
    if (e.owner == static_cast<int>(agent))
        return e.modified ? MesiState::kModified
                          : MesiState::kExclusive;
    return MesiState::kShared;
}

} // namespace spt
