#include "mem/mshr.h"

namespace spt {

MshrFile::MshrFile(unsigned num_entries)
    : capacity_(num_entries)
{
}

bool
MshrFile::lineInFlight(uint64_t line_addr) const
{
    for (const Entry &e : entries_)
        if (e.line_addr == line_addr)
            return true;
    return false;
}

uint64_t
MshrFile::remainingLatency(uint64_t line_addr, uint64_t now) const
{
    for (const Entry &e : entries_)
        if (e.line_addr == line_addr && e.ready_cycle > now)
            return e.ready_cycle - now;
    return 0;
}

MshrFile::Allocation
MshrFile::allocate(uint64_t line_addr, uint64_t now,
                   uint64_t fill_cycle)
{
    tick(now);
    for (const Entry &e : entries_) {
        if (e.line_addr == line_addr) {
            stats_.inc("merges");
            return {true, true, e.ready_cycle};
        }
    }
    if (entries_.size() >= capacity_) {
        stats_.inc("rejects");
        return {false, false, 0};
    }
    entries_.push_back({line_addr, fill_cycle});
    stats_.inc("allocations");
    return {true, false, fill_cycle};
}

void
MshrFile::tick(uint64_t now)
{
    std::erase_if(entries_, [now](const Entry &e) {
        return e.ready_cycle <= now;
    });
}

} // namespace spt
