/**
 * @file
 * Miss status holding register file: bounds the number of distinct
 * outstanding line misses and merges requests to lines already in
 * flight.
 */

#ifndef SPT_MEM_MSHR_H
#define SPT_MEM_MSHR_H

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace spt {

class MshrFile
{
  public:
    explicit MshrFile(unsigned num_entries = 16);

    struct Allocation {
        bool accepted = false;   ///< false: MSHRs full, retry later
        bool merged = false;     ///< joined an in-flight miss
        uint64_t ready_cycle = 0;
    };

    /**
     * Requests an outstanding miss for @p line_addr that would
     * complete at @p fill_cycle if issued now. If the line is already
     * in flight, the request merges and completes at the in-flight
     * fill time. If all entries are busy, the request is rejected.
     */
    Allocation allocate(uint64_t line_addr, uint64_t now,
                        uint64_t fill_cycle);

    /** Releases entries whose fill has arrived. */
    void tick(uint64_t now);

    unsigned inFlight() const
    {
        return static_cast<unsigned>(entries_.size());
    }
    unsigned capacity() const { return capacity_; }
    bool lineInFlight(uint64_t line_addr) const;

    /** Cycles until the in-flight fill of @p line_addr arrives
     *  (0 if not in flight or already arrived). */
    uint64_t remainingLatency(uint64_t line_addr, uint64_t now) const;

    StatSet &stats() { return stats_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct Entry {
        uint64_t line_addr;
        uint64_t ready_cycle;
    };

    unsigned capacity_;
    std::vector<Entry> entries_;
    StatSet stats_;
};

} // namespace spt

#endif // SPT_MEM_MSHR_H
