/**
 * @file
 * Set-associative cache tag array with LRU replacement and per-line
 * MESI state. Data itself lives in the simulator's backing
 * ByteMemory; the cache tracks presence, state, and recency for
 * timing, and exposes fill/evict events to observers (the SPT shadow
 * L1 mirrors this cache's geometry by listening to those events,
 * exactly as the paper connects the L1D tag-check and eviction
 * outputs to the shadow L1 in Section 7.5).
 */

#ifndef SPT_MEM_CACHE_H
#define SPT_MEM_CACHE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"

namespace spt {

enum class MesiState : uint8_t {
    kInvalid,
    kShared,
    kExclusive,
    kModified,
};

struct CacheParams {
    std::string name = "cache";
    uint64_t size_bytes = 32 * 1024;
    unsigned line_bytes = 64;
    unsigned ways = 8;
    unsigned latency = 2; ///< access latency in cycles
};

/** Listener for line allocation/eviction decisions. */
class CacheObserver
{
  public:
    virtual ~CacheObserver() = default;
    virtual void onFill(uint64_t line_addr, unsigned set,
                        unsigned way) = 0;
    virtual void onEvict(uint64_t line_addr, unsigned set,
                         unsigned way) = 0;
};

class SetAssocCache
{
  public:
    struct Eviction {
        bool valid = false;
        uint64_t line_addr = 0;
        bool dirty = false;
    };

    explicit SetAssocCache(const CacheParams &params);

    /** Presence probe without any state change (attacker oracle /
     *  tests). */
    bool contains(uint64_t addr) const;

    /** Looks up @p addr; on hit updates LRU and (for writes)
     *  upgrades MESI state to Modified. Returns hit/miss. */
    bool access(uint64_t addr, bool is_write);

    /** Allocates a line for @p addr in @p state, evicting the LRU
     *  victim if needed. No-op (refresh) if already present. */
    Eviction fill(uint64_t addr, MesiState state);

    /** Invalidates a line if present; returns whether it was dirty. */
    std::optional<bool> invalidate(uint64_t addr);

    MesiState state(uint64_t addr) const;

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return num_sets_; }
    uint64_t lineAddr(uint64_t addr) const
    {
        return addr & ~uint64_t{params_.line_bytes - 1};
    }
    unsigned setOf(uint64_t addr) const;

    /** Set/way of a resident line (for shadow structures/tests). */
    std::optional<unsigned> wayOf(uint64_t addr) const;

    void setObserver(CacheObserver *obs) { observer_ = obs; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct Line {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
        MesiState state = MesiState::kInvalid;
    };

    CacheParams params_;
    unsigned num_sets_;
    std::vector<Line> lines_;
    uint64_t tick_ = 0;
    CacheObserver *observer_ = nullptr;
    StatSet stats_;

    uint64_t tagOf(uint64_t addr) const;
    Line &lineAt(unsigned set, unsigned way);
    const Line &lineAt(unsigned set, unsigned way) const;
    int findWay(uint64_t addr) const;
};

} // namespace spt

#endif // SPT_MEM_CACHE_H
