/**
 * @file
 * The full memory hierarchy of Table 1: split L1I/L1D, unified L2
 * and L3, mesh NoC latencies, DRAM, L1D MSHRs, and a MESI directory
 * for multi-agent (victim/attacker) configurations.
 *
 * Timing model: an access that hits at level k pays the sum of the
 * access latencies of levels 1..k (plus NoC round trips beyond L2
 * and DRAM latency beyond L3) and fills all levels above k
 * (inclusive hierarchy). L1D misses are admitted through a finite
 * MSHR file; when it is full the access is rejected and the LSU
 * retries.
 */

#ifndef SPT_MEM_MEMORY_SYSTEM_H
#define SPT_MEM_MEMORY_SYSTEM_H

#include <cstdint>
#include <memory>

#include "common/fault_hooks.h"
#include "common/stats.h"
#include "mem/cache.h"
#include "mem/coherence.h"
#include "mem/mshr.h"
#include "mem/noc.h"

namespace spt {

struct MemorySystemParams {
    CacheParams l1i{"l1i", 32 * 1024, 64, 4, 2};
    CacheParams l1d{"l1d", 32 * 1024, 64, 8, 2};
    CacheParams l2{"l2", 256 * 1024, 64, 16, 20};
    CacheParams l3{"l3", 2 * 1024 * 1024, 64, 16, 40};
    unsigned dram_latency = 100; ///< 50 ns at 2 GHz
    unsigned num_mshrs = 16;
    unsigned num_agents = 2;     ///< core + optional attacker agent
};

enum class AccessKind : uint8_t { kLoad, kStore, kIfetch };

struct MemAccessResult {
    bool accepted = true;   ///< false: L1D MSHRs full, retry
    unsigned latency = 0;   ///< total cycles until data available
    unsigned hit_level = 1; ///< 1..3 = cache level, 4 = DRAM
};

class MemorySystem
{
  public:
    static constexpr unsigned kCoreAgent = 0;
    static constexpr unsigned kAttackerAgent = 1;

    explicit MemorySystem(
        const MemorySystemParams &params = MemorySystemParams{});

    /** Timing access from the core at cycle @p now. */
    MemAccessResult access(uint64_t addr, AccessKind kind,
                           uint64_t now);

    /**
     * Attacker-side probe (e.g., the receiver of a Flush+Reload /
     * Prime+Probe channel): returns true if the line is present in
     * the shared L3 (observable via access timing) without
     * disturbing the victim's private caches.
     */
    bool attackerProbeL3(uint64_t addr) const;

    /** Attacker-side flush: evicts the line from every level (the
     *  clflush half of Flush+Reload). */
    void attackerFlush(uint64_t addr);

    /** Non-destructive presence checks (tests/attack oracles). */
    bool inL1D(uint64_t addr) const { return l1d_.contains(addr); }
    bool inL2(uint64_t addr) const { return l2_.contains(addr); }
    bool inL3(uint64_t addr) const { return l3_.contains(addr); }

    SetAssocCache &l1d() { return l1d_; }
    SetAssocCache &l1i() { return l1i_; }
    SetAssocCache &l2() { return l2_; }
    SetAssocCache &l3() { return l3_; }
    MshrFile &mshrs() { return mshrs_; }
    MesiDirectory &directory() { return directory_; }
    const MeshNoc &noc() const { return noc_; }

    StatSet &stats() { return stats_; }

    /** Timing-fault injection (common/fault_hooks.h): synthetic
     *  eviction storms and MSHR stalls. Null = no injection. */
    void setFaultHooks(FaultHooks *hooks) { faults_ = hooks; }

  private:
    MemorySystemParams params_;
    FaultHooks *faults_ = nullptr;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    SetAssocCache l3_;
    MshrFile mshrs_;
    MeshNoc noc_;
    MesiDirectory directory_;
    StatSet stats_;
};

} // namespace spt

#endif // SPT_MEM_MEMORY_SYSTEM_H
