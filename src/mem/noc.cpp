#include "mem/noc.h"

#include "common/logging.h"

namespace spt {

MeshNoc::MeshNoc(unsigned cols, unsigned rows,
                 unsigned cycles_per_hop, unsigned core_node,
                 unsigned mem_ctrl_node, unsigned line_bytes)
    : cols_(cols), rows_(rows), cycles_per_hop_(cycles_per_hop),
      core_node_(core_node), mem_ctrl_node_(mem_ctrl_node),
      line_bytes_(line_bytes)
{
    SPT_ASSERT(cols_ > 0 && rows_ > 0, "degenerate mesh");
    SPT_ASSERT(core_node_ < numNodes() &&
                   mem_ctrl_node_ < numNodes(),
               "node ids out of range");
}

unsigned
MeshNoc::bankOf(uint64_t addr) const
{
    return static_cast<unsigned>((addr / line_bytes_) % numNodes());
}

unsigned
MeshNoc::hops(unsigned from, unsigned to) const
{
    const int fx = static_cast<int>(from % cols_);
    const int fy = static_cast<int>(from / cols_);
    const int tx = static_cast<int>(to % cols_);
    const int ty = static_cast<int>(to / cols_);
    const int dx = fx > tx ? fx - tx : tx - fx;
    const int dy = fy > ty ? fy - ty : ty - fy;
    return static_cast<unsigned>(dx + dy);
}

unsigned
MeshNoc::l3RoundTrip(uint64_t addr) const
{
    return 2 * hops(core_node_, bankOf(addr)) * cycles_per_hop_;
}

unsigned
MeshNoc::dramRoundTrip() const
{
    return 2 * hops(core_node_, mem_ctrl_node_) * cycles_per_hop_;
}

} // namespace spt
