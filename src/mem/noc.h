/**
 * @file
 * Hop-latency model of the paper's 4x2 mesh network (Table 1: 128b
 * links, 1 cycle per hop). The shared L3 is address-banked across
 * the mesh nodes; requests from the core node pay the Manhattan-
 * distance round trip to the target bank (and to the memory
 * controller node for DRAM accesses).
 */

#ifndef SPT_MEM_NOC_H
#define SPT_MEM_NOC_H

#include <cstdint>

namespace spt {

class MeshNoc
{
  public:
    MeshNoc(unsigned cols = 4, unsigned rows = 2,
            unsigned cycles_per_hop = 1, unsigned core_node = 0,
            unsigned mem_ctrl_node = 7, unsigned line_bytes = 64);

    unsigned numNodes() const { return cols_ * rows_; }

    /** Mesh node hosting the L3 bank for @p addr. */
    unsigned bankOf(uint64_t addr) const;

    /** Manhattan hop count between two nodes. */
    unsigned hops(unsigned from, unsigned to) const;

    /** Round-trip latency from the core to the L3 bank of @p addr. */
    unsigned l3RoundTrip(uint64_t addr) const;

    /** Round-trip latency from the core to the memory controller. */
    unsigned dramRoundTrip() const;

  private:
    unsigned cols_;
    unsigned rows_;
    unsigned cycles_per_hop_;
    unsigned core_node_;
    unsigned mem_ctrl_node_;
    unsigned line_bytes_;
};

} // namespace spt

#endif // SPT_MEM_NOC_H
