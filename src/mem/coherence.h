/**
 * @file
 * Two-level MESI coherence directory (the paper's Table 1 protocol).
 *
 * The directory sits conceptually at the shared L3 and tracks, per
 * line, the owner/sharers among the private-cache agents. The
 * single-core experiments exercise it with one agent (the core); the
 * pen-testing harness can attach a second "attacker" agent whose
 * probes interact with the victim's lines exactly as a CrossCore
 * receiver would (shared-line state transitions are how Flush+Reload
 * style receivers observe the victim).
 */

#ifndef SPT_MEM_COHERENCE_H
#define SPT_MEM_COHERENCE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "mem/cache.h"

namespace spt {

class MesiDirectory
{
  public:
    explicit MesiDirectory(unsigned num_agents = 2);

    /** Result of a coherence request. */
    struct Response {
        MesiState grant = MesiState::kInvalid; ///< state granted
        bool from_owner = false; ///< data came from another cache
        std::vector<unsigned> invalidated; ///< agents invalidated
    };

    /** Read request (load/ifetch): grants E if unshared, S else. */
    Response getShared(unsigned agent, uint64_t line_addr);

    /** Write request (store): grants M, invalidating others. */
    Response getModified(unsigned agent, uint64_t line_addr);

    /** Eviction/writeback notification from an agent. */
    void putLine(unsigned agent, uint64_t line_addr);

    /** Directory's view of @p agent's state for a line. */
    MesiState agentState(unsigned agent, uint64_t line_addr) const;

    StatSet &stats() { return stats_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct DirEntry {
        uint32_t sharers = 0;  ///< bitmask of agents holding the line
        int owner = -1;        ///< agent holding M/E, or -1
        bool modified = false; ///< owner holds M
    };

    unsigned num_agents_;
    std::unordered_map<uint64_t, DirEntry> dir_;
    StatSet stats_;

    void checkAgent(unsigned agent) const;
};

} // namespace spt

#endif // SPT_MEM_COHERENCE_H
