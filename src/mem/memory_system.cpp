#include "mem/memory_system.h"

#include "common/logging.h"

namespace spt {

MemorySystem::MemorySystem(const MemorySystemParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d),
      l2_(params.l2), l3_(params.l3), mshrs_(params.num_mshrs),
      noc_(4, 2, 1, 0, 7, params.l3.line_bytes),
      directory_(params.num_agents)
{
}

MemAccessResult
MemorySystem::access(uint64_t addr, AccessKind kind, uint64_t now)
{
    MemAccessResult result;
    const bool is_write = kind == AccessKind::kStore;
    SetAssocCache &l1 =
        kind == AccessKind::kIfetch ? l1i_ : l1d_;

    if (faults_ && faults_->fire(FaultSite::kCacheEvict)) {
        // Synthetic eviction storm: drop the line from every level
        // (the attackerFlush mechanics) so this access misses all
        // the way to DRAM. Data lives in the architectural
        // ByteMemory, so only timing changes; a shadow-L1 taint
        // store reverts evicted lines to tainted (conservative).
        l1i_.invalidate(addr);
        l1d_.invalidate(addr);
        l2_.invalidate(addr);
        l3_.invalidate(addr);
        directory_.putLine(kCoreAgent, l3_.lineAddr(addr));
        stats_.inc("fault.evictions");
    }

    unsigned latency = l1.params().latency;
    if (l1.access(addr, is_write)) {
        result.latency = latency;
        result.hit_level = 1;
        // Tag state is updated at miss time, but the data of an
        // in-flight fill only arrives when the MSHR completes: a
        // same-line access must wait out the remaining fill time.
        if (kind != AccessKind::kIfetch) {
            mshrs_.tick(now);
            const uint64_t remaining =
                mshrs_.remainingLatency(l1.lineAddr(addr), now);
            if (remaining > 0) {
                result.latency = static_cast<unsigned>(
                    remaining + l1.params().latency);
                stats_.inc("l1_hits_under_fill");
            }
        }
        stats_.inc("l1_hits");
        return result;
    }

    // L1 miss. Data-side misses must win an MSHR before probing
    // further down the hierarchy.
    const uint64_t line = l1.lineAddr(addr);
    const bool data_side = kind != AccessKind::kIfetch;

    // Determine where the line hits to size the fill latency.
    unsigned hit_level;
    latency += l2_.params().latency;
    if (l2_.access(addr, is_write)) {
        hit_level = 2;
    } else {
        latency += l3_.params().latency + noc_.l3RoundTrip(addr);
        if (l3_.access(addr, is_write)) {
            hit_level = 3;
        } else {
            hit_level = 4;
            latency += params_.dram_latency + noc_.dramRoundTrip();
        }
    }

    if (data_side) {
        if (faults_ && faults_->fire(FaultSite::kMshrStall)) {
            // Synthetic MSHR-file pressure: reject as if full; the
            // LSU retries (same path as a genuine reject).
            stats_.inc("fault.mshr_stalls");
            return {false, 0, 0};
        }
        const auto alloc =
            mshrs_.allocate(line, now, now + latency);
        if (!alloc.accepted) {
            stats_.inc("mshr_rejects");
            // The L2/L3 lookups above already refreshed LRU state;
            // that is acceptable modeling noise for a retried access.
            return {false, 0, 0};
        }
        if (alloc.merged) {
            latency = static_cast<unsigned>(
                alloc.ready_cycle > now ? alloc.ready_cycle - now
                                        : 1);
            stats_.inc("mshr_merges");
        }
    }

    // Coherence: obtain the line in the right state for the core.
    const auto resp = is_write
                          ? directory_.getModified(kCoreAgent, line)
                          : directory_.getShared(kCoreAgent, line);

    // Fill the inclusive hierarchy.
    const MesiState fill_state =
        is_write ? MesiState::kModified : resp.grant;
    if (hit_level >= 4)
        l3_.fill(line, MesiState::kShared);
    if (hit_level >= 3)
        l2_.fill(line, fill_state);
    l1.fill(line, fill_state);

    result.latency = latency;
    result.hit_level = hit_level;
    stats_.inc("l1_misses");
    stats_.inc("hits_level_" + std::to_string(hit_level));
    return result;
}

bool
MemorySystem::attackerProbeL3(uint64_t addr) const
{
    return l3_.contains(addr);
}

void
MemorySystem::attackerFlush(uint64_t addr)
{
    l1i_.invalidate(addr);
    l1d_.invalidate(addr);
    l2_.invalidate(addr);
    l3_.invalidate(addr);
    directory_.putLine(kCoreAgent, l3_.lineAddr(addr));
    stats_.inc("attacker_flushes");
}

} // namespace spt
