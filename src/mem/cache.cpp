#include "mem/cache.h"

#include "common/bit_util.h"
#include "common/logging.h"

namespace spt {

SetAssocCache::SetAssocCache(const CacheParams &params)
    : params_(params)
{
    SPT_ASSERT(isPowerOfTwo(params_.line_bytes),
               params_.name << ": line size must be a power of two");
    SPT_ASSERT(params_.size_bytes %
                   (params_.line_bytes * params_.ways) == 0,
               params_.name << ": size not divisible by way size");
    num_sets_ = static_cast<unsigned>(
        params_.size_bytes / (params_.line_bytes * params_.ways));
    SPT_ASSERT(isPowerOfTwo(num_sets_),
               params_.name << ": set count must be a power of two");
    lines_.assign(size_t{num_sets_} * params_.ways, Line{});
}

unsigned
SetAssocCache::setOf(uint64_t addr) const
{
    return static_cast<unsigned>(
        (addr / params_.line_bytes) & (num_sets_ - 1));
}

uint64_t
SetAssocCache::tagOf(uint64_t addr) const
{
    return addr / params_.line_bytes / num_sets_;
}

SetAssocCache::Line &
SetAssocCache::lineAt(unsigned set, unsigned way)
{
    return lines_[size_t{set} * params_.ways + way];
}

const SetAssocCache::Line &
SetAssocCache::lineAt(unsigned set, unsigned way) const
{
    return lines_[size_t{set} * params_.ways + way];
}

int
SetAssocCache::findWay(uint64_t addr) const
{
    const unsigned set = setOf(addr);
    const uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.ways; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

bool
SetAssocCache::contains(uint64_t addr) const
{
    return findWay(addr) >= 0;
}

std::optional<unsigned>
SetAssocCache::wayOf(uint64_t addr) const
{
    const int w = findWay(addr);
    if (w < 0)
        return std::nullopt;
    return static_cast<unsigned>(w);
}

MesiState
SetAssocCache::state(uint64_t addr) const
{
    const int w = findWay(addr);
    return w < 0 ? MesiState::kInvalid
                 : lineAt(setOf(addr),
                          static_cast<unsigned>(w)).state;
}

bool
SetAssocCache::access(uint64_t addr, bool is_write)
{
    ++tick_;
    const int w = findWay(addr);
    if (w < 0) {
        stats_.inc(is_write ? "write_misses" : "read_misses");
        return false;
    }
    Line &line = lineAt(setOf(addr), static_cast<unsigned>(w));
    line.lru = tick_;
    if (is_write) {
        // S->M would require invalidations in a multi-agent system;
        // the single-requestor hierarchy upgrades silently. E->M is
        // always silent under MESI.
        line.state = MesiState::kModified;
    }
    stats_.inc(is_write ? "write_hits" : "read_hits");
    return true;
}

SetAssocCache::Eviction
SetAssocCache::fill(uint64_t addr, MesiState st)
{
    ++tick_;
    Eviction ev;
    const unsigned set = setOf(addr);
    int w = findWay(addr);
    if (w >= 0) {
        Line &line = lineAt(set, static_cast<unsigned>(w));
        line.lru = tick_;
        if (st == MesiState::kModified)
            line.state = MesiState::kModified;
        return ev;
    }
    // Choose a victim: an invalid way, else the LRU way.
    unsigned victim = 0;
    uint64_t oldest = ~uint64_t{0};
    for (unsigned i = 0; i < params_.ways; ++i) {
        const Line &line = lineAt(set, i);
        if (!line.valid) {
            victim = i;
            oldest = 0;
            break;
        }
        if (line.lru < oldest) {
            oldest = line.lru;
            victim = i;
        }
    }
    Line &line = lineAt(set, victim);
    if (line.valid) {
        ev.valid = true;
        ev.line_addr =
            (line.tag * num_sets_ + set) * params_.line_bytes;
        ev.dirty = line.state == MesiState::kModified;
        stats_.inc("evictions");
        if (ev.dirty)
            stats_.inc("dirty_evictions");
        if (observer_)
            observer_->onEvict(ev.line_addr, set, victim);
    }
    line.valid = true;
    line.tag = tagOf(addr);
    line.lru = tick_;
    line.state = st;
    stats_.inc("fills");
    if (observer_)
        observer_->onFill(lineAddr(addr), set, victim);
    return ev;
}

std::optional<bool>
SetAssocCache::invalidate(uint64_t addr)
{
    const int w = findWay(addr);
    if (w < 0)
        return std::nullopt;
    const unsigned set = setOf(addr);
    Line &line = lineAt(set, static_cast<unsigned>(w));
    const bool dirty = line.state == MesiState::kModified;
    line.valid = false;
    line.state = MesiState::kInvalid;
    stats_.inc("invalidations");
    if (observer_)
        observer_->onEvict(lineAddr(addr), set,
                           static_cast<unsigned>(w));
    return dirty;
}

} // namespace spt
