#include "core/engine_factory.h"

#include "common/logging.h"
#include "core/baseline_engines.h"

namespace spt {

std::unique_ptr<SecurityEngine>
makeEngine(const EngineConfig &cfg)
{
    switch (cfg.scheme) {
      case ProtectionScheme::kUnsafeBaseline:
        return std::make_unique<UnsafeEngine>();
      case ProtectionScheme::kSecureBaseline:
        return std::make_unique<SecureBaselineEngine>();
      case ProtectionScheme::kStt:
        return std::make_unique<SttEngine>();
      case ProtectionScheme::kSpt:
        return std::make_unique<SptEngine>(cfg.spt);
    }
    SPT_PANIC("unknown protection scheme");
}

std::string
engineConfigName(const EngineConfig &cfg)
{
    switch (cfg.scheme) {
      case ProtectionScheme::kUnsafeBaseline:
        return "UnsafeBaseline";
      case ProtectionScheme::kSecureBaseline:
        return "SecureBaseline";
      case ProtectionScheme::kStt:
        return "STT";
      case ProtectionScheme::kSpt:
        break;
    }
    std::string method;
    switch (cfg.spt.method) {
      case UntaintMethod::kNone:     method = "None"; break;
      case UntaintMethod::kForward:  method = "Fwd"; break;
      case UntaintMethod::kBackward: method = "Bwd"; break;
      case UntaintMethod::kIdeal:    method = "Ideal"; break;
    }
    std::string shadow;
    switch (cfg.spt.shadow) {
      case ShadowKind::kNone:      shadow = "NoShadowL1"; break;
      case ShadowKind::kShadowL1:  shadow = "ShadowL1"; break;
      case ShadowKind::kShadowMem: shadow = "ShadowMem"; break;
    }
    std::string name = "SPT{" + method + "," + shadow + "}";
    if (cfg.spt.mutation == SptConfig::Mutation::kLeakyMemGate)
        name += "+LeakyMemGate";
    if (cfg.spt.knowledge_map != nullptr)
        name += "+KMap";
    return name;
}

} // namespace spt
