/**
 * @file
 * Comparison protection schemes from the paper's evaluation
 * (Table 2):
 *
 *  - SecureBaselineEngine: delays every load/store until it reaches
 *    the visibility point. Same protection scope as SPT, maximal
 *    overhead.
 *  - SttEngine: Speculative Taint Tracking [MICRO'19]. Protects only
 *    speculatively-accessed data: a load's output is s-tainted until
 *    the load reaches the VP; s-taint propagates through register
 *    dataflow via youngest-root-of-taint (YRoT) tracking, and
 *    transmitters/branches with s-tainted operands are delayed.
 *    Untainting is implicit and single-cycle: a root that reached
 *    the VP (or left the pipeline) no longer taints its dependents.
 */

#ifndef SPT_CORE_BASELINE_ENGINES_H
#define SPT_CORE_BASELINE_ENGINES_H

#include <vector>

#include "uarch/security_engine.h"
#include "uarch/types.h"

namespace spt {

class SecureBaselineEngine : public SecurityEngine
{
  public:
    const char *name() const override { return "secure-baseline"; }

    bool
    mayAccessMemory(const DynInst &d) const override
    {
        if (!d.at_vp)
            stats_.inc("policy.mem_blocked_checks");
        return d.at_vp;
    }

    bool
    transmitPublic(const DynInst &d, DelayKind kind) const override
    {
        // The scheme's claim: no memory access before the VP. It
        // makes no claims about the other channels.
        return kind == DelayKind::kMemAccess ? d.at_vp : true;
    }

    void
    accrueBlockedTransmit(const DynInst &, DelayKind kind,
                          uint64_t cycles) override
    {
        // Bulk form of the blocked mayAccessMemory stat (the only
        // stat-carrying gate this scheme has).
        if (kind == DelayKind::kMemAccess)
            stats_.inc("policy.mem_blocked_checks", cycles);
    }
};

class SttEngine : public SecurityEngine
{
  public:
    void attach(Core &core) override;
    const char *name() const override { return "stt"; }

    void onRename(DynInst &d) override;

    bool mayAccessMemory(const DynInst &d) const override;
    bool mayResolveBranch(const DynInst &d) const override;
    bool maySquashMemViolation(const DynInst &d) const override;
    bool stlForwardingPublic(const DynInst &load,
                             const DynInst &store) const override;

    bool transmitPublic(const DynInst &d,
                        DelayKind kind) const override;

    void
    accrueBlockedTransmit(const DynInst &, DelayKind kind,
                          uint64_t cycles) override
    {
        // Bulk form of the blocked mayAccessMemory stat; the other
        // gates are stats-pure.
        if (kind == DelayKind::kMemAccess)
            stats_.inc("policy.mem_blocked_checks", cycles);
    }

    /** Is the value in @p reg currently s-tainted? */
    bool regTainted(PhysReg reg) const;

    // --- observability ------------------------------------------------
    /** STT delays on s-tainted operands (no broadcast structure, so
     *  a blocked memory gate is always a tainted address). */
    DelayCause
    delayCause(const DynInst &d, DelayKind kind) const override
    {
        if (kind == DelayKind::kMemAccess)
            return DelayCause::kTaintedAddr;
        return SecurityEngine::delayCause(d, kind);
    }
    uint64_t taintedRegCount() const override;

  private:
    /** Youngest root of taint per physical register; 0 = none. */
    std::vector<SeqNum> root_;

    bool rootLive(SeqNum root) const;
};

} // namespace spt

#endif // SPT_CORE_BASELINE_ENGINES_H
