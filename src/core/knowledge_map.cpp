#include "core/knowledge_map.h"

#include <bit>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "isa/program.h"
#include "uarch/types.h"

namespace spt {

namespace {

constexpr uint64_t kMagic = 0x5350544B4D415031ull; // "SPTKMAP1"
constexpr uint8_t kFormatVersion = 1;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
fnv(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

void
putU64(std::ostream &os, uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 8);
}

void
putU32(std::ostream &os, uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(b, 4);
}

uint64_t
getU64(std::istream &is)
{
    char b[8];
    is.read(b, 8);
    if (!is)
        SPT_FATAL("knowledge map truncated");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(b[i]))
             << (8 * i);
    return v;
}

uint32_t
getU32(std::istream &is)
{
    char b[4];
    is.read(b, 4);
    if (!is)
        SPT_FATAL("knowledge map truncated");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(b[i]))
             << (8 * i);
    return v;
}

uint8_t
getU8(std::istream &is)
{
    const int c = is.get();
    if (c < 0)
        SPT_FATAL("knowledge map truncated");
    return static_cast<uint8_t>(c);
}

} // namespace

const char *
toString(KnowledgeVpModel m)
{
    switch (m) {
      case KnowledgeVpModel::kSpectre:    return "spectre";
      case KnowledgeVpModel::kFuturistic: return "futuristic";
      case KnowledgeVpModel::kAny:        return "any";
    }
    return "?";
}

KnowledgeMap::KnowledgeMap(uint64_t program_fingerprint,
                           KnowledgeVpModel vp_model,
                           std::vector<uint32_t> robust_regs)
    : fingerprint_(program_fingerprint), vp_model_(vp_model),
      robust_regs_(std::move(robust_regs))
{
}

uint64_t
KnowledgeMap::coveredPcs() const
{
    uint64_t n = 0;
    for (uint32_t m : robust_regs_)
        n += m != 0;
    return n;
}

uint64_t
KnowledgeMap::totalFacts() const
{
    uint64_t n = 0;
    for (uint32_t m : robust_regs_)
        n += static_cast<uint64_t>(std::popcount(m));
    return n;
}

uint64_t
KnowledgeMap::contentHash() const
{
    uint64_t h = kFnvOffset;
    fnv(h, fingerprint_);
    fnv(h, static_cast<uint64_t>(vp_model_));
    fnv(h, static_cast<uint64_t>(edge_policy_));
    fnv(h, static_cast<uint64_t>(analysis_version_));
    fnv(h, robust_regs_.size());
    for (uint32_t m : robust_regs_)
        fnv(h, m);
    return h;
}

uint64_t
KnowledgeMap::fingerprintOf(const Program &p)
{
    uint64_t h = kFnvOffset;
    fnv(h, p.size());
    fnv(h, p.entry());
    for (uint64_t pc = 0; pc < p.size(); ++pc) {
        const Instruction &si = p.at(pc);
        fnv(h, static_cast<uint64_t>(si.op));
        fnv(h, si.rd);
        fnv(h, si.rs1);
        fnv(h, si.rs2);
        fnv(h, static_cast<uint64_t>(si.imm));
    }
    for (const auto &[addr, seg] : p.dataSegments()) {
        fnv(h, addr);
        fnv(h, seg.size());
        for (uint8_t byte : seg)
            fnv(h, byte);
    }
    for (const SecretRange &r : p.secretRanges()) {
        fnv(h, r.base);
        fnv(h, r.len);
    }
    return h;
}

void
KnowledgeMap::validateFor(const Program &program,
                          AttackModel model) const
{
    if (fingerprint_ != fingerprintOf(program))
        SPT_FATAL("knowledge map fingerprint mismatch: map was "
                  "built over a different program (stale map?)");
    if (edge_policy_ != kKnowledgeEdgePolicyVersion)
        SPT_FATAL("knowledge map edge-policy version "
                  << unsigned(edge_policy_) << " != supported "
                  << unsigned(kKnowledgeEdgePolicyVersion));
    if (analysis_version_ != kKnowledgeAnalysisVersion)
        SPT_FATAL("knowledge map analysis version "
                  << unsigned(analysis_version_) << " != supported "
                  << unsigned(kKnowledgeAnalysisVersion));
    const KnowledgeVpModel want =
        model == AttackModel::kSpectre ? KnowledgeVpModel::kSpectre
                                       : KnowledgeVpModel::kFuturistic;
    if (vp_model_ != KnowledgeVpModel::kAny && vp_model_ != want)
        SPT_FATAL("knowledge map VP model '" << toString(vp_model_)
                  << "' does not cover the run's attack model '"
                  << toString(want) << "'");
}

void
KnowledgeMap::save(std::ostream &os) const
{
    putU64(os, kMagic);
    os.put(static_cast<char>(kFormatVersion));
    putU64(os, fingerprint_);
    os.put(static_cast<char>(vp_model_));
    os.put(static_cast<char>(edge_policy_));
    os.put(static_cast<char>(analysis_version_));
    putU64(os, robust_regs_.size());
    for (uint32_t m : robust_regs_)
        putU32(os, m);
    putU64(os, contentHash()); // trailer: integrity check
    if (!os)
        SPT_FATAL("knowledge map write failed");
}

KnowledgeMap
KnowledgeMap::load(std::istream &is)
{
    if (getU64(is) != kMagic)
        SPT_FATAL("not a knowledge map (bad magic)");
    const uint8_t version = getU8(is);
    if (version != kFormatVersion)
        SPT_FATAL("knowledge map format version "
                  << unsigned(version) << " unsupported (expected "
                  << unsigned(kFormatVersion) << ")");
    KnowledgeMap map;
    map.fingerprint_ = getU64(is);
    const uint8_t model = getU8(is);
    if (model > static_cast<uint8_t>(KnowledgeVpModel::kAny))
        SPT_FATAL("knowledge map: bad VP model tag "
                  << unsigned(model));
    map.vp_model_ = static_cast<KnowledgeVpModel>(model);
    map.edge_policy_ = getU8(is);
    map.analysis_version_ = getU8(is);
    const uint64_t n = getU64(is);
    if (n > (1ull << 32))
        SPT_FATAL("knowledge map: implausible pc count " << n);
    map.robust_regs_.resize(n);
    for (uint64_t i = 0; i < n; ++i)
        map.robust_regs_[i] = getU32(is);
    if (getU64(is) != map.contentHash())
        SPT_FATAL("knowledge map corrupted (trailer hash mismatch)");
    return map;
}

void
KnowledgeMap::saveToFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        SPT_FATAL("cannot write knowledge map " << path);
    save(os);
}

KnowledgeMap
KnowledgeMap::loadFromFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        SPT_FATAL("cannot open knowledge map " << path);
    return load(is);
}

std::string
KnowledgeMap::toJson(const Program *program) const
{
    JsonWriter jw;
    jw.beginObject();
    jw.field("artifact", "knowledge_map");
    jw.field("format_version", uint64_t{kFormatVersion});
    {
        std::ostringstream hex;
        hex << std::hex << fingerprint_;
        jw.field("program_fingerprint", "0x" + hex.str());
    }
    jw.field("vp_model", toString(vp_model_));
    jw.field("edge_policy_version",
             static_cast<uint64_t>(edge_policy_));
    jw.field("analysis_version",
             static_cast<uint64_t>(analysis_version_));
    jw.field("pcs", robust_regs_.size());
    jw.field("covered_pcs", coveredPcs());
    jw.field("robust_facts", totalFacts());
    jw.key("entries").beginArray();
    for (uint64_t pc = 0; pc < robust_regs_.size(); ++pc) {
        const uint32_t mask = robust_regs_[pc];
        if (mask == 0)
            continue;
        jw.beginObject();
        jw.field("pc", pc);
        if (program)
            jw.field("instruction", toString(program->at(pc)));
        jw.key("robust_regs").beginArray();
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            if (mask >> r & 1)
                jw.value("x" + std::to_string(r));
        jw.endArray();
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    return jw.str();
}

} // namespace spt
