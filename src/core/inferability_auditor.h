/**
 * @file
 * Empirical validation of the paper's security analysis (Section 8,
 * Lemma 2: "untainted data is public"): an attacker simulator that
 * runs alongside an SPT-protected core and tries to *reconstruct the
 * concrete values* of everything SPT untaints, using only what a
 * real attacker has:
 *
 *  - the program text and ROB contents (public by Property 1),
 *  - the operands of transmitters/branches that reached the
 *    visibility point (non-speculative leakage),
 *  - instruction semantics (forward computation and inversion of
 *    MOV/ADD/SUB/XOR-class operations),
 *  - memory contents at addresses it has observed being accessed
 *    non-speculatively with known data.
 *
 * Every cycle the auditor checks that each register SPT has fully
 * untainted (once its value is architecturally ready) carries a
 * value the attacker knowledge base derives exactly. A mismatch or
 * an unexplained untaint is a soundness violation of the untaint
 * algebra. (Untaints through store-to-load forwarding are skipped:
 * the auditor does not model the LSQ's STLPublic reasoning.)
 */

#ifndef SPT_CORE_INFERABILITY_AUDITOR_H
#define SPT_CORE_INFERABILITY_AUDITOR_H

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/spt_engine.h"
#include "uarch/core.h"

namespace spt {

class InferabilityAuditor
{
  public:
    InferabilityAuditor(Core &core, SptEngine &engine);

    /** Runs one audit pass; call after every core.tick(). */
    void tick();

    /** Flushes unresolved audits (call once the core halted). */
    void finalize();

    uint64_t violations() const { return violations_; }
    /** Derived values that did not match the architectural value —
     *  these would indicate an unsound inference rule. */
    uint64_t mismatches() const { return mismatches_; }
    uint64_t windowClosed() const { return window_closed_; }
    uint64_t auditedUntaints() const { return audited_; }
    /** Untaints skipped because they arrived via store-to-load
     *  forwarding (the auditor does not model STLPublic); also
     *  counted in the engine stat "audit.stl_skipped". */
    uint64_t stlSkipped() const { return stl_skipped_; }
    /** Every destination untaint the auditor saw. After finalize():
     *  observed == audited + windowClosed + stlSkipped. */
    uint64_t observedUntaints() const { return observed_; }
    const std::vector<std::string> &violationLog() const
    {
        return log_;
    }

  private:
    Core &core_;
    SptEngine &engine_;

    /** Attacker-known register values (physical registers). */
    std::unordered_map<PhysReg, uint64_t> known_regs_;
    /** Attacker-known memory bytes. */
    std::unordered_map<uint64_t, uint8_t> known_bytes_;
    /** Loads whose untainted output came via forwarding (skipped). */
    std::unordered_set<SeqNum> skip_seq_;
    /** Loads that already took their one shot at deriving from
     *  memory knowledge (byte values are only fresh at access
     *  time; younger stores may overwrite them later). */
    std::unordered_set<SeqNum> load_mem_checked_;
    /** Stores whose effect on memory knowledge was applied. */
    std::unordered_set<SeqNum> stores_processed_;
    /** (seq, slot) pairs already audited. */
    std::unordered_set<uint64_t> audited_slots_;

    /**
     * An untaint awaiting derivation. The attacker's inputs (e.g.,
     * the value of a declassified operand that has not been
     * computed yet) can lag the untaint event by a few cycles, so
     * verdicts are deferred up to a deadline.
     */
    struct Pending {
        SeqNum seq;
        uint64_t pc;
        Instruction si;
        PhysReg reg;
        uint64_t expected; ///< architectural value at untaint time
        uint64_t deadline;
    };
    std::vector<Pending> pending_;

    uint64_t violations_ = 0;
    uint64_t mismatches_ = 0;
    /** Audits whose window closed (the physical register was
     *  re-allocated) before the attacker's inputs arrived — the
     *  same precision loss as a freed RS slot's pending broadcast;
     *  reported separately, not as violations. */
    uint64_t window_closed_ = 0;
    uint64_t audited_ = 0;
    uint64_t stl_skipped_ = 0;
    uint64_t observed_ = 0;
    std::vector<std::string> log_;

    void seedKnowledge();
    bool propagateOnce();
    void learnReg(PhysReg reg, uint64_t value);
    bool knows(PhysReg reg) const;
    uint64_t knownValue(PhysReg reg) const;
    bool knowsBytes(uint64_t addr, unsigned n) const;
    uint64_t knownBytes(uint64_t addr, unsigned n) const;
    void learnBytes(uint64_t addr, unsigned n, uint64_t value);
    void eraseBytes(uint64_t addr, unsigned n);
    void processStores();
    void auditUntaints();
    void resolvePending();
    void flag(uint64_t pc, SeqNum seq, const Instruction &si,
              const std::string &what);
    void dropStaleKnowledge();
};

} // namespace spt

#endif // SPT_CORE_INFERABILITY_AUDITOR_H
