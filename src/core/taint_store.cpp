#include "core/taint_store.h"

#include "common/logging.h"

namespace spt {

namespace {

uint8_t
maskForBytes(unsigned bytes)
{
    return bytes >= 8 ? 0xff
                      : static_cast<uint8_t>((1u << bytes) - 1);
}

} // namespace

// --------------------------------------------------------------------
// ShadowL1
// --------------------------------------------------------------------

ShadowL1::ShadowL1(SetAssocCache &l1d)
    : l1d_(l1d), line_bytes_(l1d.params().line_bytes)
{
    entries_.resize(size_t{l1d.numSets()} * l1d.params().ways);
    for (Entry &e : entries_)
        e.taint.assign(line_bytes_, 1);
    l1d_.setObserver(this);
}

ShadowL1::Entry *
ShadowL1::find(uint64_t addr)
{
    const auto way = l1d_.wayOf(addr);
    if (!way)
        return nullptr;
    Entry &e = entries_[size_t{l1d_.setOf(addr)} *
                            l1d_.params().ways +
                        *way];
    if (!e.valid || e.line_addr != l1d_.lineAddr(addr))
        return nullptr;
    return &e;
}

const ShadowL1::Entry *
ShadowL1::find(uint64_t addr) const
{
    return const_cast<ShadowL1 *>(this)->find(addr);
}

uint8_t
ShadowL1::readTaint(uint64_t addr, unsigned bytes) const
{
    const Entry *e = find(addr);
    if (!e)
        return maskForBytes(bytes); // not resident: tainted
    uint8_t out = 0;
    for (unsigned i = 0; i < bytes && i < 8; ++i) {
        const uint64_t a = addr + i;
        if (l1d_.lineAddr(a) != e->line_addr) {
            // Access straddles into a different line; be
            // conservative for the tail bytes.
            out |= static_cast<uint8_t>(maskForBytes(bytes) &
                                        ~((1u << i) - 1));
            break;
        }
        if (e->taint[a - e->line_addr])
            out |= uint8_t{1} << i;
    }
    return out;
}

void
ShadowL1::writeTaint(uint64_t addr, unsigned bytes,
                     uint8_t byte_taint)
{
    Entry *e = find(addr);
    if (!e)
        return; // line not resident; nothing to track
    for (unsigned i = 0; i < bytes && i < 8; ++i) {
        const uint64_t a = addr + i;
        if (l1d_.lineAddr(a) != e->line_addr)
            break;
        e->taint[a - e->line_addr] = (byte_taint >> i) & 1;
    }
    stats_.inc("shadow_l1.writes");
}

void
ShadowL1::clearTaint(uint64_t addr, unsigned bytes)
{
    writeTaint(addr, bytes, 0);
    stats_.inc("shadow_l1.clears");
}

void
ShadowL1::onFill(uint64_t line_addr, unsigned set, unsigned way)
{
    Entry &e = entries_[size_t{set} * l1d_.params().ways + way];
    e.valid = true;
    e.line_addr = line_addr;
    // A freshly filled line is fully tainted (Section 7.5).
    std::fill(e.taint.begin(), e.taint.end(), 1);
    stats_.inc("shadow_l1.fills");
}

void
ShadowL1::onEvict(uint64_t, unsigned set, unsigned way)
{
    Entry &e = entries_[size_t{set} * l1d_.params().ways + way];
    e.valid = false;
    std::fill(e.taint.begin(), e.taint.end(), 1);
    stats_.inc("shadow_l1.evictions");
}

// --------------------------------------------------------------------
// PackedShadowL1
// --------------------------------------------------------------------

PackedShadowL1::PackedShadowL1(SetAssocCache &l1d)
    : l1d_(l1d), line_bytes_(l1d.params().line_bytes),
      words_per_line_((l1d.params().line_bytes + 63) / 64)
{
    entries_.resize(size_t{l1d.numSets()} * l1d.params().ways);
    // All lines start fully tainted (bit set = tainted).
    taint_.assign(entries_.size() * words_per_line_, ~uint64_t{0});
    l1d_.setObserver(this);
}

PackedShadowL1::Entry *
PackedShadowL1::find(uint64_t addr)
{
    const auto way = l1d_.wayOf(addr);
    if (!way)
        return nullptr;
    Entry &e = entries_[size_t{l1d_.setOf(addr)} *
                            l1d_.params().ways +
                        *way];
    if (!e.valid || e.line_addr != l1d_.lineAddr(addr))
        return nullptr;
    return &e;
}

const PackedShadowL1::Entry *
PackedShadowL1::find(uint64_t addr) const
{
    return const_cast<PackedShadowL1 *>(this)->find(addr);
}

uint8_t
PackedShadowL1::readTaint(uint64_t addr, unsigned bytes) const
{
    const Entry *e = find(addr);
    if (!e)
        return maskForBytes(bytes); // not resident: tainted
    const uint64_t *words = lineWords(*e);
    const uint64_t off = addr - e->line_addr;
    const unsigned n = bytes < 8 ? bytes : 8;
    // Bytes of the access that stay within this line; the tail of a
    // straddling access is conservatively tainted.
    const unsigned in_line =
        off + n <= line_bytes_
            ? n
            : static_cast<unsigned>(line_bytes_ - off);
    const unsigned sh = static_cast<unsigned>(off & 63);
    uint64_t bits = words[off >> 6] >> sh;
    if (sh + in_line > 64)
        bits |= words[(off >> 6) + 1] << (64 - sh);
    uint8_t out = static_cast<uint8_t>(bits &
                                       maskForBytes(in_line));
    if (in_line < n)
        out |= static_cast<uint8_t>(maskForBytes(bytes) &
                                    ~((1u << in_line) - 1));
    return out;
}

void
PackedShadowL1::writeTaint(uint64_t addr, unsigned bytes,
                           uint8_t byte_taint)
{
    Entry *e = find(addr);
    if (!e)
        return; // line not resident; nothing to track
    uint64_t *words = lineWords(*e);
    for (unsigned i = 0; i < bytes && i < 8; ++i) {
        const uint64_t b = addr + i - e->line_addr;
        if (b >= line_bytes_)
            break;
        const uint64_t bit = uint64_t{1} << (b & 63);
        if ((byte_taint >> i) & 1)
            words[b >> 6] |= bit;
        else
            words[b >> 6] &= ~bit;
    }
    stats_.inc("shadow_l1.writes");
}

void
PackedShadowL1::clearTaint(uint64_t addr, unsigned bytes)
{
    writeTaint(addr, bytes, 0);
    stats_.inc("shadow_l1.clears");
}

void
PackedShadowL1::fillLine(unsigned set, unsigned way)
{
    const size_t i = size_t{set} * l1d_.params().ways + way;
    std::fill_n(taint_.begin() +
                    static_cast<std::ptrdiff_t>(i * words_per_line_),
                words_per_line_, ~uint64_t{0});
}

void
PackedShadowL1::onFill(uint64_t line_addr, unsigned set,
                       unsigned way)
{
    Entry &e = entries_[size_t{set} * l1d_.params().ways + way];
    e.valid = true;
    e.line_addr = line_addr;
    // A freshly filled line is fully tainted (Section 7.5).
    fillLine(set, way);
    stats_.inc("shadow_l1.fills");
}

void
PackedShadowL1::onEvict(uint64_t, unsigned set, unsigned way)
{
    Entry &e = entries_[size_t{set} * l1d_.params().ways + way];
    e.valid = false;
    fillLine(set, way);
    stats_.inc("shadow_l1.evictions");
}

// --------------------------------------------------------------------
// ShadowMemory
// --------------------------------------------------------------------

bool
ShadowMemory::untainted(uint64_t addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end())
        return false;
    return it->second[addr % kPageBytes] != 0;
}

void
ShadowMemory::setUntainted(uint64_t addr, bool clear)
{
    auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end()) {
        if (!clear)
            return; // default is tainted
        it = pages_
                 .emplace(addr / kPageBytes,
                          std::vector<uint8_t>(kPageBytes, 0))
                 .first;
    }
    it->second[addr % kPageBytes] = clear ? 1 : 0;
}

uint8_t
ShadowMemory::readTaint(uint64_t addr, unsigned bytes) const
{
    uint8_t out = 0;
    for (unsigned i = 0; i < bytes && i < 8; ++i)
        if (!untainted(addr + i))
            out |= uint8_t{1} << i;
    return out;
}

void
ShadowMemory::writeTaint(uint64_t addr, unsigned bytes,
                         uint8_t byte_taint)
{
    for (unsigned i = 0; i < bytes && i < 8; ++i)
        setUntainted(addr + i, !((byte_taint >> i) & 1));
}

void
ShadowMemory::clearTaint(uint64_t addr, unsigned bytes)
{
    for (unsigned i = 0; i < bytes && i < 8; ++i)
        setUntainted(addr + i, true);
}

// --------------------------------------------------------------------
// PackedShadowMemory
// --------------------------------------------------------------------

bool
PackedShadowMemory::untainted(uint64_t addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end())
        return false;
    const uint64_t b = addr % kPageBytes;
    return (it->second[b >> 6] >> (b & 63)) & 1;
}

void
PackedShadowMemory::setUntainted(uint64_t addr, bool clear)
{
    auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end()) {
        if (!clear)
            return; // default is tainted
        it = pages_
                 .emplace(addr / kPageBytes,
                          std::vector<uint64_t>(kPageBytes / 64, 0))
                 .first;
    }
    const uint64_t b = addr % kPageBytes;
    const uint64_t bit = uint64_t{1} << (b & 63);
    if (clear)
        it->second[b >> 6] |= bit;
    else
        it->second[b >> 6] &= ~bit;
}

uint8_t
PackedShadowMemory::readTaint(uint64_t addr, unsigned bytes) const
{
    uint8_t out = 0;
    for (unsigned i = 0; i < bytes && i < 8; ++i)
        if (!untainted(addr + i))
            out |= uint8_t{1} << i;
    return out;
}

void
PackedShadowMemory::writeTaint(uint64_t addr, unsigned bytes,
                               uint8_t byte_taint)
{
    for (unsigned i = 0; i < bytes && i < 8; ++i)
        setUntainted(addr + i, !((byte_taint >> i) & 1));
}

void
PackedShadowMemory::clearTaint(uint64_t addr, unsigned bytes)
{
    for (unsigned i = 0; i < bytes && i < 8; ++i)
        setUntainted(addr + i, true);
}

} // namespace spt
