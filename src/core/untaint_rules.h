/**
 * @file
 * Instruction-level taint propagation and untaint rules (paper
 * Sections 6.5-6.6), table-driven off the opcode's UntaintClass.
 *
 * Forward taint (rename time / re-evaluated each cycle): bitwise
 * lane operations (AND/OR/XOR/MOV/NOT) propagate taint per access-
 * mode group since byte lanes do not mix; every other ALU op taints
 * the whole output if any input group is tainted. Immediate-class
 * ops (LI, JAL/JALR link values) produce untainted outputs because
 * they are determined by ROB contents alone (Section 6.5).
 *
 * Backward untaint (Section 6.6): register MOV-class ops untaint
 * their single source when the output is untainted; invertible
 * arithmetic (ADD/SUB/XOR and their immediate forms) untaints the
 * remaining tainted input when the output and all other inputs are
 * untainted. Backward rules act at full-register granularity.
 */

#ifndef SPT_CORE_UNTAINT_RULES_H
#define SPT_CORE_UNTAINT_RULES_H

#include "core/taint_mask.h"
#include "isa/opcode.h"

namespace spt {

/** True for ops whose output bytes depend only on the same byte
 *  lanes of the inputs (group-precise taint propagation). */
bool isLaneOp(Opcode op);

/**
 * Forward taint propagation for a non-load instruction with source
 * taints @p a and @p b (@p b ignored for single-source ops). This is
 * both the rename-time taint rule and the per-cycle forward untaint
 * rule — re-evaluating it after a source untaints yields the
 * forward-untainted output.
 */
TaintMask propagateForward(Opcode op, TaintMask a, TaintMask b);

/** Result of applying the backward rule to one instruction. */
struct BackwardUntaint {
    bool untaint_src0 = false;
    bool untaint_src1 = false;
};

/**
 * Backward untaint rule: given the instruction's current source and
 * destination taints, determines which sources become inferable.
 * Only fires when the destination is fully untainted.
 */
BackwardUntaint propagateBackward(Opcode op, TaintMask src0,
                                  TaintMask src1, TaintMask dest);

} // namespace spt

#endif // SPT_CORE_UNTAINT_RULES_H
