/**
 * @file
 * Instruction-level taint propagation and untaint rules (paper
 * Sections 6.5-6.6), table-driven off the opcode's UntaintClass.
 *
 * Forward taint (rename time / re-evaluated each cycle): bitwise
 * lane operations (AND/OR/XOR/MOV/NOT) propagate taint per access-
 * mode group since byte lanes do not mix; every other ALU op taints
 * the whole output if any input group is tainted. Immediate-class
 * ops (LI, JAL/JALR link values) produce untainted outputs because
 * they are determined by ROB contents alone (Section 6.5).
 *
 * Backward untaint (Section 6.6): register MOV-class ops untaint
 * their single source when the output is untainted; invertible
 * arithmetic (ADD/SUB/XOR and their immediate forms) untaints the
 * remaining tainted input when the output and all other inputs are
 * untainted. Backward rules act at full-register granularity.
 *
 * The per-opcode classification is exposed as a pure, queryable
 * table (`untaintRule`) so that every consumer of the algebra — the
 * dynamic `SptEngine` and the static knowledge-propagation pass in
 * `src/analysis` — reads the *same* rule data and cannot drift.
 * `propagateForward`/`propagateBackward` below are thin functions
 * over that table; `tests/test_rule_tables.cpp` pins the table,
 * the opcode traits, and both consumers against each other.
 */

#ifndef SPT_CORE_UNTAINT_RULES_H
#define SPT_CORE_UNTAINT_RULES_H

#include "core/taint_mask.h"
#include "isa/opcode.h"

namespace spt {

/**
 * Pure classification of one opcode under the untaint algebra.
 * Derived once from the opcode traits table; contains no state and
 * performs no side effects — safe to consult from static analysis.
 */
struct UntaintRule {
    UntaintClass cls = UntaintClass::kOpaque;
    uint8_t num_srcs = 0;
    /** Output bytes depend only on the same byte lanes of the
     *  inputs: forward propagation keeps per-group precision. */
    bool lane_op = false;
    /** Output is determined by ROB contents alone (Section 6.5):
     *  always untainted / statically known. */
    bool output_public = false;
    /** Backward rule: dest untainted => the single source is
     *  inferable (MOV class, and invertible ops whose second
     *  operand is a public immediate). */
    bool invert_single = false;
    /** Backward rule: dest + one source untainted => the other
     *  source is inferable (two-source invertible arithmetic). */
    bool invert_pair = false;
};

/** Rule-table lookup; aborts on out-of-range opcode. */
const UntaintRule &untaintRule(Opcode op);

/** True for ops whose output bytes depend only on the same byte
 *  lanes of the inputs (group-precise taint propagation). */
bool isLaneOp(Opcode op);

/**
 * Forward taint propagation for a non-load instruction with source
 * taints @p a and @p b (@p b ignored for single-source ops). This is
 * both the rename-time taint rule and the per-cycle forward untaint
 * rule — re-evaluating it after a source untaints yields the
 * forward-untainted output.
 */
TaintMask propagateForward(Opcode op, TaintMask a, TaintMask b);

/** Result of applying the backward rule to one instruction. */
struct BackwardUntaint {
    bool untaint_src0 = false;
    bool untaint_src1 = false;
};

/**
 * Backward untaint rule: given the instruction's current source and
 * destination taints, determines which sources become inferable.
 * Only fires when the destination is fully untainted.
 */
BackwardUntaint propagateBackward(Opcode op, TaintMask src0,
                                  TaintMask src1, TaintMask dest);

} // namespace spt

#endif // SPT_CORE_UNTAINT_RULES_H
