/**
 * @file
 * Speculative Privacy Tracking (paper Sections 6-7): the hardware
 * protection scheme this repository reproduces.
 *
 * State (mirroring the paper's distributed taint storage):
 *  - a master per-physical-register taint mask (the RAT taint bits;
 *    rename reads it),
 *  - per in-flight instruction local taint copies of its source and
 *    destination registers with untaint-broadcast flags (the RS/LSQ
 *    slot taint bits of Section 7.2), held in a ring buffer indexed
 *    parallel to the ROB,
 *  - a byte-granularity data taint store (shadow L1 / shadow memory
 *    / none, Section 7.5).
 *
 * Per cycle (Section 7.3), the engine:
 *  1. declassifies the leaked operands of transmitters/branches that
 *     reached the visibility point,
 *  2. applies the forward/backward untaint rules locally at every
 *     in-flight instruction,
 *  3. propagates untaint through store-to-load forwarding pairs
 *     guarded by the STLPublic condition (Section 6.7),
 *  4. broadcasts at most `broadcast_width` newly untainted registers
 *     (destinations before sources, older instructions before
 *     younger ones), updating the master copy and all other slots.
 *
 * The protection policy is delayed execution: loads/stores whose
 * address operand is tainted may not access memory until the operand
 * untaints or the instruction reaches the VP, and branch-resolution
 * effects are deferred while the predicate is tainted.
 *
 * Implementation notes (this file models the paper's *hardware*
 * structures rather than scanning the ROB every cycle):
 *  - Taint records live in `entries_`, a power-of-two ring buffer
 *    allocated in ROB order: a slot is claimed at rename (`tail_`),
 *    freed at retire (`head_`) or squash (`tail_`, reverse order).
 *    `DynInst::taint_idx` makes every per-instruction lookup O(1).
 *  - The phases are change-driven. `local_queue_` holds the
 *    instructions whose input masks changed since their last local
 *    rule evaluation (the rules are pure functions of an
 *    instruction's own masks, so re-evaluating an unchanged
 *    instruction is a no-op — visiting only changed ones is
 *    behavior-preserving). `pending_flags_` is an ordered set of
 *    raised untaint-broadcast flags keyed so that iteration order
 *    equals the paper's arbitration order; the broadcast phase
 *    drains it instead of rescanning the ROB. `vp_cursor_` tracks
 *    the ROB prefix already declassified (at_vp spreads as a
 *    contiguous, monotone prefix), so declassification visits each
 *    instruction exactly once.
 */

#ifndef SPT_CORE_SPT_ENGINE_H
#define SPT_CORE_SPT_ENGINE_H

#include <memory>
#include <vector>

#include "core/taint_mask.h"
#include "core/taint_planes.h"
#include "core/taint_store.h"
#include "uarch/security_engine.h"
#include "uarch/types.h"

namespace spt {

class KnowledgeMap;

struct SptConfig {
    UntaintMethod method = UntaintMethod::kBackward;
    ShadowKind shadow = ShadowKind::kShadowL1;
    unsigned broadcast_width = 3;
    /** Data taint-store implementation. kBitplane packs per-byte
     *  taint into uint64 words (the PR-6 throughput repack);
     *  kLegacy keeps the byte-vector stores. Behaviorally
     *  equivalent — pinned by the storage-equivalence tests — so
     *  this knob exists to keep the legacy stores testable against
     *  the packed ones. */
    enum class Storage : uint8_t {
        kBitplane,
        kLegacy,
    };
    Storage storage = Storage::kBitplane;
    /** Deliberately seeded policy bugs, used only to prove the
     *  runtime InvariantChecker fires (tools/spt_chaos --mutate).
     *  Mutations weaken a policy *gate*; the ground-truth claim
     *  (transmitPublic) is never mutated, which is exactly what
     *  makes the discrepancy detectable. */
    enum class Mutation : uint8_t {
        kNone,
        /** mayAccessMemory lies: a load/store with a tainted
         *  address operand is allowed to access memory. */
        kLeakyMemGate,
    };
    Mutation mutation = Mutation::kNone;
    /** Static knowledge map (the Declassiflow bridge, DESIGN.md
     *  §13). Non-owning; the artifact must outlive the engine and
     *  is validated against the program by the Simulator. When set,
     *  an operand joins untainted at rename — and in-flight readers
     *  are precleared the cycle their justifier fires — iff BOTH
     *  (a) the map proves the operand's architectural register
     *  kRobust-known at the reader's pc, and (b) the value's
     *  physical register is *armed*: the engine itself has already
     *  VP-declassified that very value. (b) is what makes the
     *  relaxation sound on transient wrong paths: a static fact
     *  alone says the value *would* become public on every
     *  architectural continuation, not that it already did on the
     *  path actually executed. */
    const KnowledgeMap *knowledge_map = nullptr;
};

class SptEngine : public SecurityEngine
{
  public:
    /** Reasons a register untaint event happened (Figure 8's
     *  breakdown categories). */
    enum class UntaintReason : uint8_t {
        kVpDeclassify, ///< transmitter/branch operand at VP
        kForward,
        kBackward,
        kShadowData,   ///< load read untainted memory data
        kStlForward,   ///< across store-to-load forwarding
        kMapPreclear,  ///< knowledge map + armed value (§13)
    };

    explicit SptEngine(const SptConfig &config);

    void attach(Core &core) override;
    const char *name() const override { return "spt"; }

    void onRename(DynInst &d) override;
    void onSquash(const DynInst &d) override;
    void onRetire(const DynInst &d) override;
    void onLoadData(DynInst &d, bool forwarded,
                    SeqNum store_seq) override;
    void onStoreCommit(const DynInst &d) override;

    bool mayAccessMemory(const DynInst &d) const override;
    bool mayResolveBranch(const DynInst &d) const override;
    bool maySquashMemViolation(const DynInst &d) const override;
    bool stlForwardingPublic(const DynInst &load,
                             const DynInst &store) const override;

    bool transmitPublic(const DynInst &d,
                        DelayKind kind) const override;
    bool taintStateConsistent(const DynInst &d) const override;

    void tick() override;

    // --- observability ------------------------------------------------
    DelayCause delayCause(const DynInst &d,
                          DelayKind kind) const override;
    uint64_t broadcastQueueOccupancy() const override
    {
        return pending_flags_.size();
    }
    bool quiescent() const override;
    bool fastForwardSafe() const override
    {
        // The chaos-mode gate mutations make policy queries
        // stat-mutating and gate != claim; fast-forward models the
        // un-mutated policy only.
        return cfg_.mutation == SptConfig::Mutation::kNone;
    }
    void accrueBlockedTransmit(const DynInst &d, DelayKind kind,
                               uint64_t cycles) override;
    uint64_t taintedRegCount() const override;

    // --- inspection (tests/benches) -----------------------------------
    TaintMask masterTaint(PhysReg reg) const;
    /** Local taint state of an in-flight instruction, or nullptr. */
    struct InstTaint {
        TaintMask src[2] = {TaintMask::none(), TaintMask::none()};
        bool src_flag[2] = {false, false};
        TaintMask dest = TaintMask::none();
        bool dest_flag = false;
        bool declassified = false;
        bool load_data_seen = false;
        bool shadow_cleared = false;
        /** Destination untainted via store-to-load forwarding
         *  (Section 6.7). Consumers that re-derive untaint events —
         *  the InferabilityAuditor — cannot model the LSQ's
         *  STLPublic reasoning and use this to account for the
         *  skip explicitly. */
        bool stl_untaint = false;
    };
    const InstTaint *instTaint(SeqNum seq) const;
    const SptConfig &config() const { return cfg_; }
    DataTaintStore &taintStore() { return *taint_store_; }
    /** True iff the value in @p reg has been VP-declassified (the
     *  knowledge-map preclear precondition; see SptConfig). */
    bool valueArmed(PhysReg reg) const
    {
        return reg != kNoPhysReg && armed_[reg] != 0;
    }

    /** Test hook: apply an untaint broadcast for @p reg as if the
     *  broadcast phase had selected it this cycle. */
    void injectBroadcast(PhysReg reg, TaintMask mask)
    {
        applyBroadcast(reg, mask);
    }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    /** One taint-storage slot, ring-buffer-parallel to a ROB slot. */
    struct Entry {
        InstTaint it;
        SeqNum seq = 0;
        /** Owning instruction; stable while `live` (freed before the
         *  core drops its DynInstPtr at retire/squash). */
        const DynInst *inst = nullptr;
        bool live = false;
        bool in_local_queue = false;    ///< queued for local rules
        bool stl_candidate = false;     ///< forwarded load (STL phase)
        bool shadow_candidate = false;  ///< may clear shadow taint
    };

    /** A work-list reference; stale once the slot is recycled. */
    struct EntryRef {
        uint32_t idx;
        SeqNum seq;
    };
    struct RegSlotRef {
        uint32_t idx;
        SeqNum seq;
        uint8_t slot;
    };

    SptConfig cfg_;
    /** Master per-physical-register taint, one bitplane per
     *  partial-access group (word-parallel taintedRegCount). */
    TaintPlanes master_;
    std::unique_ptr<DataTaintStore> taint_store_;

    // Ring buffer of taint records, ROB-parallel. Logical positions
    // grow monotonically; position -> slot via `& idx_mask_`.
    // Invariant: head_ <= vp_cursor_ <= tail_; every position in
    // [head_, tail_) holds a live entry, in increasing seq order.
    std::vector<Entry> entries_;
    uint64_t idx_mask_ = 0;
    uint64_t head_ = 0;
    uint64_t tail_ = 0;
    /** Positions below this are declassified (at_vp prefix). */
    uint64_t vp_cursor_ = 0;

    /** Instructions whose local-rule inputs changed since their last
     *  evaluation (drained by localRulesPhase). */
    std::vector<EntryRef> local_queue_;

    /** Raised untaint-broadcast flags as a circular bitmap parallel
     *  to the ring (4 bits per slot). Scanning from head_ yields
     *  the broadcast arbitration order — older instruction first,
     *  destination (slot 0) before sources (Section 7.3) — since
     *  ring order is seq order. */
    RingFlagBitmap pending_flags_;

    /** Per physical register: the in-flight slots naming it (built
     *  at rename, compacted lazily), so a broadcast touches only the
     *  consumers of that register instead of the whole ROB. */
    std::vector<std::vector<RegSlotRef>> reg_slots_;

    /** Ring slots with stl_candidate / shadow_candidate set; the
     *  candidate phases iterate set bits in ring (= seq) order with
     *  word-level skips instead of walking the core's LSQ. */
    RingBitmap stl_candidates_;
    RingBitmap shadow_candidates_;

    // Scratch for the per-cycle broadcast phase.
    struct Broadcast {
        PhysReg reg;
        TaintMask mask;
    };

    /** Registers whose master taint shrank this cycle (Figure 9). */
    unsigned untainted_regs_this_cycle_ = 0;

    /** Per physical register: 1 iff the value currently bound to it
     *  has been VP-declassified (declassifyPhase read it as a
     *  leaked operand of an at_vp transmitter). Cleared when the
     *  register is reallocated at rename. Only consulted when a
     *  knowledge map is installed. */
    std::vector<uint8_t> armed_;

    Entry &entryAt(uint64_t pos) { return entries_[pos & idx_mask_]; }
    Entry *entryOf(const DynInst &d);
    const Entry *entryOf(const DynInst &d) const;
    Entry *entryBySeq(SeqNum seq);
    const Entry *entryBySeq(SeqNum seq) const;

    void markLocalDirty(Entry &e);
    void raiseFlag(Entry &e, int slot);
    void clearFlag(Entry &e, int slot);
    void freeEntry(Entry &e);
    void registerRegSlots(const DynInst &d, uint32_t idx);

    void countUntaint(UntaintReason reason, const Entry &e, int slot);
    /** Would broadcasting any currently pending untaint flag shrink
     *  the taint of @p reg? Distinguishes "operand still tainted"
     *  from "untaint known, waiting on broadcast width". */
    bool untaintPendingFor(PhysReg reg) const;
    /** Marks @p reg's current value VP-declassified and, on the
     *  arming transition, pre-declassifies the source slots of live
     *  in-flight readers whose pc the knowledge map covers
     *  (bypassing broadcast-width arbitration; sound because an
     *  armed value is public). Only called with a map installed. */
    void armAndPreclear(PhysReg reg);
    void declassifyPhase();
    bool localRulesPhase();
    bool evalLocalRules(Entry &e);
    bool stlPhase();
    void shadowClearPhase();
    void broadcastPhase();
    void idealPropagate();
    void applyBroadcast(PhysReg reg, TaintMask mask);
    void flushFlagsToMaster(const DynInst &d);

    bool addrOperandPublic(const DynInst &d) const;
    bool operandsPublic(const DynInst &d) const;
    /** The memory-order-squash claim (Section 6.7, footnote 4);
     *  shared by maySquashMemViolation and transmitPublic. */
    bool memSquashPublic(const DynInst &load) const;
    /** STLPublic(S, L) of Section 6.7. */
    bool stlPublic(const DynInst &load, const DynInst &store) const;
    bool storeAddrPublic(const DynInst &store) const;

    PhysReg slotReg(const DynInst &d, int slot) const;
    TaintMask &slotMask(InstTaint &it, int slot) const;
    bool &slotFlag(InstTaint &it, int slot) const;
};

} // namespace spt

#endif // SPT_CORE_SPT_ENGINE_H
