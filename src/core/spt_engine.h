/**
 * @file
 * Speculative Privacy Tracking (paper Sections 6-7): the hardware
 * protection scheme this repository reproduces.
 *
 * State (mirroring the paper's distributed taint storage):
 *  - a master per-physical-register taint mask (the RAT taint bits;
 *    rename reads it),
 *  - per in-flight instruction local taint copies of its source and
 *    destination registers with untaint-broadcast flags (the RS/LSQ
 *    slot taint bits of Section 7.2),
 *  - a byte-granularity data taint store (shadow L1 / shadow memory
 *    / none, Section 7.5).
 *
 * Per cycle (Section 7.3), the engine:
 *  1. declassifies the leaked operands of transmitters/branches that
 *     reached the visibility point,
 *  2. applies the forward/backward untaint rules locally at every
 *     in-flight instruction,
 *  3. propagates untaint through store-to-load forwarding pairs
 *     guarded by the STLPublic condition (Section 6.7),
 *  4. broadcasts at most `broadcast_width` newly untainted registers
 *     (destinations before sources, older instructions before
 *     younger ones), updating the master copy and all other slots.
 *
 * The protection policy is delayed execution: loads/stores whose
 * address operand is tainted may not access memory until the operand
 * untaints or the instruction reaches the VP, and branch-resolution
 * effects are deferred while the predicate is tainted.
 */

#ifndef SPT_CORE_SPT_ENGINE_H
#define SPT_CORE_SPT_ENGINE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/taint_mask.h"
#include "core/taint_store.h"
#include "uarch/security_engine.h"
#include "uarch/types.h"

namespace spt {

struct SptConfig {
    UntaintMethod method = UntaintMethod::kBackward;
    ShadowKind shadow = ShadowKind::kShadowL1;
    unsigned broadcast_width = 3;
};

class SptEngine : public SecurityEngine
{
  public:
    /** Reasons a register untaint event happened (Figure 8's
     *  breakdown categories). */
    enum class UntaintReason : uint8_t {
        kVpDeclassify, ///< transmitter/branch operand at VP
        kForward,
        kBackward,
        kShadowData,   ///< load read untainted memory data
        kStlForward,   ///< across store-to-load forwarding
    };

    explicit SptEngine(const SptConfig &config);

    void attach(Core &core) override;
    const char *name() const override { return "spt"; }

    void onRename(DynInst &d) override;
    void onSquash(const DynInst &d) override;
    void onRetire(const DynInst &d) override;
    void onLoadData(DynInst &d, bool forwarded,
                    SeqNum store_seq) override;
    void onStoreCommit(const DynInst &d) override;

    bool mayAccessMemory(const DynInst &d) const override;
    bool mayResolveBranch(const DynInst &d) const override;
    bool maySquashMemViolation(const DynInst &d) const override;
    bool stlForwardingPublic(const DynInst &load,
                             const DynInst &store) const override;

    void tick() override;

    // --- inspection (tests/benches) -----------------------------------
    TaintMask masterTaint(PhysReg reg) const;
    /** Local taint state of an in-flight instruction, or nullptr. */
    struct InstTaint {
        TaintMask src[2] = {TaintMask::none(), TaintMask::none()};
        bool src_flag[2] = {false, false};
        TaintMask dest = TaintMask::none();
        bool dest_flag = false;
        bool declassified = false;
        bool load_data_seen = false;
        bool shadow_cleared = false;
    };
    const InstTaint *instTaint(SeqNum seq) const;
    const SptConfig &config() const { return cfg_; }
    DataTaintStore &taintStore() { return *taint_store_; }

  private:
    SptConfig cfg_;
    std::unordered_map<SeqNum, InstTaint> tab_;
    std::vector<TaintMask> master_;
    std::unique_ptr<DataTaintStore> taint_store_;

    // Scratch for the per-cycle broadcast phase.
    struct Broadcast {
        PhysReg reg;
        TaintMask mask;
    };

    /** Registers whose master taint shrank this cycle (Figure 9). */
    unsigned untainted_regs_this_cycle_ = 0;

    void countUntaint(UntaintReason reason);
    void declassifyPhase();
    bool localRulesPhase();
    bool stlPhase();
    void shadowClearPhase();
    void broadcastPhase();
    void idealPropagate();
    void applyBroadcast(PhysReg reg, TaintMask mask);
    void flushFlagsToMaster(const DynInst &d);

    bool addrOperandPublic(const DynInst &d) const;
    bool operandsPublic(const DynInst &d) const;
    /** STLPublic(S, L) of Section 6.7. */
    bool stlPublic(const DynInst &load, const DynInst &store) const;
    bool storeAddrPublic(const DynInst &store) const;

    PhysReg slotReg(const DynInst &d, int slot) const;
    TaintMask &slotMask(InstTaint &it, int slot) const;
    bool &slotFlag(InstTaint &it, int slot) const;
};

} // namespace spt

#endif // SPT_CORE_SPT_ENGINE_H
