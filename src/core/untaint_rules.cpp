#include "core/untaint_rules.h"

#include <array>

#include "common/logging.h"

namespace spt {

namespace {

bool
opcodeIsLaneOp(Opcode op)
{
    switch (op) {
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
      case Opcode::kMov:
      case Opcode::kNot:
        return true;
      default:
        return false;
    }
}

UntaintRule
deriveRule(Opcode op)
{
    const OpTraits &t = opTraits(op);
    UntaintRule r;
    r.cls = t.untaint_class;
    r.num_srcs = t.num_srcs;
    r.lane_op = opcodeIsLaneOp(op);
    r.output_public = t.untaint_class == UntaintClass::kImmediate;
    // MOV/NOT/NEG are bijections of their single source; invertible
    // ops with one register source carry a public immediate as the
    // other operand (ADDI/XORI), so dest alone determines the source.
    r.invert_single =
        t.untaint_class == UntaintClass::kCopy ||
        (t.untaint_class == UntaintClass::kInvertible &&
         t.num_srcs == 1);
    r.invert_pair = t.untaint_class == UntaintClass::kInvertible &&
                    t.num_srcs == 2;
    return r;
}

using RuleTable =
    std::array<UntaintRule, static_cast<size_t>(Opcode::kNumOpcodes)>;

const RuleTable &
ruleTable()
{
    static const RuleTable table = [] {
        RuleTable t;
        for (size_t i = 0;
             i < static_cast<size_t>(Opcode::kNumOpcodes); ++i)
            t[i] = deriveRule(static_cast<Opcode>(i));
        return t;
    }();
    return table;
}

} // namespace

const UntaintRule &
untaintRule(Opcode op)
{
    const auto idx = static_cast<size_t>(op);
    SPT_ASSERT(idx < static_cast<size_t>(Opcode::kNumOpcodes),
               "untaintRule: bad opcode " << idx);
    return ruleTable()[idx];
}

bool
isLaneOp(Opcode op)
{
    return untaintRule(op).lane_op;
}

TaintMask
propagateForward(Opcode op, TaintMask a, TaintMask b)
{
    const UntaintRule &r = untaintRule(op);
    if (r.output_public)
        return TaintMask::none();
    TaintMask combined = TaintMask::none();
    if (r.num_srcs >= 1)
        combined |= a;
    if (r.num_srcs >= 2)
        combined |= b;
    if (combined.nothing())
        return TaintMask::none();
    // Lane-preserving bitwise ops keep per-group precision; all
    // other operations mix bits across groups.
    return r.lane_op ? combined : TaintMask::all();
}

BackwardUntaint
propagateBackward(Opcode op, TaintMask src0, TaintMask src1,
                  TaintMask dest)
{
    BackwardUntaint out;
    if (dest.any())
        return out; // output not (fully) declassified
    const UntaintRule &r = untaintRule(op);
    if (r.invert_single) {
        out.untaint_src0 = src0.any();
    } else if (r.invert_pair) {
        // ADD/SUB/XOR: output plus one input determines the other.
        if (src0.nothing() && src1.any())
            out.untaint_src1 = true;
        else if (src1.nothing() && src0.any())
            out.untaint_src0 = true;
    }
    return out;
}

} // namespace spt
