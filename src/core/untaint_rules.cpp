#include "core/untaint_rules.h"

namespace spt {

bool
isLaneOp(Opcode op)
{
    switch (op) {
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
      case Opcode::kMov:
      case Opcode::kNot:
        return true;
      default:
        return false;
    }
}

TaintMask
propagateForward(Opcode op, TaintMask a, TaintMask b)
{
    const OpTraits &t = opTraits(op);
    if (t.untaint_class == UntaintClass::kImmediate)
        return TaintMask::none();
    TaintMask combined = TaintMask::none();
    if (t.num_srcs >= 1)
        combined |= a;
    if (t.num_srcs >= 2)
        combined |= b;
    if (combined.nothing())
        return TaintMask::none();
    // Lane-preserving bitwise ops keep per-group precision; all
    // other operations mix bits across groups.
    return isLaneOp(op) ? combined : TaintMask::all();
}

BackwardUntaint
propagateBackward(Opcode op, TaintMask src0, TaintMask src1,
                  TaintMask dest)
{
    BackwardUntaint r;
    if (dest.any())
        return r; // output not (fully) declassified
    const OpTraits &t = opTraits(op);
    switch (t.untaint_class) {
      case UntaintClass::kCopy:
        // MOV/NOT/NEG: the input is a bijection of the output.
        r.untaint_src0 = src0.any();
        break;
      case UntaintClass::kInvertible:
        if (t.num_srcs == 1) {
            // ADDI/XORI: the immediate is public program text.
            r.untaint_src0 = src0.any();
        } else {
            // ADD/SUB/XOR: output plus one input determines the
            // other input.
            if (src0.nothing() && src1.any())
                r.untaint_src1 = true;
            else if (src1.nothing() && src0.any())
                r.untaint_src0 = true;
        }
        break;
      case UntaintClass::kOpaque:
      case UntaintClass::kImmediate:
        break;
    }
    return r;
}

} // namespace spt
