/**
 * @file
 * Serialized static-knowledge artifact: the Declassiflow bridge
 * between the static knowledge-propagation pass (src/analysis) and
 * the dynamic SPT engine (DESIGN.md §13).
 *
 * A `KnowledgeMap` records, per program counter, the set of
 * architectural registers whose values are kRobust-known at that
 * point — facts whose justifying declassifications are all
 * program-order-older visibility-point events, the only knowledge
 * tier strong enough to assert against the dynamic engine. The map
 * is produced by `spt_lint --emit-knowledge-map` (the emitter lives
 * in src/analysis/knowledge_map.h; this header deliberately has no
 * analysis dependency so the engine/sim layers can consume maps
 * without linking the analysis library).
 *
 * Stale-map rejection: the binary header carries a content
 * fingerprint of the program (instruction stream, entry, data
 * segments, secret ranges) plus the analysis configuration (VP
 * model, CFG edge-policy version, analysis version). `validateFor`
 * refuses a map built over different code or under an incompatible
 * configuration — a silently stale map would turn the soundness
 * argument into wishful thinking.
 */

#ifndef SPT_CORE_KNOWLEDGE_MAP_H
#define SPT_CORE_KNOWLEDGE_MAP_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spt {

class Program;
enum class AttackModel : uint8_t;

/** Which visibility-point model the map's facts were derived for.
 *  The knowledge analysis only uses declassifications that are valid
 *  under *both* VP models (transmitter operands at the VP), so the
 *  emitter stamps kAny by default; a narrower stamp restricts the
 *  runs that will accept the map. */
enum class KnowledgeVpModel : uint8_t {
    kSpectre = 0,
    kFuturistic = 1,
    kAny = 2,
};

const char *toString(KnowledgeVpModel m);

/** Version of the CFG edge policy (analysis/cfg.h file comment) the
 *  facts depend on; bump when the over-approximation changes. */
constexpr uint8_t kKnowledgeEdgePolicyVersion = 1;
/** Version of the knowledge analysis itself (lattice, rules). */
constexpr uint8_t kKnowledgeAnalysisVersion = 1;

class KnowledgeMap
{
  public:
    KnowledgeMap() = default;
    /** @param robust_regs per-pc bitmask over architectural
     *  registers (bit r set = reg r kRobust-known just before the
     *  instruction at that pc executes). */
    KnowledgeMap(uint64_t program_fingerprint,
                 KnowledgeVpModel vp_model,
                 std::vector<uint32_t> robust_regs);

    /** Robust-known architectural registers at @p pc (bit r = arch
     *  reg r); 0 for out-of-range pcs. */
    uint32_t
    robustRegsAt(uint64_t pc) const
    {
        return pc < robust_regs_.size() ? robust_regs_[pc] : 0;
    }

    uint64_t size() const { return robust_regs_.size(); }
    uint64_t programFingerprint() const { return fingerprint_; }
    KnowledgeVpModel vpModel() const { return vp_model_; }
    uint8_t edgePolicyVersion() const { return edge_policy_; }
    uint8_t analysisVersion() const { return analysis_version_; }

    /** Number of pcs with at least one robust operand fact. */
    uint64_t coveredPcs() const;
    /** Total robust register facts (popcount over all pcs). */
    uint64_t totalFacts() const;

    /** FNV-1a over the header and every per-pc mask; stamped into
     *  checkpoints so a restore under a different map is refused. */
    uint64_t contentHash() const;

    /** SPT_FATAL unless the map was built over @p program and its
     *  VP-model stamp covers @p model (kAny covers both). */
    void validateFor(const Program &program,
                     AttackModel model) const;

    // --- serialization ------------------------------------------------
    void save(std::ostream &os) const;
    static KnowledgeMap load(std::istream &is); ///< SPT_FATAL on junk
    void saveToFile(const std::string &path) const;
    static KnowledgeMap loadFromFile(const std::string &path);

    /** Human-readable dump (deterministic, byte-stable): header
     *  fields plus one entry per covered pc naming the robust
     *  registers. @p program, when non-null, adds disassembly. */
    std::string toJson(const Program *program = nullptr) const;

    /** Content fingerprint binding a map to a program: FNV-1a over
     *  the instruction stream (all fields), entry pc, data segments
     *  (addresses and bytes), and secret ranges. Deliberately
     *  stronger than the checkpoint fingerprint (sim/snapshot.cpp),
     *  which only compares shapes: a stale map over same-shaped
     *  different code must be rejected. */
    static uint64_t fingerprintOf(const Program &program);

    bool operator==(const KnowledgeMap &) const = default;

  private:
    uint64_t fingerprint_ = 0;
    KnowledgeVpModel vp_model_ = KnowledgeVpModel::kAny;
    uint8_t edge_policy_ = kKnowledgeEdgePolicyVersion;
    uint8_t analysis_version_ = kKnowledgeAnalysisVersion;
    std::vector<uint32_t> robust_regs_;
};

} // namespace spt

#endif // SPT_CORE_KNOWLEDGE_MAP_H
