/**
 * @file
 * The gate-level untaint algebra of paper Section 5: value-aware
 * forward information-flow rules (GLIFT) and the novel backward
 * rules that infer gate inputs from a declassified output, plus a
 * small gate-graph evaluator that propagates declassification
 * through compositions of operators (Section 5.3).
 *
 * This is the conceptual foundation the instruction-level rules of
 * Section 6.6 are derived from; it is exercised directly by the
 * property-test suite (exhaustive over all value/taint combinations)
 * and by the quickstart example.
 */

#ifndef SPT_CORE_UNTAINT_ALGEBRA_H
#define SPT_CORE_UNTAINT_ALGEBRA_H

#include <cstdint>
#include <string>
#include <vector>

namespace spt {

/** A 1-bit wire carrying a value and a taint status. */
struct Wire {
    bool value = false;
    bool tainted = false;
};

enum class GateOp : uint8_t { kAnd, kOr, kXor, kNot, kBuf };

/** Boolean function of a gate. */
bool gateEval(GateOp op, bool a, bool b);

/**
 * Value-aware forward taint rule (GLIFT, Section 5.1): computes the
 * output wire of a gate. The output is untainted when it is
 * determined by untainted inputs alone (e.g., AND with an untainted
 * 0 input).
 */
Wire gateForward(GateOp op, Wire a, Wire b);

/** Which inputs a backward step can untaint. */
struct BackwardResult {
    bool untaint_a = false;
    bool untaint_b = false;
};

/**
 * Backward untaint rule (Section 5.2): given that the gate's output
 * has been declassified (untainted, value @p out_value), determines
 * which tainted inputs become inferable from the output value, the
 * gate semantics, and any untainted input values.
 *
 * Examples (AND): out=1 => both inputs are 1; out=0 with an
 * untainted a=1 => b must be 0.
 */
BackwardResult gateBackward(GateOp op, Wire a, Wire b,
                            bool out_value);

/**
 * A tiny combinational dataflow graph for demonstrating and testing
 * compositional declassification (Section 5.3, Figure 3). Wires are
 * single bits; gates read one or two wires and drive one wire.
 */
class GateGraph
{
  public:
    /** Adds a primary input; returns its wire id. */
    int addInput(bool value, bool tainted);

    /** Adds a gate driven by wires @p a and @p b (b ignored for
     *  NOT/BUF); returns the output wire id. Values are computed
     *  immediately; the output taint follows the forward rule. */
    int addGate(GateOp op, int a, int b = -1);

    /** Declassifies a wire: marks it untainted (its value becomes
     *  public knowledge). */
    void declassify(int wire);

    /**
     * Propagates untaint forward and backward through the graph to a
     * fixpoint, per Sections 5.1-5.3. Returns the number of wires
     * untainted by the propagation.
     */
    unsigned propagate();

    bool tainted(int wire) const;
    bool value(int wire) const;
    size_t numWires() const { return wires_.size(); }

  private:
    struct Gate {
        GateOp op;
        int a;
        int b;
        int out;
    };

    std::vector<Wire> wires_;
    std::vector<Gate> gates_;

    void checkWire(int wire) const;
};

} // namespace spt

#endif // SPT_CORE_UNTAINT_ALGEBRA_H
