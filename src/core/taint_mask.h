/**
 * @file
 * Partial-access-mode register taint status (paper Section 7.2).
 *
 * A 64-bit register carries four taint bits covering the x86-style
 * partial access modes: bits [7:0], [15:8], [31:16], and [63:32].
 * A register is (fully) untainted when all four groups are clear;
 * SPT's backward rules operate at full-register granularity, while
 * loads/stores and bitwise lane operations can untaint individual
 * groups.
 */

#ifndef SPT_CORE_TAINT_MASK_H
#define SPT_CORE_TAINT_MASK_H

#include <cstdint>

#include "common/logging.h"

namespace spt {

class TaintMask
{
  public:
    static constexpr unsigned kNumGroups = 4;

    constexpr TaintMask() = default;

    static constexpr TaintMask none() { return TaintMask{0}; }
    static constexpr TaintMask all() { return TaintMask{0xf}; }
    /** Rebuilds a mask from raw() group bits (bitplane gather and
     *  snapshot restore). */
    static constexpr TaintMask
    fromRaw(uint8_t bits)
    {
        return TaintMask{static_cast<uint8_t>(bits & 0xf)};
    }

    constexpr bool any() const { return bits_ != 0; }
    constexpr bool nothing() const { return bits_ == 0; }
    constexpr bool full() const { return bits_ == 0xf; }

    constexpr bool group(unsigned g) const
    {
        return (bits_ >> g) & 1;
    }

    constexpr uint8_t raw() const { return bits_; }

    constexpr TaintMask operator|(TaintMask o) const
    {
        return TaintMask{static_cast<uint8_t>(bits_ | o.bits_)};
    }
    constexpr TaintMask operator&(TaintMask o) const
    {
        return TaintMask{static_cast<uint8_t>(bits_ & o.bits_)};
    }
    TaintMask &operator|=(TaintMask o)
    {
        bits_ |= o.bits_;
        return *this;
    }
    TaintMask &operator&=(TaintMask o)
    {
        bits_ &= o.bits_;
        return *this;
    }
    constexpr bool operator==(const TaintMask &) const = default;

    /** True iff this mask taints a subset of @p o's groups. */
    constexpr bool subsetOf(TaintMask o) const
    {
        return (bits_ & ~o.bits_) == 0;
    }

    /** Group index covering byte @p b (0-7) of the register. */
    static constexpr unsigned
    groupOfByte(unsigned b)
    {
        if (b == 0)
            return 0;
        if (b == 1)
            return 1;
        if (b <= 3)
            return 2;
        return 3;
    }

    /** Builds a register mask from an 8-bit per-byte taint mask
     *  (bit i = byte i tainted): a group is tainted if any byte it
     *  covers is tainted (the conservative OR of Section 7.5). */
    static constexpr TaintMask
    fromByteMask(uint8_t byte_mask)
    {
        uint8_t bits = 0;
        for (unsigned b = 0; b < 8; ++b)
            if ((byte_mask >> b) & 1)
                bits |= uint8_t{1} << groupOfByte(b);
        return TaintMask{bits};
    }

    /** Expands the group mask to an 8-bit per-byte taint mask. */
    constexpr uint8_t
    toByteMask() const
    {
        uint8_t byte_mask = 0;
        for (unsigned b = 0; b < 8; ++b)
            if (group(groupOfByte(b)))
                byte_mask |= uint8_t{1} << b;
        return byte_mask;
    }

    /**
     * Register taint of a load destination: @p loaded_byte_taint has
     * bit i set if loaded byte i (i < bytes) is tainted. Zero-
     * extension produces untainted (known-zero) upper bytes;
     * sign-extension replicates the top loaded byte's taint upward.
     */
    // Not constexpr: the guard's throw machinery needs non-literal
    // locals, which constexpr functions only allow from C++23 on.
    static TaintMask
    forLoad(unsigned bytes, bool sign_extend,
            uint8_t loaded_byte_taint)
    {
        // bytes == 0 would shift by (unsigned)-1 below — undefined
        // behavior, not a meaningful access width.
        SPT_ASSERT(bytes >= 1 && bytes <= 8,
                   "load width must be 1-8 bytes, got " << bytes);
        uint8_t byte_mask =
            loaded_byte_taint &
            static_cast<uint8_t>((1u << (bytes < 8 ? bytes : 8)) - 1);
        if (bytes >= 8)
            byte_mask = loaded_byte_taint;
        if (sign_extend && bytes < 8 &&
            ((byte_mask >> (bytes - 1)) & 1)) {
            for (unsigned b = bytes; b < 8; ++b)
                byte_mask |= uint8_t{1} << b;
        }
        return fromByteMask(byte_mask);
    }

  private:
    constexpr explicit TaintMask(uint8_t bits) : bits_(bits) {}

    uint8_t bits_ = 0;
};

} // namespace spt

#endif // SPT_CORE_TAINT_MASK_H
