#include "core/spt_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "core/knowledge_map.h"
#include "core/untaint_rules.h"
#include "uarch/core.h"

namespace spt {

namespace {

const char *
reasonName(SptEngine::UntaintReason r)
{
    switch (r) {
      case SptEngine::UntaintReason::kVpDeclassify:
        return "untaint.vp_declassify";
      case SptEngine::UntaintReason::kForward:
        return "untaint.forward";
      case SptEngine::UntaintReason::kBackward:
        return "untaint.backward";
      case SptEngine::UntaintReason::kShadowData:
        return "untaint.shadow_data";
      case SptEngine::UntaintReason::kStlForward:
        return "untaint.stl_forward";
      case SptEngine::UntaintReason::kMapPreclear:
        return "untaint.map_preclear";
    }
    return "untaint.unknown";
}

TaintEvent
reasonEvent(SptEngine::UntaintReason r)
{
    switch (r) {
      case SptEngine::UntaintReason::kVpDeclassify:
        return TaintEvent::kVpDeclassify;
      case SptEngine::UntaintReason::kForward:
        return TaintEvent::kForwardUntaint;
      case SptEngine::UntaintReason::kBackward:
        return TaintEvent::kBackwardUntaint;
      case SptEngine::UntaintReason::kShadowData:
        return TaintEvent::kShadowUntaint;
      case SptEngine::UntaintReason::kStlForward:
        return TaintEvent::kStlUntaint;
      case SptEngine::UntaintReason::kMapPreclear:
        return TaintEvent::kMapPreclear;
    }
    return TaintEvent::kVpDeclassify;
}

} // namespace

SptEngine::SptEngine(const SptConfig &config)
    : cfg_(config)
{
}

void
SptEngine::attach(Core &core)
{
    SecurityEngine::attach(core);
    master_.assign(core.physRegs().numRegs(), TaintMask::all());
    // The zero register is public; every other architectural
    // register (and all memory) starts tainted (Section 6.3).
    master_.set(PhysRegFile::kZeroReg, TaintMask::none());
    const bool packed = cfg_.storage == SptConfig::Storage::kBitplane;
    switch (cfg_.shadow) {
      case ShadowKind::kNone:
        taint_store_ = std::make_unique<NullTaintStore>();
        break;
      case ShadowKind::kShadowL1:
        if (packed)
            taint_store_ = std::make_unique<PackedShadowL1>(
                core.memorySystem().l1d());
        else
            taint_store_ = std::make_unique<ShadowL1>(
                core.memorySystem().l1d());
        break;
      case ShadowKind::kShadowMem:
        if (packed)
            taint_store_ = std::make_unique<PackedShadowMemory>();
        else
            taint_store_ = std::make_unique<ShadowMemory>();
        break;
    }

    uint64_t cap = 1;
    while (cap < core.params().rob_size)
        cap <<= 1;
    entries_.assign(cap, Entry{});
    idx_mask_ = cap - 1;
    head_ = tail_ = vp_cursor_ = 0;
    local_queue_.clear();
    pending_flags_.assign(cap);
    reg_slots_.assign(core.physRegs().numRegs(), {});
    stl_candidates_.assign(cap);
    shadow_candidates_.assign(cap);
    armed_.assign(core.physRegs().numRegs(), 0);
}

TaintMask
SptEngine::masterTaint(PhysReg reg) const
{
    return reg == kNoPhysReg ? TaintMask::none() : master_.get(reg);
}

// --------------------------------------------------------------------
// Taint storage
// --------------------------------------------------------------------

SptEngine::Entry *
SptEngine::entryOf(const DynInst &d)
{
    if (d.taint_idx == kNoTaintIdx)
        return nullptr;
    Entry &e = entries_[d.taint_idx];
    return (e.live && e.seq == d.seq) ? &e : nullptr;
}

const SptEngine::Entry *
SptEngine::entryOf(const DynInst &d) const
{
    return const_cast<SptEngine *>(this)->entryOf(d);
}

SptEngine::Entry *
SptEngine::entryBySeq(SeqNum seq)
{
    // Live positions [head_, tail_) hold strictly increasing seqs
    // (ROB order), so a binary search over ring positions suffices.
    uint64_t lo = head_, hi = tail_;
    while (lo < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        if (entryAt(mid).seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == tail_)
        return nullptr;
    Entry &e = entryAt(lo);
    return (e.live && e.seq == seq) ? &e : nullptr;
}

const SptEngine::Entry *
SptEngine::entryBySeq(SeqNum seq) const
{
    return const_cast<SptEngine *>(this)->entryBySeq(seq);
}

const SptEngine::InstTaint *
SptEngine::instTaint(SeqNum seq) const
{
    const Entry *e = entryBySeq(seq);
    return e ? &e->it : nullptr;
}

void
SptEngine::markLocalDirty(Entry &e)
{
    if (cfg_.method == UntaintMethod::kNone)
        return; // the local-rules phase never runs
    if (e.in_local_queue)
        return;
    e.in_local_queue = true;
    local_queue_.push_back(
        {static_cast<uint32_t>(&e - entries_.data()), e.seq});
}

void
SptEngine::raiseFlag(Entry &e, int slot)
{
    // The bitmap is ring-parallel, and ring order is seq order, so a
    // head-to-tail scan yields (older inst, dest-before-src) — the
    // arbitration order the old ordered set encoded in its keys.
    const uint64_t idx =
        static_cast<uint64_t>(&e - entries_.data());
    pending_flags_.raise(idx, static_cast<unsigned>(slot));
    slotFlag(e.it, slot) = true;
}

void
SptEngine::clearFlag(Entry &e, int slot)
{
    const uint64_t idx =
        static_cast<uint64_t>(&e - entries_.data());
    pending_flags_.clear(idx, static_cast<unsigned>(slot));
    slotFlag(e.it, slot) = false;
}

void
SptEngine::freeEntry(Entry &e)
{
    const uint64_t idx =
        static_cast<uint64_t>(&e - entries_.data());
    for (int slot = 0; slot < 3; ++slot)
        clearFlag(e, slot);
    stl_candidates_.clear(idx);
    shadow_candidates_.clear(idx);
    e.stl_candidate = false;
    e.shadow_candidate = false;
    e.live = false;
    e.inst = nullptr;
}

void
SptEngine::registerRegSlots(const DynInst &d, uint32_t idx)
{
    for (int slot = 0; slot < 3; ++slot) {
        const PhysReg reg = slotReg(d, slot);
        if (reg == kNoPhysReg || reg == PhysRegFile::kZeroReg)
            continue; // never the target of a broadcast
        auto &refs = reg_slots_[reg];
        // Drop stale references before forcing a reallocation; live
        // ones are bounded by the ROB, so this keeps each list small
        // at amortized O(1) per insert.
        if (refs.size() >= 16 && refs.size() == refs.capacity()) {
            std::erase_if(refs, [this](const RegSlotRef &r) {
                const Entry &e = entries_[r.idx];
                return !e.live || e.seq != r.seq;
            });
        }
        refs.push_back({idx, d.seq, static_cast<uint8_t>(slot)});
    }
}

void
SptEngine::countUntaint(UntaintReason reason, const Entry &e,
                        int slot)
{
    stats_.inc(reasonName(reason));
    stats_.inc("untaint.events");
    if (observer_)
        observer_->taintEvent(core_->cycle(), reasonEvent(reason),
                              *e.inst, static_cast<uint8_t>(slot));
}

PhysReg
SptEngine::slotReg(const DynInst &d, int slot) const
{
    switch (slot) {
      case 0: return d.prd;
      case 1: return d.prs1;
      case 2: return d.prs2;
      default: SPT_PANIC("bad slot");
    }
}

TaintMask &
SptEngine::slotMask(InstTaint &it, int slot) const
{
    switch (slot) {
      case 0: return it.dest;
      case 1: return it.src[0];
      case 2: return it.src[1];
      default: SPT_PANIC("bad slot");
    }
}

bool &
SptEngine::slotFlag(InstTaint &it, int slot) const
{
    switch (slot) {
      case 0: return it.dest_flag;
      case 1: return it.src_flag[0];
      case 2: return it.src_flag[1];
      default: SPT_PANIC("bad slot");
    }
}

// --------------------------------------------------------------------
// Pipeline events
// --------------------------------------------------------------------

void
SptEngine::onRename(DynInst &d)
{
    SPT_ASSERT(tail_ - head_ < entries_.size(),
               "taint ring overflow: ROB grew past attach-time size");
    const uint32_t idx = static_cast<uint32_t>(tail_ & idx_mask_);
    Entry &e = entries_[idx];
    SPT_ASSERT(!e.live, "taint ring slot still live at rename");
    e = Entry{};
    e.seq = d.seq;
    e.inst = &d;
    e.live = true;
    d.taint_idx = idx;
    ++tail_;

    InstTaint &it = e.it;
    if (d.num_srcs >= 1)
        it.src[0] = master_.get(d.prs1);
    if (d.num_srcs >= 2)
        it.src[1] = master_.get(d.prs2);
    if (cfg_.knowledge_map && d.num_srcs >= 1) {
        // Rename-time pre-declassification (DESIGN.md §13): an
        // operand whose arch register the map proves kRobust-known
        // at this pc joins untainted — provided the physical
        // register is armed (its value already VP-declassified), so
        // the relaxation never outruns the dynamic engine's own
        // declassifications on a transient wrong path.
        stats_.inc("knowledge.map_lookups");
        const uint32_t robust =
            cfg_.knowledge_map->robustRegsAt(d.pc);
        bool precleared = false;
        if (robust != 0) {
            if (it.src[0].any() && (robust >> d.si.rs1 & 1) &&
                armed_[d.prs1]) {
                it.src[0] = TaintMask::none();
                countUntaint(UntaintReason::kMapPreclear, e, 1);
                stats_.inc("knowledge.precleared_ops");
                precleared = true;
            }
            if (d.num_srcs >= 2 && it.src[1].any() &&
                (robust >> d.si.rs2 & 1) && armed_[d.prs2]) {
                it.src[1] = TaintMask::none();
                countUntaint(UntaintReason::kMapPreclear, e, 2);
                stats_.inc("knowledge.precleared_ops");
                precleared = true;
            }
        }
        if (precleared)
            stats_.inc("knowledge.precleared_insts");
    }
    if (d.has_dest) {
        if (d.is_load) {
            // Loads are conservatively tainted at rename; the data's
            // taint is not known yet (Section 6.3).
            it.dest = TaintMask::all();
        } else {
            it.dest = propagateForward(d.si.op, it.src[0], it.src[1]);
        }
        master_.set(d.prd, it.dest);
        // The register now binds a new, not-yet-declassified value.
        armed_[d.prd] = 0;
    }
    if (observer_ && d.has_dest && it.dest.any())
        observer_->taintEvent(core_->cycle(),
                              TaintEvent::kTaintedAtRename, d, 0);
    registerRegSlots(d, idx);
    // The backward rule may already apply to the rename-time masks.
    markLocalDirty(e);
}

void
SptEngine::onSquash(const DynInst &d)
{
    if (d.taint_idx == kNoTaintIdx)
        return; // squashed before rename (fetch queue)
    Entry &e = entries_[d.taint_idx];
    if (!e.live || e.seq != d.seq)
        return;
    // The core squashes the ROB suffix youngest-first, so frees pop
    // the ring tail.
    SPT_ASSERT(tail_ > head_ &&
                   ((tail_ - 1) & idx_mask_) == d.taint_idx,
               "out-of-order squash");
    freeEntry(e);
    --tail_;
    if (vp_cursor_ > tail_)
        vp_cursor_ = tail_;
}

void
SptEngine::onRetire(const DynInst &d)
{
    Entry *e = entryOf(d);
    if (!e)
        return;
    SPT_ASSERT((head_ & idx_mask_) == d.taint_idx,
               "out-of-order retire");
    // A retiring instruction's slot frees; push any still-pending
    // untaint information into the master copy so it is not lost
    // (newly renamed consumers read the master).
    flushFlagsToMaster(d);
    freeEntry(*e);
    ++head_;
    if (vp_cursor_ < head_)
        vp_cursor_ = head_;
}

void
SptEngine::flushFlagsToMaster(const DynInst &d)
{
    Entry *e = entryOf(d);
    if (!e)
        return;
    for (int slot = 0; slot < 3; ++slot) {
        if (!slotFlag(e->it, slot))
            continue;
        const PhysReg reg = slotReg(d, slot);
        if (reg != kNoPhysReg && reg != PhysRegFile::kZeroReg)
            master_.intersect(reg, slotMask(e->it, slot));
    }
}

void
SptEngine::onLoadData(DynInst &d, bool forwarded, SeqNum)
{
    Entry *e = entryOf(d);
    if (!e)
        return;
    InstTaint &it = e->it;
    it.load_data_seen = true;
    if (forwarded && !e->stl_candidate) {
        // Either direction of the STL rule may fire later, whatever
        // the current masks (Section 6.7).
        e->stl_candidate = true;
        stl_candidates_.set(d.taint_idx);
    }

    if (it.dest.nothing()) {
        // Section 6.8 load rule: the output register was already
        // untainted (backward-untainted by a consumer that reached
        // the VP; possible only once the load itself is
        // non-speculative, Lemma 1) — clear the read bytes' taint.
        if (!forwarded && cfg_.shadow != ShadowKind::kNone) {
            it.shadow_cleared = true;
            taint_store_->clearTaint(d.eff_addr, d.mem_bytes);
            stats_.inc("shadow.load_clears");
        }
        return;
    }
    if (forwarded)
        return; // untaint flows via the STLPublic rule (Section 6.7)

    const uint8_t byte_taint =
        taint_store_->readTaint(d.eff_addr, d.mem_bytes);
    const TaintMask m = TaintMask::forLoad(
        d.mem_bytes, opTraits(d.si.op).load_signed, byte_taint);
    if (m != it.dest && m.subsetOf(it.dest)) {
        it.dest = m;
        raiseFlag(*e, 0);
        countUntaint(UntaintReason::kShadowData, *e, 0);
        markLocalDirty(*e);
    }
    if (cfg_.shadow != ShadowKind::kNone && !it.shadow_cleared) {
        // May retroactively clear the read bytes once the output
        // untaints (shadowClearPhase).
        e->shadow_candidate = true;
        shadow_candidates_.set(d.taint_idx);
    }
}

void
SptEngine::onStoreCommit(const DynInst &d)
{
    const Entry *e = entryOf(d);
    const TaintMask data_mask =
        e ? e->it.src[1] : TaintMask::all();
    // The data operand's taint overwrites the written bytes' taint
    // (Sections 6.8 / 7.5).
    taint_store_->writeTaint(d.eff_addr, d.mem_bytes,
                             data_mask.toByteMask());
}

// --------------------------------------------------------------------
// Protection policy
// --------------------------------------------------------------------

bool
SptEngine::addrOperandPublic(const DynInst &d) const
{
    if (d.at_vp)
        return true;
    const Entry *e = entryOf(d);
    if (!e)
        return true; // retired
    return e->it.src[0].nothing();
}

bool
SptEngine::operandsPublic(const DynInst &d) const
{
    if (d.at_vp)
        return true;
    const Entry *e = entryOf(d);
    if (!e)
        return true;
    if (d.num_srcs >= 1 && e->it.src[0].any())
        return false;
    if (d.num_srcs >= 2 && e->it.src[1].any())
        return false;
    return true;
}

bool
SptEngine::mayAccessMemory(const DynInst &d) const
{
    const bool allowed = addrOperandPublic(d);
    if (!allowed) {
        stats_.inc(d.is_load ? "policy.load_blocked_checks"
                             : "policy.store_blocked_checks");
        if (cfg_.mutation == SptConfig::Mutation::kLeakyMemGate) {
            // Seeded bug (chaos mutation mode): the gate lies. The
            // transmitPublic claim below still tells the truth, so
            // the InvariantChecker flags the ensuing access.
            stats_.inc("mutation.leaky_gate_opens");
            return true;
        }
    }
    return allowed;
}

bool
SptEngine::mayResolveBranch(const DynInst &d) const
{
    return operandsPublic(d);
}

bool
SptEngine::storeAddrPublic(const DynInst &store) const
{
    if (store.at_vp)
        return true;
    const Entry *e = entryOf(store);
    if (!e)
        return true;
    return e->it.src[0].nothing();
}

bool
SptEngine::stlPublic(const DynInst &load, const DynInst &store) const
{
    // STLPublic(S, L): L's address is untainted and the addresses of
    // all stores older than L and younger than S (inclusive) are
    // untainted (Section 6.7).
    if (!addrOperandPublic(load))
        return false;
    for (const DynInstPtr &st : core_->storeQueue()) {
        if (st->squashed)
            continue;
        if (st->seq < store.seq || st->seq >= load.seq)
            continue;
        if (!storeAddrPublic(*st))
            return false;
    }
    return true;
}

bool
SptEngine::stlForwardingPublic(const DynInst &load,
                               const DynInst &store) const
{
    return stlPublic(load, store);
}

bool
SptEngine::memSquashPublic(const DynInst &load) const
{
    // The squash's implicit branch involves the load's address and
    // the addresses of all older in-flight stores (Section 6.7,
    // footnote 4).
    if (load.at_vp)
        return true;
    if (!addrOperandPublic(load))
        return false;
    for (const DynInstPtr &st : core_->storeQueue()) {
        if (st->squashed || st->seq > load.seq)
            continue;
        if (!storeAddrPublic(*st))
            return false;
    }
    return true;
}

bool
SptEngine::maySquashMemViolation(const DynInst &load) const
{
    return memSquashPublic(load);
}

bool
SptEngine::transmitPublic(const DynInst &d, DelayKind kind) const
{
    // Ground truth for the invariant checker: the un-mutated policy
    // predicates, one per transmit channel.
    switch (kind) {
      case DelayKind::kMemAccess:
        return addrOperandPublic(d);
      case DelayKind::kBranchResolve:
        return operandsPublic(d);
      case DelayKind::kMemOrderSquash:
        return memSquashPublic(d);
    }
    return true;
}

bool
SptEngine::taintStateConsistent(const DynInst &d) const
{
    // Every in-flight instruction must resolve to a live taint slot
    // whose back-pointer is the instruction itself (the ring-buffer
    // index map of Section 7.2's storage).
    const Entry *e = entryOf(d);
    return e != nullptr && e->inst == &d && e->seq == d.seq;
}

// --------------------------------------------------------------------
// Observability
// --------------------------------------------------------------------

bool
SptEngine::untaintPendingFor(PhysReg reg) const
{
    if (reg == kNoPhysReg)
        return false;
    // Raised-but-not-broadcast flags are the broadcast queue: if one
    // of them names `reg` with a strictly smaller mask, the operand
    // is only waiting on the structural broadcast width.
    const TaintMask cur = master_.get(reg);
    bool pending = false;
    pending_flags_.forEach(
        head_, tail_, [&](uint64_t pos, unsigned k) {
            const Entry &e = entries_[pos & idx_mask_];
            const int slot = static_cast<int>(k);
            if (slotReg(*e.inst, slot) != reg)
                return true;
            const TaintMask flagged =
                slot == 0 ? e.it.dest : e.it.src[slot - 1];
            if ((cur & flagged) != cur) {
                pending = true;
                return false;
            }
            return true;
        });
    return pending;
}

DelayCause
SptEngine::delayCause(const DynInst &d, DelayKind kind) const
{
    // Called only with an observer installed, after the policy query
    // returned false — never on the trace-off hot path.
    switch (kind) {
      case DelayKind::kMemAccess:
        return untaintPendingFor(d.prs1)
                   ? DelayCause::kWaitBroadcast
                   : DelayCause::kTaintedAddr;
      case DelayKind::kBranchResolve: {
        const Entry *e = entryOf(d);
        const bool src0_blocked =
            e && d.num_srcs >= 1 && e->it.src[0].any();
        const bool src1_blocked =
            e && d.num_srcs >= 2 && e->it.src[1].any();
        if ((src0_blocked && untaintPendingFor(d.prs1)) ||
            (src1_blocked && untaintPendingFor(d.prs2)))
            return DelayCause::kWaitBroadcast;
        return DelayCause::kTaintedBranch;
      }
      case DelayKind::kMemOrderSquash:
        return DelayCause::kMemOrderGate;
    }
    return DelayCause::kMemOrderGate;
}

uint64_t
SptEngine::taintedRegCount() const
{
    return master_.taintedCount();
}

// --------------------------------------------------------------------
// Fast-forward support
// --------------------------------------------------------------------

bool
SptEngine::quiescent() const
{
    // tick() is a pure no-op iff no phase has queued work and the VP
    // cursor has consumed the whole at_vp prefix. The candidate
    // phases (STL, shadow-clear) re-check deterministic conditions
    // each cycle, but with the core frozen their inputs cannot
    // change: anything fireable fired on the tick that just ran, and
    // a fire either queues follow-up work (raised flag / dirty local
    // queue — both caught here) or is one-shot (shadow_cleared).
    if (!pending_flags_.empty() || !local_queue_.empty())
        return false;
    if (vp_cursor_ < tail_ &&
        entries_[vp_cursor_ & idx_mask_].inst->at_vp)
        return false;
    return true;
}

void
SptEngine::accrueBlockedTransmit(const DynInst &d, DelayKind kind,
                                 uint64_t cycles)
{
    // Bulk form of the stat side effect a blocked mayAccessMemory
    // performs once per cycle; the branch-resolve and mem-order
    // gates are stats-pure, so skipped cycles owe them nothing.
    if (kind == DelayKind::kMemAccess)
        stats_.inc(d.is_load ? "policy.load_blocked_checks"
                             : "policy.store_blocked_checks",
                   cycles);
}

// --------------------------------------------------------------------
// Per-cycle untaint machinery
// --------------------------------------------------------------------

void
SptEngine::declassifyPhase()
{
    // at_vp spreads as a monotone, contiguous ROB prefix (it is set
    // front-to-back and squashes only remove the suffix), so a
    // cursor visits each instruction exactly once.
    while (vp_cursor_ < tail_) {
        Entry &e = entryAt(vp_cursor_);
        if (!e.inst->at_vp)
            break;
        ++vp_cursor_;
        if (e.it.declassified)
            continue;
        e.it.declassified = true;
        const DynInst &d = *e.inst;
        // Leaked operands: the address of a load/store; the source
        // operands of a branch/indirect jump.
        bool src0 = false, src1 = false;
        if (d.isMem())
            src0 = true;
        else if (d.is_ctrl) {
            src0 = d.num_srcs >= 1;
            src1 = d.num_srcs >= 2;
        }
        if (src0 && e.it.src[0].any()) {
            e.it.src[0] = TaintMask::none();
            raiseFlag(e, 1);
            countUntaint(UntaintReason::kVpDeclassify, e, 1);
            markLocalDirty(e);
        }
        if (src1 && e.it.src[1].any()) {
            e.it.src[1] = TaintMask::none();
            raiseFlag(e, 2);
            countUntaint(UntaintReason::kVpDeclassify, e, 2);
            markLocalDirty(e);
        }
        if (cfg_.knowledge_map) {
            // The declassified values are now public on the path
            // being executed: arm their physical registers so the
            // knowledge map may pre-declassify later (and, below,
            // current) readers of the same values.
            if (src0)
                armAndPreclear(d.prs1);
            if (src1)
                armAndPreclear(d.prs2);
        }
    }
}

void
SptEngine::armAndPreclear(PhysReg reg)
{
    if (reg == kNoPhysReg || reg == PhysRegFile::kZeroReg)
        return;
    if (armed_[reg])
        return; // already armed; in-flight readers already swept
    armed_[reg] = 1;
    // In-flight relaxation: live readers of this value whose pc the
    // map proves kRobust get the untaint now, without consuming
    // broadcast bandwidth. Sound for the same reason the broadcast
    // itself is: the armed value is public under the threat model
    // in force. Walk the same reverse index a broadcast would,
    // compacting recycled slots as applyBroadcast does.
    auto &refs = reg_slots_[reg];
    size_t w = 0;
    for (size_t r = 0; r < refs.size(); ++r) {
        const RegSlotRef ref = refs[r];
        Entry &e = entries_[ref.idx];
        if (!e.live || e.seq != ref.seq)
            continue;
        refs[w++] = ref;
        if (ref.slot == 0)
            continue; // a destination slot is not an operand read
        const DynInst &di = *e.inst;
        const uint32_t robust =
            cfg_.knowledge_map->robustRegsAt(di.pc);
        const uint8_t arch = ref.slot == 1 ? di.si.rs1 : di.si.rs2;
        if (!(robust >> arch & 1))
            continue;
        TaintMask &m = e.it.src[ref.slot - 1];
        if (m.nothing())
            continue;
        m = TaintMask::none();
        countUntaint(UntaintReason::kMapPreclear, e, ref.slot);
        stats_.inc("knowledge.precleared_ops");
        stats_.inc("knowledge.precleared_inflight");
        markLocalDirty(e);
    }
    refs.resize(w);
}

bool
SptEngine::evalLocalRules(Entry &e)
{
    const DynInst &d = *e.inst;
    InstTaint &it = e.it;
    bool changed = false;

    // Forward rule: outputs that are pure functions of their
    // operands (never loads).
    if (d.has_dest && !d.is_load && it.dest.any()) {
        const TaintMask m =
            propagateForward(d.si.op, it.src[0], it.src[1]);
        if (m != it.dest && m.subsetOf(it.dest)) {
            it.dest = m;
            raiseFlag(e, 0);
            countUntaint(UntaintReason::kForward, e, 0);
            changed = true;
        }
    }

    if (cfg_.method == UntaintMethod::kBackward ||
        cfg_.method == UntaintMethod::kIdeal) {
        const BackwardUntaint b = propagateBackward(
            d.si.op, it.src[0], it.src[1], it.dest);
        if (b.untaint_src0) {
            it.src[0] = TaintMask::none();
            raiseFlag(e, 1);
            countUntaint(UntaintReason::kBackward, e, 1);
            changed = true;
        }
        if (b.untaint_src1) {
            it.src[1] = TaintMask::none();
            raiseFlag(e, 2);
            countUntaint(UntaintReason::kBackward, e, 2);
            changed = true;
        }
    }
    return changed;
}

bool
SptEngine::localRulesPhase()
{
    // The rules are pure functions of an instruction's own masks:
    // re-evaluating one whose inputs did not change is a no-op, so
    // only queued (changed) instructions need a visit. Entries
    // queued during this drain — including self-requeues when a rule
    // fires — are seen by the *next* drain, matching the old
    // scan-per-cycle behavior of one visit per instruction per call.
    bool changed = false;
    const size_t n = local_queue_.size();
    for (size_t i = 0; i < n; ++i) {
        const EntryRef ref = local_queue_[i];
        Entry &e = entries_[ref.idx];
        if (!e.live || e.seq != ref.seq)
            continue; // slot recycled since queueing
        e.in_local_queue = false;
        if (evalLocalRules(e)) {
            markLocalDirty(e);
            changed = true;
        }
    }
    local_queue_.erase(local_queue_.begin(),
                       local_queue_.begin() + n);
    return changed;
}

bool
SptEngine::stlPhase()
{
    if (stl_candidates_.empty())
        return false; // no forwarded load in flight
    // Candidate bits mark forwarded loads whose data arrived; ring
    // order is seq order, so this visits the same loads in the same
    // order as the old LSQ walk while word-skipping everything else.
    bool changed = false;
    stl_candidates_.forEach(head_, tail_, [&](uint64_t pos) {
        Entry &le = entryAt(pos);
        const DynInst *ld = le.inst;
        // An MSHR retry can strip `forwarded` after the candidate
        // bit was set; re-check the instruction like the LSQ walk
        // did.
        if (ld->squashed || !ld->forwarded ||
            !le.it.load_data_seen)
            return true;
        Entry *se = entryBySeq(ld->forwarding_store);
        if (!se)
            return true; // store retired before the pair went public
        if (!stlPublic(*ld, *se->inst))
            return true;
        InstTaint &lt = le.it;
        InstTaint &stt = se->it;
        // Forward: store data -> load output.
        if (stt.src[1].nothing() && lt.dest.any()) {
            lt.dest = TaintMask::none();
            lt.stl_untaint = true;
            raiseFlag(le, 0);
            countUntaint(UntaintReason::kStlForward, le, 0);
            markLocalDirty(le);
            changed = true;
        }
        // Backward: load output -> store data.
        if (lt.dest.nothing() && stt.src[1].any()) {
            stt.src[1] = TaintMask::none();
            raiseFlag(*se, 2);
            countUntaint(UntaintReason::kStlForward, *se, 2);
            markLocalDirty(*se);
            changed = true;
        }
        return true;
    });
    return changed;
}

void
SptEngine::shadowClearPhase()
{
    if (cfg_.shadow == ShadowKind::kNone)
        return; // no taint-tracking structure to update
    if (shadow_candidates_.empty())
        return; // no load that could still clear anything

    // Section 6.8 load rule, retroactive form: a non-speculative
    // load whose output register became untainted (e.g., backward-
    // declassified by a consumer transmitter at the VP) makes the
    // bytes it read publicly inferable — the attacker knows the load
    // accessed eff_addr (its address is declassified at the VP) and
    // knows the output value. Candidate bits (set when load data
    // arrives) cover every load that can still fire; visiting them
    // in ring (= seq) order matches the old LSQ walk.
    shadow_candidates_.forEach(head_, tail_, [&](uint64_t pos) {
        Entry &e = entryAt(pos);
        const DynInst *ld = e.inst;
        if (ld->squashed || !ld->at_vp || ld->forwarded ||
            !ld->access_done)
            return true;
        InstTaint &it = e.it;
        if (!it.load_data_seen || it.shadow_cleared ||
            it.dest.any())
            return true;
        it.shadow_cleared = true;
        e.shadow_candidate = false;
        shadow_candidates_.clear(pos & idx_mask_);
        taint_store_->clearTaint(ld->eff_addr, ld->mem_bytes);
        stats_.inc("shadow.load_clears");
        return true;
    });
}

void
SptEngine::applyBroadcast(PhysReg reg, TaintMask mask)
{
    // The broadcast may carry information the master copy already
    // has (or lost to a retirement flush in between): intersecting
    // is monotone and sound either way. Dropping a non-subset mask
    // here would lose the untaint forever, since broadcastPhase has
    // already cleared the slot flag.
    const TaintMask cur = master_.get(reg);
    if ((cur & mask) != cur)
        ++untainted_regs_this_cycle_;
    master_.set(reg, cur & mask);
    // Only the in-flight slots naming `reg` can observe the
    // broadcast; walk the reverse index instead of the ROB,
    // compacting out slots that were recycled since registration.
    auto &refs = reg_slots_[reg];
    size_t w = 0;
    for (size_t r = 0; r < refs.size(); ++r) {
        const RegSlotRef ref = refs[r];
        Entry &e = entries_[ref.idx];
        if (!e.live || e.seq != ref.seq)
            continue;
        refs[w++] = ref;
        TaintMask &m = slotMask(e.it, ref.slot);
        const TaintMask before = m;
        m &= mask;
        // The slot's information is fully conveyed once it
        // matches the broadcast value.
        if (m == mask)
            clearFlag(e, ref.slot);
        if (m != before)
            markLocalDirty(e);
    }
    refs.resize(w);
    stats_.inc("untaint.broadcasts");
}

void
SptEngine::broadcastPhase()
{
    unsigned width = cfg_.broadcast_width;
    FaultHooks *faults = core_ ? core_->faultHooks() : nullptr;
    if (faults && faults->fire(FaultSite::kBroadcastStarve)) {
        // Starve the untaint bus for this cycle; raised flags stay
        // pending and drain on a later cycle.
        width = 0;
        stats_.inc("fault.broadcast_starved_cycles");
    }
    // Drain raised flags in arbitration order (a head-to-tail bitmap
    // scan: older instruction first, destination before sources) up
    // to the structural width.
    std::vector<Broadcast> chosen;
    chosen.reserve(width);
    uint64_t pos;
    unsigned k;
    while (chosen.size() < width &&
           pending_flags_.first(head_, tail_, pos, k)) {
        Entry &e = entryAt(pos);
        SPT_ASSERT(e.live, "pending flag references a freed slot");
        const int slot = static_cast<int>(k);
        clearFlag(e, slot);
        const PhysReg reg = slotReg(*e.inst, slot);
        if (reg == kNoPhysReg || reg == PhysRegFile::kZeroReg)
            continue;
        Broadcast *dup = nullptr;
        for (Broadcast &b : chosen)
            if (b.reg == reg)
                dup = &b;
        if (dup) {
            // A second slot naming an already-chosen register
            // rides along on the same broadcast: merge its mask
            // instead of burning a slot (and a cycle) on it.
            dup->mask &= slotMask(e.it, slot);
            continue;
        }
        chosen.push_back({reg, slotMask(e.it, slot)});
    }
    for (const Broadcast &b : chosen)
        applyBroadcast(b.reg, b.mask);
}

void
SptEngine::idealPropagate()
{
    // Unbounded, single-cycle transitive closure: iterate the rules
    // with instant global visibility until nothing changes.
    bool changed = true;
    while (changed) {
        changed = false;
        changed |= localRulesPhase();
        changed |= stlPhase();
        // Flush every flag as an immediate broadcast. A broadcast
        // may clear other pending flags; re-finding the bitmap's
        // first set flag each time handles that safely and keeps
        // arbitration order.
        uint64_t pos;
        unsigned k;
        while (pending_flags_.first(head_, tail_, pos, k)) {
            Entry &e = entryAt(pos);
            SPT_ASSERT(e.live,
                       "pending flag references a freed slot");
            const int slot = static_cast<int>(k);
            clearFlag(e, slot);
            const PhysReg reg = slotReg(*e.inst, slot);
            if (reg != kNoPhysReg &&
                reg != PhysRegFile::kZeroReg) {
                applyBroadcast(reg, slotMask(e.it, slot));
                changed = true;
            }
        }
    }
}

void
SptEngine::tick()
{
    untainted_regs_this_cycle_ = 0;
    declassifyPhase();
    if (cfg_.method == UntaintMethod::kIdeal) {
        idealPropagate();
        shadowClearPhase();
    } else if (cfg_.method != UntaintMethod::kNone) {
        localRulesPhase();
        stlPhase();
        broadcastPhase();
        shadowClearPhase();
    } else {
        // Even with no propagation, VP declassifications must reach
        // the master copy so the transmitters themselves can execute;
        // in SPT{None} this happens only via the bounded broadcast.
        broadcastPhase();
    }
    if (untainted_regs_this_cycle_ > 0) {
        stats_.histogram("untaint.regs_per_untaint_cycle", 12)
            .record(untainted_regs_this_cycle_);
    }
}

} // namespace spt
