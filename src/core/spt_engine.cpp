#include "core/spt_engine.h"

#include "common/logging.h"
#include "core/untaint_rules.h"
#include "uarch/core.h"

namespace spt {

namespace {

const char *
reasonName(SptEngine::UntaintReason r)
{
    switch (r) {
      case SptEngine::UntaintReason::kVpDeclassify:
        return "untaint.vp_declassify";
      case SptEngine::UntaintReason::kForward:
        return "untaint.forward";
      case SptEngine::UntaintReason::kBackward:
        return "untaint.backward";
      case SptEngine::UntaintReason::kShadowData:
        return "untaint.shadow_data";
      case SptEngine::UntaintReason::kStlForward:
        return "untaint.stl_forward";
    }
    return "untaint.unknown";
}

} // namespace

SptEngine::SptEngine(const SptConfig &config)
    : cfg_(config)
{
}

void
SptEngine::attach(Core &core)
{
    SecurityEngine::attach(core);
    master_.assign(core.physRegs().numRegs(), TaintMask::all());
    // The zero register is public; every other architectural
    // register (and all memory) starts tainted (Section 6.3).
    master_[PhysRegFile::kZeroReg] = TaintMask::none();
    switch (cfg_.shadow) {
      case ShadowKind::kNone:
        taint_store_ = std::make_unique<NullTaintStore>();
        break;
      case ShadowKind::kShadowL1:
        taint_store_ =
            std::make_unique<ShadowL1>(core.memorySystem().l1d());
        break;
      case ShadowKind::kShadowMem:
        taint_store_ = std::make_unique<ShadowMemory>();
        break;
    }
}

TaintMask
SptEngine::masterTaint(PhysReg reg) const
{
    return reg == kNoPhysReg ? TaintMask::none() : master_[reg];
}

const SptEngine::InstTaint *
SptEngine::instTaint(SeqNum seq) const
{
    auto it = tab_.find(seq);
    return it == tab_.end() ? nullptr : &it->second;
}

void
SptEngine::countUntaint(UntaintReason reason)
{
    stats_.inc(reasonName(reason));
    stats_.inc("untaint.events");
}

PhysReg
SptEngine::slotReg(const DynInst &d, int slot) const
{
    switch (slot) {
      case 0: return d.prd;
      case 1: return d.prs1;
      case 2: return d.prs2;
      default: SPT_PANIC("bad slot");
    }
}

TaintMask &
SptEngine::slotMask(InstTaint &it, int slot) const
{
    switch (slot) {
      case 0: return it.dest;
      case 1: return it.src[0];
      case 2: return it.src[1];
      default: SPT_PANIC("bad slot");
    }
}

bool &
SptEngine::slotFlag(InstTaint &it, int slot) const
{
    switch (slot) {
      case 0: return it.dest_flag;
      case 1: return it.src_flag[0];
      case 2: return it.src_flag[1];
      default: SPT_PANIC("bad slot");
    }
}

// --------------------------------------------------------------------
// Pipeline events
// --------------------------------------------------------------------

void
SptEngine::onRename(DynInst &d)
{
    InstTaint it;
    if (d.num_srcs >= 1)
        it.src[0] = master_[d.prs1];
    if (d.num_srcs >= 2)
        it.src[1] = master_[d.prs2];
    if (d.has_dest) {
        if (d.is_load) {
            // Loads are conservatively tainted at rename; the data's
            // taint is not known yet (Section 6.3).
            it.dest = TaintMask::all();
        } else {
            it.dest = propagateForward(d.si.op, it.src[0], it.src[1]);
        }
        master_[d.prd] = it.dest;
    }
    tab_[d.seq] = it;
}

void
SptEngine::onSquash(const DynInst &d)
{
    tab_.erase(d.seq);
}

void
SptEngine::onRetire(const DynInst &d)
{
    // A retiring instruction's slot frees; push any still-pending
    // untaint information into the master copy so it is not lost
    // (newly renamed consumers read the master).
    flushFlagsToMaster(d);
    tab_.erase(d.seq);
}

void
SptEngine::flushFlagsToMaster(const DynInst &d)
{
    auto it = tab_.find(d.seq);
    if (it == tab_.end())
        return;
    for (int slot = 0; slot < 3; ++slot) {
        if (!slotFlag(it->second, slot))
            continue;
        const PhysReg reg = slotReg(d, slot);
        if (reg != kNoPhysReg && reg != PhysRegFile::kZeroReg)
            master_[reg] &= slotMask(it->second, slot);
    }
}

void
SptEngine::onLoadData(DynInst &d, bool forwarded, SeqNum)
{
    auto iter = tab_.find(d.seq);
    if (iter == tab_.end())
        return;
    InstTaint &it = iter->second;
    it.load_data_seen = true;

    if (it.dest.nothing()) {
        // Section 6.8 load rule: the output register was already
        // untainted (backward-untainted by a consumer that reached
        // the VP; possible only once the load itself is
        // non-speculative, Lemma 1) — clear the read bytes' taint.
        if (!forwarded && cfg_.shadow != ShadowKind::kNone) {
            it.shadow_cleared = true;
            taint_store_->clearTaint(d.eff_addr, d.mem_bytes);
            stats_.inc("shadow.load_clears");
        }
        return;
    }
    if (forwarded)
        return; // untaint flows via the STLPublic rule (Section 6.7)

    const uint8_t byte_taint =
        taint_store_->readTaint(d.eff_addr, d.mem_bytes);
    const TaintMask m = TaintMask::forLoad(
        d.mem_bytes, opTraits(d.si.op).load_signed, byte_taint);
    if (m != it.dest && m.subsetOf(it.dest)) {
        it.dest = m;
        it.dest_flag = true;
        countUntaint(UntaintReason::kShadowData);
    }
}

void
SptEngine::onStoreCommit(const DynInst &d)
{
    auto iter = tab_.find(d.seq);
    const TaintMask data_mask =
        iter == tab_.end() ? TaintMask::all() : iter->second.src[1];
    // The data operand's taint overwrites the written bytes' taint
    // (Sections 6.8 / 7.5).
    taint_store_->writeTaint(d.eff_addr, d.mem_bytes,
                             data_mask.toByteMask());
}

// --------------------------------------------------------------------
// Protection policy
// --------------------------------------------------------------------

bool
SptEngine::addrOperandPublic(const DynInst &d) const
{
    if (d.at_vp)
        return true;
    auto it = tab_.find(d.seq);
    if (it == tab_.end())
        return true; // retired
    return it->second.src[0].nothing();
}

bool
SptEngine::operandsPublic(const DynInst &d) const
{
    if (d.at_vp)
        return true;
    auto it = tab_.find(d.seq);
    if (it == tab_.end())
        return true;
    if (d.num_srcs >= 1 && it->second.src[0].any())
        return false;
    if (d.num_srcs >= 2 && it->second.src[1].any())
        return false;
    return true;
}

bool
SptEngine::mayAccessMemory(const DynInst &d) const
{
    const bool allowed = addrOperandPublic(d);
    if (!allowed)
        stats_.inc(d.is_load ? "policy.load_blocked_checks"
                             : "policy.store_blocked_checks");
    return allowed;
}

bool
SptEngine::mayResolveBranch(const DynInst &d) const
{
    return operandsPublic(d);
}

bool
SptEngine::storeAddrPublic(const DynInst &store) const
{
    if (store.at_vp)
        return true;
    auto it = tab_.find(store.seq);
    if (it == tab_.end())
        return true;
    return it->second.src[0].nothing();
}

bool
SptEngine::stlPublic(const DynInst &load, const DynInst &store) const
{
    // STLPublic(S, L): L's address is untainted and the addresses of
    // all stores older than L and younger than S (inclusive) are
    // untainted (Section 6.7).
    if (!addrOperandPublic(load))
        return false;
    for (const DynInstPtr &st : core_->storeQueue()) {
        if (st->squashed)
            continue;
        if (st->seq < store.seq || st->seq >= load.seq)
            continue;
        if (!storeAddrPublic(*st))
            return false;
    }
    return true;
}

bool
SptEngine::stlForwardingPublic(const DynInst &load,
                               const DynInst &store) const
{
    return stlPublic(load, store);
}

bool
SptEngine::maySquashMemViolation(const DynInst &load) const
{
    // The squash's implicit branch involves the load's address and
    // the addresses of all older in-flight stores (Section 6.7,
    // footnote 4).
    if (load.at_vp)
        return true;
    if (!addrOperandPublic(load))
        return false;
    for (const DynInstPtr &st : core_->storeQueue()) {
        if (st->squashed || st->seq > load.seq)
            continue;
        if (!storeAddrPublic(*st))
            return false;
    }
    return true;
}

// --------------------------------------------------------------------
// Per-cycle untaint machinery
// --------------------------------------------------------------------

void
SptEngine::declassifyPhase()
{
    for (const DynInstPtr &d : core_->rob()) {
        if (d->squashed || !d->at_vp)
            continue;
        auto iter = tab_.find(d->seq);
        if (iter == tab_.end() || iter->second.declassified)
            continue;
        InstTaint &it = iter->second;
        it.declassified = true;
        // Leaked operands: the address of a load/store; the source
        // operands of a branch/indirect jump.
        bool src0 = false, src1 = false;
        if (d->isMem())
            src0 = true;
        else if (d->is_ctrl) {
            src0 = d->num_srcs >= 1;
            src1 = d->num_srcs >= 2;
        }
        if (src0 && it.src[0].any()) {
            it.src[0] = TaintMask::none();
            it.src_flag[0] = true;
            countUntaint(UntaintReason::kVpDeclassify);
        }
        if (src1 && it.src[1].any()) {
            it.src[1] = TaintMask::none();
            it.src_flag[1] = true;
            countUntaint(UntaintReason::kVpDeclassify);
        }
    }
}

bool
SptEngine::localRulesPhase()
{
    bool changed = false;
    const bool backward = cfg_.method == UntaintMethod::kBackward ||
                          cfg_.method == UntaintMethod::kIdeal;
    for (const DynInstPtr &d : core_->rob()) {
        if (d->squashed)
            continue;
        auto iter = tab_.find(d->seq);
        if (iter == tab_.end())
            continue;
        InstTaint &it = iter->second;

        // Forward rule: outputs that are pure functions of their
        // operands (never loads).
        if (d->has_dest && !d->is_load && it.dest.any()) {
            const TaintMask m =
                propagateForward(d->si.op, it.src[0], it.src[1]);
            if (m != it.dest && m.subsetOf(it.dest)) {
                it.dest = m;
                it.dest_flag = true;
                countUntaint(UntaintReason::kForward);
                changed = true;
            }
        }

        if (backward) {
            const BackwardUntaint b = propagateBackward(
                d->si.op, it.src[0], it.src[1], it.dest);
            if (b.untaint_src0) {
                it.src[0] = TaintMask::none();
                it.src_flag[0] = true;
                countUntaint(UntaintReason::kBackward);
                changed = true;
            }
            if (b.untaint_src1) {
                it.src[1] = TaintMask::none();
                it.src_flag[1] = true;
                countUntaint(UntaintReason::kBackward);
                changed = true;
            }
        }
    }
    return changed;
}

bool
SptEngine::stlPhase()
{
    bool changed = false;
    for (const DynInstPtr &ld : core_->loadQueue()) {
        if (ld->squashed || !ld->forwarded)
            continue;
        auto liter = tab_.find(ld->seq);
        if (liter == tab_.end() || !liter->second.load_data_seen)
            continue;
        const DynInstPtr st = core_->findInst(ld->forwarding_store);
        if (!st)
            continue; // store retired before the pair went public
        auto siter = tab_.find(st->seq);
        if (siter == tab_.end())
            continue;
        if (!stlPublic(*ld, *st))
            continue;
        InstTaint &lt = liter->second;
        InstTaint &stt = siter->second;
        // Forward: store data -> load output.
        if (stt.src[1].nothing() && lt.dest.any()) {
            lt.dest = TaintMask::none();
            lt.dest_flag = true;
            countUntaint(UntaintReason::kStlForward);
            changed = true;
        }
        // Backward: load output -> store data.
        if (lt.dest.nothing() && stt.src[1].any()) {
            stt.src[1] = TaintMask::none();
            stt.src_flag[1] = true;
            countUntaint(UntaintReason::kStlForward);
            changed = true;
        }
    }
    return changed;
}

void
SptEngine::shadowClearPhase()
{
    if (cfg_.shadow == ShadowKind::kNone)
        return; // no taint-tracking structure to update

    // Section 6.8 load rule, retroactive form: a non-speculative
    // load whose output register became untainted (e.g., backward-
    // declassified by a consumer transmitter at the VP) makes the
    // bytes it read publicly inferable — the attacker knows the load
    // accessed eff_addr (its address is declassified at the VP) and
    // knows the output value.
    for (const DynInstPtr &ld : core_->loadQueue()) {
        if (ld->squashed || !ld->at_vp || ld->forwarded ||
            !ld->access_done)
            continue;
        auto iter = tab_.find(ld->seq);
        if (iter == tab_.end())
            continue;
        InstTaint &it = iter->second;
        if (!it.load_data_seen || it.shadow_cleared ||
            it.dest.any())
            continue;
        it.shadow_cleared = true;
        taint_store_->clearTaint(ld->eff_addr, ld->mem_bytes);
        stats_.inc("shadow.load_clears");
    }
}

void
SptEngine::applyBroadcast(PhysReg reg, TaintMask mask)
{
    if (!mask.subsetOf(master_[reg]))
        return;
    if ((master_[reg] & mask) != master_[reg])
        ++untainted_regs_this_cycle_;
    master_[reg] &= mask;
    for (const DynInstPtr &d : core_->rob()) {
        if (d->squashed)
            continue;
        auto iter = tab_.find(d->seq);
        if (iter == tab_.end())
            continue;
        for (int slot = 0; slot < 3; ++slot) {
            if (slotReg(*d, slot) != reg)
                continue;
            TaintMask &m = slotMask(iter->second, slot);
            m &= mask;
            // The slot's information is fully conveyed once it
            // matches the broadcast value.
            if (m == mask)
                slotFlag(iter->second, slot) = false;
        }
    }
    stats_.inc("untaint.broadcasts");
}

void
SptEngine::broadcastPhase()
{
    std::vector<Broadcast> chosen;
    chosen.reserve(cfg_.broadcast_width);
    for (const DynInstPtr &d : core_->rob()) {
        if (chosen.size() >= cfg_.broadcast_width)
            break;
        if (d->squashed)
            continue;
        auto iter = tab_.find(d->seq);
        if (iter == tab_.end())
            continue;
        // Destination before sources, older before younger
        // (Section 7.3).
        for (int slot = 0; slot < 3; ++slot) {
            if (chosen.size() >= cfg_.broadcast_width)
                break;
            if (!slotFlag(iter->second, slot))
                continue;
            const PhysReg reg = slotReg(*d, slot);
            if (reg == kNoPhysReg || reg == PhysRegFile::kZeroReg) {
                slotFlag(iter->second, slot) = false;
                continue;
            }
            bool dup = false;
            for (const Broadcast &b : chosen)
                dup = dup || b.reg == reg;
            if (dup)
                continue;
            chosen.push_back({reg, slotMask(iter->second, slot)});
            slotFlag(iter->second, slot) = false;
        }
    }
    for (const Broadcast &b : chosen)
        applyBroadcast(b.reg, b.mask);
}

void
SptEngine::idealPropagate()
{
    // Unbounded, single-cycle transitive closure: iterate the rules
    // with instant global visibility until nothing changes.
    bool changed = true;
    while (changed) {
        changed = false;
        changed |= localRulesPhase();
        changed |= stlPhase();
        // Flush every flag as an immediate broadcast.
        for (const DynInstPtr &d : core_->rob()) {
            if (d->squashed)
                continue;
            auto iter = tab_.find(d->seq);
            if (iter == tab_.end())
                continue;
            for (int slot = 0; slot < 3; ++slot) {
                if (!slotFlag(iter->second, slot))
                    continue;
                slotFlag(iter->second, slot) = false;
                const PhysReg reg = slotReg(*d, slot);
                if (reg != kNoPhysReg &&
                    reg != PhysRegFile::kZeroReg) {
                    applyBroadcast(reg,
                                   slotMask(iter->second, slot));
                    changed = true;
                }
            }
        }
    }
}

void
SptEngine::tick()
{
    untainted_regs_this_cycle_ = 0;
    declassifyPhase();
    if (cfg_.method == UntaintMethod::kIdeal) {
        idealPropagate();
        shadowClearPhase();
    } else if (cfg_.method != UntaintMethod::kNone) {
        localRulesPhase();
        stlPhase();
        broadcastPhase();
        shadowClearPhase();
    } else {
        // Even with no propagation, VP declassifications must reach
        // the master copy so the transmitters themselves can execute;
        // in SPT{None} this happens only via the bounded broadcast.
        broadcastPhase();
    }
    if (untainted_regs_this_cycle_ > 0) {
        stats_.histogram("untaint.regs_per_untaint_cycle", 12)
            .record(untainted_regs_this_cycle_);
    }
}

} // namespace spt
