/**
 * @file
 * Word-parallel bit-set storage for the SPT engine's hot structures
 * (the bitplane repack of the PR-6 throughput work).
 *
 * Three containers, all built on plain uint64 words so the per-cycle
 * phases turn into word-parallel bit operations:
 *
 *  - TaintPlanes: the master per-physical-register taint bits stored
 *    as one bitplane per partial-access group — plane g, bit r =
 *    "group g of register r is tainted". Point accesses touch one
 *    bit per plane; population queries (taintedRegCount) OR the four
 *    planes and popcount whole words instead of scanning registers.
 *  - RingFlagBitmap: the raised untaint-broadcast flags as a
 *    circular bitmap parallel to the engine's taint ring, one 4-bit
 *    nibble per ring slot (operand slots 0-2 used). Because ring
 *    order is seq order, scanning from the ring head yields flags in
 *    the paper's arbitration order — older instruction first,
 *    destination before sources — which the old std::set encoded as
 *    key order `(seq << 2) | slot` at O(log n) per operation.
 *  - RingBitmap: one bit per ring slot; backs the STL/shadow-clear
 *    candidate scans so those phases visit only candidate slots (in
 *    ring = seq order) with word-level skips over empty regions.
 *
 * All three are position-addressed: callers pass *logical* ring
 * positions (monotonically growing, `pos & (capacity-1)` is the
 * physical slot) for iteration bounds and physical slot indices for
 * point updates, mirroring the engine's head_/tail_ bookkeeping.
 */

#ifndef SPT_CORE_TAINT_PLANES_H
#define SPT_CORE_TAINT_PLANES_H

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "core/taint_mask.h"

namespace spt {

class TaintPlanes
{
  public:
    void
    assign(std::size_t num_regs, TaintMask init)
    {
        num_regs_ = num_regs;
        const std::size_t words = (num_regs + 63) / 64;
        for (unsigned g = 0; g < TaintMask::kNumGroups; ++g)
            planes_[g].assign(words,
                              init.group(g) ? ~uint64_t{0} : 0);
        // Keep tail bits past num_regs clear so word-level popcounts
        // stay exact.
        if ((num_regs & 63) != 0 && words > 0) {
            const uint64_t tail_mask =
                (uint64_t{1} << (num_regs & 63)) - 1;
            for (unsigned g = 0; g < TaintMask::kNumGroups; ++g)
                planes_[g].back() &= tail_mask;
        }
    }

    TaintMask
    get(std::size_t r) const
    {
        const std::size_t w = r >> 6;
        const uint64_t bit = uint64_t{1} << (r & 63);
        uint8_t bits = 0;
        for (unsigned g = 0; g < TaintMask::kNumGroups; ++g)
            if (planes_[g][w] & bit)
                bits |= uint8_t{1} << g;
        return TaintMask::fromRaw(bits);
    }

    void
    set(std::size_t r, TaintMask m)
    {
        const std::size_t w = r >> 6;
        const uint64_t bit = uint64_t{1} << (r & 63);
        for (unsigned g = 0; g < TaintMask::kNumGroups; ++g) {
            if (m.group(g))
                planes_[g][w] |= bit;
            else
                planes_[g][w] &= ~bit;
        }
    }

    /** master[r] &= m. */
    void
    intersect(std::size_t r, TaintMask m)
    {
        const std::size_t w = r >> 6;
        const uint64_t bit = uint64_t{1} << (r & 63);
        for (unsigned g = 0; g < TaintMask::kNumGroups; ++g)
            if (!m.group(g))
                planes_[g][w] &= ~bit;
    }

    /** Registers with any tainted group: popcount of the OR of the
     *  four planes, one pass over the words. */
    uint64_t
    taintedCount() const
    {
        uint64_t n = 0;
        for (std::size_t w = 0; w < planes_[0].size(); ++w)
            n += static_cast<uint64_t>(
                std::popcount(planes_[0][w] | planes_[1][w] |
                              planes_[2][w] | planes_[3][w]));
        return n;
    }

    std::size_t numRegs() const { return num_regs_; }
    const std::vector<uint64_t> &plane(unsigned g) const
    {
        return planes_[g];
    }
    std::vector<uint64_t> &plane(unsigned g) { return planes_[g]; }

  private:
    std::vector<uint64_t> planes_[TaintMask::kNumGroups];
    std::size_t num_regs_ = 0;
};

class RingFlagBitmap
{
  public:
    /** @param capacity ring capacity; must be a power of two. */
    void
    assign(uint64_t capacity)
    {
        cap_ = capacity;
        words_.assign((capacity * 4 + 63) / 64, 0);
        count_ = 0;
    }

    void
    raise(uint64_t slot, unsigned k)
    {
        const uint64_t b = slot * 4 + k;
        uint64_t &w = words_[b >> 6];
        const uint64_t bit = uint64_t{1} << (b & 63);
        if (!(w & bit)) {
            w |= bit;
            ++count_;
        }
    }

    void
    clear(uint64_t slot, unsigned k)
    {
        const uint64_t b = slot * 4 + k;
        uint64_t &w = words_[b >> 6];
        const uint64_t bit = uint64_t{1} << (b & 63);
        if (w & bit) {
            w &= ~bit;
            --count_;
        }
    }

    bool empty() const { return count_ == 0; }
    uint64_t size() const { return count_; }

    /** Lowest pending flag in [head, tail) by (position, operand
     *  slot) — the broadcast arbitration order. Word-level skips
     *  over empty spans. */
    bool
    first(uint64_t head, uint64_t tail, uint64_t &pos_out,
          unsigned &slot_out) const
    {
        const uint64_t mask = cap_ - 1;
        uint64_t pos = head;
        while (pos < tail) {
            const uint64_t phys = pos & mask;
            const uint64_t b = phys * 4;
            const unsigned sh = static_cast<unsigned>(b & 63);
            const uint64_t rest = words_[b >> 6] >> sh;
            // Ring slots this word segment covers without crossing
            // the physical wrap (nibbles never straddle words).
            const uint64_t span = std::min(
                {tail - pos, cap_ - phys, uint64_t{(64 - sh) / 4}});
            if (rest == 0) {
                pos += span;
                continue;
            }
            const uint64_t adv =
                static_cast<uint64_t>(std::countr_zero(rest)) / 4;
            if (adv >= span) {
                pos += span;
                continue;
            }
            pos_out = pos + adv;
            slot_out = static_cast<unsigned>(
                std::countr_zero((rest >> (adv * 4)) & 0xf));
            return true;
        }
        return false;
    }

    /** Visits every pending flag in [head, tail) in arbitration
     *  order; @p fn(pos, slot) returns false to stop early. Words
     *  are re-read after each visit, so @p fn may clear flags
     *  (including the visited one). */
    template <typename Fn>
    void
    forEach(uint64_t head, uint64_t tail, Fn fn) const
    {
        const uint64_t mask = cap_ - 1;
        uint64_t pos = head;
        while (pos < tail) {
            const uint64_t phys = pos & mask;
            const uint64_t b = phys * 4;
            const unsigned sh = static_cast<unsigned>(b & 63);
            const uint64_t rest = words_[b >> 6] >> sh;
            const uint64_t span = std::min(
                {tail - pos, cap_ - phys, uint64_t{(64 - sh) / 4}});
            if (rest == 0) {
                pos += span;
                continue;
            }
            const uint64_t adv =
                static_cast<uint64_t>(std::countr_zero(rest)) / 4;
            if (adv >= span) {
                pos += span;
                continue;
            }
            pos += adv;
            const uint64_t nb = (pos & mask) * 4;
            for (unsigned k = 0; k < 4; ++k)
                if ((words_[nb >> 6] >> ((nb & 63) + k)) & 1)
                    if (!fn(pos, k))
                        return;
            ++pos;
        }
    }

  private:
    std::vector<uint64_t> words_;
    uint64_t cap_ = 0;
    uint64_t count_ = 0;
};

class RingBitmap
{
  public:
    /** @param capacity ring capacity; must be a power of two. */
    void
    assign(uint64_t capacity)
    {
        cap_ = capacity;
        words_.assign((capacity + 63) / 64, 0);
        count_ = 0;
    }

    void
    set(uint64_t slot)
    {
        uint64_t &w = words_[slot >> 6];
        const uint64_t bit = uint64_t{1} << (slot & 63);
        if (!(w & bit)) {
            w |= bit;
            ++count_;
        }
    }

    void
    clear(uint64_t slot)
    {
        uint64_t &w = words_[slot >> 6];
        const uint64_t bit = uint64_t{1} << (slot & 63);
        if (w & bit) {
            w &= ~bit;
            --count_;
        }
    }

    bool test(uint64_t slot) const
    {
        return (words_[slot >> 6] >> (slot & 63)) & 1;
    }
    bool empty() const { return count_ == 0; }
    uint64_t size() const { return count_; }

    /** Visits every set slot at logical positions [head, tail) in
     *  ring (= seq) order; @p fn(pos) returns false to stop. Words
     *  are re-read after each visit, so @p fn may clear bits
     *  (including the visited one). */
    template <typename Fn>
    void
    forEach(uint64_t head, uint64_t tail, Fn fn) const
    {
        const uint64_t mask = cap_ - 1;
        uint64_t pos = head;
        while (pos < tail) {
            const uint64_t phys = pos & mask;
            const unsigned sh = static_cast<unsigned>(phys & 63);
            const uint64_t rest = words_[phys >> 6] >> sh;
            const uint64_t span = std::min(
                {tail - pos, cap_ - phys, uint64_t{64} - sh});
            if (rest == 0) {
                pos += span;
                continue;
            }
            const uint64_t adv =
                static_cast<uint64_t>(std::countr_zero(rest));
            if (adv >= span) {
                pos += span;
                continue;
            }
            pos += adv;
            if (!fn(pos))
                return;
            ++pos;
        }
    }

  private:
    std::vector<uint64_t> words_;
    uint64_t cap_ = 0;
    uint64_t count_ = 0;
};

} // namespace spt

#endif // SPT_CORE_TAINT_PLANES_H
