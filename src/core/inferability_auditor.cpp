#include "core/inferability_auditor.h"

#include <sstream>

namespace spt {

InferabilityAuditor::InferabilityAuditor(Core &core,
                                         SptEngine &engine)
    : core_(core), engine_(engine)
{
    // The zero register is public knowledge.
    known_regs_[PhysRegFile::kZeroReg] = 0;
}

void
InferabilityAuditor::learnReg(PhysReg reg, uint64_t value)
{
    if (reg != kNoPhysReg)
        known_regs_[reg] = value;
}

bool
InferabilityAuditor::knows(PhysReg reg) const
{
    return reg != kNoPhysReg && known_regs_.count(reg) > 0;
}

uint64_t
InferabilityAuditor::knownValue(PhysReg reg) const
{
    return known_regs_.at(reg);
}

bool
InferabilityAuditor::knowsBytes(uint64_t addr, unsigned n) const
{
    for (unsigned i = 0; i < n; ++i)
        if (!known_bytes_.count(addr + i))
            return false;
    return true;
}

uint64_t
InferabilityAuditor::knownBytes(uint64_t addr, unsigned n) const
{
    uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(known_bytes_.at(addr + i))
             << (8 * i);
    return v;
}

void
InferabilityAuditor::learnBytes(uint64_t addr, unsigned n,
                                uint64_t value)
{
    for (unsigned i = 0; i < n; ++i)
        known_bytes_[addr + i] =
            static_cast<uint8_t>(value >> (8 * i));
}

void
InferabilityAuditor::eraseBytes(uint64_t addr, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        known_bytes_.erase(addr + i);
}

/**
 * Applies committed-path stores to the attacker's memory knowledge,
 * in program order: a store with attacker-known address and data
 * publishes the bytes; any other store invalidates them (erasing
 * knowledge is always sound, so the ground-truth address may be
 * used for it).
 */
void
InferabilityAuditor::processStores()
{
    for (const DynInstPtr &st : core_.storeQueue()) {
        if (st->squashed || !st->at_vp || !st->addr_known)
            continue;
        if (stores_processed_.count(st->seq))
            continue;
        stores_processed_.insert(st->seq);
        if (knows(st->prs1) && knows(st->prs2))
            learnBytes(st->eff_addr, st->mem_bytes,
                       knownValue(st->prs2));
        else
            eraseBytes(st->eff_addr, st->mem_bytes);
    }
}

void
InferabilityAuditor::flag(uint64_t pc, SeqNum seq,
                          const Instruction &si,
                          const std::string &what)
{
    ++violations_;
    std::ostringstream os;
    os << "cycle " << core_.cycle() << " pc " << pc << " seq " << seq
       << " (" << toString(si) << "): " << what;
    log_.push_back(os.str());
}

void
InferabilityAuditor::dropStaleKnowledge()
{
    // A physical register being re-produced by an in-flight
    // instruction (not yet ready) no longer holds the value the
    // attacker learned; forget it until re-derived.
    for (const DynInstPtr &d : core_.rob()) {
        if (d->squashed || !d->has_dest)
            continue;
        if (!core_.physRegs().ready(d->prd)) {
            known_regs_.erase(d->prd);
            // Close audits of the previous generation of this
            // physical register: their value is gone.
            std::erase_if(pending_, [&](const Pending &p) {
                if (p.reg != d->prd || p.seq == d->seq)
                    return false;
                ++window_closed_;
                return true;
            });
        }
    }
}

void
InferabilityAuditor::seedKnowledge()
{
    PhysRegFile &prf = core_.physRegs();
    for (const DynInstPtr &d : core_.rob()) {
        if (d->squashed)
            continue;
        const auto *t = engine_.instTaint(d->seq);
        // Declassified transmitter/branch operands leak their
        // values non-speculatively.
        if (t && t->declassified) {
            if (d->num_srcs >= 1 && prf.ready(d->prs1) &&
                (d->isMem() || d->is_ctrl))
                learnReg(d->prs1, prf.value(d->prs1));
            if (d->num_srcs >= 2 && d->is_ctrl &&
                prf.ready(d->prs2))
                learnReg(d->prs2, prf.value(d->prs2));
        }
        // Immediate-class outputs are program text (Section 6.5).
        if (d->has_dest &&
            opTraits(d->si.op).untaint_class ==
                UntaintClass::kImmediate &&
            prf.ready(d->prd))
            learnReg(d->prd, prf.value(d->prd));
    }
}

bool
InferabilityAuditor::propagateOnce()
{
    PhysRegFile &prf = core_.physRegs();
    bool changed = false;
    for (const DynInstPtr &d : core_.rob()) {
        if (d->squashed)
            continue;
        const OpTraits &traits = opTraits(d->si.op);

        // Forward: compute outputs of pure ops from known inputs.
        if (d->has_dest && !d->is_load && !knows(d->prd)) {
            const bool in0 = d->num_srcs < 1 || knows(d->prs1);
            const bool in1 = d->num_srcs < 2 || knows(d->prs2);
            if (in0 && in1) {
                const uint64_t a =
                    d->num_srcs >= 1 ? knownValue(d->prs1) : 0;
                const uint64_t b =
                    d->num_srcs >= 2 ? knownValue(d->prs2) : 0;
                learnReg(d->prd,
                         evaluateOp(d->si, d->pc, a, b).value);
                changed = true;
            }
        }

        // Backward: invert MOV/ADD/SUB/XOR-class ops.
        if (d->has_dest && knows(d->prd) &&
            traits.untaint_class != UntaintClass::kOpaque &&
            !d->is_load) {
            const uint64_t out = knownValue(d->prd);
            const uint64_t imm =
                static_cast<uint64_t>(d->si.imm);
            auto learn_src = [&](PhysReg reg, uint64_t value) {
                if (!knows(reg)) {
                    learnReg(reg, value);
                    changed = true;
                }
            };
            switch (d->si.op) {
              case Opcode::kMov:
                learn_src(d->prs1, out);
                break;
              case Opcode::kNot:
                learn_src(d->prs1, ~out);
                break;
              case Opcode::kNeg:
                learn_src(d->prs1, static_cast<uint64_t>(
                                       -static_cast<int64_t>(out)));
                break;
              case Opcode::kAddi:
                learn_src(d->prs1, out - imm);
                break;
              case Opcode::kXori:
                learn_src(d->prs1, out ^ imm);
                break;
              case Opcode::kAdd:
                if (knows(d->prs1))
                    learn_src(d->prs2, out - knownValue(d->prs1));
                else if (knows(d->prs2))
                    learn_src(d->prs1, out - knownValue(d->prs2));
                break;
              case Opcode::kSub:
                if (knows(d->prs1))
                    learn_src(d->prs2, knownValue(d->prs1) - out);
                else if (knows(d->prs2))
                    learn_src(d->prs1, out + knownValue(d->prs2));
                break;
              case Opcode::kXor:
                if (knows(d->prs1))
                    learn_src(d->prs2, out ^ knownValue(d->prs1));
                else if (knows(d->prs2))
                    learn_src(d->prs1, out ^ knownValue(d->prs2));
                break;
              default:
                break;
            }
        }

        // Store-to-load forwarding with a known store value: the
        // engine only propagates untaint when STLPublic holds, i.e.
        // the attacker knows the pair; model the value flow.
        if (d->is_load && d->forwarded && !knows(d->prd)) {
            const DynInstPtr st =
                core_.findInst(d->forwarding_store);
            if (st && st->addr_known && knows(st->prs2)) {
                const uint64_t raw =
                    knownValue(st->prs2) >>
                    (8 * (d->eff_addr - st->eff_addr));
                learnReg(d->prd, finishLoad(d->si.op, raw));
                changed = true;
            }
        }

        // Memory: a load with an attacker-known address reads
        // attacker-known bytes (the ROB is public, so the attacker
        // sees which access happened); dually, a non-speculative
        // load with a known output reveals the bytes it read (the
        // shadow rules of Section 6.8, justified by Lemma 1).
        if (d->is_load && d->access_done && !d->forwarded &&
            knows(d->prs1)) {
            if (!knows(d->prd) &&
                !load_mem_checked_.count(d->seq)) {
                // One shot, at access time: byte knowledge is only
                // guaranteed fresh before younger stores land.
                load_mem_checked_.insert(d->seq);
                if (knowsBytes(d->eff_addr, d->mem_bytes)) {
                    learnReg(d->prd,
                             finishLoad(d->si.op,
                                        knownBytes(d->eff_addr,
                                                   d->mem_bytes)));
                    changed = true;
                }
            } else if (d->at_vp && knows(d->prd) &&
                       prf.ready(d->prd) &&
                       !knowsBytes(d->eff_addr, d->mem_bytes)) {
                learnBytes(d->eff_addr, d->mem_bytes,
                           core_.memory().read(d->eff_addr,
                                               d->mem_bytes));
                changed = true;
            }
        }
    }
    return changed;
}

void
InferabilityAuditor::auditUntaints()
{
    PhysRegFile &prf = core_.physRegs();
    for (const DynInstPtr &d : core_.rob()) {
        if (d->squashed)
            continue;
        const auto *t = engine_.instTaint(d->seq);
        if (!t)
            continue;
        // Untaints through store-to-load forwarding are out of the
        // auditor's model (it has no STLPublic reasoning); account
        // for the skip instead of dropping the event silently.
        if (t->stl_untaint && skip_seq_.insert(d->seq).second) {
            ++stl_skipped_;
            ++observed_;
            engine_.stats().inc("audit.stl_skipped");
        }
        if (skip_seq_.count(d->seq))
            continue;
        // Queue the destination slot once it is fully untainted and
        // architecturally ready; derivation inputs may lag by a few
        // cycles, so the verdict is deferred.
        if (!d->has_dest || t->dest.any() || !prf.ready(d->prd))
            continue;
        if (audited_slots_.count(d->seq))
            continue;
        audited_slots_.insert(d->seq);
        ++observed_;
        pending_.push_back({d->seq, d->pc, d->si, d->prd,
                            prf.value(d->prd),
                            core_.cycle() + 200});
    }
}

void
InferabilityAuditor::resolvePending()
{
    std::erase_if(pending_, [this](const Pending &p) {
        if (knows(p.reg)) {
            ++audited_;
            if (knownValue(p.reg) != p.expected) {
                ++mismatches_;
                std::ostringstream os;
                os << "attacker derived " << knownValue(p.reg)
                   << " but the register held " << p.expected;
                flag(p.pc, p.seq, p.si, os.str());
            }
            return true;
        }
        if (core_.cycle() > p.deadline) {
            ++audited_;
            flag(p.pc, p.seq, p.si,
                 "untainted destination not derivable by the "
                 "attacker within the deadline");
            return true;
        }
        return false;
    });
}

void
InferabilityAuditor::tick()
{
    dropStaleKnowledge();
    seedKnowledge();
    // Small in-flight graphs converge in a handful of passes.
    for (int i = 0; i < 8 && propagateOnce(); ++i) {
    }
    processStores();
    auditUntaints();
    resolvePending();
}

void
InferabilityAuditor::finalize()
{
    for (const Pending &p : pending_) {
        ++audited_;
        flag(p.pc, p.seq, p.si,
             "untainted destination never derived by the end of "
             "the run");
    }
    pending_.clear();
}

} // namespace spt
