/**
 * @file
 * Byte-granularity taint tracking for memory data (paper Sections
 * 6.8 and 7.5).
 *
 * All program memory starts tainted (nothing has been leaked yet).
 * Three implementations, matching Table 2's shadow options:
 *
 *  - NullTaintStore: memory data is always tainted (NoShadowL1).
 *  - ShadowL1: an in-core mirror of the L1D's set-associative
 *    geometry with one taint bit per byte per line. It holds no tags:
 *    the L1D's tag-check and eviction outputs drive it through the
 *    CacheObserver hooks, so an invalidated/filled line reverts to
 *    all-tainted.
 *  - ShadowMemory: the idealized variant that keeps a taint bit for
 *    every byte of memory (SPT {*, ShadowMem}).
 *
 * PackedShadowL1 / PackedShadowMemory are the bitplane repacks of
 * the latter two: the same geometry and stat behavior, but one taint
 * *bit* per byte packed into uint64 words instead of one byte per
 * byte. SptConfig::Storage selects packed (default) or legacy; the
 * storage-equivalence tests pin them bit-identical.
 */

#ifndef SPT_CORE_TAINT_STORE_H
#define SPT_CORE_TAINT_STORE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "mem/cache.h"

namespace spt {

class DataTaintStore
{
  public:
    virtual ~DataTaintStore() = default;

    /** Per-byte taint of [addr, addr+bytes): bit i = byte i tainted. */
    virtual uint8_t readTaint(uint64_t addr, unsigned bytes) const = 0;

    /** Overwrites the per-byte taint of a written range (store rule:
     *  the data operand's taint overwrites the bytes' taint). */
    virtual void writeTaint(uint64_t addr, unsigned bytes,
                            uint8_t byte_taint) = 0;

    /** Clears taint of a read range (load rule 2 of Section 6.8). */
    virtual void clearTaint(uint64_t addr, unsigned bytes) = 0;
};

/** Memory data is always tainted; writes are dropped. */
class NullTaintStore : public DataTaintStore
{
  public:
    uint8_t
    readTaint(uint64_t, unsigned bytes) const override
    {
        return static_cast<uint8_t>((1u << (bytes < 8 ? bytes : 8)) -
                                    1) |
               (bytes >= 8 ? 0x80 : 0);
    }
    void writeTaint(uint64_t, unsigned, uint8_t) override {}
    void clearTaint(uint64_t, unsigned) override {}
};

/** Shadow L1: taint bits for L1D-resident bytes only. */
class ShadowL1 : public DataTaintStore, public CacheObserver
{
  public:
    /** Mirrors the geometry of @p l1d and registers as its
     *  observer. */
    explicit ShadowL1(SetAssocCache &l1d);

    uint8_t readTaint(uint64_t addr, unsigned bytes) const override;
    void writeTaint(uint64_t addr, unsigned bytes,
                    uint8_t byte_taint) override;
    void clearTaint(uint64_t addr, unsigned bytes) override;

    // CacheObserver: tag-check / eviction outputs of the L1D.
    void onFill(uint64_t line_addr, unsigned set,
                unsigned way) override;
    void onEvict(uint64_t line_addr, unsigned set,
                 unsigned way) override;

    StatSet &stats() { return stats_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct Entry {
        bool valid = false;
        uint64_t line_addr = 0;
        /** Bit b set = byte b of the line is tainted. */
        std::vector<uint8_t> taint; // line_bytes entries (1 = tainted)
    };

    SetAssocCache &l1d_;
    unsigned line_bytes_;
    std::vector<Entry> entries_;
    StatSet stats_;

    /** Entry holding @p addr's line, or nullptr if not resident. */
    Entry *find(uint64_t addr);
    const Entry *find(uint64_t addr) const;
};

/** Bitplane repack of ShadowL1: one taint *bit* per line byte in
 *  uint64 words. Same geometry, straddle semantics, and stat names
 *  as the byte-vector original. */
class PackedShadowL1 : public DataTaintStore, public CacheObserver
{
  public:
    explicit PackedShadowL1(SetAssocCache &l1d);

    uint8_t readTaint(uint64_t addr, unsigned bytes) const override;
    void writeTaint(uint64_t addr, unsigned bytes,
                    uint8_t byte_taint) override;
    void clearTaint(uint64_t addr, unsigned bytes) override;

    void onFill(uint64_t line_addr, unsigned set,
                unsigned way) override;
    void onEvict(uint64_t line_addr, unsigned set,
                 unsigned way) override;

    StatSet &stats() { return stats_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct Entry {
        bool valid = false;
        uint64_t line_addr = 0;
    };

    SetAssocCache &l1d_;
    unsigned line_bytes_;
    unsigned words_per_line_;
    std::vector<Entry> entries_;
    /** Bit b of line word w = byte w*64+b tainted; laid out
     *  contiguously, entry i at [i * words_per_line_, ...). */
    std::vector<uint64_t> taint_;
    StatSet stats_;

    Entry *find(uint64_t addr);
    const Entry *find(uint64_t addr) const;
    uint64_t *lineWords(const Entry &e)
    {
        return taint_.data() +
               (&e - entries_.data()) * words_per_line_;
    }
    const uint64_t *lineWords(const Entry &e) const
    {
        return taint_.data() +
               (&e - entries_.data()) * words_per_line_;
    }
    void fillLine(unsigned set, unsigned way);
};

/** Idealized whole-memory byte taint (sparse: pages of "untainted"
 *  flags; absent page = fully tainted). */
class ShadowMemory : public DataTaintStore
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    uint8_t readTaint(uint64_t addr, unsigned bytes) const override;
    void writeTaint(uint64_t addr, unsigned bytes,
                    uint8_t byte_taint) override;
    void clearTaint(uint64_t addr, unsigned bytes) override;

    size_t residentPages() const { return pages_.size(); }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    /** 1 = untainted (memory defaults to tainted). */
    std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;

    bool untainted(uint64_t addr) const;
    void setUntainted(uint64_t addr, bool untainted);
};

/** Bitplane repack of ShadowMemory: one "untainted" *bit* per byte,
 *  64 words per 4 KiB page; absent page = fully tainted. */
class PackedShadowMemory : public DataTaintStore
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    uint8_t readTaint(uint64_t addr, unsigned bytes) const override;
    void writeTaint(uint64_t addr, unsigned bytes,
                    uint8_t byte_taint) override;
    void clearTaint(uint64_t addr, unsigned bytes) override;

    size_t residentPages() const { return pages_.size(); }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    /** Bit set = untainted (memory defaults to tainted). */
    std::unordered_map<uint64_t, std::vector<uint64_t>> pages_;

    bool untainted(uint64_t addr) const;
    void setUntainted(uint64_t addr, bool untainted);
};

} // namespace spt

#endif // SPT_CORE_TAINT_STORE_H
