/**
 * @file
 * Constructs a SecurityEngine from a Table-2 configuration.
 */

#ifndef SPT_CORE_ENGINE_FACTORY_H
#define SPT_CORE_ENGINE_FACTORY_H

#include <memory>
#include <string>

#include "core/spt_engine.h"
#include "uarch/security_engine.h"
#include "uarch/types.h"

namespace spt {

struct EngineConfig {
    ProtectionScheme scheme = ProtectionScheme::kSpt;
    /** SPT only. */
    SptConfig spt;
};

std::unique_ptr<SecurityEngine> makeEngine(const EngineConfig &cfg);

/** Human-readable configuration name, Table-2 style (e.g.
 *  "SPT{Bwd,ShadowL1}"). */
std::string engineConfigName(const EngineConfig &cfg);

} // namespace spt

#endif // SPT_CORE_ENGINE_FACTORY_H
