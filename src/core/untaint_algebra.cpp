#include "core/untaint_algebra.h"

#include "common/logging.h"

namespace spt {

bool
gateEval(GateOp op, bool a, bool b)
{
    switch (op) {
      case GateOp::kAnd: return a && b;
      case GateOp::kOr:  return a || b;
      case GateOp::kXor: return a != b;
      case GateOp::kNot: return !a;
      case GateOp::kBuf: return a;
    }
    SPT_PANIC("bad gate op");
}

Wire
gateForward(GateOp op, Wire a, Wire b)
{
    Wire out;
    out.value = gateEval(op, a.value, b.value);
    switch (op) {
      case GateOp::kAnd:
        // An untainted 0 input forces the output to 0 regardless of
        // the other (possibly tainted) input.
        if ((!a.tainted && !a.value) || (!b.tainted && !b.value))
            out.tainted = false;
        else
            out.tainted = a.tainted || b.tainted;
        break;
      case GateOp::kOr:
        // Dually, an untainted 1 input forces the output to 1.
        if ((!a.tainted && a.value) || (!b.tainted && b.value))
            out.tainted = false;
        else
            out.tainted = a.tainted || b.tainted;
        break;
      case GateOp::kXor:
        // No value of one input determines the output alone.
        out.tainted = a.tainted || b.tainted;
        break;
      case GateOp::kNot:
      case GateOp::kBuf:
        out.tainted = a.tainted;
        break;
    }
    return out;
}

BackwardResult
gateBackward(GateOp op, Wire a, Wire b, bool out_value)
{
    BackwardResult r;
    switch (op) {
      case GateOp::kAnd:
        if (out_value) {
            // 1 = a & b => a = b = 1.
            r.untaint_a = a.tainted;
            r.untaint_b = b.tainted;
        } else {
            // 0 = a & b: only deducible if the other input is an
            // untainted 1.
            if (!a.tainted && a.value)
                r.untaint_b = b.tainted;
            if (!b.tainted && b.value)
                r.untaint_a = a.tainted;
        }
        break;
      case GateOp::kOr:
        if (!out_value) {
            // 0 = a | b => a = b = 0.
            r.untaint_a = a.tainted;
            r.untaint_b = b.tainted;
        } else {
            if (!a.tainted && !a.value)
                r.untaint_b = b.tainted;
            if (!b.tainted && !b.value)
                r.untaint_a = a.tainted;
        }
        break;
      case GateOp::kXor:
        // Knowing the output and one input determines the other.
        if (!a.tainted)
            r.untaint_b = b.tainted;
        if (!b.tainted)
            r.untaint_a = a.tainted;
        break;
      case GateOp::kNot:
      case GateOp::kBuf:
        r.untaint_a = a.tainted;
        break;
    }
    return r;
}

void
GateGraph::checkWire(int wire) const
{
    SPT_ASSERT(wire >= 0 &&
                   static_cast<size_t>(wire) < wires_.size(),
               "wire id out of range: " << wire);
}

int
GateGraph::addInput(bool value, bool tainted)
{
    wires_.push_back({value, tainted});
    return static_cast<int>(wires_.size()) - 1;
}

int
GateGraph::addGate(GateOp op, int a, int b)
{
    checkWire(a);
    const bool unary = op == GateOp::kNot || op == GateOp::kBuf;
    if (!unary)
        checkWire(b);
    const Wire wb = unary ? Wire{} : wires_[static_cast<size_t>(b)];
    const Wire out =
        gateForward(op, wires_[static_cast<size_t>(a)], wb);
    wires_.push_back(out);
    const int out_id = static_cast<int>(wires_.size()) - 1;
    gates_.push_back({op, a, unary ? -1 : b, out_id});
    return out_id;
}

void
GateGraph::declassify(int wire)
{
    checkWire(wire);
    wires_[static_cast<size_t>(wire)].tainted = false;
}

unsigned
GateGraph::propagate()
{
    unsigned untainted = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Gate &g : gates_) {
            Wire &a = wires_[static_cast<size_t>(g.a)];
            Wire b_dummy{};
            Wire &b = g.b >= 0 ? wires_[static_cast<size_t>(g.b)]
                               : b_dummy;
            Wire &out = wires_[static_cast<size_t>(g.out)];
            // Forward: re-evaluate the output taint from inputs.
            const Wire fwd = gateForward(g.op, a, b);
            if (out.tainted && !fwd.tainted) {
                out.tainted = false;
                ++untainted;
                changed = true;
            }
            // Backward: from a declassified output.
            if (!out.tainted) {
                const BackwardResult r =
                    gateBackward(g.op, a, b, out.value);
                if (r.untaint_a && a.tainted) {
                    a.tainted = false;
                    ++untainted;
                    changed = true;
                }
                if (g.b >= 0 && r.untaint_b && b.tainted) {
                    b.tainted = false;
                    ++untainted;
                    changed = true;
                }
            }
        }
    }
    return untainted;
}

bool
GateGraph::tainted(int wire) const
{
    checkWire(wire);
    return wires_[static_cast<size_t>(wire)].tainted;
}

bool
GateGraph::value(int wire) const
{
    checkWire(wire);
    return wires_[static_cast<size_t>(wire)].value;
}

} // namespace spt
