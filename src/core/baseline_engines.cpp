#include "core/baseline_engines.h"

#include "uarch/core.h"

namespace spt {

void
SttEngine::attach(Core &core)
{
    SecurityEngine::attach(core);
    // Architectural state present before execution is, by STT's
    // definition, non-speculatively accessed: no roots.
    root_.assign(core.physRegs().numRegs(), 0);
}

void
SttEngine::onRename(DynInst &d)
{
    if (!d.has_dest)
        return;
    if (d.is_load) {
        // Access instruction: its own output is the taint root.
        root_[d.prd] = d.seq;
        return;
    }
    SeqNum root = 0;
    if (d.num_srcs >= 1 && rootLive(root_[d.prs1]))
        root = root_[d.prs1];
    if (d.num_srcs >= 2 && rootLive(root_[d.prs2]) &&
        root_[d.prs2] > root)
        root = root_[d.prs2];
    root_[d.prd] = root;
}

bool
SttEngine::rootLive(SeqNum root) const
{
    if (root == 0)
        return false;
    const DynInstPtr d = core_->findInst(root);
    // Retired or squashed roots no longer taint; a root that reached
    // the VP s-untaints all dependents in the same cycle (STT's
    // single-cycle untaint).
    return d != nullptr && !d->at_vp;
}

bool
SttEngine::regTainted(PhysReg reg) const
{
    return reg != kNoPhysReg && rootLive(root_[reg]);
}

uint64_t
SttEngine::taintedRegCount() const
{
    uint64_t n = 0;
    for (std::size_t reg = 0; reg < root_.size(); ++reg)
        if (regTainted(static_cast<PhysReg>(reg)))
            ++n;
    return n;
}

bool
SttEngine::mayAccessMemory(const DynInst &d) const
{
    if (d.at_vp)
        return true;
    const bool blocked = regTainted(d.prs1);
    if (blocked)
        stats_.inc("policy.mem_blocked_checks");
    return !blocked;
}

bool
SttEngine::mayResolveBranch(const DynInst &d) const
{
    if (d.at_vp)
        return true;
    if (d.num_srcs >= 1 && regTainted(d.prs1))
        return false;
    if (d.num_srcs >= 2 && regTainted(d.prs2))
        return false;
    return true;
}

bool
SttEngine::maySquashMemViolation(const DynInst &d) const
{
    if (d.at_vp)
        return true;
    if (regTainted(d.prs1))
        return false;
    for (const DynInstPtr &st : core_->storeQueue()) {
        if (st->squashed || st->seq > d.seq)
            continue;
        if (!st->at_vp && regTainted(st->prs1))
            return false;
    }
    return true;
}

bool
SttEngine::transmitPublic(const DynInst &d, DelayKind kind) const
{
    // Stats-free mirror of the policy gates (the checker's ground
    // truth; STT has no mutation modes, so gate == claim).
    switch (kind) {
      case DelayKind::kMemAccess:
        return d.at_vp || !regTainted(d.prs1);
      case DelayKind::kBranchResolve:
        return mayResolveBranch(d);
      case DelayKind::kMemOrderSquash:
        return maySquashMemViolation(d);
    }
    return true;
}

bool
SttEngine::stlForwardingPublic(const DynInst &load,
                               const DynInst &store) const
{
    // The forwarding decision is public when the addresses of the
    // load and of every store between the source and the load are
    // s-untainted.
    if (!load.at_vp && regTainted(load.prs1))
        return false;
    for (const DynInstPtr &st : core_->storeQueue()) {
        if (st->squashed || st->seq < store.seq ||
            st->seq >= load.seq)
            continue;
        if (!st->at_vp && regTainted(st->prs1))
            return false;
    }
    return true;
}

} // namespace spt
