#include "workloads/workloads.h"

#include "common/logging.h"

namespace spt {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> w;
        w.push_back({"pchase", "spec-like", "mcf",
                     makePointerChase()});
        w.push_back({"interp", "spec-like", "perlbench",
                     makeInterpreter()});
        w.push_back({"hashtab", "spec-like", "gcc",
                     makeHashTable()});
        w.push_back({"treesearch", "spec-like", "deepsjeng",
                     makeTreeSearch()});
        w.push_back({"lzmatch", "spec-like", "xz", makeLzMatch()});
        w.push_back({"eventheap", "spec-like", "omnetpp",
                     makeEventHeap()});
        w.push_back({"bstlookup", "spec-like", "xalancbmk",
                     makeBstLookup()});
        w.push_back({"stream", "spec-like", "lbm",
                     makeStreamTriad()});
        w.push_back({"force", "spec-like", "namd",
                     makeForceCompute()});
        w.push_back({"spmv", "spec-like", "parest", makeSpmv()});
        w.push_back({"stencil", "spec-like", "fotonik3d",
                     makeStencil()});
        w.push_back({"matmul", "spec-like", "bwaves",
                     makeMatmul()});
        w.push_back({"ct-chacha20", "constant-time", "",
                     makeChaCha20()});
        w.push_back({"ct-aes-bitslice", "constant-time", "",
                     makeBitsliceAes()});
        w.push_back({"ct-djbsort", "constant-time", "",
                     makeDjbsort(512)});
        return w;
    }();
    return workloads;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return w;
    SPT_FATAL("unknown workload: " << name);
}

std::vector<std::string>
specWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.category == "spec-like")
            names.push_back(w.name);
    return names;
}

std::vector<std::string>
ctWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        if (w.category == "constant-time")
            names.push_back(w.name);
    return names;
}

} // namespace spt
