/**
 * @file
 * Workload registry.
 *
 * The paper evaluates SPEC CPU2017 (licensed; not redistributable)
 * plus three data-oblivious kernels. This suite substitutes twelve
 * synthetic kernels spanning the behavior classes that drive the
 * paper's per-benchmark variance — branch-MPKI, load-to-use
 * criticality, memory-level parallelism, and working-set size — and
 * reimplements the three constant-time kernels (bitslice-AES-style,
 * ChaCha20, djbsort-style sorting network) in TRISC.
 *
 * Every workload leaves a checksum in a7 (x17) so functional
 * correctness is verifiable, and uses fixed-seed inputs so results
 * are reproducible bit-for-bit.
 */

#ifndef SPT_WORKLOADS_WORKLOADS_H
#define SPT_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

#include "isa/program.h"

namespace spt {

/** Register (x17 / a7) holding each workload's result checksum. */
constexpr unsigned kChecksumReg = 17;

struct Workload {
    std::string name;
    std::string category; ///< "spec-like" or "constant-time"
    /** Which SPEC2017 benchmark's behavior class it substitutes
     *  (empty for the constant-time kernels). */
    std::string substitutes;
    Program program;
};

/** All workloads (12 spec-like + 3 constant-time), built lazily once
 *  with default sizes. */
const std::vector<Workload> &allWorkloads();

/** Lookup by name; throws FatalError if unknown. */
const Workload &workloadByName(const std::string &name);

/** Name lists for iteration. */
std::vector<std::string> specWorkloadNames();
std::vector<std::string> ctWorkloadNames();

// --- individual generators (sizes tunable for tests) -----------------

/** mcf: pointer-chasing over a randomized linked list. */
Program makePointerChase(unsigned nodes = 8192, unsigned passes = 4);
/** perlbench: bytecode interpreter with indirect dispatch. */
Program makeInterpreter(unsigned ops = 15000);
/** gcc: open-addressing hash table insert/lookup. */
Program makeHashTable(unsigned inserts = 4000, unsigned lookups = 4000);
/** deepsjeng: recursive game-tree search (calls/returns). */
Program makeTreeSearch(unsigned depth = 8, unsigned branch = 3);
/** xz: LZ-style match finder over a byte stream. */
Program makeLzMatch(unsigned positions = 8000);
/** omnetpp: binary-heap event queue churn. */
Program makeEventHeap(unsigned heap_size = 8192, unsigned ops = 1500);
/** xalancbmk: binary-search-tree lookups. */
Program makeBstLookup(unsigned nodes = 16384, unsigned lookups = 3000);
/** lbm: streaming triad over large arrays. */
Program makeStreamTriad(unsigned elems = 16384, unsigned passes = 2);
/** namd: multiply-heavy fixed-point force computation. */
Program makeForceCompute(unsigned pairs = 8192, unsigned passes = 2);
/** parest: CSR sparse matrix-vector product. The gather vectors
 *  exceed the L1D so shadow-L1 taint retention is partial, as in
 *  the paper's SPEC-scale footprints. */
Program makeSpmv(unsigned rows = 4096, unsigned nnz_per_row = 6,
                 unsigned passes = 2);
/** fotonik3d/bwaves: 3-point stencil sweeps. */
Program makeStencil(unsigned elems = 16384, unsigned passes = 2);
/** bwaves: blocked dense matrix multiply. */
Program makeMatmul(unsigned n = 32);

/** Constant-time kernels. */
Program makeChaCha20(unsigned blocks = 120);
Program makeBitsliceAes(unsigned blocks = 100, unsigned rounds = 10);
Program makeDjbsort(unsigned elems = 256);

} // namespace spt

#endif // SPT_WORKLOADS_WORKLOADS_H
