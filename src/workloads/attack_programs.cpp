#include "workloads/attack_programs.h"

#include <sstream>

#include "isa/assembler.h"

namespace spt {

namespace {

constexpr uint64_t kVictimData = 0x100000;
constexpr uint64_t kProbeBase = 0x400000;
constexpr unsigned kProbeStride = 64;
constexpr uint8_t kSecret = 42;
constexpr uint8_t kTrained = 7;

} // namespace

AttackProgram
makeSpectreV1()
{
    // Data layout:
    //   0x100000: array1_size (= 16)
    //   0x100008: array1, 16 bytes, all kTrained
    //   0x100100: the secret byte (out of bounds of array1)
    // Malicious index: 0x100100 - 0x100008 = 248.
    std::ostringstream os;
    os << R"(
    .text
main:
    li   s0, )" << kVictimData << R"(
    li   s1, )" << (kVictimData + 8) << R"(
    li   s2, )" << kProbeBase << R"(
    # Two train-then-attack rounds: the first attack's transient
    # execution pulls the secret's line into the cache (its cold
    # miss outlasts the transient window); after re-training the
    # bounds check, the second attack reads the secret as an L1 hit
    # and leaks it through the probe array before the check
    # resolves.
    li   s5, 2
round:
    li   s3, 40
    li   s4, 0
train:
    mv   a0, s4
    call victim
    addi s4, s4, 1
    andi s4, s4, 15
    addi s3, s3, -1
    bnez s3, train
    li   a0, 248
    call victim
    addi s5, s5, -1
    bnez s5, round
    halt
victim:
    # Bounds check with a slow-to-resolve size (divide chain) so
    # the transient window is wide open.
    ld   t0, 0(s0)
    li   t1, 1
    div  t0, t0, t1
    div  t0, t0, t1
    div  t0, t0, t1
    div  t0, t0, t1
    div  t0, t0, t1
    div  t0, t0, t1
    bgeu a0, t0, oob
    add  t2, s1, a0
    lbu  t3, 0(t2)
    slli t4, t3, 6
    add  t4, t4, s2
    lbu  t5, 0(t4)
oob:
    ret
)";
    AttackProgram ap;
    ap.program = assemble(os.str());
    std::vector<uint8_t> data;
    data.push_back(16); // array1_size (low byte; rest zero)
    for (int i = 0; i < 7; ++i)
        data.push_back(0);
    for (int i = 0; i < 16; ++i)
        data.push_back(kTrained); // array1 contents
    ap.program.addData(kVictimData, data);
    ap.program.addData(kVictimData + 0x100, {kSecret});
    // Only the out-of-bounds byte is secret; array1 and its size
    // are attacker-visible.
    ap.program.markSecret(kVictimData + 0x100, 1);
    ap.probe_base = kProbeBase;
    ap.probe_stride = kProbeStride;
    ap.secret = kSecret;
    ap.trained_value = kTrained;
    return ap;
}

AttackProgram
makeCtVictim()
{
    // Data layout: 0x100008 holds the secret word. The victim's
    // constant-time section reads it into s1 and never transmits it.
    // The dispatch function's indirect jump is BTB-trained to the
    // transmit gadget while s1 still holds a public 0, then invoked
    // with a benign architectural target once s1 holds the secret.
    std::ostringstream os;
    os << R"(
    .text
main:
    li   s2, )" << kProbeBase << R"(
    li   s1, 0
    li   s3, 30
    la   t5, gadget
train:
    mv   a0, t5
    call dispatch
    addi s3, s3, -1
    bnez s3, train
    # --- constant-time section: load and process the secret -----
    li   t0, )" << (kVictimData + 8) << R"(
    ld   s1, 0(t0)
    xor  s4, s1, s1
    addi s4, s4, 1
    slli s5, s1, 3
    add  s4, s4, s5
    # --- attack: architecturally benign indirect call ------------
    la   t6, benign
    mv   a0, t6
    call dispatch
    halt
dispatch:
    li   t1, 1
    div  a0, a0, t1
    div  a0, a0, t1
    div  a0, a0, t1
    jalr x0, a0, 0
gadget:
    slli t2, s1, 6
    add  t2, t2, s2
    lbu  t3, 0(t2)
    ret
benign:
    ret
)";
    AttackProgram ap;
    ap.program = assemble(os.str());
    ap.program.addData(kVictimData, std::vector<uint8_t>(8, 0));
    ap.program.addData(kVictimData + 8,
                       {kSecret, 0, 0, 0, 0, 0, 0, 0});
    ap.program.markSecret(kVictimData + 8, 8);
    ap.probe_base = kProbeBase;
    ap.probe_stride = kProbeStride;
    ap.secret = kSecret;
    ap.trained_value = 0;
    return ap;
}

} // namespace spt
