/**
 * @file
 * The fixed workload/model matrix behind the untaint golden-stats
 * invariance test.
 *
 * The SPT engine's untaint-event counters are the numbers the
 * paper's Figures 8-9 are built from, so performance reworks of the
 * per-cycle taint machinery must not change them. This suite pins a
 * set of reduced-size workloads (small enough for the test tier, big
 * enough to exercise declassification, forward/backward rules, STL
 * forwarding, and the shadow L1) under SPT{Bwd,ShadowL1}.
 *
 * `tools/record_golden_stats` regenerates
 * `tests/golden_untaint_stats.inc`; `tests/test_golden_stats.cpp`
 * asserts against it. Re-record only when a semantic change is
 * intended, and justify the delta in the PR description.
 */

#ifndef SPT_WORKLOADS_GOLDEN_SUITE_H
#define SPT_WORKLOADS_GOLDEN_SUITE_H

#include <string>
#include <vector>

#include "isa/program.h"
#include "uarch/types.h"

namespace spt {

struct GoldenCase {
    std::string name;      ///< stable id, "<workload>/<model>"
    Program program;
    AttackModel model;
};

/** The fixed case matrix (built once, deterministic programs). */
const std::vector<GoldenCase> &goldenSuite();

} // namespace spt

#endif // SPT_WORKLOADS_GOLDEN_SUITE_H
