/**
 * @file
 * Penetration-test programs (paper Section 9.1): a Spectre V1
 * bounds-bypass victim and a constant-time-code victim attacked via
 * BTB mistraining (the class of attack STT does not block because
 * the secret is non-speculatively accessed).
 *
 * Each program embeds its own attacker-controlled trainer and the
 * transient gadget; the leak oracle is the simulated cache state:
 * after the run, the harness checks whether the probe-array line
 * indexed by the secret became cached.
 */

#ifndef SPT_WORKLOADS_ATTACK_PROGRAMS_H
#define SPT_WORKLOADS_ATTACK_PROGRAMS_H

#include "isa/program.h"

namespace spt {

struct AttackProgram {
    Program program;
    uint64_t probe_base;     ///< base of the probe array
    unsigned probe_stride;   ///< bytes per probe slot (a cache line)
    uint8_t secret;          ///< the value the attack tries to leak
    uint8_t trained_value;   ///< value legitimately leaked in training
};

/**
 * Spectre V1: `if (i < size) leak(probe[array1[i] * 64])`, with the
 * bounds check mistrained and the size load slowed by a divide chain
 * to open the transient window. The out-of-bounds index points at a
 * secret byte.
 */
AttackProgram makeSpectreV1();

/**
 * Constant-time victim: a secret is loaded *non-speculatively* and
 * processed obliviously; a mistrained indirect jump (BTB injection)
 * transiently redirects execution into a transmit gadget that leaks
 * the secret-holding register. STT does not protect this (the secret
 * is non-speculatively accessed data); SPT does.
 */
AttackProgram makeCtVictim();

} // namespace spt

#endif // SPT_WORKLOADS_ATTACK_PROGRAMS_H
