/**
 * @file
 * Constant-time (data-oblivious) kernels, mirroring the paper's
 * AES-bitslice / ChaCha20 / djbsort benchmarks: secrets flow only
 * through data-independent arithmetic — never into load/store
 * addresses or branch predicates.
 */

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/workloads.h"

namespace spt {

namespace {

constexpr uint64_t kBaseA = 0x100000;
constexpr uint64_t kBaseB = 0x400000;

/** Emits a masked 32-bit rotate-left of register @p x by @p n, using
 *  @p tmp1/@p tmp2 as scratch and @p mask holding 0xffffffff. */
void
emitRotl32(std::ostringstream &os, const std::string &x, unsigned n,
           const std::string &tmp1, const std::string &tmp2,
           const std::string &mask)
{
    os << "    slli " << tmp1 << ", " << x << ", " << n << "\n"
       << "    srli " << tmp2 << ", " << x << ", " << (32 - n) << "\n"
       << "    or   " << x << ", " << tmp1 << ", " << tmp2 << "\n"
       << "    and  " << x << ", " << x << ", " << mask << "\n";
}

/** One ChaCha20 quarter round on state registers a,b,c,d. */
void
emitQuarterRound(std::ostringstream &os, const std::string &a,
                 const std::string &b, const std::string &c,
                 const std::string &d)
{
    const std::string t1 = "t4", t2 = "t5", mask = "a6";
    auto add32 = [&](const std::string &x, const std::string &y) {
        os << "    add  " << x << ", " << x << ", " << y << "\n"
           << "    and  " << x << ", " << x << ", " << mask << "\n";
    };
    auto xorr = [&](const std::string &x, const std::string &y) {
        os << "    xor  " << x << ", " << x << ", " << y << "\n";
    };
    add32(a, b);
    xorr(d, a);
    emitRotl32(os, d, 16, t1, t2, mask);
    add32(c, d);
    xorr(b, c);
    emitRotl32(os, b, 12, t1, t2, mask);
    add32(a, b);
    xorr(d, a);
    emitRotl32(os, d, 8, t1, t2, mask);
    add32(c, d);
    xorr(b, c);
    emitRotl32(os, b, 7, t1, t2, mask);
}

} // namespace

Program
makeChaCha20(unsigned blocks)
{
    // State word -> register mapping.
    const std::string v[16] = {"s0", "s1", "s2",  "s3", "s4", "s5",
                               "s6", "s7", "s8",  "s9", "s10",
                               "s11", "t0", "t1", "t2", "t3"};
    // Initial state: "expand 32-byte k" constants, key, counter,
    // nonce — laid out at kBaseA as sixteen 32-bit words.
    Rng rng(0xc4ac4a20);
    std::vector<uint64_t> init;
    const uint32_t sigma[4] = {0x61707865, 0x3320646e, 0x79622d32,
                               0x6b206574};
    for (uint32_t c : sigma)
        init.push_back(c);
    for (int i = 0; i < 8; ++i) // key
        init.push_back(rng.next() & 0xffffffff);
    init.push_back(0);          // counter
    for (int i = 0; i < 3; ++i) // nonce
        init.push_back(rng.next() & 0xffffffff);

    std::ostringstream os;
    os << "    .text\n"
       << "    li   a2, " << kBaseA << "\n"  // init state
       << "    li   a3, " << kBaseB << "\n"  // keystream out
       << "    li   a4, " << blocks << "\n"  // block counter down
       << "    li   a5, 0\n"                 // block number
       << "    li   a6, 0xffffffff\n"
       << "    li   a7, 0\n"
       << "block:\n";
    // Load the initial state (64-bit slots for simplicity).
    for (int i = 0; i < 16; ++i)
        os << "    ld   " << v[i] << ", " << (8 * i) << "(a2)\n";
    // Per-block counter in state word 12.
    os << "    add  t0, t0, a5\n"
       << "    and  t0, t0, a6\n"
       << "    li   a0, 10\n"
       << "rounds:\n";
    // Column rounds.
    emitQuarterRound(os, v[0], v[4], v[8], v[12]);
    emitQuarterRound(os, v[1], v[5], v[9], v[13]);
    emitQuarterRound(os, v[2], v[6], v[10], v[14]);
    emitQuarterRound(os, v[3], v[7], v[11], v[15]);
    // Diagonal rounds.
    emitQuarterRound(os, v[0], v[5], v[10], v[15]);
    emitQuarterRound(os, v[1], v[6], v[11], v[12]);
    emitQuarterRound(os, v[2], v[7], v[8], v[13]);
    emitQuarterRound(os, v[3], v[4], v[9], v[14]);
    os << "    addi a0, a0, -1\n"
       << "    bnez a0, rounds\n";
    // Feed-forward add of the initial state, store the keystream,
    // fold into the checksum.
    for (int i = 0; i < 16; ++i) {
        os << "    ld   t4, " << (8 * i) << "(a2)\n"
           << "    add  " << v[i] << ", " << v[i] << ", t4\n"
           << "    and  " << v[i] << ", " << v[i] << ", a6\n"
           << "    sd   " << v[i] << ", " << (8 * i) << "(a3)\n"
           << "    add  a7, a7, " << v[i] << "\n";
    }
    os << "    addi a3, a3, 128\n"
       << "    addi a5, a5, 1\n"
       << "    addi a4, a4, -1\n"
       << "    bnez a4, block\n"
       << "    halt\n";

    Program p = assemble(os.str());
    p.addData64(kBaseA, init);
    // The key (state words 4..11, one 64-bit slot each) is the
    // secret input; constants, counter, and nonce are public.
    p.markSecret(kBaseA + 4 * 8, 8 * 8);
    return p;
}

Program
makeBitsliceAes(unsigned blocks, unsigned rounds)
{
    // Eight 64-bit bitslice planes in s0..s7; a fixed pseudo-random
    // nonlinear gate network (the shape of a bitsliced SBox circuit)
    // followed by a linear diffusion layer of XORs and rotations.
    Rng rng(0xae5ae5);
    const std::string plane[8] = {"s0", "s1", "s2", "s3",
                                  "s4", "s5", "s6", "s7"};

    std::ostringstream os;
    os << "    .text\n"
       << "    li   a2, " << kBaseA << "\n"
       << "    li   a3, " << kBaseB << "\n"
       << "    li   a4, " << blocks << "\n"
       << "    li   a7, 0\n"
       << "block:\n";
    for (int i = 0; i < 8; ++i)
        os << "    ld   " << plane[i] << ", " << (8 * i)
           << "(a2)\n";
    os << "    li   a0, " << rounds << "\n"
       << "round:\n";
    // Nonlinear layer: 24 two-input gates with fixed wiring.
    const char *gates[3] = {"and", "or", "xor"};
    for (int g = 0; g < 24; ++g) {
        const auto &x = plane[rng.nextBelow(8)];
        const auto &y = plane[rng.nextBelow(8)];
        const auto &z = plane[rng.nextBelow(8)];
        const char *op = gates[rng.nextBelow(3)];
        os << "    " << op << "  t4, " << x << ", " << y << "\n"
           << "    xor  " << z << ", " << z << ", t4\n";
    }
    // Linear layer: rotate-and-xor diffusion across planes.
    for (int i = 0; i < 8; ++i) {
        const unsigned r = 1 + static_cast<unsigned>(
                                   rng.nextBelow(63));
        const auto &x = plane[i];
        const auto &y = plane[(i + 1) % 8];
        os << "    slli t4, " << y << ", " << r << "\n"
           << "    srli t5, " << y << ", " << (64 - r) << "\n"
           << "    or   t4, t4, t5\n"
           << "    xor  " << x << ", " << x << ", t4\n";
    }
    os << "    not  s0, s0\n"
       << "    addi a0, a0, -1\n"
       << "    bnez a0, round\n";
    for (int i = 0; i < 8; ++i) {
        os << "    sd   " << plane[i] << ", " << (8 * i)
           << "(a3)\n"
           << "    add  a7, a7, " << plane[i] << "\n";
    }
    // Next input block: advance the input pointer through a 64-block
    // ring so the planes keep changing.
    os << "    addi a2, a2, 64\n"
       << "    andi t4, a4, 63\n"
       << "    bnez t4, no_wrap\n"
       << "    li   a2, " << kBaseA << "\n"
       << "no_wrap:\n"
       << "    addi a3, a3, 64\n"
       << "    addi a4, a4, -1\n"
       << "    bnez a4, block\n"
       << "    halt\n";

    Program p = assemble(os.str());
    std::vector<uint64_t> input(8 * 65);
    for (auto &w : input)
        w = rng.next();
    p.addData64(kBaseA, input);
    // The whole plaintext/state ring is secret input.
    p.markSecret(kBaseA, input.size() * 8);
    return p;
}

Program
makeDjbsort(unsigned elems)
{
    // Batcher odd-even mergesort network, fully data-oblivious: the
    // compare-exchange sequence is a public function of the array
    // size, stored as an offset-pair table the kernel walks.
    Rng rng(0xd1b5047);
    std::vector<uint64_t> values(elems);
    for (auto &val : values)
        val = rng.nextBelow(1u << 30);

    std::vector<uint64_t> pairs; // byte offsets (i, j), i < j
    const unsigned n = elems;
    for (unsigned p = 1; p < n; p <<= 1) {
        for (unsigned k = p; k >= 1; k >>= 1) {
            for (unsigned j = k % p; j + k < n; j += 2 * k) {
                for (unsigned i = 0; i < k && i + j + k < n; ++i) {
                    if ((i + j) / (2 * p) ==
                        (i + j + k) / (2 * p)) {
                        pairs.push_back((i + j) * 8);
                        pairs.push_back((i + j + k) * 8);
                    }
                }
            }
        }
    }
    const uint64_t num_pairs = pairs.size() / 2;

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s2, )" << num_pairs << R"(
ce:
    ld   t0, 0(s1)
    ld   t1, 8(s1)
    add  t2, t0, s0
    add  t3, t1, s0
    ld   t4, 0(t2)
    ld   t5, 0(t3)
    min  t6, t4, t5
    max  a0, t4, t5
    sd   t6, 0(t2)
    sd   a0, 0(t3)
    addi s1, s1, 16
    addi s2, s2, -1
    bnez s2, ce
    # checksum: weighted sum proves sortedness deterministically
    li   s3, )" << elems << R"(
    mv   t0, s0
    li   a7, 0
    li   t1, 1
sum:
    ld   t2, 0(t0)
    mul  t3, t2, t1
    add  a7, a7, t3
    addi t1, t1, 1
    addi t0, t0, 8
    addi s3, s3, -1
    bnez s3, sum
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, values);
    p.addData64(kBaseB, pairs);
    // The values being sorted are secret; the compare-exchange
    // offset table is a public function of the array size.
    p.markSecret(kBaseA, elems * 8);
    return p;
}

} // namespace spt
