/**
 * @file
 * SPEC-CPU2017-substitute kernels (see workloads.h). Each generator
 * emits TRISC assembly (plus deterministic, fixed-seed input data)
 * that reproduces one benchmark's dominant microarchitectural
 * behavior class.
 */

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/workloads.h"

namespace spt {

namespace {

constexpr uint64_t kBaseA = 0x100000;
constexpr uint64_t kBaseB = 0x400000;
constexpr uint64_t kBaseC = 0x700000;
constexpr uint64_t kBaseD = 0x760000;

} // namespace

Program
makePointerChase(unsigned nodes, unsigned passes)
{
    Rng rng(0x11cf0001);
    // A single random cycle through all nodes (16 bytes per node:
    // next pointer, value) defeats any stride prefetching and makes
    // every load's address depend on the previous load — mcf-style
    // load-to-use criticality.
    std::vector<uint64_t> order(nodes);
    std::iota(order.begin(), order.end(), 0);
    for (unsigned i = nodes - 1; i > 0; --i) {
        const auto j =
            static_cast<unsigned>(rng.nextBelow(i + 1));
        std::swap(order[i], order[j]);
    }
    std::vector<uint64_t> words(2 * nodes);
    for (unsigned k = 0; k < nodes; ++k) {
        const uint64_t cur = order[k];
        const uint64_t nxt = order[(k + 1) % nodes];
        words[2 * cur] = kBaseA + nxt * 16;
        words[2 * cur + 1] = rng.nextBelow(1000);
    }
    const uint64_t head = kBaseA + order[0] * 16;

    std::ostringstream os;
    os << R"(
    .text
    li   a0, )" << head << R"(
    li   a1, )" << passes << R"(
    li   a7, 0
pass:
    li   a2, )" << nodes << R"(
    mv   t1, a0
chase:
    ld   t2, 8(t1)
    add  a7, a7, t2
    ld   t1, 0(t1)
    addi a2, a2, -1
    bnez a2, chase
    addi a1, a1, -1
    bnez a1, pass
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, words);
    return p;
}

Program
makeInterpreter(unsigned ops)
{
    Rng rng(0x11cf0002);
    std::vector<uint8_t> bytecode(ops);
    for (auto &b : bytecode)
        b = static_cast<uint8_t>(rng.nextBelow(8));

    std::ostringstream os;
    os << R"(
    .data
jtab:
    .quad op_add, op_sub, op_xor, op_and, op_mul, op_shift, op_mix, op_acc
    .text
    li   s0, )" << kBaseB << R"(
    li   s1, )" << ops << R"(
    la   s2, jtab
    li   a7, 0
    li   s3, 1
    li   s4, 2
dispatch:
    lbu  t0, 0(s0)
    slli t1, t0, 3
    add  t1, t1, s2
    ld   t2, 0(t1)
    jalr x0, t2, 0
op_add:
    add  s3, s3, s4
    j    next
op_sub:
    sub  s4, s3, s4
    j    next
op_xor:
    xor  s3, s3, s4
    j    next
op_and:
    and  s4, s3, s4
    ori  s4, s4, 1
    j    next
op_mul:
    mul  s3, s3, s4
    j    next
op_shift:
    srli s4, s4, 1
    ori  s4, s4, 5
    j    next
op_mix:
    xor  s3, s3, s4
    add  s4, s4, s3
    j    next
op_acc:
    add  a7, a7, s3
    j    next
next:
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, dispatch
    halt
)";
    Program p = assemble(os.str());
    p.addData(kBaseB, bytecode);
    return p;
}

Program
makeHashTable(unsigned inserts, unsigned lookups)
{
    Rng rng(0x11cf0003);
    const unsigned slots = 16384;
    std::vector<uint64_t> ins(inserts);
    for (auto &k : ins)
        k = rng.next() | 1; // nonzero keys
    std::vector<uint64_t> look(lookups);
    for (unsigned i = 0; i < lookups; ++i) {
        // Half the lookups hit, half miss.
        look[i] = (i % 2 == 0)
                      ? ins[rng.nextBelow(inserts)]
                      : (rng.next() | 1);
    }

    // The probe cursor is kept as a byte offset (t1) and advanced
    // with ADDs, so SPT's backward rule can invert the address
    // arithmetic once a probe load's operand is declassified.
    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << ((slots - 1) * 8) << R"(
    li   s2, )" << kBaseB << R"(
    li   s3, )" << inserts << R"(
    li   s6, 0x9e3779b97f4a7c15
    li   a7, 0
insert_loop:
    ld   a0, 0(s2)
    mul  t1, a0, s6
    srli t1, t1, 45
    and  t1, t1, s1
probe_i:
    add  t2, t1, s0
    ld   t3, 0(t2)
    beqz t3, do_insert
    addi t1, t1, 8
    and  t1, t1, s1
    j    probe_i
do_insert:
    sd   a0, 0(t2)
    addi s2, s2, 8
    addi s3, s3, -1
    bnez s3, insert_loop
    li   s2, )" << kBaseC << R"(
    li   s3, )" << lookups << R"(
lookup_loop:
    ld   a0, 0(s2)
    mul  t1, a0, s6
    srli t1, t1, 45
    and  t1, t1, s1
probe_l:
    add  t2, t1, s0
    ld   t3, 0(t2)
    beqz t3, done_one
    beq  t3, a0, hit
    addi t1, t1, 8
    and  t1, t1, s1
    j    probe_l
hit:
    addi a7, a7, 1
done_one:
    addi s2, s2, 8
    addi s3, s3, -1
    bnez s3, lookup_loop
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseB, ins);
    p.addData64(kBaseC, look);
    return p;
}

Program
makeTreeSearch(unsigned depth, unsigned branch)
{
    Rng rng(0x11cf0004);
    std::vector<uint64_t> board(64);
    for (auto &v : board)
        v = rng.nextBelow(4096);

    std::ostringstream os;
    os << R"(
    .text
    li   a0, )" << depth << R"(
    li   a1, 0x12345
    call search
    mv   a7, a0
    halt
search:
    bnez a0, recurse
    andi t0, a1, 63
    slli t0, t0, 3
    li   t1, )" << kBaseA << R"(
    add  t0, t0, t1
    ld   t2, 0(t0)
    add  a0, t2, a1
    andi a0, a0, 0xffff
    ret
recurse:
    addi sp, sp, -40
    sd   ra, 0(sp)
    sd   s0, 8(sp)
    sd   s1, 16(sp)
    sd   s2, 24(sp)
    sd   s3, 32(sp)
    mv   s2, a0
    mv   s3, a1
    li   s0, -1000000000
    li   s1, )" << branch << R"(
child:
    addi a0, s2, -1
    li   t0, 2862933555777941757
    mul  a1, s3, t0
    add  a1, a1, s1
    call search
    max  s0, s0, a0
    addi s1, s1, -1
    bnez s1, child
    neg  a0, s0
    ld   ra, 0(sp)
    ld   s0, 8(sp)
    ld   s1, 16(sp)
    ld   s2, 24(sp)
    ld   s3, 32(sp)
    addi sp, sp, 40
    ret
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, board);
    return p;
}

Program
makeLzMatch(unsigned positions)
{
    Rng rng(0x11cf0005);
    const unsigned window = 64 * 1024;
    std::vector<uint8_t> data(window);
    // Compressible stream: mostly random, with frequent copies of
    // earlier chunks so the match finder actually finds matches.
    unsigned i = 0;
    while (i < window) {
        if (i > 512 && rng.nextBool(0.4)) {
            const unsigned src = static_cast<unsigned>(
                rng.nextBelow(i - 256));
            const unsigned len =
                16 + static_cast<unsigned>(rng.nextBelow(48));
            for (unsigned k = 0; k < len && i < window; ++k)
                data[i++] = data[src + k];
        } else {
            data[i++] = static_cast<uint8_t>(rng.nextBelow(256));
        }
    }

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s2, 1
    li   s3, )" << positions << R"(
    li   s6, 2654435761
    li   a7, 0
scan:
    add  t0, s0, s2
    lwu  t1, 0(t0)
    mul  t3, t1, s6
    srli t3, t3, 20
    andi t3, t3, 4095
    slli t3, t3, 3
    add  t3, t3, s1
    ld   t4, 0(t3)
    sd   s2, 0(t3)
    beqz t4, no_match
    add  t5, s0, t4
    ld   a0, 0(t5)
    ld   a1, 0(t0)
    bne  a0, a1, no_match
    addi a7, a7, 8
    ld   a2, 8(t5)
    ld   a3, 8(t0)
    bne  a2, a3, no_match
    addi a7, a7, 8
no_match:
    addi s2, s2, 7
    addi s3, s3, -1
    bnez s3, scan
    halt
)";
    Program p = assemble(os.str());
    p.addData(kBaseA, data);
    return p;
}

Program
makeEventHeap(unsigned heap_size, unsigned ops)
{
    Rng rng(0x11cf0006);
    std::vector<uint64_t> keys(heap_size);
    for (auto &k : keys)
        k = rng.nextBelow(1 << 20);
    std::make_heap(keys.begin(), keys.end(),
                   std::greater<uint64_t>());
    // 1-indexed heap: element i lives at offset i*8.
    std::vector<uint64_t> heap(heap_size + 1, 0);
    std::copy(keys.begin(), keys.end(), heap.begin() + 1);

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s4, )" << heap_size << R"(
    li   s5, )" << ops << R"(
    li   s6, 6364136223846793005
    li   a7, 0
op_loop:
    ld   t0, 8(s0)
    add  a7, a7, t0
    slli t1, s4, 3
    add  t1, t1, s0
    ld   t2, 0(t1)
    addi s4, s4, -1
    li   t3, 1
sift_down:
    slli t4, t3, 1
    bltu s4, t4, sift_done
    slli t5, t4, 3
    add  t5, t5, s0
    ld   t6, 0(t5)
    addi a0, t4, 1
    bltu s4, a0, no_right
    ld   a1, 8(t5)
    bgeu a1, t6, no_right
    mv   t6, a1
    mv   t4, a0
no_right:
    bgeu t6, t2, sift_done
    slli a2, t3, 3
    add  a2, a2, s0
    sd   t6, 0(a2)
    mv   t3, t4
    j    sift_down
sift_done:
    slli a2, t3, 3
    add  a2, a2, s0
    sd   t2, 0(a2)
    mul  a4, t0, s6
    srli a4, a4, 44
    addi s4, s4, 1
    mv   t3, s4
sift_up:
    li   a5, 1
    beq  t3, a5, up_done
    srli a0, t3, 1
    slli a1, a0, 3
    add  a1, a1, s0
    ld   a2, 0(a1)
    bgeu a4, a2, up_done
    slli a6, t3, 3
    add  a6, a6, s0
    sd   a2, 0(a6)
    mv   t3, a0
    j    sift_up
up_done:
    slli a6, t3, 3
    add  a6, a6, s0
    sd   a4, 0(a6)
    addi s5, s5, -1
    bnez s5, op_loop
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, heap);
    return p;
}

Program
makeBstLookup(unsigned nodes, unsigned lookups)
{
    Rng rng(0x11cf0007);
    // Balanced BST over sorted random keys; node i occupies 24 bytes
    // {key, left, right}, index 0 is the null sentinel.
    std::vector<uint64_t> keys(nodes);
    for (auto &k : keys)
        k = rng.next() >> 16;
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    const unsigned n = static_cast<unsigned>(keys.size());

    std::vector<uint64_t> node_words(3 * (n + 1), 0);
    unsigned next_idx = 1;
    // Recursive balanced build without recursion: explicit stack.
    struct Range {
        unsigned lo, hi, slot;
    };
    std::vector<Range> stack;
    std::vector<unsigned> parent_slot(3 * (n + 1), 0);
    unsigned root = 0;
    // Build iteratively: allocate midpoints breadth-first.
    std::vector<std::tuple<unsigned, unsigned, unsigned, bool>> work;
    // (lo, hi, parent_idx, is_left)
    work.push_back({0, n, 0, false});
    while (!work.empty()) {
        auto [lo, hi, parent, is_left] = work.back();
        work.pop_back();
        if (lo >= hi)
            continue;
        const unsigned mid = lo + (hi - lo) / 2;
        const unsigned idx = next_idx++;
        node_words[3 * idx] = keys[mid];
        if (parent == 0 && root == 0)
            root = idx;
        else
            node_words[3 * parent + (is_left ? 1 : 2)] = idx;
        work.push_back({lo, mid, idx, true});
        work.push_back({mid + 1, hi, idx, false});
    }

    std::vector<uint64_t> look(lookups);
    for (unsigned i = 0; i < lookups; ++i) {
        look[i] = (i % 2 == 0) ? keys[rng.nextBelow(n)]
                               : (rng.next() >> 16) | 1;
    }

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s2, )" << lookups << R"(
    li   a7, 0
look:
    ld   a0, 0(s1)
    li   t0, )" << root << R"(
walk:
    slli t1, t0, 3
    slli t2, t0, 4
    add  t1, t1, t2
    add  t1, t1, s0
    ld   t2, 0(t1)
    beq  t2, a0, found
    bltu a0, t2, go_left
    ld   t0, 16(t1)
    j    cont
go_left:
    ld   t0, 8(t1)
cont:
    bnez t0, walk
    j    miss
found:
    addi a7, a7, 1
miss:
    addi s1, s1, 8
    addi s2, s2, -1
    bnez s2, look
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, node_words);
    p.addData64(kBaseB, look);
    return p;
}

Program
makeStreamTriad(unsigned elems, unsigned passes)
{
    Rng rng(0x11cf0008);
    std::vector<uint64_t> a(elems), b(elems);
    for (auto &v : a)
        v = rng.nextBelow(1 << 20);
    for (auto &v : b)
        v = rng.nextBelow(1 << 20);

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s2, )" << kBaseC << R"(
    li   s3, )" << passes << R"(
    li   a7, 0
pass:
    li   s4, )" << elems << R"(
    mv   t0, s0
    mv   t1, s1
    mv   t2, s2
elem:
    ld   t3, 0(t0)
    ld   t4, 0(t1)
    slli t5, t3, 1
    add  t5, t5, t4
    sd   t5, 0(t2)
    add  a7, a7, t5
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, 8
    addi s4, s4, -1
    bnez s4, elem
    addi s3, s3, -1
    bnez s3, pass
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, a);
    p.addData64(kBaseB, b);
    return p;
}

Program
makeForceCompute(unsigned pairs, unsigned passes)
{
    Rng rng(0x11cf0009);
    std::vector<uint64_t> x(pairs), y(pairs);
    for (auto &v : x)
        v = rng.nextBelow(1 << 24);
    for (auto &v : y)
        v = rng.nextBelow(1 << 24);

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s3, )" << passes << R"(
    li   s6, 0x5851f42d4c957f2d
    li   a7, 0
pass:
    li   s4, )" << pairs << R"(
    mv   t0, s0
    mv   t1, s1
pair:
    ld   t2, 0(t0)
    ld   t3, 0(t1)
    sub  t4, t2, t3
    mul  t5, t4, t4
    addi t5, t5, 1
    mul  t6, t5, s6
    mulh a0, t5, s6
    xor  a1, t6, a0
    mul  a2, t4, a1
    srai a3, a2, 12
    add  a7, a7, a3
    addi t0, t0, 8
    addi t1, t1, 8
    addi s4, s4, -1
    bnez s4, pair
    addi s3, s3, -1
    bnez s3, pass
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, x);
    p.addData64(kBaseB, y);
    return p;
}

Program
makeSpmv(unsigned rows, unsigned nnz_per_row, unsigned passes)
{
    Rng rng(0x11cf000a);
    const unsigned nnz = rows * nnz_per_row;
    std::vector<uint64_t> row_ptr(rows + 1);
    std::vector<uint64_t> col_idx(nnz);
    std::vector<uint64_t> vals(nnz);
    std::vector<uint64_t> x(rows), z(rows);
    for (unsigned r = 0; r <= rows; ++r)
        row_ptr[r] = static_cast<uint64_t>(r) * nnz_per_row;
    // Column indices are stored pre-scaled to byte offsets (a common
    // real-world CSR optimization); the gather address is then a
    // plain ADD of a loaded value, which SPT's backward untaint rule
    // can invert (Section 6.6) — the behavior mcf exhibits in the
    // paper.
    for (auto &c : col_idx)
        c = rng.nextBelow(rows) * 8;
    for (auto &v : vals)
        v = rng.nextBelow(1 << 12);
    for (auto &v : x)
        v = rng.nextBelow(1 << 12);
    for (auto &v : z)
        v = rng.nextBelow(1 << 12);

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s2, )" << (kBaseB + 0x100000) << R"(
    li   s3, )" << kBaseC << R"(
    li   s4, )" << kBaseD << R"(
    li   s8, )" << (kBaseC + 0x20000) << R"(
    li   s7, )" << passes << R"(
    li   a7, 0
pass:
    li   s5, 0
row:
    slli t0, s5, 3
    add  t0, t0, s0
    ld   t1, 0(t0)
    ld   t2, 8(t0)
    li   a0, 0
nz:
    bgeu t1, t2, row_done
    slli t3, t1, 3
    add  t4, t3, s1
    ld   t5, 0(t4)          # pre-scaled column offset
    add  t6, t3, s2
    ld   a1, 0(t6)          # matrix value
    add  a2, t5, s3
    ld   a3, 0(a2)          # gather x[col]
    add  a5, t5, s8
    ld   a6, 0(a5)          # second gather z[col] off the same index
    mul  a4, a1, a3
    add  a4, a4, a6
    add  a0, a0, a4
    addi t1, t1, 1
    j    nz
row_done:
    slli t0, s5, 3
    add  t0, t0, s4
    sd   a0, 0(t0)
    add  a7, a7, a0
    addi s5, s5, 1
    li   t0, )" << rows << R"(
    bltu s5, t0, row
    addi s7, s7, -1
    bnez s7, pass
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, row_ptr);
    p.addData64(kBaseB, col_idx);
    p.addData64(kBaseB + 0x100000, vals);
    p.addData64(kBaseC, x);
    p.addData64(kBaseC + 0x20000, z);
    p.addData64(kBaseD, std::vector<uint64_t>(rows, 0));
    return p;
}

Program
makeStencil(unsigned elems, unsigned passes)
{
    Rng rng(0x11cf000b);
    std::vector<uint64_t> a(elems);
    for (auto &v : a)
        v = rng.nextBelow(1 << 16);

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s3, )" << passes << R"(
    li   a7, 0
pass:
    li   s4, )" << (elems - 2) << R"(
    mv   t0, s0
    mv   t1, s1
elem:
    ld   t2, 0(t0)
    ld   t3, 8(t0)
    ld   t4, 16(t0)
    slli t5, t3, 1
    add  t5, t5, t2
    add  t5, t5, t4
    srli t5, t5, 2
    sd   t5, 8(t1)
    add  a7, a7, t5
    addi t0, t0, 8
    addi t1, t1, 8
    addi s4, s4, -1
    bnez s4, elem
    # swap source and destination for the next pass
    mv   t6, s0
    mv   s0, s1
    mv   s1, t6
    addi s3, s3, -1
    bnez s3, pass
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, a);
    p.addData64(kBaseB, std::vector<uint64_t>(elems, 0));
    return p;
}

Program
makeMatmul(unsigned n)
{
    Rng rng(0x11cf000c);
    std::vector<uint64_t> a(n * n), b(n * n);
    for (auto &v : a)
        v = rng.nextBelow(1 << 10);
    for (auto &v : b)
        v = rng.nextBelow(1 << 10);

    std::ostringstream os;
    os << R"(
    .text
    li   s0, )" << kBaseA << R"(
    li   s1, )" << kBaseB << R"(
    li   s2, )" << kBaseC << R"(
    li   s6, )" << n << R"(
    li   a7, 0
    li   s3, 0
i_loop:
    li   s4, 0
j_loop:
    li   s5, 0
    li   a0, 0
k_loop:
    mul  t0, s3, s6
    add  t0, t0, s5
    slli t0, t0, 3
    add  t0, t0, s0
    ld   t1, 0(t0)
    mul  t2, s5, s6
    add  t2, t2, s4
    slli t2, t2, 3
    add  t2, t2, s1
    ld   t3, 0(t2)
    mul  t4, t1, t3
    add  a0, a0, t4
    addi s5, s5, 1
    bltu s5, s6, k_loop
    mul  t0, s3, s6
    add  t0, t0, s4
    slli t0, t0, 3
    add  t0, t0, s2
    sd   a0, 0(t0)
    add  a7, a7, a0
    addi s4, s4, 1
    bltu s4, s6, j_loop
    addi s3, s3, 1
    bltu s3, s6, i_loop
    halt
)";
    Program p = assemble(os.str());
    p.addData64(kBaseA, a);
    p.addData64(kBaseB, b);
    p.addData64(kBaseC, std::vector<uint64_t>(n * n, 0));
    return p;
}

} // namespace spt
