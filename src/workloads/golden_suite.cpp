#include "workloads/golden_suite.h"

#include "workloads/workloads.h"

namespace spt {

const std::vector<GoldenCase> &
goldenSuite()
{
    static const std::vector<GoldenCase> cases = [] {
        std::vector<GoldenCase> v;
        const auto add = [&v](const std::string &name, Program p,
                              AttackModel m) {
            v.push_back({name + (m == AttackModel::kSpectre
                                     ? "/spectre"
                                     : "/futuristic"),
                         std::move(p), m});
        };
        // Reduced-size kernels: pointer chasing (backward untaint on
        // address chains), interpreter (branchy declassification),
        // hash table (mixed loads/stores, STL forwarding), sparse
        // matrix-vector (tainted gather addresses + shadow L1
        // reuse), ChaCha20 (constant-time: pins the all-counters-
        // zero property the paper's security argument rests on).
        add("pchase", makePointerChase(1024, 2),
            AttackModel::kFuturistic);
        add("pchase", makePointerChase(1024, 2),
            AttackModel::kSpectre);
        add("interp", makeInterpreter(2500),
            AttackModel::kFuturistic);
        add("interp", makeInterpreter(2500), AttackModel::kSpectre);
        add("hashtab", makeHashTable(600, 600),
            AttackModel::kFuturistic);
        add("spmv", makeSpmv(1024, 4, 1), AttackModel::kFuturistic);
        add("chacha20", makeChaCha20(16), AttackModel::kFuturistic);
        return v;
    }();
    return cases;
}

} // namespace spt
