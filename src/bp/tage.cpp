#include "bp/tage.h"

#include "common/logging.h"

namespace spt {

TagePredictor::TagePredictor(const TageConfig &config)
    : config_(config), base_(config.base_index_bits)
{
    SPT_ASSERT(config_.history_lengths.size() == config_.num_tables,
               "history_lengths must have one entry per table");
    tables_.assign(config_.num_tables,
                   std::vector<Entry>(size_t{1} << config_.index_bits));
    initHistoryState(spec_);
    initHistoryState(committed_);
}

void
TagePredictor::initHistoryState(HistoryState &hs) const
{
    hs.index_fold.clear();
    hs.tag_fold0.clear();
    hs.tag_fold1.clear();
    for (unsigned t = 0; t < config_.num_tables; ++t) {
        const unsigned hl = config_.history_lengths[t];
        hs.index_fold.emplace_back(hl, config_.index_bits);
        hs.tag_fold0.emplace_back(hl, config_.tag_bits);
        hs.tag_fold1.emplace_back(hl, config_.tag_bits - 1);
    }
}

void
TagePredictor::pushHistory(HistoryState &hs, bool bit) const
{
    for (unsigned t = 0; t < config_.num_tables; ++t) {
        const unsigned hl = config_.history_lengths[t];
        const bool old_bit = hs.history.bit(hl - 1);
        hs.index_fold[t].push(bit, old_bit);
        hs.tag_fold0[t].push(bit, old_bit);
        hs.tag_fold1[t].push(bit, old_bit);
    }
    hs.history.push(bit);
}

size_t
TagePredictor::tableIndex(const HistoryState &hs, unsigned t,
                          uint64_t pc) const
{
    const uint64_t mask = (uint64_t{1} << config_.index_bits) - 1;
    const uint64_t mixed = pc ^ (pc >> config_.index_bits) ^
                           hs.index_fold[t].value() ^
                           (uint64_t{t} << 3);
    return static_cast<size_t>(mixed & mask);
}

uint16_t
TagePredictor::tableTag(const HistoryState &hs, unsigned t,
                        uint64_t pc) const
{
    const uint64_t mask = (uint64_t{1} << config_.tag_bits) - 1;
    const uint64_t mixed = pc ^ hs.tag_fold0[t].value() ^
                           (hs.tag_fold1[t].value() << 1);
    return static_cast<uint16_t>(mixed & mask);
}

bool
TagePredictor::nextLfsrBit()
{
    const uint32_t bit =
        ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^ (lfsr_ >> 5)) & 1;
    lfsr_ = (lfsr_ >> 1) | (bit << 15);
    return bit != 0;
}

bool
TagePredictor::predict(uint64_t pc)
{
    // Find the provider (longest-history tag hit) and the alternate.
    int provider = -1;
    int alt = -1;
    for (int t = static_cast<int>(config_.num_tables) - 1; t >= 0;
         --t) {
        const auto ut = static_cast<unsigned>(t);
        const Entry &e = tables_[ut][tableIndex(spec_, ut, pc)];
        if (e.tag == tableTag(spec_, ut, pc)) {
            if (provider < 0)
                provider = t;
            else {
                alt = t;
                break;
            }
        }
    }

    bool pred;
    if (provider >= 0) {
        const auto up = static_cast<unsigned>(provider);
        const Entry &e = tables_[up][tableIndex(spec_, up, pc)];
        const bool weak = e.ctr.value() == 3 || e.ctr.value() == 4;
        if (weak && e.useful.value() == 0) {
            // Newly allocated, not yet useful: prefer the alternate.
            if (alt >= 0) {
                const auto ua = static_cast<unsigned>(alt);
                pred = tables_[ua][tableIndex(spec_, ua, pc)]
                           .ctr.taken();
            } else {
                pred = base_.predict(pc);
            }
        } else {
            pred = e.ctr.taken();
        }
    } else {
        pred = base_.predict(pc);
    }

    pushHistory(spec_, pred);
    return pred;
}

void
TagePredictor::update(uint64_t pc, bool taken)
{
    // Recompute provider/alt with the committed history (the history
    // this branch saw at prediction time, modulo wrong-path bits).
    int provider = -1;
    int alt = -1;
    for (int t = static_cast<int>(config_.num_tables) - 1; t >= 0;
         --t) {
        const auto ut = static_cast<unsigned>(t);
        Entry &e = tables_[ut][tableIndex(committed_, ut, pc)];
        if (e.tag == tableTag(committed_, ut, pc)) {
            if (provider < 0)
                provider = t;
            else {
                alt = t;
                break;
            }
        }
    }

    bool provider_pred;
    bool alt_pred;
    if (alt >= 0) {
        const auto ua = static_cast<unsigned>(alt);
        alt_pred = tables_[ua][tableIndex(committed_, ua, pc)]
                       .ctr.taken();
    } else {
        alt_pred = base_.predict(pc);
    }

    if (provider >= 0) {
        const auto up = static_cast<unsigned>(provider);
        Entry &e = tables_[up][tableIndex(committed_, up, pc)];
        provider_pred = e.ctr.taken();
        e.ctr.train(taken);
        if (provider_pred != alt_pred)
            e.useful.train(provider_pred == taken);
    } else {
        provider_pred = base_.predict(pc);
    }
    base_.update(pc, taken);

    // Allocate a new entry on a misprediction, in a table with a
    // longer history than the provider.
    if (provider_pred != taken &&
        provider < static_cast<int>(config_.num_tables) - 1) {
        int start = provider + 1;
        // Probabilistically skip one table to spread allocations.
        if (start < static_cast<int>(config_.num_tables) - 1 &&
            nextLfsrBit())
            ++start;
        bool allocated = false;
        for (unsigned t = static_cast<unsigned>(start);
             t < config_.num_tables; ++t) {
            Entry &e = tables_[t][tableIndex(committed_, t, pc)];
            if (e.useful.value() == 0) {
                e.tag = tableTag(committed_, t, pc);
                e.ctr.set(taken ? 4 : 3);
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // All candidates useful: age them instead.
            for (unsigned t = static_cast<unsigned>(start);
                 t < config_.num_tables; ++t)
                tables_[t][tableIndex(committed_, t, pc)]
                    .useful.decrement();
        }
    }

    // Periodic graceful reset of useful counters.
    if (++update_count_ % config_.useful_reset_period == 0) {
        for (auto &table : tables_)
            for (Entry &e : table)
                e.useful.decrement();
    }

    pushHistory(committed_, taken);
}

BpCheckpoint
TagePredictor::checkpoint() const
{
    BpCheckpoint cp;
    cp.words.push_back(spec_.history.head());
    for (unsigned t = 0; t < config_.num_tables; ++t) {
        cp.words.push_back(spec_.index_fold[t].value());
        cp.words.push_back(spec_.tag_fold0[t].value());
        cp.words.push_back(spec_.tag_fold1[t].value());
    }
    return cp;
}

void
TagePredictor::restore(const BpCheckpoint &cp)
{
    SPT_ASSERT(cp.words.size() == 1 + 3 * config_.num_tables,
               "bad TAGE checkpoint size");
    spec_.history.setHead(cp.words[0]);
    size_t i = 1;
    for (unsigned t = 0; t < config_.num_tables; ++t) {
        spec_.index_fold[t].setValue(
            static_cast<uint32_t>(cp.words[i++]));
        spec_.tag_fold0[t].setValue(
            static_cast<uint32_t>(cp.words[i++]));
        spec_.tag_fold1[t].setValue(
            static_cast<uint32_t>(cp.words[i++]));
    }
}

} // namespace spt
