/**
 * @file
 * Interface for conditional-branch direction predictors, plus shared
 * saturating-counter helpers.
 *
 * Speculative global-history management: predictors that use global
 * history update it speculatively at predict() time and expose
 * checkpoint()/restore() so the core can rewind on a squash.
 * Counter-table training happens only at commit time via update(),
 * which keeps predictor *training* state free of transient (and
 * hence possibly tainted) outcomes, as required by SPT's
 * prediction-based implicit-channel rule (paper Section 6.4).
 */

#ifndef SPT_BP_DIRECTION_PREDICTOR_H
#define SPT_BP_DIRECTION_PREDICTOR_H

#include <cstdint>
#include <vector>

namespace spt {

/** Opaque speculative-history checkpoint. */
struct BpCheckpoint {
    std::vector<uint64_t> words;
};

class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predicts the branch at @p pc and speculatively advances any
     *  internal history with the predicted outcome. */
    virtual bool predict(uint64_t pc) = 0;

    /** Commit-time training with the architectural outcome. */
    virtual void update(uint64_t pc, bool taken) = 0;

    /** Captures/restores speculative state (history registers). */
    virtual BpCheckpoint checkpoint() const = 0;
    virtual void restore(const BpCheckpoint &cp) = 0;
};

/** An n-bit saturating up/down counter. */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
    }

    void increment()
    {
        if (value_ < max_)
            ++value_;
    }
    void decrement()
    {
        if (value_ > 0)
            --value_;
    }
    /** Trains toward taken/not-taken. */
    void train(bool taken) { taken ? increment() : decrement(); }

    bool taken() const { return value_ > max_ / 2; }
    unsigned value() const { return value_; }
    unsigned max() const { return max_; }
    bool saturatedHigh() const { return value_ == max_; }
    bool saturatedLow() const { return value_ == 0; }
    void set(unsigned v) { value_ = v > max_ ? max_ : v; }

  private:
    unsigned max_;
    unsigned value_;
};

} // namespace spt

#endif // SPT_BP_DIRECTION_PREDICTOR_H
