/**
 * @file
 * Set-associative branch target buffer, used for indirect-branch
 * (JALR) target prediction. Direct targets are computed from the
 * instruction at fetch, and returns are served by the RAS, so only
 * indirect non-return branches consult the BTB.
 */

#ifndef SPT_BP_BTB_H
#define SPT_BP_BTB_H

#include <cstdint>
#include <optional>
#include <vector>

namespace spt {

class Btb
{
  public:
    Btb(unsigned sets = 1024, unsigned ways = 4);

    std::optional<uint64_t> lookup(uint64_t pc) const;

    /** Commit-time install/refresh of a target. */
    void update(uint64_t pc, uint64_t target);

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct Entry {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t lru = 0;
    };

    unsigned sets_;
    unsigned ways_;
    std::vector<Entry> entries_;
    uint64_t tick_ = 0;

    size_t setBase(uint64_t pc) const;
    uint64_t tagOf(uint64_t pc) const;
};

} // namespace spt

#endif // SPT_BP_BTB_H
