/**
 * @file
 * Loop-termination predictor (the "L" of LTAGE): learns fixed trip
 * counts for loop branches and predicts the final not-taken
 * iteration that counter-based predictors always miss.
 *
 * Architectural (commit-time) training state is exact. Speculative
 * per-entry iteration counters advance at predict time; after any
 * pipeline squash the core calls resyncSpeculative(), which resets
 * speculative counters to the architectural ones (a conservative
 * simplification of per-checkpoint counter recovery — the confidence
 * mechanism absorbs the rare post-squash mispredictions).
 */

#ifndef SPT_BP_LOOP_PREDICTOR_H
#define SPT_BP_LOOP_PREDICTOR_H

#include <cstdint>
#include <optional>
#include <vector>

namespace spt {

class LoopPredictor
{
  public:
    explicit LoopPredictor(unsigned index_bits = 8,
                           unsigned confidence_threshold = 3);

    /** Returns the loop prediction if this pc has a confident entry,
     *  std::nullopt otherwise. Advances the speculative counter. */
    std::optional<bool> predict(uint64_t pc);

    /** Commit-time training. */
    void update(uint64_t pc, bool taken);

    /** Resets speculative iteration counters after a squash. */
    void resyncSpeculative();

    /** Peek for tests. */
    bool confident(uint64_t pc) const;
    uint32_t tripCount(uint64_t pc) const;

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct Entry {
        uint32_t tag = 0;
        bool valid = false;
        uint32_t trip_count = 0;    ///< learned taken-iterations count
        uint32_t arch_count = 0;    ///< committed iterations this trip
        uint32_t spec_count = 0;    ///< speculative iterations
        uint32_t confidence = 0;
    };

    unsigned index_bits_;
    unsigned confidence_threshold_;
    std::vector<Entry> table_;

    size_t index(uint64_t pc) const;
    uint32_t tagOf(uint64_t pc) const;
};

} // namespace spt

#endif // SPT_BP_LOOP_PREDICTOR_H
