/**
 * @file
 * The combined branch prediction unit the core's fetch stage talks
 * to: LTAGE direction prediction, BTB for indirect targets, RAS for
 * returns. All training happens at commit time; speculative state
 * (histories, RAS) is checkpointed per predicted control-flow
 * instruction and restored on squash.
 */

#ifndef SPT_BP_BPU_H
#define SPT_BP_BPU_H

#include <cstdint>
#include <memory>

#include "bp/btb.h"
#include "bp/ltage.h"
#include "bp/ras.h"
#include "common/stats.h"
#include "isa/instruction.h"

namespace spt {

struct BranchPrediction {
    bool taken = false;
    uint64_t next_pc = 0;
};

class BranchPredictorUnit
{
  public:
    struct Checkpoint {
        BpCheckpoint dir;
        ReturnAddressStack::Checkpoint ras;
    };

    explicit BranchPredictorUnit(
        const TageConfig &config = TageConfig{});

    /** Predicts the outcome/target of the control-flow instruction
     *  @p inst at @p pc, advancing speculative history/RAS. Must only
     *  be called for control-flow instructions. */
    BranchPrediction predict(uint64_t pc, const Instruction &inst);

    /** Commit-time training with the architectural outcome. */
    void commitUpdate(uint64_t pc, const Instruction &inst, bool taken,
                      uint64_t target);

    Checkpoint checkpoint() const;
    void restore(const Checkpoint &cp);

    /** Mispredict recovery: after restore() of the offending
     *  instruction's pre-prediction checkpoint, replays its actual
     *  outcome into speculative state (history bit, RAS push/pop). */
    void repair(uint64_t pc, const Instruction &inst,
                bool actual_taken);

    /** Treats `jalr x0, ra, 0` as a return. */
    static bool isReturn(const Instruction &inst);
    /** Any JAL/JALR writing ra is a call. */
    static bool isCall(const Instruction &inst);

    StatSet &stats() { return stats_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    LtagePredictor ltage_;
    Btb btb_;
    ReturnAddressStack ras_;
    StatSet stats_;
};

} // namespace spt

#endif // SPT_BP_BPU_H
