#include "bp/ltage.h"

namespace spt {

LtagePredictor::LtagePredictor(const TageConfig &config)
    : tage_(config)
{
}

bool
LtagePredictor::predict(uint64_t pc)
{
    // TAGE must always observe the branch so its speculative history
    // stays aligned with the fetch stream.
    const std::optional<bool> loop_pred = loop_.predict(pc);
    const bool tage_pred = tage_.predict(pc);
    if (loop_pred && use_loop_.taken())
        return *loop_pred;
    return tage_pred;
}

void
LtagePredictor::update(uint64_t pc, bool taken)
{
    // Train the use-loop arbiter on branches where the two disagree.
    const bool loop_confident = loop_.confident(pc);
    if (loop_confident) {
        // Reconstruct the loop prediction from architectural state:
        // the entry predicts "taken" while arch_count < trip_count.
        // We approximate by asking whether this outcome matched the
        // learned trip pattern after update() below; simpler: train
        // toward the loop predictor whenever it is confident and the
        // outcome continues the learned pattern.
    }
    loop_.update(pc, taken);
    tage_.update(pc, taken);
    // Arbiter training: a confident loop entry that survives update
    // with its confidence intact agreed with the outcome.
    if (loop_confident)
        use_loop_.train(loop_.confident(pc));
}

BpCheckpoint
LtagePredictor::checkpoint() const
{
    return tage_.checkpoint();
}

void
LtagePredictor::restore(const BpCheckpoint &cp)
{
    tage_.restore(cp);
    loop_.resyncSpeculative();
}

} // namespace spt
