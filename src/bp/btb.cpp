#include "bp/btb.h"

#include "common/bit_util.h"
#include "common/logging.h"

namespace spt {

Btb::Btb(unsigned sets, unsigned ways)
    : sets_(sets), ways_(ways), entries_(size_t{sets} * ways)
{
    SPT_ASSERT(isPowerOfTwo(sets), "BTB sets must be a power of two");
}

size_t
Btb::setBase(uint64_t pc) const
{
    return static_cast<size_t>(pc & (sets_ - 1)) * ways_;
}

uint64_t
Btb::tagOf(uint64_t pc) const
{
    return pc >> log2Floor(sets_);
}

std::optional<uint64_t>
Btb::lookup(uint64_t pc) const
{
    const size_t base = setBase(pc);
    const uint64_t tag = tagOf(pc);
    for (unsigned w = 0; w < ways_; ++w) {
        const Entry &e = entries_[base + w];
        if (e.valid && e.tag == tag)
            return e.target;
    }
    return std::nullopt;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    const size_t base = setBase(pc);
    const uint64_t tag = tagOf(pc);
    ++tick_;
    size_t victim = base;
    uint64_t oldest = ~uint64_t{0};
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lru = tick_;
            return;
        }
        if (!e.valid) {
            victim = base + w;
            oldest = 0;
        } else if (e.lru < oldest) {
            victim = base + w;
            oldest = e.lru;
        }
    }
    entries_[victim] = {true, tag, target, tick_};
}

} // namespace spt
