/**
 * @file
 * LTAGE: TAGE plus the loop predictor, arbitrated by a global
 * use-loop confidence counter (paper Table 1 specifies an LTAGE
 * branch predictor).
 */

#ifndef SPT_BP_LTAGE_H
#define SPT_BP_LTAGE_H

#include "bp/direction_predictor.h"
#include "bp/loop_predictor.h"
#include "bp/tage.h"

namespace spt {

class LtagePredictor : public DirectionPredictor
{
  public:
    explicit LtagePredictor(const TageConfig &config = TageConfig{});

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    BpCheckpoint checkpoint() const override;
    void restore(const BpCheckpoint &cp) override;

    /** Must be called after any squash (see LoopPredictor). */
    void onSquash() { loop_.resyncSpeculative(); }

    /** Replays the architectural outcome into speculative history
     *  after a mispredict recovery. */
    void pushSpecBit(bool bit) { tage_.pushSpecBit(bit); }

    LoopPredictor &loopPredictor() { return loop_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    TagePredictor tage_;
    LoopPredictor loop_;
    SatCounter use_loop_{4, 8};
};

} // namespace spt

#endif // SPT_BP_LTAGE_H
