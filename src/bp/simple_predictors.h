/**
 * @file
 * Bimodal and gshare direction predictors. These serve both as
 * standalone simple predictors (ablations/tests) and as the base
 * component of the TAGE predictor.
 */

#ifndef SPT_BP_SIMPLE_PREDICTORS_H
#define SPT_BP_SIMPLE_PREDICTORS_H

#include <cstddef>
#include <vector>

#include "bp/direction_predictor.h"

namespace spt {

/** Classic bimodal table of 2-bit counters, indexed by pc. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(unsigned index_bits = 13);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    BpCheckpoint checkpoint() const override { return {}; }
    void restore(const BpCheckpoint &) override {}

    /** Table peek for tests. */
    unsigned counterValue(uint64_t pc) const;

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    unsigned index_bits_;
    std::vector<SatCounter> table_;

    size_t index(uint64_t pc) const;
};

/** gshare: global history XORed with pc bits indexes a counter
 *  table. History is updated speculatively at predict time. */
class GsharePredictor : public DirectionPredictor
{
  public:
    GsharePredictor(unsigned index_bits = 13,
                    unsigned history_bits = 13);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    BpCheckpoint checkpoint() const override;
    void restore(const BpCheckpoint &cp) override;

    uint64_t history() const { return history_; }

  private:
    unsigned index_bits_;
    unsigned history_bits_;
    uint64_t history_ = 0;      ///< speculative
    uint64_t arch_history_ = 0; ///< committed (used for training index)
    std::vector<SatCounter> table_;

    size_t index(uint64_t pc, uint64_t history) const;
};

} // namespace spt

#endif // SPT_BP_SIMPLE_PREDICTORS_H
