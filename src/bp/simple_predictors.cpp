#include "bp/simple_predictors.h"

#include "common/logging.h"

namespace spt {

BimodalPredictor::BimodalPredictor(unsigned index_bits)
    : index_bits_(index_bits),
      table_(size_t{1} << index_bits, SatCounter(2, 1))
{
}

size_t
BimodalPredictor::index(uint64_t pc) const
{
    return pc & ((size_t{1} << index_bits_) - 1);
}

bool
BimodalPredictor::predict(uint64_t pc)
{
    return table_[index(pc)].taken();
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    table_[index(pc)].train(taken);
}

unsigned
BimodalPredictor::counterValue(uint64_t pc) const
{
    return table_[index(pc)].value();
}

GsharePredictor::GsharePredictor(unsigned index_bits,
                                 unsigned history_bits)
    : index_bits_(index_bits), history_bits_(history_bits),
      table_(size_t{1} << index_bits, SatCounter(2, 1))
{
    SPT_ASSERT(history_bits_ <= 64, "gshare history too long");
}

size_t
GsharePredictor::index(uint64_t pc, uint64_t history) const
{
    const uint64_t mask = (uint64_t{1} << index_bits_) - 1;
    const uint64_t h = history &
        ((history_bits_ >= 64 ? ~uint64_t{0}
                              : (uint64_t{1} << history_bits_) - 1));
    return (pc ^ h) & mask;
}

bool
GsharePredictor::predict(uint64_t pc)
{
    const bool taken = table_[index(pc, history_)].taken();
    history_ = (history_ << 1) | (taken ? 1 : 0);
    return taken;
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    table_[index(pc, arch_history_)].train(taken);
    arch_history_ = (arch_history_ << 1) | (taken ? 1 : 0);
}

BpCheckpoint
GsharePredictor::checkpoint() const
{
    return {{history_}};
}

void
GsharePredictor::restore(const BpCheckpoint &cp)
{
    SPT_ASSERT(cp.words.size() == 1, "bad gshare checkpoint");
    history_ = cp.words[0];
}

} // namespace spt
