/**
 * @file
 * Return address stack with full-copy checkpointing (the stack is
 * small, so copying it per in-flight control instruction is the
 * simple, exact recovery scheme).
 */

#ifndef SPT_BP_RAS_H
#define SPT_BP_RAS_H

#include <array>
#include <cstdint>

namespace spt {

class ReturnAddressStack
{
  public:
    static constexpr unsigned kCapacity = 32;

    struct Checkpoint {
        std::array<uint64_t, kCapacity> stack;
        unsigned top;
        unsigned depth;
    };

    void push(uint64_t return_pc);

    /** Pops the predicted return target; returns 0 if empty. */
    uint64_t pop();

    bool empty() const { return depth_ == 0; }
    unsigned depth() const { return depth_; }

    Checkpoint checkpoint() const;
    void restore(const Checkpoint &cp);

  private:
    std::array<uint64_t, kCapacity> stack_{};
    unsigned top_ = 0;   ///< index of next push slot
    unsigned depth_ = 0; ///< valid entries (<= kCapacity)
};

} // namespace spt

#endif // SPT_BP_RAS_H
