#include "bp/bpu.h"

#include "common/logging.h"

namespace spt {

BranchPredictorUnit::BranchPredictorUnit(const TageConfig &config)
    : ltage_(config)
{
}

bool
BranchPredictorUnit::isReturn(const Instruction &inst)
{
    return inst.op == Opcode::kJalr && inst.rd == kRegZero &&
           inst.rs1 == kRegRa;
}

bool
BranchPredictorUnit::isCall(const Instruction &inst)
{
    return (inst.op == Opcode::kJal || inst.op == Opcode::kJalr) &&
           inst.rd == kRegRa;
}

BranchPrediction
BranchPredictorUnit::predict(uint64_t pc, const Instruction &inst)
{
    SPT_ASSERT(isControlFlow(inst.op),
               "predict() on non-control-flow instruction");
    BranchPrediction p;
    if (isCondBranch(inst.op)) {
        p.taken = ltage_.predict(pc);
        p.next_pc = p.taken
                        ? pc + static_cast<uint64_t>(inst.imm)
                        : pc + 1;
        stats_.inc("bpu.cond_predictions");
        return p;
    }
    // Unconditional control flow.
    p.taken = true;
    if (inst.op == Opcode::kJal) {
        p.next_pc = pc + static_cast<uint64_t>(inst.imm);
    } else { // JALR
        if (isReturn(inst)) {
            p.next_pc = ras_.empty() ? pc + 1 : ras_.pop();
            stats_.inc("bpu.ras_predictions");
        } else {
            const auto target = btb_.lookup(pc);
            p.next_pc = target ? *target : pc + 1;
            stats_.inc(target ? "bpu.btb_hits" : "bpu.btb_misses");
        }
    }
    if (isCall(inst))
        ras_.push(pc + 1);
    return p;
}

void
BranchPredictorUnit::commitUpdate(uint64_t pc, const Instruction &inst,
                                  bool taken, uint64_t target)
{
    if (isCondBranch(inst.op)) {
        ltage_.update(pc, taken);
        stats_.inc("bpu.cond_updates");
    } else if (inst.op == Opcode::kJalr && !isReturn(inst)) {
        btb_.update(pc, target);
        stats_.inc("bpu.btb_updates");
    }
}

void
BranchPredictorUnit::repair(uint64_t pc, const Instruction &inst,
                            bool actual_taken)
{
    if (isCondBranch(inst.op)) {
        ltage_.pushSpecBit(actual_taken);
        return;
    }
    if (isReturn(inst))
        ras_.pop();
    if (isCall(inst))
        ras_.push(pc + 1);
}

BranchPredictorUnit::Checkpoint
BranchPredictorUnit::checkpoint() const
{
    return {ltage_.checkpoint(), ras_.checkpoint()};
}

void
BranchPredictorUnit::restore(const Checkpoint &cp)
{
    ltage_.restore(cp.dir);
    ras_.restore(cp.ras);
}

} // namespace spt
