#include "bp/loop_predictor.h"

namespace spt {

LoopPredictor::LoopPredictor(unsigned index_bits,
                             unsigned confidence_threshold)
    : index_bits_(index_bits),
      confidence_threshold_(confidence_threshold),
      table_(size_t{1} << index_bits)
{
}

size_t
LoopPredictor::index(uint64_t pc) const
{
    return pc & ((size_t{1} << index_bits_) - 1);
}

uint32_t
LoopPredictor::tagOf(uint64_t pc) const
{
    return static_cast<uint32_t>((pc >> index_bits_) & 0x3fff);
}

std::optional<bool>
LoopPredictor::predict(uint64_t pc)
{
    Entry &e = table_[index(pc)];
    if (!e.valid || e.tag != tagOf(pc) ||
        e.confidence < confidence_threshold_)
        return std::nullopt;
    // Predict taken for the first trip_count iterations, then a
    // single not-taken.
    const bool taken = e.spec_count < e.trip_count;
    if (taken)
        ++e.spec_count;
    else
        e.spec_count = 0;
    return taken;
}

void
LoopPredictor::update(uint64_t pc, bool taken)
{
    Entry &e = table_[index(pc)];
    if (!e.valid || e.tag != tagOf(pc)) {
        // (Re)allocate.
        e.valid = true;
        e.tag = tagOf(pc);
        e.trip_count = 0;
        e.arch_count = taken ? 1 : 0;
        e.spec_count = e.arch_count;
        e.confidence = 0;
        return;
    }
    if (taken) {
        ++e.arch_count;
        return;
    }
    // Loop exit: compare the observed trip count to the learned one.
    if (e.arch_count == e.trip_count && e.trip_count > 0) {
        if (e.confidence < 0xff)
            ++e.confidence;
    } else {
        e.trip_count = e.arch_count;
        e.confidence = 0;
    }
    e.arch_count = 0;
}

void
LoopPredictor::resyncSpeculative()
{
    for (Entry &e : table_)
        e.spec_count = e.arch_count;
}

bool
LoopPredictor::confident(uint64_t pc) const
{
    const Entry &e = table_[index(pc)];
    return e.valid && e.tag == tagOf(pc) &&
           e.confidence >= confidence_threshold_;
}

uint32_t
LoopPredictor::tripCount(uint64_t pc) const
{
    const Entry &e = table_[index(pc)];
    return e.valid && e.tag == tagOf(pc) ? e.trip_count : 0;
}

} // namespace spt
