/**
 * @file
 * TAGE direction predictor (Seznec): a bimodal base table plus
 * several partially-tagged tables indexed with geometrically
 * increasing global-history lengths.
 *
 * Speculative history is advanced at predict() time; committed
 * history (used to compute training indices) is advanced at
 * update(). Folded-history registers are maintained incrementally
 * for both copies so index/tag hashing is O(1) per branch.
 */

#ifndef SPT_BP_TAGE_H
#define SPT_BP_TAGE_H

#include <cstdint>
#include <vector>

#include "bp/direction_predictor.h"
#include "bp/simple_predictors.h"

namespace spt {

/** Circular global-history bit buffer. */
class HistoryRegister
{
  public:
    explicit HistoryRegister(size_t capacity = 2048)
        : bits_(capacity, 0)
    {
    }

    void push(bool bit)
    {
        bits_[head_ % bits_.size()] = bit ? 1 : 0;
        ++head_;
    }

    /** i-th most recent bit (0 = newest). Bits older than anything
     *  pushed read as 0. */
    bool bit(size_t i) const
    {
        if (i >= head_ || i >= bits_.size())
            return false;
        return bits_[(head_ - 1 - i) % bits_.size()] != 0;
    }

    uint64_t head() const { return head_; }
    void setHead(uint64_t h) { head_ = h; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    std::vector<uint8_t> bits_;
    uint64_t head_ = 0;
};

/** Incrementally folded view of the most recent orig_length history
 *  bits, compressed to comp_length bits. */
class FoldedHistory
{
  public:
    FoldedHistory() = default;
    FoldedHistory(unsigned orig_length, unsigned comp_length)
        : orig_length_(orig_length), comp_length_(comp_length),
          outpoint_(orig_length % comp_length)
    {
    }

    /** @p new_bit is being pushed; @p old_bit is the bit leaving the
     *  window (bit at distance orig_length-1 before the push). */
    void
    push(bool new_bit, bool old_bit)
    {
        comp_ = (comp_ << 1) | (new_bit ? 1 : 0);
        comp_ ^= (old_bit ? 1u : 0u) << outpoint_;
        comp_ ^= comp_ >> comp_length_;
        comp_ &= (1u << comp_length_) - 1;
    }

    uint32_t value() const { return comp_; }
    void setValue(uint32_t v) { comp_ = v; }

  private:
    unsigned orig_length_ = 1;
    unsigned comp_length_ = 1;
    unsigned outpoint_ = 0;
    uint32_t comp_ = 0;
};

struct TageConfig {
    unsigned num_tables = 4;
    unsigned index_bits = 10;         ///< per tagged table
    unsigned tag_bits = 9;
    unsigned base_index_bits = 13;
    std::vector<unsigned> history_lengths = {8, 24, 64, 130};
    uint64_t useful_reset_period = 1 << 18;
};

class TagePredictor : public DirectionPredictor
{
  public:
    explicit TagePredictor(const TageConfig &config = TageConfig{});

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;
    BpCheckpoint checkpoint() const override;
    void restore(const BpCheckpoint &cp) override;

    /** Pushes a speculative-history bit without predicting (used to
     *  replay the correct outcome after a mispredict recovery). */
    void pushSpecBit(bool bit) { pushHistory(spec_, bit); }

    const TageConfig &config() const { return config_; }

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    struct Entry {
        uint16_t tag = 0;
        SatCounter ctr{3, 4};     ///< 3-bit, >=4 means taken
        SatCounter useful{2, 0};
    };

    /** One copy of the folded-history state (spec or committed). */
    struct HistoryState {
        HistoryRegister history;
        std::vector<FoldedHistory> index_fold;
        std::vector<FoldedHistory> tag_fold0;
        std::vector<FoldedHistory> tag_fold1;
    };

    TageConfig config_;
    BimodalPredictor base_;
    std::vector<std::vector<Entry>> tables_;
    HistoryState spec_;
    HistoryState committed_;
    uint32_t lfsr_ = 0xace1;      ///< deterministic allocation tiebreak
    uint64_t update_count_ = 0;

    void initHistoryState(HistoryState &hs) const;
    void pushHistory(HistoryState &hs, bool bit) const;
    size_t tableIndex(const HistoryState &hs, unsigned t,
                      uint64_t pc) const;
    uint16_t tableTag(const HistoryState &hs, unsigned t,
                      uint64_t pc) const;
    bool nextLfsrBit();
};

} // namespace spt

#endif // SPT_BP_TAGE_H
