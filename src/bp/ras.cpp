#include "bp/ras.h"

namespace spt {

void
ReturnAddressStack::push(uint64_t return_pc)
{
    stack_[top_] = return_pc;
    top_ = (top_ + 1) % kCapacity;
    if (depth_ < kCapacity)
        ++depth_;
}

uint64_t
ReturnAddressStack::pop()
{
    if (depth_ == 0)
        return 0;
    top_ = (top_ + kCapacity - 1) % kCapacity;
    --depth_;
    return stack_[top_];
}

ReturnAddressStack::Checkpoint
ReturnAddressStack::checkpoint() const
{
    return {stack_, top_, depth_};
}

void
ReturnAddressStack::restore(const Checkpoint &cp)
{
    stack_ = cp.stack;
    top_ = cp.top;
    depth_ = cp.depth;
}

} // namespace spt
