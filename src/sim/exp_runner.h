/**
 * @file
 * Parallel experiment runner: the shared sweep engine behind every
 * figure-regeneration driver, the golden-stats recorder, and the
 * throughput bench.
 *
 * A sweep is a vector of `RunJob` descriptors (program x engine
 * config x attack model x seed). The runner executes them on a
 * fixed-size worker pool (`--jobs N` / SPT_JOBS, default
 * hardware_concurrency — see common/parallel.h) and collects each
 * job's `RunOutcome` into a result slot indexed by job id, so the
 * assembled vector is bit-identical regardless of thread count or
 * completion order. Drivers therefore build their whole grid up
 * front, run it once, and render tables/JSON from the slots in grid
 * order.
 *
 * Determinism guarantees:
 *  - one Simulator per job, constructed and run entirely on the
 *    executing worker; the simulated machine is single-threaded and
 *    touches no global mutable state (Rng instances are
 *    function-local, see rng.h; logging is thread-safe, see
 *    logging.h),
 *  - results are addressed by job index, never by completion order,
 *  - host timing (`RunOutcome::host_seconds`) is the only
 *    thread-count-dependent field; everything else — cycles,
 *    instructions, every engine counter and histogram — is a pure
 *    function of the job descriptor.
 *
 * Duplicate jobs within a sweep are memoized: jobs with equal keys
 * (same program identity + every engine-config field + attack model
 * + seed + cycle limit, see jobKey()) are simulated once and the
 * outcome is copied into every duplicate slot. This is what spares
 * e.g. a normalized-overhead grid from re-deriving its
 * UnsafeBaseline column per normalization.
 */

#ifndef SPT_SIM_EXP_RUNNER_H
#define SPT_SIM_EXP_RUNNER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

namespace spt {

/** One design point of a sweep grid. The program is non-owning and
 *  must outlive the sweep (all drivers point into the static
 *  workload/golden-suite registries or locals). */
struct RunJob {
    const Program *program = nullptr;
    EngineConfig engine;
    AttackModel attack_model = AttackModel::kFuturistic;
    /** Free key component for sweeps whose points differ by input
     *  generation (e.g. fuzz seeds) rather than configuration; not
     *  interpreted by the runner. */
    uint64_t seed = 0;
    uint64_t max_cycles = 500'000'000;
    /** Capture the taint-lifecycle trace (text + pipeview) into the
     *  outcome. Observability outputs are pure functions of the
     *  simulated machine, so they are byte-identical for any worker
     *  count — pinned by tests/test_observability.cpp. */
    bool trace = false;
    /** Capture the delay-attribution profile JSON into the outcome. */
    bool profile = false;
    /** Interval-metrics period; 0 disables the time series. */
    uint64_t interval_stats = 0;
};

/** Everything a driver reads back from one simulation. */
struct RunOutcome {
    SimResult result;
    std::map<std::string, uint64_t> engine_counters;
    std::map<std::string, Histogram> engine_histograms;
    /** Host wall-clock of the simulation itself. Duplicate (memoized)
     *  slots share the unique run's timing. */
    double host_seconds = 0.0;
    /** Observability artifacts, empty unless the corresponding RunJob
     *  flag was set. Deterministic byte-for-byte (any --jobs). */
    std::string trace_text;
    std::string trace_pipeview;
    std::string profile_json;
    std::string intervals_json;

    uint64_t
    counter(const std::string &name) const
    {
        const auto it = engine_counters.find(name);
        return it == engine_counters.end() ? 0 : it->second;
    }
};

/** Bookkeeping from the last ExpRunner::run call. */
struct SweepStats {
    unsigned workers = 1;    ///< pool size actually used
    uint64_t unique_jobs = 0;
    uint64_t memo_hits = 0;  ///< jobs served from an earlier slot
    double wall_seconds = 0.0;
};

/** Memoization key: program identity plus every field of the job
 *  descriptor. Keep in sync with EngineConfig/SptConfig — a field
 *  missing here would merge distinct design points. Exposed for
 *  tests. */
std::string jobKey(const RunJob &job);

class ExpRunner
{
  public:
    /** @param jobs worker count; 0 resolves SPT_JOBS then
     *  hardware_concurrency (common/parallel.h). */
    explicit ExpRunner(unsigned jobs = 0);

    /** Executes the grid; outcome i corresponds to grid[i]. Throws
     *  FatalError on a null program; any exception escaping a job
     *  (e.g. SPT_FATAL/SPT_PANIC inside the simulator) fails the
     *  sweep cleanly after the pool has drained. */
    std::vector<RunOutcome> run(const std::vector<RunJob> &grid);

    const SweepStats &lastSweep() const { return last_; }
    unsigned workers() const { return workers_; }

  private:
    unsigned workers_;
    SweepStats last_;
};

} // namespace spt

#endif // SPT_SIM_EXP_RUNNER_H
