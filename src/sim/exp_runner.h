/**
 * @file
 * Parallel experiment runner: the shared sweep engine behind every
 * figure-regeneration driver, the golden-stats recorder, the chaos
 * campaign driver, and the throughput bench.
 *
 * A sweep is a vector of `RunJob` descriptors (program x engine
 * config x attack model x seed x fault plan). The runner executes
 * them on a fixed-size worker pool (`--jobs N` / SPT_JOBS, default
 * hardware_concurrency — see common/parallel.h) and collects each
 * job's `RunOutcome` into a result slot indexed by job id, so the
 * assembled vector is bit-identical regardless of thread count or
 * completion order. Drivers therefore build their whole grid up
 * front, run it once, and render tables/JSON from the slots in grid
 * order.
 *
 * Determinism guarantees:
 *  - one Simulator per job, constructed and run entirely on the
 *    executing worker; the simulated machine is single-threaded and
 *    touches no global mutable state (Rng instances are
 *    function-local, see rng.h; logging is thread-safe, see
 *    logging.h),
 *  - results are addressed by job index, never by completion order,
 *  - host timing (`RunOutcome::host_seconds`) is the only
 *    thread-count-dependent field; everything else — cycles,
 *    instructions, every engine counter and histogram, fault draws,
 *    diagnostics — is a pure function of the job descriptor.
 *    (Exception: a job with `wall_timeout_seconds` set may cut off
 *    at a host-dependent cycle; such jobs trade determinism for
 *    bounded latency and say so in their status.)
 *
 * Duplicate jobs within a sweep are memoized: jobs with equal keys
 * (same program identity + every engine-config field + attack model
 * + seed + cycle limit + fault plan + robustness knobs, see
 * jobKey()) are simulated once and the outcome is copied into every
 * duplicate slot. This is what spares e.g. a normalized-overhead
 * grid from re-deriving its UnsafeBaseline column per normalization.
 *
 * Cross-process reuse (PR 8): with a cache directory configured
 * (RunnerPolicy::cache_dir or SPT_CACHE_DIR), each unique job is
 * first looked up in the on-disk content-addressed result cache
 * (sim/result_cache.h) and only simulated on a miss; clean outcomes
 * are stored back (read_write mode). A hit replays the recorded
 * outcome including its original host_seconds, so warm-cache
 * artifacts are byte-identical to the cold run that populated the
 * cache. `verify` mode re-simulates every hit and counts byte
 * mismatches into SweepStats::cache.verify_mismatches — the
 * soundness gate for the "hits are provably exact" claim. With
 * SPT_SWEEP_SOCKET (or RunnerPolicy::service_socket) set, run()
 * instead ships the whole grid to a spt_sweepd daemon
 * (sim/sweep_service.h) and collects the outcomes from its warm
 * cache and worker pool.
 *
 * Failure isolation (PR 5): by default any exception escaping a job
 * still fails the whole sweep — but it now fails *deterministically*
 * (the lowest-indexed failing slot's exception is rethrown, not
 * whichever worker lost the race) and the message identifies the
 * job. Under `RunnerPolicy::keep_going` the sweep always completes:
 * each failing slot is classified (crash / timeout / livelock /
 * invariant violation) into `RunOutcome::status` with the exception
 * text and a one-line job descriptor preserved, and healthy slots
 * are unaffected. `RunnerPolicy::capture_evidence` re-runs each
 * crashed or violating job once with tracing and the invariant
 * checker attached, attaching the trace tail and diagnostics as
 * evidence and recording whether the failure reproduced.
 */

#ifndef SPT_SIM_EXP_RUNNER_H
#define SPT_SIM_EXP_RUNNER_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/event_log.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "isa/instruction.h"
#include "sim/progress.h"
#include "sim/result_cache.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

namespace spt {

class JsonWriter;

/** One design point of a sweep grid. The program is non-owning and
 *  must outlive the sweep (all drivers point into the static
 *  workload/golden-suite registries or locals). */
struct RunJob {
    const Program *program = nullptr;
    EngineConfig engine;
    AttackModel attack_model = AttackModel::kFuturistic;
    /** Free key component for sweeps whose points differ by input
     *  generation (e.g. fuzz seeds) rather than configuration; not
     *  interpreted by the runner. */
    uint64_t seed = 0;
    uint64_t max_cycles = 500'000'000;
    /** Capture the taint-lifecycle trace (text + pipeview) into the
     *  outcome. Observability outputs are pure functions of the
     *  simulated machine, so they are byte-identical for any worker
     *  count — pinned by tests/test_observability.cpp. */
    bool trace = false;
    /** Capture the delay-attribution profile JSON into the outcome. */
    bool profile = false;
    /** Interval-metrics period; 0 disables the time series. */
    uint64_t interval_stats = 0;
    /** Seeded timing-fault schedule; all-zero rates = no injection. */
    FaultPlan faults;
    /** Attach the runtime invariant checker (observer-only). */
    bool invariants = false;
    /** Retire-progress watchdog override; 0 keeps the CoreParams
     *  default (uarch/core.h). */
    uint64_t watchdog_cycles = 0;
    /** Host wall-clock cap per job; 0 disables. Non-deterministic
     *  cutoff by design — see the file comment. */
    double wall_timeout_seconds = 0.0;
    /** Fast-forward quiescent periods (CoreParams::fast_forward).
     *  Result- and stat-identical to ticking every cycle (pinned by
     *  the fast-forward equivalence tests), but still part of the
     *  memo key: the ff.* skip counters differ. */
    bool fast_forward = false;
    /** Checkpoint drain barrier (SimConfig::checkpoint_at_retires);
     *  0 disables. Set on both the snapshot-producing run and every
     *  cold run that must be comparable to a restored one. */
    uint64_t checkpoint_at = 0;
    /** Path of a snapshot to restore before running (fork-from-
     *  checkpoint sweeps); empty = cold start. SPT_FATAL if the file
     *  cannot be read. */
    std::string checkpoint;
    /** Free-form name for reports ("pchase/SPT{Bwd,ShadowL1}").
     *  Not part of the memo key: two jobs differing only by label
     *  are the same simulation. */
    std::string label;
};

/** How a job concluded, strongest classification first. */
enum class RunStatus : uint8_t {
    kOk,        ///< halted normally
    kTimeout,   ///< cycle budget or wall-clock cap cut it off
    kLivelock,  ///< retire-progress watchdog tripped
    kViolation, ///< the invariant checker reported a violation
    kCrash,     ///< an exception escaped the simulation
};

const char *runStatusName(RunStatus s);

/** Everything a driver reads back from one simulation. */
struct RunOutcome {
    SimResult result;
    std::map<std::string, uint64_t> engine_counters;
    std::map<std::string, Histogram> engine_histograms;
    /** Host wall-clock of the simulation itself. Memoized slots did
     *  not simulate and carry 0.0 here (see `memoized`): summing
     *  host_seconds over any slot range bills each unique run
     *  exactly once. */
    double host_seconds = 0.0;
    /** True for duplicate slots served from an earlier slot's
     *  outcome instead of a fresh simulation. */
    bool memoized = false;
    /** Observability artifacts, empty unless the corresponding RunJob
     *  flag was set. Deterministic byte-for-byte (any --jobs). */
    std::string trace_text;
    std::string trace_pipeview;
    std::string profile_json;
    std::string intervals_json;

    // --- robustness (PR 5) --------------------------------------------
    RunStatus status = RunStatus::kOk;
    /** Exception text for kCrash ("PANIC at ...: unknown protection
     *  scheme"); empty otherwise. */
    std::string error;
    /** One-line descriptor of the job that produced this outcome
     *  (label if set, else engine/model/seed). Per-slot: memoized
     *  duplicates keep their own label. */
    std::string job_desc;
    /** Structured DiagnosticReport array ("[]" when clean); only
     *  populated when the job ran with invariants. */
    std::string diagnostics_json;
    /** fault.<site>.draws / fault.<site>.injected per enabled site. */
    std::map<std::string, uint64_t> fault_counters;
    /** Architectural register file at end of run — the basis of the
     *  metamorphic fault-equivalence check (faults perturb timing,
     *  never values). All zero for crashed jobs. */
    std::array<uint64_t, kNumArchRegs> arch_regs{};
    /** Evidence from the capture_evidence re-run: tail of the taint
     *  lifecycle trace around the failure. */
    std::string evidence_trace;
    /** Did the capture_evidence re-run reach the same status? A
     *  `true` means the failure is deterministic and the evidence
     *  shows the real thing. */
    bool reproduced = false;

    uint64_t
    counter(const std::string &name) const
    {
        const auto it = engine_counters.find(name);
        return it == engine_counters.end() ? 0 : it->second;
    }

    bool failed() const { return status != RunStatus::kOk; }
};

/** RunnerPolicy::service_socket sentinel forcing in-process
 *  execution even when SPT_SWEEP_SOCKET is set; the daemon's own
 *  runner uses it so a submission can never route back into the
 *  daemon. */
inline constexpr const char *kNoSweepService = "local";

/** Client-side resilience knobs for sweeps routed through a
 *  spt_sweepd daemon (sim/sweep_service.h, DESIGN.md §16). All
 *  timeouts are *stall* timeouts — they bound how long the peer may
 *  go silent, not how long an operation may take overall; the
 *  overall bound is `deadline_seconds`. Environment overrides (read
 *  when the policy holds the defaults) let every existing driver
 *  gain resilience without code changes: SPT_SWEEP_POLL_MS,
 *  SPT_SWEEP_DEADLINE, SPT_SWEEP_RETRIES. */
struct ServiceClientOptions {
    /** connect() stall bound. */
    unsigned connect_timeout_ms = 2000;
    /** Per-frame receive stall bound (a response that stops making
     *  progress for this long counts as a transport failure). */
    unsigned frame_timeout_ms = 60000;
    /** Consecutive transport failures tolerated before giving up
     *  (reconnect + resubmit-by-token between attempts). */
    unsigned max_retries = 8;
    unsigned backoff_base_ms = 25;
    unsigned backoff_max_ms = 2000;
    /** Fixed status-poll interval; 0 keeps the adaptive 2→100 ms
     *  doubling. */
    unsigned poll_ms = 0;
    /** Overall wall-clock budget for the whole batch (submit →
     *  result); 0 = unbounded. Expiry is a FatalError — exit 2
     *  under toolMain — never a hang. */
    double deadline_seconds = 0.0;
};

/** Sweep-level failure handling plus cross-process execution
 *  backends. The default reproduces the historic contract: first
 *  failure (by slot index) aborts the sweep, no cache, in-process
 *  execution. */
struct RunnerPolicy {
    /** Complete the sweep even when jobs fail; failures are
     *  classified into RunOutcome::status instead of thrown. */
    bool keep_going = false;
    /** Re-run each crashed/violating job once with trace +
     *  invariants to attach evidence (implies extra host time only
     *  for failing jobs). */
    bool capture_evidence = false;

    // --- on-disk result cache (sim/result_cache.h) ----------------
    /** Cache directory. Empty resolves the SPT_CACHE_DIR
     *  environment variable (with SPT_CACHE_MODE, default
     *  read_write), which is how every existing driver gains
     *  cross-process reuse with zero code changes; still empty
     *  means no cache. */
    std::string cache_dir;
    /** Mode used when cache_dir is set explicitly (the environment
     *  path reads SPT_CACHE_MODE instead). kOff disables the cache
     *  even with cache_dir set. */
    CacheMode cache_mode = CacheMode::kReadWrite;

    // --- sweep service (sim/sweep_service.h) ----------------------
    /** Unix-domain socket of a spt_sweepd daemon to route the whole
     *  grid through. Empty resolves SPT_SWEEP_SOCKET; the
     *  kNoSweepService sentinel forces in-process execution. */
    std::string service_socket;
    /** Timeouts / retry budget / poll cadence for the service
     *  client; fields left at their defaults pick up the
     *  SPT_SWEEP_* environment overrides. */
    ServiceClientOptions client;

    /** Called once per slot as its outcome lands, with the slot
     *  index and the final outcome (cache hits and post-pool memo
     *  fills included). Runs on pool worker threads concurrently —
     *  the callee synchronizes. This is the daemon's journaling
     *  hook (sim/batch_journal.h): observability-adjacent, but
     *  unlike the telemetry sinks below it may durably record
     *  results; it must never mutate them. */
    std::function<void(std::size_t, const RunOutcome &)>
        on_slot_complete;

    // --- telemetry (DESIGN.md §15) --------------------------------
    // Observability sinks only: nothing on this block can change a
    // simulated result or any report artifact. All three default to
    // the process-global instances so existing drivers gain
    // telemetry with zero code changes (the event-log *file* sink
    // only opens when SPT_EVENT_LOG / --event-log configures one;
    // the in-memory flight recorder always runs).

    /** Structured event sink for sweep/job records; nullptr uses
     *  EventLog::global(). */
    EventLog *event_log = nullptr;
    /** Span id of the enclosing operation (e.g. the daemon batch
     *  executing this grid); the sweep span nests under it. Empty =
     *  top-level sweep. */
    std::string parent_span;
    /** Metrics registry receiving runner.* series; nullptr uses
     *  MetricsRegistry::global(). */
    MetricsRegistry *metrics = nullptr;
    /** Live per-slot progress board; nullptr uses
     *  ProgressBoard::global() (what the daemon's status op and
     *  spt_top read). */
    ProgressBoard *progress = nullptr;
    /** Heartbeat sampling period in simulated cycles: each running
     *  job publishes (cycles, instructions) into its progress slot
     *  roughly this often. 0 disables mid-run heartbeats (start/
     *  finish transitions are still recorded). The default keeps
     *  the check off the per-cycle stats path — one integer compare
     *  per run-loop iteration. */
    uint64_t heartbeat_cycles = 4'000'000;
};

/** Bookkeeping from the last ExpRunner::run call. */
struct SweepStats {
    unsigned workers = 1;    ///< pool size actually used
    uint64_t unique_jobs = 0;
    uint64_t memo_hits = 0;  ///< jobs served from an earlier slot
    double wall_seconds = 0.0;
    uint64_t failed_jobs = 0; ///< slots with status != kOk
    /** job_desc of the lowest-indexed failed slot; empty if none. */
    std::string first_failure;
    /** Result-cache traffic of this sweep (all zero with the cache
     *  off). When the sweep ran via the service, these are the
     *  daemon-side numbers for this batch's execution. */
    CacheStats cache;
    /** Resolved cache mode name ("off" when disabled). */
    std::string cache_mode = "off";
    /** Resolved cache directory ("" when disabled). */
    std::string cache_dir;
    /** True when the grid was executed by a sweep daemon rather
     *  than in-process. */
    bool via_service = false;
    /** Client-side wait: cumulative time slept between status polls
     *  and the poll count (via_service only — the diagnosable part
     *  of "why did my sweep take so long"). Host timing; never in
     *  report artifacts. */
    double poll_wait_seconds = 0.0;
    uint64_t polls = 0;
};

/** In-process memoization key: program identity (object address)
 *  plus every field of the job descriptor. Keep in sync with
 *  EngineConfig/SptConfig — a field missing here would merge
 *  distinct design points — and with
 *  ResultCache::canonicalKey, its content-addressed cross-process
 *  counterpart (same inventory, pointers replaced by content
 *  hashes). Exposed for tests. */
std::string jobKey(const RunJob &job);

/** One-line human identity of a job for reports: label if set,
 *  else engine/model/seed/faults. This is what RunOutcome::job_desc
 *  holds; the sweep-service client uses it to reassemble outcomes
 *  identical to an in-process run's. */
std::string describeRunJob(const RunJob &job);

class ExpRunner
{
  public:
    /** @param jobs worker count; 0 resolves SPT_JOBS then
     *  hardware_concurrency (common/parallel.h). */
    explicit ExpRunner(unsigned jobs = 0);

    /** Executes the grid; outcome i corresponds to grid[i]. Throws
     *  FatalError on a null program. Without keep_going, any
     *  exception escaping a job (e.g. SPT_FATAL/SPT_PANIC inside
     *  the simulator) fails the sweep cleanly after the pool has
     *  drained — deterministically, lowest failing slot first. */
    std::vector<RunOutcome> run(const std::vector<RunJob> &grid,
                                const RunnerPolicy &policy);
    std::vector<RunOutcome>
    run(const std::vector<RunJob> &grid)
    {
        return run(grid, RunnerPolicy{});
    }

    const SweepStats &lastSweep() const { return last_; }
    unsigned workers() const { return workers_; }

  private:
    unsigned workers_;
    SweepStats last_;
};

/** Deterministic JSON report of a finished sweep: per-slot status,
 *  counters, diagnostics and fault telemetry plus the sweep summary.
 *  Host-dependent fields (host_seconds, wall_seconds, workers) are
 *  excluded so the report is byte-identical at any --jobs; this is
 *  the partial-results artifact a keep_going campaign leaves behind
 *  when some cells failed. */
void sweepReportJson(JsonWriter &jw, const std::vector<RunJob> &grid,
                     const std::vector<RunOutcome> &outcomes,
                     const SweepStats &stats);

} // namespace spt

#endif // SPT_SIM_EXP_RUNNER_H
