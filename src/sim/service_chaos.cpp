#include "sim/service_chaos.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/json.h"
#include "common/json_parse.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "sim/chaos.h"
#include "sim/result_cache.h"
#include "sim/sweep_service.h"

namespace spt {

namespace {

bool
isExecutable(const std::string &path)
{
    return ::access(path.c_str(), X_OK) == 0;
}

void
sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

std::string
resolveSweepdBinary(const std::string &explicit_path)
{
    if (!explicit_path.empty()) {
        if (!isExecutable(explicit_path))
            SPT_FATAL("spt_sweepd binary not executable: "
                      << explicit_path);
        return explicit_path;
    }
    if (const char *env = std::getenv("SPT_SWEEPD_BIN")) {
        if (*env != '\0') {
            if (!isExecutable(env))
                SPT_FATAL("SPT_SWEEPD_BIN not executable: " << env);
            return env;
        }
    }
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        const std::filesystem::path self(buf);
        // Same directory (spt_chaos next to spt_sweepd in
        // build/tools), then the build tree's tools/ as seen from
        // tests/ (build/tests/spt_tests).
        for (const std::filesystem::path &cand :
             {self.parent_path() / "spt_sweepd",
              self.parent_path().parent_path() / "tools" /
                  "spt_sweepd"})
            if (isExecutable(cand.string()))
                return cand.string();
    }
    SPT_FATAL("cannot locate the spt_sweepd binary: pass a path or "
              "set SPT_SWEEPD_BIN");
}

// ---------------------------------------------------------------
// SweepdProcess
// ---------------------------------------------------------------

SweepdProcess::SweepdProcess(Options opt) : opt_(std::move(opt)) {}

SweepdProcess::~SweepdProcess()
{
    if (pid_ > 0 && !reaped_) {
        ::kill(pid_, SIGTERM);
        wait();
    }
}

void
SweepdProcess::start()
{
    SPT_ASSERT(pid_ < 0 || reaped_,
               "SweepdProcess already running");
    std::vector<std::string> args = {opt_.binary, "--socket",
                                     opt_.socket_path, "--jobs",
                                     std::to_string(opt_.jobs)};
    if (!opt_.cache_dir.empty()) {
        args.push_back("--cache");
        args.push_back(opt_.cache_dir);
    }
    if (!opt_.journal_dir.empty()) {
        args.push_back("--journal");
        args.push_back(opt_.journal_dir);
    }
    if (opt_.max_queue != 0) {
        args.push_back("--max-queue");
        args.push_back(std::to_string(opt_.max_queue));
    }
    if (opt_.request_timeout_ms != 0) {
        args.push_back("--request-timeout-ms");
        args.push_back(std::to_string(opt_.request_timeout_ms));
    }
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        SPT_FATAL("fork failed: " << std::strerror(errno));
    if (pid == 0) {
        // Child. Keep it exec-or-die: no C++ runtime work between
        // fork and exec beyond fd plumbing.
        if (!opt_.log_path.empty()) {
            const int fd =
                ::open(opt_.log_path.c_str(),
                       O_CREAT | O_WRONLY | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                if (fd > STDERR_FILENO)
                    ::close(fd);
            }
        }
        ::execv(opt_.binary.c_str(), argv.data());
        std::fprintf(stderr, "execv %s: %s\n", opt_.binary.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    pid_ = pid;
    reaped_ = false;
    killed_by_harness_ = false;
    status_ = 0;

    // Readiness: the socket answering a ping, not the file merely
    // existing (bind and listen race the first client otherwise).
    for (int attempt = 0; attempt < 200; ++attempt) {
        int st = 0;
        if (::waitpid(pid_, &st, WNOHANG) == pid_) {
            reaped_ = true;
            status_ = st;
            SPT_FATAL("spt_sweepd exited before becoming ready "
                      "(status " << st << ", log "
                      << (opt_.log_path.empty() ? "inherited"
                                                : opt_.log_path)
                      << ")");
        }
        try {
            const JsonValue resp = parseJson(serviceRequest(
                opt_.socket_path, "{\"op\": \"ping\"}"));
            if (resp.getBool("ok", false))
                return;
        } catch (const FatalError &) {
            // Not up yet.
        }
        sleepMs(50);
    }
    SPT_FATAL("spt_sweepd did not become ready on "
              << opt_.socket_path);
}

void
SweepdProcess::kill9()
{
    SPT_ASSERT(pid_ > 0 && !reaped_, "no child to kill");
    killed_by_harness_ = true;
    ::kill(pid_, SIGKILL);
    wait();
}

void
SweepdProcess::sigterm()
{
    if (pid_ > 0 && !reaped_)
        ::kill(pid_, SIGTERM);
}

int
SweepdProcess::wait()
{
    if (pid_ > 0 && !reaped_) {
        int st = 0;
        while (::waitpid(pid_, &st, 0) < 0 && errno == EINTR) {
        }
        status_ = st;
        reaped_ = true;
    }
    return status_;
}

bool
SweepdProcess::abortedAbnormally()
{
    if (pid_ <= 0 || !reaped_)
        return false;
    if (killed_by_harness_)
        return false; // our SIGKILL, the crash under test
    if (WIFSIGNALED(status_))
        return true;
    return WIFEXITED(status_) && WEXITSTATUS(status_) != 0;
}

// ---------------------------------------------------------------
// FaultProxy
// ---------------------------------------------------------------

namespace {

int
connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        ::close(fd);
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** One poll-bounded read; returns <0 on error/EOF, 0 on timeout. */
ssize_t
readSome(int fd, char *buf, size_t cap, int timeout_ms)
{
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0)
        return -1;
    if (r == 0)
        return 0;
    const ssize_t n = ::read(fd, buf, cap);
    return n <= 0 ? -1 : n;
}

bool
writeAll(int fd, const char *buf, size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, buf, n);
        if (w <= 0)
            return false;
        buf += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

} // namespace

FaultProxy::FaultProxy(std::string listen_path,
                       std::string upstream_path)
    : listen_path_(std::move(listen_path)),
      upstream_path_(std::move(upstream_path))
{
}

FaultProxy::~FaultProxy() { stop(); }

void
FaultProxy::start()
{
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        SPT_FATAL("proxy socket: " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (listen_path_.size() >= sizeof addr.sun_path)
        SPT_FATAL("proxy socket path too long: " << listen_path_);
    std::memcpy(addr.sun_path, listen_path_.c_str(),
                listen_path_.size() + 1);
    ::unlink(listen_path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 16) != 0)
        SPT_FATAL("proxy bind " << listen_path_ << ": "
                                << std::strerror(errno));
    stopping_.store(false);
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

void
FaultProxy::stop()
{
    if (listen_fd_ < 0)
        return;
    stopping_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (accept_thread_.joinable())
        accept_thread_.join();
    std::vector<std::thread> relays;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        relays.swap(relay_threads_);
    }
    for (std::thread &t : relays)
        t.join();
    ::unlink(listen_path_.c_str());
}

void
FaultProxy::arm(Fault fault, unsigned connections)
{
    std::lock_guard<std::mutex> lock(mutex_);
    armed_fault_ = fault;
    armed_left_ = connections;
}

void
FaultProxy::acceptLoop()
{
    for (;;) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) {
            if (stopping_.load())
                return;
            if (errno == EINTR)
                continue;
            return;
        }
        Fault fault = Fault::kNone;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (armed_left_ > 0) {
                fault = armed_fault_;
                --armed_left_;
            }
            relay_threads_.emplace_back(
                [this, client, fault] { relay(client, fault); });
        }
        if (fault != Fault::kNone)
            faults_injected_.fetch_add(1);
    }
}

void
FaultProxy::relay(int client_fd, Fault fault)
{
    char buf[4096];

    if (fault == Fault::kResetMidRequest) {
        // Swallow the start of the request, then vanish: the
        // upstream never hears about it, the client sees EOF where
        // a response was due.
        (void)readSome(client_fd, buf, sizeof buf, 1000);
        ::close(client_fd);
        return;
    }

    const int upstream_fd = connectUnix(upstream_path_);
    if (upstream_fd < 0) {
        ::close(client_fd);
        return;
    }

    // Transparent bidirectional relay; the response-direction
    // faults trigger on the first upstream bytes.
    bool response_seen = false;
    bool open = true;
    while (open && !stopping_.load()) {
        pollfd fds[2] = {{client_fd, POLLIN, 0},
                         {upstream_fd, POLLIN, 0}};
        const int r = ::poll(fds, 2, 50);
        if (r < 0)
            break;
        if (r == 0)
            continue;
        if (fds[0].revents != 0) {
            const ssize_t n =
                ::read(client_fd, buf, sizeof buf);
            if (n <= 0 || !writeAll(upstream_fd, buf,
                                    static_cast<size_t>(n)))
                break;
        }
        if (fds[1].revents != 0) {
            const ssize_t n =
                ::read(upstream_fd, buf, sizeof buf);
            if (n <= 0)
                break;
            size_t forward = static_cast<size_t>(n);
            if (!response_seen && fault != Fault::kNone) {
                response_seen = true;
                if (fault == Fault::kTruncateResponse) {
                    // A torn frame: less than the 4-byte length
                    // prefix promises.
                    forward = forward < 3 ? forward : 3;
                    writeAll(client_fd, buf, forward);
                    break;
                }
                if (fault == Fault::kSlowLoris) {
                    // A dribble, then dead air with the connection
                    // held open: only the client's stall deadline
                    // can save it.
                    writeAll(client_fd, buf,
                             forward < 2 ? forward : 2);
                    const auto until =
                        std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(hold_ms_);
                    while (!stopping_.load() &&
                           std::chrono::steady_clock::now() < until)
                        sleepMs(20);
                    break;
                }
            }
            if (!writeAll(client_fd, buf, forward))
                break;
        }
    }
    ::close(client_fd);
    ::close(upstream_fd);
}

// ---------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------

namespace {

struct CounterDelta {
    Counter &counter;
    uint64_t start;
    explicit CounterDelta(const char *name)
        : counter(MetricsRegistry::global().counter(name)),
          start(counter.value())
    {
    }
    uint64_t
    delta() const
    {
        return counter.value() - start;
    }
};

/** The campaign grid: every quick chaos workload under the three
 *  chaos engines — enough slots that a mid-batch kill has real
 *  work to land in. Programs live in the static registry behind
 *  quickChaosWorkloads(). */
std::vector<RunJob>
campaignGrid()
{
    static const std::vector<ChaosWorkload> workloads =
        quickChaosWorkloads();
    static const std::vector<NamedConfig> engines = chaosEngines();
    std::vector<RunJob> grid;
    for (const ChaosWorkload &w : workloads)
        for (const NamedConfig &e : engines) {
            RunJob job;
            job.program = w.program;
            job.engine = e.engine;
            job.label = w.name + "/" + e.name;
            grid.push_back(job);
        }
    return grid;
}

ServiceClientOptions
chaosClientOptions(double deadline_seconds)
{
    ServiceClientOptions c;
    c.connect_timeout_ms = 1000;
    c.frame_timeout_ms = 1500;
    c.max_retries = 20;
    c.backoff_base_ms = 10;
    c.backoff_max_ms = 200;
    c.poll_ms = 5;
    c.deadline_seconds = deadline_seconds;
    return c;
}

/** Runs the grid through @p socket with the resilient client;
 *  fills @p out (deterministic encodings) and returns "" or the
 *  failure note. */
std::string
runClient(const std::string &socket,
          const std::vector<RunJob> &grid, double deadline_seconds,
          std::vector<std::string> *out)
{
    RunnerPolicy policy;
    policy.service_socket = socket;
    policy.keep_going = true;
    policy.client = chaosClientOptions(deadline_seconds);
    try {
        const std::vector<RunOutcome> res =
            ExpRunner(1).run(grid, policy);
        out->clear();
        for (const RunOutcome &o : res)
            out->push_back(
                ResultCache::encodeOutcomeDeterministic(o));
        return "";
    } catch (const FatalError &e) {
        return std::string("client gave up: ") + e.what();
    }
}

uint64_t
countDivergent(const std::vector<std::string> &got,
               const std::vector<std::string> &want)
{
    if (got.size() != want.size())
        return want.size();
    uint64_t divergent = 0;
    for (size_t i = 0; i < want.size(); ++i)
        if (got[i] != want[i])
            ++divergent;
    return divergent;
}

/** Flips one bit near the end of @p path (on the last byte of the
 *  final record's trailer region); returns false when the file is
 *  missing or empty. */
bool
flipTailBit(const std::string &path, uint64_t offset_from_end)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size <= 0 ||
        static_cast<uint64_t>(size) <= offset_from_end) {
        std::fclose(f);
        return false;
    }
    std::fseek(f,
               size - 1 - static_cast<long>(offset_from_end),
               SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f,
               size - 1 - static_cast<long>(offset_from_end),
               SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
    return true;
}

std::string
onlyFileIn(const std::string &dir)
{
    for (const auto &entry :
         std::filesystem::directory_iterator(dir))
        if (entry.is_regular_file())
            return entry.path().string();
    return "";
}

} // namespace

ServiceChaosResult
runServiceChaosCampaign(const ServiceChaosConfig &cfg)
{
    const std::string binary =
        resolveSweepdBinary(cfg.sweepd_binary);
    const std::string work =
        cfg.work_dir.empty()
            ? "/tmp/spt_service_chaos_" +
                  std::to_string(::getpid())
            : cfg.work_dir;
    std::filesystem::create_directories(work);
    const std::string sock_base =
        "/tmp/spt_chaos_" + std::to_string(::getpid());
    const std::string shared_cache = work + "/cache";
    std::filesystem::remove_all(shared_cache);

    const std::vector<RunJob> grid = campaignGrid();

    // Undisturbed baseline, in process — also seeds the shared
    // cache so the proxy/bit-rot scenarios replay from warm entries
    // and the campaign's wall clock stays CI-sized.
    std::vector<std::string> baseline;
    {
        RunnerPolicy policy;
        policy.service_socket = kNoSweepService;
        policy.keep_going = true;
        policy.cache_dir = shared_cache;
        const std::vector<RunOutcome> res =
            ExpRunner(cfg.daemon_jobs).run(grid, policy);
        for (const RunOutcome &o : res)
            baseline.push_back(
                ResultCache::encodeOutcomeDeterministic(o));
    }

    ServiceChaosResult result;
    const auto record = [&](ServiceChaosScenarioResult s) {
        s.ok = s.note.empty() && s.divergent_slots == 0 &&
               !s.daemon_abort;
        result.summary.scenarios += 1;
        result.summary.divergent_results += s.divergent_slots;
        result.summary.daemon_aborts += s.daemon_abort ? 1 : 0;
        if (!s.note.empty())
            result.summary.failures += 1;
        report("[service-chaos] " + s.name + ": " +
               (s.ok ? "clean" : ("DIRTY " + s.note)));
        result.scenarios.push_back(std::move(s));
    };

    // --- proxy faults: truncate / reset / slow-loris ------------
    const struct {
        const char *name;
        FaultProxy::Fault fault;
    } proxy_faults[] = {
        {"proxy-truncate", FaultProxy::Fault::kTruncateResponse},
        {"proxy-reset", FaultProxy::Fault::kResetMidRequest},
        {"proxy-slowloris", FaultProxy::Fault::kSlowLoris},
    };
    for (const auto &pf : proxy_faults) {
        ServiceChaosScenarioResult s;
        s.name = pf.name;
        const std::string daemon_sock =
            sock_base + "_" + pf.name + "_d.sock";
        const std::string proxy_sock =
            sock_base + "_" + pf.name + "_p.sock";
        SweepdProcess::Options dopt;
        dopt.binary = binary;
        dopt.socket_path = daemon_sock;
        dopt.cache_dir = shared_cache;
        dopt.jobs = cfg.daemon_jobs;
        dopt.log_path = work + "/" + pf.name + ".log";
        SweepdProcess daemon(dopt);
        CounterDelta errors("client.svc.transport_errors");
        CounterDelta resubmits("client.svc.resubmits");
        try {
            daemon.start();
            FaultProxy proxy(proxy_sock, daemon_sock);
            proxy.setHoldMs(3000); // > the client's 1500 ms stall
            proxy.start();
            proxy.arm(pf.fault, 2);
            std::vector<std::string> got;
            s.note = runClient(proxy_sock, grid,
                               cfg.deadline_seconds, &got);
            if (s.note.empty())
                s.divergent_slots = countDivergent(got, baseline);
            s.faults_injected = proxy.faultsInjected();
            if (s.note.empty() && s.faults_injected == 0)
                s.note = "proxy injected no fault (vacuous run)";
            proxy.stop();
        } catch (const FatalError &e) {
            s.note = e.what();
        }
        daemon.sigterm();
        daemon.wait();
        s.daemon_abort = daemon.abortedAbnormally();
        s.transport_errors = errors.delta();
        s.resubmits = resubmits.delta();
        record(std::move(s));
    }

    // --- kill -9 mid-batch, journaled restart -------------------
    // Fresh (cold) cache: the batch must have real work in flight
    // for the kill to interrupt. Run twice — once clean, once with
    // a bit flipped in the journal between death and restart.
    for (const bool bitrot : {false, true}) {
        ServiceChaosScenarioResult s;
        s.name = bitrot ? "kill9-journal-bitrot" : "kill9-restart";
        const std::string daemon_sock =
            sock_base + (bitrot ? "_k9rot" : "_k9") + "_d.sock";
        const std::string cold_cache =
            work + "/" + s.name + "_cache";
        const std::string journal =
            work + "/" + s.name + "_journal";
        std::filesystem::remove_all(cold_cache);
        std::filesystem::remove_all(journal);
        SweepdProcess::Options dopt;
        dopt.binary = binary;
        dopt.socket_path = daemon_sock;
        dopt.cache_dir = cold_cache;
        dopt.journal_dir = journal;
        dopt.jobs = cfg.daemon_jobs;
        dopt.log_path = work + "/" + s.name + ".log";
        SweepdProcess first(dopt);
        SweepdProcess second(dopt);
        CounterDelta errors("client.svc.transport_errors");
        CounterDelta resubmits("client.svc.resubmits");
        try {
            first.start();
            std::vector<std::string> got;
            std::string note;
            std::thread client([&] {
                note = runClient(daemon_sock, grid,
                                 cfg.deadline_seconds, &got);
            });
            // Let the batch get going, then pull the plug.
            sleepMs(400);
            first.kill9();
            if (bitrot) {
                const std::string seg = onlyFileIn(journal);
                if (seg.empty() || !flipTailBit(seg, 2))
                    s.note = "no journal segment to corrupt";
            }
            second.start();
            client.join();
            if (s.note.empty())
                s.note = note;
            if (s.note.empty())
                s.divergent_slots = countDivergent(got, baseline);
        } catch (const FatalError &e) {
            s.note = e.what();
        }
        second.sigterm();
        second.wait();
        s.daemon_abort =
            first.abortedAbnormally() ||
            second.abortedAbnormally();
        s.transport_errors = errors.delta();
        s.resubmits = resubmits.delta();
        record(std::move(s));
    }

    // --- result-cache bit-rot -----------------------------------
    // Corrupt warm entries; the daemon must detect (FNV trailer),
    // degrade to a miss, re-simulate, and still hand back
    // baseline-identical bytes.
    {
        ServiceChaosScenarioResult s;
        s.name = "cache-bitrot";
        const std::string daemon_sock =
            sock_base + "_rot_d.sock";
        unsigned flipped = 0;
        for (const auto &entry :
             std::filesystem::directory_iterator(shared_cache)) {
            if (!entry.is_regular_file() || flipped >= 4)
                continue;
            if (flipTailBit(entry.path().string(), 16))
                ++flipped;
        }
        SweepdProcess::Options dopt;
        dopt.binary = binary;
        dopt.socket_path = daemon_sock;
        dopt.cache_dir = shared_cache;
        dopt.jobs = cfg.daemon_jobs;
        dopt.log_path = work + "/" + s.name + ".log";
        SweepdProcess daemon(dopt);
        try {
            if (flipped == 0)
                SPT_FATAL("no cache entries to corrupt");
            daemon.start();
            std::vector<std::string> got;
            s.note = runClient(daemon_sock, grid,
                               cfg.deadline_seconds, &got);
            if (s.note.empty())
                s.divergent_slots = countDivergent(got, baseline);
            s.faults_injected = flipped;
        } catch (const FatalError &e) {
            s.note = e.what();
        }
        daemon.sigterm();
        daemon.wait();
        s.daemon_abort = daemon.abortedAbnormally();
        record(std::move(s));
    }

    // --- report --------------------------------------------------
    JsonWriter jw;
    jw.beginObject();
    jw.field("campaign", "service-chaos");
    jw.field("grid_slots", static_cast<uint64_t>(grid.size()));
    jw.key("scenarios").beginArray();
    for (const ServiceChaosScenarioResult &s : result.scenarios) {
        jw.beginObject();
        jw.field("name", s.name);
        jw.field("ok", s.ok);
        jw.field("divergent_slots", s.divergent_slots);
        jw.field("daemon_abort", s.daemon_abort);
        jw.field("transport_errors", s.transport_errors);
        jw.field("resubmits", s.resubmits);
        jw.field("faults_injected", s.faults_injected);
        jw.field("note", s.note);
        jw.endObject();
    }
    jw.endArray();
    jw.key("summary").beginObject();
    jw.field("scenarios", result.summary.scenarios);
    jw.field("divergent_results",
             result.summary.divergent_results);
    jw.field("daemon_aborts", result.summary.daemon_aborts);
    jw.field("failures", result.summary.failures);
    jw.field("clean", result.summary.clean());
    jw.endObject();
    jw.endObject();
    result.json = jw.str();
    return result;
}

} // namespace spt
