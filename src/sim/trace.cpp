#include "sim/trace.h"

#include <charconv>
#include <sstream>
#include <unordered_map>

#include "isa/instruction.h"

namespace spt {

Tracer::Tracer(std::ostream *text, std::ostream *pipeview)
    : text_(text), pipeview_(pipeview)
{
}

void
Tracer::event(uint64_t cycle, const char *name, const DynInst &d)
{
    if (!text_)
        return;
    *text_ << cycle << ' ' << name << " seq=" << d.seq
           << " pc=" << d.pc;
}

void
Tracer::fetch(uint64_t cycle, const DynInst &d)
{
    if (text_) {
        event(cycle, "fetch", d);
        *text_ << ' ' << toString(d.si) << '\n';
    }
    if (pipeview_) {
        PipeRec &rec = pipe_[d.seq];
        rec.fetch = cycle;
        rec.pc = d.pc;
        rec.disasm = toString(d.si);
        rec.is_store = d.is_store;
    }
}

void
Tracer::rename(uint64_t cycle, const DynInst &d)
{
    if (text_) {
        event(cycle, "rename", d);
        *text_ << '\n';
    }
    if (pipeview_)
        pipe_[d.seq].rename = cycle;
}

void
Tracer::issue(uint64_t cycle, const DynInst &d)
{
    if (text_) {
        event(cycle, "issue", d);
        *text_ << '\n';
    }
    if (pipeview_)
        pipe_[d.seq].issue = cycle;
}

void
Tracer::executed(uint64_t cycle, const DynInst &d)
{
    if (text_) {
        event(cycle, "exec", d);
        *text_ << '\n';
    }
    if (pipeview_)
        pipe_[d.seq].complete = cycle;
}

void
Tracer::memAccess(uint64_t cycle, const DynInst &d)
{
    if (text_) {
        event(cycle, "memaccess", d);
        *text_ << " addr=" << d.eff_addr
               << (d.forwarded ? " forwarded=1" : "") << '\n';
    }
}

void
Tracer::reachedVp(uint64_t cycle, const DynInst &d)
{
    if (text_) {
        event(cycle, "vp", d);
        *text_ << '\n';
    }
}

void
Tracer::retired(uint64_t cycle, const DynInst &d)
{
    if (text_) {
        event(cycle, "retire", d);
        *text_ << '\n';
    }
    if (pipeview_) {
        const auto it = pipe_.find(d.seq);
        if (it != pipe_.end()) {
            emitPipeRecord(d.seq, it->second, cycle);
            pipe_.erase(it);
        }
    }
    delays_.erase(d.seq);
}

void
Tracer::squashed(uint64_t cycle, const DynInst &d)
{
    const auto dit = delays_.find(d.seq);
    if (dit != delays_.end()) {
        if (dit->second.open)
            endDelay(cycle, d, /*squash=*/true);
        delays_.erase(d.seq);
    }
    if (text_) {
        event(cycle, "squash", d);
        *text_ << '\n';
    }
    if (pipeview_) {
        const auto it = pipe_.find(d.seq);
        if (it != pipe_.end()) {
            emitPipeRecord(d.seq, it->second, /*retire_cycle=*/0);
            pipe_.erase(it);
        }
    }
}

void
Tracer::taintEvent(uint64_t cycle, TaintEvent ev, const DynInst &d,
                   uint8_t slot)
{
    if (!text_)
        return;
    if (ev == TaintEvent::kTaintedAtRename) {
        event(cycle, "taint", d);
        *text_ << " slot=" << taintSlotName(slot) << '\n';
    } else {
        event(cycle, "untaint", d);
        *text_ << " rule=" << taintEventName(ev)
               << " slot=" << taintSlotName(slot) << '\n';
    }
}

void
Tracer::delayCycle(uint64_t cycle, const DynInst &d, DelayKind kind,
                   DelayCause cause)
{
    OpenDelay &od = delays_[d.seq];
    if (!od.open) {
        od.open = true;
        od.start_cycle = cycle;
        od.cycles = 0;
        od.kind = kind;
        if (text_) {
            event(cycle, "delay-start", d);
            *text_ << " kind=" << delayKindName(kind)
                   << " cause=" << delayCauseName(cause) << '\n';
        }
    }
    ++od.cycles;
}

void
Tracer::endDelay(uint64_t cycle, const DynInst &d, bool squash)
{
    OpenDelay &od = delays_[d.seq];
    if (text_) {
        event(cycle, squash ? "delay-squash" : "delay-end", d);
        *text_ << " kind=" << delayKindName(od.kind)
               << " cycles=" << od.cycles << '\n';
    }
    od.open = false;
}

void
Tracer::gateOpened(uint64_t cycle, const DynInst &d, DelayKind)
{
    const auto it = delays_.find(d.seq);
    if (it == delays_.end() || !it->second.open)
        return; // never delayed: no interval to close
    endDelay(cycle, d, /*squash=*/false);
    delays_.erase(d.seq);
}

void
Tracer::emitPipeRecord(SeqNum seq, const PipeRec &rec,
                       uint64_t retire_cycle)
{
    // gem5 O3PipeView record (what Konata parses): ticks are cycle
    // numbers, addresses are byte PCs, tick 0 marks an unreached
    // stage and retire tick 0 a squashed instruction. We have no
    // distinct decode/dispatch stages: decode rides with fetch and
    // dispatch with rename, matching the collapsed frontend.
    std::ostream &os = *pipeview_;
    os << "O3PipeView:fetch:" << rec.fetch << ":0x" << std::hex
       << rec.pc * kInstrBytes << std::dec << ":0:" << seq << ':'
       << rec.disasm << '\n';
    os << "O3PipeView:decode:" << rec.fetch << '\n';
    os << "O3PipeView:rename:" << rec.rename << '\n';
    os << "O3PipeView:dispatch:" << rec.rename << '\n';
    // NOP/HALT/plain-JAL complete at dispatch without an issue
    // event; carry the rename tick forward so retired instructions
    // always render a full bar.
    uint64_t issue = rec.issue;
    uint64_t complete = rec.complete;
    if (retire_cycle != 0) {
        if (issue == 0)
            issue = rec.rename;
        if (complete == 0)
            complete = issue;
    }
    os << "O3PipeView:issue:" << issue << '\n';
    os << "O3PipeView:complete:" << complete << '\n';
    const uint64_t store_tick =
        (retire_cycle != 0 && rec.is_store) ? retire_cycle : 0;
    os << "O3PipeView:retire:" << retire_cycle
       << ":store:" << store_tick << '\n';
}

void
Tracer::finish(uint64_t final_cycle)
{
    if (text_) {
        // Close intervals of instructions still gated at run end so
        // every delay-start has a textual closer.
        for (auto &[seq, od] : delays_) {
            if (!od.open)
                continue;
            *text_ << final_cycle << " delay-unfinished seq=" << seq
                   << " kind=" << delayKindName(od.kind)
                   << " cycles=" << od.cycles << '\n';
            od.open = false;
        }
    }
    delays_.clear();
    if (pipeview_) {
        // In-flight instructions at run end: emit as never-retired
        // (retire tick 0), in seq order for byte-stable output.
        for (const auto &[seq, rec] : pipe_)
            emitPipeRecord(seq, rec, /*retire_cycle=*/0);
    }
    pipe_.clear();
}

// --------------------------------------------------------------------
// Trace checking
// --------------------------------------------------------------------

namespace {

struct SeqState {
    uint64_t last_cycle = 0;
    bool seen_fetch = false;
    bool closed = false; ///< retired or squashed
    bool delay_open = false;
};

bool
fail(std::string *error, size_t line_no, const std::string &why)
{
    if (error) {
        std::ostringstream os;
        os << "line " << line_no << ": " << why;
        *error = os.str();
    }
    return false;
}

} // namespace

bool
validateTraceText(std::istream &in, std::string *error)
{
    std::unordered_map<uint64_t, SeqState> seqs;
    std::string line;
    size_t line_no = 0;
    uint64_t last_cycle = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        uint64_t cycle = 0;
        std::string ev, seq_kv, pc_kv;
        if (!(ls >> cycle >> ev >> seq_kv) ||
            seq_kv.rfind("seq=", 0) != 0)
            return fail(error, line_no, "malformed event line");
        uint64_t seq = 0;
        const char *b = seq_kv.c_str() + 4;
        const auto [p, ec] =
            std::from_chars(b, seq_kv.c_str() + seq_kv.size(), seq);
        if (ec != std::errc() || *p != '\0')
            return fail(error, line_no, "bad seq field");
        if (cycle < last_cycle)
            return fail(error, line_no,
                        "global cycle order went backwards");
        last_cycle = cycle;

        SeqState &st = seqs[seq];
        if (!st.seen_fetch && ev != "fetch")
            return fail(error, line_no,
                        "first event for seq is not fetch");
        if (st.seen_fetch && ev == "fetch")
            return fail(error, line_no, "duplicate fetch for seq");
        if (st.closed)
            return fail(error, line_no,
                        "event after retire/squash for seq");
        if (cycle < st.last_cycle)
            return fail(error, line_no,
                        "per-seq cycle order went backwards");
        st.last_cycle = cycle;

        if (ev == "fetch") {
            st.seen_fetch = true;
        } else if (ev == "retire") {
            if (st.delay_open)
                return fail(error, line_no,
                            "retire with an open delay interval");
            st.closed = true;
        } else if (ev == "squash") {
            st.closed = true;
            st.delay_open = false;
        } else if (ev == "delay-start") {
            if (st.delay_open)
                return fail(error, line_no,
                            "nested delay-start for seq");
            st.delay_open = true;
        } else if (ev == "delay-end" || ev == "delay-squash" ||
                   ev == "delay-unfinished") {
            if (!st.delay_open)
                return fail(error, line_no,
                            "delay close without delay-start");
            st.delay_open = false;
        }
    }
    for (const auto &[seq, st] : seqs) {
        if (st.delay_open) {
            std::ostringstream os;
            os << "seq " << seq
               << ": delay-start without end or squash at EOF";
            if (error)
                *error = os.str();
            return false;
        }
    }
    if (error)
        error->clear();
    return true;
}

} // namespace spt
