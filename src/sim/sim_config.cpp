#include "sim/sim_config.h"

namespace spt {

namespace {

EngineConfig
sptConfig(UntaintMethod method, ShadowKind shadow)
{
    EngineConfig cfg;
    cfg.scheme = ProtectionScheme::kSpt;
    cfg.spt.method = method;
    cfg.spt.shadow = shadow;
    cfg.spt.broadcast_width = 3;
    return cfg;
}

EngineConfig
scheme(ProtectionScheme s)
{
    EngineConfig cfg;
    cfg.scheme = s;
    return cfg;
}

} // namespace

std::vector<NamedConfig>
table2Configs()
{
    return {
        {"UnsafeBaseline", scheme(ProtectionScheme::kUnsafeBaseline)},
        {"SecureBaseline", scheme(ProtectionScheme::kSecureBaseline)},
        {"SPT{Fwd,NoShadowL1}",
         sptConfig(UntaintMethod::kForward, ShadowKind::kNone)},
        {"SPT{Bwd,NoShadowL1}",
         sptConfig(UntaintMethod::kBackward, ShadowKind::kNone)},
        {"SPT{Bwd,ShadowL1}",
         sptConfig(UntaintMethod::kBackward, ShadowKind::kShadowL1)},
        {"SPT{Bwd,ShadowMem}",
         sptConfig(UntaintMethod::kBackward, ShadowKind::kShadowMem)},
        {"SPT{Ideal,ShadowMem}",
         sptConfig(UntaintMethod::kIdeal, ShadowKind::kShadowMem)},
        {"STT", scheme(ProtectionScheme::kStt)},
    };
}

std::vector<NamedConfig>
headlineConfigs()
{
    return {
        {"UnsafeBaseline", scheme(ProtectionScheme::kUnsafeBaseline)},
        {"SecureBaseline", scheme(ProtectionScheme::kSecureBaseline)},
        {"SPT{Bwd,ShadowL1}",
         sptConfig(UntaintMethod::kBackward, ShadowKind::kShadowL1)},
        {"STT", scheme(ProtectionScheme::kStt)},
    };
}

} // namespace spt
