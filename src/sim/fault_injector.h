/**
 * @file
 * Deterministic, seeded timing-fault injector (the FaultHooks
 * implementation the chaos campaigns install into the machine).
 *
 * Each FaultSite draws from its own xoshiro256** stream keyed by
 * (plan seed, site), so the Bernoulli sequence one site sees is
 * independent of every other site's rate and of how often other
 * sites are consulted. Rates are integer parts-per-million per
 * opportunity — no floating point anywhere near the draw, so the
 * decision sequence is exact across platforms and participates
 * cleanly in the sweep memoization key (sim/exp_runner.h).
 *
 * Thread confinement follows the Rng contract (common/rng.h): one
 * FaultInjector per Simulator, constructed and consulted entirely on
 * the worker running that job.
 */

#ifndef SPT_SIM_FAULT_INJECTOR_H
#define SPT_SIM_FAULT_INJECTOR_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/fault_hooks.h"
#include "common/rng.h"

namespace spt {

/** A campaign's per-job fault schedule. Every field participates in
 *  jobKey() — two jobs differing in any rate or the seed are
 *  distinct design points. */
struct FaultPlan {
    uint64_t seed = 0;
    /** Injection probability per opportunity, in parts-per-million;
     *  0 disables the site (and leaves its stream untouched). */
    std::array<uint32_t, kNumFaultSites> rate_ppm{};

    bool
    any() const
    {
        for (const uint32_t r : rate_ppm)
            if (r != 0)
                return true;
        return false;
    }

    void
    set(FaultSite site, uint32_t ppm)
    {
        rate_ppm[static_cast<std::size_t>(site)] = ppm;
    }
};

class FaultInjector : public FaultHooks
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    bool fire(FaultSite site) override;

    const FaultPlan &plan() const { return plan_; }
    /** Opportunities seen / faults injected at @p site so far. */
    uint64_t draws(FaultSite site) const
    {
        return draws_[static_cast<std::size_t>(site)];
    }
    uint64_t fired(FaultSite site) const
    {
        return fired_[static_cast<std::size_t>(site)];
    }
    uint64_t
    totalFired() const
    {
        uint64_t n = 0;
        for (const uint64_t f : fired_)
            n += f;
        return n;
    }

    /** "fault.<site>.draws" / "fault.<site>.injected" counters for
     *  campaign reports (only sites with a nonzero rate appear). */
    std::map<std::string, uint64_t> counters() const;

  private:
    friend class Snapshotter; // checkpoint wire format (sim/snapshot)

    FaultPlan plan_;
    std::array<Rng, kNumFaultSites> streams_;
    std::array<uint64_t, kNumFaultSites> draws_{};
    std::array<uint64_t, kNumFaultSites> fired_{};
};

} // namespace spt

#endif // SPT_SIM_FAULT_INJECTOR_H
