/**
 * @file
 * Live job progress for sweeps: a fixed array of per-slot atomic
 * progress cells that ExpRunner workers update from Core heartbeats
 * and monitoring paths (the daemon's `status` op, spt_top) snapshot
 * without locks on the writer side.
 *
 * Determinism: the board is write-only from the simulation's point
 * of view — nothing in ExpRunner or the Simulator reads it back, so
 * its values (which include host-clock timing) can never leak into
 * stdout or report artifacts. Snapshot readers may observe slightly
 * torn cross-field state (cycles from one heartbeat, instructions
 * from the next); that is acceptable for monitoring and keeps the
 * heartbeat path to a handful of relaxed stores.
 */

#ifndef SPT_SIM_PROGRESS_H
#define SPT_SIM_PROGRESS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spt {

class ProgressBoard
{
  public:
    enum class SlotState : int {
        kIdle = 0,
        kRunning = 1,
        kDone = 2,
    };

    /** One slot's state as seen by a snapshot. */
    struct SlotProgress {
        size_t slot = 0;
        std::string label;         ///< job description (workload…)
        SlotState state = SlotState::kIdle;
        uint64_t cycles = 0;       ///< simulated cycles so far
        uint64_t instructions = 0; ///< retired so far
        double host_seconds = 0.0; ///< host time since start()
    };

    /** Sizes the board for a sweep and clears every slot. Call on
     *  the coordinating thread before workers start; labels are set
     *  with setLabel() at the same point, so workers only ever
     *  touch the atomic cells. */
    void reset(size_t num_slots);

    size_t numSlots() const;

    /** Attaches a human-readable job description to @p slot (main
     *  thread, pre-pool — see reset()). */
    void setLabel(size_t slot, const std::string &label);

    // --- worker-side (lock-free) -----------------------------------
    void start(size_t slot);
    void heartbeat(size_t slot, uint64_t cycles,
                   uint64_t instructions);
    void finish(size_t slot, uint64_t cycles,
                uint64_t instructions);

    // --- monitor-side ----------------------------------------------
    std::vector<SlotProgress> snapshot() const;
    size_t countInState(SlotState state) const;

    /** Process-wide board (the daemon's ExpRunner publishes here;
     *  tests build private boards). */
    static ProgressBoard &global();

  private:
    struct Slot {
        std::atomic<int> state{
            static_cast<int>(SlotState::kIdle)};
        std::atomic<uint64_t> cycles{0};
        std::atomic<uint64_t> instructions{0};
        std::atomic<double> start_s{0.0};
        std::atomic<double> done_s{0.0};
    };

    /** Guards resize + labels (reset/setLabel/snapshot); the Slot
     *  atomics themselves are touched lock-free by workers. */
    mutable std::mutex mu_;
    size_t num_slots_ = 0;
    std::unique_ptr<Slot[]> slots_;
    std::vector<std::string> labels_;
};

} // namespace spt

#endif // SPT_SIM_PROGRESS_H
