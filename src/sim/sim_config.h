/**
 * @file
 * Simulation configuration: Table 1 (machine parameters) defaults
 * and the Table 2 design-variant factory.
 */

#ifndef SPT_SIM_SIM_CONFIG_H
#define SPT_SIM_SIM_CONFIG_H

#include <string>
#include <vector>

#include "core/engine_factory.h"
#include "mem/memory_system.h"
#include "sim/fault_injector.h"
#include "uarch/core.h"

namespace spt {

struct SimConfig {
    CoreParams core;              ///< Table 1 pipeline parameters
    MemorySystemParams mem;       ///< Table 1 cache/NoC/DRAM
    EngineConfig engine;          ///< Table 2 protection variant
    uint64_t max_cycles = 500'000'000;
    /** Compare every commit against the functional reference CPU. */
    bool lockstep_check = false;
    /** Attribute every delayed-transmitter cycle to a cause, keyed
     *  by PC (sim/profile.h). Off by default: the observer hooks are
     *  a single null-pointer test when no observer is installed. */
    bool profile = false;
    /** Snapshot IPC / delay / taint-population metrics every N
     *  cycles; 0 disables interval recording. */
    uint64_t interval_stats = 0;
    /** Seeded timing-fault schedule (sim/fault_injector.h); all
     *  rates zero (the default) means no injection. */
    FaultPlan faults;
    /** Attach the runtime InvariantChecker
     *  (uarch/invariant_checker.h). Observer-only — simulated state
     *  and untaint counters are unchanged; results gain violation
     *  verdicts and diagnostics. */
    bool invariants = false;
    /** Cooperative host wall-clock cap on run(); 0 disables. The
     *  outcome of a timed-out run is schedule-dependent. */
    double wall_timeout_seconds = 0.0;
    /** Checkpoint drain barrier (sim/snapshot.h): when nonzero,
     *  run() suppresses fetch once this many instructions have
     *  retired, drains the pipeline, optionally serializes a
     *  snapshot there (Simulator::writeSnapshotTo), and continues.
     *  A restored run (Simulator::restoreSnapshot) resumes from the
     *  barrier instead of passing through it. */
    uint64_t checkpoint_at_retires = 0;
};

/** A named Table-2 design variant. */
struct NamedConfig {
    std::string name;
    EngineConfig engine;
};

/** The seven design variants of Table 2, in the paper's order. */
std::vector<NamedConfig> table2Configs();

/** The subset used for headline numbers: UnsafeBaseline,
 *  SecureBaseline, full SPT, STT. */
std::vector<NamedConfig> headlineConfigs();

} // namespace spt

#endif // SPT_SIM_SIM_CONFIG_H
