/**
 * @file
 * Service-layer chaos (DESIGN.md §16): where sim/chaos.h stresses
 * the simulated *machine* with timing faults, this module stresses
 * the sweep *service* — a real spt_sweepd child process plus the
 * resilient client of sim/sweep_service.h — with transport faults
 * (truncated frames, connection resets, slow-loris stalls via an
 * in-process Unix-socket fault proxy), `kill -9` of the daemon
 * mid-batch with journal-backed restart, and bit-rot injected into
 * the batch journal and the on-disk result cache.
 *
 * The verdict is the paper's determinism contract under fire: every
 * scenario's client must come back with outcomes byte-identical
 * (ResultCache::encodeOutcomeDeterministic) to an undisturbed
 * in-process run, and the daemon must never exit abnormally — the
 * only acceptable effects of a fault are retries, re-runs, and
 * recovery, never a wrong result and never a crash.
 *
 * The building blocks (SweepdProcess, FaultProxy) are exposed so
 * the service tests can orchestrate their own precise failure
 * timelines (tests/test_sweep_service.cpp); runServiceChaosCampaign
 * is the canned end-to-end campaign behind `spt_chaos --service`.
 */

#ifndef SPT_SIM_SERVICE_CHAOS_H
#define SPT_SIM_SERVICE_CHAOS_H

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace spt {

/** The spt_sweepd binary to exec: @p explicit_path when non-empty,
 *  else $SPT_SWEEPD_BIN, else a sibling of /proc/self/exe (then
 *  ../tools/spt_sweepd, covering the build tree's tests/ and tools/
 *  layouts). SPT_FATAL when no candidate is executable. */
std::string resolveSweepdBinary(const std::string &explicit_path);

/** A real spt_sweepd child process under harness control: fork +
 *  exec, readiness-probed via ping, killable with SIGKILL (the
 *  crash being tested) or SIGTERM (drain). Distinguishes
 *  harness-inflicted kills from genuine daemon aborts — the latter
 *  is what the chaos verdict counts. */
class SweepdProcess
{
  public:
    struct Options {
        std::string binary; ///< resolveSweepdBinary() result
        std::string socket_path;
        std::string cache_dir;   ///< empty = uncached
        std::string journal_dir; ///< empty = no journal
        unsigned jobs = 2;
        uint64_t max_queue = 0; ///< 0 = daemon default
        /** Daemon-side per-request stall bound; 0 = daemon
         *  default. */
        unsigned request_timeout_ms = 0;
        /** Child stdout+stderr destination; empty inherits. */
        std::string log_path;
    };

    explicit SweepdProcess(Options opt);
    /** SIGTERMs and reaps a still-running child. */
    ~SweepdProcess();

    SweepdProcess(const SweepdProcess &) = delete;
    SweepdProcess &operator=(const SweepdProcess &) = delete;

    /** Forks and execs; blocks until the daemon answers a ping
     *  (SPT_FATAL after ~10 s of refusal, or if the child died
     *  before becoming ready). */
    void start();

    /** The crash under test: SIGKILL + reap. Recorded as
     *  harness-inflicted, never an abort. */
    void kill9();

    /** Drain request; does not wait — pair with wait(). */
    void sigterm();

    /** Reaps the child (blocking); idempotent. Returns the raw
     *  waitpid status of the first reap. */
    int wait();

    /** Child reaped with an exit the harness did not inflict:
     *  killed by a signal other than our SIGKILL, or a non-zero
     *  exit status. This is the "daemon abort" the campaign
     *  verdict counts. */
    bool abortedAbnormally();

    pid_t pid() const { return pid_; }
    const Options &options() const { return opt_; }

  private:
    Options opt_;
    pid_t pid_ = -1;
    bool reaped_ = false;
    int status_ = 0;
    bool killed_by_harness_ = false;
};

/** Unix-socket man-in-the-middle for transport chaos: listens on
 *  one path, forwards byte streams to the real daemon's socket, and
 *  injects a fault into the next N accepted connections — the
 *  client under test points RunnerPolicy::service_socket at the
 *  proxy and must ride every fault out via its retry loop. */
class FaultProxy
{
  public:
    enum class Fault {
        kNone,            ///< transparent relay
        kResetMidRequest, ///< swallow the request, close both sides
        /** Forward the request, deliver only the first bytes of the
         *  response, close — the client sees a torn frame. */
        kTruncateResponse,
        /** Forward the request, deliver a dribble of the response,
         *  then go silent while holding the connection open — the
         *  client's frame stall deadline must fire. */
        kSlowLoris,
    };

    FaultProxy(std::string listen_path, std::string upstream_path);
    ~FaultProxy();

    FaultProxy(const FaultProxy &) = delete;
    FaultProxy &operator=(const FaultProxy &) = delete;

    /** Binds the proxy socket and spawns the accept loop. */
    void start();
    /** Closes the listener and joins every relay thread. */
    void stop();

    /** Arms @p fault for the next @p connections accepted
     *  connections; later connections relay transparently. */
    void arm(Fault fault, unsigned connections);

    /** How long a slow-loris connection stays silently open before
     *  the proxy closes it (must exceed the client's frame stall
     *  for the fault to register). */
    void setHoldMs(unsigned ms) { hold_ms_ = ms; }

    uint64_t faultsInjected() const { return faults_injected_; }
    const std::string &listenPath() const { return listen_path_; }

  private:
    void acceptLoop();
    void relay(int client_fd, Fault fault);

    std::string listen_path_;
    std::string upstream_path_;
    int listen_fd_ = -1;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> faults_injected_{0};
    unsigned hold_ms_ = 3000;
    std::mutex mutex_; ///< guards armed_* and threads_
    Fault armed_fault_ = Fault::kNone;
    unsigned armed_left_ = 0;
    std::thread accept_thread_;
    std::vector<std::thread> relay_threads_;
};

struct ServiceChaosConfig {
    /** spt_sweepd to exec; empty resolves via
     *  resolveSweepdBinary(). */
    std::string sweepd_binary;
    /** Scratch root for cache/journal/log files (created; not
     *  cleaned up on failure so CI can upload it). Sockets live
     *  under /tmp directly — sun_path is ~108 bytes. */
    std::string work_dir;
    unsigned daemon_jobs = 2;
    /** Per-scenario client wall-clock budget. */
    double deadline_seconds = 120.0;
};

/** One scenario's outcome. */
struct ServiceChaosScenarioResult {
    std::string name;
    bool ok = false;
    /** Slots whose deterministic encoding differed from the
     *  undisturbed baseline — the failure that must never happen. */
    uint64_t divergent_slots = 0;
    bool daemon_abort = false;
    /** Client transport failures ridden out (client.svc.* metric
     *  deltas): evidence the fault actually bit. */
    uint64_t transport_errors = 0;
    uint64_t resubmits = 0;
    /** Proxy-injected faults (proxy scenarios only). */
    uint64_t faults_injected = 0;
    std::string note; ///< failure detail; empty when ok
};

struct ServiceChaosSummary {
    uint64_t scenarios = 0;
    uint64_t divergent_results = 0;
    uint64_t daemon_aborts = 0;
    /** Scenarios that failed outright (client gave up, daemon never
     *  became ready, …). */
    uint64_t failures = 0;

    bool
    clean() const
    {
        return divergent_results == 0 && daemon_aborts == 0 &&
               failures == 0;
    }
};

struct ServiceChaosResult {
    ServiceChaosSummary summary;
    std::vector<ServiceChaosScenarioResult> scenarios;
    /** Campaign report JSON. Unlike the fault campaign's artifact
     *  this is *not* byte-deterministic — retry counts are timing
     *  dependent — so CI uploads it instead of cmp-pinning it. */
    std::string json;
};

/** Runs every scenario: an undisturbed in-process baseline, three
 *  proxy faults, kill-9 + journaled restart (clean and with journal
 *  bit-rot), and result-cache bit-rot. */
ServiceChaosResult
runServiceChaosCampaign(const ServiceChaosConfig &cfg);

} // namespace spt

#endif // SPT_SIM_SERVICE_CHAOS_H
