/**
 * @file
 * Sweep-as-a-service: a long-lived daemon (tools/spt_sweepd) that
 * owns a warm result cache (sim/result_cache.h) and a worker pool,
 * plus the client side ExpRunner routes through when
 * SPT_SWEEP_SOCKET / RunnerPolicy::service_socket is set
 * (DESIGN.md §14).
 *
 * Protocol: a Unix-domain stream socket carrying length-prefixed
 * JSON frames — a 4-byte little-endian payload length followed by
 * one JSON document (common/json.h on the way out, the
 * common/json_parse.h reader on the way in). Requests are objects
 * with an "op" member:
 *
 *   {"op":"ping"}                      liveness probe
 *   {"op":"stats"}                     daemon totals + cache traffic
 *                                      + queue depth + in-flight id
 *   {"op":"metrics"}                   full metrics registry + live
 *                                      per-slot progress (add
 *                                      "format":"prometheus" for
 *                                      text exposition)
 *   {"op":"submit", "capture_evidence":b, "span":s, "token":t,
 *    "jobs":[JOB...]}                  enqueue a batch ->
 *                                      {"batch":id,"span":batch_span}
 *   {"op":"status", "batch":id}        queued | running | done, with
 *                                      live slot progress while
 *                                      running
 *   {"op":"result", "batch":id}        outcomes of a done batch
 *                                      (fetching releases the batch)
 *   {"op":"health"}                    liveness + journal/queue/
 *                                      cache state (DESIGN.md §16)
 *   {"op":"shutdown"}                  drain and exit
 *
 * Every response carries "ok"; failures are structured
 * ({"ok":false,"error":...}, plus a machine-matchable "code" where
 * the caller can act on it — "unknown-batch" for a status/result of
 * an id the daemon does not hold, "overloaded" when admission
 * control rejects a submit, "draining" during SIGTERM drain) — a
 * malformed or unknown request gets an error frame back and the
 * connection (and daemon) live on.
 *
 * Fault tolerance (DESIGN.md §16): "token" is a client-generated
 * idempotency key — a resubmission carrying a token the daemon
 * already holds (live or replayed from the batch journal,
 * sim/batch_journal.h) answers with the existing batch id instead
 * of enqueuing a duplicate, which is what makes client retry loops
 * safe across daemon restarts. With SweepServiceOptions::
 * journal_dir set, every submit/slot/completion is journaled and a
 * restarted daemon re-enqueues incomplete batches, re-running only
 * the slots whose outcomes were not recorded.
 *
 * Telemetry (DESIGN.md §15): the daemon threads trace spans through
 * the whole pipeline — the client sends its span with submit, the
 * daemon opens a batch span under it (returned in the submit
 * response) and the runner's sweep/job spans nest under the batch
 * span — and publishes svc.* metrics into the process-global
 * registry that the "metrics" op (and tools/spt_top) expose.
 *
 * A JOB ships the *content* of the run descriptor, not references:
 * the program travels as the hex of its wire form (isa/program.h
 * programSave) and the knowledge map as the hex of its SPTKMAP1
 * form, so daemon-side canonical cache keys are computed from the
 * same bytes the client holds and an arbitrary in-memory program
 * (fuzz case, test fixture) can be shipped, not just registry
 * workloads. Identical programs/maps within a batch are
 * deduplicated into one daemon-side object, which keeps the
 * runner's in-process memoization effective across the batch.
 *
 * Execution model: one executor thread runs batches strictly in
 * submission order on one ExpRunner (always keep_going — a crashing
 * job is classified into its slot, never kills the daemon; the
 * *client* re-imposes fail-fast semantics for policies that want
 * them). Connection threads only parse, enqueue and answer, so
 * status/stats stay responsive mid-batch. Outcomes return as hex of
 * the deterministic result-record payload
 * (ResultCache::encodeOutcome), making the bytes a client
 * reassembles identical to what an in-process sweep produces.
 */

#ifndef SPT_SIM_SWEEP_SERVICE_H
#define SPT_SIM_SWEEP_SERVICE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/exp_runner.h"
#include "sim/result_cache.h"

namespace spt {

/** Daemon configuration (tools/spt_sweepd flags). */
struct SweepServiceOptions {
    std::string socket_path;
    /** Worker-pool size; 0 resolves SPT_JOBS then
     *  hardware_concurrency. */
    unsigned jobs = 0;
    /** Warm cache directory; empty runs uncached. */
    std::string cache_dir;
    CacheMode cache_mode = CacheMode::kReadWrite;
    /** Crash-safe batch journal directory (sim/batch_journal.h);
     *  empty disables journaling and recovery. */
    std::string journal_dir;
    /** Admission control: submits beyond this many queued batches
     *  get a structured "overloaded" error frame instead of
     *  unbounded memory growth. */
    uint64_t max_queue = 64;
    /** Per-request read/write stall bound on connections: once a
     *  frame has started arriving, a peer silent for this long is
     *  dropped so a stalled client cannot wedge a connection
     *  thread. 0 disables (tests only). Waiting for the *start* of
     *  a request is always unbounded — idle polling connections are
     *  legitimate. */
    unsigned request_timeout_ms = 10000;
};

/** Totals since daemon start (the "stats" op). */
struct ServiceStats {
    uint64_t batches_executed = 0;
    uint64_t jobs_executed = 0; ///< grid slots across all batches
    uint64_t failed_jobs = 0;
    CacheStats cache;           ///< summed over executed batches
    /** Batches submitted but not yet started (point-in-time). */
    uint64_t queue_depth = 0;
    /** Batch id the executor is running right now; 0 when idle.
     *  Together with queue_depth this is what lets an operator
     *  distinguish "wedged on batch 17" from "idle" — the staleness
     *  the totals above can't express. */
    uint64_t inflight_batch = 0;
    /** Batches replayed from the journal at startup. */
    uint64_t recovered_batches = 0;
    /** Submits rejected by admission control. */
    uint64_t overloaded_rejects = 0;
    /** Resubmissions answered from the token map instead of
     *  enqueued. */
    uint64_t dedup_hits = 0;
    /** SIGTERM drain in progress (submits get "draining"). */
    bool draining = false;
};

class SweepService
{
  public:
    explicit SweepService(SweepServiceOptions opt);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Binds the socket (removing a stale file at the path) and
     *  spawns the accept + executor threads. SPT_FATAL if the
     *  socket cannot be bound. */
    void start();

    /** Blocks until a shutdown request (or stop()) has drained the
     *  daemon; joins all threads. */
    void wait();

    /** Initiates shutdown from the host process (idempotent;
     *  equivalent to receiving {"op":"shutdown"}). */
    void stop();

    /** SIGTERM drain (idempotent): stop admitting submits, finish
     *  the in-flight batch, journal the cut point (in-flight id +
     *  queued ids), and stop *without* executing the remaining
     *  queue — journaled queued batches run on the next start.
     *  Async-signal-unsafe; call from a watcher thread, not the
     *  handler itself (tools/spt_sweepd.cpp). */
    void drain();

    const std::string &socketPath() const;
    ServiceStats stats() const;

  private:
    struct Impl;
    Impl *impl_;
};

/** Client side: ships @p grid to the daemon at @p socket_path,
 *  blocks until the batch completes, and reassembles the outcomes
 *  exactly as an in-process ExpRunner::run would have produced
 *  them (per-slot job_desc/memoized included). Fills @p stats with
 *  the daemon-reported numbers for this batch (via_service=true).
 *  Honors policy.keep_going client-side: without it, the first
 *  failed slot's error is rethrown as FatalError.
 *
 *  Resilient per policy.client (DESIGN.md §16): connect and frame
 *  stalls time out, transport failures reconnect with jittered
 *  exponential backoff (common/retry.h) and resubmit idempotently
 *  by batch token, and an expired deadline — or an exhausted retry
 *  budget — is a FatalError (exit 2 under toolMain), never a
 *  hang. SPT_FATAL also if the daemon violates the protocol. */
std::vector<RunOutcome>
runGridViaService(const std::string &socket_path,
                  const std::vector<RunJob> &grid,
                  const RunnerPolicy &policy, SweepStats *stats);

/** One-shot client request: sends @p request_json to the daemon and
 *  returns the raw JSON response (the spt_sweep CLI's transport;
 *  also used by tests to probe protocol errors). Single attempt
 *  with default stall timeouts; SPT_FATAL on connect/frame
 *  failure. */
std::string serviceRequest(const std::string &socket_path,
                           const std::string &request_json);

/** serviceRequest with explicit resilience options: retries
 *  transport failures per @p opts (backoff + jitter) and bounds the
 *  whole exchange by opts.deadline_seconds. SPT_FATAL — exit 2
 *  under toolMain — when the budget is exhausted (spt_sweep
 *  --deadline). */
std::string serviceRequest(const std::string &socket_path,
                           const std::string &request_json,
                           const ServiceClientOptions &opts);

} // namespace spt

#endif // SPT_SIM_SWEEP_SERVICE_H
