#include "sim/simulator.h"

#include "common/json.h"
#include "common/logging.h"
#include "core/knowledge_map.h"
#include "sim/snapshot.h"
#include "uarch/invariant_checker.h"

namespace spt {

const char *
terminationName(Termination t)
{
    switch (t) {
      case Termination::kHalted:      return "halted";
      case Termination::kMaxCycles:   return "max-cycles";
      case Termination::kLivelock:    return "livelock";
      case Termination::kWallTimeout: return "wall-timeout";
    }
    return "?";
}

Simulator::Simulator(const Program &program, const SimConfig &config)
    : program_(program), config_(config)
{
    if (config.engine.scheme == ProtectionScheme::kSpt &&
        config.engine.spt.knowledge_map) {
        // A stale or foreign map must be refused before it can
        // relax anything (DESIGN.md §13); SPT_FATAL on mismatch.
        config.engine.spt.knowledge_map->validateFor(
            program, config.core.attack_model);
    }
    core_ = std::make_unique<Core>(program, config.core, config.mem,
                                   makeEngine(config.engine));
    if (config.lockstep_check) {
        reference_ = std::make_unique<FunctionalCpu>(program);
        core_->setCommitHook([this](const DynInst &d) {
            auto info = reference_->step();
            SPT_ASSERT(!info.halted || d.si.op == Opcode::kHalt,
                       "reference halted before the core");
            SPT_ASSERT(info.pc == d.pc,
                       "lockstep pc mismatch: core " << d.pc
                           << " reference " << info.pc << " (seq "
                           << d.seq << ")");
            if (info.wrote_reg) {
                SPT_ASSERT(d.has_dest,
                           "reference wrote a register but core did "
                           "not, pc " << d.pc);
                SPT_ASSERT(d.result == info.dest_value,
                           "lockstep value mismatch at pc "
                               << d.pc << ": core " << d.result
                               << " reference " << info.dest_value);
            }
            if (info.is_mem) {
                SPT_ASSERT(d.eff_addr == info.mem_addr,
                           "lockstep address mismatch at pc "
                               << d.pc);
            }
        });
    }
}

Simulator::~Simulator() = default;

void
Simulator::enableTrace(std::ostream *text, std::ostream *pipeview)
{
    SPT_ASSERT(!ran_, "enableTrace must precede run()");
    tracer_ = std::make_unique<Tracer>(text, pipeview);
}

void
Simulator::writeSnapshotTo(std::ostream *os)
{
    SPT_ASSERT(!ran_, "writeSnapshotTo must precede run()");
    if (config_.checkpoint_at_retires == 0)
        SPT_FATAL("writeSnapshotTo needs a checkpoint barrier "
                  "(SimConfig::checkpoint_at_retires)");
    snapshot_out_ = os;
}

void
Simulator::restoreSnapshot(std::istream &is)
{
    SPT_ASSERT(!ran_, "restoreSnapshot must precede run()");
    if (config_.lockstep_check)
        SPT_FATAL("snapshot restore does not cover the lockstep "
                  "reference CPU; disable lockstep_check");
    Snapshotter::restore(*this, is);
    restored_ = true;
}

SimResult
Simulator::run()
{
    SPT_ASSERT(!ran_, "Simulator::run() may only be called once");
    ran_ = true;
    if (config_.profile)
        profiler_ = std::make_unique<DelayProfiler>();
    if (config_.interval_stats > 0)
        intervals_ = std::make_unique<IntervalRecorder>(
            config_.interval_stats, &core_->engine());
    if (config_.faults.any()) {
        // restoreSnapshot may already have built the injector to
        // restore its RNG streams into.
        if (!injector_)
            injector_ =
                std::make_unique<FaultInjector>(config_.faults);
        core_->setFaultInjector(injector_.get());
    }
    if (config_.invariants) {
        InvariantChecker::Params p;
        if (config_.core.watchdog_cycles != 0)
            p.watchdog_cycles = config_.core.watchdog_cycles;
        checker_ =
            std::make_unique<InvariantChecker>(*core_, p);
    }
    if (tracer_)
        observers_.add(tracer_.get());
    if (profiler_)
        observers_.add(profiler_.get());
    if (intervals_)
        observers_.add(intervals_.get());
    if (checker_)
        observers_.add(checker_.get());
    if (!observers_.empty())
        core_->setObserver(&observers_);
    if (config_.wall_timeout_seconds > 0.0)
        core_->setWallTimeout(config_.wall_timeout_seconds);
    if (config_.checkpoint_at_retires != 0 && !restored_) {
        // The barrier is armed whether or not a snapshot is being
        // written: passing through it is deterministic machine
        // behavior, so a cold run with the barrier is the exact
        // execution a restored run resumes.
        std::function<void()> hook;
        if (snapshot_out_ != nullptr)
            hook = [this] { Snapshotter::save(*this, *snapshot_out_); };
        core_->armCheckpoint(config_.checkpoint_at_retires,
                             std::move(hook));
    }
    const Core::RunResult r = core_->run(config_.max_cycles);
    if (tracer_)
        tracer_->finish(core_->cycle());
    if (intervals_)
        intervals_->finish(core_->cycle());
    if (checker_)
        checker_->finish(core_->cycle());
    livelocked_ = r.livelocked;
    SimResult result;
    result.cycles = r.cycles;
    result.instructions = r.instructions;
    result.halted = r.halted;
    result.ipc = r.cycles == 0
                     ? 0.0
                     : static_cast<double>(r.instructions) /
                           static_cast<double>(r.cycles);
    if (r.halted)
        result.termination = Termination::kHalted;
    else if (r.livelocked)
        result.termination = Termination::kLivelock;
    else if (r.wall_timeout)
        result.termination = Termination::kWallTimeout;
    else
        result.termination = Termination::kMaxCycles;
    return result;
}

std::string
Simulator::diagnosticsJson() const
{
    if (checker_ && !checker_->reports().empty())
        return checker_->reportsJson();
    if (livelocked_) {
        // The core watchdog tripped without a checker attached:
        // synthesize the same livelock evidence it would have made.
        const DiagnosticReport report =
            InvariantChecker::livelockReport(*core_, core_->cycle());
        JsonWriter jw;
        jw.beginArray();
        report.toJson(jw);
        jw.endArray();
        return jw.str();
    }
    return "[]";
}

void
Simulator::dumpStats(std::ostream &os) const
{
    os << "# --- core ---\n";
    const_cast<Core &>(*core_).stats().dump(os);
    os << "# --- engine (" << core_->engine().name() << ") ---\n";
    core_->engine().stats().dump(os);
    os << "# --- memory ---\n";
    core_->memorySystem().stats().dump(os);
    os << "# --- bpu ---\n";
    core_->bpu().stats().dump(os);
}

void
Simulator::dumpStatsJson(JsonWriter &jw) const
{
    Core &core = const_cast<Core &>(*core_);
    jw.beginObject();
    jw.key("core");
    core.stats().dumpJson(jw);
    jw.field("engine_name", core.engine().name());
    jw.key("engine");
    core.engine().stats().dumpJson(jw);
    jw.key("mem");
    core.memorySystem().stats().dumpJson(jw);
    jw.key("bpu");
    core.bpu().stats().dumpJson(jw);
    jw.endObject();
}

uint64_t
Simulator::stat(const std::string &name) const
{
    const auto dot = name.find('.');
    if (dot == std::string::npos)
        SPT_FATAL("stat name needs a component prefix: " << name);
    const std::string component = name.substr(0, dot);
    const std::string rest = name.substr(dot + 1);
    Core &core = const_cast<Core &>(*core_);
    if (component == "core")
        return core.stats().get(rest);
    if (component == "engine")
        return core.engine().stats().get(rest);
    if (component == "mem")
        return core.memorySystem().stats().get(rest);
    if (component == "bpu")
        return core.bpu().stats().get(rest);
    SPT_FATAL("unknown stat component: " << component);
}

SimResult
runProgram(const Program &program, const EngineConfig &engine_cfg,
           AttackModel model, uint64_t max_cycles)
{
    SimConfig cfg;
    cfg.engine = engine_cfg;
    cfg.core.attack_model = model;
    cfg.max_cycles = max_cycles;
    Simulator sim(program, cfg);
    return sim.run();
}

} // namespace spt
