#include "sim/fault_injector.h"

namespace spt {

namespace {

/** Scatters (seed, site) into well-separated stream seeds; the odd
 *  multipliers are the splitmix64 constants, the +1 keeps site 0 of
 *  seed 0 away from the all-zero state. */
uint64_t
streamSeed(uint64_t seed, std::size_t site)
{
    return seed * 0x9e3779b97f4a7c15ULL +
           (static_cast<uint64_t>(site) + 1) *
               0xbf58476d1ce4e5b9ULL;
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan),
      streams_{Rng(streamSeed(plan.seed, 0)),
               Rng(streamSeed(plan.seed, 1)),
               Rng(streamSeed(plan.seed, 2)),
               Rng(streamSeed(plan.seed, 3)),
               Rng(streamSeed(plan.seed, 4)),
               Rng(streamSeed(plan.seed, 5))}
{
    static_assert(kNumFaultSites == 6,
                  "extend the stream initializer for new sites");
}

bool
FaultInjector::fire(FaultSite site)
{
    const auto i = static_cast<std::size_t>(site);
    const uint32_t rate = plan_.rate_ppm[i];
    if (rate == 0)
        return false; // disabled sites never consume a draw
    ++draws_[i];
    const bool hit = streams_[i].nextBelow(1'000'000) < rate;
    if (hit)
        ++fired_[i];
    return hit;
}

std::map<std::string, uint64_t>
FaultInjector::counters() const
{
    std::map<std::string, uint64_t> out;
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        if (plan_.rate_ppm[i] == 0)
            continue;
        const std::string base =
            std::string("fault.") +
            faultSiteName(static_cast<FaultSite>(i));
        out[base + ".draws"] = draws_[i];
        out[base + ".injected"] = fired_[i];
    }
    return out;
}

} // namespace spt
