#include "sim/batch_journal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace spt {

namespace {

// --------------------------------------------------------------------
// Record codec, following the result-cache conventions
// (sim/result_cache.cpp): explicit little-endian, bounds-checked
// reads that throw FatalError, FNV-1a trailers.
// --------------------------------------------------------------------

constexpr uint64_t kSegMagic = 0x5350544a524e4c31ull; // "SPTJRNL1"
constexpr uint32_t kSegVersion = 1;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvBytes(const char *data, std::size_t len, uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<uint8_t>(data[i]);
        h *= kFnvPrime;
    }
    return h;
}

// Record types. Values are wire format — append only, never renumber.
enum : uint8_t {
    kRecSubmit = 1,
    kRecSlotDone = 2,
    kRecBatchDone = 3,
    kRecReleased = 4,
    kRecCut = 5,
    kRecRecovered = 6,
};

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        putU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void
putDouble(std::string &out, double v)
{
    putU64(out, std::bit_cast<uint64_t>(v));
}

void
putStr(std::string &out, const std::string &s)
{
    putU64(out, s.size());
    out += s;
}

class Reader
{
  public:
    Reader(const std::string &buf, std::size_t pos = 0)
        : buf_(buf), pos_(pos)
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return static_cast<uint8_t>(buf_[pos_++]);
    }
    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t{u8()} << (8 * i);
        return v;
    }
    double
    d()
    {
        return std::bit_cast<double>(u64());
    }
    std::string
    str()
    {
        const uint64_t n = u64();
        need(n);
        std::string s = buf_.substr(pos_, n);
        pos_ += n;
        return s;
    }
    bool
    atEnd() const
    {
        return pos_ == buf_.size();
    }

  private:
    void
    need(uint64_t n) const
    {
        if (n > buf_.size() || pos_ > buf_.size() - n)
            SPT_FATAL("journal record truncated");
    }

    const std::string &buf_;
    std::size_t pos_;
};

void
putStats(std::string &out, const SweepStats &s)
{
    putU64(out, s.workers);
    putU64(out, s.unique_jobs);
    putU64(out, s.memo_hits);
    putDouble(out, s.wall_seconds);
    putU64(out, s.failed_jobs);
    putStr(out, s.first_failure);
    putU64(out, s.cache.hits);
    putU64(out, s.cache.misses);
    putU64(out, s.cache.verify_mismatches);
    putU64(out, s.cache.bytes_written);
    putDouble(out, s.cache.host_seconds_saved);
    putStr(out, s.cache_mode);
    putStr(out, s.cache_dir);
}

SweepStats
readStats(Reader &r)
{
    SweepStats s;
    s.workers = static_cast<unsigned>(r.u64());
    s.unique_jobs = r.u64();
    s.memo_hits = r.u64();
    s.wall_seconds = r.d();
    s.failed_jobs = r.u64();
    s.first_failure = r.str();
    s.cache.hits = r.u64();
    s.cache.misses = r.u64();
    s.cache.verify_mismatches = r.u64();
    s.cache.bytes_written = r.u64();
    s.cache.host_seconds_saved = r.d();
    s.cache_mode = r.str();
    s.cache_dir = r.str();
    return s;
}

/** One framed record: type, payload length, payload, FNV-1a of
 *  type + payload. The trailer covers the type byte so a flipped
 *  type cannot reinterpret a valid payload. */
std::string
frameRecord(uint8_t type, const std::string &payload)
{
    std::string rec;
    rec.reserve(payload.size() + 17);
    putU8(rec, type);
    putU64(rec, payload.size());
    rec += payload;
    uint64_t h = kFnvOffset;
    const char t = static_cast<char>(type);
    h = fnvBytes(&t, 1, h);
    h = fnvBytes(payload.data(), payload.size(), h);
    putU64(rec, h);
    return rec;
}

} // namespace

BatchJournal::BatchJournal(std::string dir) : dir_(std::move(dir))
{
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
        SPT_FATAL("batch journal: cannot create directory " << dir_
                  << ": " << std::strerror(errno));

    // Replay whatever the previous incarnation left behind. Every
    // malformed condition from here on — short header, oversized
    // length, trailer mismatch, undecodable payload — means a torn
    // or rotten tail: keep what replayed, drop the rest, and say so.
    std::string blob;
    {
        std::ifstream is(segmentPath(), std::ios::binary);
        if (is) {
            std::ostringstream os;
            os << is.rdbuf();
            blob = os.str();
        }
    }
    std::size_t pos = 0;
    bool header_ok = false;
    if (blob.size() >= 12) {
        Reader hdr(blob);
        const uint64_t magic = hdr.u64();
        uint32_t version = 0;
        for (int i = 0; i < 4; ++i)
            version |= uint32_t{static_cast<uint8_t>(blob[8 + i])}
                       << (8 * i);
        if (magic == kSegMagic && version == kSegVersion) {
            header_ok = true;
            pos = 12;
        }
    }
    if (!blob.empty() && !header_ok) {
        warn("batch journal: unrecognized segment header in " +
             segmentPath() + "; starting fresh");
        recovery_.dropped_bytes = blob.size();
    }

    while (header_ok && pos < blob.size()) {
        // Frame: 1 type + 8 length + payload + 8 trailer.
        if (blob.size() - pos < 17) {
            recovery_.dropped_bytes = blob.size() - pos;
            break;
        }
        const uint8_t type = static_cast<uint8_t>(blob[pos]);
        uint64_t len = 0;
        for (int i = 0; i < 8; ++i)
            len |= uint64_t{static_cast<uint8_t>(blob[pos + 1 + i])}
                   << (8 * i);
        if (len > blob.size() - pos - 17) {
            recovery_.dropped_bytes = blob.size() - pos;
            break;
        }
        const std::string payload = blob.substr(pos + 9, len);
        uint64_t stored = 0;
        for (int i = 0; i < 8; ++i)
            stored |= uint64_t{static_cast<uint8_t>(
                          blob[pos + 9 + len + i])}
                      << (8 * i);
        uint64_t h = kFnvOffset;
        const char t = static_cast<char>(type);
        h = fnvBytes(&t, 1, h);
        h = fnvBytes(payload.data(), payload.size(), h);
        if (h != stored) {
            recovery_.dropped_bytes = blob.size() - pos;
            break;
        }
        try {
            Reader r(payload);
            switch (type) {
            case kRecSubmit: {
                BatchRecord b;
                b.id = r.u64();
                b.token = r.str();
                b.request_json = r.str();
                if (b.id >= recovery_.next_batch)
                    recovery_.next_batch = b.id + 1;
                if (b.id > max_id_)
                    max_id_ = b.id;
                live_[b.id] = std::move(b);
                break;
            }
            case kRecSlotDone: {
                const uint64_t id = r.u64();
                const uint64_t slot = r.u64();
                const uint8_t memo = r.u8();
                std::string bytes = r.str();
                const auto it = live_.find(id);
                if (it != live_.end()) {
                    it->second.slot_payloads[slot] =
                        std::move(bytes);
                    it->second.slot_memoized[slot] = memo != 0;
                }
                break;
            }
            case kRecBatchDone: {
                const uint64_t id = r.u64();
                std::string error = r.str();
                SweepStats stats = readStats(r);
                const auto it = live_.find(id);
                if (it != live_.end()) {
                    it->second.done = true;
                    it->second.error = std::move(error);
                    it->second.stats = stats;
                }
                break;
            }
            case kRecReleased:
                live_.erase(r.u64());
                break;
            case kRecCut:
                // Informational marker; nothing to rebuild.
                break;
            case kRecRecovered: {
                // Carries the next-batch hint that survives
                // compaction of released batches (whose SUBMIT
                // records — the other id source — are gone).
                r.u64(); // recovered_at
                r.u64(); // batches
                r.u64(); // dropped_bytes
                const uint64_t hint = r.atEnd() ? 0 : r.u64();
                if (hint > recovery_.next_batch)
                    recovery_.next_batch = hint;
                if (hint > 0 && hint - 1 > max_id_)
                    max_id_ = hint - 1;
                break;
            }
            default:
                // Unknown type with a valid trailer: a future
                // format. Skip it — forward compatibility.
                break;
            }
        } catch (const std::exception &) {
            // Trailer matched but the payload does not decode: a
            // same-version encoding bug, not bit rot. Treat as the
            // corruption point all the same.
            recovery_.dropped_bytes = blob.size() - pos;
            break;
        }
        ++recovery_.records;
        pos += 17 + len;
    }

    recovery_.recovered_at =
        static_cast<uint64_t>(::time(nullptr));
    if (recovery_.next_batch > 0 &&
        recovery_.next_batch - 1 > max_id_)
        max_id_ = recovery_.next_batch - 1;
    for (auto &[id, b] : live_)
        recovery_.batches.push_back(b);

    // Compact: rewrite live state only, atomically, which also
    // truncates away any corrupt tail found above and stamps the
    // recovery marker the next health probe / recovery reads.
    rotate();
}

BatchJournal::~BatchJournal()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (seg_ != nullptr)
        std::fclose(seg_);
}

std::string
BatchJournal::segmentPath() const
{
    return dir_ + "/journal.seg";
}

void
BatchJournal::openSegment(const char *mode)
{
    if (seg_ != nullptr)
        std::fclose(seg_);
    seg_ = std::fopen(segmentPath().c_str(), mode);
    if (seg_ == nullptr)
        SPT_FATAL("batch journal: cannot open " << segmentPath()
                  << ": " << std::strerror(errno));
}

void
BatchJournal::append(uint8_t type, const std::string &payload)
{
    const std::string rec = frameRecord(type, payload);
    std::lock_guard<std::mutex> lock(mutex_);
    if (seg_ == nullptr) {
        ++write_failures_;
        return;
    }
    const bool ok =
        std::fwrite(rec.data(), 1, rec.size(), seg_) ==
            rec.size() &&
        std::fflush(seg_) == 0;
    if (!ok) {
        // Durability is lost but the daemon must keep serving; the
        // health op surfaces the count.
        if (write_failures_++ == 0)
            warn("batch journal: append to " + segmentPath() +
                 " failed: " + std::strerror(errno));
        return;
    }
    seg_bytes_ += rec.size();
}

void
BatchJournal::submit(uint64_t id, const std::string &token,
                     const std::string &request_json)
{
    std::string p;
    putU64(p, id);
    putStr(p, token);
    putStr(p, request_json);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        BatchRecord &b = live_[id];
        b.id = id;
        b.token = token;
        b.request_json = request_json;
        if (id > max_id_)
            max_id_ = id;
    }
    append(kRecSubmit, p);
}

void
BatchJournal::slotDone(uint64_t id, uint64_t slot,
                       const std::string &payload, bool memoized)
{
    std::string p;
    putU64(p, id);
    putU64(p, slot);
    putU8(p, memoized ? 1 : 0);
    putStr(p, payload);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = live_.find(id);
        if (it != live_.end()) {
            it->second.slot_payloads[slot] = payload;
            it->second.slot_memoized[slot] = memoized;
        }
    }
    append(kRecSlotDone, p);
}

void
BatchJournal::batchDone(uint64_t id, const SweepStats &stats,
                        const std::string &error)
{
    std::string p;
    putU64(p, id);
    putStr(p, error);
    putStats(p, stats);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = live_.find(id);
        if (it != live_.end()) {
            it->second.done = true;
            it->second.error = error;
            it->second.stats = stats;
        }
    }
    append(kRecBatchDone, p);
}

void
BatchJournal::released(uint64_t id)
{
    std::string p;
    putU64(p, id);
    bool compact = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = live_.find(id);
        if (it != live_.end()) {
            // Everything this batch ever appended is dead weight
            // now; estimate it by its mirrored footprint.
            uint64_t footprint = it->second.request_json.size();
            for (const auto &[slot, bytes] :
                 it->second.slot_payloads)
                footprint += bytes.size();
            dead_bytes_ += footprint;
            live_.erase(it);
        }
        // Compact once released garbage dominates, with a floor so
        // small journals never churn.
        compact = dead_bytes_ > (1u << 16) &&
                  dead_bytes_ > seg_bytes_ / 2;
    }
    append(kRecReleased, p);
    if (compact)
        rotate();
}

void
BatchJournal::cut(uint64_t inflight,
                  const std::vector<uint64_t> &queued)
{
    std::string p;
    putU64(p, inflight);
    putU64(p, queued.size());
    for (const uint64_t id : queued)
        putU64(p, id);
    append(kRecCut, p);
}

void
BatchJournal::rotate()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string tmp = segmentPath() + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        ++write_failures_;
        warn("batch journal: cannot rotate into " + tmp + ": " +
             std::strerror(errno));
        return;
    }
    std::string out;
    putU64(out, kSegMagic);
    putU32(out, kSegVersion);
    for (const auto &[id, b] : live_) {
        std::string p;
        putU64(p, b.id);
        putStr(p, b.token);
        putStr(p, b.request_json);
        out += frameRecord(kRecSubmit, p);
        for (const auto &[slot, bytes] : b.slot_payloads) {
            std::string sp;
            putU64(sp, b.id);
            putU64(sp, slot);
            const auto mit = b.slot_memoized.find(slot);
            putU8(sp, mit != b.slot_memoized.end() && mit->second
                          ? 1
                          : 0);
            putStr(sp, bytes);
            out += frameRecord(kRecSlotDone, sp);
        }
        if (b.done) {
            std::string dp;
            putU64(dp, b.id);
            putStr(dp, b.error);
            putStats(dp, b.stats);
            out += frameRecord(kRecBatchDone, dp);
        }
    }
    // Recovery marker, carrying the id high-water mark: released
    // batches' SUBMIT records were just dropped, so without this
    // hint a fully-drained journal would restart ids from 1 and
    // collide with ids clients already hold.
    {
        std::string mp;
        putU64(mp, recovery_.recovered_at);
        putU64(mp, recovery_.batches.size());
        putU64(mp, recovery_.dropped_bytes);
        putU64(mp, max_id_ + 1);
        out += frameRecord(kRecRecovered, mp);
    }
    const bool ok =
        std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
        std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), segmentPath().c_str()) != 0) {
        ++write_failures_;
        warn("batch journal: rotation of " + segmentPath() +
             " failed: " + std::strerror(errno));
        std::remove(tmp.c_str());
        return;
    }
    seg_bytes_ = out.size();
    dead_bytes_ = 0;
    // Reopen for appending behind the renamed segment.
    if (seg_ != nullptr) {
        std::fclose(seg_);
        seg_ = nullptr;
    }
    seg_ = std::fopen(segmentPath().c_str(), "ab");
    if (seg_ == nullptr) {
        ++write_failures_;
        warn("batch journal: cannot reopen " + segmentPath() +
             ": " + std::strerror(errno));
    }
}

uint64_t
BatchJournal::bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seg_bytes_;
}

uint64_t
BatchJournal::liveBatches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_.size();
}

uint64_t
BatchJournal::incompleteBatches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t n = 0;
    for (const auto &[id, b] : live_)
        if (!b.done)
            ++n;
    return n;
}

uint64_t
BatchJournal::writeFailures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return write_failures_;
}

} // namespace spt
