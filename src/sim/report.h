/**
 * @file
 * Forwarding header: the streaming JsonWriter and writeReportFile
 * moved to common/json.h (so StatSet::dumpJson and the trace/profile
 * subsystem can emit JSON below the sim layer). Kept so existing
 * bench/driver includes keep compiling; new code should include
 * common/json.h directly.
 */

#ifndef SPT_SIM_REPORT_H
#define SPT_SIM_REPORT_H

#include "common/json.h"

#endif // SPT_SIM_REPORT_H
