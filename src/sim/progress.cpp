#include "sim/progress.h"

#include "common/logging.h"

namespace spt {

void
ProgressBoard::reset(size_t num_slots)
{
    std::lock_guard<std::mutex> lock(mu_);
    num_slots_ = num_slots;
    slots_.reset(new Slot[num_slots]);
    labels_.assign(num_slots, std::string());
}

size_t
ProgressBoard::numSlots() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return num_slots_;
}

void
ProgressBoard::setLabel(size_t slot, const std::string &label)
{
    std::lock_guard<std::mutex> lock(mu_);
    SPT_ASSERT(slot < num_slots_, "progress slot out of range");
    labels_[slot] = label;
}

void
ProgressBoard::start(size_t slot)
{
    Slot &s = slots_[slot];
    s.cycles.store(0, std::memory_order_relaxed);
    s.instructions.store(0, std::memory_order_relaxed);
    s.start_s.store(logMonotonicSeconds(),
                    std::memory_order_relaxed);
    s.done_s.store(0.0, std::memory_order_relaxed);
    s.state.store(static_cast<int>(SlotState::kRunning),
                  std::memory_order_release);
}

void
ProgressBoard::heartbeat(size_t slot, uint64_t cycles,
                         uint64_t instructions)
{
    Slot &s = slots_[slot];
    s.cycles.store(cycles, std::memory_order_relaxed);
    s.instructions.store(instructions, std::memory_order_relaxed);
}

void
ProgressBoard::finish(size_t slot, uint64_t cycles,
                      uint64_t instructions)
{
    Slot &s = slots_[slot];
    s.cycles.store(cycles, std::memory_order_relaxed);
    s.instructions.store(instructions, std::memory_order_relaxed);
    s.done_s.store(logMonotonicSeconds(),
                   std::memory_order_relaxed);
    s.state.store(static_cast<int>(SlotState::kDone),
                  std::memory_order_release);
}

std::vector<ProgressBoard::SlotProgress>
ProgressBoard::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SlotProgress> out;
    out.reserve(num_slots_);
    const double now = logMonotonicSeconds();
    for (size_t i = 0; i < num_slots_; ++i) {
        const Slot &s = slots_[i];
        SlotProgress p;
        p.slot = i;
        p.label = labels_[i];
        p.state = static_cast<SlotState>(
            s.state.load(std::memory_order_acquire));
        p.cycles = s.cycles.load(std::memory_order_relaxed);
        p.instructions =
            s.instructions.load(std::memory_order_relaxed);
        const double start =
            s.start_s.load(std::memory_order_relaxed);
        if (p.state == SlotState::kRunning)
            p.host_seconds = now - start;
        else if (p.state == SlotState::kDone)
            p.host_seconds =
                s.done_s.load(std::memory_order_relaxed) - start;
        if (p.host_seconds < 0.0)
            p.host_seconds = 0.0;
        out.push_back(std::move(p));
    }
    return out;
}

size_t
ProgressBoard::countInState(SlotState state) const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (size_t i = 0; i < num_slots_; ++i)
        if (slots_[i].state.load(std::memory_order_acquire) ==
            static_cast<int>(state))
            ++n;
    return n;
}

ProgressBoard &
ProgressBoard::global()
{
    static ProgressBoard board;
    return board;
}

} // namespace spt
