/**
 * @file
 * Simulator checkpointing: full binary snapshot/restore of a
 * *drained* machine (PR-6's third throughput lever).
 *
 * A snapshot is taken at a retire-count drain barrier (see
 * SimConfig::checkpoint_at_retires): the core suppresses fetch once
 * the target retire count is reached and ticks until the pipeline is
 * empty, so no in-flight microarchitectural state (ROB, LSQ, MSHRs,
 * engine taint ring) needs a wire format — what remains is the
 * long-lived state that makes a warmed-up machine different from a
 * cold one:
 *
 *   - architectural registers and memory contents,
 *   - cache tag/LRU/MESI arrays and the coherence directory,
 *   - branch predictor tables and histories (LTAGE, BTB, RAS),
 *   - the store-set memory-dependence predictor,
 *   - the engine's committed taint state (master register taint and
 *     the shadow L1 / shadow memory data taint store),
 *   - every StatSet and the core's plain delay counters,
 *   - fault-injector RNG streams, when a fault plan is attached.
 *
 * The format is versioned, little-endian, and bounds-checked on
 * read; restore validates a configuration/program fingerprint so a
 * snapshot cannot be resumed under an incompatible machine. The
 * checkpoint round-trip tests pin that a restored run's SimResult
 * and stats.json are byte-identical to a cold run that passes
 * through the same barrier.
 */

#ifndef SPT_SIM_SNAPSHOT_H
#define SPT_SIM_SNAPSHOT_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace spt {

class Simulator;

/** Header fields of a snapshot stream (spt_ckpt info). */
struct SnapshotInfo {
    uint32_t version = 0;
    uint64_t cycle = 0;
    uint64_t retired = 0;
    std::string engine_name;
    /** Program fingerprint: code size / entry / data bytes. */
    uint64_t code_size = 0;
    uint64_t entry = 0;
    uint64_t data_bytes = 0;
};

/**
 * The single component with serialization access (befriended by
 * every class whose private state participates); all wire-format
 * logic lives in snapshot.cpp so component headers carry only the
 * friend declaration.
 */
class Snapshotter
{
  public:
    /** Serializes @p sim's full drained state to @p os. SPT_FATAL if
     *  the pipeline is not drained or a lockstep reference CPU is
     *  attached (its state has no wire format). */
    static void save(const Simulator &sim, std::ostream &os);

    /** Restores a snapshot into @p sim, which must be freshly
     *  constructed with a compatible configuration (same protection
     *  scheme, shadow kind, taint storage, and program fingerprint)
     *  and must not have run yet. SPT_FATAL on any mismatch,
     *  truncation, or version skew. */
    static void restore(Simulator &sim, std::istream &is);

    /** Reads only the header of a snapshot stream. */
    static SnapshotInfo info(std::istream &is);

  private:
    /** Per-component wire formats (defined in snapshot.cpp). As a
     *  member class it shares Snapshotter's friend grants. */
    class Codec;
};

} // namespace spt

#endif // SPT_SIM_SNAPSHOT_H
