/**
 * @file
 * Checkpoint wire format (see snapshot.h for the state inventory).
 *
 * Everything is explicit little-endian bytes — no struct dumps — so
 * a snapshot written on any host restores on any other. Containers
 * with nondeterministic iteration order (the sparse page maps, the
 * coherence directory) are written sorted by key so identical
 * machine states produce identical snapshot bytes.
 */

#include "sim/snapshot.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "common/logging.h"
#include "core/knowledge_map.h"
#include "core/spt_engine.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace spt {

namespace {

constexpr uint64_t kMagic = 0x31544b4354505331ULL; // "1SPTCKT1"
constexpr uint32_t kVersion = 2; // v2: knowledge-map tag + armed bits

// --------------------------------------------------------------------
// Primitive writers/readers
// --------------------------------------------------------------------

class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    void
    u8(uint8_t v)
    {
        os_.put(static_cast<char>(v));
    }
    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }
    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }
    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }
    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }
    void
    str(const std::string &s)
    {
        u64(s.size());
        os_.write(s.data(), static_cast<std::streamsize>(s.size()));
    }
    void
    bytes(const uint8_t *data, size_t len)
    {
        os_.write(reinterpret_cast<const char *>(data),
                  static_cast<std::streamsize>(len));
    }

    void
    finish() const
    {
        if (!os_)
            SPT_FATAL("snapshot write failed (stream error)");
    }

  private:
    std::ostream &os_;
};

class Reader
{
  public:
    explicit Reader(std::istream &is) : is_(is) {}

    uint8_t
    u8()
    {
        const int c = is_.get();
        if (c < 0)
            SPT_FATAL("snapshot truncated");
        return static_cast<uint8_t>(c);
    }
    uint16_t
    u16()
    {
        const uint16_t lo = u8();
        return static_cast<uint16_t>(lo | (uint16_t{u8()} << 8));
    }
    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        return lo | (uint32_t{u16()} << 16);
    }
    uint64_t
    u64()
    {
        const uint64_t lo = u32();
        return lo | (uint64_t{u32()} << 32);
    }
    bool
    b()
    {
        return u8() != 0;
    }
    std::string
    str()
    {
        const uint64_t n = u64();
        if (n > (uint64_t{1} << 20))
            SPT_FATAL("snapshot corrupt: implausible string length "
                      << n);
        std::string s(n, '\0');
        bytes(reinterpret_cast<uint8_t *>(s.data()), n);
        return s;
    }
    void
    bytes(uint8_t *out, size_t len)
    {
        is_.read(reinterpret_cast<char *>(out),
                 static_cast<std::streamsize>(len));
        if (static_cast<size_t>(is_.gcount()) != len)
            SPT_FATAL("snapshot truncated");
    }

  private:
    std::istream &is_;
};

} // namespace

namespace {

struct Fingerprint {
    uint64_t code_size;
    uint64_t entry;
    uint64_t data_segments;
    uint64_t data_bytes;
};

Fingerprint
fingerprintOf(const Program &p)
{
    uint64_t bytes = 0;
    for (const auto &[addr, seg] : p.dataSegments())
        bytes += seg.size();
    return {p.size(), p.entry(), p.dataSegments().size(), bytes};
}

} // namespace

// All component wire formats live here; as a member class of
// Snapshotter it shares the friend grants (a nested class has the
// access rights of a member of the enclosing class). Each putX/getX
// pair must mirror exactly.
class Snapshotter::Codec
{
  public:
    // --- StatSet ------------------------------------------------------
    static void
    putStats(Writer &w, const StatSet &s)
    {
        w.u64(s.counters_.size());
        for (const auto &[name, value] : s.counters_) {
            w.str(name);
            w.u64(value);
        }
        w.u64(s.histograms_.size());
        for (const auto &[name, h] : s.histograms_) {
            w.str(name);
            w.u64(h.buckets_.size());
            for (const uint64_t bkt : h.buckets_)
                w.u64(bkt);
            w.u64(h.samples_);
            w.u64(h.sum_);
            w.u64(h.max_);
        }
    }

    static void
    getStats(Reader &r, StatSet &s)
    {
        s.counters_.clear();
        s.histograms_.clear();
        const uint64_t nc = r.u64();
        for (uint64_t i = 0; i < nc; ++i) {
            const std::string name = r.str();
            s.counters_[name] = r.u64();
        }
        const uint64_t nh = r.u64();
        for (uint64_t i = 0; i < nh; ++i) {
            const std::string name = r.str();
            const uint64_t buckets = r.u64();
            if (buckets > (uint64_t{1} << 24))
                SPT_FATAL("snapshot corrupt: histogram size");
            Histogram h(buckets);
            for (uint64_t bkt = 0; bkt < buckets; ++bkt)
                h.buckets_[bkt] = r.u64();
            h.samples_ = r.u64();
            h.sum_ = r.u64();
            h.max_ = r.u64();
            s.histograms_.emplace(name, h);
        }
    }

    // --- ByteMemory ---------------------------------------------------
    static void
    putMemory(Writer &w, const ByteMemory &m)
    {
        std::vector<uint64_t> keys;
        keys.reserve(m.pages_.size());
        for (const auto &[page, data] : m.pages_)
            keys.push_back(page);
        std::sort(keys.begin(), keys.end());
        w.u64(keys.size());
        for (const uint64_t page : keys) {
            w.u64(page);
            w.bytes(m.pages_.at(page)->data(),
                    ByteMemory::kPageBytes);
        }
    }

    static void
    getMemory(Reader &r, ByteMemory &m)
    {
        m.pages_.clear();
        const uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t page = r.u64();
            auto p = std::make_unique<ByteMemory::Page>();
            r.bytes(p->data(), ByteMemory::kPageBytes);
            m.pages_.emplace(page, std::move(p));
        }
    }

    // --- SetAssocCache ------------------------------------------------
    static void
    putCache(Writer &w, const SetAssocCache &c)
    {
        w.u64(c.lines_.size());
        for (const auto &line : c.lines_) {
            w.b(line.valid);
            w.u64(line.tag);
            w.u64(line.lru);
            w.u8(static_cast<uint8_t>(line.state));
        }
        w.u64(c.tick_);
        putStats(w, c.stats_);
    }

    static void
    getCache(Reader &r, SetAssocCache &c)
    {
        const uint64_t n = r.u64();
        if (n != c.lines_.size())
            SPT_FATAL("snapshot/config mismatch: cache "
                      << c.params().name << " has " << c.lines_.size()
                      << " lines, snapshot " << n);
        for (auto &line : c.lines_) {
            line.valid = r.b();
            line.tag = r.u64();
            line.lru = r.u64();
            line.state = static_cast<MesiState>(r.u8());
        }
        c.tick_ = r.u64();
        getStats(r, c.stats_);
    }

    // --- MshrFile -----------------------------------------------------
    static void
    putMshrs(Writer &w, const MshrFile &m)
    {
        w.u64(m.entries_.size());
        for (const auto &e : m.entries_) {
            w.u64(e.line_addr);
            w.u64(e.ready_cycle);
        }
        putStats(w, m.stats_);
    }

    static void
    getMshrs(Reader &r, MshrFile &m)
    {
        const uint64_t n = r.u64();
        if (n > m.capacity())
            SPT_FATAL("snapshot/config mismatch: " << n
                      << " in-flight MSHRs, capacity "
                      << m.capacity());
        m.entries_.resize(n);
        for (auto &e : m.entries_) {
            e.line_addr = r.u64();
            e.ready_cycle = r.u64();
        }
        getStats(r, m.stats_);
    }

    // --- MesiDirectory ------------------------------------------------
    static void
    putDirectory(Writer &w, const MesiDirectory &d)
    {
        std::vector<uint64_t> keys;
        keys.reserve(d.dir_.size());
        for (const auto &[line, entry] : d.dir_)
            keys.push_back(line);
        std::sort(keys.begin(), keys.end());
        w.u64(keys.size());
        for (const uint64_t line : keys) {
            const auto &e = d.dir_.at(line);
            w.u64(line);
            w.u32(e.sharers);
            w.u32(static_cast<uint32_t>(e.owner));
            w.b(e.modified);
        }
        putStats(w, d.stats_);
    }

    static void
    getDirectory(Reader &r, MesiDirectory &d)
    {
        d.dir_.clear();
        const uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t line = r.u64();
            auto &e = d.dir_[line];
            e.sharers = r.u32();
            e.owner = static_cast<int>(r.u32());
            e.modified = r.b();
        }
        getStats(r, d.stats_);
    }

    // --- Branch predictors --------------------------------------------
    static void
    putHistoryState(Writer &w, const TagePredictor::HistoryState &hs)
    {
        w.u64(hs.history.bits_.size());
        w.bytes(hs.history.bits_.data(), hs.history.bits_.size());
        w.u64(hs.history.head_);
        for (const auto *folds :
             {&hs.index_fold, &hs.tag_fold0, &hs.tag_fold1}) {
            w.u64(folds->size());
            for (const FoldedHistory &f : *folds)
                w.u32(f.value());
        }
    }

    static void
    getHistoryState(Reader &r, TagePredictor::HistoryState &hs)
    {
        const uint64_t n = r.u64();
        if (n != hs.history.bits_.size())
            SPT_FATAL("snapshot/config mismatch: history size");
        r.bytes(hs.history.bits_.data(), n);
        hs.history.head_ = r.u64();
        for (auto *folds :
             {&hs.index_fold, &hs.tag_fold0, &hs.tag_fold1}) {
            const uint64_t k = r.u64();
            if (k != folds->size())
                SPT_FATAL("snapshot/config mismatch: fold count");
            for (FoldedHistory &f : *folds)
                f.setValue(r.u32());
        }
    }

    static void
    putTage(Writer &w, const TagePredictor &t)
    {
        w.u64(t.base_.table_.size());
        for (const SatCounter &c : t.base_.table_)
            w.u32(c.value());
        w.u64(t.tables_.size());
        for (const auto &table : t.tables_) {
            w.u64(table.size());
            for (const auto &e : table) {
                w.u16(e.tag);
                w.u32(e.ctr.value());
                w.u32(e.useful.value());
            }
        }
        putHistoryState(w, t.spec_);
        putHistoryState(w, t.committed_);
        w.u32(t.lfsr_);
        w.u64(t.update_count_);
    }

    static void
    getTage(Reader &r, TagePredictor &t)
    {
        if (r.u64() != t.base_.table_.size())
            SPT_FATAL("snapshot/config mismatch: bimodal size");
        for (SatCounter &c : t.base_.table_)
            c.set(r.u32());
        if (r.u64() != t.tables_.size())
            SPT_FATAL("snapshot/config mismatch: TAGE tables");
        for (auto &table : t.tables_) {
            if (r.u64() != table.size())
                SPT_FATAL("snapshot/config mismatch: TAGE table "
                          "size");
            for (auto &e : table) {
                e.tag = r.u16();
                e.ctr.set(r.u32());
                e.useful.set(r.u32());
            }
        }
        getHistoryState(r, t.spec_);
        getHistoryState(r, t.committed_);
        t.lfsr_ = r.u32();
        t.update_count_ = r.u64();
    }

    static void
    putLoop(Writer &w, const LoopPredictor &l)
    {
        w.u64(l.table_.size());
        for (const auto &e : l.table_) {
            w.u32(e.tag);
            w.b(e.valid);
            w.u32(e.trip_count);
            w.u32(e.arch_count);
            w.u32(e.spec_count);
            w.u32(e.confidence);
        }
    }

    static void
    getLoop(Reader &r, LoopPredictor &l)
    {
        if (r.u64() != l.table_.size())
            SPT_FATAL("snapshot/config mismatch: loop table size");
        for (auto &e : l.table_) {
            e.tag = r.u32();
            e.valid = r.b();
            e.trip_count = r.u32();
            e.arch_count = r.u32();
            e.spec_count = r.u32();
            e.confidence = r.u32();
        }
    }

    static void
    putBpu(Writer &w, const BranchPredictorUnit &bpu)
    {
        putTage(w, bpu.ltage_.tage_);
        putLoop(w, bpu.ltage_.loop_);
        w.u32(bpu.ltage_.use_loop_.value());
        w.u64(bpu.btb_.entries_.size());
        for (const auto &e : bpu.btb_.entries_) {
            w.b(e.valid);
            w.u64(e.tag);
            w.u64(e.target);
            w.u64(e.lru);
        }
        w.u64(bpu.btb_.tick_);
        const ReturnAddressStack::Checkpoint ras =
            bpu.ras_.checkpoint();
        for (const uint64_t v : ras.stack)
            w.u64(v);
        w.u32(ras.top);
        w.u32(ras.depth);
        putStats(w, bpu.stats_);
    }

    static void
    getBpu(Reader &r, BranchPredictorUnit &bpu)
    {
        getTage(r, bpu.ltage_.tage_);
        getLoop(r, bpu.ltage_.loop_);
        bpu.ltage_.use_loop_.set(r.u32());
        if (r.u64() != bpu.btb_.entries_.size())
            SPT_FATAL("snapshot/config mismatch: BTB size");
        for (auto &e : bpu.btb_.entries_) {
            e.valid = r.b();
            e.tag = r.u64();
            e.target = r.u64();
            e.lru = r.u64();
        }
        bpu.btb_.tick_ = r.u64();
        ReturnAddressStack::Checkpoint ras;
        for (uint64_t &v : ras.stack)
            v = r.u64();
        ras.top = r.u32();
        ras.depth = r.u32();
        bpu.ras_.restore(ras);
        getStats(r, bpu.stats_);
    }

    // --- Store sets ---------------------------------------------------
    static void
    putStoreSets(Writer &w, const StoreSetPredictor &s)
    {
        w.u64(s.ssit_.size());
        for (const int32_t v : s.ssit_)
            w.u32(static_cast<uint32_t>(v));
        w.u64(s.lfst_.size());
        for (const auto &e : s.lfst_) {
            w.b(e.valid);
            w.u64(e.seq);
        }
        w.u32(static_cast<uint32_t>(s.next_set_id_));
    }

    static void
    getStoreSets(Reader &r, StoreSetPredictor &s)
    {
        if (r.u64() != s.ssit_.size())
            SPT_FATAL("snapshot/config mismatch: SSIT size");
        for (int32_t &v : s.ssit_)
            v = static_cast<int32_t>(r.u32());
        if (r.u64() != s.lfst_.size())
            SPT_FATAL("snapshot/config mismatch: LFST size");
        for (auto &e : s.lfst_) {
            e.valid = r.b();
            e.seq = r.u64();
        }
        s.next_set_id_ = static_cast<int32_t>(r.u32());
    }

    // --- Data taint stores --------------------------------------------
    static void
    putTaintStore(Writer &w, const SptEngine &eng)
    {
        const SptConfig &cfg = eng.config();
        const DataTaintStore *store = eng.taint_store_.get();
        if (cfg.shadow == ShadowKind::kShadowL1) {
            if (cfg.storage == SptConfig::Storage::kBitplane) {
                const auto &s =
                    dynamic_cast<const PackedShadowL1 &>(*store);
                w.u64(s.entries_.size());
                for (const auto &e : s.entries_) {
                    w.b(e.valid);
                    w.u64(e.line_addr);
                }
                w.u64(s.taint_.size());
                for (const uint64_t word : s.taint_)
                    w.u64(word);
                putStats(w, s.stats_);
            } else {
                const auto &s =
                    dynamic_cast<const ShadowL1 &>(*store);
                w.u64(s.entries_.size());
                for (const auto &e : s.entries_) {
                    w.b(e.valid);
                    w.u64(e.line_addr);
                    w.u64(e.taint.size());
                    w.bytes(e.taint.data(), e.taint.size());
                }
                putStats(w, s.stats_);
            }
        } else if (cfg.shadow == ShadowKind::kShadowMem) {
            if (cfg.storage == SptConfig::Storage::kBitplane) {
                const auto &s =
                    dynamic_cast<const PackedShadowMemory &>(*store);
                std::vector<uint64_t> keys;
                for (const auto &[page, words] : s.pages_)
                    keys.push_back(page);
                std::sort(keys.begin(), keys.end());
                w.u64(keys.size());
                for (const uint64_t page : keys) {
                    w.u64(page);
                    for (const uint64_t word : s.pages_.at(page))
                        w.u64(word);
                }
            } else {
                const auto &s =
                    dynamic_cast<const ShadowMemory &>(*store);
                std::vector<uint64_t> keys;
                for (const auto &[page, bytes] : s.pages_)
                    keys.push_back(page);
                std::sort(keys.begin(), keys.end());
                w.u64(keys.size());
                for (const uint64_t page : keys) {
                    w.u64(page);
                    w.bytes(s.pages_.at(page).data(),
                            ShadowMemory::kPageBytes);
                }
            }
        }
        // ShadowKind::kNone: NullTaintStore is stateless.
    }

    static void
    getTaintStore(Reader &r, SptEngine &eng)
    {
        const SptConfig &cfg = eng.config();
        DataTaintStore *store = eng.taint_store_.get();
        if (cfg.shadow == ShadowKind::kShadowL1) {
            if (cfg.storage == SptConfig::Storage::kBitplane) {
                auto &s = dynamic_cast<PackedShadowL1 &>(*store);
                if (r.u64() != s.entries_.size())
                    SPT_FATAL("snapshot/config mismatch: shadow L1 "
                              "geometry");
                for (auto &e : s.entries_) {
                    e.valid = r.b();
                    e.line_addr = r.u64();
                }
                if (r.u64() != s.taint_.size())
                    SPT_FATAL("snapshot/config mismatch: shadow L1 "
                              "words");
                for (uint64_t &word : s.taint_)
                    word = r.u64();
                getStats(r, s.stats_);
            } else {
                auto &s = dynamic_cast<ShadowL1 &>(*store);
                if (r.u64() != s.entries_.size())
                    SPT_FATAL("snapshot/config mismatch: shadow L1 "
                              "geometry");
                for (auto &e : s.entries_) {
                    e.valid = r.b();
                    e.line_addr = r.u64();
                    if (r.u64() != e.taint.size())
                        SPT_FATAL("snapshot/config mismatch: shadow "
                                  "line bytes");
                    r.bytes(e.taint.data(), e.taint.size());
                }
                getStats(r, s.stats_);
            }
        } else if (cfg.shadow == ShadowKind::kShadowMem) {
            if (cfg.storage == SptConfig::Storage::kBitplane) {
                auto &s = dynamic_cast<PackedShadowMemory &>(*store);
                s.pages_.clear();
                const uint64_t n = r.u64();
                for (uint64_t i = 0; i < n; ++i) {
                    const uint64_t page = r.u64();
                    auto &words = s.pages_[page];
                    words.resize(PackedShadowMemory::kPageBytes / 64);
                    for (uint64_t &word : words)
                        word = r.u64();
                }
            } else {
                auto &s = dynamic_cast<ShadowMemory &>(*store);
                s.pages_.clear();
                const uint64_t n = r.u64();
                for (uint64_t i = 0; i < n; ++i) {
                    const uint64_t page = r.u64();
                    auto &bytes = s.pages_[page];
                    bytes.resize(ShadowMemory::kPageBytes);
                    r.bytes(bytes.data(), bytes.size());
                }
            }
        }
    }

    // --- Fault injector -----------------------------------------------
    static void
    putInjector(Writer &w, const FaultInjector *inj)
    {
        w.b(inj != nullptr);
        if (inj == nullptr)
            return;
        for (std::size_t i = 0; i < kNumFaultSites; ++i) {
            for (const uint64_t word : inj->streams_[i].s_)
                w.u64(word);
            w.u64(inj->draws_[i]);
            w.u64(inj->fired_[i]);
        }
    }

    static void
    getInjector(Reader &r, FaultInjector *inj)
    {
        const bool present = r.b();
        if (present != (inj != nullptr))
            SPT_FATAL("snapshot/config mismatch: snapshot "
                      << (present ? "has" : "lacks")
                      << " a fault plan, this run "
                      << (inj ? "has" : "lacks") << " one");
        if (!present)
            return;
        for (std::size_t i = 0; i < kNumFaultSites; ++i) {
            for (uint64_t &word : inj->streams_[i].s_)
                word = r.u64();
            inj->draws_[i] = r.u64();
            inj->fired_[i] = r.u64();
        }
    }
};

void
Snapshotter::save(const Simulator &sim, std::ostream &os)
{
    const Core &core = *sim.core_;
    if (sim.reference_)
        SPT_FATAL("cannot snapshot with a lockstep reference CPU "
                  "attached");
    if (!core.drained())
        SPT_FATAL("cannot snapshot an undrained pipeline (snapshots "
                  "are taken at the checkpoint barrier)");

    Writer w(os);
    w.u64(kMagic);
    w.u32(kVersion);
    w.u64(core.cycle_);
    w.u64(core.retired_);
    w.str(core.engine_->name());
    const Fingerprint fp = fingerprintOf(core.program_);
    w.u64(fp.code_size);
    w.u64(fp.entry);
    w.u64(fp.data_segments);
    w.u64(fp.data_bytes);

    // Config tag: fields a restore must agree on.
    const EngineConfig &ec = sim.config_.engine;
    w.u8(static_cast<uint8_t>(ec.scheme));
    w.u8(static_cast<uint8_t>(ec.spt.shadow));
    w.u8(static_cast<uint8_t>(ec.spt.storage));
    // Knowledge-map identity (0 = no map): a restore under a
    // different map would preclear differently from the run that
    // took the snapshot, breaking byte-identity.
    w.u64(ec.spt.knowledge_map
              ? ec.spt.knowledge_map->contentHash()
              : 0);

    // Core scalars + architectural registers.
    w.u64(core.next_seq_);
    w.u64(core.fetch_pc_);
    w.u64(core.fetch_stall_until_);
    w.u64(core.delay_mem_cycles_);
    w.u64(core.delay_branch_cycles_);
    w.u64(core.delay_memorder_cycles_);
    for (unsigned r = 0; r < kNumArchRegs; ++r)
        w.u64(core.prf_.value(core.rat_.lookup(
            static_cast<uint8_t>(r))));
    Codec::putStats(w, core.stats_);

    Codec::putMemory(w, core.mem_);

    // Memory hierarchy.
    MemorySystem &ms = const_cast<Core &>(core).memorySystem();
    Codec::putCache(w, ms.l1i());
    Codec::putCache(w, ms.l1d());
    Codec::putCache(w, ms.l2());
    Codec::putCache(w, ms.l3());
    Codec::putMshrs(w, ms.mshrs());
    Codec::putDirectory(w, ms.directory());
    Codec::putStats(w, ms.stats());

    Codec::putBpu(w, core.bpu_);
    Codec::putStoreSets(w, core.store_sets_);

    // Engine: stats always; SPT adds committed register taint and
    // the data taint store. (A drained STT engine has no live taint
    // roots, so its table restores to the fresh all-dead state.)
    Codec::putStats(w, core.engine_->stats());
    if (const auto *spt =
            dynamic_cast<const SptEngine *>(core.engine_.get())) {
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            w.u8(spt->masterTaint(core.rat_.lookup(
                                      static_cast<uint8_t>(r)))
                     .raw());
        // Armed bits (knowledge-map preclear precondition): at the
        // drained barrier only committed-RAT registers are live, so
        // the arch-indexed view is complete.
        for (unsigned r = 0; r < kNumArchRegs; ++r)
            w.u8(spt->valueArmed(core.rat_.lookup(
                     static_cast<uint8_t>(r)))
                     ? 1
                     : 0);
        Codec::putTaintStore(w, *spt);
    }

    Codec::putInjector(w, sim.injector_.get());
    w.u64(kMagic); // trailer: cheap integrity check
    w.finish();
}

void
Snapshotter::restore(Simulator &sim, std::istream &is)
{
    Core &core = *sim.core_;
    SPT_ASSERT(core.cycle_ == 0 && core.retired_ == 0,
               "snapshot restore needs a freshly constructed "
               "simulator");

    Reader r(is);
    if (r.u64() != kMagic)
        SPT_FATAL("not a snapshot (bad magic)");
    const uint32_t version = r.u32();
    if (version != kVersion)
        SPT_FATAL("snapshot version " << version
                  << " unsupported (expected " << kVersion << ")");
    const uint64_t cycle = r.u64();
    const uint64_t retired = r.u64();
    const std::string engine_name = r.str();
    if (engine_name != core.engine_->name())
        SPT_FATAL("snapshot was taken under engine '" << engine_name
                  << "', this run uses '" << core.engine_->name()
                  << "'");
    const Fingerprint fp = fingerprintOf(core.program_);
    if (r.u64() != fp.code_size || r.u64() != fp.entry ||
        r.u64() != fp.data_segments || r.u64() != fp.data_bytes)
        SPT_FATAL("snapshot program fingerprint mismatch (different "
                  "workload?)");
    const EngineConfig &ec = sim.config_.engine;
    if (r.u8() != static_cast<uint8_t>(ec.scheme))
        SPT_FATAL("snapshot/config mismatch: protection scheme");
    const uint8_t shadow = r.u8();
    const uint8_t storage = r.u8();
    if (ec.scheme == ProtectionScheme::kSpt &&
        (shadow != static_cast<uint8_t>(ec.spt.shadow) ||
         storage != static_cast<uint8_t>(ec.spt.storage)))
        SPT_FATAL("snapshot/config mismatch: SPT shadow/storage "
                  "kind");
    const uint64_t map_hash = r.u64();
    const uint64_t want_hash =
        ec.scheme == ProtectionScheme::kSpt && ec.spt.knowledge_map
            ? ec.spt.knowledge_map->contentHash()
            : 0;
    if (map_hash != want_hash)
        SPT_FATAL("snapshot/config mismatch: knowledge map "
                  "(snapshot tag 0x"
                  << std::hex << map_hash << ", this run 0x"
                  << want_hash << std::dec << ")");

    core.cycle_ = cycle;
    core.retired_ = retired;
    core.next_seq_ = r.u64();
    core.fetch_pc_ = r.u64();
    core.fetch_stall_until_ = r.u64();
    core.delay_mem_cycles_ = r.u64();
    core.delay_branch_cycles_ = r.u64();
    core.delay_memorder_cycles_ = r.u64();
    for (unsigned reg = 0; reg < kNumArchRegs; ++reg) {
        const uint64_t value = r.u64();
        if (reg != 0)
            core.prf_.write(
                core.rat_.lookup(static_cast<uint8_t>(reg)), value);
    }
    Codec::getStats(r, core.stats_);

    Codec::getMemory(r, core.mem_);

    MemorySystem &ms = core.memorySystem();
    Codec::getCache(r, ms.l1i());
    Codec::getCache(r, ms.l1d());
    Codec::getCache(r, ms.l2());
    Codec::getCache(r, ms.l3());
    Codec::getMshrs(r, ms.mshrs());
    Codec::getDirectory(r, ms.directory());
    Codec::getStats(r, ms.stats());

    Codec::getBpu(r, core.bpu_);
    Codec::getStoreSets(r, core.store_sets_);

    Codec::getStats(r, core.engine_->stats());
    if (auto *spt = dynamic_cast<SptEngine *>(core.engine_.get())) {
        for (unsigned reg = 0; reg < kNumArchRegs; ++reg) {
            const TaintMask mask = TaintMask::fromRaw(r.u8());
            spt->master_.set(
                core.rat_.lookup(static_cast<uint8_t>(reg)), mask);
        }
        for (unsigned reg = 0; reg < kNumArchRegs; ++reg) {
            const uint8_t armed = r.u8();
            const PhysReg preg =
                core.rat_.lookup(static_cast<uint8_t>(reg));
            if (preg != PhysRegFile::kZeroReg)
                spt->armed_[preg] = armed;
        }
        Codec::getTaintStore(r, *spt);
    }

    if (sim.config_.faults.any() && !sim.injector_)
        sim.injector_ =
            std::make_unique<FaultInjector>(sim.config_.faults);
    Codec::getInjector(r, sim.injector_.get());
    if (r.u64() != kMagic)
        SPT_FATAL("snapshot corrupt (bad trailer)");
}

SnapshotInfo
Snapshotter::info(std::istream &is)
{
    Reader r(is);
    SnapshotInfo info;
    if (r.u64() != kMagic)
        SPT_FATAL("not a snapshot (bad magic)");
    info.version = r.u32();
    info.cycle = r.u64();
    info.retired = r.u64();
    info.engine_name = r.str();
    info.code_size = r.u64();
    info.entry = r.u64();
    r.u64(); // data segment count
    info.data_bytes = r.u64();
    return info;
}

} // namespace spt
