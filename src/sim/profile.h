/**
 * @file
 * Delay-attribution profiling and interval metrics.
 *
 * DelayProfiler charges every policy-gated transmitter stall cycle
 * to a cause (tainted address operand, tainted branch operand,
 * waiting on the untaint broadcast width, waiting for the visibility
 * point, memory-order gate) keyed by PC. Because the Core has
 * exactly one delay-note call site per gate — the same site that
 * feeds the engine's delay.total_cycles counter — the profiler's
 * attributed total equals that counter exactly (pinned by the
 * cause-conservation test in tests/test_observability.cpp).
 *
 * IntervalRecorder snapshots IPC, delayed-transmitter cycles,
 * untaint-broadcast-queue occupancy, and the tainted-register
 * population every N cycles into a time series.
 *
 * Both emit deterministic JSON via the shared JsonWriter
 * (common/json.h): byte-identical for identical runs, any --jobs.
 */

#ifndef SPT_SIM_PROFILE_H
#define SPT_SIM_PROFILE_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "uarch/pipeline_observer.h"

namespace spt {

class SecurityEngine;

class DelayProfiler : public PipelineObserver
{
  public:
    static constexpr size_t kNumCauses =
        static_cast<size_t>(DelayCause::kNumCauses);

    struct PcDelays {
        uint64_t total = 0;
        uint64_t by_cause[kNumCauses] = {};
    };

    void delayCycle(uint64_t cycle, const DynInst &d, DelayKind kind,
                    DelayCause cause) override;

    /** Sum of every attributed delay cycle (== the engine's
     *  delay.total_cycles when profiling covered the whole run). */
    uint64_t totalCycles() const { return total_; }
    uint64_t causeCycles(DelayCause c) const
    {
        return by_cause_[static_cast<size_t>(c)];
    }
    const std::map<uint64_t, PcDelays> &byPc() const { return pcs_; }

    /** "Top delay sources" table: per-PC rows sorted by attributed
     *  cycles (descending, PC ascending for ties), at most
     *  @p top_n. */
    void writeTable(std::ostream &os, size_t top_n = 32) const;

    /** Full JSON document: totals, per-cause/per-kind breakdowns,
     *  and the top-PC rows. Deterministic byte-for-byte. */
    std::string toJson(size_t top_n = 32) const;

  private:
    std::map<uint64_t, PcDelays> pcs_;
    uint64_t total_ = 0;
    uint64_t by_cause_[kNumCauses] = {};
    uint64_t by_kind_[3] = {};

    std::vector<std::pair<uint64_t, const PcDelays *>>
    sortedPcs() const;
};

class IntervalRecorder : public PipelineObserver
{
  public:
    struct Sample {
        uint64_t cycle = 0;        ///< sample point (interval end)
        uint64_t cycles = 0;       ///< interval length (last may be
                                   ///< shorter than the period)
        uint64_t instructions = 0; ///< retired in the interval
        uint64_t delay_cycles = 0; ///< transmitter stalls in interval
        uint64_t broadcast_queue = 0; ///< occupancy at the sample
        uint64_t tainted_regs = 0;    ///< population at the sample
    };

    /** @param engine queried (read-only) at each sample point for
     *  broadcast-queue occupancy and taint population. */
    IntervalRecorder(uint64_t period, const SecurityEngine *engine);

    void retired(uint64_t cycle, const DynInst &d) override;
    void delayCycle(uint64_t cycle, const DynInst &d, DelayKind kind,
                    DelayCause cause) override;
    void cycleEnd(uint64_t cycle) override;

    /** Records the final (possibly partial) interval. Call once,
     *  after Core::run returns. */
    void finish(uint64_t final_cycle);

    uint64_t period() const { return period_; }
    const std::vector<Sample> &samples() const { return samples_; }

    /** BENCH_-style JSON time series. Deterministic. */
    std::string toJson() const;

  private:
    uint64_t period_;
    const SecurityEngine *engine_;
    std::vector<Sample> samples_;
    uint64_t last_sample_cycle_ = 0;
    uint64_t retired_in_interval_ = 0;
    uint64_t delays_in_interval_ = 0;

    void take(uint64_t cycle);
};

} // namespace spt

#endif // SPT_SIM_PROFILE_H
