#include "sim/result_cache.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/stats.h"
#include "core/knowledge_map.h"
#include "sim/exp_runner.h"

namespace spt {

namespace {

constexpr uint64_t kMagic = 0x5350545245533031ull; // "SPTRES01"
constexpr uint32_t kVersion = 1;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvBytes(const char *data, std::size_t len,
         uint64_t h = kFnvOffset)
{
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<uint8_t>(data[i]);
        h *= kFnvPrime;
    }
    return h;
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

// --------------------------------------------------------------------
// Record codec: append-to-string writer, offset reader. The reader
// throws FatalError on any malformation; lookup() catches it and
// reports a miss.
// --------------------------------------------------------------------

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putDouble(std::string &out, double v)
{
    putU64(out, std::bit_cast<uint64_t>(v));
}

void
putStr(std::string &out, const std::string &s)
{
    putU64(out, s.size());
    out.append(s);
}

class Reader
{
  public:
    Reader(const std::string &buf, std::size_t pos = 0)
        : buf_(buf), pos_(pos)
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return static_cast<uint8_t>(buf_[pos_++]);
    }
    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t{u8()} << (8 * i);
        return v;
    }
    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t{u8()} << (8 * i);
        return v;
    }
    double
    d()
    {
        return std::bit_cast<double>(u64());
    }
    std::string
    str()
    {
        const uint64_t n = u64();
        need(n);
        std::string s = buf_.substr(pos_, n);
        pos_ += n;
        return s;
    }
    std::size_t pos() const { return pos_; }
    bool
    atEnd() const
    {
        return pos_ == buf_.size();
    }

  private:
    void
    need(uint64_t n) const
    {
        if (n > buf_.size() || pos_ > buf_.size() - n)
            SPT_FATAL("result record truncated");
    }

    const std::string &buf_;
    std::size_t pos_;
};

/** FNV-1a of a whole file; false if it cannot be read. */
bool
hashFile(const std::string &path, uint64_t *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    uint64_t h = kFnvOffset;
    char buf[65536];
    for (;;) {
        is.read(buf, sizeof buf);
        const std::streamsize n = is.gcount();
        if (n <= 0)
            break;
        h = fnvBytes(buf, static_cast<std::size_t>(n), h);
    }
    if (is.bad())
        return false;
    *out = h;
    return true;
}

} // namespace

const char *
cacheModeName(CacheMode m)
{
    switch (m) {
      case CacheMode::kOff:       return "off";
      case CacheMode::kReadWrite: return "read_write";
      case CacheMode::kReadOnly:  return "read_only";
      case CacheMode::kVerify:    return "verify";
    }
    return "?";
}

CacheMode
parseCacheMode(const std::string &text)
{
    if (text == "off")
        return CacheMode::kOff;
    if (text == "read_write")
        return CacheMode::kReadWrite;
    if (text == "read_only")
        return CacheMode::kReadOnly;
    if (text == "verify")
        return CacheMode::kVerify;
    SPT_FATAL("unknown cache mode \"" << text
              << "\" (expected off / read_write / read_only / "
                 "verify)");
}

ResultCache::ResultCache(std::string dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode)
{
    SPT_ASSERT(mode_ != CacheMode::kOff,
               "ResultCache constructed with mode off");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        SPT_FATAL("cannot create cache directory " << dir_ << ": "
                                                   << ec.message());
}

bool
ResultCache::cacheable(const RunJob &job)
{
    // A wall-clock cap makes the outcome schedule-dependent by
    // documented contract (exp_runner.h); everything else in the
    // descriptor is a pure function of its content.
    return job.program != nullptr && job.wall_timeout_seconds == 0.0;
}

std::string
ResultCache::canonicalKey(const RunJob &job,
                          std::map<std::string, uint64_t> *ckpt_hashes)
{
    if (!cacheable(job))
        return "";

    uint64_t ckpt_hash = 0;
    if (!job.checkpoint.empty()) {
        // Content-address the snapshot too: the same path holding
        // different bytes is a different design point.
        bool have = false;
        if (ckpt_hashes) {
            const auto it = ckpt_hashes->find(job.checkpoint);
            if (it != ckpt_hashes->end()) {
                ckpt_hash = it->second;
                have = true;
            }
        }
        if (!have) {
            if (!hashFile(job.checkpoint, &ckpt_hash))
                return ""; // unreadable: the simulation will say so
            if (ckpt_hashes)
                (*ckpt_hashes)[job.checkpoint] = ckpt_hash;
        }
    }

    const uint64_t prog = KnowledgeMap::fingerprintOf(*job.program);
    const uint64_t km =
        job.engine.spt.knowledge_map != nullptr
            ? job.engine.spt.knowledge_map->contentHash()
            : 0;

    // Same field inventory as jobKey() (minus label), with every
    // by-reference component replaced by its content hash. The
    // "resv1" prefix versions the key schema itself: changing how
    // keys are derived must not alias old entries.
    char buf[512];
    int n = std::snprintf(
        buf, sizeof buf,
        "resv1|prog=%016" PRIx64 "|sch=%u|m=%u|sh=%u|bw=%u|st=%u"
        "|mut=%u|km=%016" PRIx64 "|am=%u|seed=%" PRIu64
        "|mc=%" PRIu64 "|tr=%u|pf=%u|iv=%" PRIu64 "|inv=%u"
        "|wd=%" PRIu64 "|ff=%u|ca=%" PRIu64 "|fs=%" PRIu64,
        prog, static_cast<unsigned>(job.engine.scheme),
        static_cast<unsigned>(job.engine.spt.method),
        static_cast<unsigned>(job.engine.spt.shadow),
        job.engine.spt.broadcast_width,
        static_cast<unsigned>(job.engine.spt.storage),
        static_cast<unsigned>(job.engine.spt.mutation), km,
        static_cast<unsigned>(job.attack_model), job.seed,
        job.max_cycles, static_cast<unsigned>(job.trace),
        static_cast<unsigned>(job.profile), job.interval_stats,
        static_cast<unsigned>(job.invariants), job.watchdog_cycles,
        static_cast<unsigned>(job.fast_forward), job.checkpoint_at,
        job.faults.seed);
    std::string key(buf, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < kNumFaultSites; ++i) {
        std::snprintf(buf, sizeof buf, "|f%zu=%u", i,
                      job.faults.rate_ppm[i]);
        key += buf;
    }
    key += "|ck=";
    key += job.checkpoint.empty() ? std::string("0")
                                  : hex16(ckpt_hash);
    return key;
}

std::string
ResultCache::encodeOutcome(const RunOutcome &out)
{
    std::string b;
    putU64(b, out.result.cycles);
    putU64(b, out.result.instructions);
    putU8(b, out.result.halted ? 1 : 0);
    putDouble(b, out.result.ipc);
    putU8(b, static_cast<uint8_t>(out.result.termination));
    putDouble(b, out.host_seconds);
    putU8(b, static_cast<uint8_t>(out.status));
    putStr(b, out.error);
    putStr(b, out.diagnostics_json);
    putU64(b, out.engine_counters.size());
    for (const auto &[name, value] : out.engine_counters) {
        putStr(b, name);
        putU64(b, value);
    }
    putU64(b, out.engine_histograms.size());
    for (const auto &[name, h] : out.engine_histograms) {
        putStr(b, name);
        putU64(b, h.buckets_.size());
        for (const uint64_t bucket : h.buckets_)
            putU64(b, bucket);
        putU64(b, h.samples_);
        putU64(b, h.sum_);
        putU64(b, h.max_);
    }
    putStr(b, out.trace_text);
    putStr(b, out.trace_pipeview);
    putStr(b, out.profile_json);
    putStr(b, out.intervals_json);
    putU64(b, out.fault_counters.size());
    for (const auto &[name, value] : out.fault_counters) {
        putStr(b, name);
        putU64(b, value);
    }
    for (const uint64_t r : out.arch_regs)
        putU64(b, r);
    putStr(b, out.evidence_trace);
    putU8(b, out.reproduced ? 1 : 0);
    return b;
}

RunOutcome
ResultCache::decodeOutcome(const std::string &bytes)
{
    Reader rd(bytes);
    RunOutcome out;
    out.result.cycles = rd.u64();
    out.result.instructions = rd.u64();
    out.result.halted = rd.u8() != 0;
    out.result.ipc = rd.d();
    const uint8_t term = rd.u8();
    if (term > static_cast<uint8_t>(Termination::kWallTimeout))
        SPT_FATAL("result record corrupt: termination " << +term);
    out.result.termination = static_cast<Termination>(term);
    out.host_seconds = rd.d();
    const uint8_t status = rd.u8();
    if (status > static_cast<uint8_t>(RunStatus::kCrash))
        SPT_FATAL("result record corrupt: status " << +status);
    out.status = static_cast<RunStatus>(status);
    out.error = rd.str();
    out.diagnostics_json = rd.str();
    const uint64_t ncounters = rd.u64();
    if (ncounters > (uint64_t{1} << 20))
        SPT_FATAL("result record corrupt: " << ncounters
                                            << " counters");
    for (uint64_t i = 0; i < ncounters; ++i) {
        std::string name = rd.str();
        out.engine_counters[std::move(name)] = rd.u64();
    }
    const uint64_t nhists = rd.u64();
    if (nhists > (uint64_t{1} << 20))
        SPT_FATAL("result record corrupt: " << nhists
                                            << " histograms");
    for (uint64_t i = 0; i < nhists; ++i) {
        std::string name = rd.str();
        const uint64_t nbuckets = rd.u64();
        if (nbuckets == 0 || nbuckets > (uint64_t{1} << 20))
            SPT_FATAL("result record corrupt: " << nbuckets
                                                << " buckets");
        Histogram h(nbuckets);
        for (uint64_t bkt = 0; bkt < nbuckets; ++bkt)
            h.buckets_[bkt] = rd.u64();
        h.samples_ = rd.u64();
        h.sum_ = rd.u64();
        h.max_ = rd.u64();
        out.engine_histograms.emplace(std::move(name),
                                      std::move(h));
    }
    out.trace_text = rd.str();
    out.trace_pipeview = rd.str();
    out.profile_json = rd.str();
    out.intervals_json = rd.str();
    const uint64_t nfaults = rd.u64();
    if (nfaults > (uint64_t{1} << 16))
        SPT_FATAL("result record corrupt: " << nfaults
                                            << " fault counters");
    for (uint64_t i = 0; i < nfaults; ++i) {
        std::string name = rd.str();
        out.fault_counters[std::move(name)] = rd.u64();
    }
    for (uint64_t &r : out.arch_regs)
        r = rd.u64();
    out.evidence_trace = rd.str();
    out.reproduced = rd.u8() != 0;
    if (!rd.atEnd())
        SPT_FATAL("result record corrupt: trailing bytes");
    return out;
}

std::string
ResultCache::encodeOutcomeDeterministic(const RunOutcome &out)
{
    RunOutcome copy = out;
    copy.host_seconds = 0.0;
    copy.memoized = false;
    copy.job_desc.clear();
    return encodeOutcome(copy);
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return dir_ + "/" + hex16(fnvBytes(key.data(), key.size())) +
           ".sptres";
}

bool
ResultCache::lookup(const std::string &key, RunOutcome *out)
{
    bool hit = false;
    double saved = 0.0;
    try {
        std::ifstream is(entryPath(key), std::ios::binary);
        if (is) {
            std::string record(
                (std::istreambuf_iterator<char>(is)),
                std::istreambuf_iterator<char>());
            if (record.size() < 8)
                SPT_FATAL("result record truncated");
            // Content-hash trailer first: everything after this
            // point may assume the bytes are what was written.
            const std::size_t body = record.size() - 8;
            Reader trailer(record, body);
            if (trailer.u64() != fnvBytes(record.data(), body))
                SPT_FATAL("result record content hash mismatch");
            Reader rd(record);
            if (rd.u64() != kMagic)
                SPT_FATAL("not a result record (bad magic)");
            const uint32_t version = rd.u32();
            if (version != kVersion)
                SPT_FATAL("result record version skew: "
                          << version);
            if (rd.str() != key)
                SPT_FATAL("result record key collision");
            const std::string payload = rd.str();
            if (rd.pos() != body)
                SPT_FATAL("result record corrupt: stray bytes");
            *out = decodeOutcome(payload);
            saved = out->host_seconds;
            hit = true;
        }
    } catch (const std::exception &) {
        // Any malformation degrades to a miss: the job simply
        // re-simulates (and read_write mode rewrites the entry).
        hit = false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (hit) {
        ++stats_.hits;
        // Verify-mode hits re-simulate anyway; nothing is saved.
        if (mode_ != CacheMode::kVerify)
            stats_.host_seconds_saved += saved;
    } else {
        ++stats_.misses;
    }
    return hit;
}

void
ResultCache::store(const std::string &key, const RunOutcome &out)
{
    if (mode_ != CacheMode::kReadWrite)
        return;
    // Only clean outcomes are stored — see the file comment.
    if (out.status != RunStatus::kOk)
        return;

    std::string record;
    putU64(record, kMagic);
    putU32(record, kVersion);
    putStr(record, key);
    putStr(record, encodeOutcome(out));
    putU64(record, fnvBytes(record.data(), record.size()));

    const std::string path = entryPath(key);
    std::string tmp;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tmp = path + ".tmp" + std::to_string(tmp_seq_++);
    }
    bool ok = false;
    {
        std::ofstream os(tmp, std::ios::binary);
        os.write(record.data(),
                 static_cast<std::streamsize>(record.size()));
        ok = static_cast<bool>(os);
    }
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    std::lock_guard<std::mutex> lock(mutex_);
    if (ok) {
        stats_.bytes_written += record.size();
    } else {
        std::remove(tmp.c_str());
        if (!write_failed_)
            warn("result cache: cannot write " + path +
                 " (suppressing further write warnings)");
        write_failed_ = true;
    }
}

void
ResultCache::noteVerifyMismatch(const std::string &key)
{
    warn("result cache VERIFY MISMATCH: re-simulation of " + key +
         " does not reproduce the stored record");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.verify_mismatches;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace spt
